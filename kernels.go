package tflex

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/kernels"
)

// Kernel is one benchmark of the built-in 26-kernel suite (the paper's
// workload mix: hand-optimized, EEMBC-style, Versabench-style and
// SPEC-CPU-style kernels).
type Kernel = kernels.Kernel

// KernelInstance is a runnable kernel: program, input setup, and an
// output check against the Go reference implementation.
type KernelInstance = kernels.Instance

// Kernels returns the paper's 26-benchmark suite.
func Kernels() []Kernel { return kernels.All() }

// KernelExtras returns the extension kernels beyond the paper's suite
// (the Livermore loops); they run through the same validation.
func KernelExtras() []Kernel { return kernels.Extras() }

// KernelNames lists the suite's benchmark names.
func KernelNames() []string { return kernels.Names() }

// BuildKernel instantiates a named kernel at the given input scale.
func BuildKernel(name string, scale int) (*KernelInstance, error) {
	k, ok := kernels.ByName(name)
	if !ok {
		return nil, fmt.Errorf("tflex: unknown kernel %q (see KernelNames)", name)
	}
	return k.Build(scale)
}

// RunKernel builds and runs a named kernel on the given configuration,
// validating its outputs against the reference implementation.
func RunKernel(name string, scale int, cfg RunConfig) (*Result, error) {
	inst, err := BuildKernel(name, scale)
	if err != nil {
		return nil, err
	}
	init := cfg.Init
	cfg.Init = func(regs *[128]uint64, mem *Memory) {
		inst.Init(regs, mem)
		if init != nil {
			init(regs, mem)
		}
	}
	res, err := Run(inst.Prog, cfg)
	if err != nil {
		return nil, err
	}
	if err := inst.Check(&res.Regs, res.Mem); err != nil {
		return nil, fmt.Errorf("tflex: %s output validation failed: %w", name, err)
	}
	return res, nil
}
