package tflex

import "testing"

func TestPublicAPIBuildAndRun(t *testing.T) {
	b := NewBuilder()
	bb := b.Block("loop")
	i := bb.Read(2)
	bb.Write(3, bb.Add(bb.Read(3), i))
	i2 := bb.AddI(i, 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.OpI(OpLt, i2, 100), "loop", "done")
	b.Block("done").Halt()
	program := b.MustProgram("loop")

	ref, err := Verify(program, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(program, RunConfig{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[3] != ref.Regs[3] {
		t.Fatalf("timing run r3=%d, reference %d", res.Regs[3], ref.Regs[3])
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestPublicAPIKernels(t *testing.T) {
	if len(Kernels()) != 26 {
		t.Fatalf("suite has %d kernels", len(Kernels()))
	}
	if len(KernelNames()) != 26 {
		t.Fatal("names mismatch")
	}
	if _, err := BuildKernel("nope", 1); err == nil {
		t.Fatal("unknown kernel should error")
	}
	res, err := RunKernel("tblook", 1, RunConfig{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BlocksCommitted == 0 {
		t.Fatal("no blocks committed")
	}
}

func TestPublicAPITRIPS(t *testing.T) {
	res, err := RunKernel("dither", 1, RunConfig{TRIPS: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	if TRIPSProcessor().N() != 16 {
		t.Fatal("TRIPS is 16 tiles")
	}
}

func TestPublicAPIComposition(t *testing.T) {
	if NumCores != 32 {
		t.Fatal("chip has 32 cores")
	}
	p, err := ComposeRect(0, 0, 8)
	if err != nil || p.N() != 8 {
		t.Fatalf("rect: %v %d", err, p.N())
	}
	parts, err := Partition(4, 8)
	if err != nil || len(parts) != 8 {
		t.Fatalf("partition: %v %d", err, len(parts))
	}
	asym, err := PartitionAsymmetric([]int{16, 8, 4, 4})
	if err != nil || len(asym) != 4 {
		t.Fatalf("asymmetric: %v %d", err, len(asym))
	}
	if _, err := ComposeRect(0, 0, 5); err == nil {
		t.Fatal("size 5 unsupported")
	}
}

func TestPublicAPIRunConfigDefaults(t *testing.T) {
	b := NewBuilder()
	bb := b.Block("m")
	bb.Write(1, bb.Const(7))
	bb.Halt()
	res, err := Run(b.MustProgram("m"), RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[1] != 7 {
		t.Fatalf("r1 = %d", res.Regs[1])
	}
}

func TestPublicAPIStripComposition(t *testing.T) {
	p, err := ComposeStrip(4, 5)
	if err != nil || p.N() != 5 {
		t.Fatalf("strip: %v %d", err, p.N())
	}
	// Run a kernel on a 5-core (non-power-of-two) composition.
	res, err := RunKernel("rspeed", 1, RunConfig{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	chip := NewChip(DefaultOptions())
	inst, err := BuildKernel("rspeed", 1)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := chip.AddProc(p, inst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	inst.Init(&proc.Regs, proc.Mem)
	if err := chip.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if err := inst.Check(&proc.Regs, proc.Mem); err != nil {
		t.Fatal(err)
	}
	_ = res
}
