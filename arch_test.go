package tflex

import "testing"

// TestRunArchDigest pins the public ArchState plumbing: a timed run
// with ArchDigest reports the unified architectural state, and that
// state is identical across compositions — the same contract the
// differential fuzzer enforces on generated programs, here checked on
// a real kernel through the public API.
func TestRunArchDigest(t *testing.T) {
	inst, err := BuildKernel("ct", 6)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cores int) *ArchState {
		res, err := Run(inst.Prog, RunConfig{Cores: cores, Init: inst.Init, ArchDigest: true})
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if res.Arch == nil {
			t.Fatalf("%d cores: ArchDigest set but Result.Arch is nil", cores)
		}
		return res.Arch
	}
	a1, a4 := run(1), run(4)
	if d := a1.Diff(*a4); d != "" {
		t.Errorf("ArchState differs between 1 and 4 cores: %s", d)
	}
	if a1.Stores == 0 || a1.StoreDigest == 0 || a1.Blocks == 0 {
		t.Errorf("degenerate ArchState: %+v", a1)
	}

	// Disarmed by default.
	res, err := Run(inst.Prog, RunConfig{Cores: 2, Init: inst.Init})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arch != nil {
		t.Error("Result.Arch non-nil without RunConfig.ArchDigest")
	}
}
