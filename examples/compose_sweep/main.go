// Compose sweep: run benchmarks with different ILP characters across
// every composition size and find the best composition per application —
// the adaptivity argument of the paper's Figure 6.
package main

import (
	"fmt"
	"log"

	"github.com/clp-sim/tflex"
)

func main() {
	benchmarks := []string{"conv", "ct", "dither", "mcf"}
	fmt.Println("speedup over a single core (higher is better):")
	fmt.Printf("%-8s", "bench")
	for _, n := range tflex.CompositionSizes() {
		fmt.Printf("  %5dc", n)
	}
	fmt.Printf("  %s\n", "best")

	for _, name := range benchmarks {
		var base uint64
		best, bestN := 0.0, 1
		fmt.Printf("%-8s", name)
		for _, n := range tflex.CompositionSizes() {
			res, err := tflex.RunKernel(name, 2, tflex.RunConfig{Cores: n})
			if err != nil {
				log.Fatal(err)
			}
			if n == 1 {
				base = res.Cycles
			}
			sp := float64(base) / float64(res.Cycles)
			if sp > best {
				best, bestN = sp, n
			}
			fmt.Printf("  %6.2f", sp)
		}
		fmt.Printf("  %d cores\n", bestN)
	}
	fmt.Println("\nhigh-ILP kernels keep scaling; pointer-chasing mcf peaks early —")
	fmt.Println("a CLP can give each application its best composition.")
}
