// Compose sweep: run benchmarks with different ILP characters across
// every composition size and find the best composition per application —
// the adaptivity argument of the paper's Figure 6.
//
// The full benchmark × composition-size matrix is enqueued on the
// concurrent job engine up front (every cell is an independent
// simulation), then the table renders from the merged result store.
package main

import (
	"fmt"
	"log"

	"github.com/clp-sim/tflex"
	"github.com/clp-sim/tflex/internal/experiments"
	"github.com/clp-sim/tflex/internal/runner"
)

func main() {
	benchmarks := []string{"conv", "ct", "dither", "mcf"}

	s := experiments.NewSuite(2)
	var specs []runner.Spec
	for _, name := range benchmarks {
		specs = append(specs, s.SweepSpecs(name)...)
	}
	if err := s.Prefetch(specs); err != nil {
		log.Fatal(err)
	}

	fmt.Println("speedup over a single core (higher is better):")
	fmt.Printf("%-8s", "bench")
	for _, n := range tflex.CompositionSizes() {
		fmt.Printf("  %5dc", n)
	}
	fmt.Printf("  %s\n", "best")

	for _, name := range benchmarks {
		curve, err := s.Speedups(name) // all cache hits after Prefetch
		if err != nil {
			log.Fatal(err)
		}
		best, bestN := 0.0, 1
		fmt.Printf("%-8s", name)
		for _, n := range tflex.CompositionSizes() {
			sp := curve[n]
			if sp > best {
				best, bestN = sp, n
			}
			fmt.Printf("  %6.2f", sp)
		}
		fmt.Printf("  %d cores\n", bestN)
	}
	fmt.Println("\nhigh-ILP kernels keep scaling; pointer-chasing mcf peaks early —")
	fmt.Println("a CLP can give each application its best composition.")
}
