// Multiprogram: run four different applications simultaneously on one
// chip, each on its own composed processor, sharing the L2 and the mesh —
// then compare symmetric and optimal asymmetric core allocations (the
// paper's §7 flexibility argument).
package main

import (
	"fmt"
	"log"

	"github.com/clp-sim/tflex"
	"github.com/clp-sim/tflex/internal/alloc"
	"github.com/clp-sim/tflex/internal/experiments"
	"github.com/clp-sim/tflex/internal/runner"
)

func main() {
	apps := []string{"conv", "genalg", "bezier", "mcf"}

	// Measure each application's cores -> speedup curve.  The profiling
	// runs are independent simulations, so enqueue the whole matrix on
	// the concurrent job engine and read the curves from the store.
	s := experiments.NewSuite(1)
	var specs []runner.Spec
	for _, name := range apps {
		specs = append(specs, s.SweepSpecs(name)...)
	}
	if err := s.Prefetch(specs); err != nil {
		log.Fatal(err)
	}
	curves := make([]alloc.Curve, len(apps))
	for i, name := range apps {
		curve, err := s.Speedups(name)
		if err != nil {
			log.Fatal(err)
		}
		curves[i] = curve
	}

	// Symmetric CMP-8 vs the optimal asymmetric allocation.
	symWS := alloc.FixedWS(curves, 8, tflex.NumCores)
	assign, bestWS := alloc.BestWS(curves, tflex.NumCores)
	fmt.Printf("weighted speedup, 4 threads on 32 cores:\n")
	fmt.Printf("  CMP-8 (8 cores each):     %.3f\n", symWS)
	fmt.Printf("  TFlex optimal allocation: %.3f  (", bestWS)
	for i, a := range assign {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s:%dc", apps[i], a)
	}
	fmt.Println(")")

	// Now actually co-run the applications with the optimal allocation on
	// one chip, sharing L2 and networks.
	chip := tflex.NewChip(tflex.DefaultOptions())
	procs := make([]*tflex.Proc, len(apps))
	placed, err := tflex.PartitionAsymmetric(assign)
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range apps {
		inst, err := tflex.BuildKernel(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		procs[i], err = chip.AddProc(placed[i], inst.Prog)
		if err != nil {
			log.Fatal(err)
		}
		inst.Init(&procs[i].Regs, procs[i].Mem)
	}
	if err := chip.Run(2_000_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nco-scheduled run (shared L2 + mesh):")
	for i, name := range apps {
		fmt.Printf("  %-8s %dc  %8d cycles  IPC %.2f\n",
			name, assign[i], procs[i].Stats.Cycles, procs[i].Stats.IPC())
	}
}
