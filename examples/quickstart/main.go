// Quickstart: build a small EDGE block program with the builder API, check
// it architecturally, then run the same binary on three different
// compositions — the core idea of a composable lightweight processor.
package main

import (
	"fmt"
	"log"

	"github.com/clp-sim/tflex"
)

func main() {
	// A dot-product loop: r3 += a[i]*b[i] for i in [0, 256).
	b := tflex.NewBuilder()
	bb := b.Block("dot")
	i := bb.Read(2)
	aBase := bb.Read(1)
	bBase := bb.Read(4)
	off := bb.ShlI(i, 3)
	av := bb.Load(bb.Add(aBase, off), 0, 8, false)
	bv := bb.Load(bb.Add(bBase, off), 0, 8, false)
	bb.Write(3, bb.Add(bb.Read(3), bb.Mul(av, bv)))
	i2 := bb.AddI(i, 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.OpI(tflex.OpLt, i2, 256), "dot", "done")
	b.Block("done").Halt()
	program := b.MustProgram("dot")

	init := func(regs *[128]uint64, mem *tflex.Memory) {
		regs[1], regs[4] = 0x10_0000, 0x20_0000
		for k := uint64(0); k < 256; k++ {
			mem.Write64(0x10_0000+8*k, k)
			mem.Write64(0x20_0000+8*k, 2*k+1)
		}
	}

	// Architectural reference run (no timing).
	ref, err := tflex.Verify(program, init)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("architectural result: r3 = %d\n\n", ref.Regs[3])

	// The same binary on three compositions.
	for _, cores := range []int{1, 4, 16} {
		res, err := tflex.Run(program, tflex.RunConfig{Cores: cores, Init: init})
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if res.Regs[3] != ref.Regs[3] {
			status = "MISMATCH"
		}
		fmt.Printf("TFlex-%-2d  %7d cycles  IPC %.2f  r3=%d  [%s]\n",
			cores, res.Cycles, res.Stats.IPC(), res.Regs[3], status)
	}
}
