// Jobqueue: the run-time allocation layer the paper's conclusion (§8)
// envisions — an online scheduler that composes a processor for each
// arriving job from its speedup profile and reallocates freed cores as
// jobs finish, all on one simulated chip with shared L2 and mesh.
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/clp-sim/tflex"
	"github.com/clp-sim/tflex/internal/alloc"
	"github.com/clp-sim/tflex/internal/kernels"
	"github.com/clp-sim/tflex/internal/sched"
)

func main() {
	// Profile a few kernels offline (cores -> speedup), as an OS would
	// from history.
	profiled := []string{"conv", "ct", "dither", "mcf", "bezier", "autcor"}
	curves := map[string]alloc.Curve{}
	for _, name := range profiled {
		c := alloc.Curve{}
		var base uint64
		for _, n := range tflex.CompositionSizes() {
			res, err := tflex.RunKernel(name, 1, tflex.RunConfig{Cores: n})
			if err != nil {
				log.Fatal(err)
			}
			if n == 1 {
				base = res.Cycles
			}
			c[n] = float64(base) / float64(res.Cycles)
		}
		curves[name] = c
	}

	// A queue of 10 jobs with mixed characters.
	s := sched.New(tflex.DefaultOptions(), sched.GreedyBest)
	queue := []string{"conv", "mcf", "ct", "dither", "bezier", "autcor", "conv", "dither", "ct", "mcf"}
	jobs := make([]*sched.Job, len(queue))
	for i, name := range queue {
		k, _ := kernels.ByName(name)
		inst, err := k.Build(1)
		if err != nil {
			log.Fatal(err)
		}
		jobs[i] = &sched.Job{
			Name:  fmt.Sprintf("%s#%d", name, i),
			Prog:  inst.Prog,
			Init:  inst.Init,
			Curve: curves[name],
		}
		s.Submit(jobs[i])
	}
	res, err := s.Run(2_000_000_000)
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(jobs, func(i, j int) bool { return jobs[i].StartedAt < jobs[j].StartedAt })
	fmt.Println("job        cores  started    halted     blocks")
	for _, j := range jobs {
		fmt.Printf("%-10s %5d  %9d  %9d  %6d\n",
			j.Name, j.Cores, j.StartedAt, j.HaltedAt, j.Stats.BlocksCommitted)
	}
	fmt.Printf("\nmakespan: %d cycles; weighted speedup of granted allocations: %.2f\n",
		res.Makespan, res.WeightedSp)
	fmt.Println("profile-aware composition gives serial jobs few cores and lets")
	fmt.Println("scalable jobs grow — no recompilation, one chip, shared memory system.")
}
