// Powerarea: sweep one benchmark across compositions and print the
// performance / area-efficiency / power-efficiency frontier — the three
// operating targets a CLP can be tuned for at run time (paper Figures 6,
// 7 and 8).
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/clp-sim/tflex/internal/area"
	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/experiments"
)

func main() {
	kernel := flag.String("kernel", "autcor", "benchmark to sweep")
	scale := flag.Int("scale", 2, "kernel input scale")
	flag.Parse()

	s := experiments.NewSuite(*scale)
	base, err := s.TFlexRun(*kernel, 1)
	if err != nil {
		log.Fatal(err)
	}
	baseW := experiments.Power(base).Total()

	fmt.Printf("%s: composition frontier (all normalized to 1 core)\n", *kernel)
	fmt.Printf("%6s  %10s  %8s  %10s  %10s  %8s\n",
		"cores", "cycles", "speedup", "perf/area", "perf²/W", "watts")
	bestPerf, bestArea, bestPower := 1, 1, 1
	var vPerf, vArea, vPower float64
	for _, n := range compose.Sizes() {
		r, err := s.TFlexRun(*kernel, n)
		if err != nil {
			log.Fatal(err)
		}
		sp := float64(base.Cycles) / float64(r.Cycles)
		w := experiments.Power(r).Total()
		pa := sp / (area.TFlexArea(n) / area.TFlexArea(1))
		pw := sp * sp / (w / baseW)
		fmt.Printf("%6d  %10d  %8.2f  %10.3f  %10.3f  %8.2f\n", n, r.Cycles, sp, pa, pw, w)
		if sp > vPerf {
			vPerf, bestPerf = sp, n
		}
		if pa > vArea {
			vArea, bestArea = pa, n
		}
		if pw > vPower {
			vPower, bestPower = pw, n
		}
	}
	fmt.Printf("\nbest composition by target: performance %dc, area efficiency %dc, power efficiency %dc\n",
		bestPerf, bestArea, bestPower)
	fmt.Println("a CLP picks among these at run time without recompiling the binary.")
}
