// Recompose: demonstrate §4.7 of the paper — when a thread's composition
// changes, the L1 D-caches are NOT flushed; the directory in the L2 tag
// arrays finds lines left under the old mapping and forwards or
// invalidates them on demand.
package main

import (
	"fmt"
	"log"

	"github.com/clp-sim/tflex"
)

func main() {
	// A store-then-sum workload with a working set that lives in the L1s.
	build := func(entry string) *tflex.Program {
		b := tflex.NewBuilder()
		fill := b.Block("fill")
		i := fill.Read(2)
		base := fill.Read(1)
		addr := fill.Add(base, fill.ShlI(i, 3))
		fill.Store(addr, fill.Mul(i, i), 0, 8)
		i2 := fill.AddI(i, 1)
		fill.Write(2, i2)
		fill.BranchIf(fill.OpI(tflex.OpLt, i2, 256), "fill", "reset")
		rs := b.Block("reset")
		rs.Write(2, rs.Const(0))
		rs.Write(3, rs.Const(0))
		rs.Branch("sum")
		sum := b.Block("sum")
		j := sum.Read(2)
		sbase := sum.Read(1)
		v := sum.Load(sum.Add(sbase, sum.ShlI(j, 3)), 0, 8, false)
		sum.Write(3, sum.Add(sum.Read(3), v))
		j2 := sum.AddI(j, 1)
		sum.Write(2, j2)
		sum.BranchIf(sum.OpI(tflex.OpLt, j2, 256), "sum", "done")
		b.Block("done").Halt()
		return b.MustProgram(entry)
	}

	chip := tflex.NewChip(tflex.DefaultOptions())

	// Phase 1: run the fill+sum on cores {0,1} — the data lands dirty in
	// those cores' L1 D-caches.
	left, _ := tflex.ComposeRect(0, 0, 2)
	p1, err := chip.AddProc(left, build("fill"))
	if err != nil {
		log.Fatal(err)
	}
	p1.Regs[1] = 0x100000
	if err := chip.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	fwd0 := chip.L2.Stats.Forwards
	inv0 := chip.L2.Stats.Invals
	fmt.Printf("phase 1 on cores {0,1}:  sum=%d  %d cycles\n", p1.Regs[3], p1.Stats.Cycles)

	// Phase 2: recompose — resume the same thread (same memory image) on
	// cores {2,3,6,7}.  The new banks miss; the directory locates the old
	// copies and forwards/invalidates them, with no explicit flush.
	right := tflex.Processor{Cores: []int{2, 3, 6, 7}}
	p2, err := chip.AddProcShared(right, build("reset"), p1)
	if err != nil {
		log.Fatal(err)
	}
	if err := chip.Run(20_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2 on cores {2,3,6,7}: sum=%d  %d cycles\n", p2.Regs[3], p2.Stats.Cycles)
	fmt.Printf("directory activity during recomposition: %d forwards, %d invalidations\n",
		chip.L2.Stats.Forwards-fwd0, chip.L2.Stats.Invals-inv0)
	if p1.Regs[3] == p2.Regs[3] {
		fmt.Println("results agree: the thread moved cores without any cache flush.")
	}
}
