#!/bin/sh
# Tier-1 verification gate.  Run before every commit:
#
#   ./ci.sh
#
# Checks, in order: formatting, vet, build, the full test suite under the
# race detector (which also exercises the concurrent experiment runner,
# the determinism regression in internal/experiments, and the
# optimized-vs-reference engine differential), an explicit race gate on
# the telemetry layer (shared Chrome trace + per-chip samplers inside
# concurrent runner jobs), and a one-iteration smoke of every benchmark
# so the bench harness cannot rot unnoticed.
#
#   ./ci.sh bench
#
# runs the performance harness instead: cmd/tflexbench times the Figure 6
# job grid on the optimized and reference engines and writes the numbers
# to BENCH_sim.json.
set -eu
cd "$(dirname "$0")"

if [ "${1:-}" = "bench" ]; then
    echo "== bench harness (cmd/tflexbench -> BENCH_sim.json) =="
    go run ./cmd/tflexbench -out BENCH_sim.json
    exit 0
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== telemetry race gate (sampler vs. runner jobs) =="
go test -race -count=1 -run 'TestTelemetryUnderConcurrentJobs|TestRegistryConcurrent|TestChipTelemetryEndToEnd' \
    . ./internal/telemetry ./internal/sim

echo "== benchmark smoke (1 iteration each) =="
go test -run '^$' -bench . -benchtime 1x ./...

echo "ci: all checks passed"
