#!/bin/sh
# Tier-1 verification gate.  Run before every commit:
#
#   ./ci.sh
#
# Checks, in order: formatting, vet, build, the tflexlint static-analysis
# suite (determinism, poolguard, telemetry-cost, event-discipline,
# domainguard and hotalloc invariants), the full test suite under the
# race detector (which also exercises the concurrent experiment runner,
# the determinism regression in internal/experiments, and the
# optimized-vs-reference engine differential), an explicit race gate on
# the telemetry layer (shared Chrome trace + per-chip samplers inside
# concurrent runner jobs), an explicit race gate on the observability
# server (HTTP scrapers hammering a sweep with live publishing, plus
# /domains + /flight scraped off a live ParallelDomains=4 chip), a live
# smoke that curls /metrics and /critpath off a serving tflexexp, a
# flight-recorder smoke (tflexsim -flight on a fuzz seed must write a
# dump that -flight-print parses back), and a one-iteration smoke of
# every benchmark so the bench harness cannot rot unnoticed.
#
#   ./ci.sh bench
#
# runs the performance harness instead: cmd/tflexbench times the Figure 6
# job grid on the optimized and reference engines and writes the numbers
# to BENCH_sim.json, then asserts the critical-path attribution overhead
# budget (critpath_overhead <= 1.10x), the flight-recorder overhead
# budget (flight_overhead <= 1.05x) and — on multi-CPU hosts only —
# the parallel-domain engine's speedup floor (parallel_speedup >= 1.5x
# on the multiprogrammed grid; on one CPU the domain worker pool has
# nothing to spread over, so the number is recorded but not gated).
#
#   ./ci.sh lint
#
# runs only the static-analysis stage (a few hundred milliseconds):
# go vet plus all six tflexlint analyzers over the whole module; on
# findings the machine-readable JSON record is attached to stderr.
#
#   ./ci.sh fuzz [fuzztime]
#
# runs the open-ended differential fuzzer: seeded random EDGE programs
# through every executor behind the arch.Executor contract (functional,
# conv-trace, optimized + reference timing on 1/2/4 cores), shrinking
# any divergence to a minimal .tfa reproducer.  Defaults to 30s; pass a
# Go duration to run longer.  The bounded 200-seed corpus pass runs in
# the default gate as TestFuzzCorpus.
set -eu
cd "$(dirname "$0")"

if [ "${1:-}" = "lint" ]; then
    echo "== go vet =="
    go vet ./...
    echo "== tflexlint =="
    if ! go run ./cmd/tflexlint ./...; then
        echo "== findings (json) ==" >&2
        go run ./cmd/tflexlint -json ./... >&2 || true
        exit 1
    fi
    echo "lint: clean"
    exit 0
fi

if [ "${1:-}" = "fuzz" ]; then
    fuzztime="${2:-30s}"
    echo "== differential fuzz (FuzzDifferential, ${fuzztime}) =="
    go test -run=NONE -fuzz=FuzzDifferential -fuzztime="$fuzztime" ./internal/fuzz
    exit 0
fi

if [ "${1:-}" = "bench" ]; then
    echo "== bench harness (cmd/tflexbench -> BENCH_sim.json) =="
    go run ./cmd/tflexbench -out BENCH_sim.json
    echo "== critpath overhead budget (<= 1.10x) =="
    awk '/"critpath_overhead"/ {
        gsub(/[",]/, ""); ov = $2
        printf "critpath_overhead = %s\n", ov
        if (ov + 0 > 1.10) { print "FAIL: critpath attribution exceeds its 1.10x budget"; exit 1 }
    }' BENCH_sim.json
    echo "== flight-recorder overhead budget (<= 1.05x) =="
    awk '/"flight_overhead"/ {
        gsub(/[",]/, ""); ov = $2
        printf "flight_overhead = %s\n", ov
        if (ov + 0 > 1.05) { print "FAIL: flight recorder exceeds its 1.05x budget"; exit 1 }
    }' BENCH_sim.json
    echo "== parallel-domain speedup floor (>= 1.5x, multi-CPU hosts only) =="
    cpus=$(nproc 2>/dev/null || echo 1)
    awk -v cpus="$cpus" '/"parallel_speedup"/ {
        gsub(/[",]/, ""); sp = $2
        if (cpus + 0 > 1) {
            printf "parallel_speedup = %s on %s CPUs\n", sp, cpus
            if (sp + 0 < 1.5) { print "FAIL: parallel domain engine below its 1.5x speedup floor"; exit 1 }
        } else {
            printf "parallel_speedup = %s (single-CPU host: recorded, not gated)\n", sp
        }
    }' BENCH_sim.json
    exit 0
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== tflexlint =="
go run ./cmd/tflexlint ./...

echo "== go test -race =="
go test -race ./...

echo "== telemetry race gate (sampler vs. runner jobs) =="
go test -race -count=1 -run 'TestTelemetryUnderConcurrentJobs|TestRegistryConcurrent|TestChipTelemetryEndToEnd' \
    . ./internal/telemetry ./internal/sim

echo "== observability race gate (HTTP scrape vs. live sweep + parallel domains) =="
go test -race -count=1 -run 'TestConcurrentPublishAndScrape|TestObserverDuringConcurrentSweep|TestDomainsAndFlightUnderParallelRun' \
    ./internal/obs ./internal/experiments

echo "== observability live smoke (tflexexp -serve) =="
obsbin=$(mktemp -d)/tflexexp
go build -o "$obsbin" ./cmd/tflexexp
"$obsbin" -exp fig9x -scale 1 -serve 127.0.0.1:18573 >/dev/null 2>&1 &
obspid=$!
fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "http://127.0.0.1:18573$1"
    else
        wget -qO- "http://127.0.0.1:18573$1"
    fi
}
ok=""
for _ in $(seq 1 50); do
    if metrics=$(fetch /metrics) && critjson=$(fetch /critpath); then
        ok=1
        break
    fi
    sleep 0.2
done
if [ -z "$ok" ]; then
    echo "FAIL: observability server never answered /metrics + /critpath" >&2
    kill "$obspid" 2>/dev/null || true
    exit 1
fi
case "$critjson" in
    *'"blocks"'*) ;;
    *) echo "FAIL: /critpath response lacks a blocks field: $critjson" >&2
       kill "$obspid" 2>/dev/null || true
       exit 1 ;;
esac
echo "live /metrics (${#metrics} bytes) and /critpath OK"
wait "$obspid" || true
rm -rf "$(dirname "$obsbin")"

echo "== flight recorder smoke (tflexsim -flight on a fuzz seed) =="
flightdir=$(mktemp -d)
go run ./cmd/tflexsim -fuzz-seed 7 -flight "$flightdir/seed7.flight.json" >/dev/null
go run ./cmd/tflexsim -flight-print "$flightdir/seed7.flight.json" | head -5
rm -rf "$flightdir"

echo "== benchmark smoke (1 iteration each) =="
go test -run '^$' -bench . -benchtime 1x ./...

echo "ci: all checks passed"
