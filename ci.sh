#!/bin/sh
# Tier-1 verification gate.  Run before every commit:
#
#   ./ci.sh
#
# Checks, in order: formatting, vet, build, and the full test suite under
# the race detector (which also exercises the concurrent experiment
# runner and the determinism regression in internal/experiments).
set -eu
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "ci: all checks passed"
