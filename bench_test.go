package tflex

import (
	"testing"

	"github.com/clp-sim/tflex/internal/experiments"
)

// One benchmark per paper table/figure: each regenerates the experiment
// at a small scale and reports its headline metric, so `go test -bench=.`
// reproduces the evaluation end to end.  The textual tables come from
// cmd/tflexexp; these benches time the regeneration and surface the
// numbers the paper leads with.

func BenchmarkFig5BaselineValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(1)
		d, _, err := s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.SuiteGeo["hand"], "hand-opt-trips/core2")
		b.ReportMetric(d.SuiteGeo["specint"], "specint-trips/core2")
	}
}

func BenchmarkFig6CompositionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(1)
		d, _, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.AvgBySize[16], "avg-speedup-16c")
		b.ReportMetric(d.AvgBest, "avg-speedup-best")
		b.ReportMetric(d.AvgBest/d.AvgTRIPS, "best-vs-trips")
	}
}

func BenchmarkFig7AreaEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(1)
		d, _, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.AvgBySize[1], "perf/area-1c")
		b.ReportMetric(d.AvgBySize[2], "perf/area-2c")
	}
}

func BenchmarkFig8PowerEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(1)
		d, _, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.AvgBySize[8], "perfsq/W-8c")
		b.ReportMetric(d.AvgBySize[8]/d.AvgTRIPS, "tflex8-vs-trips")
	}
}

func BenchmarkFig9ProtocolLatencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(1)
		d, _, err := s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		f := d.Fetch[32]
		b.ReportMetric(f[0]+f[1]+f[2]+f[3]+f[4], "fetch-cycles-32c")
		c := d.Commit[32]
		b.ReportMetric(c[0]+c[1], "commit-cycles-32c")
	}
}

func BenchmarkHandshakeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(1)
		d, _, err := s.Handshake()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(d.AvgGain-1), "overhead-%")
	}
}

func BenchmarkFig10WeightedSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(1)
		d, _, err := s.Fig10(4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.AvgTFlex/d.BestCMPAvg, "tflex-vs-best-cmp")
		b.ReportMetric(d.AvgTFlex/d.AvgVB, "tflex-vs-vb-cmp")
	}
}

// Microbenchmarks of the simulator substrates themselves.

func BenchmarkSimulatorThroughput(b *testing.B) {
	// Simulated cycles per wall-clock second on an 8-core composition.
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := RunKernel("conv", 2, RunConfig{Cores: 8})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/run")
}

func BenchmarkFunctionalExecution(b *testing.B) {
	inst, err := BuildKernel("ct", 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMachine(inst.Prog)
		inst.Init(&m.Regs, m.Mem.(*Memory))
		if _, err := m.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTRIPSBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunKernel("autcor", 1, RunConfig{TRIPS: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark32CoreComposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunKernel("ammp", 1, RunConfig{Cores: 32}); err != nil {
			b.Fatal(err)
		}
	}
}
