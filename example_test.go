package tflex_test

import (
	"fmt"

	"github.com/clp-sim/tflex"
)

// Build a small EDGE program and run it on a 4-core composition.
func Example() {
	b := tflex.NewBuilder()
	bb := b.Block("loop")
	i := bb.Read(2)
	bb.Write(3, bb.Add(bb.Read(3), i))
	i2 := bb.AddI(i, 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.OpI(tflex.OpLt, i2, 10), "loop", "done")
	b.Block("done").Halt()
	program := b.MustProgram("loop")

	res, err := tflex.Run(program, tflex.RunConfig{Cores: 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("r3 =", res.Regs[3])
	// Output: r3 = 45
}

// The same binary runs on every composition size with identical results.
func Example_composability() {
	b := tflex.NewBuilder()
	bb := b.Block("m")
	x := bb.Read(1)
	bb.Write(2, bb.MulI(bb.AddI(x, 3), 7))
	bb.Halt()
	program := b.MustProgram("m")

	for _, cores := range []int{1, 8, 32} {
		res, err := tflex.Run(program, tflex.RunConfig{
			Cores: cores,
			Init:  func(regs *[128]uint64, _ *tflex.Memory) { regs[1] = 5 },
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%d cores: r2 = %d\n", cores, res.Regs[2])
	}
	// Output:
	// 1 cores: r2 = 56
	// 8 cores: r2 = 56
	// 32 cores: r2 = 56
}

// Assemble the textual EDGE assembly language and verify it
// architecturally before simulating.
func ExampleAssemble() {
	program, err := tflex.Assemble(`
block double:
    %x  = read r1
    %x2 = add %x, %x
    write r2, %x2
    halt
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	m, err := tflex.Verify(program, func(regs *[128]uint64, _ *tflex.Memory) { regs[1] = 21 })
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("r2 =", m.Regs[2])
	// Output: r2 = 42
}

// Run a built-in benchmark on the TRIPS baseline.
func ExampleRunKernel() {
	res, err := tflex.RunKernel("dither", 1, tflex.RunConfig{TRIPS: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("validated:", res.Stats.BlocksCommitted > 0)
	// Output: validated: true
}
