package tflex

import (
	"fmt"
	"reflect"
	"testing"
)

// TestOptimizedVsReferenceDifferential cross-checks the engine's default
// hot path (typed events on the calendar queue, pooled blocks, cached
// decode metadata) against the reference slow path (Options.Reference:
// container/heap queue, fresh block and metadata per fetch).  The two
// paths must produce bit-identical simulations — same cycle count, same
// statistics, same architectural state — on every kernel and composition
// size; any divergence is a bug in the optimizations, not a modeling
// choice.
func TestOptimizedVsReferenceDifferential(t *testing.T) {
	kernels := []string{"conv", "autcor", "dither", "tblook", "mcf"}
	for _, name := range kernels {
		for _, cores := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/%dc", name, cores), func(t *testing.T) {
				fast, err := RunKernel(name, 1, RunConfig{Cores: cores})
				if err != nil {
					t.Fatalf("optimized run: %v", err)
				}
				refOpts := DefaultOptions()
				refOpts.Reference = true
				ref, err := RunKernel(name, 1, RunConfig{Cores: cores, Options: &refOpts})
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}
				if fast.Cycles != ref.Cycles {
					t.Errorf("cycles diverge: optimized %d, reference %d", fast.Cycles, ref.Cycles)
				}
				if !reflect.DeepEqual(fast.Stats, ref.Stats) {
					t.Errorf("stats diverge:\noptimized %+v\nreference %+v", fast.Stats, ref.Stats)
				}
				if fast.Regs != ref.Regs {
					t.Errorf("architectural registers diverge")
				}
			})
		}
	}
}
