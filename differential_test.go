package tflex

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// TestOptimizedVsReferenceDifferential cross-checks the engine's default
// hot path (typed events on the calendar queue, pooled blocks, cached
// decode metadata) against the reference slow path (Options.Reference:
// container/heap queue, fresh block and metadata per fetch).  The two
// paths must produce bit-identical simulations — same cycle count, same
// statistics, same architectural state — on every kernel and composition
// size; any divergence is a bug in the optimizations, not a modeling
// choice.
// TestParallelDomainsVsReferenceDifferential sweeps the domain engine's
// concurrency knobs — ParallelDomains in {1, 2, 8} crossed with
// GOMAXPROCS in {1, 4} — and checks every combination against the
// reference engine on the differential kernels at 1–8 composed cores.
// The partitioned engine's contract is that these knobs trade wall-clock
// time only: cycle counts, statistics and architectural state must be
// bit-identical however many OS threads the window scheduler is given.
func TestParallelDomainsVsReferenceDifferential(t *testing.T) {
	kernels := []string{"conv", "dither", "mcf"}
	coreCounts := []int{1, 2, 8}

	type key struct {
		name  string
		cores int
	}
	refs := map[key]*Result{}
	for _, name := range kernels {
		for _, cores := range coreCounts {
			refOpts := DefaultOptions()
			refOpts.Reference = true
			ref, err := RunKernel(name, 1, RunConfig{Cores: cores, Options: &refOpts})
			if err != nil {
				t.Fatalf("reference run %s/%dc: %v", name, cores, err)
			}
			refs[key{name, cores}] = ref
		}
	}

	for _, gomax := range []int{1, 4} {
		for _, domains := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("gomaxprocs=%d/par=%d", gomax, domains), func(t *testing.T) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gomax))
				for _, name := range kernels {
					for _, cores := range coreCounts {
						fast, err := RunKernel(name, 1, RunConfig{Cores: cores, ParallelDomains: domains})
						if err != nil {
							t.Fatalf("%s/%dc: %v", name, cores, err)
						}
						ref := refs[key{name, cores}]
						if fast.Cycles != ref.Cycles {
							t.Errorf("%s/%dc: cycles diverge: par %d, reference %d", name, cores, fast.Cycles, ref.Cycles)
						}
						if !reflect.DeepEqual(fast.Stats, ref.Stats) {
							t.Errorf("%s/%dc: stats diverge:\npar       %+v\nreference %+v", name, cores, fast.Stats, ref.Stats)
						}
						if fast.Regs != ref.Regs {
							t.Errorf("%s/%dc: architectural registers diverge", name, cores)
						}
					}
				}
			})
		}
	}
}

// TestMultiprogramDomainModesIdentical is the differential for the case
// where domains actually multiply: four programs on four 8-core
// partitions.  The serial merged scheduler (ParallelDomains=1) is the
// ordering ground truth; the parallel worker pool must replay it
// bit-identically — per-processor cycle counts, statistics and
// architectural state — for every ParallelDomains/GOMAXPROCS
// combination.  Every run also validates each kernel's outputs against
// its pure-Go reference implementation.
func TestMultiprogramDomainModesIdentical(t *testing.T) {
	names := []string{"conv", "autcor", "tblook", "mcf"}
	runMulti := func(t *testing.T, domains int) []*Result {
		t.Helper()
		procs, err := Partition(8, len(names))
		if err != nil {
			t.Fatalf("partition: %v", err)
		}
		specs := make([]ProgramSpec, len(names))
		insts := make([]*KernelInstance, len(names))
		for i, name := range names {
			inst, err := BuildKernel(name, 1)
			if err != nil {
				t.Fatalf("build %s: %v", name, err)
			}
			insts[i] = inst
			specs[i] = ProgramSpec{Prog: inst.Prog, Cores: procs[i], Init: inst.Init}
		}
		results, err := RunMulti(specs, RunConfig{ParallelDomains: domains})
		if err != nil {
			t.Fatalf("RunMulti(par=%d): %v", domains, err)
		}
		for i, r := range results {
			if err := insts[i].Check(&r.Regs, r.Mem); err != nil {
				t.Fatalf("par=%d: %s output validation failed: %v", domains, names[i], err)
			}
		}
		return results
	}

	base := runMulti(t, 1)
	for _, gomax := range []int{1, 4} {
		for _, domains := range []int{2, 8} {
			t.Run(fmt.Sprintf("gomaxprocs=%d/par=%d", gomax, domains), func(t *testing.T) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gomax))
				got := runMulti(t, domains)
				for i, r := range got {
					if r.Cycles != base[i].Cycles {
						t.Errorf("%s: cycles diverge: par %d, serial %d", names[i], r.Cycles, base[i].Cycles)
					}
					if !reflect.DeepEqual(r.Stats, base[i].Stats) {
						t.Errorf("%s: stats diverge:\npar    %+v\nserial %+v", names[i], r.Stats, base[i].Stats)
					}
					if r.Regs != base[i].Regs {
						t.Errorf("%s: architectural registers diverge", names[i])
					}
				}
			})
		}
	}
}

func TestOptimizedVsReferenceDifferential(t *testing.T) {
	kernels := []string{"conv", "autcor", "dither", "tblook", "mcf"}
	for _, name := range kernels {
		for _, cores := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/%dc", name, cores), func(t *testing.T) {
				fast, err := RunKernel(name, 1, RunConfig{Cores: cores})
				if err != nil {
					t.Fatalf("optimized run: %v", err)
				}
				refOpts := DefaultOptions()
				refOpts.Reference = true
				ref, err := RunKernel(name, 1, RunConfig{Cores: cores, Options: &refOpts})
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}
				if fast.Cycles != ref.Cycles {
					t.Errorf("cycles diverge: optimized %d, reference %d", fast.Cycles, ref.Cycles)
				}
				if !reflect.DeepEqual(fast.Stats, ref.Stats) {
					t.Errorf("stats diverge:\noptimized %+v\nreference %+v", fast.Stats, ref.Stats)
				}
				if fast.Regs != ref.Regs {
					t.Errorf("architectural registers diverge")
				}
			})
		}
	}
}
