package tflex

import (
	"fmt"
	"reflect"
	"testing"
)

// TestCritPathDifferential pins the attribution layer's passivity:
// enabling critical-path recording must not perturb the simulation.  A
// critpath-on run and a critpath-off run must produce bit-identical
// architectural results — same cycle count, same statistics, same
// registers — on every kernel and composition size.  Any divergence
// means recording leaked into a scheduling decision.
func TestCritPathDifferential(t *testing.T) {
	kernels := []string{"conv", "autcor", "dither", "tblook", "mcf"}
	for _, name := range kernels {
		for _, cores := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/%dc", name, cores), func(t *testing.T) {
				off, err := RunKernel(name, 1, RunConfig{Cores: cores})
				if err != nil {
					t.Fatalf("critpath-off run: %v", err)
				}
				on, err := RunKernel(name, 1, RunConfig{Cores: cores, CritPath: true})
				if err != nil {
					t.Fatalf("critpath-on run: %v", err)
				}
				if on.Cycles != off.Cycles {
					t.Errorf("cycles diverge: on %d, off %d", on.Cycles, off.Cycles)
				}
				if !reflect.DeepEqual(on.Stats, off.Stats) {
					t.Errorf("stats diverge:\non  %+v\noff %+v", on.Stats, off.Stats)
				}
				if on.Regs != off.Regs {
					t.Errorf("architectural registers diverge")
				}
				if on.CritPath == nil || on.CritPath.Blocks != on.Stats.BlocksCommitted {
					t.Fatalf("critpath summary missing or wrong block count: %+v", on.CritPath)
				}
				if off.CritPath != nil {
					t.Errorf("critpath-off run reported a summary")
				}
			})
		}
	}
}

// TestCritPathReconciliation enforces the core invariant on real
// workloads: for every committed block the attributed category cycles
// sum exactly to the block's latency (RetiredAt - FetchStart), across
// kernels and compositions from 1 to 16 cores.  The chip aggregate must
// reconcile too.
func TestCritPathReconciliation(t *testing.T) {
	kernels := []string{"conv", "autcor", "dither", "tblook", "mcf"}
	for _, name := range kernels {
		for _, cores := range []int{1, 2, 4, 8, 16} {
			t.Run(fmt.Sprintf("%s/%dc", name, cores), func(t *testing.T) {
				blocks := 0
				var sumLatency uint64
				res, err := RunKernel(name, 1, RunConfig{
					Cores:    cores,
					CritPath: true,
					OnBlock: func(ev BlockEvent) {
						if ev.Flushed {
							if ev.CritPath != nil {
								t.Errorf("flushed block %d carries a breakdown", ev.Seq)
							}
							return
						}
						if ev.CritPath == nil {
							t.Fatalf("committed block %d has no breakdown", ev.Seq)
						}
						lat := ev.RetiredAt - ev.FetchStart
						if got := ev.CritPath.Total(); got != lat {
							t.Fatalf("block %d (%s): attributed %d cycles, latency %d (breakdown %v)",
								ev.Seq, ev.Name, got, lat, *ev.CritPath)
						}
						blocks++
						sumLatency += lat
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if blocks == 0 {
					t.Fatal("no committed blocks observed")
				}
				cp := res.CritPath
				if cp == nil {
					t.Fatal("no chip aggregate")
				}
				if cp.Blocks != uint64(blocks) {
					t.Errorf("aggregate blocks = %d, observed %d", cp.Blocks, blocks)
				}
				if cp.Cycles != sumLatency {
					t.Errorf("aggregate cycles = %d, observed latency sum %d", cp.Cycles, sumLatency)
				}
				if cp.Cats.Total() != cp.Cycles {
					t.Errorf("aggregate categories sum %d != cycles %d", cp.Cats.Total(), cp.Cycles)
				}
			})
		}
	}
}
