package experiments

import (
	"testing"
)

// Determinism regression: every experiment must render byte-identical
// table output regardless of the runner's worker count.  The simulator
// is deterministic and the render phase reads the memoized store in a
// fixed order, so 1 worker and 8 workers must agree exactly — cycle
// counts, stats, formatting, everything.  Run under `go test -race`
// (ci.sh does) this also exercises the concurrent job engine and the
// audited packages for data races.
func TestExperimentsDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	outputs := func(jobs int) map[string]string {
		s := NewSuite(1)
		s.SetJobs(jobs)
		out := map[string]string{}
		record := func(name string, fn func() (string, error)) {
			text, err := fn()
			if err != nil {
				t.Fatalf("jobs=%d: %s: %v", jobs, name, err)
			}
			out[name] = text
		}
		record("fig5", func() (string, error) { _, o, err := s.Fig5(); return o, err })
		record("fig6", func() (string, error) { _, o, err := s.Fig6(); return o, err })
		record("table2", s.Table2)
		record("fig7", func() (string, error) { _, o, err := s.Fig7(); return o, err })
		record("fig8", func() (string, error) { _, o, err := s.Fig8(); return o, err })
		record("fig9", func() (string, error) { _, o, err := s.Fig9(); return o, err })
		record("fig9x", func() (string, error) { _, o, err := s.Fig9x(); return o, err })
		record("handshake", func() (string, error) { _, o, err := s.Handshake(); return o, err })
		record("fig10", func() (string, error) { _, o, err := s.Fig10(4); return o, err })
		record("ablations", func() (string, error) { _, o, err := s.Ablations(8); return o, err })
		return out
	}

	serial := outputs(1)
	parallel := outputs(8)
	for name, want := range serial {
		if got := parallel[name]; got != want {
			t.Errorf("%s: output differs between -jobs 1 and -jobs 8\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", name, want, got)
		}
	}
}

// The memoized stores must dedupe across experiments: a second run of an
// experiment does zero new simulations.
func TestSuiteCachesAcrossExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full sweep")
	}
	s := NewSuite(1)
	s.SetJobs(4)
	if _, _, err := s.Fig6(); err != nil {
		t.Fatal(err)
	}
	jobsAfterFirst := s.Summary().JobsRun
	if _, _, err := s.Fig6(); err != nil {
		t.Fatal(err)
	}
	sum := s.Summary()
	if sum.JobsRun != jobsAfterFirst {
		t.Fatalf("second Fig6 ran %d new jobs, want 0", sum.JobsRun-jobsAfterFirst)
	}
	if sum.CacheHits == 0 {
		t.Fatal("no cache hits recorded")
	}
	if sum.SimCycles == 0 {
		t.Fatal("no simulated cycles recorded")
	}
	// Fig9 reuses Fig6's TFlex sweep entirely: no new jobs either.
	if _, _, err := s.Fig9(); err != nil {
		t.Fatal(err)
	}
	if got := s.Summary().JobsRun; got != jobsAfterFirst {
		t.Fatalf("Fig9 after Fig6 ran %d new jobs, want 0", got-jobsAfterFirst)
	}
}
