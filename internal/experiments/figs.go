package experiments

import (
	"fmt"
	"strings"

	"github.com/clp-sim/tflex/internal/alloc"
	"github.com/clp-sim/tflex/internal/area"
	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/critpath"
	"github.com/clp-sim/tflex/internal/kernels"
	"github.com/clp-sim/tflex/internal/runner"
	"github.com/clp-sim/tflex/internal/stats"
)

// Table1 prints the single-core TFlex configuration.
func Table1() string {
	p := compose.DefaultCoreParams()
	t := stats.NewTable("parameter", "configuration")
	t.Row("I-cache", fmt.Sprintf("%dKB partitioned, %d-cycle hit", p.L1IBytes>>10, p.L1IHitCycles))
	t.Row("predictor", fmt.Sprintf("local/gshare tournament, %d-cycle, local %d+%d global %d choice %d",
		p.PredictorLat, p.LocalL1Entries, p.LocalL2Entries, p.GlobalEntries, p.ChoiceEntries))
	t.Row("target tables", fmt.Sprintf("RAS %d, CTB %d, BTB %d, Btype %d",
		p.RASEntries, p.CTBEntries, p.BTBEntries, p.BtypeEntries))
	t.Row("execution", fmt.Sprintf("OoO, %d-entry window, dual issue (%d int + %d FP)",
		p.WindowEntries, p.IssueTotal, p.IssueFP))
	t.Row("D-cache", fmt.Sprintf("%dKB, %d-way, %d-cycle hit, %d-entry LSQ bank",
		p.L1DBytes>>10, p.L1DAssoc, p.L1DHitCycles, p.LSQEntries))
	t.Row("L2", fmt.Sprintf("%dMB S-NUCA, %d-way, %d-%d cycle hits", p.L2Bytes>>20, p.L2Assoc, p.L2HitMin, p.L2HitMax))
	t.Row("memory", fmt.Sprintf("%d-cycle unloaded DRAM", p.DRAMCycles))
	return t.String()
}

// Fig5Data holds the TRIPS-vs-conventional comparison.
type Fig5Data struct {
	Relative map[string]float64 // per kernel: conventional cycles / TRIPS cycles
	SuiteGeo map[string]float64 // per suite geomean
}

// Fig5 runs the baseline-validation comparison.
func (s *Suite) Fig5() (Fig5Data, string, error) {
	d := Fig5Data{Relative: map[string]float64{}, SuiteGeo: map[string]float64{}}
	var specs []runner.Spec
	for _, k := range kernels.All() {
		specs = append(specs, s.Core2Spec(k.Name), s.TRIPSSpec(k.Name))
	}
	if err := s.Prefetch(specs); err != nil {
		return d, "", err
	}
	t := stats.NewTable("benchmark", "suite", "core2-cycles", "trips-cycles", "trips/core2 perf")
	suiteVals := map[string][]float64{}
	for _, k := range kernels.All() {
		c2, err := s.Core2Run(k.Name)
		if err != nil {
			return d, "", err
		}
		tr, err := s.TRIPSRun(k.Name)
		if err != nil {
			return d, "", err
		}
		rel := float64(c2.Cycles) / float64(tr.Cycles)
		d.Relative[k.Name] = rel
		suiteVals[k.Suite] = append(suiteVals[k.Suite], rel)
		t.Row(k.Name, k.Suite, c2.Cycles, tr.Cycles, rel)
	}
	for suite, vals := range suiteVals {
		d.SuiteGeo[suite] = stats.Geomean(vals)
	}
	out := t.String()
	out += "\nsuite geomeans (TRIPS perf relative to conventional core):\n"
	for _, suite := range []string{"hand", "eembc", "versa", "specint", "specfp"} {
		out += fmt.Sprintf("  %-8s %.3f\n", suite, d.SuiteGeo[suite])
	}
	return d, out, nil
}

// Fig6Data holds the composition performance sweep.
type Fig6Data struct {
	Speedup  map[string]map[int]float64 // kernel -> cores -> speedup over 1 core
	TRIPSRel map[string]float64         // kernel -> TRIPS speedup over 1-core TFlex
	Best     map[string]float64
	BestSize map[string]int

	AvgBySize     map[int]float64 // geomean speedup per fixed size
	AvgBest       float64
	AvgTRIPS      float64
	BestFixedSize int
}

// Fig6 runs the 26-kernel composition sweep plus the TRIPS baseline.
func (s *Suite) Fig6() (Fig6Data, string, error) {
	d := Fig6Data{
		Speedup:   map[string]map[int]float64{},
		TRIPSRel:  map[string]float64{},
		Best:      map[string]float64{},
		BestSize:  map[string]int{},
		AvgBySize: map[int]float64{},
	}
	var specs []runner.Spec
	for _, k := range kernels.All() {
		specs = append(specs, s.SweepSpecs(k.Name)...)
		specs = append(specs, s.TRIPSSpec(k.Name))
	}
	if err := s.Prefetch(specs); err != nil {
		return d, "", err
	}
	header := []string{"benchmark", "ilp"}
	for _, n := range s.Sizes {
		header = append(header, fmt.Sprintf("%dc", n))
	}
	header = append(header, "TRIPS", "BEST", "best-n")
	t := stats.NewTable(header...)

	bySize := map[int][]float64{}
	var bests, tripsRels []float64
	for _, k := range kernels.All() {
		curve, err := s.Speedups(k.Name)
		if err != nil {
			return d, "", err
		}
		d.Speedup[k.Name] = curve
		base, _ := s.TFlexRun(k.Name, 1)
		tr, err := s.TRIPSRun(k.Name)
		if err != nil {
			return d, "", err
		}
		trel := float64(base.Cycles) / float64(tr.Cycles)
		d.TRIPSRel[k.Name] = trel
		best, bestN := 0.0, 1
		row := []any{k.Name, ilpTag(k)}
		for _, n := range s.Sizes {
			sp := curve[n]
			bySize[n] = append(bySize[n], sp)
			if sp > best {
				best, bestN = sp, n
			}
			row = append(row, sp)
		}
		d.Best[k.Name] = best
		d.BestSize[k.Name] = bestN
		bests = append(bests, best)
		tripsRels = append(tripsRels, trel)
		row = append(row, trel, best, bestN)
		t.Row(row...)
	}
	bestAvg := 0.0
	for _, n := range s.Sizes {
		d.AvgBySize[n] = stats.Geomean(bySize[n])
		if d.AvgBySize[n] > bestAvg {
			bestAvg = d.AvgBySize[n]
			d.BestFixedSize = n
		}
	}
	d.AvgBest = stats.Geomean(bests)
	d.AvgTRIPS = stats.Geomean(tripsRels)

	out := t.String()
	out += "\naverages (geomean speedup over 1-core TFlex):\n"
	for _, n := range s.Sizes {
		out += fmt.Sprintf("  %2d cores: %.3f\n", n, d.AvgBySize[n])
	}
	out += fmt.Sprintf("  TRIPS:    %.3f\n  BEST:     %.3f\n", d.AvgTRIPS, d.AvgBest)
	out += fmt.Sprintf("  best fixed composition: %d cores\n", d.BestFixedSize)
	out += fmt.Sprintf("  TFlex-8 vs TRIPS: %+.1f%%\n", 100*(d.AvgBySize[8]/d.AvgTRIPS-1))
	out += fmt.Sprintf("  BEST vs TRIPS:    %+.1f%%\n", 100*(d.AvgBest/d.AvgTRIPS-1))
	return d, out, nil
}

func ilpTag(k kernels.Kernel) string {
	if k.HighILP {
		return "high"
	}
	return "low"
}

// Table2 prints the area breakdown and the average power breakdown for
// TRIPS and an 8-core TFlex processor.
func (s *Suite) Table2() (string, error) {
	at := stats.NewTable("component", "area (mm², 130nm)")
	for _, c := range area.TFlexCore() {
		at.Row("TFlex core: "+c.Name, c.MM2)
	}
	at.Row("TFlex core total", area.TFlexCoreArea())
	at.Row("8-core TFlex processor", area.TFlexArea(8))
	for _, c := range area.TRIPSProcessor() {
		at.Row("TRIPS: "+c.Name, c.MM2)
	}
	at.Row("TRIPS processor total", area.TRIPSArea())

	// Average power over the suite.
	var specs []runner.Spec
	for _, k := range kernels.All() {
		specs = append(specs, s.TFlexSpec(k.Name, 8), s.TRIPSSpec(k.Name))
	}
	if err := s.Prefetch(specs); err != nil {
		return "", err
	}
	var tflexW, tripsW []float64
	var tflexSum, tripsSum [8]float64
	n := 0
	for _, k := range kernels.All() {
		r8, err := s.TFlexRun(k.Name, 8)
		if err != nil {
			return "", err
		}
		rt, err := s.TRIPSRun(k.Name)
		if err != nil {
			return "", err
		}
		b8 := Power(r8)
		bt := Power(rt)
		tflexW = append(tflexW, b8.Total())
		tripsW = append(tripsW, bt.Total())
		for i, v := range [8]float64{b8.Fetch, b8.Execution, b8.L1D, b8.Routers, b8.L2, b8.DRAMIO, b8.Clock, b8.Leakage} {
			tflexSum[i] += v
		}
		for i, v := range [8]float64{bt.Fetch, bt.Execution, bt.L1D, bt.Routers, bt.L2, bt.DRAMIO, bt.Clock, bt.Leakage} {
			tripsSum[i] += v
		}
		n++
	}
	names := []string{"fetch", "execution", "L1 D-cache", "routers", "L2", "DRAM/IO", "clock tree", "leakage"}
	pt := stats.NewTable("category", "TFlex-8 (W)", "TRIPS (W)")
	for i, name := range names {
		pt.Row(name, tflexSum[i]/float64(n), tripsSum[i]/float64(n))
	}
	pt.Row("total", stats.Mean(tflexW), stats.Mean(tripsW))
	return at.String() + "\naverage power across the suite:\n" + pt.String(), nil
}

// Fig7Data holds performance/area results.
type Fig7Data struct {
	PerKernel map[string]map[int]float64 // normalized to 1-core TFlex
	AvgBySize map[int]float64
	AvgTRIPS  float64
	BestSizes map[string]int
}

// Fig7 computes performance per area: 1/(cycles x mm²).
func (s *Suite) Fig7() (Fig7Data, string, error) {
	d := Fig7Data{
		PerKernel: map[string]map[int]float64{},
		AvgBySize: map[int]float64{},
		BestSizes: map[string]int{},
	}
	var specs []runner.Spec
	for _, k := range kernels.All() {
		specs = append(specs, s.SweepSpecs(k.Name)...)
		specs = append(specs, s.TRIPSSpec(k.Name))
	}
	if err := s.Prefetch(specs); err != nil {
		return d, "", err
	}
	header := []string{"benchmark"}
	for _, n := range s.Sizes {
		header = append(header, fmt.Sprintf("%dc", n))
	}
	header = append(header, "TRIPS", "best-n")
	t := stats.NewTable(header...)
	bySize := map[int][]float64{}
	var tripsVals []float64
	for _, k := range kernels.All() {
		base, err := s.TFlexRun(k.Name, 1)
		if err != nil {
			return d, "", err
		}
		norm := area.PerfPerArea(base.Cycles, area.TFlexArea(1))
		m := map[int]float64{}
		best, bestN := 0.0, 1
		row := []any{k.Name}
		for _, n := range s.Sizes {
			r, err := s.TFlexRun(k.Name, n)
			if err != nil {
				return d, "", err
			}
			v := area.PerfPerArea(r.Cycles, area.TFlexArea(n)) / norm
			m[n] = v
			bySize[n] = append(bySize[n], v)
			if v > best {
				best, bestN = v, n
			}
			row = append(row, v)
		}
		tr, err := s.TRIPSRun(k.Name)
		if err != nil {
			return d, "", err
		}
		tv := area.PerfPerArea(tr.Cycles, area.TRIPSArea()) / norm
		tripsVals = append(tripsVals, tv)
		d.PerKernel[k.Name] = m
		d.BestSizes[k.Name] = bestN
		row = append(row, tv, bestN)
		t.Row(row...)
	}
	for _, n := range s.Sizes {
		d.AvgBySize[n] = stats.Geomean(bySize[n])
	}
	d.AvgTRIPS = stats.Geomean(tripsVals)
	out := t.String()
	out += "\ngeomean perf/area (normalized to 1-core TFlex):\n"
	for _, n := range s.Sizes {
		out += fmt.Sprintf("  %2d cores: %.3f\n", n, d.AvgBySize[n])
	}
	out += fmt.Sprintf("  TRIPS:    %.3f\n", d.AvgTRIPS)
	return d, out, nil
}

// Fig8Data holds power-efficiency results.
type Fig8Data struct {
	PerKernel map[string]map[int]float64 // perf²/W normalized to 1-core
	AvgBySize map[int]float64
	AvgBest   float64
	AvgTRIPS  float64
	BestFixed int
}

// Fig8 computes perf²/Watt across compositions and TRIPS.
func (s *Suite) Fig8() (Fig8Data, string, error) {
	d := Fig8Data{PerKernel: map[string]map[int]float64{}, AvgBySize: map[int]float64{}}
	var specs []runner.Spec
	for _, k := range kernels.All() {
		specs = append(specs, s.SweepSpecs(k.Name)...)
		specs = append(specs, s.TRIPSSpec(k.Name))
	}
	if err := s.Prefetch(specs); err != nil {
		return d, "", err
	}
	header := []string{"benchmark"}
	for _, n := range s.Sizes {
		header = append(header, fmt.Sprintf("%dc", n))
	}
	header = append(header, "TRIPS", "best-n")
	t := stats.NewTable(header...)
	bySize := map[int][]float64{}
	var bests, tripsVals []float64
	for _, k := range kernels.All() {
		base, err := s.TFlexRun(k.Name, 1)
		if err != nil {
			return d, "", err
		}
		normW := Power(base).Total()
		norm := 1.0 / (float64(base.Cycles) * float64(base.Cycles) * normW)
		m := map[int]float64{}
		best, bestN := 0.0, 1
		row := []any{k.Name}
		for _, n := range s.Sizes {
			r, err := s.TFlexRun(k.Name, n)
			if err != nil {
				return d, "", err
			}
			w := Power(r).Total()
			v := 1.0 / (float64(r.Cycles) * float64(r.Cycles) * w) / norm
			m[n] = v
			bySize[n] = append(bySize[n], v)
			if v > best {
				best, bestN = v, n
			}
			row = append(row, v)
		}
		tr, err := s.TRIPSRun(k.Name)
		if err != nil {
			return d, "", err
		}
		tw := Power(tr).Total()
		tv := 1.0 / (float64(tr.Cycles) * float64(tr.Cycles) * tw) / norm
		tripsVals = append(tripsVals, tv)
		bests = append(bests, best)
		d.PerKernel[k.Name] = m
		row = append(row, tv, bestN)
		t.Row(row...)
	}
	bestAvg := 0.0
	for _, n := range s.Sizes {
		d.AvgBySize[n] = stats.Geomean(bySize[n])
		if d.AvgBySize[n] > bestAvg {
			bestAvg, d.BestFixed = d.AvgBySize[n], n
		}
	}
	d.AvgBest = stats.Geomean(bests)
	d.AvgTRIPS = stats.Geomean(tripsVals)
	out := t.String()
	out += "\ngeomean perf²/W (normalized to 1-core TFlex):\n"
	for _, n := range s.Sizes {
		out += fmt.Sprintf("  %2d cores: %.3f\n", n, d.AvgBySize[n])
	}
	out += fmt.Sprintf("  TRIPS:    %.3f\n  BEST:     %.3f\n", d.AvgTRIPS, d.AvgBest)
	out += fmt.Sprintf("  best fixed composition: %d cores\n", d.BestFixed)
	out += fmt.Sprintf("  per-app BEST vs best fixed: %+.1f%%\n", 100*(d.AvgBest/bestAvg-1))
	if d.AvgTRIPS > 0 {
		out += fmt.Sprintf("  TFlex-8 vs TRIPS: %+.1f%%\n", 100*(d.AvgBySize[8]/d.AvgTRIPS-1))
	}
	return d, out, nil
}

// Fig9Data holds the distributed fetch/commit latency decomposition.
type Fig9Data struct {
	Fetch  map[int][5]float64 // cores -> {const, handoff, bcast, dispatch, istall}
	Commit map[int][2]float64 // cores -> {arch update, handshake}
}

// Fig9 decomposes the distributed protocol latencies per composition size.
func (s *Suite) Fig9() (Fig9Data, string, error) {
	d := Fig9Data{Fetch: map[int][5]float64{}, Commit: map[int][2]float64{}}
	var specs []runner.Spec
	for _, n := range s.Sizes {
		for _, k := range kernels.All() {
			specs = append(specs, s.TFlexSpec(k.Name, n))
		}
	}
	if err := s.Prefetch(specs); err != nil {
		return d, "", err
	}
	ft := stats.NewTable("cores", "constant", "hand-off", "fetch-dist", "dispatch", "i-stall", "total")
	ct := stats.NewTable("cores", "arch-update", "handshake", "total")
	for _, n := range s.Sizes {
		var f [5]float64
		var c [2]float64
		cnt := 0.0
		for _, k := range kernels.All() {
			r, err := s.TFlexRun(k.Name, n)
			if err != nil {
				return d, "", err
			}
			// Rendered from the registry snapshot, not the flat Stats
			// fields; fetchLatency documents why the values are identical.
			a, b, bc, disp, ist := r.fetchLatency()
			ar, hs := r.commitLatency()
			f[0] += a
			f[1] += b
			f[2] += bc
			f[3] += disp
			f[4] += ist
			c[0] += ar
			c[1] += hs
			cnt++
		}
		for i := range f {
			f[i] /= cnt
		}
		for i := range c {
			c[i] /= cnt
		}
		d.Fetch[n] = f
		d.Commit[n] = c
		ft.Row(n, f[0], f[1], f[2], f[3], f[4], f[0]+f[1]+f[2]+f[3]+f[4])
		ct.Row(n, c[0], c[1], c[0]+c[1])
	}
	out := "Figure 9a: distributed fetch latency components (cycles/block)\n" + ft.String()
	out += "\nFigure 9b: distributed commit latency components (cycles/block)\n" + ct.String()
	return d, out, nil
}

// Fig9xData holds the critical-path attribution aggregate per
// composition size: over every hand-optimized kernel, where each
// committed block's latency is attributed cycle-exactly to the eight
// categories (see internal/critpath).
type Fig9xData struct {
	Agg map[int]critpath.Summary // cores -> aggregate over all kernels
}

// Fig9x renders the critical-path attribution companion to Figure 9:
// where the cycles of a committed block's lifetime actually go, per
// composition size.  Unlike Figure 9's per-phase protocol averages,
// these columns reconcile exactly — for every committed block the eight
// categories sum to the block's full latency, so the table accounts for
// 100% of block time with no "other" bucket.
func (s *Suite) Fig9x() (Fig9xData, string, error) {
	d := Fig9xData{Agg: map[int]critpath.Summary{}}
	var specs []runner.Spec
	for _, n := range s.Sizes {
		for _, k := range kernels.HandOptimized() {
			specs = append(specs, s.CritSpec(k.Name, n))
		}
	}
	if err := s.Prefetch(specs); err != nil {
		return d, "", err
	}
	cols := []string{"cores"}
	for c := critpath.Category(0); c < critpath.NumCategories; c++ {
		cols = append(cols, c.Short())
	}
	ct := stats.NewTable(append(append([]string{}, cols...), "cycles/block")...)
	pt := stats.NewTable(append(append([]string{}, cols...), "total%")...)
	for _, n := range s.Sizes {
		var agg critpath.Summary
		for _, k := range kernels.HandOptimized() {
			r, err := s.CritRun(k.Name, n)
			if err != nil {
				return d, "", err
			}
			agg.Merge(r.Sum)
		}
		// The reconciliation invariant must survive aggregation: every
		// block's categories sum to its latency, so the chip-wide sums
		// must too.  A mismatch here means an attribution bug upstream.
		if agg.Cats.Total() != agg.Cycles {
			return d, "", fmt.Errorf("fig9x: %d-core attribution does not reconcile: categories sum %d, cycles %d",
				n, agg.Cats.Total(), agg.Cycles)
		}
		d.Agg[n] = agg
		crow := []any{n}
		prow := []any{n}
		var pctSum float64
		for c := critpath.Category(0); c < critpath.NumCategories; c++ {
			crow = append(crow, agg.PerBlock(c))
			pct := 0.0
			if agg.Cycles > 0 {
				pct = 100 * float64(agg.Cats[c]) / float64(agg.Cycles)
			}
			pctSum += pct
			prow = append(prow, pct)
		}
		perBlock := 0.0
		if agg.Blocks > 0 {
			perBlock = float64(agg.Cycles) / float64(agg.Blocks)
		}
		ct.Row(append(crow, perBlock)...)
		pt.Row(append(prow, pctSum)...)
	}
	out := "Figure 9x: critical-path attribution (cycles/block, avg over committed blocks)\n" + ct.String()
	out += "\nFigure 9x: share of block latency (%)\n" + pt.String()
	return d, out, nil
}

// HandshakeData holds the §6.4 instantaneous-handshake ablation.
type HandshakeData struct {
	AvgGain float64 // speedup of zero-handshake over normal at 32 cores
	PerApp  map[string]float64
}

// Handshake runs the instantaneous-handshake ablation at 32 cores.
func (s *Suite) Handshake() (HandshakeData, string, error) {
	d := HandshakeData{PerApp: map[string]float64{}}
	var specs []runner.Spec
	for _, k := range kernels.All() {
		specs = append(specs, s.TFlexSpec(k.Name, 32), s.ZeroHSSpec(k.Name))
	}
	if err := s.Prefetch(specs); err != nil {
		return d, "", err
	}
	t := stats.NewTable("benchmark", "normal", "zero-handshake", "gain")
	var gains []float64
	for _, k := range kernels.All() {
		normal, err := s.TFlexRun(k.Name, 32)
		if err != nil {
			return d, "", err
		}
		zero, err := s.ZeroHandshakeRun(k.Name)
		if err != nil {
			return d, "", err
		}
		g := float64(normal.Cycles) / float64(zero.Cycles)
		d.PerApp[k.Name] = g
		gains = append(gains, g)
		t.Row(k.Name, normal.Cycles, zero.Cycles, g)
	}
	d.AvgGain = stats.Geomean(gains)
	out := t.String()
	out += fmt.Sprintf("\naverage speedup with instantaneous handshakes at 32 cores: %.3fx "+
		"(paper: < 2%% — the block-structured ISA amortizes the protocols)\n", d.AvgGain)
	return d, out, nil
}

// Fig10Data holds the multiprogrammed weighted-speedup comparison.
type Fig10Data struct {
	Sizes      []int
	TFlexWS    map[int]float64 // workload size -> average WS
	CMPWS      map[int]map[int]float64
	VBWS       map[int]float64
	AvgTFlex   float64
	AvgVB      float64
	BestCMPAvg float64
	BestCMPK   int
	MaxGain    float64                 // max TFlex gain over best fixed CMP
	Fractions  map[int]map[int]float64 // workload size -> granularity -> fraction
}

// Fig10 evaluates multiprogrammed throughput: TFlex's optimal asymmetric
// allocation vs fixed CMPs and the symmetric variable-best CMP, over
// random workloads drawn from the 12 hand-optimized benchmarks.
func (s *Suite) Fig10(workloadsPerSize int) (Fig10Data, string, error) {
	hand := kernels.HandOptimized()
	var specs []runner.Spec
	for _, k := range hand {
		specs = append(specs, s.SweepSpecs(k.Name)...)
	}
	if err := s.Prefetch(specs); err != nil {
		return Fig10Data{}, "", err
	}
	curves := map[string]alloc.Curve{}
	for _, k := range hand {
		c, err := s.Speedups(k.Name)
		if err != nil {
			return Fig10Data{}, "", err
		}
		curves[k.Name] = c
	}
	cmpKs := []int{1, 2, 4, 8, 16}
	d := Fig10Data{
		Sizes:     []int{2, 4, 6, 8, 12, 16},
		TFlexWS:   map[int]float64{},
		CMPWS:     map[int]map[int]float64{},
		VBWS:      map[int]float64{},
		Fractions: map[int]map[int]float64{},
	}
	header := []string{"threads", "TFlex"}
	for _, k := range cmpKs {
		header = append(header, fmt.Sprintf("CMP-%d", k))
	}
	header = append(header, "VB-CMP")
	t := stats.NewTable(header...)

	cmpSums := map[int]float64{}
	var tflexSum, vbSum float64
	var maxGain float64
	seed := uint64(20070612)
	lcg := func() uint64 { seed = seed*6364136223846793005 + 1442695040888963407; return seed >> 17 }

	for _, size := range d.Sizes {
		var tws, vws float64
		cws := map[int]float64{}
		fracs := map[int]float64{}
		assignCount := 0
		for w := 0; w < workloadsPerSize; w++ {
			var wl []alloc.Curve
			for a := 0; a < size; a++ {
				wl = append(wl, curves[hand[int(lcg())%len(hand)].Name])
			}
			assign, ws := alloc.BestWS(wl, compose.NumCores)
			tws += ws
			for _, a := range assign {
				fracs[a]++
				assignCount++
			}
			for _, k := range cmpKs {
				cws[k] += alloc.FixedWS(wl, k, compose.NumCores)
			}
			_, vb := alloc.VariableBestWS(wl, compose.NumCores, []int{1, 2, 4, 8, 16, 32})
			vws += vb
		}
		n := float64(workloadsPerSize)
		d.TFlexWS[size] = tws / n
		d.VBWS[size] = vws / n
		d.CMPWS[size] = map[int]float64{}
		row := []any{size, tws / n}
		for _, k := range cmpKs {
			d.CMPWS[size][k] = cws[k] / n
			row = append(row, cws[k]/n)
			cmpSums[k] += cws[k] / n
		}
		row = append(row, vws/n)
		t.Row(row...)
		tflexSum += tws / n
		vbSum += vws / n
		bestFixed := 0.0
		for _, k := range cmpKs {
			if cws[k]/n > bestFixed {
				bestFixed = cws[k] / n
			}
		}
		if gain := (tws / n) / bestFixed; gain > maxGain {
			maxGain = gain
		}
		d.Fractions[size] = map[int]float64{}
		for g, c := range fracs {
			d.Fractions[size][g] = c / float64(assignCount)
		}
	}
	nSizes := float64(len(d.Sizes))
	d.AvgTFlex = tflexSum / nSizes
	d.AvgVB = vbSum / nSizes
	for _, k := range cmpKs {
		if cmpSums[k]/nSizes > d.BestCMPAvg {
			d.BestCMPAvg = cmpSums[k] / nSizes
			d.BestCMPK = k
		}
	}
	d.MaxGain = maxGain

	out := "Figure 10: average weighted speedup per workload size\n" + t.String()
	out += fmt.Sprintf("\nAVG: TFlex %.3f, best fixed CMP-%d %.3f (TFlex %+.1f%%, max %+.1f%%), VB-CMP %.3f (TFlex %+.1f%%)\n",
		d.AvgTFlex, d.BestCMPK, d.BestCMPAvg,
		100*(d.AvgTFlex/d.BestCMPAvg-1), 100*(maxGain-1),
		d.AvgVB, 100*(d.AvgTFlex/d.AvgVB-1))
	out += "\nallocation fractions (workload size -> granularity -> fraction of apps):\n"
	for _, size := range d.Sizes {
		var parts []string
		for _, g := range []int{1, 2, 4, 8, 16, 32} {
			if f := d.Fractions[size][g]; f > 0 {
				parts = append(parts, fmt.Sprintf("%dc:%.0f%%", g, 100*f))
			}
		}
		out += fmt.Sprintf("  %2d threads: %s\n", size, strings.Join(parts, " "))
	}
	return d, out, nil
}
