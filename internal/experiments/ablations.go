package experiments

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/kernels"
	"github.com/clp-sim/tflex/internal/sim"
	"github.com/clp-sim/tflex/internal/stats"
)

// Ablations isolates the design choices the paper calls out:
//
//   - operand-network bandwidth: the paper doubles TFlex's operand
//     bandwidth relative to TRIPS to reduce inter-ALU contention;
//   - dual issue: TFlex cores issue two instructions per cycle against
//     TRIPS's single-issue tiles;
//   - distributed vs centralized next-block prediction: composability
//     requires distributing the predictor, which also scales its capacity;
//   - LSQ sizing: the NACK overflow mechanism lets banks stay small
//     (44 entries) instead of being sized for the worst case.
//
// Each ablation runs the full suite on an 8-core composition and reports
// the geomean slowdown relative to the default TFlex configuration.

// AblationData maps ablation name to geomean relative performance
// (default cycles / variant cycles; < 1 means the variant is slower).
type AblationData struct {
	Relative map[string]float64
}

type ablation struct {
	name string
	desc string
	mod  func(*sim.Options)
}

func ablationList() []ablation {
	return []ablation{
		{"operand-bw-1x", "halve operand network bandwidth (TRIPS-style)",
			func(o *sim.Options) { o.Params.OperandBW = 1 }},
		{"single-issue", "single-issue cores (TRIPS-style tiles)",
			func(o *sim.Options) { o.Params.IssueTotal = 1 }},
		{"central-predictor", "centralized next-block prediction and block control",
			func(o *sim.Options) { o.CentralPredictor = true }},
		{"worst-case-lsq", "LSQ banks sized for the worst case (no NACKs)",
			func(o *sim.Options) { o.Params.LSQEntries = 1024 }},
	}
}

// Ablations runs the ablation matrix at the given composition size.
func (s *Suite) Ablations(cores int) (AblationData, string, error) {
	d := AblationData{Relative: map[string]float64{}}
	t := stats.NewTable("ablation", "geomean perf vs default", "note")

	variantRun := func(opts sim.Options, name string) (map[string]uint64, error) {
		out := map[string]uint64{}
		for _, k := range kernels.All() {
			inst, err := k.Build(s.Scale)
			if err != nil {
				return nil, err
			}
			chip := sim.New(opts)
			r, err := runInstance(inst, chip, compose.MustRect(0, 0, cores), cores)
			if err != nil {
				return nil, fmt.Errorf("%s under %s: %w", k.Name, name, err)
			}
			out[k.Name] = r.Cycles
		}
		return out, nil
	}

	base := map[string]uint64{}
	for _, k := range kernels.All() {
		r, err := s.TFlexRun(k.Name, cores)
		if err != nil {
			return d, "", err
		}
		base[k.Name] = r.Cycles
	}

	for _, ab := range ablationList() {
		opts := sim.DefaultOptions()
		ab.mod(&opts)
		cycles, err := variantRun(opts, ab.name)
		if err != nil {
			return d, "", err
		}
		var rels []float64
		for name, c := range cycles {
			rels = append(rels, float64(base[name])/float64(c))
		}
		rel := stats.Geomean(rels)
		d.Relative[ab.name] = rel
		t.Row(ab.name, rel, ab.desc)
	}
	out := fmt.Sprintf("design-choice ablations at %d cores (perf relative to default TFlex; <1 = slower):\n", cores)
	out += t.String()
	return d, out, nil
}
