package experiments

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/kernels"
	"github.com/clp-sim/tflex/internal/runner"
	"github.com/clp-sim/tflex/internal/sim"
	"github.com/clp-sim/tflex/internal/stats"
)

// Ablations isolates the design choices the paper calls out:
//
//   - operand-network bandwidth: the paper doubles TFlex's operand
//     bandwidth relative to TRIPS to reduce inter-ALU contention;
//   - dual issue: TFlex cores issue two instructions per cycle against
//     TRIPS's single-issue tiles;
//   - distributed vs centralized next-block prediction: composability
//     requires distributing the predictor, which also scales its capacity;
//   - LSQ sizing: the NACK overflow mechanism lets banks stay small
//     (44 entries) instead of being sized for the worst case.
//
// Each ablation runs the full suite on an 8-core composition and reports
// the geomean slowdown relative to the default TFlex configuration.

// AblationData maps ablation name to geomean relative performance
// (default cycles / variant cycles; < 1 means the variant is slower).
type AblationData struct {
	Relative map[string]float64
}

type ablation struct {
	name string
	desc string
	mod  func(*sim.Options)
}

func ablationList() []ablation {
	return []ablation{
		{"operand-bw-1x", "halve operand network bandwidth (TRIPS-style)",
			func(o *sim.Options) { o.Params.OperandBW = 1 }},
		{"single-issue", "single-issue cores (TRIPS-style tiles)",
			func(o *sim.Options) { o.Params.IssueTotal = 1 }},
		{"central-predictor", "centralized next-block prediction and block control",
			func(o *sim.Options) { o.CentralPredictor = true }},
		{"worst-case-lsq", "LSQ banks sized for the worst case (no NACKs)",
			func(o *sim.Options) { o.Params.LSQEntries = 1024 }},
	}
}

// ablationRun returns (cached) the kernel's run under the named ablation
// at the given composition size.
func (s *Suite) ablationRun(name, kernel string, cores int) (RunResult, error) {
	return s.ablate.Get(sizedKey{name + "/" + kernel, cores}, func() (RunResult, error) {
		var ab *ablation
		for _, a := range ablationList() {
			if a.name == name {
				ab = &a
				break
			}
		}
		if ab == nil {
			return RunResult{}, fmt.Errorf("unknown ablation %q", name)
		}
		k, ok := kernels.ByName(kernel)
		if !ok {
			return RunResult{}, fmt.Errorf("unknown kernel %q", kernel)
		}
		inst, err := k.Build(s.Scale)
		if err != nil {
			return RunResult{}, err
		}
		opts := sim.DefaultOptions()
		ab.mod(&opts)
		chip := sim.New(opts)
		r, err := s.runInstance(inst, chip, compose.MustRect(0, 0, cores), cores)
		if err != nil {
			return RunResult{}, fmt.Errorf("%s under %s: %w", kernel, name, err)
		}
		return r, nil
	})
}

// Ablations runs the ablation matrix at the given composition size.
func (s *Suite) Ablations(cores int) (AblationData, string, error) {
	d := AblationData{Relative: map[string]float64{}}
	t := stats.NewTable("ablation", "geomean perf vs default", "note")

	var specs []runner.Spec
	for _, k := range kernels.All() {
		specs = append(specs, s.TFlexSpec(k.Name, cores))
		for _, ab := range ablationList() {
			specs = append(specs, s.AblateSpec(ab.name, k.Name, cores))
		}
	}
	if err := s.Prefetch(specs); err != nil {
		return d, "", err
	}

	base := map[string]uint64{}
	for _, k := range kernels.All() {
		r, err := s.TFlexRun(k.Name, cores)
		if err != nil {
			return d, "", err
		}
		base[k.Name] = r.Cycles
	}

	for _, ab := range ablationList() {
		var rels []float64
		for _, k := range kernels.All() {
			r, err := s.ablationRun(ab.name, k.Name, cores)
			if err != nil {
				return d, "", err
			}
			rels = append(rels, float64(base[k.Name])/float64(r.Cycles))
		}
		rel := stats.Geomean(rels)
		d.Relative[ab.name] = rel
		t.Row(ab.name, rel, ab.desc)
	}
	out := fmt.Sprintf("design-choice ablations at %d cores (perf relative to default TFlex; <1 = slower):\n", cores)
	out += t.String()
	return d, out, nil
}
