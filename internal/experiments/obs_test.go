package experiments

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/clp-sim/tflex/internal/obs"
)

// TestObserverDuringConcurrentSweep is the integration race gate for
// live observability: a sweep runs on multiple workers with an observer
// attached while HTTP scrapers hammer /metrics and /critpath the whole
// time.  Run under -race (ci.sh does) this catches any path where a
// handler reads simulator-owned state instead of a published copy.
func TestObserverDuringConcurrentSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a multi-kernel sweep")
	}
	o := obs.New()
	ts := httptest.NewServer(o.Handler())
	defer ts.Close()

	s := NewSuite(1)
	s.SetJobs(4)
	s.SetObserver(o)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/critpath"} {
					res, err := http.Get(ts.URL + path)
					if err != nil {
						return
					}
					io.Copy(io.Discard, res.Body) //nolint:errcheck
					res.Body.Close()
				}
			}
		}()
	}

	if _, _, err := s.Fig9x(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Every observed run feeds the rolling aggregate; after a full
	// Fig9x sweep it must have accumulated blocks and reconcile.
	snap := o.Rolling().Snapshot()
	if snap.Blocks == 0 {
		t.Fatal("observer rolling aggregate saw no blocks")
	}
	if snap.Cats.Total() != snap.Cycles {
		t.Fatalf("rolling aggregate does not reconcile: categories %d, cycles %d",
			snap.Cats.Total(), snap.Cycles)
	}

	// The final publish must have landed a non-empty snapshot.
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if len(body) < 10 {
		t.Fatalf("final /metrics snapshot looks empty: %q", body)
	}
}
