package experiments

import (
	"strings"
	"testing"
)

// The experiment tests assert the paper's qualitative shapes, not its
// absolute numbers: who wins, roughly by how much, and where the optima
// fall.  They run at scale 1 to stay fast.

func suite(t *testing.T) *Suite {
	t.Helper()
	return NewSuite(1)
}

func TestTable1Prints(t *testing.T) {
	s := Table1()
	for _, want := range []string{"8KB", "128-entry window", "44-entry LSQ", "4MB S-NUCA", "150-cycle"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full sweep")
	}
	s := suite(t)
	d, out, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Speedup) != 26 {
		t.Fatalf("%d kernels", len(d.Speedup))
	}
	// Composition helps on average: some multi-core size beats 1 core.
	if d.AvgBySize[d.BestFixedSize] <= 1.05 {
		t.Fatalf("best fixed avg %.3f: composition should help", d.AvgBySize[d.BestFixedSize])
	}
	if d.BestFixedSize < 4 {
		t.Fatalf("best fixed composition %d: paper has 8-16", d.BestFixedSize)
	}
	// BEST (per-app) beats any fixed composition.
	if d.AvgBest < d.AvgBySize[d.BestFixedSize] {
		t.Fatal("per-app best must be >= best fixed")
	}
	// The flexible BEST configuration outperforms TRIPS (paper: +42%).
	if d.AvgBest <= d.AvgTRIPS {
		t.Fatalf("BEST %.3f should beat TRIPS %.3f", d.AvgBest, d.AvgTRIPS)
	}
	// High-ILP kernels scale further than low-ILP ones.
	if d.BestSize["conv"] < d.BestSize["mcf"] {
		t.Errorf("conv best %d cores < mcf best %d cores", d.BestSize["conv"], d.BestSize["mcf"])
	}
	if !strings.Contains(out, "TRIPS") {
		t.Error("output missing TRIPS row")
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full sweep")
	}
	s := suite(t)
	d, _, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's split: TRIPS wins big on hand-optimized code and loses
	// on compiled SPEC-INT-style code.
	if d.SuiteGeo["hand"] <= d.SuiteGeo["specint"] {
		t.Fatalf("hand %.3f should exceed specint %.3f", d.SuiteGeo["hand"], d.SuiteGeo["specint"])
	}
	if d.SuiteGeo["hand"] < 1.0 {
		t.Fatalf("TRIPS should beat the conventional core on hand-optimized code: %.3f", d.SuiteGeo["hand"])
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full sweep")
	}
	s := suite(t)
	d, out, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// Constant portion: 7 cycles when speculating, 4 at one core.
	if f := d.Fetch[1]; f[0] != 4 {
		t.Errorf("1-core constant fetch = %v", f[0])
	}
	if f := d.Fetch[16]; f[0] != 7 {
		t.Errorf("16-core constant fetch = %v", f[0])
	}
	// Fetch distribution grows with cores; dispatch shrinks.
	if d.Fetch[32][2] <= d.Fetch[2][2] {
		t.Errorf("fetch distribution should grow: %v vs %v", d.Fetch[32][2], d.Fetch[2][2])
	}
	if d.Fetch[32][3] >= d.Fetch[1][3] {
		t.Errorf("dispatch should shrink: %v vs %v", d.Fetch[32][3], d.Fetch[1][3])
	}
	// Commit handshake grows with cores.
	if d.Commit[32][1] <= d.Commit[2][1] {
		t.Errorf("commit handshake should grow: %v vs %v", d.Commit[32][1], d.Commit[2][1])
	}
	if !strings.Contains(out, "hand-off") {
		t.Error("output missing components")
	}
}

func TestHandshakeAblationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full sweep")
	}
	s := suite(t)
	d, _, err := s.Handshake()
	if err != nil {
		t.Fatal(err)
	}
	if d.AvgGain < 0.99 {
		t.Fatalf("zero handshake should not hurt: %.3f", d.AvgGain)
	}
	// The paper reports < 2% on near-128-instruction hyperblocks.  Our
	// kernels use smaller blocks, so the serial prediction hand-off chain
	// shows through more; the reconstruction bounds it at 25% and
	// EXPERIMENTS.md documents the deviation.
	if d.AvgGain > 1.25 {
		t.Fatalf("handshake overhead %.1f%% is far above expectations", 100*(d.AvgGain-1))
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full sweep")
	}
	s := suite(t)
	d, out, err := s.Fig10(6)
	if err != nil {
		t.Fatal(err)
	}
	// TFlex's optimal asymmetric allocation beats every fixed CMP and the
	// symmetric variable-best CMP.
	if d.AvgTFlex < d.BestCMPAvg {
		t.Fatalf("TFlex %.3f < best fixed CMP %.3f", d.AvgTFlex, d.BestCMPAvg)
	}
	if d.AvgTFlex < d.AvgVB {
		t.Fatalf("TFlex %.3f < VB CMP %.3f", d.AvgTFlex, d.AvgVB)
	}
	// Larger workloads get more weighted speedup on TFlex.
	if d.TFlexWS[16] <= d.TFlexWS[2] {
		t.Fatal("16-thread WS should exceed 2-thread WS")
	}
	// Allocation granularities vary within a workload size.
	varied := false
	for _, fr := range d.Fractions {
		if len(fr) > 1 {
			varied = true
		}
	}
	if !varied {
		t.Error("expected mixed granularities in at least one workload size")
	}
	if !strings.Contains(out, "CMP-4") {
		t.Error("output missing CMP columns")
	}
}

func TestTable2Prints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full sweep")
	}
	s := suite(t)
	out, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TFlex core total", "TRIPS processor total", "clock tree", "leakage"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestFig7And8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full sweep")
	}
	s := suite(t)
	d7, _, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// Area efficiency peaks at small compositions (paper: 1-2 cores).
	best := 1
	bestV := 0.0
	for n, v := range d7.AvgBySize {
		if v > bestV {
			best, bestV = n, v
		}
	}
	if best > 4 {
		t.Errorf("perf/area peaks at %d cores; paper peaks at 1-2", best)
	}

	d8, _, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// Power efficiency peaks at an intermediate composition and per-app
	// BEST beats any fixed point.
	if d8.BestFixed < 2 || d8.BestFixed > 16 {
		t.Errorf("perf²/W peaks at %d cores; paper peaks at 8", d8.BestFixed)
	}
	if d8.AvgBest < d8.AvgBySize[d8.BestFixed] {
		t.Error("per-app best must be >= best fixed")
	}
	// TFlex-8 is more power-efficient than TRIPS (paper: ~64%).
	if d8.AvgBySize[8] <= d8.AvgTRIPS {
		t.Errorf("TFlex-8 (%.3f) should beat TRIPS (%.3f) in perf²/W", d8.AvgBySize[8], d8.AvgTRIPS)
	}
}

func TestAblationsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full sweep")
	}
	s := suite(t)
	d, out, err := s.Ablations(8)
	if err != nil {
		t.Fatal(err)
	}
	// Each paper-motivated optimization should help (its removal should
	// not speed things up materially).
	for _, name := range []string{"operand-bw-1x", "single-issue", "central-predictor"} {
		if d.Relative[name] > 1.02 {
			t.Errorf("%s should not beat the default: %.3f", name, d.Relative[name])
		}
	}
	// Single issue must hurt clearly.
	if d.Relative["single-issue"] > 0.98 {
		t.Errorf("single-issue barely hurts: %.3f", d.Relative["single-issue"])
	}
	// The NACK mechanism should be close to worst-case-sized LSQs: the
	// paper's argument is that small banks plus NACK lose little.
	if d.Relative["worst-case-lsq"] < 0.85 {
		t.Errorf("44-entry NACK LSQs lose %.1f%% vs worst-case sizing", 100*(1-d.Relative["worst-case-lsq"]))
	}
	if !strings.Contains(out, "ablation") {
		t.Error("missing table")
	}
}
