// Package experiments regenerates every table and figure of the paper's
// evaluation: the Core2-baseline comparison (Figure 5), the composition
// performance sweep (Figure 6), area and power efficiency (Table 2,
// Figures 7 and 8), the distributed-protocol overhead analysis (Figure 9
// and the §6.4 instantaneous-handshake ablation), and the multiprogrammed
// weighted-speedup comparison against fixed CMPs (Figure 10).
package experiments

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/conv"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/kernels"
	"github.com/clp-sim/tflex/internal/power"
	"github.com/clp-sim/tflex/internal/sim"
	"github.com/clp-sim/tflex/internal/trips"
)

// MaxCycles bounds every simulation.
const MaxCycles = 2_000_000_000

// RunResult captures one timing-simulator run.
type RunResult struct {
	Cycles   uint64
	Stats    sim.Stats
	Counters power.Counters
}

// Suite runs and caches the experiment simulations.
type Suite struct {
	Scale int   // kernel input scale
	Sizes []int // TFlex composition sizes

	tflex  map[string]map[int]RunResult // kernel -> cores -> result
	tripsR map[string]RunResult
	core2  map[string]conv.Result
	zeroHS map[string]RunResult // 32-core zero-handshake runs
}

// NewSuite returns a suite at the given kernel scale.
func NewSuite(scale int) *Suite {
	return &Suite{
		Scale:  scale,
		Sizes:  compose.Sizes(),
		tflex:  map[string]map[int]RunResult{},
		tripsR: map[string]RunResult{},
		core2:  map[string]conv.Result{},
		zeroHS: map[string]RunResult{},
	}
}

func collect(chip *sim.Chip, proc *sim.Proc, cores, fpus int) RunResult {
	st := proc.Stats
	pc := power.Counters{
		Cycles: st.Cycles,
		Cores:  cores,
		FPUs:   fpus,

		BlockFetches: st.BlocksFetched,
		Predictions:  proc.Pred.Stats.Predictions,
		IntOps:       st.InstsFired - st.FPFired,
		FPOps:        st.FPFired,
		RegReads:     st.RegReads,
		RegWrites:    st.RegWrites,
		L1DAccesses:  chip.L1DStats().Accesses,
		LSQOps:       st.Loads + st.Stores,
		RouterFlits:  chip.Opn.Stats().Hops + chip.Ctl.Stats().Hops,
		L2Accesses:   chip.L2.Stats.Accesses,
		DRAMAccesses: chip.DRAM.Stats.Requests,
	}
	return RunResult{Cycles: st.Cycles, Stats: st, Counters: pc}
}

// runInstance executes one kernel instance on a chip/processor pair and
// validates the outputs against the reference.
func runInstance(inst *kernels.Instance, chip *sim.Chip, procCores compose.Processor, fpus int) (RunResult, error) {
	proc, err := chip.AddProc(procCores, inst.Prog)
	if err != nil {
		return RunResult{}, err
	}
	inst.Init(&proc.Regs, proc.Mem)
	if err := chip.Run(MaxCycles); err != nil {
		return RunResult{}, err
	}
	if err := inst.Check(&proc.Regs, proc.Mem); err != nil {
		return RunResult{}, fmt.Errorf("output validation: %w", err)
	}
	return collect(chip, proc, procCores.N(), fpus), nil
}

// TFlexRun returns (cached) the kernel's run on an n-core composition.
func (s *Suite) TFlexRun(name string, n int) (RunResult, error) {
	if m, ok := s.tflex[name]; ok {
		if r, ok := m[n]; ok {
			return r, nil
		}
	}
	k, ok := kernels.ByName(name)
	if !ok {
		return RunResult{}, fmt.Errorf("unknown kernel %q", name)
	}
	inst, err := k.Build(s.Scale)
	if err != nil {
		return RunResult{}, err
	}
	chip := sim.New(sim.DefaultOptions())
	r, err := runInstance(inst, chip, compose.MustRect(0, 0, n), n)
	if err != nil {
		return RunResult{}, fmt.Errorf("%s on %d cores: %w", name, n, err)
	}
	if s.tflex[name] == nil {
		s.tflex[name] = map[int]RunResult{}
	}
	s.tflex[name][n] = r
	return r, nil
}

// TRIPSRun returns (cached) the kernel's run on the TRIPS baseline.
func (s *Suite) TRIPSRun(name string) (RunResult, error) {
	if r, ok := s.tripsR[name]; ok {
		return r, nil
	}
	k, ok := kernels.ByName(name)
	if !ok {
		return RunResult{}, fmt.Errorf("unknown kernel %q", name)
	}
	inst, err := k.Build(s.Scale)
	if err != nil {
		return RunResult{}, err
	}
	chip := trips.NewChip()
	r, err := runInstance(inst, chip, trips.Processor(), trips.NumTiles)
	if err != nil {
		return RunResult{}, fmt.Errorf("%s on TRIPS: %w", name, err)
	}
	// Clock-tree power scales with latch counts (paper §6.3): the TRIPS
	// processor's tiles carry roughly the latch count of 8 TFlex cores,
	// plus one FPU per execution tile (twice the FPUs of an equal-width
	// TFlex composition — the paper's idle-FPU asymmetry).
	r.Counters.Cores = 8
	r.Counters.FPUs = trips.NumTiles
	s.tripsR[name] = r
	return r, nil
}

// Core2Run returns (cached) the kernel's run on the conventional
// superscalar model, via the linearized functional trace.
func (s *Suite) Core2Run(name string) (conv.Result, error) {
	if r, ok := s.core2[name]; ok {
		return r, nil
	}
	k, ok := kernels.ByName(name)
	if !ok {
		return conv.Result{}, fmt.Errorf("unknown kernel %q", name)
	}
	inst, err := k.Build(s.Scale)
	if err != nil {
		return conv.Result{}, err
	}
	m := exec.NewMachine(inst.Prog)
	m.Trace = &exec.Trace{}
	inst.Init(&m.Regs, m.Mem.(*exec.PageMem))
	if _, err := m.Run(50_000_000); err != nil {
		return conv.Result{}, err
	}
	if err := inst.Check(&m.Regs, m.Mem.(*exec.PageMem)); err != nil {
		return conv.Result{}, err
	}
	r := conv.Run(m.Trace.Entries, conv.DefaultConfig())
	s.core2[name] = r
	return r, nil
}

// ZeroHandshakeRun returns the kernel's 32-core run with instantaneous
// distributed handshakes (§6.4).
func (s *Suite) ZeroHandshakeRun(name string) (RunResult, error) {
	if r, ok := s.zeroHS[name]; ok {
		return r, nil
	}
	k, ok := kernels.ByName(name)
	if !ok {
		return RunResult{}, fmt.Errorf("unknown kernel %q", name)
	}
	inst, err := k.Build(s.Scale)
	if err != nil {
		return RunResult{}, err
	}
	opts := sim.DefaultOptions()
	opts.ZeroHandshake = true
	chip := sim.New(opts)
	r, err := runInstance(inst, chip, compose.MustRect(0, 0, 32), 32)
	if err != nil {
		return RunResult{}, err
	}
	s.zeroHS[name] = r
	return r, nil
}

// Speedups returns the kernel's cores→speedup curve relative to one core.
func (s *Suite) Speedups(name string) (map[int]float64, error) {
	base, err := s.TFlexRun(name, 1)
	if err != nil {
		return nil, err
	}
	curve := map[int]float64{}
	for _, n := range s.Sizes {
		r, err := s.TFlexRun(name, n)
		if err != nil {
			return nil, err
		}
		curve[n] = float64(base.Cycles) / float64(r.Cycles)
	}
	return curve, nil
}

// Power evaluates the power model over a run.
func Power(r RunResult) power.Breakdown {
	return power.Default().Breakdown(r.Counters)
}
