// Package experiments regenerates every table and figure of the paper's
// evaluation: the Core2-baseline comparison (Figure 5), the composition
// performance sweep (Figure 6), area and power efficiency (Table 2,
// Figures 7 and 8), the distributed-protocol overhead analysis (Figure 9
// and the §6.4 instantaneous-handshake ablation), and the multiprogrammed
// weighted-speedup comparison against fixed CMPs (Figure 10).
//
// Every experiment is two-phase: it first enqueues its full set of
// declarative job specs on the suite's concurrent runner (internal/runner),
// which fans the independent cycle-level simulations out across a worker
// pool and memoizes each result by job key; it then renders its tables
// from the warmed store.  Because the simulator is deterministic and the
// render phase is serial over stable kernel/size orders, the output is
// byte-identical at any worker count (see determinism_test.go).
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/conv"
	"github.com/clp-sim/tflex/internal/critpath"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/flight"
	"github.com/clp-sim/tflex/internal/kernels"
	"github.com/clp-sim/tflex/internal/obs"
	"github.com/clp-sim/tflex/internal/power"
	"github.com/clp-sim/tflex/internal/runner"
	"github.com/clp-sim/tflex/internal/sim"
	"github.com/clp-sim/tflex/internal/telemetry"
	"github.com/clp-sim/tflex/internal/trips"
)

// MaxCycles bounds every simulation.
const MaxCycles = 2_000_000_000

// Machine-configuration names used in job specs.
const (
	cfgTFlex  = "tflex"
	cfgTRIPS  = "trips"
	cfgCore2  = "core2"
	cfgZeroHS = "zero-handshake"
	cfgCrit   = "critpath"
	cfgAblate = "ablate:" // prefix; full config is "ablate:<name>"
)

// RunResult captures one timing-simulator run.
type RunResult struct {
	Cycles   uint64
	Stats    sim.Stats
	Counters power.Counters
	Metrics  telemetry.Snapshot // end-of-run registry capture (see collect)
}

// fetchLatency recomputes Stats.FetchLatency from the registry snapshot.
// Counter snapshots are float64(uint64), exact below 2^53, so these
// quotients equal the flat-struct math bit for bit.
func (r RunResult) fetchLatency() (constant, handOff, bcast, dispatch, istall float64) {
	n := r.Metrics.Get("proc0.fetch.blocks")
	if n == 0 {
		return
	}
	return r.Metrics.Get("proc0.fetch.const_sum") / n,
		r.Metrics.Get("proc0.fetch.handoff_sum") / n,
		r.Metrics.Get("proc0.fetch.bcast_sum") / n,
		r.Metrics.Get("proc0.fetch.dispatch_sum") / n,
		r.Metrics.Get("proc0.fetch.istall_sum") / n
}

// commitLatency recomputes Stats.CommitLatency from the registry snapshot.
func (r RunResult) commitLatency() (arch, handshake float64) {
	n := r.Metrics.Get("proc0.commit.blocks")
	if n == 0 {
		return
	}
	return r.Metrics.Get("proc0.commit.arch_sum") / n,
		r.Metrics.Get("proc0.commit.handshake_sum") / n
}

// Suite runs and caches the experiment simulations.  All Run methods are
// safe for concurrent use: results live in concurrency-safe memoized
// stores, and each simulation builds its own private chip.
type Suite struct {
	Scale int   // kernel input scale
	Sizes []int // TFlex composition sizes

	engine *runner.Engine
	obs    *obs.Server // nil unless SetObserver armed live observability

	domMu sync.Mutex // guards dom; runner jobs record concurrently
	dom   domainAgg

	tflex  runner.Store[sizedKey, RunResult] // kernel × cores
	tripsR runner.Store[string, RunResult]
	core2  runner.Store[string, conv.Result]
	zeroHS runner.Store[string, RunResult]    // 32-core zero-handshake runs
	ablate runner.Store[sizedKey, RunResult]  // ablation variants, key = {"<ablation>/<kernel>", cores}
	crit   runner.Store[sizedKey, CritResult] // attribution-enabled runs, kernel × cores
}

// CritResult is one attribution-enabled timing run: the ordinary run
// result plus the chip's critical-path summary.
type CritResult struct {
	Run RunResult
	Sum critpath.Summary
}

type sizedKey struct {
	name  string
	cores int
}

// NewSuite returns a suite at the given kernel scale, running jobs on
// GOMAXPROCS workers (see SetJobs).
func NewSuite(scale int) *Suite {
	s := &Suite{
		Scale:  scale,
		Sizes:  compose.Sizes(),
		engine: &runner.Engine{},
	}
	s.engine.Exec = s.exec
	return s
}

// SetJobs caps the number of concurrently running simulations; n <= 0
// restores the GOMAXPROCS default.
func (s *Suite) SetJobs(n int) { s.engine.Workers = n }

// SetProgress routes per-job progress lines (completion-ordered, with
// wall-clock timing) to w; nil silences them.
func (s *Suite) SetProgress(w io.Writer) { s.engine.Progress = w }

// SetTrace records one Chrome trace span per executed simulation job on
// the runner's worker tracks (real time, 1µs units).
func (s *Suite) SetTrace(t *telemetry.Trace) { s.engine.Trace = t }

// SetObserver wires a live observability server into every subsequent
// simulation: each run enables critical-path attribution feeding the
// server's rolling /critpath aggregate, and publishes periodic registry
// snapshots and sampler rows for /metrics and /events.  Call before the
// first experiment; the tables on stdout are unaffected (recording is
// passive), but -metrics exports gain critpath histogram entries.
func (s *Suite) SetObserver(o *obs.Server) { s.obs = o }

// MetricsByJob returns every completed timing run's registry snapshot,
// keyed by the runner job key (the Core2 model runs on the functional
// trace and carries no registry).
func (s *Suite) MetricsByJob() map[string]telemetry.Snapshot {
	out := map[string]telemetry.Snapshot{}
	s.tflex.Each(func(k sizedKey, r RunResult) { out[s.TFlexSpec(k.name, k.cores).Key()] = r.Metrics })
	s.tripsR.Each(func(k string, r RunResult) { out[s.TRIPSSpec(k).Key()] = r.Metrics })
	s.zeroHS.Each(func(k string, r RunResult) { out[s.ZeroHSSpec(k).Key()] = r.Metrics })
	s.ablate.Each(func(k sizedKey, r RunResult) {
		abl, kern, _ := strings.Cut(k.name, "/")
		out[s.AblateSpec(abl, kern, k.cores).Key()] = r.Metrics
	})
	s.crit.Each(func(k sizedKey, r CritResult) { out[s.CritSpec(k.name, k.cores).Key()] = r.Run.Metrics })
	return out
}

// WriteMetrics serializes MetricsByJob as indented JSON.  Map keys
// marshal in sorted order at both levels, so the file is deterministic
// at any worker count.
func (s *Suite) WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.MetricsByJob())
}

// exec dispatches one declarative job spec to the matching run method.
// Results land in the memoized stores keyed by spec, so the runner's
// merge is simply the warmed cache.
func (s *Suite) exec(sp runner.Spec) error {
	var err error
	switch {
	case sp.Config == cfgTFlex:
		_, err = s.TFlexRun(sp.Kernel, sp.Cores)
	case sp.Config == cfgTRIPS:
		_, err = s.TRIPSRun(sp.Kernel)
	case sp.Config == cfgCore2:
		_, err = s.Core2Run(sp.Kernel)
	case sp.Config == cfgZeroHS:
		_, err = s.ZeroHandshakeRun(sp.Kernel)
	case sp.Config == cfgCrit:
		_, err = s.CritRun(sp.Kernel, sp.Cores)
	case strings.HasPrefix(sp.Config, cfgAblate):
		_, err = s.ablationRun(strings.TrimPrefix(sp.Config, cfgAblate), sp.Kernel, sp.Cores)
	default:
		err = fmt.Errorf("unknown job config %q", sp.Config)
	}
	return err
}

// Prefetch fans the job specs out across the worker pool and blocks
// until every job has run; results are memoized in the suite's stores,
// so subsequent Run-method calls for the same specs are cache hits.
// Duplicate specs collapse onto one job.  All jobs run to completion;
// the returned error is the first failure in submission order.
func (s *Suite) Prefetch(specs []runner.Spec) error {
	_, err := s.engine.Run(specs)
	return err
}

// TFlexSpec is the job spec for kernel on an n-core TFlex composition.
func (s *Suite) TFlexSpec(kernel string, cores int) runner.Spec {
	return runner.Spec{Kernel: kernel, Config: cfgTFlex, Cores: cores, Scale: s.Scale}
}

// TRIPSSpec is the job spec for kernel on the TRIPS baseline.
func (s *Suite) TRIPSSpec(kernel string) runner.Spec {
	return runner.Spec{Kernel: kernel, Config: cfgTRIPS, Scale: s.Scale}
}

// Core2Spec is the job spec for kernel on the conventional-core model.
func (s *Suite) Core2Spec(kernel string) runner.Spec {
	return runner.Spec{Kernel: kernel, Config: cfgCore2, Scale: s.Scale}
}

// ZeroHSSpec is the job spec for kernel's 32-core zero-handshake run.
func (s *Suite) ZeroHSSpec(kernel string) runner.Spec {
	return runner.Spec{Kernel: kernel, Config: cfgZeroHS, Cores: 32, Scale: s.Scale}
}

// CritSpec is the job spec for kernel's attribution-enabled run on an
// n-core composition.
func (s *Suite) CritSpec(kernel string, cores int) runner.Spec {
	return runner.Spec{Kernel: kernel, Config: cfgCrit, Cores: cores, Scale: s.Scale}
}

// AblateSpec is the job spec for kernel under the named design ablation.
func (s *Suite) AblateSpec(ablation, kernel string, cores int) runner.Spec {
	return runner.Spec{Kernel: kernel, Config: cfgAblate + ablation, Cores: cores, Scale: s.Scale}
}

// SweepSpecs lists every composition size (plus the 1-core baseline
// implied by Speedups) for one kernel.
func (s *Suite) SweepSpecs(kernel string) []runner.Spec {
	specs := []runner.Spec{s.TFlexSpec(kernel, 1)}
	for _, n := range s.Sizes {
		specs = append(specs, s.TFlexSpec(kernel, n))
	}
	return specs
}

// Summary aggregates suite activity: jobs run, cache hits, simulated
// cycles and wall time — the harness-throughput numbers for BENCH_*.json.
type Summary struct {
	JobsRun   int           // simulations executed by the runner
	CacheHits uint64        // store lookups served from memo
	SimCycles uint64        // total simulated cycles across all timing runs
	Wall      time.Duration // real elapsed time inside runner batches
	CPUTime   time.Duration // summed per-job wall time
}

func (s Summary) String() string {
	return fmt.Sprintf("suite: %d jobs, %d cache hits, %d sim cycles, wall %.2fs (in-job %.2fs)",
		s.JobsRun, s.CacheHits, s.SimCycles, s.Wall.Seconds(), s.CPUTime.Seconds())
}

// domainAgg accumulates per-domain scheduler statistics across every
// chip the suite has run — the raw material of the Parallel line.
type domainAgg struct {
	chips        int
	domains      int
	windows      uint64
	events       uint64
	barrierWait  uint64
	sharedGrants uint64
	sharedWait   uint64
}

// recordDomains folds one finished chip's domain statistics into the
// suite aggregate.  Runner jobs call it concurrently.
func (s *Suite) recordDomains(ds []flight.DomainStats) {
	s.domMu.Lock()
	defer s.domMu.Unlock()
	s.dom.chips++
	s.dom.domains += len(ds)
	for _, d := range ds {
		s.dom.windows += d.Windows
		s.dom.events += d.Events
		s.dom.barrierWait += d.BarrierWait
		s.dom.sharedGrants += d.SharedGrants
		s.dom.sharedWait += d.SharedWait
	}
}

// Parallel renders the suite's parallel-efficiency line: how well the
// job pool filled the machine (in-job time over wall time) and what the
// event-domain schedulers did underneath.  Single-domain chips run the
// exact serial engine and open no lockstep windows, so the domain half
// degrades to a chip count when no windows were crossed.
func (s *Suite) Parallel() string {
	es := s.engine.Summary()
	s.domMu.Lock()
	a := s.dom
	s.domMu.Unlock()
	line := "parallel: "
	if es.Wall > 0 {
		line += fmt.Sprintf("%.2fx job concurrency (in-job %.2fs / wall %.2fs)",
			es.CPUTime.Seconds()/es.Wall.Seconds(), es.CPUTime.Seconds(), es.Wall.Seconds())
	} else {
		line += "no jobs run"
	}
	if a.windows > 0 {
		line += fmt.Sprintf("; domains: %d across %d chips, %d lockstep windows, avg barrier slack %.1f cycles/window, shared grants %d (waits %d)",
			a.domains, a.chips, a.windows, float64(a.barrierWait)/float64(a.windows), a.sharedGrants, a.sharedWait)
	} else {
		line += fmt.Sprintf("; domains: %d single-domain chips (serial engine, no lockstep windows)", a.chips)
	}
	return line
}

// Summary reports cumulative runner and cache activity.
func (s *Suite) Summary() Summary {
	es := s.engine.Summary()
	sum := Summary{
		JobsRun: es.JobsRun,
		Wall:    es.Wall,
		CPUTime: es.CPUTime,
	}
	addHits := func(hits uint64) { sum.CacheHits += hits }
	h, _ := s.tflex.Stats()
	addHits(h)
	h, _ = s.tripsR.Stats()
	addHits(h)
	h, _ = s.core2.Stats()
	addHits(h)
	h, _ = s.zeroHS.Stats()
	addHits(h)
	h, _ = s.ablate.Stats()
	addHits(h)
	h, _ = s.crit.Stats()
	addHits(h)
	s.tflex.Each(func(_ sizedKey, r RunResult) { sum.SimCycles += r.Cycles })
	s.tripsR.Each(func(_ string, r RunResult) { sum.SimCycles += r.Cycles })
	s.zeroHS.Each(func(_ string, r RunResult) { sum.SimCycles += r.Cycles })
	s.ablate.Each(func(_ sizedKey, r RunResult) { sum.SimCycles += r.Cycles })
	s.crit.Each(func(_ sizedKey, r CritResult) { sum.SimCycles += r.Run.Cycles })
	s.core2.Each(func(_ string, r conv.Result) { sum.SimCycles += r.Cycles })
	return sum
}

// collect reads the run's power counters out of the chip's telemetry
// registry (armed by runInstance before the run) and captures the full
// registry snapshot — the experiment tables and the -metrics export
// render from the same hierarchical names.  The operand-traffic number
// (RouterFlits) is the registry's mesh hop counters; every counter view
// reads the same field the flat Stats struct carries, so the tables stay
// byte-identical to the pre-registry renderer.
func collect(chip *sim.Chip, proc *sim.Proc, cores, fpus int) RunResult {
	st := proc.Stats
	reg := chip.Telemetry()
	prefix := fmt.Sprintf("proc%d", proc.ID())
	cv := reg.CounterValue
	pc := power.Counters{
		Cycles: cv(prefix + ".cycles"),
		Cores:  cores,
		FPUs:   fpus,

		BlockFetches: cv(prefix + ".blocks.fetched"),
		Predictions:  cv(prefix + ".pred.predictions"),
		IntOps:       cv(prefix+".insts.fired") - cv(prefix+".insts.fp_fired"),
		FPOps:        cv(prefix + ".insts.fp_fired"),
		RegReads:     cv(prefix + ".reg.reads"),
		RegWrites:    cv(prefix + ".reg.writes"),
		L1DAccesses:  reg.SumCounters("", ".l1d.accesses"),
		LSQOps:       cv(prefix+".mem.loads") + cv(prefix+".mem.stores"),
		RouterFlits:  cv("noc.opnd.hops") + cv("noc.ctl.hops"),
		L2Accesses:   cv("l2.accesses"),
		DRAMAccesses: cv("dram.requests"),
	}
	return RunResult{Cycles: st.Cycles, Stats: st, Counters: pc, Metrics: reg.Snapshot()}
}

// runInstance executes one kernel instance on a chip/processor pair and
// validates the outputs against the reference.  When an observer is set
// (SetObserver), the run additionally enables critical-path attribution
// into the server's rolling aggregate and publishes registry snapshots
// mid-run; both are passive, so the architectural results are identical
// with or without observation.
func (s *Suite) runInstance(inst *kernels.Instance, chip *sim.Chip, procCores compose.Processor, fpus int) (RunResult, error) {
	reg := chip.Telemetry() // arm metrics pre-run so histograms observe the blocks
	if o := s.obs; o != nil {
		chip.EnableCritPath()
		chip.SetCritPathSink(o.Rolling())
		samp := chip.SampleEvery(16384)
		samp.SetNotify(func(cycle uint64, names []string, row []float64) {
			o.PublishSample(cycle, names, row)
			o.PublishMetrics(reg.Snapshot())
			o.PublishDomains(chip.DomainStats())
		})
	}
	proc, err := chip.AddProc(procCores, inst.Prog)
	if err != nil {
		return RunResult{}, err
	}
	inst.Init(&proc.Regs, proc.Mem)
	if err := chip.Run(MaxCycles); err != nil {
		return RunResult{}, err
	}
	s.recordDomains(chip.DomainStats())
	if s.obs != nil {
		s.obs.PublishMetrics(reg.Snapshot())
		s.obs.PublishDomains(chip.DomainStats())
	}
	if err := inst.Check(&proc.Regs, proc.Mem); err != nil {
		return RunResult{}, fmt.Errorf("output validation: %w", err)
	}
	return collect(chip, proc, procCores.N(), fpus), nil
}

// TFlexRun returns (cached) the kernel's run on an n-core composition.
func (s *Suite) TFlexRun(name string, n int) (RunResult, error) {
	return s.tflex.Get(sizedKey{name, n}, func() (RunResult, error) {
		k, ok := kernels.ByName(name)
		if !ok {
			return RunResult{}, fmt.Errorf("unknown kernel %q", name)
		}
		inst, err := k.Build(s.Scale)
		if err != nil {
			return RunResult{}, err
		}
		chip := sim.New(sim.DefaultOptions())
		r, err := s.runInstance(inst, chip, compose.MustRect(0, 0, n), n)
		if err != nil {
			return RunResult{}, fmt.Errorf("%s on %d cores: %w", name, n, err)
		}
		return r, nil
	})
}

// TRIPSRun returns (cached) the kernel's run on the TRIPS baseline.
func (s *Suite) TRIPSRun(name string) (RunResult, error) {
	return s.tripsR.Get(name, func() (RunResult, error) {
		k, ok := kernels.ByName(name)
		if !ok {
			return RunResult{}, fmt.Errorf("unknown kernel %q", name)
		}
		inst, err := k.Build(s.Scale)
		if err != nil {
			return RunResult{}, err
		}
		chip := trips.NewChip()
		r, err := s.runInstance(inst, chip, trips.Processor(), trips.NumTiles)
		if err != nil {
			return RunResult{}, fmt.Errorf("%s on TRIPS: %w", name, err)
		}
		// Clock-tree power scales with latch counts (paper §6.3): the TRIPS
		// processor's tiles carry roughly the latch count of 8 TFlex cores,
		// plus one FPU per execution tile (twice the FPUs of an equal-width
		// TFlex composition — the paper's idle-FPU asymmetry).
		r.Counters.Cores = 8
		r.Counters.FPUs = trips.NumTiles
		return r, nil
	})
}

// Core2Run returns (cached) the kernel's run on the conventional
// superscalar model, via the linearized functional trace.
func (s *Suite) Core2Run(name string) (conv.Result, error) {
	return s.core2.Get(name, func() (conv.Result, error) {
		k, ok := kernels.ByName(name)
		if !ok {
			return conv.Result{}, fmt.Errorf("unknown kernel %q", name)
		}
		inst, err := k.Build(s.Scale)
		if err != nil {
			return conv.Result{}, err
		}
		m := exec.NewMachine(inst.Prog)
		m.Trace = &exec.Trace{}
		inst.Init(&m.Regs, m.Mem.(*exec.PageMem))
		if _, err := m.Run(50_000_000); err != nil {
			return conv.Result{}, err
		}
		if err := inst.Check(&m.Regs, m.Mem.(*exec.PageMem)); err != nil {
			return conv.Result{}, err
		}
		return conv.Run(m.Trace.Entries, conv.DefaultConfig()), nil
	})
}

// ZeroHandshakeRun returns the kernel's 32-core run with instantaneous
// distributed handshakes (§6.4).
func (s *Suite) ZeroHandshakeRun(name string) (RunResult, error) {
	return s.zeroHS.Get(name, func() (RunResult, error) {
		k, ok := kernels.ByName(name)
		if !ok {
			return RunResult{}, fmt.Errorf("unknown kernel %q", name)
		}
		inst, err := k.Build(s.Scale)
		if err != nil {
			return RunResult{}, err
		}
		opts := sim.DefaultOptions()
		opts.ZeroHandshake = true
		chip := sim.New(opts)
		return s.runInstance(inst, chip, compose.MustRect(0, 0, 32), 32)
	})
}

// CritRun returns (cached) the kernel's run on an n-core composition
// with critical-path attribution enabled.  It simulates separately from
// TFlexRun — same deterministic timing (recording is passive; the
// differential test in the root package pins this), but the result
// additionally carries the chip's attribution summary.
func (s *Suite) CritRun(name string, n int) (CritResult, error) {
	return s.crit.Get(sizedKey{name, n}, func() (CritResult, error) {
		k, ok := kernels.ByName(name)
		if !ok {
			return CritResult{}, fmt.Errorf("unknown kernel %q", name)
		}
		inst, err := k.Build(s.Scale)
		if err != nil {
			return CritResult{}, err
		}
		chip := sim.New(sim.DefaultOptions())
		chip.EnableCritPath()
		r, err := s.runInstance(inst, chip, compose.MustRect(0, 0, n), n)
		if err != nil {
			return CritResult{}, fmt.Errorf("%s on %d cores (critpath): %w", name, n, err)
		}
		return CritResult{Run: r, Sum: chip.CritPath()}, nil
	})
}

// Speedups returns the kernel's cores→speedup curve relative to one core.
func (s *Suite) Speedups(name string) (map[int]float64, error) {
	base, err := s.TFlexRun(name, 1)
	if err != nil {
		return nil, err
	}
	curve := map[int]float64{}
	for _, n := range s.Sizes {
		r, err := s.TFlexRun(name, n)
		if err != nil {
			return nil, err
		}
		curve[n] = float64(base.Cycles) / float64(r.Cycles)
	}
	return curve, nil
}

// Power evaluates the power model over a run.
func Power(r RunResult) power.Breakdown {
	return power.Default().Breakdown(r.Counters)
}
