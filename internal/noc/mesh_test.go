package noc

import (
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	m := NewMesh(4, 8, 1)
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 1},   // one row down
		{0, 5, 2},   // diagonal
		{0, 31, 10}, // corner to corner of 4x8
	}
	for _, c := range cases {
		if got := m.Dist(c.a, c.b); got != c.want {
			t.Errorf("Dist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	m := NewMesh(4, 8, 1)
	f := func(a, b uint8) bool {
		x, y := int(a)%32, int(b)%32
		return m.Dist(x, y) == m.Dist(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendUncontended(t *testing.T) {
	m := NewMesh(4, 4, 2)
	// Adjacent hop: 1 cycle.
	if arr := m.Send(0, 1, 100); arr != 101 {
		t.Fatalf("adjacent arrival %d, want 101", arr)
	}
	// Local delivery is free.
	if arr := m.Send(5, 5, 100); arr != 100 {
		t.Fatalf("local arrival %d", arr)
	}
	// Multi-hop: hops cycles.
	m2 := NewMesh(4, 4, 2)
	if arr := m2.Send(0, 15, 0); arr != uint64(m2.Dist(0, 15)) {
		t.Fatalf("corner arrival %d, want %d", arr, m2.Dist(0, 15))
	}
}

func TestSendContention(t *testing.T) {
	// With bw=1, two messages over the same link in the same cycle must
	// serialize; with bw=2 they must not.
	for _, bw := range []int{1, 2} {
		m := NewMesh(2, 1, bw)
		a1 := m.Send(0, 1, 10)
		a2 := m.Send(0, 1, 10)
		if a1 != 11 {
			t.Fatalf("bw=%d first arrival %d", bw, a1)
		}
		want := uint64(11)
		if bw == 1 {
			want = 12
		}
		if a2 != want {
			t.Fatalf("bw=%d second arrival %d, want %d", bw, a2, want)
		}
	}
}

func TestContentionStatsCounted(t *testing.T) {
	m := NewMesh(2, 1, 1)
	m.Send(0, 1, 10)
	m.Send(0, 1, 10)
	if m.Stats().StallCycles == 0 {
		t.Fatal("expected stall cycles under contention")
	}
	if m.Stats().Messages != 2 || m.Stats().Hops != 2 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestSendMonotonicProperty(t *testing.T) {
	m := NewMesh(4, 8, 2)
	f := func(from, to uint8, start uint16) bool {
		f32, t32 := int(from)%32, int(to)%32
		arr := m.Send(f32, t32, uint64(start))
		return arr >= uint64(start)+uint64(m.Dist(f32, t32))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastSerializesInjection(t *testing.T) {
	m := NewMesh(4, 1, 8) // wide links so only injection limits
	targets := []int{1, 1, 1, 1}
	last := m.Broadcast(0, targets, 0, 1)
	// Four messages injected one per cycle, each 1 hop: last at 1+3.
	if last != 4 {
		t.Fatalf("last arrival %d, want 4", last)
	}
	m2 := NewMesh(4, 1, 8)
	last2 := m2.Broadcast(0, targets, 0, 4)
	if last2 >= last {
		t.Fatalf("higher injection bandwidth should reduce latency: %d vs %d", last2, last)
	}
}

func TestBroadcastIncludesSelfFree(t *testing.T) {
	m := NewMesh(2, 1, 1)
	last := m.Broadcast(0, []int{0}, 7, 1)
	if last != 7 {
		t.Fatalf("self broadcast should be free, got %d", last)
	}
}

func TestGather(t *testing.T) {
	m := NewMesh(4, 1, 2)
	last := m.Gather([]int{0, 1, 2, 3}, []uint64{0, 0, 0, 0}, 0)
	if last < 3 {
		t.Fatalf("gather from node 3 needs >= 3 cycles, got %d", last)
	}
}

func TestReservationWindowAdvance(t *testing.T) {
	// Reservations far beyond the horizon must still work.
	m := NewMesh(2, 1, 1)
	m.Send(0, 1, 0)
	if arr := m.Send(0, 1, 1_000_000); arr != 1_000_001 {
		t.Fatalf("far-future send arrival %d", arr)
	}
	if arr := m.Send(0, 1, 1_000_000); arr != 1_000_002 {
		t.Fatalf("contended far-future send arrival %d", arr)
	}
}

func TestNewMeshPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMesh(0, 4, 1)
}
