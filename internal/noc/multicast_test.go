package noc

import (
	"testing"
	"testing/quick"
)

func TestMulticastArrivalsMatchDistance(t *testing.T) {
	m := NewMesh(4, 8, 2)
	targets := []int{0, 1, 2, 3, 4, 8, 31}
	arr := m.Multicast(0, targets, 100)
	for i, to := range targets {
		want := uint64(100 + m.Dist(0, to))
		if arr[i] != want {
			t.Fatalf("target %d arrival %d, want %d (uncontended tree)", to, arr[i], want)
		}
	}
}

func TestMulticastSharesLinks(t *testing.T) {
	// A multicast to the whole row uses each link once: a second unicast
	// on the first link in the same cycle still fits in bw=2; a third
	// does not.  If the multicast had sent per-target unicasts, the first
	// link would already be saturated.
	m := NewMesh(4, 1, 2)
	m.Multicast(0, []int{1, 2, 3}, 10)
	if arr := m.Send(0, 1, 10); arr != 11 {
		t.Fatalf("one slot should remain on link 0->1 at t=10, arrival %d", arr)
	}
	if arr := m.Send(0, 1, 10); arr != 12 {
		t.Fatalf("link 0->1 should now be saturated at t=10, arrival %d", arr)
	}
}

func TestMulticastSelfIsFree(t *testing.T) {
	m := NewMesh(4, 8, 2)
	arr := m.Multicast(5, []int{5}, 42)
	if arr[0] != 42 {
		t.Fatalf("self delivery at %d", arr[0])
	}
}

func TestMulticastNeverBeatsUnicastProperty(t *testing.T) {
	f := func(from uint8, t1, t2, t3 uint8, start uint16) bool {
		m := NewMesh(4, 8, 2)
		src := int(from) % 32
		targets := []int{int(t1) % 32, int(t2) % 32, int(t3) % 32}
		arr := m.Multicast(src, targets, uint64(start))
		for i, to := range targets {
			// Tree delivery is never earlier than the hop distance and
			// never later than a fully serialized unicast chain.
			lo := uint64(start) + uint64(m.Dist(src, to))
			hi := uint64(start) + uint64(m.Dist(src, to)) + uint64(len(targets))
			if arr[i] < lo || arr[i] > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastCountsOneMessage(t *testing.T) {
	m := NewMesh(4, 8, 2)
	m.Multicast(0, []int{1, 2, 3, 4, 5, 6, 7}, 0)
	if got := m.Stats().Messages; got != 1 {
		t.Fatalf("multicast counted as %d messages", got)
	}
}
