// Package noc models the on-chip 2-D mesh networks connecting TFlex cores:
// the operand network that routes dataflow operands between ALUs, and the
// control network used by the distributed fetch/commit protocols.
//
// The model is a reservation-based approximation of a wormhole-routed
// mesh: messages follow dimension-ordered (XY) routes; each directed link
// accepts a fixed number of flits per cycle (the paper doubles the operand
// network bandwidth of TFlex relative to TRIPS); a message occupies one
// link slot per hop, one hop per cycle, and is delayed to the earliest
// cycle with a free slot on each link along its path.  Adjacent-core
// bypass costs a single cycle, matching the paper's 1-cycle inter-core hop
// at 2.5 GHz.
package noc

// horizon is the per-link reservation window in cycles.  Reservations are
// made at or slightly after the current simulation cycle, so a few
// thousand cycles of lookahead is ample.
const horizon = 4096

type link struct {
	base  uint64 // earliest reservable cycle (requests clamp forward to it)
	used  []uint16
	stamp []uint64 // cycle+1 each slot currently describes; 0 = never used
	flits uint64   // total flit traversals, exported per-link via telemetry
}

func (l *link) reserve(t uint64, bw uint16) uint64 {
	if l.used == nil {
		l.used = make([]uint16, horizon)
		l.stamp = make([]uint64, horizon)
		l.base = t
	}
	if t < l.base {
		t = l.base
	}
	for {
		if t >= l.base+horizon {
			// Advance the window; everything before t is forgotten.  Stale
			// slots invalidate lazily via their stamps, so no bulk clear.
			l.base = t
		}
		idx := t % horizon
		if l.stamp[idx] != t+1 {
			l.stamp[idx] = t + 1
			l.used[idx] = 0
		}
		if l.used[idx] < bw {
			l.used[idx]++
			l.flits++
			return t
		}
		t++
	}
}

// Stats counts network activity for the power model and reports.
type Stats struct {
	Messages        uint64
	Hops            uint64 // flit-hops (router traversals)
	StallCycles     uint64 // cycles lost to link contention
	LocalDeliveries uint64
}

// Mesh is one W x H mesh network.  Node IDs are y*W + x.
//
// Routing and reservation logic live on Port: a per-caller view of the
// mesh that shares the link timelines but keeps its own statistics
// target and multicast scratch.  The parallel domain engine gives each
// event domain a port so that domains with disjoint routing closures
// (disjoint bounding boxes — XY routes never leave the bounding box of
// their endpoints) can reserve links concurrently without sharing any
// mutable bookkeeping.  The Mesh's own Send/Multicast/... methods
// delegate to a built-in default port charging m.stats directly.
type Mesh struct {
	W, H int
	BW   uint16 // flits per link per cycle

	links []link // [node*4 + dir]
	stats Stats

	self Port // default port for single-owner callers
}

// Directions for link indexing.
const (
	dirE = iota
	dirW
	dirN
	dirS
)

// NewMesh returns a mesh of the given dimensions and per-link bandwidth.
func NewMesh(w, h int, bw int) *Mesh {
	if w < 1 || h < 1 || bw < 1 {
		panic("noc: invalid mesh shape")
	}
	m := &Mesh{W: w, H: h, BW: uint16(bw), links: make([]link, w*h*4)}
	m.self = Port{m: m, stats: &m.stats}
	return m
}

// Stats returns accumulated network statistics.
func (m *Mesh) Stats() Stats { return m.stats }

// Port is one caller's view of the mesh.  Sends through a port reserve
// the shared link timelines, but message statistics accumulate into the
// port's stats target and the multicast scratch is private, so ports
// whose traffic touches disjoint link sets may be used concurrently.
type Port struct {
	m     *Mesh
	stats *Stats

	// Multicast link-sharing scratch: crossAt[link] is the cycle the
	// current multicast's flit finished crossing that link, valid when
	// crossStamp[link] == crossGen.  Generation stamping makes the scratch
	// reusable across calls without clearing or allocating.
	crossGen   uint64
	crossAt    []uint64
	crossStamp []uint64
}

// NewPort returns a port charging statistics into stats; a nil stats
// charges the mesh's own accumulated statistics (the default for
// single-owner callers).
func (m *Mesh) NewPort(stats *Stats) *Port {
	if stats == nil {
		stats = &m.stats
	}
	return &Port{m: m, stats: stats}
}

// FoldStats adds s into the mesh's accumulated statistics and zeroes s.
// The parallel engine calls it at window boundaries to drain per-domain
// shadow statistics deterministically (uint64 sums commute, so the fold
// order never changes the totals).
func (m *Mesh) FoldStats(s *Stats) {
	m.stats.Messages += s.Messages
	m.stats.Hops += s.Hops
	m.stats.StallCycles += s.StallCycles
	m.stats.LocalDeliveries += s.LocalDeliveries
	*s = Stats{}
}

// XY returns the coordinates of a node.
func (m *Mesh) XY(node int) (x, y int) { return node % m.W, node / m.W }

// Dist returns the Manhattan hop distance between two nodes.
func (m *Mesh) Dist(a, b int) int {
	ax, ay := m.XY(a)
	bx, by := m.XY(b)
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Send routes one message from node `from` to node `to`, injected at cycle
// start, and returns its arrival cycle.  Local delivery (from == to) is
// free: the value goes through the local bypass.
func (m *Mesh) Send(from, to int, start uint64) uint64 { return m.self.Send(from, to, start) }

// Send routes one message through the port (see Mesh.Send).
func (p *Port) Send(from, to int, start uint64) uint64 {
	m := p.m
	if from == to {
		p.stats.LocalDeliveries++
		return start
	}
	p.stats.Messages++
	t := start
	x, y := m.XY(from)
	tx, ty := m.XY(to)
	ideal := uint64(m.Dist(from, to))
	// X first, then Y (dimension-ordered).
	for x != tx {
		dir := dirE
		nx := x + 1
		if tx < x {
			dir = dirW
			nx = x - 1
		}
		t = m.links[(y*m.W+x)*4+dir].reserve(t, m.BW) + 1
		x = nx
		p.stats.Hops++
	}
	for y != ty {
		dir := dirS
		ny := y + 1
		if ty < y {
			dir = dirN
			ny = y - 1
		}
		t = m.links[(y*m.W+x)*4+dir].reserve(t, m.BW) + 1
		y = ny
		p.stats.Hops++
	}
	if t-start > ideal {
		p.stats.StallCycles += (t - start) - ideal
	}
	return t
}

// Latency returns the uncontended latency between two nodes (hops cycles),
// without reserving link slots.  Used for analytic components such as the
// S-NUCA bank access time.
func (m *Mesh) Latency(from, to int) uint64 { return uint64(m.Dist(from, to)) }

// Multicast delivers one message from `from` to every node in targets as
// a tree multicast: the flit crosses each link of the XY-route tree once
// and forks at the routers, as in the TRIPS global dispatch/control
// networks.  It returns the arrival cycle at each target (same order).
func (m *Mesh) Multicast(from int, targets []int, start uint64) []uint64 {
	return m.MulticastInto(from, targets, start, make([]uint64, len(targets)))
}

// MulticastInto is Multicast writing arrivals into dst (which must have
// len(targets) entries), so steady-state callers can reuse one buffer.
func (m *Mesh) MulticastInto(from int, targets []int, start uint64, dst []uint64) []uint64 {
	return m.self.MulticastInto(from, targets, start, dst)
}

// MulticastInto is the port form of Mesh.MulticastInto.
func (p *Port) MulticastInto(from int, targets []int, start uint64, dst []uint64) []uint64 {
	m := p.m
	if p.crossAt == nil {
		p.crossAt = make([]uint64, len(m.links))
		p.crossStamp = make([]uint64, len(m.links))
	}
	p.crossGen++
	first := true
	for i, to := range targets {
		if to == from {
			dst[i] = start
			p.stats.LocalDeliveries++
			continue
		}
		if first {
			p.stats.Messages++
			first = false
		}
		t := start
		x, y := m.XY(from)
		tx, ty := m.XY(to)
		step := func(dir, nx, ny int) {
			li := (y*m.W+x)*4 + dir
			if p.crossStamp[li] == p.crossGen {
				t = p.crossAt[li]
			} else {
				t = m.links[li].reserve(t, m.BW) + 1
				p.crossStamp[li] = p.crossGen
				p.crossAt[li] = t
				p.stats.Hops++
			}
			x, y = nx, ny
		}
		for x != tx {
			if tx > x {
				step(dirE, x+1, y)
			} else {
				step(dirW, x-1, y)
			}
		}
		for y != ty {
			if ty > y {
				step(dirS, x, y+1)
			} else {
				step(dirN, x, y-1)
			}
		}
		dst[i] = t
	}
	return dst
}

// Broadcast sends one message from `from` to each node in targets,
// injecting at most injectBW messages per cycle, and returns the cycle at
// which the last target receives it.  Models serialized unicast
// distribution (tree multicasts use Multicast instead).
func (m *Mesh) Broadcast(from int, targets []int, start uint64, injectBW int) uint64 {
	if injectBW < 1 {
		injectBW = 1
	}
	last := start
	n := 0
	for _, to := range targets {
		t := start + uint64(n/injectBW)
		arr := m.Send(from, to, t)
		if arr > last {
			last = arr
		}
		if to != from {
			n++
		}
	}
	return last
}

// Gather returns the cycle by which messages from every source, sent at
// their respective start times, reach `to`.  Models commit ACK collection.
func (m *Mesh) Gather(sources []int, starts []uint64, to int) uint64 {
	var last uint64
	for i, from := range sources {
		arr := m.Send(from, to, starts[i])
		if arr > last {
			last = arr
		}
	}
	return last
}
