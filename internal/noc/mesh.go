// Package noc models the on-chip 2-D mesh networks connecting TFlex cores:
// the operand network that routes dataflow operands between ALUs, and the
// control network used by the distributed fetch/commit protocols.
//
// The model is a reservation-based approximation of a wormhole-routed
// mesh: messages follow dimension-ordered (XY) routes; each directed link
// accepts a fixed number of flits per cycle (the paper doubles the operand
// network bandwidth of TFlex relative to TRIPS); a message occupies one
// link slot per hop, one hop per cycle, and is delayed to the earliest
// cycle with a free slot on each link along its path.  Adjacent-core
// bypass costs a single cycle, matching the paper's 1-cycle inter-core hop
// at 2.5 GHz.
package noc

// horizon is the per-link reservation window in cycles.  Reservations are
// made at or slightly after the current simulation cycle, so a few
// thousand cycles of lookahead is ample.
const horizon = 4096

type link struct {
	base  uint64 // earliest reservable cycle (requests clamp forward to it)
	used  []uint16
	stamp []uint64 // cycle+1 each slot currently describes; 0 = never used
	flits uint64   // total flit traversals, exported per-link via telemetry
}

func (l *link) reserve(t uint64, bw uint16) uint64 {
	if l.used == nil {
		l.used = make([]uint16, horizon)
		l.stamp = make([]uint64, horizon)
		l.base = t
	}
	if t < l.base {
		t = l.base
	}
	for {
		if t >= l.base+horizon {
			// Advance the window; everything before t is forgotten.  Stale
			// slots invalidate lazily via their stamps, so no bulk clear.
			l.base = t
		}
		idx := t % horizon
		if l.stamp[idx] != t+1 {
			l.stamp[idx] = t + 1
			l.used[idx] = 0
		}
		if l.used[idx] < bw {
			l.used[idx]++
			l.flits++
			return t
		}
		t++
	}
}

// Stats counts network activity for the power model and reports.
type Stats struct {
	Messages        uint64
	Hops            uint64 // flit-hops (router traversals)
	StallCycles     uint64 // cycles lost to link contention
	LocalDeliveries uint64
}

// Mesh is one W x H mesh network.  Node IDs are y*W + x.
type Mesh struct {
	W, H int
	BW   uint16 // flits per link per cycle

	links []link // [node*4 + dir]
	stats Stats

	// Multicast link-sharing scratch: crossAt[link] is the cycle the
	// current multicast's flit finished crossing that link, valid when
	// crossStamp[link] == crossGen.  Generation stamping makes the scratch
	// reusable across calls without clearing or allocating.
	crossGen   uint64
	crossAt    []uint64
	crossStamp []uint64
}

// Directions for link indexing.
const (
	dirE = iota
	dirW
	dirN
	dirS
)

// NewMesh returns a mesh of the given dimensions and per-link bandwidth.
func NewMesh(w, h int, bw int) *Mesh {
	if w < 1 || h < 1 || bw < 1 {
		panic("noc: invalid mesh shape")
	}
	return &Mesh{W: w, H: h, BW: uint16(bw), links: make([]link, w*h*4)}
}

// Stats returns accumulated network statistics.
func (m *Mesh) Stats() Stats { return m.stats }

// XY returns the coordinates of a node.
func (m *Mesh) XY(node int) (x, y int) { return node % m.W, node / m.W }

// Dist returns the Manhattan hop distance between two nodes.
func (m *Mesh) Dist(a, b int) int {
	ax, ay := m.XY(a)
	bx, by := m.XY(b)
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Send routes one message from node `from` to node `to`, injected at cycle
// start, and returns its arrival cycle.  Local delivery (from == to) is
// free: the value goes through the local bypass.
func (m *Mesh) Send(from, to int, start uint64) uint64 {
	if from == to {
		m.stats.LocalDeliveries++
		return start
	}
	m.stats.Messages++
	t := start
	x, y := m.XY(from)
	tx, ty := m.XY(to)
	ideal := uint64(m.Dist(from, to))
	// X first, then Y (dimension-ordered).
	for x != tx {
		dir := dirE
		nx := x + 1
		if tx < x {
			dir = dirW
			nx = x - 1
		}
		t = m.links[(y*m.W+x)*4+dir].reserve(t, m.BW) + 1
		x = nx
		m.stats.Hops++
	}
	for y != ty {
		dir := dirS
		ny := y + 1
		if ty < y {
			dir = dirN
			ny = y - 1
		}
		t = m.links[(y*m.W+x)*4+dir].reserve(t, m.BW) + 1
		y = ny
		m.stats.Hops++
	}
	if t-start > ideal {
		m.stats.StallCycles += (t - start) - ideal
	}
	return t
}

// Latency returns the uncontended latency between two nodes (hops cycles),
// without reserving link slots.  Used for analytic components such as the
// S-NUCA bank access time.
func (m *Mesh) Latency(from, to int) uint64 { return uint64(m.Dist(from, to)) }

// Multicast delivers one message from `from` to every node in targets as
// a tree multicast: the flit crosses each link of the XY-route tree once
// and forks at the routers, as in the TRIPS global dispatch/control
// networks.  It returns the arrival cycle at each target (same order).
func (m *Mesh) Multicast(from int, targets []int, start uint64) []uint64 {
	return m.MulticastInto(from, targets, start, make([]uint64, len(targets)))
}

// MulticastInto is Multicast writing arrivals into dst (which must have
// len(targets) entries), so steady-state callers can reuse one buffer.
func (m *Mesh) MulticastInto(from int, targets []int, start uint64, dst []uint64) []uint64 {
	if m.crossAt == nil {
		m.crossAt = make([]uint64, len(m.links))
		m.crossStamp = make([]uint64, len(m.links))
	}
	m.crossGen++
	first := true
	for i, to := range targets {
		if to == from {
			dst[i] = start
			m.stats.LocalDeliveries++
			continue
		}
		if first {
			m.stats.Messages++
			first = false
		}
		t := start
		x, y := m.XY(from)
		tx, ty := m.XY(to)
		step := func(dir, nx, ny int) {
			li := (y*m.W+x)*4 + dir
			if m.crossStamp[li] == m.crossGen {
				t = m.crossAt[li]
			} else {
				t = m.links[li].reserve(t, m.BW) + 1
				m.crossStamp[li] = m.crossGen
				m.crossAt[li] = t
				m.stats.Hops++
			}
			x, y = nx, ny
		}
		for x != tx {
			if tx > x {
				step(dirE, x+1, y)
			} else {
				step(dirW, x-1, y)
			}
		}
		for y != ty {
			if ty > y {
				step(dirS, x, y+1)
			} else {
				step(dirN, x, y-1)
			}
		}
		dst[i] = t
	}
	return dst
}

// Broadcast sends one message from `from` to each node in targets,
// injecting at most injectBW messages per cycle, and returns the cycle at
// which the last target receives it.  Models serialized unicast
// distribution (tree multicasts use Multicast instead).
func (m *Mesh) Broadcast(from int, targets []int, start uint64, injectBW int) uint64 {
	if injectBW < 1 {
		injectBW = 1
	}
	last := start
	n := 0
	for _, to := range targets {
		t := start + uint64(n/injectBW)
		arr := m.Send(from, to, t)
		if arr > last {
			last = arr
		}
		if to != from {
			n++
		}
	}
	return last
}

// Gather returns the cycle by which messages from every source, sent at
// their respective start times, reach `to`.  Models commit ACK collection.
func (m *Mesh) Gather(sources []int, starts []uint64, to int) uint64 {
	var last uint64
	for i, from := range sources {
		arr := m.Send(from, to, starts[i])
		if arr > last {
			last = arr
		}
	}
	return last
}
