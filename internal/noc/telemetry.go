package noc

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/telemetry"
)

// Register exposes the mesh's counters under prefix (e.g. "noc.opnd"):
// aggregate message/hop/stall counts plus one flit counter per directed
// on-grid link named "<prefix>.link.<from>.<to>.flits" by node ID.  All
// entries are views over the mesh's own fields — registration adds no
// cost to Send/Multicast.
func (m *Mesh) Register(r *telemetry.Registry, prefix string) {
	r.CounterView(prefix+".messages", &m.stats.Messages)
	r.CounterView(prefix+".hops", &m.stats.Hops)
	r.CounterView(prefix+".stall_cycles", &m.stats.StallCycles)
	r.CounterView(prefix+".local_deliveries", &m.stats.LocalDeliveries)
	for node := 0; node < m.W*m.H; node++ {
		x, y := m.XY(node)
		neighbor := [4]int{-1, -1, -1, -1} // by dirE/dirW/dirN/dirS
		if x < m.W-1 {
			neighbor[dirE] = node + 1
		}
		if x > 0 {
			neighbor[dirW] = node - 1
		}
		if y > 0 {
			neighbor[dirN] = node - m.W
		}
		if y < m.H-1 {
			neighbor[dirS] = node + m.W
		}
		for dir, to := range neighbor {
			if to < 0 {
				continue // edge link off the grid: never reservable
			}
			name := fmt.Sprintf("%s.link.%d.%d.flits", prefix, node, to)
			r.CounterView(name, &m.links[node*4+dir].flits)
		}
	}
}
