package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"runtime"
	"strings"
	"testing"
)

// pkgByRel finds a loaded package by module-relative path.
func pkgByRel(t *testing.T, m *Module, rel string) *Package {
	t.Helper()
	for _, p := range m.Pkgs {
		if p.RelPath == rel {
			return p
		}
	}
	t.Fatalf("package %q not loaded; have %v", rel, relPaths(m))
	return nil
}

func relPaths(m *Module) []string {
	var out []string
	for _, p := range m.Pkgs {
		out = append(out, p.RelPath)
	}
	return out
}

// TestLoaderBuildConstraints pins the file-selection behavior: files
// excluded by //go:build or legacy // +build lines are dropped (they
// redeclare symbols of the host files), and the admitted tagged file
// participates in the shared type-check.
func TestLoaderBuildConstraints(t *testing.T) {
	m := loadFixture(t, "loader")
	base := pkgByRel(t, m, "internal/base")

	var names []string
	for _, f := range base.Files {
		names = append(names, base.FileName(f.Pos()))
	}
	want := map[string]bool{"base.go": true, "base_host.go": true}
	if len(names) != len(want) {
		t.Fatalf("internal/base files: want base.go + base_host.go, got %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("internal/base admitted excluded file %s", n)
		}
	}

	// The const completed by the tagged host file must resolve.
	obj := base.Types.Scope().Lookup("Width")
	if obj == nil {
		t.Fatal("base.Width did not type-check")
	}
	c, ok := obj.(interface{ Val() constant.Value })
	if !ok || c.Val().String() != "64" {
		t.Errorf("base.Width: want constant 64 from the host-tagged file, got %v", obj)
	}
}

// TestBuildFileIncluded drives the constraint evaluator directly over
// the tag vocabulary the loader recognizes.
func TestBuildFileIncluded(t *testing.T) {
	cases := []struct {
		line string
		want bool
	}{
		{"//go:build " + runtime.GOOS, true},
		{"//go:build !" + runtime.GOOS, false},
		{"//go:build " + runtime.GOARCH, true},
		{"//go:build gc", true},
		{"//go:build go1.20", true},
		{"//go:build someotherplatform", false},
		{"//go:build " + runtime.GOOS + " && someotherplatform", false},
		{"//go:build " + runtime.GOOS + " || someotherplatform", true},
		{"// +build someotherplatform", false},
		{"// +build " + runtime.GOOS, true},
		{"// just a comment", true},
	}
	fset := token.NewFileSet()
	for _, tc := range cases {
		src := fmt.Sprintf("%s\n\npackage p\n", tc.line)
		f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("%q: parse: %v", tc.line, err)
		}
		if got := buildFileIncluded(f); got != tc.want {
			t.Errorf("buildFileIncluded(%q) = %v, want %v", tc.line, got, tc.want)
		}
	}
}

// TestLoaderTopoOrder pins deps-first ordering across the diamond:
// base before left and right, both before top.
func TestLoaderTopoOrder(t *testing.T) {
	m := loadFixture(t, "loader")
	idx := map[string]int{}
	for i, p := range m.Pkgs {
		idx[p.RelPath] = i
	}
	for _, rel := range []string{"internal/base", "internal/left", "internal/right", "internal/gen", "internal/top"} {
		if _, ok := idx[rel]; !ok {
			t.Fatalf("package %s not loaded; have %v", rel, relPaths(m))
		}
	}
	if idx["internal/base"] > idx["internal/left"] || idx["internal/base"] > idx["internal/right"] {
		t.Errorf("base must precede left and right: %v", relPaths(m))
	}
	if idx["internal/left"] > idx["internal/top"] || idx["internal/right"] > idx["internal/top"] || idx["internal/gen"] > idx["internal/top"] {
		t.Errorf("top must come after all its imports: %v", relPaths(m))
	}
}

// TestLoaderGenerics pins that generic declarations load, type-check
// and resolve: the cross-package instantiation in top must bind, and
// receiver resolution must see through the type-parameter index.
func TestLoaderGenerics(t *testing.T) {
	m := loadFixture(t, "loader")
	gen := pkgByRel(t, m, "internal/gen")

	methods := map[string]bool{}
	for _, f := range gen.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if name := receiverTypeName(fd.Recv.List[0].Type); name != "Ring" {
				t.Errorf("receiverTypeName(%s) = %q, want Ring", fd.Name.Name, name)
			}
			methods[fd.Name.Name] = true
		}
	}
	if !methods["Push"] || !methods["Len"] {
		t.Errorf("generic methods not seen: %v", methods)
	}

	// The instantiating package must have type-checked against gen.
	top := pkgByRel(t, m, "internal/top")
	if top.Types.Scope().Lookup("Sum") == nil {
		t.Error("top.Sum did not type-check against the generic package")
	}

	// The whole fixture must also be clean under the full suite — the
	// analyzers walk the generic bodies without tripping or panicking.
	if diags := Run(m, All(), nil); len(diags) != 0 {
		t.Errorf("loader fixture not clean: %v", diags)
	}
}

// TestLoaderImportCycle pins the failure mode: mutually importing
// packages must surface as a cycle error, not a hang or a stack
// overflow.
func TestLoaderImportCycle(t *testing.T) {
	_, err := LoadTree("testdata/loadercycle", "example.com/fix")
	if err == nil {
		t.Fatal("loading a cyclic module: want an import-cycle error, got nil")
	}
	if got := err.Error(); !strings.Contains(got, "import cycle") {
		t.Errorf("cycle error = %q, want it to mention the import cycle", got)
	}
}
