package lint

// The domainguard analyzer.  The parallel lockstep engine (DESIGN.md,
// "Parallel domains") is bit-identical across worker counts only
// because a domain worker touches nothing but its own domain's state —
// its calendar queue, stat shadows, inbox, flight ring — unless it
// holds the globally-sequenced shared-section grant taken with
// enterShared/exitShared.  That boundary was tribal knowledge enforced
// by differential tests; domainguard makes it a static property:
//
//  1. Struct fields are classified with //lint:owner annotations
//     (domain, shared, domain-link — see annotations.go).
//  2. The functions transitively reachable from every //lint:owner
//     worker root form the concurrent region.  //lint:owner quiescent
//     entries (the arbiter monitor, window-boundary code) are not
//     traversed: they run while every worker is parked.
//  3. Inside the concurrent region, an access to a shared field must
//     be bracketed by enterShared/exitShared on every control-flow
//     path (the must-analysis in cfg.go), or sit in a function that is
//     itself only callable with the bracket held (the serialized-
//     context fixpoint below — how (*Chip).InvalidateL1's deferred
//     cross-domain inbox append is proven safe without a local
//     bracket).
//  4. An access to a domain-owned field, or a method call on a
//     domain-owning type, must be rooted at the worker's own domain: a
//     receiver of the owning type, a domain-link field read, or a
//     local provably assigned from those — the receiver-taint facts.
//     Holding the bracket also legalizes it (that is the arbiter's
//     serialization guarantee, and exactly how the deferred inbox
//     protocol writes another domain's inbox).

import (
	"fmt"
	"go/ast"
	"go/types"
)

// DomainGuard enforces the domain-ownership isolation boundary in code
// reachable from worker window loops.
var DomainGuard = &Analyzer{
	Name: "domainguard",
	Doc:  "cross-domain and shared state reachable from a worker loop must be bracketed by enterShared/exitShared or owned by the worker",
	Run:  runDomainGuard,
}

func runDomainGuard(m *Module, pkg *Package, report ReportFunc) {
	diags := m.Fact("domainguard", func() any { return domainGuardModule(m) }).([]moduleDiag)
	for _, d := range diags {
		if d.pkg == pkg {
			report(d.pos, "%s", d.msg)
		}
	}
}

func domainGuardModule(m *Module) []moduleDiag {
	facts := collectOwnerAnnotations(m)
	diags := facts.bad
	if len(facts.workers) == 0 || len(facts.fieldKind) == 0 {
		return diags
	}
	g := m.CallGraph()
	reach := g.Reachable(facts.workers, func(n *FuncNode) bool { return facts.quiescent[n] })
	serialized := serializedContexts(m, g, reach, facts.workers)

	for _, n := range g.Nodes() {
		if !reach[n] {
			continue
		}
		diags = append(diags, checkFuncOwnership(m, n, facts, serialized[n])...)
	}
	return diags
}

// serializedContexts runs the interprocedural fixpoint: a reachable
// function is serialized when every reachable call site that can
// invoke it either holds the bracket (must-IN at the call) or sits in
// a serialized caller.  Worker roots are never serialized.  The
// property starts optimistically true and only decays, so iteration
// terminates.
func serializedContexts(m *Module, g *CallGraph, reach map[*FuncNode]bool, roots []*FuncNode) map[*FuncNode]bool {
	serialized := map[*FuncNode]bool{}
	rootSet := map[*FuncNode]bool{}
	for _, r := range roots {
		rootSet[r] = true
	}
	for _, n := range g.Nodes() {
		if reach[n] {
			serialized[n] = !rootSet[n]
		}
	}
	callers := g.callersWithin(reach)
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			if !reach[n] || !serialized[n] || rootSet[n] {
				continue
			}
			ok := true
			for _, edge := range callers[n] {
				if serialized[edge.caller] {
					continue
				}
				if !m.MustInShared(edge.caller.Decl.Body, edge.site.Call.Pos()) {
					ok = false
					break
				}
			}
			if !ok {
				serialized[n] = false
				changed = true
			}
		}
	}
	return serialized
}

// checkFuncOwnership walks one reachable function and reports every
// ownership-rule violation.
func checkFuncOwnership(m *Module, n *FuncNode, facts *ownerFacts, serialized bool) []moduleDiag {
	info := n.Pkg.Info
	recv := receiverObject(n)
	tainted := ownDomainLocals(n, facts, recv)

	// ownExpr reports whether e denotes the worker's own domain.
	var ownExpr func(e ast.Expr) bool
	ownExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			return obj != nil && (obj == recv || tainted[obj])
		case *ast.SelectorExpr:
			if v, ok := info.Uses[e.Sel].(*types.Var); ok && facts.fieldKind[v] == "domain-link" {
				return selfRooted(info, e.X, recv)
			}
		case *ast.UnaryExpr:
			return ownExpr(e.X)
		case *ast.StarExpr:
			return ownExpr(e.X)
		}
		return false
	}

	var diags []moduleDiag
	seen := map[*ast.SelectorExpr]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectorExpr)
		if !ok || seen[sel] {
			return true
		}
		seen[sel] = true
		allowed := func() bool {
			return serialized || m.MustInShared(n.Decl.Body, sel.Pos())
		}
		switch obj := info.Uses[sel.Sel].(type) {
		case *types.Var:
			switch facts.fieldKind[obj] {
			case "shared":
				if !allowed() {
					diags = append(diags, moduleDiag{n.Pkg, sel.Pos(),
						fmt.Sprintf("access to shared field %s outside an enterShared/exitShared bracket (in %s, reachable from a worker loop)", render(sel), n.Name())})
				}
			case "domain":
				if !ownExpr(sel.X) && !allowed() {
					diags = append(diags, moduleDiag{n.Pkg, sel.Pos(),
						fmt.Sprintf("access to domain-owned field %s through a value that is not the worker's own domain and without the shared-section bracket (in %s)", render(sel), n.Name())})
				}
			}
		case *types.Func:
			// A method call on a domain-owning type is an access to
			// that domain's state.
			if recvType := methodRecvNamed(obj); recvType != nil && facts.ownerTypes[recvType] {
				if !ownExpr(sel.X) && !allowed() {
					diags = append(diags, moduleDiag{n.Pkg, sel.Pos(),
						fmt.Sprintf("call %s targets a domain that is not provably the worker's own and is not under the shared-section bracket (in %s)", render(sel), n.Name())})
				}
			}
		}
		return true
	})
	return diags
}

// receiverObject returns n's receiver variable, if any.
func receiverObject(n *FuncNode) types.Object {
	if n.Decl.Recv == nil || len(n.Decl.Recv.List) != 1 || len(n.Decl.Recv.List[0].Names) != 1 {
		return nil
	}
	return n.Pkg.Info.Defs[n.Decl.Recv.List[0].Names[0]]
}

// methodRecvNamed unwraps a method's receiver to its named type.
func methodRecvNamed(f *types.Func) *types.TypeName {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	if named, ok := deref(sig.Recv().Type()).(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// selfRooted reports whether e is the function's own receiver (the
// only base through which a domain-link read yields an owned domain).
func selfRooted(info *types.Info, e ast.Expr, recv types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || recv == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj == recv
}

// ownDomainLocals computes the receiver-taint facts: locals that are
// always assigned from expressions denoting the worker's own domain.
// The analysis is flow-insensitive — a local is tainted only when
// every assignment to it in the function is own-domain — which is
// sound for the "is this value my domain?" question.
func ownDomainLocals(n *FuncNode, facts *ownerFacts, recv types.Object) map[types.Object]bool {
	info := n.Pkg.Info

	// If the receiver's own type is a domain-owning struct, the
	// receiver itself denotes the own domain (a domain method runs on
	// behalf of its own worker; cross-domain method calls are caught
	// at the call site in the caller).
	recvIsOwn := false
	if recv != nil {
		if named, ok := deref(recv.Type()).(*types.Named); ok && facts.ownerTypes[named.Obj()] {
			recvIsOwn = true
		}
	}

	type cand struct {
		obj    types.Object
		always bool
	}
	var cands []*cand
	candIdx := map[types.Object]*cand{}
	tainted := map[types.Object]bool{}
	if recvIsOwn {
		tainted[recv] = true
	}

	isOwnRHS := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			return obj != nil && ((recvIsOwn && obj == recv) || tainted[obj])
		case *ast.SelectorExpr:
			if v, ok := info.Uses[e.Sel].(*types.Var); ok && facts.fieldKind[v] == "domain-link" {
				return selfRooted(info, e.X, recv)
			}
		}
		return false
	}

	// Two passes reach the fixpoint for chains like d := p.dom; e := d
	// (assignments are visited in source order; a second pass settles
	// reverse-order chains, and deeper chains do not occur).
	for pass := 0; pass < 2; pass++ {
		cands = cands[:0]
		clear(candIdx)
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			as, ok := node.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || obj == recv {
					continue
				}
				c := candIdx[obj]
				if c == nil {
					c = &cand{obj: obj, always: true}
					candIdx[obj] = c
					cands = append(cands, c)
				}
				if !isOwnRHS(as.Rhs[i]) {
					c.always = false
				}
			}
			return true
		})
		for _, c := range cands {
			if c.always {
				tainted[c.obj] = true
			} else {
				delete(tainted, c.obj)
			}
		}
	}
	return tainted
}
