package lint

// The intraprocedural dataflow layer: a statement-level control-flow
// graph per function body plus a forward must-analysis for the
// enterShared/exitShared bracket state.  domainguard asks "is this
// program point provably inside a shared-section bracket on every path
// from function entry?" — a must-IN question, so the lattice is the
// powerset {in, out} with union as the meet: a point is bracketed only
// when every predecessor path reaches it with state {in}.
//
// The bracket primitives are matched by name (a call whose callee is
// named enterShared or exitShared), which is the module's contract:
// internal/sim funnels every arbiter acquisition through
// (*Proc).enterShared / (*Proc).exitShared, and the fixture modules
// use the same names.  Deferred calls are treated as no-ops for
// bracket state (the module never defers exitShared; a defer runs at
// returns, where the state no longer guards any access).
//
// Function literals get their own CFG: a closure body does not inherit
// the bracket state of its creation site, because it runs whenever it
// is invoked, not where it is written.

import (
	"go/ast"
	"go/token"
	"sort"
)

// bracket state bits; the dataflow value is a set of possible states.
const (
	brOut uint8 = 1 << iota // reachable with the shared section closed
	brIn                    // reachable with the shared section open
)

// cfgNode is one atomic program point: a simple statement, or the
// header (init/cond/tag) portion of a compound statement.  exprs holds
// the expressions evaluated *at this node* — nested statements and
// function literals belong to other nodes.
type cfgNode struct {
	exprs []ast.Expr
	stmt  ast.Stmt // source anchor (the atomic stmt, or the compound stmt owning the header)
	succs []int
	in    uint8 // dataflow IN set, union over predecessors
}

// cfg is the control-flow graph of one function or function-literal
// body.
type cfg struct {
	nodes []cfgNode
	entry int // -1 for an empty body
}

// funcFlow bundles the CFGs of a function: the body plus one per
// nested function literal, each solved independently.
type funcFlow struct {
	body *cfg
	lits []litFlow // source order
}

type litFlow struct {
	lit *ast.FuncLit
	g   *cfg
}

// flowFor returns (building and caching on first use) the solved
// bracket dataflow for fn's body.
func (m *Module) flowFor(body *ast.BlockStmt) *funcFlow {
	if m.flows == nil {
		m.flows = map[*ast.BlockStmt]*funcFlow{}
	}
	if ff, ok := m.flows[body]; ok {
		return ff
	}
	ff := &funcFlow{}
	ff.body = buildCFG(body)
	ff.body.solve()
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c := buildCFG(lit.Body)
			c.solve()
			ff.lits = append(ff.lits, litFlow{lit: lit, g: c})
		}
		return true
	})
	m.flows[body] = ff
	return ff
}

// MustInShared reports whether pos — a program point inside body — is
// bracketed by enterShared/exitShared on every path from the entry of
// its enclosing function (or function literal).
func (m *Module) MustInShared(body *ast.BlockStmt, pos token.Pos) bool {
	ff := m.flowFor(body)
	g := ff.body
	// The innermost function literal containing pos owns the point.
	for _, lf := range ff.lits {
		if lf.lit.Body.Pos() <= pos && pos < lf.lit.Body.End() {
			g = lf.g // later (nested) literals overwrite outer ones
		}
	}
	node := g.nodeAt(pos)
	if node < 0 {
		return false
	}
	state := g.nodes[node].in
	// Apply bracket toggles textually before pos within the same node.
	for _, call := range bracketCalls(g.nodes[node].exprs) {
		if call.End() <= pos {
			state = applyBracket(state, call)
		}
	}
	return state == brIn
}

// nodeAt finds the node whose evaluated expressions contain pos,
// preferring the innermost (smallest) range.
func (g *cfg) nodeAt(pos token.Pos) int {
	best, bestSize := -1, token.Pos(0)
	for i := range g.nodes {
		for _, e := range g.nodes[i].exprs {
			if e.Pos() <= pos && pos < e.End() {
				size := e.End() - e.Pos()
				if best < 0 || size < bestSize {
					best, bestSize = i, size
				}
			}
		}
	}
	return best
}

// bracketCalls returns the enterShared/exitShared calls evaluated in
// exprs (not descending into function literals), in source order.
func bracketCalls(exprs []ast.Expr) []*ast.CallExpr {
	var calls []*ast.CallExpr
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if c, ok := n.(*ast.CallExpr); ok && bracketName(c) != "" {
				calls = append(calls, c)
			}
			return true
		})
	}
	sort.Slice(calls, func(i, j int) bool { return calls[i].Pos() < calls[j].Pos() })
	return calls
}

// bracketName classifies call as a bracket primitive by callee name.
func bracketName(call *ast.CallExpr) string {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if name == "enterShared" || name == "exitShared" {
		return name
	}
	return ""
}

func applyBracket(state uint8, call *ast.CallExpr) uint8 {
	if bracketName(call) == "enterShared" {
		return brIn
	}
	return brOut
}

// solve runs the forward union dataflow to a fixpoint.
func (g *cfg) solve() {
	if g.entry < 0 {
		return
	}
	g.nodes[g.entry].in = brOut
	for changed := true; changed; {
		changed = false
		for i := range g.nodes {
			in := g.nodes[i].in
			if in == 0 {
				continue // not yet reached
			}
			out := in
			for _, call := range bracketCalls(g.nodes[i].exprs) {
				out = applyBracket(out, call)
			}
			for _, s := range g.nodes[i].succs {
				if g.nodes[s].in|out != g.nodes[s].in {
					g.nodes[s].in |= out
					changed = true
				}
			}
		}
	}
}

// ---- construction ----

type cfgBuilder struct {
	g            *cfg
	labels       map[string]int // label -> entry node of the labeled statement
	gotos        []gotoPatch
	pendingLabel string // label waiting to attach to the next loop/switch context
}

type gotoPatch struct {
	node  int
	label string
}

// loopCtx tracks where break/continue jump inside one enclosing loop,
// switch or select.
type loopCtx struct {
	label        string
	breakJumps   *[]int // nodes whose successor is the construct's follow point
	continueTo   int    // -1 when continue is not meaningful (switch/select)
	acceptsBreak bool
}

func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{entry: -1}, labels: map[string]int{}}
	frontier := b.seq(body.List, []int{-1}, nil)
	_ = frontier // dangling exits fall off the end of the function
	for _, p := range b.gotos {
		if tgt, ok := b.labels[p.label]; ok {
			b.g.nodes[p.node].succs = append(b.g.nodes[p.node].succs, tgt)
		}
	}
	return b.g
}

// newNode appends a node and wires the incoming frontier to it.  The
// sentinel -1 in a frontier marks the function entry edge.
func (b *cfgBuilder) newNode(stmt ast.Stmt, exprs []ast.Expr, frontier []int) int {
	idx := len(b.g.nodes)
	b.g.nodes = append(b.g.nodes, cfgNode{stmt: stmt, exprs: exprs})
	b.connect(frontier, idx)
	return idx
}

func (b *cfgBuilder) connect(frontier []int, to int) {
	for _, f := range frontier {
		if f == -1 {
			if b.g.entry < 0 {
				b.g.entry = to
			}
			continue
		}
		b.g.nodes[f].succs = append(b.g.nodes[f].succs, to)
	}
}

// seq builds a statement sequence, threading the frontier through.
func (b *cfgBuilder) seq(stmts []ast.Stmt, frontier []int, loops []loopCtx) []int {
	for _, s := range stmts {
		frontier = b.stmt(s, frontier, loops)
	}
	return frontier
}

// stmt builds one statement and returns the dangling exits that flow
// to whatever follows it.
func (b *cfgBuilder) stmt(s ast.Stmt, frontier []int, loops []loopCtx) []int {
	if len(frontier) == 0 {
		return nil // unreachable; skip (bracket facts stay conservative: in == 0 -> not mustIn)
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.seq(s.List, frontier, loops)

	case *ast.LabeledStmt:
		before := len(b.g.nodes)
		out := b.stmtLabeled(s.Stmt, frontier, loops, s.Label.Name)
		if len(b.g.nodes) > before {
			b.labels[s.Label.Name] = before
		}
		return out

	case *ast.IfStmt:
		if s.Init != nil {
			frontier = b.stmt(s.Init, frontier, loops)
		}
		cond := b.newNode(s, condExprs(s.Cond), frontier)
		thenOut := b.seq(s.Body.List, []int{cond}, loops)
		merged := append([]int{}, thenOut...)
		if s.Else != nil {
			return append(merged, b.stmt(s.Else, []int{cond}, loops)...)
		}
		return append(merged, cond)

	case *ast.ForStmt:
		if s.Init != nil {
			frontier = b.stmt(s.Init, frontier, loops)
		}
		cond := b.newNode(s, condExprs(s.Cond), frontier)
		var breaks []int
		continueTo := cond
		var post int = -1
		if s.Post != nil {
			// The post node is created up front so continue can target it;
			// it receives its incoming edges from the body exits below.
			post = b.newNode(s.Post, stmtExprs(s.Post), nil)
			b.g.nodes[post].succs = append(b.g.nodes[post].succs, cond)
			continueTo = post
		}
		ctx := loopCtx{label: b.takeLabel(), breakJumps: &breaks, continueTo: continueTo, acceptsBreak: true}
		bodyOut := b.seq(s.Body.List, []int{cond}, append(loops, ctx))
		if post >= 0 {
			b.connect(bodyOut, post)
		} else {
			b.connect(bodyOut, cond)
		}
		exits := breaks
		if s.Cond != nil {
			exits = append(exits, cond)
		}
		return exits

	case *ast.RangeStmt:
		head := b.newNode(s, condExprs(s.X), frontier)
		var breaks []int
		ctx := loopCtx{label: b.takeLabel(), breakJumps: &breaks, continueTo: head, acceptsBreak: true}
		bodyOut := b.seq(s.Body.List, []int{head}, append(loops, ctx))
		b.connect(bodyOut, head)
		return append(breaks, head)

	case *ast.SwitchStmt:
		if s.Init != nil {
			frontier = b.stmt(s.Init, frontier, loops)
		}
		head := b.newNode(s, condExprs(s.Tag), frontier)
		return b.switchClauses(s.Body.List, head, loops, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			frontier = b.stmt(s.Init, frontier, loops)
		}
		head := b.newNode(s, stmtExprs(s.Assign), frontier)
		return b.switchClauses(s.Body.List, head, loops, false)

	case *ast.SelectStmt:
		head := b.newNode(s, nil, frontier)
		var breaks []int
		ctx := loopCtx{label: b.takeLabel(), breakJumps: &breaks, acceptsBreak: true, continueTo: -1}
		var exits []int
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			entry := []int{head}
			if comm.Comm != nil {
				entry = []int{b.newNode(comm.Comm, stmtExprs(comm.Comm), entry)}
			}
			exits = append(exits, b.seq(comm.Body, entry, append(loops, ctx))...)
		}
		exits = append(exits, breaks...)
		if len(s.Body.List) == 0 {
			exits = append(exits, head)
		}
		return exits

	case *ast.ReturnStmt:
		b.newNode(s, stmtExprs(s), frontier)
		return nil

	case *ast.BranchStmt:
		node := b.newNode(s, nil, frontier)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			for i := len(loops) - 1; i >= 0; i-- {
				if loops[i].acceptsBreak && (label == "" || loops[i].label == label) {
					*loops[i].breakJumps = append(*loops[i].breakJumps, node)
					return nil
				}
			}
		case token.CONTINUE:
			for i := len(loops) - 1; i >= 0; i-- {
				if loops[i].continueTo >= 0 && (label == "" || loops[i].label == label) {
					b.g.nodes[node].succs = append(b.g.nodes[node].succs, loops[i].continueTo)
					return nil
				}
			}
		case token.GOTO:
			b.gotos = append(b.gotos, gotoPatch{node: node, label: label})
			return nil
		case token.FALLTHROUGH:
			// Handled by switchClauses wiring; treat as plain fallthrough exit.
			return []int{node}
		}
		return nil

	default:
		// Atomic: assign, expr, decl, incdec, send, go, defer, empty.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return frontier
		}
		exprs := stmtExprs(s)
		node := b.newNode(s, exprs, frontier)
		if isTerminalCall(s) {
			return nil
		}
		return []int{node}
	}
}

// stmtLabeled builds s with its label visible to break/continue.
func (b *cfgBuilder) stmtLabeled(s ast.Stmt, frontier []int, loops []loopCtx, label string) []int {
	// Tag the next loop context created inside with the label by
	// pre-registering: simplest is to rebuild the loop forms here with
	// the label threaded in.
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.pendingLabel = label
	}
	return b.stmt(s, frontier, loops)
}

// switchClauses wires case clauses: each clause's guard hangs off
// head, fallthrough chains bodies, break exits the switch.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, head int, loops []loopCtx, _ bool) []int {
	var breaks []int
	ctx := loopCtx{label: b.takeLabel(), breakJumps: &breaks, acceptsBreak: true, continueTo: -1}
	var exits []int
	hasDefault := false
	var prevFallthrough []int
	for _, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		entry := []int{head}
		if len(cc.List) > 0 {
			entry = []int{b.newNode(cc, cc.List, entry)}
		} else {
			entry = []int{b.newNode(cc, nil, entry)}
		}
		entry = append(entry, prevFallthrough...)
		prevFallthrough = nil
		bodyOut := b.seq(cc.Body, entry, append(loops, ctx))
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				prevFallthrough = bodyOut
				continue
			}
		}
		exits = append(exits, bodyOut...)
	}
	exits = append(exits, prevFallthrough...) // trailing fallthrough: falls out
	exits = append(exits, breaks...)
	if !hasDefault {
		exits = append(exits, head)
	}
	return exits
}

// takeLabel consumes the label pending for the next loop construct.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// condExprs wraps a possibly-nil condition expression.
func condExprs(e ast.Expr) []ast.Expr {
	if e == nil {
		return nil
	}
	return []ast.Expr{e}
}

// stmtExprs collects the expressions a simple statement evaluates.
func stmtExprs(s ast.Stmt) []ast.Expr {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return []ast.Expr{s.X}
	case *ast.AssignStmt:
		return append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	case *ast.SendStmt:
		return []ast.Expr{s.Chan, s.Value}
	case *ast.ReturnStmt:
		return append([]ast.Expr{}, s.Results...)
	case *ast.GoStmt:
		return []ast.Expr{s.Call}
	case *ast.DeferStmt:
		// Deferred calls run at returns; their arguments are evaluated here.
		return append([]ast.Expr{}, s.Call.Args...)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		var exprs []ast.Expr
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				exprs = append(exprs, vs.Values...)
			}
		}
		return exprs
	default:
		return nil
	}
}

// isTerminalCall reports whether s unconditionally ends control flow
// (panic or a call that never returns is approximated by panic only).
func isTerminalCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
