package lint

// Ownership and hot-path annotations: the declarations that turn
// tribal knowledge about the engine's isolation boundary into analyzer
// input.  Grammar (one directive per comment, trailing the annotated
// line or on the line directly above it):
//
//	//lint:owner domain       — struct field owned by the enclosing
//	                            per-domain state; only its own worker
//	                            (or a shared-section holder) may touch it
//	//lint:owner shared       — struct field shared across domains; every
//	                            access must hold the shared-section bracket
//	//lint:owner domain-link  — struct field that points at the executing
//	                            entity's own domain (Proc.dom, Chip.curDom);
//	                            reading it yields an owned domain value
//	//lint:owner worker       — function: a domain worker's window loop,
//	                            a root for domainguard's reachability walk
//	//lint:owner quiescent    — function: runs only at full quiescence
//	                            (arbiter/boundary code); domainguard does
//	                            not traverse into it
//	//lint:hot root           — function: a per-cycle event-loop entry,
//	                            a root for hotalloc's reachability walk
//	//lint:hot cold <reason>  — function: off the per-cycle fast path
//	                            (fault handling, one-time decode); hotalloc
//	                            does not traverse into it
//
// A directive with an unknown kind, or one that attaches to neither a
// struct field nor a function declaration, is itself reported — the
// same no-stale-annotations policy //lint:allow follows.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// moduleDiag is a finding produced by a module-global pass, held until
// the per-package Run call that owns its position reports it.
type moduleDiag struct {
	pkg *Package
	pos token.Pos
	msg string
}

// rawDirective is one scanned //lint:<prefix> comment.
type rawDirective struct {
	pkg    *Package
	file   *ast.File
	pos    token.Pos
	line   int
	fields []string // whitespace-split payload after the prefix
}

// scanRawDirectives collects every //lint:<prefix> comment in the
// module (prefix like "lint:owner").
func scanRawDirectives(m *Module, prefix string) []rawDirective {
	var out []rawDirective
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//"+prefix)
					if !ok {
						continue
					}
					out = append(out, rawDirective{
						pkg:    pkg,
						file:   f,
						pos:    c.Pos(),
						line:   m.Fset.Position(c.Pos()).Line,
						fields: strings.Fields(text),
					})
				}
			}
		}
	}
	return out
}

// fieldVarsAt resolves the struct-field declaration on the given line
// (or the line below a directive-above comment) to its field objects.
func fieldVarsAt(m *Module, d rawDirective) []*types.Var {
	var vars []*types.Var
	ast.Inspect(d.file, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, f := range st.Fields.List {
			line := m.Fset.Position(f.Pos()).Line
			if line != d.line && line != d.line+1 {
				continue
			}
			for _, name := range f.Names {
				if v, ok := d.pkg.Info.Defs[name].(*types.Var); ok {
					vars = append(vars, v)
				}
			}
		}
		return true
	})
	return vars
}

// funcDeclAt resolves the function declaration on the given line (or
// the line below).
func funcDeclAt(m *Module, d rawDirective) *ast.FuncDecl {
	for _, decl := range d.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		line := m.Fset.Position(fd.Pos()).Line
		if line == d.line || line == d.line+1 {
			return fd
		}
	}
	return nil
}

// enclosingTypeName finds the named type declaring the struct that
// holds the field on d's line — the type whose values own the field.
func enclosingTypeName(m *Module, d rawDirective) *types.TypeName {
	var found *types.TypeName
	ast.Inspect(d.file, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, f := range st.Fields.List {
			line := m.Fset.Position(f.Pos()).Line
			if line == d.line || line == d.line+1 {
				if tn, ok := d.pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					found = tn
				}
			}
		}
		return true
	})
	return found
}

// ownerFacts is the resolved //lint:owner annotation set.
type ownerFacts struct {
	fieldKind  map[*types.Var]string    // domain | shared | domain-link
	ownerTypes map[*types.TypeName]bool // structs holding >= 1 domain field
	workers    []*FuncNode              // domainguard roots
	quiescent  map[*FuncNode]bool       // traversal stops
	bad        []moduleDiag
}

func collectOwnerAnnotations(m *Module) *ownerFacts {
	g := m.CallGraph()
	facts := &ownerFacts{
		fieldKind:  map[*types.Var]string{},
		ownerTypes: map[*types.TypeName]bool{},
		quiescent:  map[*FuncNode]bool{},
	}
	for _, d := range scanRawDirectives(m, "lint:owner") {
		if len(d.fields) == 0 {
			facts.bad = append(facts.bad, moduleDiag{d.pkg, d.pos, `malformed directive: want "//lint:owner <domain|shared|domain-link|worker|quiescent>"`})
			continue
		}
		kind := d.fields[0]
		switch kind {
		case "domain", "shared", "domain-link":
			vars := fieldVarsAt(m, d)
			if len(vars) == 0 {
				facts.bad = append(facts.bad, moduleDiag{d.pkg, d.pos, fmt.Sprintf("//lint:owner %s attaches to no struct field on this or the next line", kind)})
				continue
			}
			for _, v := range vars {
				facts.fieldKind[v] = kind
			}
			if kind == "domain" {
				if tn := enclosingTypeName(m, d); tn != nil {
					facts.ownerTypes[tn] = true
				}
			}
		case "worker", "quiescent":
			fd := funcDeclAt(m, d)
			if fd == nil {
				facts.bad = append(facts.bad, moduleDiag{d.pkg, d.pos, fmt.Sprintf("//lint:owner %s attaches to no function declaration on this or the next line", kind)})
				continue
			}
			node := g.byDecl[fd]
			if node == nil {
				continue // unresolvable decl (type error); nothing to do
			}
			if kind == "worker" {
				facts.workers = append(facts.workers, node)
			} else {
				facts.quiescent[node] = true
			}
		default:
			facts.bad = append(facts.bad, moduleDiag{d.pkg, d.pos, fmt.Sprintf("//lint:owner has unknown kind %q (want domain, shared, domain-link, worker or quiescent)", kind)})
		}
	}
	return facts
}

// hotFacts is the resolved //lint:hot annotation set.
type hotFacts struct {
	roots    []*FuncNode
	cold     map[*FuncNode]bool
	coldObjs map[*types.Func]bool // same set, keyed for call-site lookups
	bad      []moduleDiag
}

func collectHotAnnotations(m *Module) *hotFacts {
	g := m.CallGraph()
	facts := &hotFacts{cold: map[*FuncNode]bool{}, coldObjs: map[*types.Func]bool{}}
	for _, d := range scanRawDirectives(m, "lint:hot") {
		if len(d.fields) == 0 {
			facts.bad = append(facts.bad, moduleDiag{d.pkg, d.pos, `malformed directive: want "//lint:hot <root|cold>"`})
			continue
		}
		kind := d.fields[0]
		if kind != "root" && kind != "cold" {
			facts.bad = append(facts.bad, moduleDiag{d.pkg, d.pos, fmt.Sprintf("//lint:hot has unknown kind %q (want root or cold)", kind)})
			continue
		}
		fd := funcDeclAt(m, d)
		if fd == nil {
			facts.bad = append(facts.bad, moduleDiag{d.pkg, d.pos, fmt.Sprintf("//lint:hot %s attaches to no function declaration on this or the next line", kind)})
			continue
		}
		if kind == "cold" && len(d.fields) < 2 {
			facts.bad = append(facts.bad, moduleDiag{d.pkg, d.pos, `//lint:hot cold requires a reason: "//lint:hot cold <reason>"`})
			continue
		}
		node := g.byDecl[fd]
		if node == nil {
			continue
		}
		if kind == "root" {
			facts.roots = append(facts.roots, node)
		} else {
			facts.cold[node] = true
			facts.coldObjs[node.Obj] = true
		}
	}
	return facts
}
