package lint

// The module-local call graph: every function and method declared in
// the module, with edges for direct calls, method calls on concrete
// module types, and interface dispatch resolved to every module-local
// concrete method implementing the interface (the sound
// over-approximation — internal/sim hands itself to internal/mem as a
// mem.L1Directory, and domainguard must follow that edge back into
// (*Chip).InvalidateL1).  Calls through plain function values (fields,
// parameters, locals) get no edges: the module's hook points
// (Chip.onHalt, telemetry samplers) are registration-time seams, and
// treating them as reachable from the cycle loop would drown both
// analyzers in boundary code.  Function literals are attributed to
// their enclosing declaration.
//
// The graph is built once per Module and shared by every analyzer
// (see Module.Fact / Module.CallGraph).

import (
	"go/ast"
	"go/types"
)

// FuncNode is one declared function or method.
type FuncNode struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Calls []CallSite
}

// Name renders the node as pkg.Func or pkg.(*T).Method for messages.
func (n *FuncNode) Name() string {
	recv := n.Obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return n.Pkg.Types.Name() + "." + n.Obj.Name()
	}
	t := recv.Type()
	star := ""
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
		star = "*"
	}
	name := "?"
	if named, ok := t.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return n.Pkg.Types.Name() + ".(" + star + name + ")." + n.Obj.Name()
}

// CallSite is one call expression inside a FuncNode's body (or a
// nested function literal) with its resolved module-local targets.
type CallSite struct {
	Call    *ast.CallExpr
	Callees []*FuncNode
}

// CallGraph indexes the module's functions and call edges.
type CallGraph struct {
	byObj  map[*types.Func]*FuncNode
	byDecl map[*ast.FuncDecl]*FuncNode
	nodes  []*FuncNode // declaration order, stable
}

// NodeOf looks a function object up in the graph.
func (g *CallGraph) NodeOf(obj *types.Func) *FuncNode { return g.byObj[obj] }

// Nodes returns every function in stable (package topo, file, decl)
// order.
func (g *CallGraph) Nodes() []*FuncNode { return g.nodes }

// CallGraph returns the module's call graph, building it on first use.
func (m *Module) CallGraph() *CallGraph {
	if m.graph == nil {
		m.graph = buildCallGraph(m)
	}
	return m.graph
}

func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{byObj: map[*types.Func]*FuncNode{}, byDecl: map[*ast.FuncDecl]*FuncNode{}}

	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				g.byObj[obj] = node
				g.byDecl[fd] = node
				g.nodes = append(g.nodes, node)
			}
		}
	}

	// Methods indexed by name for interface-dispatch resolution.
	methodsByName := map[string][]*FuncNode{}
	for _, n := range g.nodes {
		if n.Obj.Type().(*types.Signature).Recv() != nil {
			methodsByName[n.Obj.Name()] = append(methodsByName[n.Obj.Name()], n)
		}
	}

	for _, n := range g.nodes {
		n.Calls = resolveCalls(n, methodsByName, g)
	}
	return g
}

// resolveCalls walks n's body — including nested function literals —
// and resolves every call expression to its module-local targets.
func resolveCalls(n *FuncNode, methodsByName map[string][]*FuncNode, g *CallGraph) []CallSite {
	info := n.Pkg.Info
	var sites []CallSite
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callees []*FuncNode
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if obj, ok := info.Uses[fun].(*types.Func); ok {
				if target := g.byObj[obj]; target != nil {
					callees = append(callees, target)
				}
			}
		case *ast.SelectorExpr:
			obj, ok := info.Uses[fun.Sel].(*types.Func)
			if !ok {
				break
			}
			if sel, selOk := info.Selections[fun]; selOk && sel.Kind() == types.MethodVal {
				if iface, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					// Interface dispatch: every module-local concrete
					// method implementing the interface is a target.
					for _, impl := range methodsByName[fun.Sel.Name] {
						recv := impl.Obj.Type().(*types.Signature).Recv().Type()
						if types.Implements(recv, iface) || types.Implements(types.NewPointer(deref(recv)), iface) {
							callees = append(callees, impl)
						}
					}
					break
				}
			}
			if target := g.byObj[obj]; target != nil {
				callees = append(callees, target)
			}
		}
		if len(callees) > 0 {
			sites = append(sites, CallSite{Call: call, Callees: callees})
		}
		return true
	})
	return sites
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// Reachable walks the graph from roots, returning every node reached.
// A node for which stop returns true is recorded as visited but not
// traversed into, and is excluded from the result — the hook for
// annotations that declare a subtree out of scope (quiescent arbiter
// entries, cold fault paths).
func (g *CallGraph) Reachable(roots []*FuncNode, stop func(*FuncNode) bool) map[*FuncNode]bool {
	reach := map[*FuncNode]bool{}
	seen := map[*FuncNode]bool{}
	var queue []*FuncNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if stop != nil && stop(n) {
			continue
		}
		reach[n] = true
		for _, site := range n.Calls {
			for _, c := range site.Callees {
				if !seen[c] {
					seen[c] = true
					queue = append(queue, c)
				}
			}
		}
	}
	return reach
}

// Callers inverts the graph restricted to the given node set: for each
// node, the (caller, site) pairs that can invoke it.
type callerEdge struct {
	caller *FuncNode
	site   CallSite
}

func (g *CallGraph) callersWithin(within map[*FuncNode]bool) map[*FuncNode][]callerEdge {
	callers := map[*FuncNode][]callerEdge{}
	for n := range within {
		for _, site := range n.Calls {
			for _, c := range site.Callees {
				callers[c] = append(callers[c], callerEdge{caller: n, site: site})
			}
		}
	}
	return callers
}
