// Package lint is the tflex static-analysis suite: project-specific
// analyzers, built on the standard library's go/ast + go/parser +
// go/types only, that enforce the simulator invariants no general
// linter knows about — cycle determinism, pool recycling discipline,
// the telemetry nil-check disabled-cost contract and calendar-queue
// event ordering.  cmd/tflexlint is the command-line driver; ci.sh
// runs it in the default tier-1 gate.
//
// A finding can be suppressed at a call site that has been audited by
// hand with a directive comment on the flagged line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory, and a directive that suppresses nothing is
// itself reported, so stale suppressions cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, renderable as "file:line:col: [analyzer] message".
// Allowed findings were suppressed by an audited //lint:allow directive;
// Run drops them, RunDetailed keeps them with the directive's reason.
type Diagnostic struct {
	Pos         token.Position
	Analyzer    string
	Message     string
	Allowed     bool
	AllowReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker.  Run inspects a single package
// (with the whole module available for cross-package facts) and reports
// findings through report.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module, pkg *Package, report ReportFunc)
}

// ReportFunc files one finding at pos.
type ReportFunc func(pos token.Pos, format string, args ...any)

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, PoolGuard, TelemetryCost, EventDiscipline, DomainGuard, HotAlloc}
}

// ByName resolves a comma-separated analyzer list ("determinism,poolguard").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

const directivePrefix = "lint:allow"

// Run applies analyzers to every package in m (or, when filter is
// non-nil, the packages it admits), resolves //lint:allow directives,
// and returns the surviving diagnostics sorted by position.  Unused and
// malformed directives are reported as findings of the pseudo-analyzer
// "lint".
func Run(m *Module, analyzers []*Analyzer, filter func(*Package) bool) []Diagnostic {
	var kept []Diagnostic
	for _, d := range RunDetailed(m, analyzers, filter) {
		if !d.Allowed {
			kept = append(kept, d)
		}
	}
	return kept
}

// RunDetailed is Run keeping the suppressed findings: every diagnostic
// comes back, audited ones marked Allowed and carrying their
// directive's reason — the record the JSON output and CI summaries
// show.
func RunDetailed(m *Module, analyzers []*Analyzer, filter func(*Package) bool) []Diagnostic {
	var diags []Diagnostic
	var allows []*allowDirective

	for _, pkg := range m.Pkgs {
		if filter != nil && !filter(pkg) {
			continue
		}
		for _, a := range analyzers {
			a := a
			report := func(pos token.Pos, format string, args ...any) {
				diags = append(diags, Diagnostic{
					Pos:      m.Fset.Position(pos),
					Analyzer: a.Name,
					Message:  fmt.Sprintf(format, args...),
				})
			}
			a.Run(m, pkg, report)
		}
		dirs, bad := collectDirectives(m, pkg, analyzers)
		allows = append(allows, dirs...)
		diags = append(diags, bad...)
	}

	// A directive suppresses findings of its analyzer on its own line
	// (trailing comment) or the line directly below (own-line comment).
	for i := range diags {
		d := &diags[i]
		for _, dir := range allows {
			if dir.analyzer == d.Analyzer && dir.pos.Filename == d.Pos.Filename &&
				(dir.pos.Line == d.Pos.Line || dir.pos.Line+1 == d.Pos.Line) {
				dir.used = true
				d.Allowed = true
				d.AllowReason = dir.reason
			}
		}
	}

	for _, dir := range allows {
		if !dir.used {
			diags = append(diags, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "lint",
				Message:  fmt.Sprintf("unused //lint:allow %s directive: nothing on this or the next line triggers %s", dir.analyzer, dir.analyzer),
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// collectDirectives parses every //lint:allow comment in pkg.
// Malformed directives (missing analyzer or reason, unknown analyzer)
// come back as diagnostics; only directives for analyzers in the active
// set participate in suppression.
func collectDirectives(m *Module, pkg *Package, analyzers []*Analyzer) ([]*allowDirective, []Diagnostic) {
	var dirs []*allowDirective
	var bad []Diagnostic
	active := map[string]bool{}
	for _, a := range analyzers {
		active[a.Name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := m.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  `malformed directive: want "//lint:allow <analyzer> <reason>"`,
					})
					continue
				}
				name := fields[0]
				known := false
				for _, a := range All() {
					if a.Name == name {
						known = true
						break
					}
				}
				if !known {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", name),
					})
					continue
				}
				if !active[name] {
					continue // analyzer not in this run; directive neither used nor stale
				}
				dirs = append(dirs, &allowDirective{
					pos:      pos,
					analyzer: name,
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, bad
}

// render prints an expression's source form — the textual key used to
// match a guarded receiver chain against its nil check.
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return render(e.X) + "[" + render(e.Index) + "]"
	case *ast.ParenExpr:
		return render(e.X)
	case *ast.StarExpr:
		return "*" + render(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + render(e.X)
	case *ast.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = render(a)
		}
		return render(e.Fun) + "(" + strings.Join(args, ",") + ")"
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
