package lint

// The telemetry-cost analyzer.  The telemetry and critical-path layers
// are opt-in, and the engine's contract (DESIGN.md, "Telemetry") is
// that a chip with them disabled pays *only nil checks* on the hot
// paths: instrumentation state is stored as concrete pointers that are
// nil while disabled, and every access is either behind a caller-side
// `x != nil` guard or calls a method that opens with its own
// nil-receiver guard.  Two patterns break the contract:
//
//   - an unguarded call through a field-stored telemetry pointer (nil
//     panic when disabled, or silent always-on cost if the field is
//     eagerly initialized to dodge the panic);
//   - hiding instrumentation behind an interface value: interface
//     dispatch costs an indirect call plus pointer-escape even when
//     disabled, and a typed-nil inside a non-nil interface defeats the
//     nil check anyway.
//
// The analyzer runs over the engine packages (internal/sim and
// internal/noc) and flags calls on telemetry/critpath-typed values
// reached through struct fields unless the call is dominated by a nil
// check of that exact receiver chain or the callee is nil-receiver
// safe.  Interface-typed telemetry fields and interface dispatch to
// telemetry are flagged unconditionally.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TelemetryCost enforces the nil-check disabled-cost contract in the
// engine's hot packages.
var TelemetryCost = &Analyzer{
	Name: "telemetry-cost",
	Doc:  "telemetry/critpath access in engine packages must be nil-guarded concrete pointers, never interface calls",
	Run:  runTelemetryCost,
}

// telemetryCostScope lists the module-relative engine packages the
// contract covers.
var telemetryCostScope = []string{"internal/sim", "internal/noc"}

func inScope(relPath string, scope []string) bool {
	for _, s := range scope {
		if relPath == s || strings.HasSuffix(relPath, "/"+s) {
			return true
		}
	}
	return false
}

// instrumentationPackage reports whether a package path is part of the
// instrumentation layer the contract covers.  The flight recorder is
// instrumentation too: its rings are concrete pointers that stay nil
// until EnableFlight arms them, and the hot paths must pay only nil
// checks while disabled.
func instrumentationPackage(path string) bool {
	return strings.HasSuffix(path, "internal/telemetry") ||
		strings.HasSuffix(path, "internal/critpath") ||
		strings.HasSuffix(path, "internal/flight")
}

func runTelemetryCost(m *Module, pkg *Package, report ReportFunc) {
	if !inScope(pkg.RelPath, telemetryCostScope) {
		return
	}

	// Interface-typed instrumentation fields are banned outright.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				tv, ok := pkg.Info.Types[field.Type]
				if !ok || tv.Type == nil {
					continue
				}
				if named := instrumentationNamed(tv.Type); named != nil {
					if _, isIface := named.Underlying().(*types.Interface); isIface {
						report(field.Pos(), "field stores instrumentation interface %s: use a concrete pointer so disabled cost is one nil check", named.Obj().Name())
					}
				}
			}
			return true
		})
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedCalls(m, pkg, fd, report)
		}
	}
}

// instrumentationNamed unwraps pointers and returns the named
// telemetry/critpath type behind t, if any.
func instrumentationNamed(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if !instrumentationPackage(named.Obj().Pkg().Path()) {
		return nil
	}
	return named
}

// checkGuardedCalls walks fd tracking which receiver chains are known
// non-nil (enclosing `if x != nil` bodies, `if x == nil { return }`
// early-outs, and fresh `x = New...()` assignments) and reports any
// instrumentation call outside such a guard whose callee is not
// nil-receiver safe.
func checkGuardedCalls(m *Module, pkg *Package, fd *ast.FuncDecl, report ReportFunc) {
	type guardSet map[string]bool

	clone := func(g guardSet) guardSet {
		out := make(guardSet, len(g))
		for k := range g {
			out[k] = true
		}
		return out
	}

	checkExpr := func(e ast.Expr, guards guardSet) {
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[sel.X]
			if !ok || tv.Type == nil {
				return true
			}
			named := instrumentationNamed(tv.Type)
			if named == nil {
				return true
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				report(call.Pos(), "interface dispatch to instrumentation type %s: the disabled-cost contract requires concrete nil-checked pointers", named.Obj().Name())
				return true
			}
			// Only nil-able receivers need guards: calls on struct
			// *values* (per-proc Summary aggregates) cannot fault.
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr {
				return true
			}
			recv := render(sel.X)
			if !strings.Contains(recv, ".") {
				return true // parameter/local receivers are the caller's contract
			}
			if guards[recv] {
				return true
			}
			if m.NilSafeMethod(named.Obj().Pkg().Path(), named.Obj().Name(), sel.Sel.Name) {
				return true
			}
			report(call.Pos(), "unguarded call %s.%s on instrumentation pointer: guard with `if %s != nil` or make the method nil-receiver safe", recv, sel.Sel.Name, recv)
			return true
		})
	}

	var walkStmts func(list []ast.Stmt, guards guardSet)
	var walkStmt func(s ast.Stmt, guards guardSet)

	walkStmt = func(s ast.Stmt, guards guardSet) {
		switch s := s.(type) {
		case *ast.IfStmt:
			bodyGuards := clone(guards)
			if s.Init != nil {
				walkStmt(s.Init, guards)
				// `if x := c.field; x != nil` — both names guard the body.
				if a, ok := s.Init.(*ast.AssignStmt); ok && len(a.Lhs) == 1 && len(a.Rhs) == 1 {
					for _, g := range nonNilOperands(s.Cond) {
						if g == render(a.Lhs[0]) {
							bodyGuards[render(a.Rhs[0])] = true
						}
					}
				}
			}
			checkExpr(s.Cond, guards)
			for _, g := range nonNilOperands(s.Cond) {
				bodyGuards[g] = true
			}
			walkStmts(s.Body.List, bodyGuards)
			if s.Else != nil {
				walkStmt(s.Else, clone(guards))
			}
		case *ast.BlockStmt:
			walkStmts(s.List, clone(guards))
		case *ast.ForStmt:
			g := clone(guards)
			if s.Init != nil {
				walkStmt(s.Init, g)
			}
			if s.Cond != nil {
				checkExpr(s.Cond, g)
			}
			if s.Post != nil {
				walkStmt(s.Post, g)
			}
			walkStmts(s.Body.List, g)
		case *ast.RangeStmt:
			checkExpr(s.X, guards)
			walkStmts(s.Body.List, clone(guards))
		case *ast.SwitchStmt:
			g := clone(guards)
			if s.Init != nil {
				walkStmt(s.Init, g)
			}
			if s.Tag != nil {
				checkExpr(s.Tag, g)
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						checkExpr(e, g)
					}
					walkStmts(cc.Body, clone(g))
				}
			}
		case *ast.TypeSwitchStmt:
			g := clone(guards)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, clone(g))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if cc.Comm != nil {
						walkStmt(cc.Comm, guards)
					}
					walkStmts(cc.Body, clone(guards))
				}
			}
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				checkExpr(r, guards)
			}
			for i, l := range s.Lhs {
				checkExpr(l, guards)
				// A fresh constructor result is non-nil: `c.sampler =
				// telemetry.NewSampler(iv)` guards later accesses in
				// this scope.
				if i < len(s.Rhs) {
					if call, ok := s.Rhs[i].(*ast.CallExpr); ok && constructorCall(pkg, call) {
						guards[render(l)] = true
					}
				}
			}
		case *ast.ExprStmt:
			checkExpr(s.X, guards)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				checkExpr(r, guards)
			}
		case *ast.GoStmt:
			checkExpr(s.Call, guards)
		case *ast.DeferStmt:
			checkExpr(s.Call, guards)
		case *ast.IncDecStmt:
			checkExpr(s.X, guards)
		case *ast.SendStmt:
			checkExpr(s.Chan, guards)
			checkExpr(s.Value, guards)
		case *ast.DeclStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.LabeledStmt:
			if ls, ok := s.(*ast.LabeledStmt); ok {
				walkStmt(ls.Stmt, guards)
			}
		}
	}

	walkStmts = func(list []ast.Stmt, guards guardSet) {
		for _, s := range list {
			// `if x == nil { return }` guards x for the rest of the list.
			if ifs, ok := s.(*ast.IfStmt); ok && ifs.Init == nil && ifs.Else == nil && terminates(ifs.Body) {
				if nils := nilOperands(ifs.Cond); len(nils) > 0 {
					walkStmt(s, guards)
					for _, g := range nils {
						guards[g] = true
					}
					continue
				}
			}
			walkStmt(s, guards)
		}
	}

	walkStmts(fd.Body.List, guardSet{})
}

// nonNilOperands extracts receiver chains proven non-nil when cond is
// true: `x != nil` operands joined by &&.
func nonNilOperands(cond ast.Expr) []string {
	var out []string
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return nonNilOperands(c.X)
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			out = append(out, nonNilOperands(c.X)...)
			out = append(out, nonNilOperands(c.Y)...)
		case token.NEQ:
			if isNilIdent(c.Y) {
				out = append(out, render(c.X))
			} else if isNilIdent(c.X) {
				out = append(out, render(c.Y))
			}
		}
	}
	return out
}

// nilOperands extracts receiver chains proven non-nil after a
// terminating `if x == nil || y == nil { return }`.
func nilOperands(cond ast.Expr) []string {
	var out []string
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return nilOperands(c.X)
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LOR:
			left, right := nilOperands(c.X), nilOperands(c.Y)
			if len(left) > 0 && len(right) > 0 {
				return append(left, right...)
			}
		case token.EQL:
			if isNilIdent(c.Y) {
				out = append(out, render(c.X))
			} else if isNilIdent(c.X) {
				out = append(out, render(c.Y))
			}
		}
	}
	return out
}

// terminates reports whether the block always leaves the enclosing
// statement list (return / panic as its final statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE || last.Tok == token.BREAK || last.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// constructorCall matches calls whose function name starts with "New"
// (telemetry.NewSampler, NewRegistry, ...) — their results are non-nil
// by construction.
func constructorCall(pkg *Package, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return strings.HasPrefix(fun.Name, "New")
	case *ast.SelectorExpr:
		return strings.HasPrefix(fun.Sel.Name, "New")
	}
	return false
}
