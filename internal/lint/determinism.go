package lint

// The determinism analyzer.  The experiment suite's contract — pinned
// by internal/experiments' regression test — is byte-identical stdout
// at any -jobs level, and the simulator's contract is byte-identical
// results for one seed state.  Two bug classes silently break both:
//
//  1. Wall-clock or randomness inside simulation code.  Only the
//     runner/driver layer may time things (job wall clocks, progress
//     lines on stderr); everything that feeds a figure or a cycle
//     count must be a pure function of its inputs.  The analyzer flags
//     any import of time or math/rand outside the allowlisted
//     driver packages.  One carve-out: packages that are random by
//     design but seed-reproducible (the EDGE program generator) may
//     import math/rand, and there the analyzer instead flags any use
//     of the process-global source (rand.Intn and friends) — only
//     explicitly seeded *rand.Rand instances are allowed.
//
//  2. Ranging over a map on a path that can reach output.  Go
//     randomizes map iteration order per run, so a map range is only
//     safe when the loop is provably order-insensitive.  The analyzer
//     accepts exactly three shapes and flags everything else:
//
//       - sorted-keys: the loop only appends to slices that are later
//         passed to sort.* / slices.Sort* in the same function;
//       - map-writes: every statement only assigns through a map index
//         (set insertion is commutative) or declares loop-locals;
//       - integer accumulation: `n++` / `sum += x` on integer-typed
//         accumulators (integer addition commutes; float addition does
//         NOT — float accumulation over a map range is flagged, match
//         the sorted-key summation in telemetry.Snapshot.Sum instead).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// wallClockAllowed lists the module-relative package paths that may
// import time / math/rand: the concurrent job runner (per-job wall
// clocks), the experiment suite bookkeeping that renders them to
// stderr, and the command-line drivers.  Simulation, telemetry and
// analysis packages must stay clock-free.
func wallClockAllowed(relPath string) bool {
	if relPath == "internal/runner" || relPath == "internal/experiments" {
		return true
	}
	return strings.HasPrefix(relPath, "cmd/") || strings.HasPrefix(relPath, "examples/")
}

var forbiddenImports = map[string]string{
	"time":         "wall-clock reads are nondeterministic across runs",
	"math/rand":    "unseeded randomness breaks byte-identical replay",
	"math/rand/v2": "unseeded randomness breaks byte-identical replay",
}

// seededRandAllowed lists the packages that may import math/rand on the
// condition that every use goes through an explicitly seeded source:
// the EDGE program generator is random by design but must regenerate
// the identical program for one seed.  In these packages the analyzer
// swaps the import ban for a use check — only the constructors
// (rand.New, rand.NewSource) and type names may be referenced at
// package scope; the top-level convenience functions (rand.Intn,
// rand.Shuffle, ...) draw from the process-global source and are
// flagged.
func seededRandAllowed(relPath string) bool {
	return relPath == "internal/edgegen"
}

// seededRandOK are the math/rand package-scope names that do not touch
// the global source: constructors and the types they return.
var seededRandOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"Rand":      true,
	"Source":    true,
	"NewZipf":   true, // takes an explicit *Rand
	"Zipf":      true,
}

// Determinism enforces the no-wall-clock rule and flags map iteration
// that can leak Go's randomized order into results.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag time/math-rand imports outside driver packages and order-sensitive map iteration",
	Run:  runDeterminism,
}

func runDeterminism(m *Module, pkg *Package, report ReportFunc) {
	if !wallClockAllowed(pkg.RelPath) {
		for _, f := range pkg.Files {
			for _, spec := range f.Imports {
				p := importPath(spec)
				why, ok := forbiddenImports[p]
				if !ok {
					continue
				}
				if seededRandAllowed(pkg.RelPath) && strings.HasPrefix(p, "math/rand") {
					continue // import allowed; uses are checked below
				}
				report(spec.Pos(), "import %q outside the driver allowlist: %s", p, why)
			}
		}
	}

	if seededRandAllowed(pkg.RelPath) {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pkg.Info.Uses[id].(*types.PkgName)
				if !ok || !strings.HasPrefix(pn.Imported().Path(), "math/rand") {
					return true
				}
				if !seededRandOK[sel.Sel.Name] {
					report(sel.Pos(), "rand.%s draws from the process-global source; use an explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed)))", sel.Sel.Name)
				}
				return false
			})
		}
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(pkg, rs.X) {
					return true
				}
				if mapRangeSorted(pkg, fd, rs) || mapRangeCommutative(pkg, rs.Body) {
					return true
				}
				report(rs.Pos(), "range over map %s: iteration order is randomized; sort the keys or make the body order-insensitive", render(rs.X))
				return true
			})
		}
	}
}

// isMapType reports whether e's static type is a map.
func isMapType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// mapRangeSorted accepts the collect-then-sort idiom: the loop body
// only appends to slice variables, and each of those slices is later
// handed to a sort.* / slices.* call (or a method named Sort*) inside
// the same function.
func mapRangeSorted(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	// Collect the objects appended to; bail if the body does anything else.
	appended := map[types.Object]bool{}
	ok := true
	var checkStmts func([]ast.Stmt)
	checkStmt := func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				ok = false
				return
			}
			lhs, okl := s.Lhs[0].(*ast.Ident)
			call, okr := s.Rhs[0].(*ast.CallExpr)
			if !okl || !okr || !isBuiltinAppend(pkg, call) {
				ok = false
				return
			}
			obj := pkg.Info.Uses[lhs]
			if obj == nil {
				obj = pkg.Info.Defs[lhs]
			}
			if obj == nil {
				ok = false
				return
			}
			appended[obj] = true
		case *ast.IfStmt:
			if s.Init != nil || s.Else != nil {
				ok = false
				return
			}
			checkStmts(s.Body.List)
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				ok = false
			}
		default:
			ok = false
		}
	}
	checkStmts = func(list []ast.Stmt) {
		for _, s := range list {
			checkStmt(s)
		}
	}
	checkStmts(rs.Body.List)
	if !ok || len(appended) == 0 {
		return false
	}

	// Every appended slice must reach a sorting call after the loop.
	sorted := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || call.Pos() < rs.End() || !isSortCall(pkg, call.Fun) {
			return true
		}
		for _, arg := range call.Args {
			if id, isIdent := arg.(*ast.Ident); isIdent {
				if obj := pkg.Info.Uses[id]; obj != nil && appended[obj] {
					sorted[obj] = true
				}
			}
		}
		return true
	})
	unsorted := 0
	for obj := range appended {
		if !sorted[obj] {
			unsorted++
		}
	}
	return unsorted == 0
}

func isBuiltinAppend(pkg *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isSortCall matches sort.X(...), slices.X(...) and methods whose name
// starts with Sort.
func isSortCall(pkg *Package, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, isIdent := sel.X.(*ast.Ident); isIdent {
		if pn, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
			p := pn.Imported().Path()
			return p == "sort" || p == "slices"
		}
	}
	return strings.HasPrefix(sel.Sel.Name, "Sort")
}

// mapRangeCommutative accepts loop bodies whose visible effects
// commute across iterations: writes through map indices, loop-local
// declarations, integer accumulation, and control flow over those.
func mapRangeCommutative(pkg *Package, body *ast.BlockStmt) bool {
	var okStmts func([]ast.Stmt) bool
	okStmt := func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.AssignStmt:
			return commutativeAssign(pkg, s)
		case *ast.IncDecStmt:
			return mapIndexLHS(pkg, s.X) || isIntegerExpr(pkg, s.X)
		case *ast.IfStmt:
			if s.Init != nil {
				if a, ok := s.Init.(*ast.AssignStmt); !ok || !commutativeAssign(pkg, a) {
					return false
				}
			}
			if !okStmts(s.Body.List) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
				return true
			case *ast.BlockStmt:
				return okStmts(e.List)
			case *ast.IfStmt:
				return okStmts([]ast.Stmt{e})
			default:
				return false
			}
		case *ast.BlockStmt:
			return okStmts(s.List)
		case *ast.RangeStmt:
			return okStmts(s.Body.List)
		case *ast.ForStmt:
			return okStmts(s.Body.List)
		case *ast.DeclStmt:
			return true
		case *ast.BranchStmt:
			return s.Tok == token.CONTINUE || s.Tok == token.BREAK
		default:
			return false
		}
	}
	okStmts = func(list []ast.Stmt) bool {
		for _, s := range list {
			if !okStmt(s) {
				return false
			}
		}
		return true
	}
	return okStmts(body.List)
}

// commutativeAssign accepts map-index stores, loop-local definitions,
// and integer-typed commutative compound assignments.
func commutativeAssign(pkg *Package, a *ast.AssignStmt) bool {
	switch a.Tok {
	case token.DEFINE:
		return true // fresh loop-locals; their uses are judged where they land
	case token.ASSIGN:
		for _, lhs := range a.Lhs {
			if isBlank(lhs) || mapIndexLHS(pkg, lhs) {
				continue
			}
			return false
		}
		return true
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		for _, lhs := range a.Lhs {
			if mapIndexLHS(pkg, lhs) || isIntegerExpr(pkg, lhs) {
				continue
			}
			return false // float (+= is order-sensitive) or string (concatenation)
		}
		return true
	default:
		return false
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// mapIndexLHS reports whether e is an index expression into a map
// (including chained forms like m[a][b]).
func mapIndexLHS(pkg *Package, e ast.Expr) bool {
	idx, ok := e.(*ast.IndexExpr)
	return ok && isMapType(pkg, idx.X)
}

// isIntegerExpr reports whether e's static type is an integer kind.
func isIntegerExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
