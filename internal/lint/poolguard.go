package lint

// The poolguard analyzer.  The engine's allocation budget (15
// allocs/block, and the 1.04x critpath overhead) rests on sync.Pool
// recycling of per-block records, and pooled storage is only safe
// because every pooled type carries a generation tag: stale events and
// stale array entries are recognized by comparing their recorded
// generation against the record's current one.  Three conventions keep
// that sound, and this analyzer enforces all three:
//
//  1. A pool that is Get from must be Put to somewhere in the same
//     package — a missing Put silently degrades the pool to plain
//     allocation and erodes the measured overhead budgets.
//  2. The pooled type must declare a generation field (name containing
//     "gen"), the tag that makes recycled storage's stale contents
//     invisible.
//  3. That generation field must be advanced somewhere in the package
//     (the reset path); a pool whose generation never moves would
//     resurrect stale records.
//
// Plus a function-local leak check: a Get result that neither escapes
// the function (return, store, call argument) nor is Put back is a
// straight leak of pooled storage.

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolGuard enforces the sync.Pool recycling conventions.
var PoolGuard = &Analyzer{
	Name: "poolguard",
	Doc:  "sync.Pool Get/Put pairing, generation-tagged pooled types, advanced-on-reset generations",
	Run:  runPoolGuard,
}

// poolDecl is one `var x = sync.Pool{...}` (or &sync.Pool{...}) in the
// package.
type poolDecl struct {
	name   *ast.Ident
	obj    types.Object
	lit    *ast.CompositeLit // the sync.Pool literal, if any
	gets   int
	puts   int
	pooled *types.TypeName // element type from the New func, if resolvable
}

func runPoolGuard(m *Module, pkg *Package, report ReportFunc) {
	pools := findPools(pkg)
	if len(pools) == 0 {
		return
	}
	byObj := map[types.Object]*poolDecl{}
	for _, p := range pools {
		if p.obj != nil {
			byObj[p.obj] = p
		}
	}

	// Count Get/Put call sites per pool, and run the per-function leak
	// check as we go.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncLeaks(pkg, fd, byObj, report)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pool, method := poolCall(pkg, call, byObj)
				if pool == nil {
					return true
				}
				switch method {
				case "Get":
					pool.gets++
				case "Put":
					pool.puts++
				}
				return true
			})
		}
	}

	for _, p := range pools {
		if p.gets > 0 && p.puts == 0 {
			report(p.name.Pos(), "sync.Pool %s has %d Get call(s) but no Put: pooled objects are never recycled", p.name.Name, p.gets)
		}
		if p.pooled == nil {
			continue
		}
		genField := generationField(p.pooled)
		if genField == "" {
			report(p.pooled.Pos(), "pooled type %s lacks a generation field: recycled records cannot invalidate stale state", p.pooled.Name())
			continue
		}
		if !generationWritten(pkg, p.pooled, genField) {
			report(p.pooled.Pos(), "generation field %s.%s is never advanced: the reset path must bump it so stale entries stay invisible", p.pooled.Name(), genField)
		}
	}
}

// findPools locates sync.Pool variable declarations syntactically (the
// loader does not type-check the standard library, so sync.Pool is
// matched as a selector on the "sync" import).
func findPools(pkg *Package) []*poolDecl {
	var pools []*poolDecl
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				var lit *ast.CompositeLit
				if vs.Type != nil && isSyncPoolType(pkg, vs.Type) {
					if i < len(vs.Values) {
						lit, _ = vs.Values[i].(*ast.CompositeLit)
					}
				} else if i < len(vs.Values) {
					lit = syncPoolLit(pkg, vs.Values[i])
					if lit == nil {
						continue
					}
				} else {
					continue
				}
				p := &poolDecl{name: name, lit: lit}
				if obj := pkg.Info.Defs[name]; obj != nil {
					p.obj = obj
				}
				if lit != nil {
					p.pooled = pooledType(pkg, lit)
				}
				pools = append(pools, p)
			}
			return true
		})
	}
	return pools
}

// syncPoolLit unwraps e (possibly &...) to a sync.Pool composite literal.
func syncPoolLit(pkg *Package, e ast.Expr) *ast.CompositeLit {
	if ue, ok := e.(*ast.UnaryExpr); ok {
		e = ue.X
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok || lit.Type == nil || !isSyncPoolType(pkg, lit.Type) {
		return nil
	}
	return lit
}

func isSyncPoolType(pkg *Package, t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Pool" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync"
}

// pooledType extracts the element type from the pool's New func:
// `func() any { return new(T) }` or `return &T{...}`.
func pooledType(pkg *Package, lit *ast.CompositeLit) *types.TypeName {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "New" {
			continue
		}
		fl, ok := kv.Value.(*ast.FuncLit)
		if !ok {
			return nil
		}
		var tn *types.TypeName
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 || tn != nil {
				return true
			}
			tn = typeNameOf(pkg, ret.Results[0])
			return true
		})
		return tn
	}
	return nil
}

// typeNameOf resolves new(T), &T{...} or T{...} to T's declaration.
func typeNameOf(pkg *Package, e ast.Expr) *types.TypeName {
	switch e := e.(type) {
	case *ast.CallExpr: // new(T)
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" && len(e.Args) == 1 {
			return identTypeName(pkg, e.Args[0])
		}
	case *ast.UnaryExpr: // &T{...}
		return typeNameOf(pkg, e.X)
	case *ast.CompositeLit:
		return identTypeName(pkg, e.Type)
	}
	return nil
}

func identTypeName(pkg *Package, e ast.Expr) *types.TypeName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	tn, _ := pkg.Info.Uses[id].(*types.TypeName)
	return tn
}

// generationField returns the name of tn's generation field ("Gen",
// "gen", "generation", ...), or "".
func generationField(tn *types.TypeName) string {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		name := st.Field(i).Name()
		if strings.Contains(strings.ToLower(name), "gen") {
			return name
		}
	}
	return ""
}

// generationWritten reports whether any function in the package assigns
// to or increments the named field on a value of tn's type.
func generationWritten(pkg *Package, tn *types.TypeName, field string) bool {
	written := false
	isGenSel := func(e ast.Expr) bool {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != field {
			return false
		}
		tv, ok := pkg.Info.Types[sel.X]
		if !ok || tv.Type == nil {
			return false
		}
		t := tv.Type
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj() == tn
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if isGenSel(lhs) {
						written = true
					}
				}
			case *ast.IncDecStmt:
				if isGenSel(n.X) {
					written = true
				}
			}
			return !written
		})
		if written {
			return true
		}
	}
	return false
}

// poolCall matches calls of the form pool.Get() / pool.Put(x) where
// pool resolves to a tracked sync.Pool variable.
func poolCall(pkg *Package, call *ast.CallExpr, byObj map[types.Object]*poolDecl) (*poolDecl, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
		return nil, ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return nil, ""
	}
	pool, ok := byObj[obj]
	if !ok {
		return nil, ""
	}
	return pool, sel.Sel.Name
}

// checkFuncLeaks flags Get results that stay local to fd on every path
// yet are never Put back: `x := pool.Get().(*T)` followed by neither a
// Put, a return of x, a store of x anywhere non-local, nor passing x to
// a call.
func checkFuncLeaks(pkg *Package, fd *ast.FuncDecl, byObj map[types.Object]*poolDecl, report ReportFunc) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok || lhs.Name == "_" {
			return true
		}
		pool := getCallPool(pkg, as.Rhs[0], byObj)
		if pool == nil {
			return true
		}
		obj := pkg.Info.Defs[lhs]
		if obj == nil {
			obj = pkg.Info.Uses[lhs]
		}
		if obj == nil {
			return true
		}
		if !escapesOrPut(pkg, fd, as, obj) {
			report(as.Pos(), "result of %s.Get never escapes %s and is never Put back: pooled object leaks", pool.name.Name, fd.Name.Name)
		}
		return true
	})
}

// getCallPool unwraps `pool.Get()` / `pool.Get().(*T)` to its pool.
func getCallPool(pkg *Package, e ast.Expr, byObj map[types.Object]*poolDecl) *poolDecl {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	pool, method := poolCall(pkg, call, byObj)
	if method != "Get" {
		return nil
	}
	return pool
}

// escapesOrPut reports whether obj (bound at stmt `get`) is returned,
// stored beyond the function, passed to any call, or Put back.
func escapesOrPut(pkg *Package, fd *ast.FuncDecl, get *ast.AssignStmt, obj types.Object) bool {
	escapes := false
	usesObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if escapes || n == nil || n.Pos() <= get.Pos() {
			return true
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesObj(r) {
					escapes = true
				}
			}
		case *ast.CallExpr:
			for _, a := range n.Args {
				if usesObj(a) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			if n == get {
				return true
			}
			for i, r := range n.Rhs {
				if !usesObj(r) {
					continue
				}
				// Re-binding to another local keeps it local; any
				// selector/index store escapes.
				if i < len(n.Lhs) {
					if _, isIdent := n.Lhs[i].(*ast.Ident); isIdent {
						continue
					}
				}
				escapes = true
			}
		}
		return !escapes
	})
	return escapes
}
