package lint

// The loader: a stdlib-only substitute for golang.org/x/tools/go/packages.
//
// Every analyzer in this package needs the same three things — parsed
// syntax with comments, resolved identifiers, and type information for
// module-local declarations — and the lint stage has a ~5s budget in
// ci.sh, so the loader parses and type-checks the whole module exactly
// once and every analyzer runs over the shared result.
//
// Cross-module (standard library) imports are satisfied with empty
// placeholder packages instead of being type-checked from source: the
// invariants tflexlint enforces are stated in terms of *this module's*
// declarations (sim.Chip fields, telemetry.Histogram methods, the
// critpath block pool), so stdlib member types may come out as
// `invalid` without costing any analyzer precision — the few stdlib
// shapes that matter (`sync.Pool`, `sort.*`, `time`/`math/rand`
// imports) are matched on resolved import names, not on stdlib type
// information.  That trade keeps a full-module load under a second
// where a source-importing load of net/http alone would blow the
// budget.

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	Path    string // import path ("example.com/mod/internal/sim")
	RelPath string // module-relative path ("internal/sim"; "" for the root)
	Dir     string
	Files   []*ast.File
	Fset    *token.FileSet
	Types   *types.Package
	Info    *types.Info
}

// FileName returns the base name of the file containing pos.
func (p *Package) FileName(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// Module is a fully loaded module: every package, sharing one FileSet.
type Module struct {
	Root string // directory containing go.mod
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // topologically ordered, dependencies first

	nilSafe map[methodKey]bool

	// Lazily built, shared across analyzers within one run (the
	// dogfood timing budget assumes one load and one fact build).
	flows map[*ast.BlockStmt]*funcFlow
	graph *CallGraph
	facts map[string]any
}

// Fact memoizes a module-level analysis result under key, so analyzers
// that need whole-module facts (domainguard, hotalloc) compute them
// once and then filter per package.
func (m *Module) Fact(key string, build func() any) any {
	if m.facts == nil {
		m.facts = map[string]any{}
	}
	if v, ok := m.facts[key]; ok {
		return v
	}
	v := build()
	m.facts[key] = v
	return v
}

type methodKey struct {
	pkgPath  string
	typeName string
	method   string
}

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule loads the module rooted at root (its go.mod names the
// module path).
func LoadModule(root string) (*Module, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	return LoadTree(root, modPath)
}

// LoadTree loads every package under root as if root were the directory
// of a module named modPath.  Test files (_test.go), testdata trees,
// hidden and underscore-prefixed directories are skipped.
func LoadTree(root, modPath string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}

	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	// Parse every directory that holds non-test Go files.
	byPath := map[string]*Package{}
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(m.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			if !buildFileIncluded(f) {
				continue
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		pkg := &Package{
			Path:    path.Join(modPath, rel),
			RelPath: rel,
			Dir:     dir,
			Files:   files,
			Fset:    m.Fset,
		}
		byPath[pkg.Path] = pkg
	}

	ordered, err := topoSort(byPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{local: map[string]*types.Package{}, fake: map[string]*types.Package{}}
	for _, pkg := range ordered {
		conf := types.Config{
			Importer: imp,
			Error:    func(error) {}, // stdlib members resolve to invalid types; that is expected
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		tpkg, _ := conf.Check(pkg.Path, m.Fset, pkg.Files, info) // errors swallowed above
		if tpkg == nil {
			tpkg = types.NewPackage(pkg.Path, "")
		}
		pkg.Types = tpkg
		pkg.Info = info
		imp.local[pkg.Path] = tpkg
	}
	m.Pkgs = ordered
	m.computeNilSafe()
	return m, nil
}

// buildFileIncluded reports whether f's build constraints (//go:build
// or legacy // +build lines above the package clause) admit the host
// configuration.  Excluded files would double-declare symbols or
// reference platform-only APIs, poisoning the shared type-check, so
// the loader drops them the way `go build` would.
func buildFileIncluded(f *ast.File) bool {
	tagOK := func(tag string) bool {
		switch tag {
		case runtime.GOOS, runtime.GOARCH, "gc":
			return true
		}
		return strings.HasPrefix(tag, "go1")
	}
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: include, let the checker complain
			}
			if !expr.Eval(tagOK) {
				return false
			}
		}
	}
	return true
}

// topoSort orders packages dependencies-first using module-local import
// edges only.
func topoSort(byPath map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var ordered []*Package
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p)
		}
		state[p] = visiting
		pkg := byPath[p]
		var deps []string
		for _, f := range pkg.Files {
			for _, spec := range f.Imports {
				dep := importPath(spec)
				if _, ok := byPath[dep]; ok && dep != p {
					deps = append(deps, dep)
				}
			}
		}
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = done
		ordered = append(ordered, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// importPath returns the unquoted import path of spec.
func importPath(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	return strings.Trim(s, `"`)
}

// moduleImporter resolves module-local imports to their checked
// packages and everything else (the standard library) to empty
// placeholders.
type moduleImporter struct {
	local map[string]*types.Package
	fake  map[string]*types.Package
}

func (imp *moduleImporter) Import(p string) (*types.Package, error) {
	if pkg, ok := imp.local[p]; ok {
		return pkg, nil
	}
	if pkg, ok := imp.fake[p]; ok {
		return pkg, nil
	}
	pkg := types.NewPackage(p, path.Base(p))
	pkg.MarkComplete()
	imp.fake[p] = pkg
	return pkg, nil
}

// computeNilSafe records every pointer-receiver method in the module
// whose body opens with a `if recv == nil { ... }` guard — the
// callee-side variant of the telemetry disabled-cost contract.  A
// method whose statements all delegate to other methods on its own
// receiver (`func (t *T) A() { t.b() }`) inherits nil-safety from its
// delegates, resolved to a fixpoint.
func (m *Module) computeNilSafe() {
	m.nilSafe = map[methodKey]bool{}
	type delegation struct {
		key   methodKey
		calls []methodKey
	}
	var delegators []delegation
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil || len(fd.Body.List) == 0 {
					continue
				}
				names := fd.Recv.List[0].Names
				if len(names) != 1 {
					continue
				}
				recv := names[0].Name
				typeName := receiverTypeName(fd.Recv.List[0].Type)
				if typeName == "" {
					continue
				}
				key := methodKey{pkg.Path, typeName, fd.Name.Name}
				if first, ok := fd.Body.List[0].(*ast.IfStmt); ok && condChecksNil(first.Cond, recv) {
					m.nilSafe[key] = true
					continue
				}
				if calls := receiverDelegations(fd, recv, pkg.Path, typeName); calls != nil {
					delegators = append(delegators, delegation{key: key, calls: calls})
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range delegators {
			if m.nilSafe[d.key] {
				continue
			}
			safe := true
			for _, c := range d.calls {
				if !m.nilSafe[c] {
					safe = false
					break
				}
			}
			if safe {
				m.nilSafe[d.key] = true
				changed = true
			}
		}
	}
}

// receiverDelegations returns the methods fd forwards to when every
// statement is a bare call (or return of a call) on fd's own receiver;
// nil if fd does anything else.
func receiverDelegations(fd *ast.FuncDecl, recv, pkgPath, typeName string) []methodKey {
	var calls []methodKey
	callOnRecv := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isIdentNamed(sel.X, recv) {
			return false
		}
		calls = append(calls, methodKey{pkgPath, typeName, sel.Sel.Name})
		return true
	}
	for _, s := range fd.Body.List {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if !callOnRecv(s.X) {
				return nil
			}
		case *ast.ReturnStmt:
			if len(s.Results) != 1 || !callOnRecv(s.Results[0]) {
				return nil
			}
		default:
			return nil
		}
	}
	return calls
}

// NilSafeMethod reports whether method on the named type (declared in
// the package with import path pkgPath) opens with a nil-receiver
// guard.
func (m *Module) NilSafeMethod(pkgPath, typeName, method string) bool {
	return m.nilSafe[methodKey{pkgPath, typeName, method}]
}

// receiverTypeName unwraps *T / generic instantiations to the bare
// receiver type name.
func receiverTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// condChecksNil reports whether cond contains `name == nil` as a
// top-level || / && operand (evaluation reaches it before any member
// access on name can fault).
func condChecksNil(cond ast.Expr, name string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condChecksNil(c.X, name)
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LOR, token.LAND:
			return condChecksNil(c.X, name) || condChecksNil(c.Y, name)
		case token.EQL:
			return isIdentNamed(c.X, name) && isNilIdent(c.Y) ||
				isIdentNamed(c.Y, name) && isNilIdent(c.X)
		}
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
