package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// loadFixture loads one testdata tree as the module "example.com/fix".
func loadFixture(t *testing.T, name string) *Module {
	t.Helper()
	m, err := LoadTree(filepath.Join("testdata", name), "example.com/fix")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(m.Pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", name)
	}
	return m
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// expectation is one `// want "substring"` marker in a fixture file.
type expectation struct {
	file string // base name
	line int
	want string
}

// fixtureWants scans the loaded fixture for want markers.
func fixtureWants(m *Module) []expectation {
	var wants []expectation
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, match := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						pos := m.Fset.Position(c.Pos())
						wants = append(wants, expectation{
							file: filepath.Base(pos.Filename),
							line: pos.Line,
							want: match[1],
						})
					}
				}
			}
		}
	}
	return wants
}

// checkGolden runs the given analyzers over the fixture and matches the
// diagnostics 1:1 against the want markers.
func checkGolden(t *testing.T, fixture string, analyzers []*Analyzer) {
	t.Helper()
	m := loadFixture(t, fixture)
	diags := Run(m, analyzers, nil)
	wants := fixtureWants(m)

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line {
				continue
			}
			if strings.Contains(d.Message, w.want) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: want a finding containing %q, got none", w.file, w.line, w.want)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

func TestDeterminismGolden(t *testing.T) {
	checkGolden(t, "determinism", []*Analyzer{Determinism})
}

func TestPoolGuardGolden(t *testing.T) {
	checkGolden(t, "poolguard", []*Analyzer{PoolGuard})
}

func TestTelemetryCostGolden(t *testing.T) {
	checkGolden(t, "telemcost", []*Analyzer{TelemetryCost})
}

func TestEventDisciplineGolden(t *testing.T) {
	checkGolden(t, "eventdisc", []*Analyzer{EventDiscipline})
}

func TestDomainGuardGolden(t *testing.T) {
	checkGolden(t, "domainguard", []*Analyzer{DomainGuard})
}

func TestHotAllocGolden(t *testing.T) {
	checkGolden(t, "hotalloc", []*Analyzer{HotAlloc})
}

// TestInjectedViolations pins the acceptance criteria directly: the
// injected unguarded cross-domain access and the injected event-loop
// allocation each produce exactly one finding, at the marked line.
func TestInjectedViolations(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer *Analyzer
		file     string
	}{
		{"domainguard", DomainGuard, "inject.go"},
		{"hotalloc", HotAlloc, "inject.go"},
	}
	for _, tc := range cases {
		m := loadFixture(t, tc.fixture)
		wantLine := 0
		for _, w := range fixtureWants(m) {
			if w.file == tc.file {
				wantLine = w.line
			}
		}
		if wantLine == 0 {
			t.Fatalf("%s: no want marker in %s", tc.fixture, tc.file)
		}
		var inFile []Diagnostic
		for _, d := range Run(m, []*Analyzer{tc.analyzer}, nil) {
			if filepath.Base(d.Pos.Filename) == tc.file {
				inFile = append(inFile, d)
			}
		}
		if len(inFile) != 1 || inFile[0].Pos.Line != wantLine {
			t.Errorf("%s/%s: want exactly one finding at line %d, got %v", tc.fixture, tc.file, wantLine, inFile)
		}
	}
}

// TestAllowDirectives pins the suppression machinery: audited map
// ranges vanish, while unused, malformed and unknown-analyzer
// directives surface as "lint" findings.
func TestAllowDirectives(t *testing.T) {
	m := loadFixture(t, "allow")
	diags := Run(m, []*Analyzer{Determinism}, nil)

	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d [%s] %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message))
	}

	wants := []struct {
		line   int
		substr string
	}{
		{24, "unused //lint:allow determinism directive"},
		{28, "malformed directive"},
		{32, `unknown analyzer "nosuchanalyzer"`},
	}
	if len(diags) != len(wants) {
		t.Fatalf("want %d findings, got %d:\n%s", len(wants), len(diags), strings.Join(got, "\n"))
	}
	for i, w := range wants {
		d := diags[i]
		if d.Pos.Line != w.line || d.Analyzer != "lint" || !strings.Contains(d.Message, w.substr) {
			t.Errorf("finding %d: want line %d [lint] containing %q, got %s", i, w.line, w.substr, got[i])
		}
	}
}

// TestAllowFixtureTriggersWithoutDirectives guards against the allow
// fixture rotting: the audited sites must be suppressed through the
// driver, yet still trigger the raw analyzer — proving the directives
// are suppressing real findings rather than nothing.
func TestAllowFixtureTriggersWithoutDirectives(t *testing.T) {
	m := loadFixture(t, "allow")
	diags := Run(m, []*Analyzer{Determinism}, nil)
	for _, d := range diags {
		if d.Analyzer == "determinism" {
			t.Errorf("audited site leaked through its directive: %s", d)
		}
	}
	// The raw analyzer (no directive resolution) must still fire on both.
	raw := 0
	for _, pkg := range m.Pkgs {
		Determinism.Run(m, pkg, func(_ token.Pos, _ string, _ ...any) { raw++ })
	}
	if raw != 2 {
		t.Errorf("raw determinism findings in allow fixture: want 2, got %d", raw)
	}
}

// TestByName pins the analyzer-selection flag.
func TestByName(t *testing.T) {
	got, err := ByName("determinism, poolguard")
	if err != nil || len(got) != 2 || got[0].Name != "determinism" || got[1].Name != "poolguard" {
		t.Fatalf("ByName: got %v, err %v", got, err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus): want error")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal(`ByName(""): want error`)
	}
}

// TestModuleCleanliness is the dogfood gate in test form: the module
// itself must be lint-clean, and the whole load+analyze pass must stay
// fast enough to sit in the default CI gate.  ci.sh runs the CLI too;
// this keeps `go test ./...` sufficient to catch regressions.
func TestModuleCleanliness(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	m, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, All(), nil)
	elapsed := time.Since(start)
	for _, d := range diags {
		t.Errorf("module not lint-clean: %s", d)
	}
	// Typical load+run is well under a second; the generous bound only
	// catches an analyzer going superlinear (a lost cache share, a
	// fixpoint that stopped converging), not a slow CI host.
	const budget = 5 * time.Second
	if elapsed > budget {
		t.Errorf("whole-module lint took %v, over its %v budget", elapsed, budget)
	}
}
