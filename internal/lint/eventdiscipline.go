package lint

// The event-discipline analyzer.  The engine's event layer offers
// exactly one correct way to schedule work: the scheduleEv entry points
// (on the chip for the reference queue, on each event domain for its
// partitioned calendar queue), which clamp the target cycle to now and
// stamp the insertion sequence number.  Both queue implementations
// assume it — calQueue.push in particular documents its bucket
// invariant in terms of the clamp.  Two mistakes re-introduce the bugs
// that contract removed:
//
//   - pushing or popping a queue directly from code that does not own
//     it, which skips the seq stamp (breaking the (at, seq) total order
//     that keeps every engine mode byte-identical) and the clamp
//     (breaking the calendar-queue bucket invariant);
//   - computing a target cycle by *subtracting from now* — the clamp
//     turns the intended past cycle into "this cycle", silently
//     reordering what was meant to be causality into coincidence.
//
// Ownership is structural, not nominal: a *queue owner* is any struct
// type with a field of a queue type (Chip owns the reference heap, each
// domain owns a calendar queue).  Pops are the owner's drain loops, so
// any method of an owner may pop its queue; pushes must additionally go
// through the owner's scheduleEv, where the stamp and clamp live.
// Queue internals (event.go) are exempt wholesale.  Everything else —
// free functions, methods of non-owner types — may not touch a queue at
// all.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EventDiscipline enforces calendar-queue access and forward-only
// scheduling in the engine package.
var EventDiscipline = &Analyzer{
	Name: "event-discipline",
	Doc:  "events are scheduled only through a queue owner's scheduleEv, at cycles >= now",
	Run:  runEventDiscipline,
}

var eventDisciplineScope = []string{"internal/sim"}

// queueTypes are the event-queue implementations; direct method access
// is confined to event.go plus the methods of queue-owner types.
var queueTypes = map[string]bool{"calQueue": true, "eventQueue": true, "minEvHeap": true}

// pushMethods stamp-sensitively insert events: owner scheduleEv only.
var pushMethods = map[string]bool{"push": true, "Push": true}

// popMethods remove or cursor-advance: any owner method (drain loops).
var popMethods = map[string]bool{"popMin": true, "pop": true, "Pop": true, "nextAt": true}

func runEventDiscipline(m *Module, pkg *Package, report ReportFunc) {
	if !inScope(pkg.RelPath, eventDisciplineScope) {
		return
	}
	owners := queueOwners(pkg)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fromEventFile := pkg.FileName(fd.Pos()) == "event.go"
			ownerMethod := owners[recvTypeName(fd)]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkQueueAccess(pkg, fd, call, fromEventFile, ownerMethod, report)
				checkPastSchedule(pkg, call, report)
				return true
			})
		}
	}
}

// queueOwners returns the package's queue-owner types: named structs
// with a field (plain or pointer) of a queue type.
func queueOwners(pkg *Package) map[string]bool {
	owners := map[string]bool{}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			ft := st.Field(i).Type()
			if ptr, isPtr := ft.(*types.Pointer); isPtr {
				ft = ptr.Elem()
			}
			if named, isNamed := ft.(*types.Named); isNamed && queueTypes[named.Obj().Name()] {
				owners[name] = true
				break
			}
		}
	}
	return owners
}

// recvTypeName returns the base type name of a method receiver ("" for
// free functions).
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkQueueAccess flags direct queue operations outside event.go and
// the queue-owner discipline: pops anywhere but an owner's methods,
// pushes anywhere but an owner's scheduleEv.
func checkQueueAccess(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, fromEventFile, ownerMethod bool, report ReportFunc) {
	if fromEventFile {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	isPush, isPop := pushMethods[sel.Sel.Name], popMethods[sel.Sel.Name]
	if !isPush && !isPop {
		return
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || !queueTypes[named.Obj().Name()] {
		return
	}
	if isPush && !(ownerMethod && fd.Name.Name == "scheduleEv") {
		report(call.Pos(), "direct %s.%s bypasses the owner's scheduleEv: events must get their (at, seq) stamp and now-clamp from the typed API", named.Obj().Name(), sel.Sel.Name)
		return
	}
	if isPop && !ownerMethod {
		report(call.Pos(), "direct %s.%s outside a queue-owner method: only a queue's owning type may drain it", named.Obj().Name(), sel.Sel.Name)
	}
}

// checkPastSchedule flags schedule/scheduleEv calls whose cycle
// argument subtracts from the current cycle.
func checkPastSchedule(pkg *Package, call *ast.CallExpr, report ReportFunc) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "schedule" && sel.Sel.Name != "scheduleEv") || len(call.Args) < 1 {
		return
	}
	if sub := pastCycleExpr(call.Args[0]); sub != "" {
		report(call.Args[0].Pos(), "cycle argument %s schedules before Now(): the clamp would silently move it to the current cycle — compute forward delays only", sub)
	}
}

// pastCycleExpr returns the rendered subtraction if e (or a
// subexpression) subtracts from the current cycle (an operand chain
// ending in .now or a Now() call).
func pastCycleExpr(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.SUB || found != "" {
			return true
		}
		if mentionsNow(be.X) {
			found = render(be)
		}
		return true
	})
	return found
}

// mentionsNow reports whether e reads the current cycle: a selector or
// identifier named now, or a Now() call.
func mentionsNow(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "now" || n.Sel.Name == "Now" {
				found = true
			}
		case *ast.Ident:
			if n.Name == "now" {
				found = true
			}
		}
		return !found
	})
	if !found && strings.Contains(render(e), "Now()") {
		found = true
	}
	return found
}
