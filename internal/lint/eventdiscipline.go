package lint

// The event-discipline analyzer.  The engine's event layer offers
// exactly one correct way to schedule work: Chip.schedule /
// Chip.scheduleEv, which clamp the target cycle to now and stamp the
// deterministic insertion sequence number.  Both queue implementations
// (the bucketed calendar queue and the reference heap) assume it —
// calQueue.push in particular documents "the caller guarantees
// e.at >= q.base", which only holds because scheduleEv clamps.  Two
// mistakes re-introduce the bugs that contract removed:
//
//   - pushing or popping a queue directly, which skips the seq stamp
//     (breaking the (at, seq) total order that makes the two queues
//     byte-identical) and the clamp (breaking the calendar-queue bucket
//     invariant);
//   - computing a target cycle by *subtracting from now* — the clamp
//     turns the intended past cycle into "this cycle", silently
//     reordering what was meant to be causality into coincidence.
//
// Queue internals (event.go) and the two blessed Chip entry points are
// the only places allowed to touch the queues.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EventDiscipline enforces calendar-queue access and forward-only
// scheduling in the engine package.
var EventDiscipline = &Analyzer{
	Name: "event-discipline",
	Doc:  "events are scheduled only through Chip.scheduleEv, at cycles >= now",
	Run:  runEventDiscipline,
}

var eventDisciplineScope = []string{"internal/sim"}

// queueTypes are the event-queue implementations; direct method access
// is confined to event.go plus the blessed Chip functions.
var queueTypes = map[string]bool{"calQueue": true, "eventQueue": true, "minEvHeap": true}

// queueMethods are the ordering-sensitive operations.
var queueMethods = map[string]bool{"push": true, "popMin": true, "Push": true, "Pop": true}

// blessedFuncs may operate on the queues directly: the stamping
// entry point and the drain loop.
var blessedFuncs = map[string]bool{"scheduleEv": true, "Run": true}

func runEventDiscipline(m *Module, pkg *Package, report ReportFunc) {
	if !inScope(pkg.RelPath, eventDisciplineScope) {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fromEventFile := pkg.FileName(fd.Pos()) == "event.go"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkQueueAccess(pkg, fd, call, fromEventFile, report)
				checkPastSchedule(pkg, call, report)
				return true
			})
		}
	}
}

// checkQueueAccess flags direct queue push/pop outside event.go and the
// blessed Chip functions.
func checkQueueAccess(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, fromEventFile bool, report ReportFunc) {
	if fromEventFile || blessedFuncs[fd.Name.Name] {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !queueMethods[sel.Sel.Name] {
		return
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || !queueTypes[named.Obj().Name()] {
		return
	}
	report(call.Pos(), "direct %s.%s bypasses Chip.scheduleEv: events must get their (at, seq) stamp and now-clamp from the typed API", named.Obj().Name(), sel.Sel.Name)
}

// checkPastSchedule flags schedule/scheduleEv calls whose cycle
// argument subtracts from the current cycle.
func checkPastSchedule(pkg *Package, call *ast.CallExpr, report ReportFunc) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "schedule" && sel.Sel.Name != "scheduleEv") || len(call.Args) < 1 {
		return
	}
	if sub := pastCycleExpr(call.Args[0]); sub != "" {
		report(call.Args[0].Pos(), "cycle argument %s schedules before Now(): the clamp would silently move it to the current cycle — compute forward delays only", sub)
	}
}

// pastCycleExpr returns the rendered subtraction if e (or a
// subexpression) subtracts from the current cycle (an operand chain
// ending in .now or a Now() call).
func pastCycleExpr(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.SUB || found != "" {
			return true
		}
		if mentionsNow(be.X) {
			found = render(be)
		}
		return true
	})
	return found
}

// mentionsNow reports whether e reads the current cycle: a selector or
// identifier named now, or a Now() call.
func mentionsNow(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "now" || n.Sel.Name == "Now" {
				found = true
			}
		case *ast.Ident:
			if n.Name == "now" {
				found = true
			}
		}
		return !found
	})
	if !found && strings.Contains(render(e), "Now()") {
		found = true
	}
	return found
}
