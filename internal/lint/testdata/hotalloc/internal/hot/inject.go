package hot

// record is the injected violation of the acceptance criteria: an
// event record allocated fresh on every dispatch instead of drawn from
// a pool.  Exactly one finding, at the marked line.
func (e *engine) record(p *proc, at uint64) {
	p.last = &ev{at: at} // want "&ev composite literal escapes"
}
