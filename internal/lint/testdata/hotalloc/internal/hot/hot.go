// Package hot is a miniature of the engine's per-cycle event loop and
// its recycling idioms — retained scratch buffers, a heap with
// capacity reuse — plus the allocation mistakes hotalloc exists to
// catch.
package hot

type ev struct {
	at   uint64
	kind int
}

// evHeap reuses its backing array: push appends, pop re-slices.
type evHeap []ev

func (h *evHeap) push(e ev) {
	*h = append(*h, e) // ok: retained named slice type
}

func (h *evHeap) pop() ev {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type proc struct {
	insts    []ev
	scratch  []uint64
	deferred []uint64
	done     []uint64
	last     *ev
}

// reset recycles the per-proc buffers, keeping their capacity.
func (p *proc) reset() {
	p.insts = p.insts[:0]
	p.scratch = p.scratch[:0]
}

// sweep drops zero entries in place: the filter alias writes into
// done's own backing store, which is what retains the field.
func (p *proc) sweep() {
	kept := p.done[:0]
	for _, v := range p.done {
		if v != 0 {
			kept = append(kept, v) // ok: reuse alias of the field's backing array
		}
	}
	p.done = kept
}

type engine struct {
	procs []proc
	heap  evHeap
	slots []uint64
	seen  map[uint64]bool
}

// ensure is the lazy-init idiom: allocations behind a nil guard run
// once, not per event.
func (e *engine) ensure() {
	if e.slots == nil {
		e.slots = make([]uint64, 64) // ok: nil-guarded one-time init
		e.seen = map[uint64]bool{}   // ok: one-time init inside the guard
	}
}

// grow is the amortized-growth idiom: the cap guard bounds how often
// the make can run.
func grow(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n) // ok: cap-guarded amortized growth
	}
	return s[:n]
}

// run is the per-cycle event loop.
//
//lint:hot root
func (e *engine) run(cycles int) {
	for c := 0; c < cycles; c++ {
		for i := range e.procs {
			e.step(&e.procs[i], uint64(c))
		}
	}
}

func (e *engine) step(p *proc, at uint64) {
	e.ensure()
	e.heap.push(ev{at: at})          // ok: retained heap, value argument
	p.insts = append(p.insts, ev{})  // ok: retained field (reset re-slices)
	p.scratch = append(p.scratch, 1) // ok: retained field
	p.scratch = grow(p.scratch, 8)
	p.done = append(p.done, at) // ok: done is retained through sweep's filter alias
	p.sweep()
	reindex := func() { p.last = nil } // ok: capturing, but bound to a local helper
	reindex()
	e.sinkFn(func(x uint64) uint64 { return x + 1 }) // ok: non-capturing literal, a static funcval
	if len(p.insts) > 4 {
		p.reset()
	}
	e.record(p, at)
	e.spill(p)
	e.fail(p, at)
	_ = e.heap.pop()
}

func itoa(p *proc) string {
	if p == nil {
		return "nil"
	}
	return "proc"
}

func (e *engine) sink(v any) {}

func (e *engine) sinkFn(fn func(uint64) uint64) {}

// fail is the fault path: entered at most once per run, so neither its
// body nor its argument boxing is hot.
//
//lint:hot cold fault path, executed at most once per run
func (e *engine) fail(args ...any) {
	panic("fail")
}

// NewBuf allocates fresh state: fine at setup time, flagged at any hot
// call site (constructors are not traversed).
func NewBuf() *proc {
	return &proc{insts: make([]ev, 0, 16)}
}
