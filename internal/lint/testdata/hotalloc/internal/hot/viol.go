package hot

// spill collects one specimen of every allocation category hotalloc
// flags.
func (e *engine) spill(p *proc) {
	tmp := make([]uint64, len(p.scratch)) // want "make allocates"
	copy(tmp, p.scratch)
	box := &ev{} // want "composite literal escapes to the heap"
	_ = box
	ids := []int{1, 2} // want "literal allocates its backing store"
	_ = ids
	e.sinkFn(func(x uint64) uint64 { return x + uint64(len(p.scratch)) }) // want "capturing closure allocates at every evaluation"
	name := "p" + itoa(p)                                                 // want "string concatenation allocates"
	_ = name
	e.sink(len(ids)) // want "boxes a non-pointer int"
	b := NewBuf()    // want "constructor NewBuf called on the hot path"
	_ = b
	q := p.deferred
	q = append(q, 1) // want "append to q may grow a non-retained buffer"
	p.deferred = q
}
