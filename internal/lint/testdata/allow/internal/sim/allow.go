// Fixture for //lint:allow handling: suppression on the same line and
// the preceding line, an unused directive, a malformed directive and an
// unknown-analyzer directive.  Expectations for this tree live in
// TestAllowDirectives, not in want comments.
package sim

func trailingAllow(m map[string]int) string {
	s := ""
	for k := range m { //lint:allow determinism audited: fixture exercises same-line suppression
		s += k
	}
	return s
}

func precedingAllow(m map[string]int) string {
	s := ""
	//lint:allow determinism audited: fixture exercises previous-line suppression
	for k := range m {
		s += k
	}
	return s
}

//lint:allow determinism nothing on the next line triggers this

func unusedDirective() int { return 1 }

//lint:allow

func malformedDirective() int { return 2 }

//lint:allow nosuchanalyzer because reasons

func unknownAnalyzer() int { return 3 }
