package b

import "example.com/fix/internal/a"

func B() int { return a.A() }
