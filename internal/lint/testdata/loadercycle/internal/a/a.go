// Package a imports b, which imports a: the loader must refuse the
// cycle instead of recursing or deadlocking.
package a

import "example.com/fix/internal/b"

func A() int { return b.B() }
