// Fixture instrumentation package: Observe is nil-receiver safe (and
// Touch inherits that by delegation), Add is not, and Probe is an
// interface no engine field may hold.
package telemetry

type Histogram struct{ n uint64 }

// Observe is safe on nil.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.n += v
}

// Touch delegates to a nil-safe method, so it is nil-safe too.
func (h *Histogram) Touch() { h.Observe(1) }

// Add is NOT nil-safe: callers must guard.
func (h *Histogram) Add(v uint64) { h.n += v }

// NewHistogram returns a fresh, non-nil histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Probe is instrumentation behind an interface — banned in engine
// structs.
type Probe interface{ Fire() }
