// Fixture flight-recorder package: rings follow the same discipline as
// telemetry — Add is nil-receiver safe, Seal is not, NewRing
// constructs a non-nil ring.
package flight

type Ring struct{ n uint64 }

// Add is safe on nil.
func (r *Ring) Add(v uint64) {
	if r == nil {
		return
	}
	r.n += v
}

// Seal is NOT nil-safe: callers must guard.
func (r *Ring) Seal() { r.n = ^uint64(0) }

// NewRing returns a fresh, non-nil ring.
func NewRing() *Ring { return &Ring{} }
