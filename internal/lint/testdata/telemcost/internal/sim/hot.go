// Fixture: engine package under the telemetry-cost contract.  Calls on
// field-stored instrumentation pointers must be nil-guarded or hit
// nil-safe methods; interface-typed instrumentation is banned outright.
package sim

import (
	"example.com/fix/internal/flight"
	"example.com/fix/internal/telemetry"
)

type Chip struct {
	hist  *telemetry.Histogram
	probe telemetry.Probe // want "instrumentation interface"
	ring  *flight.Ring
}

func (c *Chip) hot(v uint64) {
	c.hist.Observe(v) // ok: Observe is nil-receiver safe
	c.hist.Touch()    // ok: delegates to a nil-safe method
	c.hist.Add(v)     // want "unguarded call c.hist.Add"
	if c.hist != nil {
		c.hist.Add(v) // ok: guarded by the enclosing if
	}
	c.probe.Fire() // want "interface dispatch to instrumentation type Probe"
}

func (c *Chip) early(v uint64) {
	if c.hist == nil {
		return
	}
	c.hist.Add(v) // ok: early-return guard dominates
}

func (c *Chip) fresh() {
	c.hist = telemetry.NewHistogram()
	c.hist.Add(1) // ok: freshly constructed, provably non-nil
}

func (c *Chip) initGuard(v uint64) {
	if h := c.hist; h != nil {
		h.Add(v) // ok: guarded through the if-init binding
	}
}

func (c *Chip) flightHot(v uint64) {
	c.ring.Add(v) // ok: Add is nil-receiver safe
	c.ring.Seal() // want "unguarded call c.ring.Seal"
	if c.ring != nil {
		c.ring.Seal() // ok: guarded by the enclosing if
	}
}

func (c *Chip) flightFresh() {
	c.ring = flight.NewRing()
	c.ring.Seal() // ok: freshly constructed, provably non-nil
}
