package eng

// maybeFlush takes the bracket on only one control-flow path, so the
// must-analysis rejects the access: a branch-dependent bracket is a
// latent race, not a guarantee.
func (c *Chip) maybeFlush(addr uint64, wide bool) {
	if wide {
		c.enterShared()
	}
	c.l2[addr] = 0 // want "access to shared field c.l2 outside an enterShared/exitShared bracket"
	if wide {
		c.exitShared()
	}
}

// invalidator fronts the chip through an interface — the same seam
// internal/mem uses to call back into (*Chip).InvalidateL1.  The call
// graph must resolve the dispatch to reach the violation below.
type invalidator interface {
	invalidate(addr uint64)
}

type cache struct {
	dir invalidator
}

func (s *cache) evict(addr uint64) {
	s.dir.invalidate(addr) // resolves to (*Chip).invalidate, which is not serialized
}

func (c *Chip) invalidate(addr uint64) {
	for _, o := range c.domains {
		o.stats[2]++ // want "access to domain-owned field o.stats"
	}
}
