// Package eng is a miniature of internal/sim's parallel domain engine:
// per-domain state annotated with //lint:owner, a worker window loop,
// and the enterShared/exitShared arbiter bracket.
package eng

type event struct{ at uint64 }

type inval struct{ addr uint64 }

// domain is one unit of concurrently-advancing state.
type domain struct {
	id   int
	chip *Chip

	//lint:owner domain
	queue []event
	//lint:owner domain
	inbox []inval
	now   uint64    //lint:owner domain
	stats [4]uint64 //lint:owner domain
}

// Chip aggregates the domains plus chip-shared state.
type Chip struct {
	domains []*domain

	//lint:owner shared
	l2 map[uint64]uint64
	//lint:owner domain-link
	curDom *domain

	seq uint64
	l1d *cache
}

func (c *Chip) enterShared() {}
func (c *Chip) exitShared()  {}

func (d *domain) scheduleEv(e event) {
	d.queue = append(d.queue, e) // ok: own receiver
}

// runWindow is the worker loop: everything reachable from here runs
// concurrently with the other domains' workers.
//
//lint:owner worker
func (d *domain) runWindow(limit uint64) {
	for d.now < limit { // ok: own receiver
		d.now++
		d.chip.dispatch()
	}
	d.chip.park()
}

func (c *Chip) dispatch() {
	d := c.curDom // ok: domain-link read through the own receiver
	d.stats[0]++  // ok: tainted local holds the own domain
	d.scheduleEv(event{at: 1})
	c.flushLine(7)
	c.maybeFlush(8, d.now > 3)
	c.l1d.evict(9)
	c.seq += c.stealWork()
	c.seq += c.probe()
}

// flushLine brackets its shared work; the helper it calls needs no
// bracket of its own (the serialized-context fixpoint).
func (c *Chip) flushLine(addr uint64) {
	c.enterShared()
	c.invalidateLine(addr)
	c.exitShared()
}

func (c *Chip) invalidateLine(addr uint64) {
	delete(c.l2, addr) // ok: every reachable caller holds the bracket
	for _, o := range c.domains {
		o.inbox = append(o.inbox, inval{addr: addr}) // ok: serialized context
	}
}

// probe reads shared state without the bracket, but the site has been
// audited by hand: the directive suppresses the finding.
func (c *Chip) probe() uint64 {
	return c.l2[0] //lint:allow domainguard audited: the probed line is immutable after reset
}

// park hands control to the quiescent boundary; boundary's body
// touches every domain but is exempt by annotation.
func (c *Chip) park() {
	c.boundary()
}

// boundary runs only while every worker is parked at the window edge.
//
//lint:owner quiescent
func (c *Chip) boundary() {
	for _, o := range c.domains {
		o.now = 0 // ok: quiescent code is not traversed
		o.stats[3] = 0
	}
}
