package eng

// Annotation hygiene: a bad kind or a dangling attachment is itself a
// finding, so stale ownership declarations cannot accumulate.

//lint:owner sharded // want "unknown kind"
var strayTable [4]uint64

//lint:owner domain // want "attaches to no struct field"
func strayHelper() {}
