package eng

// stealWork is the injected violation of the acceptance criteria: a
// worker reaching straight into sibling domains' state with neither
// the bracket nor ownership.  Exactly one finding, at the marked line.
func (c *Chip) stealWork() uint64 {
	var n uint64
	for _, o := range c.domains {
		n += o.now // want "access to domain-owned field o.now"
	}
	return n
}
