// Fixture: the poolguard analyzer must flag Get-without-Put pools,
// pooled types without a generation field, generations that are never
// advanced, and function-local Get results that leak.
package sim

import "sync"

// Rec is a well-behaved pooled record: generation-tagged and advanced
// on reset.
type Rec struct {
	Gen uint32
	X   int
}

var recPool = sync.Pool{New: func() any { return new(Rec) }}

func getRec() *Rec {
	r := recPool.Get().(*Rec)
	r.reset()
	return r
}

// reset advances the generation so entries recorded against the
// previous lease read as stale.
func (r *Rec) reset() {
	r.Gen++
	r.X = 0
}

func putRec(r *Rec) { recPool.Put(r) }

// leakPool is Get from but never Put to.
var leakPool = sync.Pool{New: func() any { return new(Rec) }} // want "but no Put"

func borrow() *Rec { return leakPool.Get().(*Rec) }

// Plain has no generation field, so recycled records would resurrect
// stale state unnoticed.
type Plain struct{ X int } // want "lacks a generation field"

var plainPool = sync.Pool{New: func() any { return new(Plain) }}

func getPlain() *Plain  { return plainPool.Get().(*Plain) }
func putPlain(p *Plain) { plainPool.Put(p) }

// Stale carries a generation field that nothing ever advances.
type Stale struct{ Gen uint32 } // want "never advanced"

var stalePool = sync.Pool{New: func() any { return new(Stale) }}

func getStale() *Stale  { return stalePool.Get().(*Stale) }
func putStale(s *Stale) { stalePool.Put(s) }

// localLeak takes a record out of the pool, uses it locally and drops
// it on the floor.
func localLeak() int {
	r := recPool.Get().(*Rec) // want "never escapes"
	r.X = 7
	return 3
}

// localRoundTrip is fine: the Get result is Put back.
func localRoundTrip() int {
	r := recPool.Get().(*Rec)
	r.Gen++
	x := r.X
	recPool.Put(r)
	return x
}
