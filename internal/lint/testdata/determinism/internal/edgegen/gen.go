// Fixture: internal/edgegen is on the seeded-rand allowlist — the
// math/rand import itself is accepted, but any use of the
// process-global source must be flagged; only explicitly seeded
// *rand.Rand instances (and the constructors that build them) pass.
package edgegen

import (
	"math/rand" // ok: edgegen may import rand for seeded generation
)

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: explicit seed
	return r.Intn(100)
}

func global() int {
	return rand.Intn(100) // want "process-global source"
}

func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "process-global source"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

type holder struct {
	r *rand.Rand // ok: type name only
}
