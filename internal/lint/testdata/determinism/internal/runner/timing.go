// Fixture: internal/runner is on the wall-clock allowlist — timing the
// jobs is its purpose — so this import must NOT be flagged.
package runner

import "time"

func wall(start time.Time) time.Duration { return time.Since(start) }
