// Fixture: the determinism analyzer must flag wall-clock/rand imports
// in engine packages and order-sensitive map iteration, while accepting
// the three blessed shapes (sorted keys, map writes, integer
// accumulation).
package sim

import (
	"fmt"
	"math/rand" // want "outside the driver allowlist"
	"sort"
	"time" // want "outside the driver allowlist"
)

func stamp() int64 { return time.Now().UnixNano() }

func jitter() int { return rand.Int() }

func emit(m map[string]int) string {
	out := ""
	for k, v := range m { // want "iteration order is randomized"
		out += fmt.Sprintf("%s=%d\n", k, v)
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: collected keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func tally(m map[string]int) int {
	n := 0
	for _, v := range m { // ok: integer accumulation commutes
		n += v
	}
	return n
}

func index(src, dst map[string]int) {
	for k, v := range src { // ok: map writes commute
		dst[k] = v
	}
}

func geoSum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want "iteration order is randomized"
		s += v
	}
	return s
}

func pickAny(m map[string]int) int {
	for _, v := range m { // want "iteration order is randomized"
		return v
	}
	return 0
}
