// Fixture: command-line drivers may read the clock (progress lines,
// profiles) — no finding here.
package main

import (
	"fmt"
	"time"
)

func main() { fmt.Println(time.Now()) }
