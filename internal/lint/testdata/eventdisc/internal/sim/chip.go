// Fixture: pops are confined to queue-owner methods, pushes to the
// owner's scheduleEv, and nothing may compute a target cycle by
// subtracting from now.
package sim

type Chip struct {
	ref *calQueue
	now uint64
	seq uint64
}

func (c *Chip) scheduleEv(at uint64, e event) {
	if at < c.now {
		at = c.now
	}
	c.seq++
	e.at = at
	e.seq = c.seq
	c.ref.push(e) // ok: the owner's stamping entry point
}

func (c *Chip) Run() {
	for len(c.ref.evs) > 0 {
		e := c.ref.popMin() // ok: a queue owner draining its queue
		c.now = e.at
	}
}

func (c *Chip) sneak(e event) {
	c.ref.push(e) // want "bypasses the owner's scheduleEv"
}

func (c *Chip) retro(e event) {
	c.scheduleEv(c.now-1, e) // want "schedules before Now()"
	c.scheduleEv(c.now+2, e) // ok: forward delay
}

func (c *Chip) forward(t uint64, e event) {
	c.scheduleEv(t-1, e) // ok: t is not the current cycle
}
