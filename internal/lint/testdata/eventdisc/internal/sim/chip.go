// Fixture: only scheduleEv/Run may operate on the queues, and nothing
// may compute a target cycle by subtracting from now.
package sim

type Chip struct {
	cal *calQueue
	now uint64
	seq uint64
}

func (c *Chip) scheduleEv(at uint64, e event) {
	if at < c.now {
		at = c.now
	}
	c.seq++
	e.at = at
	e.seq = c.seq
	c.cal.push(e) // ok: scheduleEv is the blessed entry point
}

func (c *Chip) Run() {
	for len(c.cal.evs) > 0 {
		e := c.cal.popMin() // ok: Run is the blessed drain loop
		c.now = e.at
	}
}

func (c *Chip) sneak(e event) {
	c.cal.push(e) // want "direct calQueue.push bypasses Chip.scheduleEv"
}

func (c *Chip) steal() event {
	return c.cal.popMin() // want "direct calQueue.popMin bypasses Chip.scheduleEv"
}

func (c *Chip) retro(e event) {
	c.scheduleEv(c.now-1, e) // want "schedules before Now()"
	c.scheduleEv(c.now+2, e) // ok: forward delay
}

func (c *Chip) forward(t uint64, e event) {
	c.scheduleEv(t-1, e) // ok: t is not the current cycle
}
