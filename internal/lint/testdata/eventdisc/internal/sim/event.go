// Fixture queue internals: event.go is the one file allowed to touch
// the queues directly.
package sim

type event struct {
	at  uint64
	seq uint64
}

type calQueue struct{ evs []event }

func (q *calQueue) push(e event) { q.evs = append(q.evs, e) }

func (q *calQueue) popMin() event {
	e := q.evs[0]
	q.evs = q.evs[1:]
	return e
}

func (q *calQueue) migrate() {
	for range q.evs {
		q.push(event{}) // ok: queue internals live in event.go
	}
}
