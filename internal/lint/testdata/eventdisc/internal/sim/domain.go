// Fixture: the partitioned engine's per-domain queue.  Ownership is
// structural — any struct with a queue-typed field is an owner — so the
// domain type gets the same discipline as the chip without the analyzer
// naming either type.
package sim

type domain struct {
	cal calQueue
	now uint64
	seq uint64
}

func (d *domain) scheduleEv(at uint64, e event) {
	if at < d.now {
		at = d.now
	}
	d.seq++
	e.at = at
	e.seq = d.seq
	d.cal.push(e) // ok: the owner's stamping entry point
}

func (d *domain) runWindow(limit uint64) {
	for len(d.cal.evs) > 0 {
		e := d.cal.popMin() // ok: an owner method draining its queue
		if e.at >= limit {
			return
		}
		d.now = e.at
	}
}

func (d *domain) sneak(e event) {
	d.cal.push(e) // want "bypasses the owner's scheduleEv"
}

// arbiter owns no queue: it may not drain one, even reached through a
// domain it holds.
type arbiter struct{ cur *domain }

func (a *arbiter) steal() event {
	return a.cur.cal.popMin() // want "outside a queue-owner method"
}

func drain(q *calQueue) event {
	return q.popMin() // want "outside a queue-owner method"
}
