// Package right is the other side of the diamond.
package right

import "example.com/fix/internal/base"

func Thrice() int { return 3 * base.Leaf() }
