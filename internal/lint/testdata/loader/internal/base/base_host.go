//go:build gc

package base

const hostWidth = 64
