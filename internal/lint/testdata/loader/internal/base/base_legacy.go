//go:build someotherplatform
// +build someotherplatform

package base

// Leaf would collide with base.go's Leaf if the legacy +build line
// were ignored.
func Leaf() string { return "dup" }
