//go:build someotherplatform

package base

// hostWidth would redeclare the host file's constant if the loader
// ever admitted this file.
const hostWidth = 32
