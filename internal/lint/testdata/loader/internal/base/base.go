// Package base is the shared leaf of the loader fixture's diamond
// dependency (top -> left/right -> base).  Width is completed by the
// build-tagged host file, so the package only type-checks if the
// loader admits the host-tagged file and drops the foreign ones.
package base

// Width comes from the host-tagged file.
const Width = hostWidth

func Leaf() int { return Width }
