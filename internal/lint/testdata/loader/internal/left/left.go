// Package left is one side of the diamond.
package left

import "example.com/fix/internal/base"

func Twice() int { return 2 * base.Leaf() }
