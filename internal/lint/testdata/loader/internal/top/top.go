// Package top closes the diamond and instantiates the generics, so
// the loader must order base before left/right and everything before
// top.
package top

import (
	"example.com/fix/internal/gen"
	"example.com/fix/internal/left"
	"example.com/fix/internal/right"
)

func Sum() int {
	var r gen.Ring[int]
	r.Push(left.Twice())
	r.Push(right.Thrice())
	doubled := gen.Map([]int{r.Len()}, func(v int) int { return 2 * v })
	return doubled[0]
}
