// Package gen exercises generic declarations through the loader: the
// type checker must instantiate them and receiver resolution must
// unwrap the type-parameter index.
package gen

type Ring[T any] struct {
	buf []T
}

func (r *Ring[T]) Push(v T) {
	r.buf = append(r.buf, v)
}

func (r *Ring[T]) Len() int { return len(r.buf) }

func Map[T, U any](in []T, f func(T) U) []U {
	out := make([]U, 0, len(in))
	for _, v := range in {
		out = append(out, f(v))
	}
	return out
}
