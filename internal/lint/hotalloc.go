package lint

// The hotalloc analyzer.  The engine's bench gate holds the hot path
// to a fixed allocation budget per block ("15 allocs/block",
// DESIGN.md); this analyzer turns the number into a named static
// invariant: starting from the //lint:hot root event-loop entries, it
// walks the call graph and flags every allocation site that is not
// proven recycled.
//
// Recycling evidence, in order of preference:
//
//   - the poolguard facts: a type served by a package sync.Pool;
//   - the retained-buffer idiom: a struct field (or pointer-to-slice
//     named type) that is somewhere re-sliced (`x = x[:0]`,
//     `*h = a[:n]`) or assigned from an in-place filter alias — the
//     module's free-list and scratch-buffer pattern, where append/make
//     only grow capacity that is kept;
//   - reuse aliases: a local assigned from a slice expression
//     (`kept := b.entries[:0]`) or from a retained field
//     (`bkt := q.buckets[i]`) writes into kept backing store, so
//     appends to it and cap-guarded makes of it are growth, not churn;
//   - guarded init: an allocation inside an `x == nil` or `cap(x) < n`
//     guard is the lazy-init / amortized-growth idiom — it runs once
//     (or O(log n) times), not per event.
//
// Flagged categories: escaping composite literals (&T{}, slice and map
// literals), make/new, append to a non-retained destination, capturing
// closures that escape their function (a FuncLit bound to a local
// helper variable is the non-escaping local-control-flow idiom and a
// non-capturing literal is a static funcval; neither allocates), string
// concatenation and allocating stdlib (fmt/errors/strconv/strings)
// calls, interface boxing of non-pointer values at module-local call
// sites, and calls to constructors (New*/new*) — a constructor is
// one-time code by convention, so the hot-path *call* is the finding
// and its body is not traversed.  //lint:hot cold functions (fault
// paths, one-time decode) are not traversed either, and calls to them
// are exempt from the boxing check: evaluating a cold call's variadic
// arguments is itself cold-path work.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc flags unpooled allocation in code reachable from the
// per-cycle event-loop roots.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocation sites reachable from //lint:hot root event loops must be pooled or retained",
	Run:  runHotAlloc,
}

func runHotAlloc(m *Module, pkg *Package, report ReportFunc) {
	diags := m.Fact("hotalloc", func() any { return hotAllocModule(m) }).([]moduleDiag)
	for _, d := range diags {
		if d.pkg == pkg {
			report(d.pos, "%s", d.msg)
		}
	}
}

func hotAllocModule(m *Module) []moduleDiag {
	facts := collectHotAnnotations(m)
	diags := facts.bad
	if len(facts.roots) == 0 {
		return diags
	}
	g := m.CallGraph()
	stop := func(n *FuncNode) bool {
		return facts.cold[n] || isConstructorName(n.Obj.Name())
	}
	reach := g.Reachable(facts.roots, stop)
	retained := retainedFacts(m)

	for _, n := range g.Nodes() {
		if !reach[n] {
			continue
		}
		diags = append(diags, checkFuncAllocs(m, n, facts, retained)...)
	}
	return diags
}

// isConstructorName matches the module's constructor convention.
func isConstructorName(name string) bool {
	return (strings.HasPrefix(name, "New") && len(name) > 3) ||
		(strings.HasPrefix(name, "new") && len(name) > 3)
}

// retained holds the recycling evidence shared by the whole module.
type retainedSet struct {
	fields map[*types.Var]bool      // struct fields somewhere re-sliced
	types_ map[*types.TypeName]bool // named slice types with a *recv = x[:n] method, or pooled via sync.Pool
}

// retainedFacts scans the module once for the retained-buffer idiom
// and the poolguard sync.Pool element types.  A second pass propagates
// the in-place filter idiom: `kept := b.entries[:0]; ...;
// b.entries = kept` retains entries even though the re-slice is only
// visible through the local alias.
func retainedFacts(m *Module) *retainedSet {
	r := &retainedSet{fields: map[*types.Var]bool{}, types_: map[*types.TypeName]bool{}}
	for _, pkg := range m.Pkgs {
		for _, p := range findPools(pkg) {
			if p.pooled != nil {
				r.types_[p.pooled] = true
			}
		}
		for _, f := range pkg.Files {
			sliceLocals := map[types.Object]bool{}
			for pass := 0; pass < 2; pass++ {
				ast.Inspect(f, func(n ast.Node) bool {
					as, ok := n.(*ast.AssignStmt)
					if !ok {
						return true
					}
					for i, lhs := range as.Lhs {
						if i >= len(as.Rhs) {
							break
						}
						rhs := ast.Unparen(as.Rhs[i])
						fromSlice := false
						if _, ok := rhs.(*ast.SliceExpr); ok {
							fromSlice = true
						} else if id, ok := rhs.(*ast.Ident); ok && sliceLocals[objOf(pkg.Info, id)] {
							fromSlice = true // pass 2: field assigned from a filter alias
						}
						if !fromSlice {
							continue
						}
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := objOf(pkg.Info, id); obj != nil {
								sliceLocals[obj] = true
							}
						}
						if v := baseFieldVar(pkg.Info, lhs); v != nil {
							r.fields[v] = true
						}
						if tn := derefSliceTypeName(pkg.Info, lhs); tn != nil {
							r.types_[tn] = true
						}
					}
					return true
				})
			}
		}
	}
	return r
}

// objOf resolves an identifier to its object (use or definition).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// baseFieldVar unwraps selector/index chains (`q.buckets[i]`, `b.wr`)
// to the struct-field object at their base.
func baseFieldVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// derefSliceTypeName recognizes `*h = ...` where h is a pointer to a
// named slice type (the heap-receiver reuse idiom).
func derefSliceTypeName(info *types.Info, e ast.Expr) *types.TypeName {
	star, ok := ast.Unparen(e).(*ast.StarExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(star.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	if named, ok := deref(obj.Type()).(*types.Named); ok {
		if _, isSlice := named.Underlying().(*types.Slice); isSlice {
			return named.Obj()
		}
	}
	return nil
}

// isRetainedDest reports whether growing e keeps its capacity: a
// retained field, or a deref of a retained named slice type.
func isRetainedDest(info *types.Info, r *retainedSet, e ast.Expr) bool {
	if v := baseFieldVar(info, e); v != nil && r.fields[v] {
		return true
	}
	if tn := derefSliceTypeName(info, e); tn != nil && r.types_[tn] {
		return true
	}
	return false
}

// checkFuncAllocs walks one reachable function and reports every
// unrecycled allocation site.
func checkFuncAllocs(m *Module, n *FuncNode, facts *hotFacts, retained *retainedSet) []moduleDiag {
	info := n.Pkg.Info
	var diags []moduleDiag
	flag := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, moduleDiag{n.Pkg, pos, fmt.Sprintf(format, args...) +
			fmt.Sprintf(" (hot path: reachable from an event-loop root via %s)", n.Name())})
	}

	allow := collectAllowances(info, n.Decl.Body, retained)

	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.FuncLit:
			// A non-capturing literal is a static funcval; a capturing one
			// bound to a local helper variable stays on the stack.  Either
			// way its body runs on the hot path when invoked, so descend.
			if capturesLocal(info, n.Decl, e) && !allow.localBound[e] {
				flag(e.Pos(), "capturing closure allocates at every evaluation")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					if !allow.guardedPos(e.Pos()) {
						flag(e.Pos(), "&%s composite literal escapes to the heap", typeLabel(info, lit))
					}
					// Still walk the literal's elements for nested allocs,
					// but do not re-flag the literal itself.
					for _, el := range lit.Elts {
						ast.Inspect(el, walk)
					}
					return false
				}
			}
		case *ast.CompositeLit:
			t := info.Types[e].Type
			if t != nil && !allow.guardedPos(e.Pos()) {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					flag(e.Pos(), "%s literal allocates its backing store", typeLabel(info, e))
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringExpr(info, e) && !isConstExpr(info, e) {
				flag(e.Pos(), "string concatenation allocates")
				return false
			}
		case *ast.CallExpr:
			return walkCall(info, e, n, facts, retained, allow, flag, walk)
		}
		return true
	}
	ast.Inspect(n.Decl.Body, walk)
	return diags
}

// allowances is the per-function evidence pre-pass: reuse-alias
// locals, locally-bound closures, and guarded lazy-init regions.
type allowances struct {
	aliases     map[types.Object]bool // locals aliasing retained backing store
	localBound  map[*ast.FuncLit]bool // closures bound to a local helper variable
	allowedMake map[*ast.CallExpr]bool
	guarded     [][2]token.Pos // bodies of `== nil` / cap-comparison guards
}

func (a *allowances) guardedPos(pos token.Pos) bool {
	for _, r := range a.guarded {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

func collectAllowances(info *types.Info, body *ast.BlockStmt, retained *retainedSet) *allowances {
	a := &allowances{
		aliases:     map[types.Object]bool{},
		localBound:  map[*ast.FuncLit]bool{},
		allowedMake: map[*ast.CallExpr]bool{},
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) {
					break
				}
				rhs := ast.Unparen(s.Rhs[i])
				id, isIdent := lhs.(*ast.Ident)
				if lit, ok := rhs.(*ast.FuncLit); ok && isIdent {
					a.localBound[lit] = true
				}
				if isIdent {
					_, fromSlice := rhs.(*ast.SliceExpr)
					if !fromSlice {
						if v := baseFieldVar(info, rhs); v != nil && retained.fields[v] {
							fromSlice = true
						}
					}
					if fromSlice {
						if obj := objOf(info, id); obj != nil {
							a.aliases[obj] = true
						}
					}
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(info, call, "make") {
					if isRetainedDest(info, retained, lhs) ||
						(isIdent && a.aliases[objOf(info, id)]) {
						a.allowedMake[call] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, v := range s.Values {
				if lit, ok := ast.Unparen(v).(*ast.FuncLit); ok {
					a.localBound[lit] = true
				}
			}
		case *ast.IfStmt:
			if condGuardsInit(info, s.Cond) {
				a.guarded = append(a.guarded, [2]token.Pos{s.Body.Pos(), s.Body.End()})
			}
		}
		return true
	})
	return a
}

// condGuardsInit recognizes the lazy-init and amortized-growth guards:
// a condition containing an `x == nil` comparison or a cap(x) call.
func condGuardsInit(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if e.Op == token.EQL && (isNilExpr(info, e.X) || isNilExpr(info, e.Y)) {
				found = true
			}
		case *ast.CallExpr:
			if isBuiltin(info, e, "cap") {
				found = true
			}
		}
		return !found
	})
	return found
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// capturesLocal reports whether lit references a variable of its
// enclosing function (receiver, parameter or local declared before the
// literal) — the references that force a heap-allocated closure when
// the literal escapes.
func capturesLocal(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() &&
			v.Pos() >= decl.Pos() && v.Pos() < lit.Pos() {
			found = true
		}
		return true
	})
	return found
}

// walkCall handles the call-shaped allocation categories; returns
// whether to descend into the call's children.
func walkCall(info *types.Info, call *ast.CallExpr, n *FuncNode, facts *hotFacts, retained *retainedSet,
	allow *allowances, flag func(token.Pos, string, ...any), walk func(ast.Node) bool) bool {

	switch {
	case isBuiltin(info, call, "make"):
		if !allow.allowedMake[call] && !allow.guardedPos(call.Pos()) {
			flag(call.Pos(), "make allocates; grow a retained buffer (field re-sliced with x = x[:0]) instead")
		}
		return true
	case isBuiltin(info, call, "new"):
		if !allow.guardedPos(call.Pos()) {
			flag(call.Pos(), "new allocates")
		}
		return true
	case isBuiltin(info, call, "append"):
		if len(call.Args) > 0 && !isRetainedDest(info, retained, call.Args[0]) && !isAliasIdent(info, allow, call.Args[0]) {
			flag(call.Pos(), "append to %s may grow a non-retained buffer", render(call.Args[0]))
		}
		return true
	}

	// Allocating stdlib packages (string building, boxing via ...any).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "fmt", "errors", "strconv", "strings":
					flag(call.Pos(), "%s.%s allocates", pn.Imported().Path(), sel.Sel.Name)
					return true
				}
			}
		}
	}

	// Module-local callee facts: constructor calls, cold-call boxing
	// exemption, interface boxing of concrete arguments.
	g := n.Pkg // info owner; callee resolution below uses Uses only
	_ = g
	var callee *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil || callee.Pkg() == nil {
		return true
	}
	if node := coldTarget(facts, callee); node {
		return true // cold path entry: argument evaluation is cold too
	}
	if isConstructorName(callee.Name()) && moduleLocal(info, callee) {
		flag(call.Pos(), "constructor %s called on the hot path", callee.Name())
		return true
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return true
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if params.Len() == 0 {
				continue
			}
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil || tv.IsNil() {
			continue
		}
		at := tv.Type
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if b, isBasic := at.Underlying().(*types.Basic); isBasic && b.Kind() == types.Invalid {
			continue
		}
		flag(arg.Pos(), "argument boxes a non-pointer %s into interface parameter of %s", at.String(), callee.Name())
	}
	return true
}

// isAliasIdent reports whether e is a local aliasing retained backing
// store (a reuse alias from the pre-pass).
func isAliasIdent(info *types.Info, allow *allowances, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && allow.aliases[objOf(info, id)]
}

// coldTarget reports whether callee is //lint:hot cold.
func coldTarget(facts *hotFacts, callee *types.Func) bool {
	return facts.coldObjs[callee]
}

// moduleLocal reports whether callee is declared in this module (a
// fake stdlib placeholder package has no scope entries and its
// functions never resolve, so any resolved *types.Func with a real
// package is module-local here).
func moduleLocal(info *types.Info, callee *types.Func) bool {
	return callee.Pkg() != nil
}

// typeLabel renders a composite literal's type for messages.
func typeLabel(info *types.Info, lit *ast.CompositeLit) string {
	if lit.Type != nil {
		return render(lit.Type)
	}
	if t := info.Types[lit].Type; t != nil {
		return t.String()
	}
	return "composite"
}

// isBuiltin matches a call to a builtin by name.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := info.Uses[id]
	_, isBuiltinObj := obj.(*types.Builtin)
	return isBuiltinObj
}

// isStringExpr reports whether e's static type is a string.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether e folds to a constant (no runtime
// allocation).
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
