// Package compose defines the composition machinery of a CLP: the
// per-core microarchitectural parameters (Table 1 of the paper), the three
// interleaving hash classes used to spread state across participating
// cores, and the geometry of composed processors on the 4x8 core array.
//
// The three hash classes (paper §4):
//
//   - block starting address — selects the owner core, which holds the
//     I-cache tags, next-block predictor state and block bookkeeping;
//   - instruction ID within a block — selects the core whose issue window
//     and I-cache bank hold each instruction;
//   - data address — selects the L1 D-cache/LSQ bank.
package compose

import (
	"fmt"
	"sort"

	"github.com/clp-sim/tflex/internal/isa"
)

// Chip geometry: 32 cores in a 4-wide, 8-tall array (Figure 1).
const (
	ArrayW   = 4
	ArrayH   = 8
	NumCores = ArrayW * ArrayH
)

// CoreParams are the single-core TFlex parameters of Table 1.
type CoreParams struct {
	// Instruction supply.
	L1IBytes     int // partitioned 8KB I-cache
	L1IHitCycles int // 1-cycle hit
	PredictorLat int // 3-cycle next-block prediction

	// Predictor table sizes (entries).
	LocalL1Entries int // 64
	LocalL2Entries int // 128
	GlobalEntries  int // 512
	ChoiceEntries  int // 512
	RASEntries     int // 16 per core, sequentially composed
	CTBEntries     int // 16
	BTBEntries     int // 128
	BtypeEntries   int // 256

	// Execution.
	WindowEntries int // 128-entry RAM-structured issue window
	IssueTotal    int // dual issue
	IssueFP       int // at most one FP per cycle
	DispatchBW    int // instructions dispatched per core per cycle

	// Data supply.
	L1DBytes     int // partitioned 8KB D-cache
	L1DHitCycles int // 2-cycle hit
	L1DAssoc     int // 2-way
	LineBytes    int
	LSQEntries   int // 44-entry LSQ bank

	// Outer hierarchy.
	L2Bytes    int // 4MB shared S-NUCA
	L2Assoc    int
	L2HitMin   int // 5..27 cycles depending on bank distance
	L2HitMax   int
	DRAMCycles int // 150-cycle unloaded main memory
	OperandBW  int // operand network flits/link/cycle (TFlex: 2)
	ControlBW  int // control network flits/link/cycle

	// Execution latencies (cycles) by class.
	IntLat, MulLat, DivLat, FPLat, FDivLat int
}

// DefaultCoreParams returns the Table 1 configuration.
func DefaultCoreParams() CoreParams {
	return CoreParams{
		L1IBytes:     8 << 10,
		L1IHitCycles: 1,
		PredictorLat: 3,

		LocalL1Entries: 64,
		LocalL2Entries: 128,
		GlobalEntries:  512,
		ChoiceEntries:  512,
		RASEntries:     16,
		CTBEntries:     16,
		BTBEntries:     128,
		BtypeEntries:   256,

		WindowEntries: 128,
		IssueTotal:    2,
		IssueFP:       1,
		DispatchBW:    4,

		L1DBytes:     8 << 10,
		L1DHitCycles: 2,
		L1DAssoc:     2,
		LineBytes:    64,
		LSQEntries:   44,

		L2Bytes:    4 << 20,
		L2Assoc:    8,
		L2HitMin:   5,
		L2HitMax:   27,
		DRAMCycles: 150,
		OperandBW:  2,
		ControlBW:  2,

		IntLat: 1, MulLat: 3, DivLat: 24, FPLat: 4, FDivLat: 16,
	}
}

// OwnerOf hashes a block starting address onto one of n participating
// cores (an index into the composed processor's core list).
func OwnerOf(blockAddr uint64, n int) int {
	return int((blockAddr / uint64(isa.BlockBytes)) % uint64(n))
}

// InstCore maps an instruction ID to the participating-core index holding
// it: the low-order bits of the target field, reinterpreted per
// composition (Figure 4a).
func InstCore(instID, n int) int { return instID % n }

// InstSlot maps an instruction ID to the window slot within its core.
func InstSlot(instID, n int) int { return instID / n }

// RegBank maps an architectural register to the participating-core index
// holding its register-file bank.
func RegBank(reg uint8, n int) int { return int(reg) % n }

// DataBank maps a data address to the participating-core index of its L1
// D-cache/LSQ bank: the high and low portions of the line address are
// XORed and folded modulo the number of cores, so all bytes of a cache
// line map to one bank (paper §4.5).
func DataBank(addr uint64, lineBytes, n int) int {
	line := addr / uint64(lineBytes)
	h := line ^ (line >> 7) ^ (line >> 14) ^ (line >> 21)
	return int(h % uint64(n))
}

// Processor describes one composed logical processor: an ordered list of
// physical core IDs on the chip array.
type Processor struct {
	Cores []int
}

// N returns the number of participating cores.
func (p Processor) N() int { return len(p.Cores) }

// Validate checks the core list is non-empty, in range and duplicate-free.
func (p Processor) Validate() error {
	if len(p.Cores) == 0 {
		return fmt.Errorf("compose: empty processor")
	}
	seen := map[int]bool{}
	for _, c := range p.Cores {
		if c < 0 || c >= NumCores {
			return fmt.Errorf("compose: core %d out of range", c)
		}
		if seen[c] {
			return fmt.Errorf("compose: core %d listed twice", c)
		}
		seen[c] = true
	}
	return nil
}

// shapes lists the sub-rectangle (w, h) used for each power-of-two
// composition on the 4x8 array, mirroring Figure 1.
var shapes = map[int][2]int{
	1:  {1, 1},
	2:  {2, 1},
	4:  {2, 2},
	8:  {4, 2},
	16: {4, 4},
	32: {4, 8},
}

// Rect returns the processor composed of the k cores in the rectangle
// whose top-left corner is at (x0, y0).  k must be a supported
// power-of-two composition size.
func Rect(x0, y0, k int) (Processor, error) {
	sh, ok := shapes[k]
	if !ok {
		return Processor{}, fmt.Errorf("compose: unsupported composition size %d", k)
	}
	w, h := sh[0], sh[1]
	if x0 < 0 || y0 < 0 || x0+w > ArrayW || y0+h > ArrayH {
		return Processor{}, fmt.Errorf("compose: %dx%d rectangle at (%d,%d) does not fit", w, h, x0, y0)
	}
	var cores []int
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			cores = append(cores, y*ArrayW+x)
		}
	}
	return Processor{Cores: cores}, nil
}

// MustRect is Rect but panics on error.
func MustRect(x0, y0, k int) Processor {
	p, err := Rect(x0, y0, k)
	if err != nil {
		panic(err)
	}
	return p
}

// Strip returns a processor composed of k consecutive cores in row-major
// order starting at core `start`.  Unlike Rect, any size from 1 to 32 is
// allowed — the paper's "any point in between".  Power-of-two sizes keep
// the placement pass's chain affinity; other sizes still run correctly.
func Strip(start, k int) (Processor, error) {
	if k < 1 || start < 0 || start+k > NumCores {
		return Processor{}, fmt.Errorf("compose: strip [%d,%d) out of range", start, start+k)
	}
	cores := make([]int, k)
	for i := range cores {
		cores[i] = start + i
	}
	return Processor{Cores: cores}, nil
}

// Partition tiles the chip with nProcs processors of size k each,
// left-to-right, top-to-bottom (the fixed-CMP configurations of §7).
func Partition(k, nProcs int) ([]Processor, error) {
	sh, ok := shapes[k]
	if !ok {
		return nil, fmt.Errorf("compose: unsupported composition size %d", k)
	}
	w, h := sh[0], sh[1]
	var procs []Processor
	for y := 0; y+h <= ArrayH && len(procs) < nProcs; y += h {
		for x := 0; x+w <= ArrayW && len(procs) < nProcs; x += w {
			p, err := Rect(x, y, k)
			if err != nil {
				return nil, err
			}
			procs = append(procs, p)
		}
	}
	if len(procs) < nProcs {
		return nil, fmt.Errorf("compose: cannot fit %d processors of %d cores", nProcs, k)
	}
	return procs, nil
}

// PackAsymmetric places processors of the given (possibly unequal) sizes
// onto the array greedily, largest first.  Sizes must be supported
// composition sizes summing to at most NumCores.  Returns processors in
// the order of the input sizes.
func PackAsymmetric(sizes []int) ([]Processor, error) {
	type req struct{ size, idx int }
	reqs := make([]req, len(sizes))
	total := 0
	for i, s := range sizes {
		reqs[i] = req{s, i}
		total += s
	}
	if total > NumCores {
		return nil, fmt.Errorf("compose: %d cores requested, have %d", total, NumCores)
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].size > reqs[j].size })
	used := [NumCores]bool{}
	out := make([]Processor, len(sizes))
	for _, r := range reqs {
		sh, ok := shapes[r.size]
		if !ok {
			return nil, fmt.Errorf("compose: unsupported composition size %d", r.size)
		}
		w, h := sh[0], sh[1]
		placed := false
	search:
		for y := 0; y+h <= ArrayH; y++ {
			for x := 0; x+w <= ArrayW; x++ {
				free := true
				for yy := y; yy < y+h && free; yy++ {
					for xx := x; xx < x+w && free; xx++ {
						free = !used[yy*ArrayW+xx]
					}
				}
				if !free {
					continue
				}
				p, _ := Rect(x, y, r.size)
				for _, c := range p.Cores {
					used[c] = true
				}
				out[r.idx] = p
				placed = true
				break search
			}
		}
		if !placed {
			return nil, fmt.Errorf("compose: could not place %d-core processor (fragmentation)", r.size)
		}
	}
	return out, nil
}

// Sizes lists the supported composition sizes in ascending order.
func Sizes() []int { return []int{1, 2, 4, 8, 16, 32} }
