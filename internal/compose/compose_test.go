package compose

import (
	"testing"
	"testing/quick"

	"github.com/clp-sim/tflex/internal/isa"
)

func TestDefaultCoreParamsMatchTable1(t *testing.T) {
	p := DefaultCoreParams()
	if p.L1IBytes != 8<<10 || p.L1DBytes != 8<<10 {
		t.Error("L1 sizes should be 8KB")
	}
	if p.WindowEntries != 128 {
		t.Error("window should be 128 entries")
	}
	if p.LSQEntries != 44 {
		t.Error("LSQ bank should have 44 entries")
	}
	if p.L2Bytes != 4<<20 || p.L2HitMin != 5 || p.L2HitMax != 27 {
		t.Error("L2 should be 4MB with 5-27 cycle hits")
	}
	if p.DRAMCycles != 150 {
		t.Error("DRAM should be 150 cycles")
	}
	if p.IssueTotal != 2 || p.IssueFP != 1 {
		t.Error("cores are dual-issue with one FP")
	}
	if p.PredictorLat != 3 {
		t.Error("predictor latency should be 3")
	}
	if p.RASEntries != 16 || p.BTBEntries != 128 || p.CTBEntries != 16 || p.BtypeEntries != 256 {
		t.Error("predictor table sizes wrong")
	}
	if p.LocalL1Entries != 64 || p.LocalL2Entries != 128 || p.GlobalEntries != 512 || p.ChoiceEntries != 512 {
		t.Error("exit predictor sizes wrong")
	}
}

func TestHashesInRange(t *testing.T) {
	f := func(addr uint64, instID uint8, reg uint8, nSel uint8) bool {
		ns := []int{1, 2, 4, 8, 16, 32}
		n := ns[nSel%6]
		if o := OwnerOf(addr, n); o < 0 || o >= n {
			return false
		}
		if c := InstCore(int(instID)%128, n); c < 0 || c >= n {
			return false
		}
		if b := DataBank(addr, 64, n); b < 0 || b >= n {
			return false
		}
		if r := RegBank(reg%128, n); r < 0 || r >= n {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstInterleavingPartition(t *testing.T) {
	// Every instruction ID maps to exactly one (core, slot), and slots
	// within a core are dense 0..(128/n - 1) for power-of-two n.
	for _, n := range Sizes() {
		perCore := map[int]map[int]bool{}
		for id := 0; id < isa.MaxBlockInsts; id++ {
			c := InstCore(id, n)
			s := InstSlot(id, n)
			if perCore[c] == nil {
				perCore[c] = map[int]bool{}
			}
			if perCore[c][s] {
				t.Fatalf("n=%d: duplicate slot (%d,%d)", n, c, s)
			}
			perCore[c][s] = true
		}
		want := isa.MaxBlockInsts / n
		for c, slots := range perCore {
			if len(slots) != want {
				t.Fatalf("n=%d core %d has %d slots, want %d", n, c, len(slots), want)
			}
		}
	}
}

func TestDataBankLineStable(t *testing.T) {
	// All addresses within a cache line map to the same bank.
	for _, n := range Sizes() {
		for line := uint64(0); line < 64; line++ {
			base := line * 64
			b0 := DataBank(base, 64, n)
			for off := uint64(1); off < 64; off += 7 {
				if DataBank(base+off, 64, n) != b0 {
					t.Fatalf("n=%d: line %d not bank-stable", n, line)
				}
			}
		}
	}
}

func TestDataBankSpreads(t *testing.T) {
	// Sequential lines should hit all banks roughly evenly.
	n := 8
	counts := make([]int, n)
	for line := 0; line < 8000; line++ {
		counts[DataBank(uint64(line)*64, 64, n)]++
	}
	for b, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("bank %d count %d far from uniform", b, c)
		}
	}
}

func TestOwnerSpreads(t *testing.T) {
	n := 8
	counts := make([]int, n)
	for i := 0; i < 800; i++ {
		addr := uint64(0x10000) + uint64(i)*uint64(isa.BlockBytes)
		counts[OwnerOf(addr, n)]++
	}
	for b, c := range counts {
		if c != 100 {
			t.Fatalf("owner %d count %d, want exactly 100 for sequential blocks", b, c)
		}
	}
}

func TestRectShapes(t *testing.T) {
	for _, k := range Sizes() {
		p, err := Rect(0, 0, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.N() != k {
			t.Fatalf("k=%d: got %d cores", k, p.N())
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	if _, err := Rect(0, 0, 3); err == nil {
		t.Fatal("size 3 should be unsupported")
	}
	if _, err := Rect(3, 0, 2); err == nil {
		t.Fatal("2x1 at x=3 should not fit a 4-wide array")
	}
}

func TestPartitionCMPConfigs(t *testing.T) {
	for _, c := range []struct{ k, n int }{{1, 32}, {2, 16}, {4, 8}, {8, 4}, {16, 2}, {32, 1}} {
		procs, err := Partition(c.k, c.n)
		if err != nil {
			t.Fatalf("k=%d: %v", c.k, err)
		}
		if len(procs) != c.n {
			t.Fatalf("k=%d: %d procs", c.k, len(procs))
		}
		seen := map[int]bool{}
		for _, p := range procs {
			for _, core := range p.Cores {
				if seen[core] {
					t.Fatalf("k=%d: core %d assigned twice", c.k, core)
				}
				seen[core] = true
			}
		}
		if len(seen) != c.k*c.n {
			t.Fatalf("k=%d: %d cores covered", c.k, len(seen))
		}
	}
	if _, err := Partition(16, 3); err == nil {
		t.Fatal("3x16 cores should not fit")
	}
}

func TestPackAsymmetric(t *testing.T) {
	procs, err := PackAsymmetric([]int{16, 8, 4, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i, p := range procs {
		if err := p.Validate(); err != nil {
			t.Fatalf("proc %d: %v", i, err)
		}
		for _, c := range p.Cores {
			if seen[c] {
				t.Fatalf("core %d double-assigned", c)
			}
			seen[c] = true
		}
	}
	if _, err := PackAsymmetric([]int{32, 1}); err == nil {
		t.Fatal("33 cores should not fit")
	}
}

func TestProcessorValidate(t *testing.T) {
	if err := (Processor{}).Validate(); err == nil {
		t.Error("empty processor should fail")
	}
	if err := (Processor{Cores: []int{0, 0}}).Validate(); err == nil {
		t.Error("duplicate cores should fail")
	}
	if err := (Processor{Cores: []int{99}}).Validate(); err == nil {
		t.Error("out-of-range core should fail")
	}
}

func TestStrip(t *testing.T) {
	for _, k := range []int{1, 3, 5, 7, 11, 32} {
		p, err := Strip(0, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.N() != k {
			t.Fatalf("k=%d: got %d cores", k, p.N())
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	if _, err := Strip(30, 5); err == nil {
		t.Fatal("strip past array end should fail")
	}
	if _, err := Strip(0, 0); err == nil {
		t.Fatal("empty strip should fail")
	}
}
