package trips

import (
	"testing"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
	"github.com/clp-sim/tflex/internal/sim"
)

func sumProgram(t testing.TB) *prog.Program {
	b := prog.NewBuilder()
	bb := b.Block("loop")
	i := bb.Read(2)
	acc := bb.Read(3)
	n := bb.Read(1)
	bb.Write(3, bb.Add(acc, i))
	i2 := bb.AddI(i, 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.Op(isa.OpLt, i2, n), "loop", "done")
	b.Block("done").Halt()
	pr, err := b.Program("loop")
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestTRIPSRunsCorrectly(t *testing.T) {
	p := sumProgram(t)
	m := exec.NewMachine(p)
	m.Regs[1] = 100
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}

	chip := NewChip()
	proc, err := chip.AddProc(Processor(), p)
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 100
	if err := chip.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if proc.Regs[3] != m.Regs[3] {
		t.Fatalf("TRIPS result %d != functional %d", proc.Regs[3], m.Regs[3])
	}
	if proc.Stats.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestTRIPSOptionsShape(t *testing.T) {
	o := Options()
	if o.Params.IssueTotal != 1 {
		t.Error("TRIPS tiles are single-issue")
	}
	if o.Params.OperandBW != 2/2 {
		t.Error("TRIPS operand network is 1x")
	}
	if !o.CentralPredictor {
		t.Error("TRIPS predictor is centralized")
	}
	if o.WindowPerCore != 64 {
		t.Error("TRIPS window is 64 entries per tile (8 blocks total)")
	}
	if len(o.DBanks) != 4 || len(o.RegBanks) != 4 {
		t.Error("TRIPS has 4 D-tiles and 4 register tiles")
	}
	if Processor().N() != 16 {
		t.Error("TRIPS is a 16-tile array")
	}
}

func parProgram(t testing.TB) *prog.Program {
	b := prog.NewBuilder()
	bb := b.Block("loop")
	var acc prog.Ref
	for lane := 0; lane < 12; lane++ {
		x := bb.Read(10 + lane)
		y := bb.MulI(bb.AddI(bb.MulI(x, 7), 3), 5)
		bb.Write(10+lane, y)
		if lane == 0 {
			acc = y
		} else {
			acc = bb.Add(acc, y)
		}
	}
	bb.Write(3, acc)
	i2 := bb.AddI(bb.Read(2), 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.OpI(isa.OpLt, i2, 300), "loop", "done")
	b.Block("done").Halt()
	return b.MustProgram("loop")
}

func TestTRIPSOverlapsBlocks(t *testing.T) {
	// With a 64-entry window per tile and 16 tiles, 8 blocks are in
	// flight, so on a kernel with ILP the TRIPS array overlaps
	// fetch/execute/commit across blocks and beats a single-core
	// (1-block, dual-issue) TFlex.
	p := parProgram(t)
	chip := NewChip()
	proc, err := chip.AddProc(Processor(), p)
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 200
	if err := chip.Run(10_000_000); err != nil {
		t.Fatal(err)
	}

	one := sim.New(sim.DefaultOptions())
	oneProc, err := one.AddProc(compose.MustRect(0, 0, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	oneProc.Regs[1] = 200
	if err := one.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if proc.Stats.Cycles >= oneProc.Stats.Cycles {
		t.Fatalf("TRIPS (%d cycles) should beat 1-core TFlex (%d cycles)",
			proc.Stats.Cycles, oneProc.Stats.Cycles)
	}
}
