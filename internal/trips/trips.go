// Package trips configures the simulator as the fixed-granularity TRIPS
// baseline of the paper: the same EDGE ISA and execution substrate, but
// with the prototype's centralized structures and narrower resources.
//
// Differences from a TFlex composition (paper §5 and §6):
//
//   - 16 single-issue execution tiles in a 4x4 array (TFlex cores are
//     dual-issue with one FP pipe);
//   - a 1024-instruction window as 8 blocks of 128 (64 window entries per
//     tile), rather than one block per participating core;
//   - a centralized next-block predictor and block control at one tile,
//     so predictor capacity does not scale and all block-management
//     traffic converges on one corner of the array;
//   - 4 D-cache/LSQ banks along one edge and 4 register banks along
//     another, instead of per-core banks;
//   - half the operand network bandwidth (the paper doubles it for TFlex).
package trips

import (
	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/sim"
)

// NumTiles is the number of TRIPS execution tiles.
const NumTiles = 16

// Options returns simulator options modeling the TRIPS prototype
// microarchitecture (with the paper's 4MB L2 for fair comparison).
func Options() sim.Options {
	o := sim.DefaultOptions()
	o.Params.IssueTotal = 1
	o.Params.IssueFP = 1
	o.Params.OperandBW = 1 // TFlex doubles this
	o.Params.DispatchBW = 1
	o.WindowPerCore = 64 // 8 blocks x 128 insts over 16 tiles
	o.CentralPredictor = true
	// D-tiles on the west edge of the 4x4 array (participating indices of
	// column 0), register tiles on the north edge (row 0).
	o.DBanks = []int{0, 4, 8, 12}
	o.RegBanks = []int{0, 1, 2, 3}
	return o
}

// Processor returns the 16-tile array as a composed-processor descriptor
// (the 4x4 rectangle at the array origin).
func Processor() compose.Processor {
	return compose.MustRect(0, 0, NumTiles)
}

// NewChip builds a chip configured as a single TRIPS processor.
func NewChip() *sim.Chip { return sim.New(Options()) }
