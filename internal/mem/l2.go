package mem

// The shared level-two cache: a 4MB static-NUCA array of 32 banks
// connected by a switched mesh (paper §4.7).  Hit latency varies from
// L2HitMin to L2HitMax cycles with the distance between the requesting
// core and the bank.  The L2 tag array carries the directory state for L1
// coherence: a sharer vector over the 32 L1 D-caches plus a dirty-owner
// pointer, treating each L1 as an independent coherence unit — so
// recomposition never requires flushing L1s; stale lines are found and
// invalidated or forwarded on demand.

// L1Directory is implemented by the core array so the L2 directory can act
// on L1 D-cache lines.
type L1Directory interface {
	// InvalidateL1 removes addr's line from core's L1 D-cache.
	InvalidateL1(core int, addr uint64) (found, dirty bool)
	// DowngradeL1 marks addr's line clean in core's L1 D-cache (M -> S).
	DowngradeL1(core int, addr uint64) (found bool)
}

type l2Line struct {
	lineAddr uint64
	valid    bool
	dirty    bool // newer than DRAM
	fillAt   uint64
	lastUse  uint64
	sharers  uint32 // bit per L1 (physical core ID)
	owner    int8   // dirty L1 owner, -1 if none
}

// L2Stats counts L2 and directory activity.
type L2Stats struct {
	Accesses   uint64
	Misses     uint64
	Forwards   uint64 // dirty data forwarded from a remote L1
	Invals     uint64 // L1 lines invalidated by the directory
	Downgrades uint64
	Evictions  uint64
	Writebacks uint64 // dirty L1 evictions absorbed
}

// L2 is the shared S-NUCA level-two cache with its coherence directory.
type L2 struct {
	setCount  int
	ways      int
	lineBytes int
	banks     int
	hitMin    uint64
	hitMax    uint64

	lines    []l2Line
	bankPort []port
	dram     *DRAM
	dir      L1Directory

	// Core array geometry for distance-dependent latency (4-wide).
	arrayW int

	Stats L2Stats
	tick  uint64
}

// NewL2 builds the shared L2.
func NewL2(totalBytes, ways, lineBytes, banks int, hitMin, hitMax uint64, dram *DRAM) *L2 {
	sets := totalBytes / (ways * lineBytes)
	return &L2{
		setCount:  sets,
		ways:      ways,
		lineBytes: lineBytes,
		banks:     banks,
		hitMin:    hitMin,
		hitMax:    hitMax,
		lines:     make([]l2Line, sets*ways),
		bankPort:  make([]port, banks),
		dram:      dram,
		arrayW:    4,
	}
}

// SetDirectory wires the L1 invalidation callbacks.
func (l *L2) SetDirectory(dir L1Directory) { l.dir = dir }

// BankOf returns the S-NUCA bank holding addr.
func (l *L2) BankOf(addr uint64) int {
	return int((addr / uint64(l.lineBytes)) % uint64(l.banks))
}

// coreDist is the Manhattan distance between two positions on the 4-wide
// array; the L2 bank array mirrors the core array on the other half of the
// chip, so bank b is reached from core c with an extra column crossing.
func (l *L2) coreDist(a, b int) int {
	ax, ay := a%l.arrayW, a/l.arrayW
	bx, by := b%l.arrayW, b/l.arrayW
	dx := ax - bx
	if dx < 0 {
		dx = -dx
	}
	dy := ay - by
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// HitLatency maps requester-to-bank distance onto [hitMin, hitMax].
func (l *L2) HitLatency(core int, addr uint64) uint64 {
	bank := l.BankOf(addr)
	// Crossing from the core array to the L2 array costs the column
	// offset; the maximum distance on the combined floorplan is ~14 hops.
	d := uint64(l.coreDist(core, bank) + 4)
	const maxD = 14
	if d > maxD {
		d = maxD
	}
	return l.hitMin + (l.hitMax-l.hitMin)*d/maxD
}

func (l *L2) set(addr uint64) []l2Line {
	la := addr / uint64(l.lineBytes)
	s := int(la % uint64(l.setCount))
	return l.lines[s*l.ways : (s+1)*l.ways]
}

func (l *L2) probe(addr uint64) *l2Line {
	la := addr / uint64(l.lineBytes)
	set := l.set(addr)
	for i := range set {
		if set[i].valid && set[i].lineAddr == la {
			return &set[i]
		}
	}
	return nil
}

func (l *L2) fill(addr uint64, fillAt uint64) *l2Line {
	set := l.set(addr)
	l.tick++
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].lastUse < set[vi].lastUse {
			vi = i
		}
	}
	v := &set[vi]
	if v.valid {
		l.Stats.Evictions++
		// Inclusive L2: evicting a line with L1 copies invalidates them.
		l.invalidateSharers(v, -1)
		// Dirty victims drain to DRAM through the writeback buffer
		// (bandwidth folded into the DRAM channel model elsewhere).
	}
	*v = l2Line{lineAddr: addr / uint64(l.lineBytes), valid: true, fillAt: fillAt, lastUse: l.tick, owner: -1}
	return v
}

func (l *L2) invalidateSharers(line *l2Line, except int) (maxDist int) {
	if l.dir == nil {
		line.sharers = 0
		line.owner = -1
		return 0
	}
	base := line.lineAddr * uint64(l.lineBytes)
	for c := 0; c < 32; c++ {
		if line.sharers&(1<<uint(c)) == 0 || c == except {
			continue
		}
		if found, dirty := l.dir.InvalidateL1(c, base); found {
			l.Stats.Invals++
			if dirty {
				line.dirty = true
			}
			ref := except
			if ref < 0 {
				ref = c // eviction-driven: no requester to reach
			}
			if d := l.coreDist(c, ref); d > maxDist {
				maxDist = d
			}
		}
	}
	keep := uint32(0)
	if except >= 0 {
		keep = line.sharers & (1 << uint(except))
	}
	line.sharers = keep
	if except < 0 || int(line.owner) != except {
		line.owner = -1
	}
	return maxDist
}

// Read services an L1 load/ifetch miss from core at cycle now and returns
// the fill-completion cycle.  The requester is recorded as a sharer.
func (l *L2) Read(core int, addr uint64, now uint64) uint64 {
	l.Stats.Accesses++
	bank := l.BankOf(addr)
	start := l.bankPort[bank].reserve(now, 2)
	lat := l.HitLatency(core, addr)
	line := l.probe(addr)
	var done uint64
	if line == nil {
		l.Stats.Misses++
		done = l.dram.Access(addr, start+lat)
		line = l.fill(addr, done)
	} else {
		l.tick++
		line.lastUse = l.tick
		done = start + lat
		if line.fillAt > done {
			done = line.fillAt
		}
		if line.owner >= 0 && int(line.owner) != core {
			// Dirty in a remote L1: forward and downgrade the owner.
			l.Stats.Forwards++
			done += uint64(l.coreDist(int(line.owner), core))
			if l.dir != nil {
				if found := l.dir.DowngradeL1(int(line.owner), addr); found {
					l.Stats.Downgrades++
				}
			}
			line.dirty = true
			line.owner = -1
		}
	}
	line.sharers |= 1 << uint(core%32)
	return done
}

// Upgrade grants core exclusive (writable) ownership of addr's line,
// invalidating all other L1 copies; called when a committing store hits a
// clean L1 line or fills a new one.  Returns the completion cycle.
func (l *L2) Upgrade(core int, addr uint64, now uint64) uint64 {
	l.Stats.Accesses++
	bank := l.BankOf(addr)
	start := l.bankPort[bank].reserve(now, 2)
	lat := l.HitLatency(core, addr)
	line := l.probe(addr)
	var done uint64
	if line == nil {
		l.Stats.Misses++
		done = l.dram.Access(addr, start+lat)
		line = l.fill(addr, done)
	} else {
		l.tick++
		line.lastUse = l.tick
		done = start + lat
		if line.fillAt > done {
			done = line.fillAt
		}
	}
	if d := l.invalidateSharers(line, core); d > 0 {
		done += uint64(2 * d) // invalidation round trip
	}
	line.sharers = 1 << uint(core%32)
	line.owner = int8(core)
	return done
}

// WritebackL1 absorbs a dirty L1 eviction from core.
func (l *L2) WritebackL1(core int, addr uint64) {
	l.Stats.Writebacks++
	if line := l.probe(addr); line != nil {
		line.dirty = true
		line.sharers &^= 1 << uint(core%32)
		if int(line.owner) == core {
			line.owner = -1
		}
	}
}

// DropSharer records a clean L1 eviction from core.
func (l *L2) DropSharer(core int, addr uint64) {
	if line := l.probe(addr); line != nil {
		line.sharers &^= 1 << uint(core%32)
		if int(line.owner) == core {
			line.owner = -1
		}
	}
}

// Sharers reports the directory sharer vector for a line (tests).
func (l *L2) Sharers(addr uint64) (uint32, bool) {
	if line := l.probe(addr); line != nil {
		return line.sharers, true
	}
	return 0, false
}
