package mem

// Load/store queue banks.  The composed processor partitions its LSQ by
// data address with the same hash as the L1 D-cache banks, so each bank
// disambiguates only the accesses it can conflict with.  Banks are not
// sized for the worst case; when a bank is full an incoming request is
// NACKed and retried (the low-overhead overflow mechanism of
// Sethumadhavan et al. cited in paper §4.5).

// MemKey totally orders memory operations across the in-flight window:
// block sequence number first, then LSID within the block.
type MemKey struct {
	BlockSeq uint64
	LSID     int8
}

// Less reports program order.
func (k MemKey) Less(o MemKey) bool {
	if k.BlockSeq != o.BlockSeq {
		return k.BlockSeq < o.BlockSeq
	}
	return k.LSID < o.LSID
}

// LSQEntry is one in-flight memory operation resident in a bank.  Entries
// are allocated when the operation reaches the bank (address in hand).
type LSQEntry struct {
	Key   MemKey
	Store bool
	Addr  uint64
	Size  uint8
}

// LSQStats counts queue activity.
type LSQStats struct {
	Inserts    uint64
	NACKs      uint64
	Violations uint64
	Forwards   uint64
	MaxOcc     int
}

// LSQBank is one address-interleaved LSQ partition.
type LSQBank struct {
	Cap     int
	entries []LSQEntry
	Stats   LSQStats
}

// NewLSQBank returns a bank with the given capacity (44 in Table 1).
func NewLSQBank(capacity int) *LSQBank {
	return &LSQBank{Cap: capacity}
}

// Occupancy returns the number of resident entries.
func (b *LSQBank) Occupancy() int { return len(b.entries) }

func bytesOverlap(a1 uint64, s1 uint8, a2 uint64, s2 uint8) bool {
	return a1 < a2+uint64(s2) && a2 < a1+uint64(s1)
}

// Insert slots a memory operation, returning false (NACK) when the bank is
// full.  For stores, it also returns the keys of younger already-executed
// loads that overlap — dependence violations the pipeline must flush.
func (b *LSQBank) Insert(e LSQEntry) (ok bool, violations []MemKey) {
	if len(b.entries) >= b.Cap {
		b.Stats.NACKs++
		return false, nil
	}
	if e.Store {
		for i := range b.entries {
			o := &b.entries[i]
			if !o.Store && e.Key.Less(o.Key) && bytesOverlap(e.Addr, e.Size, o.Addr, o.Size) {
				//lint:allow hotalloc audited: violation keys escape to the caller's flush path; violations are rare and the slice is usually nil
				violations = append(violations, o.Key)
			}
		}
		if len(violations) > 0 {
			b.Stats.Violations += uint64(len(violations))
		}
	}
	b.entries = append(b.entries, e)
	b.Stats.Inserts++
	if len(b.entries) > b.Stats.MaxOcc {
		b.Stats.MaxOcc = len(b.entries)
	}
	return true, violations
}

// ForwardFrom reports whether a load (key, addr, size) would be satisfied
// (fully or partially) by an older in-flight store in this bank; used for
// the forwarding statistics and latency path.
func (b *LSQBank) ForwardFrom(key MemKey, addr uint64, size uint8) bool {
	for i := range b.entries {
		o := &b.entries[i]
		if o.Store && o.Key.Less(key) && bytesOverlap(addr, size, o.Addr, o.Size) {
			b.Stats.Forwards++
			return true
		}
	}
	return false
}

// RemoveBlock drops every entry belonging to block seq (commit or flush)
// and returns how many were removed.
func (b *LSQBank) RemoveBlock(seq uint64) int {
	kept := b.entries[:0]
	removed := 0
	for _, e := range b.entries {
		if e.Key.BlockSeq == seq {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	b.entries = kept
	return removed
}

// RemoveFrom drops every entry with BlockSeq >= seq (pipeline flush).
func (b *LSQBank) RemoveFrom(seq uint64) int {
	kept := b.entries[:0]
	removed := 0
	for _, e := range b.entries {
		if e.Key.BlockSeq >= seq {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	b.entries = kept
	return removed
}
