package mem

import "github.com/clp-sim/tflex/internal/telemetry"

// Register methods expose each memory component's counters under a
// hierarchical prefix ("core3.l1d", "core3.lsq", "l2", "dram").  Every
// entry is a view over the component's own stats field or an on-demand
// gauge, so registration adds nothing to the access paths.

// Register exposes cache counters plus a live occupancy gauge.
func (c *Cache) Register(r *telemetry.Registry, prefix string) {
	r.CounterView(prefix+".accesses", &c.Stats.Accesses)
	r.CounterView(prefix+".misses", &c.Stats.Misses)
	r.CounterView(prefix+".evictions", &c.Stats.Evictions)
	r.CounterView(prefix+".dirty_evicts", &c.Stats.DirtyEvicts)
	r.CounterView(prefix+".invalidates", &c.Stats.Invalidates)
	r.Gauge(prefix+".occupancy", func() float64 { return float64(c.Occupancy()) })
}

// Register exposes LSQ bank counters plus occupancy gauges.
func (b *LSQBank) Register(r *telemetry.Registry, prefix string) {
	r.CounterView(prefix+".inserts", &b.Stats.Inserts)
	r.CounterView(prefix+".nacks", &b.Stats.NACKs)
	r.CounterView(prefix+".violations", &b.Stats.Violations)
	r.CounterView(prefix+".forwards", &b.Stats.Forwards)
	r.Gauge(prefix+".occupancy", func() float64 { return float64(b.Occupancy()) })
	r.Gauge(prefix+".max_occupancy", func() float64 { return float64(b.Stats.MaxOcc) })
}

// Register exposes L2 + directory counters.
func (l *L2) Register(r *telemetry.Registry, prefix string) {
	r.CounterView(prefix+".accesses", &l.Stats.Accesses)
	r.CounterView(prefix+".misses", &l.Stats.Misses)
	r.CounterView(prefix+".forwards", &l.Stats.Forwards)
	r.CounterView(prefix+".invals", &l.Stats.Invals)
	r.CounterView(prefix+".downgrades", &l.Stats.Downgrades)
	r.CounterView(prefix+".evictions", &l.Stats.Evictions)
	r.CounterView(prefix+".writebacks", &l.Stats.Writebacks)
}

// Register exposes DRAM channel counters.
func (d *DRAM) Register(r *telemetry.Registry, prefix string) {
	r.CounterView(prefix+".requests", &d.Stats.Requests)
	r.CounterView(prefix+".stall_cycles", &d.Stats.StallCycles)
}
