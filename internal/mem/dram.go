package mem

// DRAM models main memory: a fixed unloaded latency (150 cycles in
// Table 1) plus channel contention — each channel accepts one request per
// burst interval.
type DRAM struct {
	Latency  uint64
	Channels []port
	Interval uint64 // cycles between requests per channel

	Stats struct {
		Requests    uint64
		StallCycles uint64
	}
}

// NewDRAM returns a DRAM model with the given unloaded latency.
func NewDRAM(latency uint64, channels int, interval uint64) *DRAM {
	if channels < 1 {
		channels = 1
	}
	return &DRAM{Latency: latency, Channels: make([]port, channels), Interval: interval}
}

// Access books a request issued at cycle now and returns its completion
// cycle.  Requests are spread across channels by address.
func (d *DRAM) Access(addr uint64, now uint64) uint64 {
	d.Stats.Requests++
	ch := &d.Channels[(addr>>6)%uint64(len(d.Channels))]
	start := ch.reserve(now, d.Interval)
	d.Stats.StallCycles += start - now
	return start + d.Latency
}
