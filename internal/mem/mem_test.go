package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(8<<10, 2, 64) // 8KB, 2-way, 64B lines: 64 sets
	if c.SetCount != 64 {
		t.Fatalf("sets = %d", c.SetCount)
	}
	if _, hit := c.Access(0x1000, 0); hit {
		t.Fatal("cold cache should miss")
	}
	c.Fill(0x1000, 10)
	l, hit := c.Access(0x1000, 20)
	if !hit {
		t.Fatal("expected hit after fill")
	}
	if l.FillAt != 10 {
		t.Fatalf("FillAt = %d", l.FillAt)
	}
	// Same line, different offset.
	if _, hit := c.Access(0x103f, 21); !hit {
		t.Fatal("same line should hit")
	}
	// Different line, same set region.
	if _, hit := c.Access(0x2000, 22); hit {
		t.Fatal("different line should miss")
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2*64, 2, 64) // one set, two ways
	c.Fill(0*64, 0)
	c.Fill(1*64, 0)
	c.Access(0*64, 1) // make line 0 MRU
	v, evicted := c.Fill(2*64, 2)
	if !evicted {
		t.Fatal("expected eviction")
	}
	if v.LineAddr != 1 {
		t.Fatalf("victim line %d, want 1 (LRU)", v.LineAddr)
	}
	if _, hit := c.Access(0*64, 3); !hit {
		t.Fatal("MRU line should survive")
	}
}

func TestCacheDirtyEvictionCounted(t *testing.T) {
	c := NewCache(64, 1, 64)
	c.Fill(0, 0)
	c.Probe(0).Dirty = true
	_, _ = c.Fill(64, 1)
	if c.Stats.DirtyEvicts != 1 {
		t.Fatalf("dirty evicts = %d", c.Stats.DirtyEvicts)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(8<<10, 2, 64)
	c.Fill(0x40, 0)
	c.Probe(0x40).Dirty = true
	found, dirty := c.Invalidate(0x40)
	if !found || !dirty {
		t.Fatalf("found=%v dirty=%v", found, dirty)
	}
	if _, hit := c.Access(0x40, 1); hit {
		t.Fatal("invalidated line should miss")
	}
	if f, _ := c.Invalidate(0x9999); f {
		t.Fatal("missing line should not be found")
	}
}

func TestCacheFillMergesPendingFills(t *testing.T) {
	c := NewCache(8<<10, 2, 64)
	c.Fill(0x80, 100)
	c.Fill(0x80, 50) // earlier fill time wins
	if got := c.Probe(0x80).FillAt; got != 50 {
		t.Fatalf("FillAt = %d", got)
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
}

func TestDRAMContention(t *testing.T) {
	d := NewDRAM(150, 1, 4)
	a := d.Access(0, 0)
	b := d.Access(0, 0)
	if a != 150 {
		t.Fatalf("first access done at %d", a)
	}
	if b != 154 {
		t.Fatalf("second access done at %d (channel busy)", b)
	}
	// Two channels: different addresses can proceed in parallel.
	d2 := NewDRAM(150, 2, 4)
	x := d2.Access(0, 0)
	y := d2.Access(64, 0)
	if x != 150 || y != 150 {
		t.Fatalf("parallel channels: %d %d", x, y)
	}
}

func TestL2ReadHitLatencyRange(t *testing.T) {
	d := NewDRAM(150, 2, 4)
	l2 := NewL2(4<<20, 8, 64, 32, 5, 27, d)
	// Fill then read: hit latency must lie in [5, 27].
	done := l2.Read(0, 0x10000, 0)
	if done < 150 {
		t.Fatalf("cold read should go to DRAM, done=%d", done)
	}
	done2 := l2.Read(0, 0x10000, done)
	lat := done2 - done
	if lat < 5 || lat > 27 {
		t.Fatalf("hit latency %d outside [5,27]", lat)
	}
}

func TestL2HitLatencyDependsOnDistance(t *testing.T) {
	d := NewDRAM(150, 2, 4)
	l2 := NewL2(4<<20, 8, 64, 32, 5, 27, d)
	near := l2.HitLatency(0, 0) // bank 0, core 0
	far := l2.HitLatency(31, 0) // bank 0, far core
	if near >= far {
		t.Fatalf("near=%d far=%d", near, far)
	}
	if near < 5 || far > 27 {
		t.Fatalf("latencies out of range: %d %d", near, far)
	}
}

type fakeDir struct {
	invals     []int
	downgrades []int
	dirty      bool
}

func (f *fakeDir) InvalidateL1(core int, addr uint64) (bool, bool) {
	f.invals = append(f.invals, core)
	return true, f.dirty
}
func (f *fakeDir) DowngradeL1(core int, addr uint64) bool {
	f.downgrades = append(f.downgrades, core)
	return true
}

func TestL2DirectoryTracksSharersAndUpgrades(t *testing.T) {
	d := NewDRAM(150, 2, 4)
	l2 := NewL2(4<<20, 8, 64, 32, 5, 27, d)
	dir := &fakeDir{}
	l2.SetDirectory(dir)

	l2.Read(3, 0x40, 0)
	l2.Read(7, 0x40, 0)
	sh, ok := l2.Sharers(0x40)
	if !ok || sh != (1<<3)|(1<<7) {
		t.Fatalf("sharers = %#x", sh)
	}
	// Core 7 writes: core 3's copy must be invalidated.
	l2.Upgrade(7, 0x40, 100)
	sh, _ = l2.Sharers(0x40)
	if sh != 1<<7 {
		t.Fatalf("after upgrade sharers = %#x", sh)
	}
	if len(dir.invals) != 1 || dir.invals[0] != 3 {
		t.Fatalf("invals = %v", dir.invals)
	}
}

func TestL2ForwardsDirtyLines(t *testing.T) {
	d := NewDRAM(150, 2, 4)
	l2 := NewL2(4<<20, 8, 64, 32, 5, 27, d)
	dir := &fakeDir{}
	l2.SetDirectory(dir)
	l2.Upgrade(0, 0x80, 0) // core 0 owns dirty
	done := l2.Read(31, 0x80, 1000)
	if l2.Stats.Forwards != 1 {
		t.Fatalf("forwards = %d", l2.Stats.Forwards)
	}
	if len(dir.downgrades) != 1 || dir.downgrades[0] != 0 {
		t.Fatalf("downgrades = %v", dir.downgrades)
	}
	if done <= 1000+5 {
		t.Fatalf("forwarded read should cost extra hops, done=%d", done)
	}
	// This is the recomposition path: a thread moved from core 0 to core
	// 31 finds its dirty line via the directory without an L1 flush.
}

func TestL2WritebackAndDropSharer(t *testing.T) {
	d := NewDRAM(150, 2, 4)
	l2 := NewL2(4<<20, 8, 64, 32, 5, 27, d)
	l2.Read(4, 0xc0, 0)
	l2.WritebackL1(4, 0xc0)
	if sh, _ := l2.Sharers(0xc0); sh != 0 {
		t.Fatalf("sharers after writeback = %#x", sh)
	}
	l2.Read(5, 0xc0, 500)
	l2.DropSharer(5, 0xc0)
	if sh, _ := l2.Sharers(0xc0); sh != 0 {
		t.Fatalf("sharers after drop = %#x", sh)
	}
}

func TestLSQOrderingKey(t *testing.T) {
	f := func(s1, s2 uint32, l1, l2 uint8) bool {
		a := MemKey{uint64(s1), int8(l1 % 32)}
		b := MemKey{uint64(s2), int8(l2 % 32)}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLSQNACKOnOverflow(t *testing.T) {
	b := NewLSQBank(2)
	ok, _ := b.Insert(LSQEntry{Key: MemKey{1, 0}, Addr: 0, Size: 8})
	ok2, _ := b.Insert(LSQEntry{Key: MemKey{1, 1}, Addr: 8, Size: 8})
	ok3, _ := b.Insert(LSQEntry{Key: MemKey{1, 2}, Addr: 16, Size: 8})
	if !ok || !ok2 || ok3 {
		t.Fatalf("ok=%v ok2=%v ok3=%v", ok, ok2, ok3)
	}
	if b.Stats.NACKs != 1 {
		t.Fatalf("NACKs = %d", b.Stats.NACKs)
	}
	b.RemoveBlock(1)
	if b.Occupancy() != 0 {
		t.Fatalf("occupancy = %d", b.Occupancy())
	}
	ok4, _ := b.Insert(LSQEntry{Key: MemKey{2, 0}, Addr: 0, Size: 8})
	if !ok4 {
		t.Fatal("insert after removal should succeed")
	}
}

func TestLSQViolationDetection(t *testing.T) {
	b := NewLSQBank(44)
	// Younger load executes first.
	b.Insert(LSQEntry{Key: MemKey{5, 3}, Addr: 100, Size: 8})
	// Older store to an overlapping address arrives later: violation.
	_, v := b.Insert(LSQEntry{Key: MemKey{5, 1}, Store: true, Addr: 104, Size: 4})
	if len(v) != 1 || v[0] != (MemKey{5, 3}) {
		t.Fatalf("violations = %v", v)
	}
	// Non-overlapping store: no violation.
	_, v2 := b.Insert(LSQEntry{Key: MemKey{5, 0}, Store: true, Addr: 200, Size: 8})
	if len(v2) != 0 {
		t.Fatalf("violations = %v", v2)
	}
	// Store younger than the load: no violation.
	_, v3 := b.Insert(LSQEntry{Key: MemKey{6, 0}, Store: true, Addr: 100, Size: 8})
	if len(v3) != 0 {
		t.Fatalf("violations = %v", v3)
	}
}

func TestLSQForwardFrom(t *testing.T) {
	b := NewLSQBank(44)
	b.Insert(LSQEntry{Key: MemKey{5, 1}, Store: true, Addr: 100, Size: 8})
	if !b.ForwardFrom(MemKey{5, 2}, 100, 8) {
		t.Fatal("expected forwarding from older store")
	}
	if b.ForwardFrom(MemKey{5, 0}, 100, 8) {
		t.Fatal("older load should not forward from younger store")
	}
	if b.ForwardFrom(MemKey{5, 2}, 200, 8) {
		t.Fatal("disjoint address should not forward")
	}
}

func TestLSQRemoveFrom(t *testing.T) {
	b := NewLSQBank(44)
	for seq := uint64(1); seq <= 4; seq++ {
		b.Insert(LSQEntry{Key: MemKey{seq, 0}, Addr: seq * 64, Size: 8})
	}
	if n := b.RemoveFrom(3); n != 2 {
		t.Fatalf("removed %d", n)
	}
	if b.Occupancy() != 2 {
		t.Fatalf("occupancy = %d", b.Occupancy())
	}
}

func TestBytesOverlapProperty(t *testing.T) {
	f := func(a1, a2 uint16, s1, s2 uint8) bool {
		sz1 := uint8(1 + s1%8)
		sz2 := uint8(1 + s2%8)
		got := bytesOverlap(uint64(a1), sz1, uint64(a2), sz2)
		// Brute force.
		want := false
		for i := uint64(a1); i < uint64(a1)+uint64(sz1); i++ {
			for j := uint64(a2); j < uint64(a2)+uint64(sz2); j++ {
				if i == j {
					want = true
				}
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestL2InclusiveEvictionInvalidatesL1(t *testing.T) {
	// A tiny L2 (one set) forces an eviction of a line with an L1 sharer;
	// inclusion requires the directory to invalidate the L1 copy.
	d := NewDRAM(150, 2, 4)
	l2 := NewL2(2*64, 2, 64, 1, 5, 27, d) // one set, two ways
	dir := &fakeDir{}
	l2.SetDirectory(dir)
	l2.Read(3, 0*64, 0)
	l2.Read(4, 1*64, 0)
	// Third distinct line evicts the LRU line (line 0, shared by core 3).
	l2.Read(5, 2*64, 100)
	if len(dir.invals) == 0 {
		t.Fatal("inclusive eviction should invalidate L1 sharers")
	}
	found := false
	for _, c := range dir.invals {
		if c == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("core 3 not invalidated: %v", dir.invals)
	}
}
