// Package mem models the TFlex memory system substrates: set-associative
// timing caches (tags only — architectural data lives in the functional
// memory), the shared S-NUCA L2 with directory coherence, the DRAM channel
// model, and the address-interleaved load/store queue banks with NACK
// overflow handling.
//
// Timing caches are decoupled from data: the simulator computes load
// values architecturally and uses these structures only to decide hit/miss
// latency, occupancy, evictions and coherence actions — the standard
// split-functional/timing simulator organization.
package mem

// Line is one cache line's timing state.
type Line struct {
	LineAddr uint64 // addr / lineBytes
	Valid    bool
	Dirty    bool
	FillAt   uint64 // cycle at which the data is present (MSHR merging)
	lastUse  uint64
}

// CacheStats counts cache activity.
type CacheStats struct {
	Accesses    uint64
	Misses      uint64
	Evictions   uint64
	DirtyEvicts uint64
	Invalidates uint64
}

// Cache is a set-associative tag array with LRU replacement.
type Cache struct {
	SetCount  int
	Ways      int
	LineBytes int

	lines []Line // SetCount * Ways
	Stats CacheStats
	tick  uint64 // LRU clock
}

// NewCache builds a cache of totalBytes capacity.
func NewCache(totalBytes, ways, lineBytes int) *Cache {
	sets := totalBytes / (ways * lineBytes)
	if sets < 1 {
		sets = 1
	}
	return &Cache{
		SetCount:  sets,
		Ways:      ways,
		LineBytes: lineBytes,
		lines:     make([]Line, sets*ways),
	}
}

func (c *Cache) set(addr uint64) []Line {
	la := addr / uint64(c.LineBytes)
	s := int(la % uint64(c.SetCount))
	return c.lines[s*c.Ways : (s+1)*c.Ways]
}

// Probe returns the line holding addr without updating stats or LRU.
func (c *Cache) Probe(addr uint64) *Line {
	la := addr / uint64(c.LineBytes)
	set := c.set(addr)
	for i := range set {
		if set[i].Valid && set[i].LineAddr == la {
			return &set[i]
		}
	}
	return nil
}

// Access looks up addr at cycle now, counting one access.  On a hit the
// line's LRU position is refreshed and the line returned; the caller must
// honor FillAt (a hit under a pending fill completes at FillAt).
func (c *Cache) Access(addr uint64, now uint64) (*Line, bool) {
	c.Stats.Accesses++
	c.tick++
	l := c.Probe(addr)
	if l == nil {
		c.Stats.Misses++
		return nil, false
	}
	l.lastUse = c.tick
	_ = now
	return l, true
}

// Fill allocates a line for addr whose data arrives at fillAt, evicting
// the LRU way.  It returns the victim (if any) so the caller can write it
// back or notify a directory.
func (c *Cache) Fill(addr uint64, fillAt uint64) (victim Line, evicted bool) {
	la := addr / uint64(c.LineBytes)
	set := c.set(addr)
	c.tick++
	// Reuse the line if it is already present (racing fills merge).
	for i := range set {
		if set[i].Valid && set[i].LineAddr == la {
			if fillAt < set[i].FillAt {
				set[i].FillAt = fillAt
			}
			set[i].lastUse = c.tick
			return Line{}, false
		}
	}
	vi := 0
	for i := range set {
		if !set[i].Valid {
			vi = i
			break
		}
		if set[i].lastUse < set[vi].lastUse {
			vi = i
		}
	}
	victim = set[vi]
	evicted = victim.Valid
	if evicted {
		c.Stats.Evictions++
		if victim.Dirty {
			c.Stats.DirtyEvicts++
		}
	}
	set[vi] = Line{LineAddr: la, Valid: true, FillAt: fillAt, lastUse: c.tick}
	return victim, evicted
}

// Invalidate drops the line holding addr, reporting whether it existed and
// whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (found, dirty bool) {
	l := c.Probe(addr)
	if l == nil {
		return false, false
	}
	c.Stats.Invalidates++
	found, dirty = true, l.Dirty
	l.Valid = false
	l.Dirty = false
	return found, dirty
}

// InvalidateAll drops every line (used when a thread's L1 mapping is
// rebuilt wholesale in tests; recomposition itself uses directory-driven
// per-line invalidation).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = Line{}
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid {
			n++
		}
	}
	return n
}

// port is a simple structural-hazard reservation: one access per cycle.
type port struct {
	nextFree uint64
}

// reserve returns the cycle at which the port accepts a request arriving
// at cycle t, and books it.
func (p *port) reserve(t uint64, interval uint64) uint64 {
	if t < p.nextFree {
		t = p.nextFree
	}
	p.nextFree = t + interval
	return t
}
