package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestChromeExporterGolden pins the exporter's exact JSON byte stream,
// including the one-tick minimum duration for degenerate spans: a span
// whose end equals (or precedes) its start must serialize with "dur":1,
// never as a zero-duration event that trace viewers drop.
func TestChromeExporterGolden(t *testing.T) {
	tr := &Trace{}
	tr.NameProcess(7, "chip")
	tr.NameThread(7, 2, "core2")
	tr.Span(7, 2, "blk@0x100", "fetch", 100, 140, map[string]any{"seq": 9})
	// FetchStart == CommitStart edge case: zero-length phase clamps to 1.
	tr.Span(7, 2, "blk@0x120", "commit", 140, 140, nil)
	// Inverted span (end < start) clamps to 1 as well.
	tr.Span(7, 2, "blk@0x140", "flushed", 50, 40, nil)
	tr.Instant(7, 2, "halt", "halt", 200)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exporter JSON drifted from golden file\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}
