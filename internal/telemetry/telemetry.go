// Package telemetry is the chip-wide observability layer: a registry of
// typed counters, gauges and power-of-two-bucket histograms registered
// under hierarchical dotted names ("core3.lsq.nacks",
// "noc.opnd.link.3.4.flits"), a cycle-sampled time-series sampler, and a
// Chrome trace-event exporter for block/job lifecycles.
//
// Design rules (see DESIGN.md, "Telemetry"):
//
//   - Counters are usually *views* over a component's own uint64 field
//     (gem5-style): the component keeps incrementing its field on the hot
//     path exactly as before, and the registry only reads it at snapshot
//     time.  Registering a metric therefore costs nothing per simulated
//     event.
//   - Active instrumentation (histograms, the sampler, the Chrome trace)
//     is reached through nil-safe methods: when telemetry is disabled the
//     pointers are nil and each call site compiles to a nil check.
//   - Snapshot/WriteJSON iterate names in sorted order, so all exported
//     artifacts are deterministic.
package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.  A counter either
// owns its storage (Registry.Counter) or is a read-only view over a
// component-owned field (Registry.CounterView).  Owned counters are
// atomic — they sit off the simulator hot path, so the atomicity is free
// for the simulation and lets harness code count from many goroutines.
// View sources stay plain fields incremented by their single owning
// simulation goroutine; reading a view mid-run from another goroutine is
// outside the sharing model (one registry per chip, snapshots after the
// run or from the chip's own event loop).
type Counter struct {
	own atomic.Uint64
	ext *uint64 // non-nil for views
}

// Add increments an owned counter.  Safe on nil (disabled telemetry).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.own.Add(n)
	}
}

// Inc increments an owned counter by one.  Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	if c.ext != nil {
		return *c.ext
	}
	return c.own.Load()
}

// Gauge is an instantaneous value computed on demand.
type Gauge struct{ fn func() float64 }

// Value evaluates the gauge.
func (g *Gauge) Value() float64 {
	if g == nil || g.fn == nil {
		return 0
	}
	return g.fn()
}

// Registry maps hierarchical metric names to counters, gauges and
// histograms.  Registration replaces any previous metric of the same
// name (a recomposed processor re-registers its cores).  All methods are
// safe for concurrent use; the intended sharing model is still
// one registry per chip (see the overhead contract in DESIGN.md).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter registers (or returns the existing) registry-owned counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok && c.ext == nil {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// CounterView registers name as a view over src, a counter field owned
// and incremented by the component itself.  The hot path keeps writing
// the field directly; the registry reads it only at snapshot time.
func (r *Registry) CounterView(name string, src *uint64) {
	r.mu.Lock()
	r.counters[name] = &Counter{ext: src}
	r.mu.Unlock()
}

// Gauge registers a derived instantaneous metric.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.mu.Lock()
	r.gauges[name] = &Gauge{fn: fn}
	r.mu.Unlock()
}

// Histogram registers (or returns the existing) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// CounterValue reads one counter exactly (0 when unregistered).
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	return c.Value()
}

// SumCounters adds up every counter whose name starts with prefix and
// ends with suffix (either may be empty).  uint64 addition is
// order-independent, so the result is deterministic regardless of map
// iteration order.
func (r *Registry) SumCounters(prefix, suffix string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var sum uint64
	for name, c := range r.counters {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
			sum += c.Value()
		}
	}
	return sum
}

// HistogramOf returns the named histogram, or nil.
func (r *Registry) HistogramOf(name string) *Histogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hists[name]
}

// Names lists every registered metric name in sorted order (histograms
// appear once under their base name).
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Snapshot is a flat, point-in-time copy of the registry: counter and
// gauge values by name, plus "<hist>.count", "<hist>.sum" and
// "<hist>.mean" per histogram.  Counter values are exact in float64 for
// counts below 2^53 — far beyond any simulated quantity — so arithmetic
// on a snapshot reproduces the same float64 results as the raw fields.
type Snapshot map[string]float64

// Get reads one snapshot entry (0 when absent).
func (s Snapshot) Get(name string) float64 { return s[name] }

// Sum adds every entry whose name starts with prefix and ends with
// suffix, in sorted-name order for determinism.
func (s Snapshot) Sum(prefix, suffix string) float64 {
	names := make([]string, 0, len(s))
	for n := range s {
		if strings.HasPrefix(n, prefix) && strings.HasSuffix(n, suffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var sum float64
	for _, n := range names {
		sum += s[n]
	}
	return sum
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := make(Snapshot, len(r.counters)+len(r.gauges)+3*len(r.hists))
	for n, c := range r.counters {
		s[n] = float64(c.Value())
	}
	for n, g := range r.gauges {
		s[n] = g.Value()
	}
	for n, h := range r.hists {
		s[n+".count"] = float64(h.Count())
		s[n+".sum"] = float64(h.Sum())
		s[n+".mean"] = h.Mean()
	}
	return s
}

// jsonHistogram is the exported form of one histogram.
type jsonHistogram struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// WriteJSON dumps the registry as one JSON document with sorted keys:
// {"counters":{...},"gauges":{...},"histograms":{...}}.  Histograms
// include their non-empty power-of-two buckets.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]uint64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g.Value()
	}
	hists := make(map[string]jsonHistogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = jsonHistogram{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Mean:    h.Mean(),
			Buckets: h.Buckets(),
		}
	}
	r.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Counters   map[string]uint64        `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}{counters, gauges, hists})
}
