package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Trace collects Chrome trace-event records — the JSON format loaded by
// chrome://tracing and Perfetto.  The simulator maps one simulated cycle
// to one microsecond of trace time, so cycle counts read directly off
// the viewer's time axis; the experiment runner uses real microseconds
// for its job spans.
//
// A Trace is safe for concurrent use: runner workers append job spans
// from many goroutines.  The zero value is ready to use, and all methods
// are nil-safe so a disabled trace costs one nil check at each call
// site.
type Trace struct {
	mu     sync.Mutex
	events []chromeEvent
}

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Span records a complete ("ph":"X") event covering [start, end] ticks
// on the (pid, tid) track.  Spans with end <= start are clamped to a
// one-tick minimum: trace viewers drop or render zero-duration complete
// events invisibly, and legitimate same-cycle phases (a block whose
// FetchStart equals its CommitStart after a flush) would silently
// vanish from the timeline.  Safe on nil.
func (t *Trace) Span(pid, tid int, name, cat string, start, end uint64, args map[string]any) {
	if t == nil {
		return
	}
	dur := uint64(1)
	if end > start {
		dur = end - start
	}
	t.mu.Lock()
	t.events = append(t.events, chromeEvent{
		Name: name, Cat: cat, Ph: "X", TS: start, Dur: dur,
		PID: pid, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// Instant records a point-in-time ("ph":"i") event.  Safe on nil.
func (t *Trace) Instant(pid, tid int, name, cat string, at uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, chromeEvent{
		Name: name, Cat: cat, Ph: "i", TS: at, PID: pid, TID: tid,
		Args: map[string]any{"s": "t"},
	})
	t.mu.Unlock()
}

// NameProcess labels a pid track group in the viewer.  Safe on nil.
func (t *Trace) NameProcess(pid int, name string) {
	t.metadata("process_name", pid, 0, name)
}

// NameThread labels one (pid, tid) track in the viewer.  Safe on nil.
func (t *Trace) NameThread(pid, tid int, name string) {
	t.metadata("thread_name", pid, tid, name)
}

func (t *Trace) metadata(kind string, pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, chromeEvent{
		Name: kind, Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
}

// Len returns the number of recorded events (metadata included).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON emits the trace as {"traceEvents":[...]} — the JSON Object
// Format accepted by chrome://tracing and Perfetto.  Events are emitted
// in (ts, pid, tid, name) order rather than append order: concurrent
// recorders (runner workers, parallel event domains) interleave their
// appends nondeterministically, and sorting keeps the file byte-stable
// across runs of the same simulation.
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := make([]chromeEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
