package telemetry

import (
	"encoding/json"
	"io"
)

// Sampler records a cycle-indexed time series of tracked gauges.  The
// chip arms it with an interval; the event loop calls Sample whenever
// simulated time crosses the next sample point (a single uint64 compare
// per event when armed, nothing when the chip's sample cycle is left at
// its +inf default).
//
// The sampler is single-writer by design — it belongs to one chip and is
// only advanced from that chip's event loop.
type Sampler struct {
	interval uint64
	names    []string
	sources  []func() float64
	cycles   []uint64
	rows     [][]float64
	notify   func(cycle uint64, names []string, row []float64)
}

// NewSampler returns a sampler that wants one row every interval cycles
// (intervals below 1 are clamped to 1).
func NewSampler(interval uint64) *Sampler {
	if interval < 1 {
		interval = 1
	}
	return &Sampler{interval: interval}
}

// Interval returns the sampling period in cycles.
func (s *Sampler) Interval() uint64 {
	if s == nil {
		return 0
	}
	return s.interval
}

// Track adds a named series evaluated at every subsequent sample point.
// A series added mid-run reads 0 for the rows recorded before it.  Safe
// on nil.
func (s *Sampler) Track(name string, fn func() float64) {
	if s == nil {
		return
	}
	s.names = append(s.names, name)
	s.sources = append(s.sources, fn)
}

// SetNotify installs a hook invoked synchronously after every recorded
// row, on the sampling (chip event loop) goroutine.  The observability
// server uses it to publish live snapshots from the goroutine that owns
// the counters, keeping scrapes off the simulator's sharing model.  The
// receiver must copy names/row if it retains them past the call.
func (s *Sampler) SetNotify(fn func(cycle uint64, names []string, row []float64)) {
	if s == nil {
		return
	}
	s.notify = fn
}

// Sample appends one row for the given cycle.  Safe on nil.
//
//lint:hot cold fires at the user-set sampling cadence, not per event
func (s *Sampler) Sample(cycle uint64) {
	if s == nil {
		return
	}
	row := make([]float64, len(s.sources))
	for i, fn := range s.sources {
		row[i] = fn()
	}
	s.cycles = append(s.cycles, cycle)
	s.rows = append(s.rows, row)
	if s.notify != nil {
		s.notify(cycle, s.names, row)
	}
}

// Len returns the number of rows recorded.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	return len(s.cycles)
}

// Series is one tracked metric's sampled trajectory.
type Series struct {
	Name   string    `json:"name"`
	Cycles []uint64  `json:"cycles"`
	Values []float64 `json:"values"`
}

// Series transposes the recorded rows into per-metric series.
func (s *Sampler) Series() []Series {
	if s == nil {
		return nil
	}
	out := make([]Series, len(s.names))
	for i, name := range s.names {
		vals := make([]float64, len(s.rows))
		for j, row := range s.rows {
			if i < len(row) { // series added mid-run: earlier rows read 0
				vals[j] = row[i]
			}
		}
		out[i] = Series{Name: name, Cycles: s.cycles, Values: vals}
	}
	return out
}

// WriteJSON dumps the time series as {"interval":N,"series":[...]}.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Interval uint64   `json:"interval"`
		Series   []Series `json:"series"`
	}{s.Interval(), s.Series()})
}
