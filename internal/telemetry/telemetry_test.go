package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestCounterViewTracksSource(t *testing.T) {
	r := NewRegistry()
	var src uint64
	r.CounterView("core3.lsq.nacks", &src)
	if got := r.CounterValue("core3.lsq.nacks"); got != 0 {
		t.Fatalf("fresh view = %d, want 0", got)
	}
	src = 41
	src++
	if got := r.CounterValue("core3.lsq.nacks"); got != 42 {
		t.Fatalf("view = %d, want 42", got)
	}
	if got := r.Snapshot()["core3.lsq.nacks"]; got != 42 {
		t.Fatalf("snapshot = %v, want 42", got)
	}
}

func TestOwnedCounterAndNilSafety(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("owned counter = %d, want 5", c.Value())
	}
	if same := r.Counter("x"); same != c {
		t.Fatal("re-registering an owned counter must return the same counter")
	}
	// Disabled-path contract: nil receivers are no-ops.
	var nc *Counter
	nc.Inc()
	nc.Add(7)
	if nc.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var nh *Histogram
	nh.Observe(9)
	if nh.Count() != 0 || nh.Sum() != 0 || nh.Mean() != 0 || nh.Buckets() != nil {
		t.Fatal("nil histogram must be inert")
	}
	var ns *Sampler
	ns.Sample(10)
	if ns.Len() != 0 || ns.Interval() != 0 || ns.Series() != nil {
		t.Fatal("nil sampler must be inert")
	}
	var nt *Trace
	nt.Span(0, 0, "a", "b", 0, 1, nil)
	nt.Instant(0, 0, "a", "b", 0)
	nt.NameProcess(0, "p")
	nt.NameThread(0, 0, "t")
	if nt.Len() != 0 {
		t.Fatal("nil trace must be inert")
	}
}

func TestGaugeAndSumHelpers(t *testing.T) {
	r := NewRegistry()
	occ := 3
	r.Gauge("proc0.window.occupancy", func() float64 { return float64(occ) })
	var a, b uint64 = 10, 32
	r.CounterView("core0.l1d.accesses", &a)
	r.CounterView("core1.l1d.accesses", &b)
	r.CounterView("core1.l1d.misses", &b)
	if got := r.SumCounters("", ".l1d.accesses"); got != 42 {
		t.Fatalf("SumCounters = %d, want 42", got)
	}
	s := r.Snapshot()
	if s.Get("proc0.window.occupancy") != 3 {
		t.Fatalf("gauge snapshot = %v, want 3", s.Get("proc0.window.occupancy"))
	}
	if got := s.Sum("", ".l1d.accesses"); got != 42 {
		t.Fatalf("Snapshot.Sum = %v, want 42", got)
	}
	occ = 7
	if s.Get("proc0.window.occupancy") != 3 {
		t.Fatal("snapshot must be a point-in-time copy")
	}
}

// Satellite: histogram bucket boundaries.  Bucket 0 is exactly {0};
// bucket i>=1 is [2^(i-1), 2^i-1].
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{16, 5},
		{1<<20 - 1, 20}, {1 << 20, 21},
		{1<<63 - 1, 63}, {1 << 63, 64}, {math.MaxUint64, 64},
	}
	for _, c := range cases {
		h := &Histogram{}
		h.Observe(c.v)
		bs := h.Buckets()
		if len(bs) != 1 {
			t.Fatalf("Observe(%d): %d buckets, want 1", c.v, len(bs))
		}
		lo, hi := BucketBounds(c.bucket)
		if bs[0].Lo != lo || bs[0].Hi != hi || bs[0].Count != 1 {
			t.Fatalf("Observe(%d): bucket [%d,%d]x%d, want [%d,%d]x1",
				c.v, bs[0].Lo, bs[0].Hi, bs[0].Count, lo, hi)
		}
		if c.v < lo || c.v > hi {
			t.Fatalf("Observe(%d): landed outside its bucket [%d,%d]", c.v, lo, hi)
		}
	}
	// Adjacent bucket edges must not overlap or leave gaps.
	for i := 1; i < 64; i++ {
		_, prevHi := BucketBounds(i - 1)
		lo, _ := BucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d starts at %d, want %d", i, lo, prevHi+1)
		}
	}
	h := &Histogram{}
	for v := uint64(0); v <= 16; v++ {
		h.Observe(v)
	}
	if h.Count() != 17 || h.Sum() != 136 {
		t.Fatalf("count/sum = %d/%d, want 17/136", h.Count(), h.Sum())
	}
	if got := h.Mean(); got != 8 {
		t.Fatalf("mean = %v, want 8", got)
	}
}

func TestRegistryWriteJSONDeterministicAndValid(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		var a uint64 = 7
		r.CounterView("noc.opnd.hops", &a)
		r.Counter("z.owned").Add(3)
		r.Gauge("g", func() float64 { return 1.5 })
		h := r.Histogram("proc0.fetch.latency")
		h.Observe(3)
		h.Observe(900)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("WriteJSON must be deterministic across identical registries")
	}
	var doc struct {
		Counters   map[string]uint64  `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count   uint64   `json:"count"`
			Sum     uint64   `json:"sum"`
			Mean    float64  `json:"mean"`
			Buckets []Bucket `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Counters["noc.opnd.hops"] != 7 || doc.Counters["z.owned"] != 3 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	fh := doc.Histograms["proc0.fetch.latency"]
	if fh.Count != 2 || fh.Sum != 903 || len(fh.Buckets) != 2 {
		t.Fatalf("histogram export = %+v", fh)
	}
}

func TestSamplerSeries(t *testing.T) {
	s := NewSampler(0) // clamps to 1
	if s.Interval() != 1 {
		t.Fatalf("interval = %d, want clamp to 1", s.Interval())
	}
	v := 0.0
	s.Track("a", func() float64 { v++; return v })
	s.Track("b", func() float64 { return -v })
	s.Sample(10)
	s.Sample(20)
	ser := s.Series()
	if len(ser) != 2 || s.Len() != 2 {
		t.Fatalf("series = %d rows = %d", len(ser), s.Len())
	}
	if ser[0].Name != "a" || ser[0].Values[0] != 1 || ser[0].Values[1] != 2 {
		t.Fatalf("series a = %+v", ser[0])
	}
	if ser[1].Cycles[1] != 20 || ser[1].Values[1] != -2 {
		t.Fatalf("series b = %+v", ser[1])
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("sampler JSON invalid")
	}
}

func TestChromeTraceFormat(t *testing.T) {
	tr := &Trace{}
	tr.NameProcess(1, "proc0")
	tr.NameThread(1, 3, "core3")
	tr.Span(1, 3, "blk", "fetch", 100, 140, map[string]any{"seq": 9})
	tr.Span(1, 3, "bad", "x", 50, 40, nil) // end < start clamps
	tr.Instant(1, 3, "flush", "flush", 200)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(doc.TraceEvents))
	}
	// WriteJSON sorts by (ts, pid, tid, name): metadata first, then the
	// clamped span at ts 50, then the real span at ts 100.
	span := doc.TraceEvents[3]
	if span["ph"] != "X" || span["ts"] != 100.0 || span["dur"] != 40.0 ||
		span["pid"] != 1.0 || span["tid"] != 3.0 {
		t.Fatalf("span = %v", span)
	}
	meta := doc.TraceEvents[0]
	if meta["ph"] != "M" || meta["name"] != "process_name" {
		t.Fatalf("metadata = %v", meta)
	}
	// Empty traces still produce a loadable document.
	var empty bytes.Buffer
	if err := (&Trace{}).WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	var emptyDoc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(empty.Bytes(), &emptyDoc); err != nil || emptyDoc.TraceEvents == nil {
		t.Fatalf("empty trace must still emit traceEvents: [] (err=%v)", err)
	}
}

// Race gate: concurrent registration, snapshotting, owned-counter
// increments and trace appends from many goroutines (run under -race by
// ci.sh).  View sources are pre-filled and never written during the
// test — mutating a view's field while another goroutine snapshots is
// outside the library's single-writer contract for views.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	tr := &Trace{}
	fixed := [10]uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.CounterView(fmt.Sprintf("g%d.c%d", g, i%10), &fixed[i%10])
				r.Counter("shared").Inc()
				r.Gauge(fmt.Sprintf("g%d.gauge", g), func() float64 { return float64(g) })
				r.Histogram("shared.hist")
				_ = r.Snapshot()
				_ = r.Names()
				_ = r.SumCounters("g", "")
				tr.Span(g, i, "job", "job", uint64(i), uint64(i+1), nil)
			}
		}(g)
	}
	wg.Wait()
	if got := r.CounterValue("shared"); got != 8*200 {
		t.Fatalf("shared counter = %d, want 1600", got)
	}
	if tr.Len() != 8*200 {
		t.Fatalf("trace events = %d, want 1600", tr.Len())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil || !json.Valid(buf.Bytes()) {
		t.Fatalf("concurrent registry JSON invalid (err=%v)", err)
	}
}
