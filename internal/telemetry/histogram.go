package telemetry

import "math/bits"

// Histogram accumulates uint64 samples into power-of-two buckets:
// bucket 0 holds the value 0, bucket i (i >= 1) holds [2^(i-1), 2^i - 1].
// That is the classic latency-distribution shape — cheap (one bits.Len64
// per observation), fixed-size, and exact about counts.
//
// All methods are nil-safe: a disabled instrumentation point holds a nil
// *Histogram and each Observe call compiles to a nil check.
type Histogram struct {
	counts [65]uint64
	sum    uint64
	total  uint64
}

// bucketIndex maps a sample to its bucket: bits.Len64(0)=0, so zero
// lands in bucket 0 and v>=1 lands in bucket floor(log2(v))+1.
func bucketIndex(v uint64) int { return bits.Len64(v) }

// BucketBounds returns the inclusive [lo, hi] range of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	lo = 1 << uint(i-1)
	if i == 64 {
		return lo, ^uint64(0)
	}
	return lo, 1<<uint(i) - 1
}

// Observe records one sample.  Safe on nil.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)]++
	h.sum += v
	h.total++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Bucket is one non-empty histogram bucket with its value range.
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Buckets lists the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: n})
	}
	return out
}
