package edgegen

import (
	"strings"
	"testing"

	"github.com/clp-sim/tflex/internal/arch"
)

// TestGenSpecDeterministic pins the seed contract: same seed, same
// program text, same input.
func TestGenSpecDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a, b := GenSpec(seed), GenSpec(seed)
		if a.Asm() != b.Asm() {
			t.Fatalf("seed %d: two generations render different programs", seed)
		}
		ia, ib := a.Input(), b.Input()
		if ia.Regs != ib.Regs || string(ia.Mem) != string(ib.Mem) {
			t.Fatalf("seed %d: two generations produce different inputs", seed)
		}
	}
}

// TestGenSpecBuildsAndRuns drives many seeds through the full pipeline:
// every generated Spec must validate, assemble, and run to a halt on
// the functional executor within its own bounds.
func TestGenSpecBuildsAndRuns(t *testing.T) {
	var withStore, withLoop, withSelect, withGuard, withLoad int
	for seed := int64(0); seed < 300; seed++ {
		s := GenSpec(seed)
		p, err := s.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v\nprogram:\n%s", seed, err, s.Asm())
		}
		st, err := (arch.Functional{}).Run(p, s.Input())
		if err != nil {
			t.Fatalf("seed %d: run: %v\nprogram:\n%s", seed, err, s.Asm())
		}
		if st.Blocks == 0 {
			t.Fatalf("seed %d: retired zero blocks", seed)
		}
		for _, blk := range s.Blocks {
			if blk.Term.Kind == TLoop {
				withLoop++
			}
			for _, op := range blk.Ops {
				switch op.Kind {
				case KStore:
					withStore++
					if op.Guard >= 0 {
						withGuard++
					}
				case KSelect:
					withSelect++
				case KLoad:
					withLoad++
				}
			}
		}
	}
	// Feature coverage: the corpus must actually exercise the surfaces
	// the fuzzer exists to test.
	if withStore == 0 || withLoop == 0 || withSelect == 0 || withGuard == 0 || withLoad == 0 {
		t.Errorf("degenerate corpus: stores=%d loops=%d selects=%d guarded=%d loads=%d",
			withStore, withLoop, withSelect, withGuard, withLoad)
	}
}

// TestSpecValidateRejects pins that Spec.Validate catches the
// structural corruption a buggy shrinking pass could introduce.
func TestSpecValidateRejects(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Mem: make([]byte, DataBytes),
			Blocks: []BlockSpec{
				{Ops: []OpSpec{{Kind: KConst, Imm: 1, A: -1, B: -1, C: -1, Guard: -1}},
					Term: TermSpec{Kind: TBranch, To1: 1}},
				{Ops: []OpSpec{{Kind: KConst, Imm: 2, A: -1, B: -1, C: -1, Guard: -1}},
					Term: TermSpec{Kind: THalt}},
			},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
	cases := []struct {
		name    string
		corrupt func(*Spec)
		want    string
	}{
		{"backward branch", func(s *Spec) { s.Blocks[1].Term = TermSpec{Kind: TBranch, To1: 0} }, "not a forward block"},
		{"self-referential operand", func(s *Spec) {
			s.Blocks[0].Ops[0] = OpSpec{Kind: KALUImm, A: 0, B: -1, C: -1, Guard: -1}
		}, "at or after itself"},
		{"operand out of range", func(s *Spec) {
			s.Blocks[0].Ops = append(s.Blocks[0].Ops, OpSpec{Kind: KWrite, Reg: 3, A: 9, B: -1, C: -1, Guard: -1})
		}, "out of range"},
		{"double write", func(s *Spec) {
			s.Blocks[0].Ops = append(s.Blocks[0].Ops,
				OpSpec{Kind: KWrite, Reg: 3, A: 0, B: -1, C: -1, Guard: -1},
				OpSpec{Kind: KWrite, Reg: 3, A: 0, B: -1, C: -1, Guard: -1})
		}, "writes r3 twice"},
		{"write to loop register", func(s *Spec) {
			s.Blocks[0].Ops = append(s.Blocks[0].Ops, OpSpec{Kind: KWrite, Reg: loopRegBase, A: 0, B: -1, C: -1, Guard: -1})
		}, "outside the general window"},
		{"zero-trip loop", func(s *Spec) {
			s.Blocks[0].Term = TermSpec{Kind: TLoop, Trips: 0, To1: 1}
		}, "0 trips"},
		{"store referencing value-less slot", func(s *Spec) {
			s.Blocks[0].Ops = append(s.Blocks[0].Ops,
				OpSpec{Kind: KWrite, Reg: 3, A: 0, B: -1, C: -1, Guard: -1},
				OpSpec{Kind: KStore, A: 1, B: 0, Size: 8, C: -1, Guard: -1})
		}, "value-less op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.corrupt(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("corrupted spec accepted (want error containing %q)", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

// TestCloneIsDeep pins that shrink candidates cannot alias the parent.
func TestCloneIsDeep(t *testing.T) {
	s := GenSpec(7)
	c := s.Clone()
	c.Blocks[0].Ops[0] = OpSpec{Kind: KConst, Imm: 99, A: -1, B: -1, C: -1, Guard: -1}
	c.Mem[0] ^= 0xff
	if s.Blocks[0].Ops[0] == c.Blocks[0].Ops[0] {
		t.Error("Clone shares op storage with the parent")
	}
	if s.Mem[0] == c.Mem[0] {
		t.Error("Clone shares the memory image with the parent")
	}
}
