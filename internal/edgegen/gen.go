package edgegen

import (
	"math/rand"

	"github.com/clp-sim/tflex/internal/isa"
)

// Generation ceilings.  Instruction budget per block after lowering:
// each op costs at most 4 instructions (store: and+add+store+null),
// fan-out movs are bounded by total operand uses, and a loop
// terminator adds 5 — maxOps*4 + uses + loop stays comfortably under
// the 128-instruction block limit, and memory ops stay under the
// 32-LSID limit.
const (
	minBlocks    = 2
	maxBlocks    = 6
	minOps       = 3
	maxOps       = 13
	maxMemPerBlk = 8
	maxTrips     = 4
)

// aluOps is the opcode pool for KALU/KALUImm.  Division and remainder
// are included deliberately: divide-by-zero is defined (result 0) and
// shared through exec.EvalALU, so it is exactly the kind of edge every
// executor must agree on.  The FP ops run on register bit patterns;
// all executors share one evaluator, so NaN propagation is identical.
var aluOps = []isa.Opcode{
	isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpDivU, isa.OpMod,
	isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSra,
	isa.OpEq, isa.OpNe, isa.OpLt, isa.OpLe, isa.OpLtU, isa.OpLeU,
	isa.OpFAdd, isa.OpFSub, isa.OpFMul,
}

// immOps excludes the FP opcodes, which cannot take immediates.
var immOps = aluOps[:len(aluOps)-3]

var memSizes = []uint8{1, 2, 4, 8}

// GenSpec deterministically generates a random valid program spec from
// the seed: same seed, same Spec, same program, same input — the
// property the corpus gate, seed replay (tflexsim -fuzz-seed) and
// native fuzzing all rely on.
func GenSpec(seed int64) *Spec {
	r := rand.New(rand.NewSource(seed))
	s := &Spec{Seed: seed}
	for i := range s.InitRegs {
		s.InitRegs[i] = r.Uint64()
	}
	s.Mem = make([]byte, DataBytes)
	r.Read(s.Mem)

	nb := minBlocks + r.Intn(maxBlocks-minBlocks+1)
	for bi := 0; bi < nb; bi++ {
		s.Blocks = append(s.Blocks, genBlock(r, bi, nb))
	}
	return s
}

func genBlock(r *rand.Rand, bi, nb int) BlockSpec {
	var blk BlockSpec
	nops := minOps + r.Intn(maxOps-minOps+1)
	memOps := 0
	// usable tracks value-producing slots, the legal operand pool.
	var usable []int
	written := map[uint8]bool{}
	pick := func() int { return usable[r.Intn(len(usable))] }
	for oi := 0; oi < nops; oi++ {
		op := genOp(r, oi, usable, pick, written, &memOps)
		if op.Kind.producesValue() {
			usable = append(usable, oi)
		}
		blk.Ops = append(blk.Ops, op)
	}

	last := bi == nb-1
	switch {
	case last:
		blk.Term = TermSpec{Kind: THalt}
	default:
		fwd := func() int { return bi + 1 + r.Intn(nb-bi-1) }
		switch r.Intn(5) {
		case 0:
			blk.Term = TermSpec{Kind: TBranch, To1: fwd()}
		case 1, 2:
			blk.Term = TermSpec{Kind: TBranchIf, P: pick(), To1: fwd(), To2: fwd()}
		case 3:
			blk.Term = TermSpec{Kind: TLoop, Trips: int64(1 + r.Intn(maxTrips)), To1: fwd()}
		default:
			blk.Term = TermSpec{Kind: TBranch, To1: bi + 1}
		}
	}
	return blk
}

func genOp(r *rand.Rand, oi int, usable []int, pick func() int, written map[uint8]bool, memOps *int) OpSpec {
	op := OpSpec{A: -1, B: -1, C: -1, Guard: -1}
	// The first op of a block must produce a value so every later op
	// (and the terminator) has an operand pool.
	kind := r.Intn(10)
	if len(usable) == 0 {
		kind = r.Intn(2) // KConst or KRead
	}
	switch kind {
	case 0: // constant: small values dominate so compares/shifts bite
		op.Kind = KConst
		if r.Intn(4) == 0 {
			op.Imm = int64(r.Uint64())
		} else {
			op.Imm = int64(r.Intn(512)) - 128
		}
	case 1, 2:
		op.Kind = KRead
		op.Reg = uint8(1 + r.Intn(NumGenRegs))
	case 3, 4, 5:
		op.Kind = KALU
		op.Op = aluOps[r.Intn(len(aluOps))]
		op.A, op.B = pick(), pick()
	case 6:
		op.Kind = KALUImm
		op.Op = immOps[r.Intn(len(immOps))]
		op.A = pick()
		op.Imm = int64(r.Intn(256)) - 64
	case 7:
		if *memOps >= maxMemPerBlk {
			op.Kind = KRead
			op.Reg = uint8(1 + r.Intn(NumGenRegs))
			break
		}
		*memOps++
		op.Kind = KLoad
		op.A = pick()
		op.Size = memSizes[r.Intn(len(memSizes))]
		op.Signed = r.Intn(2) == 0
	case 8:
		if *memOps >= maxMemPerBlk {
			op.Kind = KSelect
			op.A, op.B, op.C = pick(), pick(), pick()
			break
		}
		*memOps++
		op.Kind = KStore
		op.A, op.B = pick(), pick()
		op.Size = memSizes[r.Intn(len(memSizes))]
		if r.Intn(2) == 0 {
			op.Guard = pick()
			op.GuardNeg = r.Intn(2) == 0
		}
	default:
		reg := uint8(1 + r.Intn(NumGenRegs))
		if written[reg] {
			// One write per register per block; fall back to a select
			// so the op still exercises predication.
			op.Kind = KSelect
			op.A, op.B, op.C = pick(), pick(), pick()
			break
		}
		written[reg] = true
		op.Kind = KWrite
		op.Reg = reg
		op.A = pick()
		if r.Intn(2) == 0 {
			op.Guard = pick()
			op.GuardNeg = r.Intn(2) == 0
		}
	}
	return op
}
