// Package edgegen generates random valid EDGE block programs for
// differential testing, in the spirit of microsmith-style compiler
// fuzzing: a seeded generator emits a small program-shaped IR (Spec),
// the IR renders to the textual assembly grammar, and the assembler
// lowers it through the hardened builder/validation pipeline.  Every
// program respects the architectural limits — at most 128 instructions
// and 32 reads/writes/memory-ops per block — and terminates by
// construction: inter-block control flow is a forward DAG, and loops
// are self-loops with bounded trip counts on dedicated loop registers.
//
// Spec, not the built program, is the unit of shrinking: the fuzz
// harness mutates Specs (dropping blocks, simplifying terminators,
// neutralizing ops) and rebuilds, so every shrink candidate is again a
// valid program expressible in the assembly grammar.
package edgegen

import (
	"fmt"
	"strings"

	"github.com/clp-sim/tflex/internal/arch"
	"github.com/clp-sim/tflex/internal/asm"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// Generated programs confine their memory traffic to a small data
// region so images stay comparable and dumps stay readable.  Every
// load/store address is computed as DataBase + (value & alignment
// mask), which keeps all accesses in [DataBase, DataBase+DataBytes).
const (
	DataBase  uint64 = 0x0040_0000
	DataBytes        = 512
)

// NumGenRegs is how many general registers (r1..r12) generated code
// reads and writes.  Loop counters live far away at loopRegBase so a
// generated write can never corrupt a trip count.
const (
	NumGenRegs  = 12
	loopRegBase = 64
)

// Run bounds for generated programs: tight enough that a runaway
// executor fails in milliseconds, generous enough that no valid
// generated program (worst case: every block a max-trip loop) can hit
// them.  Shared by Spec.Input and .tfa reproducer replay.
const (
	RunMaxBlocks uint64 = 1 << 14
	RunMaxCycles uint64 = 1 << 24
)

// OpKind classifies one Spec operation.  Every op owns one value slot;
// KStore and KWrite produce nothing and their slots must never be
// referenced (Validate enforces it), which keeps slot indices stable
// when a shrinking pass replaces an op in place.
type OpKind uint8

const (
	KConst OpKind = iota
	KRead
	KALU
	KALUImm
	KLoad
	KSelect
	KStore
	KWrite
)

// OpSpec is one operation of a block body.
type OpSpec struct {
	Kind OpKind
	Op   isa.Opcode // KALU, KALUImm
	// A, B, C are value-slot operands (-1 unused): KALU uses A,B;
	// KALUImm and KWrite use A; KLoad uses A as the address seed;
	// KSelect uses A (predicate), B, C; KStore uses A (address seed)
	// and B (data).
	A, B, C  int
	Imm      int64 // KConst, KALUImm
	Reg      uint8 // KRead, KWrite
	Size     uint8 // KLoad, KStore: 1, 2, 4 or 8
	Signed   bool  // KLoad
	Guard    int   // KStore, KWrite: predicate slot or -1
	GuardNeg bool  // guard sense: true = "unless"
}

// TermKind classifies a block terminator.
type TermKind uint8

const (
	THalt TermKind = iota
	TBranch
	TBranchIf
	TLoop
)

// TermSpec is a block terminator.  All targets are forward block
// indices (strictly greater than the block's own), except the implicit
// self-edge of TLoop.
type TermSpec struct {
	Kind     TermKind
	P        int   // TBranchIf: predicate slot
	To1, To2 int   // TBranch/TLoop use To1; TBranchIf uses both
	Trips    int64 // TLoop: trip count >= 1
}

// BlockSpec is one block: an op list and a terminator.
type BlockSpec struct {
	Ops  []OpSpec
	Term TermSpec
}

// Spec is a complete generated program plus its initial architectural
// state.  Build/Asm/Input are pure functions of the Spec, so a Spec
// (not a seed) is the reproducer the shrinker minimizes.
type Spec struct {
	Seed     int64
	InitRegs [NumGenRegs]uint64 // r1..r12
	Mem      []byte             // initial image at DataBase
	Blocks   []BlockSpec
}

// producesValue reports whether the op kind fills its value slot.
func (k OpKind) producesValue() bool { return k != KStore && k != KWrite }

// Validate checks Spec-level structure: operand slots reference earlier
// value-producing ops, guards likewise, write registers stay inside the
// general-register window, at most one write per register per block
// (two non-complementary producers of one write slot would deadlock the
// dataflow), and control flow is forward-only with positive trip
// counts.  Program-level ISA constraints are rechecked downstream by
// prog.Validate when the Spec is built.
func (s *Spec) Validate() error {
	nb := len(s.Blocks)
	if nb == 0 {
		return fmt.Errorf("edgegen: no blocks")
	}
	for bi, blk := range s.Blocks {
		ref := func(slot int, what string) error {
			if slot < 0 || slot >= len(blk.Ops) {
				return fmt.Errorf("edgegen: b%d: %s slot %d out of range", bi, what, slot)
			}
			if !blk.Ops[slot].Kind.producesValue() {
				return fmt.Errorf("edgegen: b%d: %s slot %d names a value-less op", bi, what, slot)
			}
			return nil
		}
		written := map[uint8]bool{}
		for oi, op := range blk.Ops {
			operands := []struct {
				slot int
				used bool
			}{
				{op.A, op.Kind == KALU || op.Kind == KALUImm || op.Kind == KLoad || op.Kind == KSelect || op.Kind == KStore || op.Kind == KWrite},
				{op.B, op.Kind == KALU || op.Kind == KSelect || op.Kind == KStore},
				{op.C, op.Kind == KSelect},
			}
			for _, o := range operands {
				if !o.used {
					continue
				}
				if err := ref(o.slot, fmt.Sprintf("op %d operand", oi)); err != nil {
					return err
				}
				if o.slot >= oi {
					return fmt.Errorf("edgegen: b%d: op %d references slot %d at or after itself", bi, oi, o.slot)
				}
			}
			switch op.Kind {
			case KLoad, KStore:
				switch op.Size {
				case 1, 2, 4, 8:
				default:
					return fmt.Errorf("edgegen: b%d: op %d has size %d", bi, oi, op.Size)
				}
			case KRead:
				if op.Reg < 1 || op.Reg > NumGenRegs {
					return fmt.Errorf("edgegen: b%d: op %d reads r%d outside the general window", bi, oi, op.Reg)
				}
			case KWrite:
				if op.Reg < 1 || op.Reg > NumGenRegs {
					return fmt.Errorf("edgegen: b%d: op %d writes r%d outside the general window", bi, oi, op.Reg)
				}
				if written[op.Reg] {
					return fmt.Errorf("edgegen: b%d: op %d writes r%d twice in one block", bi, oi, op.Reg)
				}
				written[op.Reg] = true
			}
			if op.Kind == KStore || op.Kind == KWrite {
				if op.Guard >= 0 {
					if err := ref(op.Guard, fmt.Sprintf("op %d guard", oi)); err != nil {
						return err
					}
					if op.Guard >= oi {
						return fmt.Errorf("edgegen: b%d: op %d guard slot %d at or after itself", bi, oi, op.Guard)
					}
				}
			}
		}
		t := blk.Term
		forward := func(to int, what string) error {
			if to <= bi || to >= nb {
				return fmt.Errorf("edgegen: b%d: %s target b%d is not a forward block", bi, what, to)
			}
			return nil
		}
		switch t.Kind {
		case THalt:
		case TBranch:
			if err := forward(t.To1, "branch"); err != nil {
				return err
			}
		case TBranchIf:
			if err := ref(t.P, "branch predicate"); err != nil {
				return err
			}
			if err := forward(t.To1, "then"); err != nil {
				return err
			}
			if err := forward(t.To2, "else"); err != nil {
				return err
			}
		case TLoop:
			if t.Trips < 1 {
				return fmt.Errorf("edgegen: b%d: loop with %d trips", bi, t.Trips)
			}
			if err := forward(t.To1, "loop exit"); err != nil {
				return err
			}
		default:
			return fmt.Errorf("edgegen: b%d: unknown terminator %d", bi, t.Kind)
		}
	}
	return nil
}

// aluNames maps the ALU opcodes the generator emits to their assembly
// mnemonics.  Kept in spec.go because Asm is the canonical lowering.
var aluNames = map[isa.Opcode]string{
	isa.OpAdd: "add", isa.OpSub: "sub", isa.OpMul: "mul",
	isa.OpDiv: "div", isa.OpDivU: "divu", isa.OpMod: "mod",
	isa.OpAnd: "and", isa.OpOr: "or", isa.OpXor: "xor",
	isa.OpShl: "shl", isa.OpShr: "shr", isa.OpSra: "sra",
	isa.OpEq: "eq", isa.OpNe: "ne", isa.OpLt: "lt", isa.OpLe: "le",
	isa.OpLtU: "ltu", isa.OpLeU: "leu",
	isa.OpFAdd: "fadd", isa.OpFSub: "fsub", isa.OpFMul: "fmul",
}

// Asm renders the Spec in the textual assembly grammar (internal/asm)
// — the same text a .tfa reproducer dump contains.  Build assembles
// exactly this text, so a dumped program and the harness's in-memory
// program are one and the same by construction.
func (s *Spec) Asm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; edgegen seed=%d\n", s.Seed)
	for bi, blk := range s.Blocks {
		fmt.Fprintf(&b, "block b%d:\n", bi)
		v := func(slot int) string { return fmt.Sprintf("%%b%dv%d", bi, slot) }
		// addr emits the two-op address computation confining a memory
		// access to the data region, returning the address value name.
		addr := func(oi int, seed int, size uint8) string {
			mask := int64(DataBytes-1) &^ int64(size-1)
			fmt.Fprintf(&b, "    %%b%da%d = and %s, #%d\n", bi, oi, v(seed), mask)
			fmt.Fprintf(&b, "    %%b%dm%d = add %%b%da%d, #%d\n", bi, oi, bi, oi, int64(DataBase))
			return fmt.Sprintf("%%b%dm%d", bi, oi)
		}
		guard := func(op OpSpec) string {
			if op.Guard < 0 {
				return ""
			}
			if op.GuardNeg {
				return " unless " + v(op.Guard)
			}
			return " if " + v(op.Guard)
		}
		for oi, op := range blk.Ops {
			switch op.Kind {
			case KConst:
				fmt.Fprintf(&b, "    %s = const %d\n", v(oi), op.Imm)
			case KRead:
				fmt.Fprintf(&b, "    %s = read r%d\n", v(oi), op.Reg)
			case KALU:
				fmt.Fprintf(&b, "    %s = %s %s, %s\n", v(oi), aluNames[op.Op], v(op.A), v(op.B))
			case KALUImm:
				fmt.Fprintf(&b, "    %s = %s %s, #%d\n", v(oi), aluNames[op.Op], v(op.A), op.Imm)
			case KLoad:
				a := addr(oi, op.A, op.Size)
				if op.Signed {
					fmt.Fprintf(&b, "    %s = load.%d %s, signed\n", v(oi), op.Size, a)
				} else {
					fmt.Fprintf(&b, "    %s = load.%d %s\n", v(oi), op.Size, a)
				}
			case KSelect:
				fmt.Fprintf(&b, "    %s = select %s, %s, %s\n", v(oi), v(op.A), v(op.B), v(op.C))
			case KStore:
				a := addr(oi, op.A, op.Size)
				fmt.Fprintf(&b, "    store.%d %s, %s%s\n", op.Size, a, v(op.B), guard(op))
			case KWrite:
				fmt.Fprintf(&b, "    write r%d, %s%s\n", op.Reg, v(op.A), guard(op))
			}
		}
		switch t := blk.Term; t.Kind {
		case THalt:
			fmt.Fprintf(&b, "    halt\n")
		case TBranch:
			fmt.Fprintf(&b, "    branch b%d\n", t.To1)
		case TBranchIf:
			fmt.Fprintf(&b, "    branch b%d if %s else b%d\n", t.To1, v(t.P), t.To2)
		case TLoop:
			lr := loopRegBase + bi
			fmt.Fprintf(&b, "    %%b%dli = read r%d\n", bi, lr)
			fmt.Fprintf(&b, "    %%b%dli2 = add %%b%dli, #1\n", bi, bi)
			fmt.Fprintf(&b, "    write r%d, %%b%dli2\n", lr, bi)
			fmt.Fprintf(&b, "    %%b%dlp = lt %%b%dli2, #%d\n", bi, bi, t.Trips)
			fmt.Fprintf(&b, "    branch b%d if %%b%dlp else b%d\n", bi, bi, t.To1)
		}
	}
	return b.String()
}

// Build lowers the Spec to a laid-out program through the assembly
// grammar and the builder's validation pipeline.
func (s *Spec) Build() (*prog.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return asm.Assemble(s.Asm())
}

// Input returns the initial architectural state for running the Spec:
// seeded general registers, zeroed loop counters, and the data-region
// image.  Bounds are tight — generated programs retire well under a
// hundred blocks, so a runaway executor fails fast.
func (s *Spec) Input() arch.Input {
	var in arch.Input
	for i, rv := range s.InitRegs {
		in.Regs[1+i] = rv
	}
	in.MemBase = DataBase
	in.Mem = append([]byte(nil), s.Mem...)
	in.MaxBlocks = RunMaxBlocks
	in.MaxCycles = RunMaxCycles
	return in
}

// Size is the shrinking metric: total ops plus blocks.  Smaller is a
// better reproducer.
func (s *Spec) Size() int {
	n := len(s.Blocks)
	for _, blk := range s.Blocks {
		n += len(blk.Ops)
	}
	return n
}

// Clone deep-copies the Spec so shrinking passes can mutate freely.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Mem = append([]byte(nil), s.Mem...)
	c.Blocks = make([]BlockSpec, len(s.Blocks))
	for i, blk := range s.Blocks {
		c.Blocks[i] = BlockSpec{Ops: append([]OpSpec(nil), blk.Ops...), Term: blk.Term}
	}
	return &c
}
