// Package profiling wires the -cpuprofile/-memprofile flags of the
// command-line tools to runtime/pprof.  The resulting profiles feed the
// optimization workflow documented in the README: profile a
// representative run, find the hottest frame, fix it, re-measure with
// `ci.sh bench`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (if cpu is non-empty) and returns a stop
// function that finishes the CPU profile and writes the allocation
// profile (if mem is non-empty).  The stop function must run before the
// process exits for the profiles to be complete; commands defer it on
// their success path, so profiles of failed runs may be truncated.
func Start(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently freed objects so inuse_* is accurate
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
