package exec

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// Machine runs a program architecturally (no timing): the reference
// semantics every timing simulation must match.
type Machine struct {
	Prog *prog.Program
	Mem  Mem
	Regs [isa.NumRegs]uint64

	// Trace, if non-nil, accumulates the linearized dynamic instruction
	// stream for the conventional-superscalar model.
	Trace *Trace

	// OnStore, if non-nil, observes every committed store in commit order
	// (block retirement order, LSID order within a block).  The harness
	// layers a store-set digest on top without the machine knowing.
	OnStore func(addr uint64, size uint8, val uint64)

	regSrc [isa.NumRegs]int32
}

// NewMachine returns a machine over the program with a fresh paged memory.
func NewMachine(p *prog.Program) *Machine {
	m := &Machine{Prog: p, Mem: NewPageMem()}
	for i := range m.regSrc {
		m.regSrc[i] = -1
	}
	return m
}

// RunStats summarizes an architectural run.
type RunStats struct {
	Blocks uint64
	Fired  uint64 // instructions fired, including fan-out movs
	Useful uint64 // excluding movs and nulls
	Loads  uint64
	Stores uint64
	Halted bool
}

// Run executes from the entry block until halt or maxBlocks blocks.
func (m *Machine) Run(maxBlocks uint64) (RunStats, error) {
	var st RunStats
	blk := m.Prog.EntryBlock()
	if blk == nil {
		return st, fmt.Errorf("exec: no entry block")
	}
	for {
		if st.Blocks >= maxBlocks {
			return st, fmt.Errorf("exec: exceeded %d blocks without halting", maxBlocks)
		}
		var regSrc *[isa.NumRegs]int32
		if m.Trace != nil {
			regSrc = &m.regSrc
		}
		res, err := runBlock(m.Prog, blk, &m.Regs, m.Mem, m.Trace, regSrc)
		if err != nil {
			return st, err
		}
		st.Blocks++
		st.Fired += uint64(res.Fired)
		st.Useful += uint64(res.Useful)
		st.Loads += uint64(res.Loads)
		st.Stores += uint64(len(res.Stores))
		// Commit: register writes, then stores in LSID (program) order —
		// dataflow firing order is not program order, and overlapping
		// stores within a block must commit oldest-first.
		for _, w := range res.Writes {
			m.Regs[w.Reg] = w.Val
		}
		for id := int8(0); id < isa.MaxMemOps; id++ {
			for _, s := range res.Stores {
				if s.LSID == id {
					m.Mem.Store(s.Addr, int(s.Size), s.Val)
					if m.OnStore != nil {
						m.OnStore(s.Addr, s.Size, s.Val)
					}
				}
			}
		}
		if res.Branch.Op == isa.OpHalt {
			st.Halted = true
			return st, nil
		}
		next := m.Prog.BlockAt(res.Branch.Target)
		if next == nil {
			return st, fmt.Errorf("exec: block %s branched to non-block address %#x", blk.Name, res.Branch.Target)
		}
		blk = next
	}
}
