package exec

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// RegWrite is one architectural register update produced by a block.
type RegWrite struct {
	Reg uint8
	Val uint64
}

// StoreOp is one architectural store produced by a block, applied to memory
// in LSID order at commit.
type StoreOp struct {
	LSID int8
	Addr uint64
	Size uint8
	Val  uint64
}

// BranchOut describes the single branch that fired in a block.
type BranchOut struct {
	Op     isa.Opcode
	Exit   uint8
	Target uint64 // resolved next-block address (0 for halt)
}

// BlockResult is the architectural outcome of executing one block.
type BlockResult struct {
	Fired  int // instructions fired, including fan-out movs
	Useful int // fired minus movs/nulls (work a conventional ISA would do)
	Writes []RegWrite
	Stores []StoreOp
	Branch BranchOut
	Loads  int
}

type instStatus uint8

const (
	stWaiting instStatus = iota
	stFired
	stSquashed // predicate mismatch
	stDead     // an operand can never arrive
)

type slotState struct {
	got  bool
	val  uint64
	src  int32 // trace index of producing entry (-1 unknown)
	rem  int   // producers that have not yet fired or died
	need bool
}

type instState struct {
	status     instStatus
	left       slotState
	right      slotState
	pred       slotState
	predOK     bool
	deferredLd bool
}

type writeState struct {
	got bool
	val uint64
	src int32
	rem int
}

type lsidState uint8

const (
	lsPending lsidState = iota
	lsStored
	lsNulled
	lsDead
)

// blockRun holds the in-flight dataflow state for one block execution.
type blockRun struct {
	p     *prog.Program
	b     *isa.Block
	mem   Mem
	insts []instState
	wr    []writeState
	lsid  [isa.MaxMemOps]lsidState
	// maxLSID is one past the largest LSID present in the block.
	maxLSID int

	stores   []StoreOp
	storeSrc []int32 // per stores entry: trace index of value producer
	res      BlockResult
	branched bool

	pendingLoads []int
	queue        []delivery

	trace    *Trace
	regSrc   *[isa.NumRegs]int32 // machine-level: last writer trace index per register
	firedIDs []int               // instruction IDs in firing order (for tracing)
	instSrc  []int32             // trace index produced by each fired inst (or forwarded)
}

type delivery struct {
	target isa.Target
	val    uint64
	src    int32
	dead   bool
}

var errTwoValues = fmt.Errorf("two values arrived at one operand slot (predication not complementary)")

// RunBlock executes one block architecturally and returns its outputs.
// Register writes and stores are NOT applied; the caller commits them.
func RunBlock(p *prog.Program, b *isa.Block, regs *[isa.NumRegs]uint64, mem Mem) (*BlockResult, error) {
	return runBlock(p, b, regs, mem, nil, nil)
}

func runBlock(p *prog.Program, b *isa.Block, regs *[isa.NumRegs]uint64, mem Mem, trace *Trace, regSrc *[isa.NumRegs]int32) (*BlockResult, error) {
	r := &blockRun{
		p: p, b: b, mem: mem,
		insts:   make([]instState, len(b.Insts)),
		wr:      make([]writeState, len(b.Writes)),
		trace:   trace,
		regSrc:  regSrc,
		instSrc: make([]int32, len(b.Insts)),
	}
	for i := range r.instSrc {
		r.instSrc[i] = -1
	}
	// Static per-slot producer counts and operand requirements.
	bump := func(t isa.Target) {
		switch t.Kind {
		case isa.TargetWrite:
			r.wr[t.Index].rem++
		case isa.TargetLeft:
			r.insts[t.Index].left.rem++
		case isa.TargetRight:
			r.insts[t.Index].right.rem++
		case isa.TargetPred:
			r.insts[t.Index].pred.rem++
		}
	}
	for _, rd := range b.Reads {
		for _, t := range rd.Targets {
			bump(t)
		}
	}
	for i := range b.Insts {
		for _, t := range b.Insts[i].Targets {
			bump(t)
		}
	}
	for i := range b.Insts {
		in := &b.Insts[i]
		st := &r.insts[i]
		n := in.Op.NumOperands()
		st.left.need = n >= 1
		st.right.need = n >= 2 && !(in.HasImm && !in.Op.IsMem())
		st.pred.need = in.Pred != isa.PredNone
		if in.Op.IsMem() && int(in.LSID)+1 > r.maxLSID {
			r.maxLSID = int(in.LSID) + 1
		}
		if in.Op == isa.OpNull && in.NullLSID >= 0 && int(in.NullLSID)+1 > r.maxLSID {
			r.maxLSID = int(in.NullLSID) + 1
		}
	}
	// Seed: register reads deliver, and zero-operand unpredicated
	// instructions fire immediately.
	for _, rd := range b.Reads {
		src := int32(-1)
		if regSrc != nil {
			src = regSrc[rd.Reg]
		}
		for _, t := range rd.Targets {
			r.queue = append(r.queue, delivery{target: t, val: regs[rd.Reg], src: src})
		}
	}
	for i := range b.Insts {
		if b.Insts[i].Op == isa.OpNop {
			r.insts[i].status = stDead // unused slot in the 128-slot format
			continue
		}
		st := &r.insts[i]
		if !st.left.need && !st.right.need && !st.pred.need {
			if err := r.fire(i); err != nil {
				return nil, err
			}
		}
	}
	if err := r.drain(); err != nil {
		return nil, fmt.Errorf("block %s: %w", b.Name, err)
	}
	// Validation: one branch, all store slots resolved, no stuck loads.
	if !r.branched {
		return nil, fmt.Errorf("block %s: no branch fired", b.Name)
	}
	if len(r.pendingLoads) > 0 {
		return nil, fmt.Errorf("block %s: %d loads deadlocked on unresolved stores", b.Name, len(r.pendingLoads))
	}
	for id := 0; id < r.maxLSID; id++ {
		if r.hasStoreLSID(int8(id)) && r.lsid[id] == lsPending {
			return nil, fmt.Errorf("block %s: store LSID %d unresolved", b.Name, id)
		}
		if r.hasStoreLSID(int8(id)) && r.lsid[id] == lsDead {
			return nil, fmt.Errorf("block %s: store LSID %d dead on all paths", b.Name, id)
		}
	}
	// Collect register writes; slots with no value are null writes.
	for i := range r.wr {
		if r.wr[i].got {
			r.res.Writes = append(r.res.Writes, RegWrite{Reg: b.Writes[i].Reg, Val: r.wr[i].val})
		}
	}
	r.res.Stores = r.stores
	r.emitTrace()
	return &r.res, nil
}

func (r *blockRun) hasStoreLSID(id int8) bool {
	for i := range r.b.Insts {
		in := &r.b.Insts[i]
		if (in.Op == isa.OpStore && in.LSID == id) || (in.Op == isa.OpNull && in.NullLSID == id) {
			return true
		}
	}
	return false
}

func (r *blockRun) drain() error {
	for len(r.queue) > 0 {
		d := r.queue[0]
		r.queue = r.queue[1:]
		if err := r.deliver(d); err != nil {
			return err
		}
	}
	return nil
}

func (r *blockRun) deliver(d delivery) error {
	if d.target.Kind == isa.TargetWrite {
		w := &r.wr[d.target.Index]
		w.rem--
		if d.dead {
			return nil
		}
		if w.got {
			return fmt.Errorf("write slot %d: %w", d.target.Index, errTwoValues)
		}
		w.got, w.val, w.src = true, d.val, d.src
		return nil
	}
	idx := int(d.target.Index)
	st := &r.insts[idx]
	var slot *slotState
	switch d.target.Kind {
	case isa.TargetLeft:
		slot = &st.left
	case isa.TargetRight:
		slot = &st.right
	case isa.TargetPred:
		slot = &st.pred
	}
	slot.rem--
	if d.dead {
		if slot.rem == 0 && !slot.got && st.status == stWaiting {
			r.kill(idx, stDead)
		}
		return r.retryLoads()
	}
	if st.status != stWaiting {
		// Late arrival at a squashed/dead instruction: drop it.
		return nil
	}
	if slot.got {
		return fmt.Errorf("inst %d (%s): %w", idx, r.b.Insts[idx].Op, errTwoValues)
	}
	slot.got, slot.val, slot.src = true, d.val, d.src
	if d.target.Kind == isa.TargetPred {
		if !PredMatches(r.b.Insts[idx].Pred, d.val) {
			r.kill(idx, stSquashed)
			return r.retryLoads()
		}
		st.predOK = true
	}
	if r.ready(idx) {
		if err := r.fire(idx); err != nil {
			return err
		}
	}
	return nil
}

func (r *blockRun) ready(idx int) bool {
	st := &r.insts[idx]
	if st.status != stWaiting {
		return false
	}
	if st.left.need && !st.left.got {
		return false
	}
	if st.right.need && !st.right.got {
		return false
	}
	if st.pred.need && !st.predOK {
		return false
	}
	return true
}

// kill marks an instruction squashed or dead and propagates dead tokens.
func (r *blockRun) kill(idx int, status instStatus) {
	st := &r.insts[idx]
	if st.status != stWaiting {
		return
	}
	st.status = status
	in := &r.b.Insts[idx]
	if in.Op == isa.OpStore && r.lsid[in.LSID] == lsPending {
		r.lsid[in.LSID] = lsDead
	}
	if in.Op == isa.OpNull && in.NullLSID >= 0 && r.lsid[in.NullLSID] == lsPending {
		r.lsid[in.NullLSID] = lsDead
	}
	// A nulled store's dead partner does not kill the slot: upgrade
	// happens when the other arm fires (lsStored/lsNulled overwrite lsDead).
	for _, t := range in.Targets {
		r.queue = append(r.queue, delivery{target: t, dead: true})
	}
}

func (r *blockRun) fire(idx int) error {
	st := &r.insts[idx]
	in := &r.b.Insts[idx]
	st.status = stFired

	switch {
	case in.Op == isa.OpLoad:
		// Defer until all older stores are resolved.
		if !r.oldStoresResolved(in.LSID) {
			st.deferredLd = true
			r.pendingLoads = append(r.pendingLoads, idx)
			return nil
		}
		return r.fireLoad(idx)
	case in.Op == isa.OpStore:
		addr := st.left.val + uint64(in.Imm)
		if prev := r.lsid[in.LSID]; prev == lsStored || prev == lsNulled {
			return fmt.Errorf("store LSID %d resolved twice", in.LSID)
		}
		r.lsid[in.LSID] = lsStored
		r.stores = append(r.stores, StoreOp{LSID: in.LSID, Addr: addr, Size: in.MemSize, Val: st.right.val})
		r.storeSrc = append(r.storeSrc, st.right.src)
		r.res.Fired++
		r.res.Useful++
		r.firedIDs = append(r.firedIDs, idx)
		return r.retryLoads()
	case in.Op == isa.OpNull:
		r.res.Fired++
		if in.NullLSID >= 0 {
			if prev := r.lsid[in.NullLSID]; prev == lsStored || prev == lsNulled {
				return fmt.Errorf("store LSID %d resolved twice (null)", in.NullLSID)
			}
			r.lsid[in.NullLSID] = lsNulled
		}
		for _, t := range in.Targets {
			r.queue = append(r.queue, delivery{target: t, dead: true})
		}
		return r.retryLoads()
	case in.Op.IsBranch():
		if r.branched {
			return fmt.Errorf("two branches fired")
		}
		r.branched = true
		r.res.Fired++
		r.res.Useful++
		r.firedIDs = append(r.firedIDs, idx)
		out := BranchOut{Op: in.Op, Exit: in.Exit}
		switch in.Op {
		case isa.OpBro, isa.OpCallo:
			t, ok := r.p.BranchTarget(in)
			if !ok {
				return fmt.Errorf("unresolved branch target %q", in.BranchTo)
			}
			out.Target = t
		case isa.OpRet:
			out.Target = st.left.val
		case isa.OpHalt:
			out.Target = 0
		}
		r.res.Branch = out
		return nil
	default:
		val := EvalALU(in, st.left.val, st.right.val)
		r.res.Fired++
		if in.Op == isa.OpMov {
			// Movs forward their producer's trace identity.
			r.instSrc[idx] = st.left.src
		} else {
			r.res.Useful++
			r.instSrc[idx] = localSrc(idx)
			r.firedIDs = append(r.firedIDs, idx)
		}
		r.send(idx, val)
		return nil
	}
}

func (r *blockRun) fireLoad(idx int) error {
	st := &r.insts[idx]
	in := &r.b.Insts[idx]
	addr := st.left.val + uint64(in.Imm)
	val := r.loadWithForwarding(addr, in)
	r.res.Fired++
	r.res.Useful++
	r.res.Loads++
	r.instSrc[idx] = localSrc(idx)
	r.firedIDs = append(r.firedIDs, idx)
	r.send(idx, val)
	return nil
}

// loadWithForwarding reads memory, overlaying bytes from older same-block
// stores (lower LSID) in LSID order.
func (r *blockRun) loadWithForwarding(addr uint64, in *isa.Inst) uint64 {
	size := int(in.MemSize)
	buf := make([]byte, size)
	base := r.mem.Load(addr, size, false)
	for i := 0; i < size; i++ {
		buf[i] = byte(base >> (8 * i))
	}
	// Apply overlapping older stores in LSID order.
	for id := int8(0); id < in.LSID; id++ {
		for si := range r.stores {
			s := &r.stores[si]
			if s.LSID != id {
				continue
			}
			for b := 0; b < int(s.Size); b++ {
				off := int64(s.Addr) + int64(b) - int64(addr)
				if off >= 0 && off < int64(size) {
					buf[off] = byte(s.Val >> (8 * b))
				}
			}
		}
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	if in.MemSigned {
		shift := 64 - 8*size
		v = uint64(int64(v<<uint(shift)) >> uint(shift))
	}
	return v
}

func (r *blockRun) oldStoresResolved(lsid int8) bool {
	for id := int8(0); id < lsid; id++ {
		if !r.storeLSIDResolvedOrAbsent(id) {
			return false
		}
	}
	return true
}

func (r *blockRun) storeLSIDResolvedOrAbsent(id int8) bool {
	if r.lsid[id] == lsStored || r.lsid[id] == lsNulled {
		return true
	}
	// The slot may belong to a load (loads don't gate later loads) or be
	// dead/pending.  Pending store => unresolved.  Dead store whose null
	// partner is also dead => unresolved (error caught later); treat as
	// resolved only if no live store instruction can still fire.
	for i := range r.b.Insts {
		in := &r.b.Insts[i]
		isStoreSlot := (in.Op == isa.OpStore && in.LSID == id) || (in.Op == isa.OpNull && in.NullLSID == id)
		if isStoreSlot && r.insts[i].status == stWaiting {
			return false
		}
	}
	return true
}

func (r *blockRun) retryLoads() error {
	if len(r.pendingLoads) == 0 {
		return nil
	}
	still := r.pendingLoads[:0]
	for _, idx := range r.pendingLoads {
		in := &r.b.Insts[idx]
		if r.oldStoresResolved(in.LSID) {
			if err := r.fireLoad(idx); err != nil {
				return err
			}
		} else {
			still = append(still, idx)
		}
	}
	r.pendingLoads = still
	return nil
}

func (r *blockRun) send(idx int, val uint64) {
	in := &r.b.Insts[idx]
	src := r.instSrc[idx]
	for _, t := range in.Targets {
		r.queue = append(r.queue, delivery{target: t, val: val, src: src})
	}
}
