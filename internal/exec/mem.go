// Package exec implements architectural (functional) execution of EDGE
// programs: dataflow firing within blocks, predication with null/dead token
// propagation, load/store ordering by LSID, and sequential block-to-block
// control flow.  It also produces linearized instruction traces for the
// conventional-superscalar comparison model.
//
// The timing simulator reuses this package's ALU evaluation and memory so
// that simulated runs are bit-identical to functional runs — the basis of
// the end-to-end correctness tests.
package exec

import (
	"encoding/binary"
	"math"
	"sort"
)

// Mem is the architectural memory interface.
type Mem interface {
	Load(addr uint64, size int, signed bool) uint64
	Store(addr uint64, size int, val uint64)
}

const pageShift = 12
const pageSize = 1 << pageShift

// PageMem is a sparse paged byte-addressable little-endian memory.
// The zero value is ready to use.
type PageMem struct {
	pages map[uint64]*[pageSize]byte
}

// NewPageMem returns an empty memory.
func NewPageMem() *PageMem { return &PageMem{pages: map[uint64]*[pageSize]byte{}} }

func (m *PageMem) page(addr uint64, create bool) *[pageSize]byte {
	if m.pages == nil {
		m.pages = map[uint64]*[pageSize]byte{}
	}
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

func (m *PageMem) readBytes(addr uint64, buf []byte) {
	for i := range buf {
		p := m.page(addr+uint64(i), false)
		if p == nil {
			buf[i] = 0
			continue
		}
		buf[i] = p[(addr+uint64(i))&(pageSize-1)]
	}
}

func (m *PageMem) writeBytes(addr uint64, buf []byte) {
	for i := range buf {
		p := m.page(addr+uint64(i), true)
		p[(addr+uint64(i))&(pageSize-1)] = buf[i]
	}
}

// Load reads size bytes (1, 2, 4 or 8) at addr, sign- or zero-extending.
func (m *PageMem) Load(addr uint64, size int, signed bool) uint64 {
	var buf [8]byte
	m.readBytes(addr, buf[:size])
	v := binary.LittleEndian.Uint64(buf[:])
	if signed {
		shift := 64 - 8*size
		v = uint64(int64(v<<uint(shift)) >> uint(shift))
	}
	return v
}

// Store writes the low size bytes of val at addr.
func (m *PageMem) Store(addr uint64, size int, val uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	m.writeBytes(addr, buf[:size])
}

// Convenience accessors for harnesses and tests.

func (m *PageMem) Read64(addr uint64) uint64       { return m.Load(addr, 8, false) }
func (m *PageMem) Write64(addr uint64, v uint64)   { m.Store(addr, 8, v) }
func (m *PageMem) Read32(addr uint64) uint32       { return uint32(m.Load(addr, 4, false)) }
func (m *PageMem) Write32(addr uint64, v uint32)   { m.Store(addr, 4, uint64(v)) }
func (m *PageMem) ReadF64(addr uint64) float64     { return math.Float64frombits(m.Read64(addr)) }
func (m *PageMem) WriteF64(addr uint64, v float64) { m.Write64(addr, math.Float64bits(v)) }

// Digest returns an FNV-1a hash of the memory image: page numbers in
// ascending order followed by page contents, skipping all-zero pages so
// the digest is insensitive to whether an untouched page was ever
// materialized.  Two memories with identical architectural contents
// produce identical digests regardless of access history.
func (m *PageMem) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	h := uint64(offset64)
	byte1a := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	for _, pn := range pns {
		p := m.pages[pn]
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], pn)
		for _, b := range hdr {
			byte1a(b)
		}
		for _, b := range p {
			byte1a(b)
		}
	}
	return h
}

// WriteBytes copies raw bytes into memory.
func (m *PageMem) WriteBytes(addr uint64, b []byte) { m.writeBytes(addr, b) }

// ReadBytes copies raw bytes out of memory.
func (m *PageMem) ReadBytes(addr uint64, n int) []byte {
	b := make([]byte, n)
	m.readBytes(addr, b)
	return b
}
