package exec

import (
	"math"

	"github.com/clp-sim/tflex/internal/isa"
)

// EvalALU computes the result of a non-memory, non-branch instruction.
// For two-operand ops with HasImm, the immediate supplies the right
// operand.  Division by zero yields zero (the hardware raises no trap in
// this model).  Floating-point values are IEEE-754 bit patterns.
func EvalALU(in *isa.Inst, a, b uint64) uint64 {
	if in.HasImm && in.Op.NumOperands() == 2 {
		b = uint64(in.Imm)
	}
	switch in.Op {
	case isa.OpAdd:
		return a + b
	case isa.OpSub:
		return a - b
	case isa.OpMul:
		return a * b
	case isa.OpDiv:
		if b == 0 {
			return 0
		}
		return uint64(int64(a) / int64(b))
	case isa.OpDivU:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.OpMod:
		if b == 0 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpShl:
		return a << (b & 63)
	case isa.OpShr:
		return a >> (b & 63)
	case isa.OpSra:
		return uint64(int64(a) >> (b & 63))
	case isa.OpEq:
		return boolVal(a == b)
	case isa.OpNe:
		return boolVal(a != b)
	case isa.OpLt:
		return boolVal(int64(a) < int64(b))
	case isa.OpLe:
		return boolVal(int64(a) <= int64(b))
	case isa.OpLtU:
		return boolVal(a < b)
	case isa.OpLeU:
		return boolVal(a <= b)
	case isa.OpMov:
		return a
	case isa.OpGenC:
		return uint64(in.Imm)
	case isa.OpFAdd:
		return fop(a, b, func(x, y float64) float64 { return x + y })
	case isa.OpFSub:
		return fop(a, b, func(x, y float64) float64 { return x - y })
	case isa.OpFMul:
		return fop(a, b, func(x, y float64) float64 { return x * y })
	case isa.OpFDiv:
		return fop(a, b, func(x, y float64) float64 { return x / y })
	case isa.OpFSqrt:
		return math.Float64bits(math.Sqrt(math.Float64frombits(a)))
	case isa.OpFEq:
		return boolVal(math.Float64frombits(a) == math.Float64frombits(b))
	case isa.OpFLt:
		return boolVal(math.Float64frombits(a) < math.Float64frombits(b))
	case isa.OpFLe:
		return boolVal(math.Float64frombits(a) <= math.Float64frombits(b))
	case isa.OpIToF:
		return math.Float64bits(float64(int64(a)))
	case isa.OpFToI:
		f := math.Float64frombits(a)
		if math.IsNaN(f) {
			return 0
		}
		return uint64(int64(f))
	}
	return 0
}

func boolVal(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func fop(a, b uint64, f func(float64, float64) float64) uint64 {
	return math.Float64bits(f(math.Float64frombits(a), math.Float64frombits(b)))
}

// PredMatches reports whether a predicate operand value satisfies the
// instruction's predication sense.
func PredMatches(kind isa.PredKind, v uint64) bool {
	switch kind {
	case isa.PredOnTrue:
		return v != 0
	case isa.PredOnFalse:
		return v == 0
	}
	return true
}
