package exec

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/clp-sim/tflex/internal/isa"
)

// Property tests pinning EvalALU to Go's own integer and floating-point
// semantics.

func eval(op isa.Opcode, a, b uint64) uint64 {
	in := isa.Inst{Op: op}
	return EvalALU(&in, a, b)
}

func TestEvalMatchesGoIntegerSemantics(t *testing.T) {
	f := func(a, b uint64) bool {
		if eval(isa.OpAdd, a, b) != a+b {
			return false
		}
		if eval(isa.OpSub, a, b) != a-b {
			return false
		}
		if eval(isa.OpMul, a, b) != a*b {
			return false
		}
		if eval(isa.OpAnd, a, b) != a&b {
			return false
		}
		if eval(isa.OpOr, a, b) != a|b {
			return false
		}
		if eval(isa.OpXor, a, b) != a^b {
			return false
		}
		if eval(isa.OpShl, a, b) != a<<(b&63) {
			return false
		}
		if eval(isa.OpShr, a, b) != a>>(b&63) {
			return false
		}
		if eval(isa.OpSra, a, b) != uint64(int64(a)>>(b&63)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalDivisionSemantics(t *testing.T) {
	f := func(a, b uint64) bool {
		if b == 0 {
			return eval(isa.OpDiv, a, b) == 0 &&
				eval(isa.OpDivU, a, b) == 0 &&
				eval(isa.OpMod, a, b) == 0
		}
		if eval(isa.OpDivU, a, b) != a/b {
			return false
		}
		// Signed overflow case MinInt64 / -1 would trap in Go; the model
		// follows Go semantics only where defined.
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return true
		}
		return eval(isa.OpDiv, a, b) == uint64(int64(a)/int64(b)) &&
			eval(isa.OpMod, a, b) == uint64(int64(a)%int64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalComparisonsAreBoolean(t *testing.T) {
	ops := []isa.Opcode{isa.OpEq, isa.OpNe, isa.OpLt, isa.OpLe, isa.OpLtU, isa.OpLeU, isa.OpFEq, isa.OpFLt, isa.OpFLe}
	f := func(a, b uint64, sel uint8) bool {
		v := eval(ops[int(sel)%len(ops)], a, b)
		return v == 0 || v == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalFloatMatchesGo(t *testing.T) {
	f := func(af, bf float64) bool {
		a, b := math.Float64bits(af), math.Float64bits(bf)
		checks := []struct {
			op   isa.Opcode
			want float64
		}{
			{isa.OpFAdd, af + bf},
			{isa.OpFSub, af - bf},
			{isa.OpFMul, af * bf},
			{isa.OpFDiv, af / bf},
		}
		for _, c := range checks {
			got := eval(c.op, a, b)
			want := math.Float64bits(c.want)
			// NaNs compare by bit pattern class, not equality.
			if math.IsNaN(c.want) {
				if !math.IsNaN(math.Float64frombits(got)) {
					return false
				}
				continue
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalConversionRoundTrips(t *testing.T) {
	f := func(v int32) bool {
		// int -> float -> int is exact for 32-bit values.
		fbits := eval(isa.OpIToF, uint64(int64(v)), 0)
		back := eval(isa.OpFToI, fbits, 0)
		return int64(back) == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredMatchesSemantics(t *testing.T) {
	f := func(v uint64) bool {
		return PredMatches(isa.PredNone, v) &&
			PredMatches(isa.PredOnTrue, v) == (v != 0) &&
			PredMatches(isa.PredOnFalse, v) == (v == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
