package exec

import (
	"github.com/clp-sim/tflex/internal/isa"
)

// TraceEntry is one dynamic instruction in the linearized trace consumed by
// the conventional-superscalar model.  Fan-out movs are elided (their
// consumers depend directly on the mov's producer), and register
// reads/writes become cross-entry dependences, so the trace approximates
// what a conventional compiler would have emitted for the same dataflow.
type TraceEntry struct {
	Op         isa.Opcode
	PC         uint64
	Src1, Src2 int32 // producer trace indices; -1 = none/architectural
	Addr       uint64
	Size       uint8
	Val        uint64 // store data value (stores only)
	LSID       int8   // within-block memory program order (mem ops only, else -1)
	IsLoad     bool
	IsStore    bool
	IsBranch   bool
	Taken      bool
	Target     uint64
}

// Trace accumulates linearized dynamic instructions.
type Trace struct {
	Entries []TraceEntry
	// Blocks holds the starting entry index of each dynamic block, so
	// consumers can recover block boundaries (entries within a block are
	// in instruction-ID order, not LSID order).
	Blocks    []int
	Truncated bool // entries were dropped after hitting Limit
	Limit     int  // maximum entries (0 = default)
}

// DefaultTraceLimit bounds trace memory for runaway programs.
const DefaultTraceLimit = 8 << 20

func (t *Trace) limit() int {
	if t.Limit > 0 {
		return t.Limit
	}
	return DefaultTraceLimit
}

// src encoding inside a block run: values >= 0 are global trace indices
// (cross-block producers); -1 is "no producer"; values <= -2 encode local
// instruction node indices as -(idx+2), resolved when the block's entries
// are appended to the trace.
func localSrc(idx int) int32 { return int32(-(idx + 2)) }

func (r *blockRun) emitTrace() {
	if r.trace == nil {
		return
	}
	t := r.trace
	// Program order: instruction IDs ascending.
	ids := append([]int(nil), r.firedIDs...)
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	local2global := make(map[int]int32, len(ids))
	resolve := func(src int32) int32 {
		if src >= -1 {
			return src
		}
		idx := int(-(src + 2))
		if g, ok := local2global[idx]; ok {
			return g
		}
		return -1
	}
	base := len(t.Entries)
	if base+len(ids) > t.limit() {
		t.Truncated = true
		return // stop tracing; callers check Truncated
	}
	t.Blocks = append(t.Blocks, base)
	for _, idx := range ids {
		in := &r.b.Insts[idx]
		st := &r.insts[idx]
		g := int32(len(t.Entries))
		local2global[idx] = g
		e := TraceEntry{
			Op:   in.Op,
			PC:   r.b.Addr + uint64(idx)*4,
			LSID: -1,
		}
		switch {
		case in.Op == isa.OpLoad:
			e.IsLoad = true
			e.Addr = st.left.val + uint64(in.Imm)
			e.Size = in.MemSize
			e.LSID = in.LSID
			e.Src1 = resolve(st.left.src)
		case in.Op == isa.OpStore:
			e.IsStore = true
			e.Addr = st.left.val + uint64(in.Imm)
			e.Size = in.MemSize
			e.Val = st.right.val
			e.LSID = in.LSID
			e.Src1 = resolve(st.left.src)
			e.Src2 = resolve(st.right.src)
		case in.Op.IsBranch():
			e.IsBranch = true
			e.Target = r.res.Branch.Target
			// Taken if the target is not the next sequential block.
			e.Taken = r.res.Branch.Target != r.b.Addr+uint64(isa.BlockBytes)
			e.Src1 = resolve(st.left.src)
			e.Src2 = -1
		default:
			e.Src1 = -1
			e.Src2 = -1
			if st.left.need {
				e.Src1 = resolve(st.left.src)
			}
			if st.right.need {
				e.Src2 = resolve(st.right.src)
			}
		}
		if in.Pred != isa.PredNone && e.Src2 < 0 {
			// The predicate is a real data dependence in conventional code
			// (it would be a compare+cmov or branch); model it as a source.
			e.Src2 = resolve(st.pred.src)
		}
		t.Entries = append(t.Entries, e)
	}
	// Update the machine-level register producer map with global indices.
	if r.regSrc != nil {
		for i := range r.wr {
			if r.wr[i].got {
				r.regSrc[r.b.Writes[i].Reg] = resolve(r.wr[i].src)
			}
		}
	}
	_ = base
}
