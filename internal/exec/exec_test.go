package exec

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

func TestPageMemRoundTrip(t *testing.T) {
	m := NewPageMem()
	m.Write64(0x1000, 0xdeadbeefcafebabe)
	if got := m.Read64(0x1000); got != 0xdeadbeefcafebabe {
		t.Fatalf("got %#x", got)
	}
	// Cross-page access.
	m.Write64(0x1ffc, 0x1122334455667788)
	if got := m.Read64(0x1ffc); got != 0x1122334455667788 {
		t.Fatalf("cross-page got %#x", got)
	}
	// Sub-word sign extension.
	m.Store(0x2000, 1, 0x80)
	if got := m.Load(0x2000, 1, true); got != 0xffffffffffffff80 {
		t.Fatalf("sign extend got %#x", got)
	}
	if got := m.Load(0x2000, 1, false); got != 0x80 {
		t.Fatalf("zero extend got %#x", got)
	}
	// Unwritten memory reads as zero.
	if got := m.Read64(0x999000); got != 0 {
		t.Fatalf("unwritten got %#x", got)
	}
}

func TestPageMemProperty(t *testing.T) {
	m := NewPageMem()
	f := func(addr uint32, v uint64, szSel uint8) bool {
		sizes := []int{1, 2, 4, 8}
		size := sizes[szSel%4]
		a := uint64(addr)
		m.Store(a, size, v)
		got := m.Load(a, size, false)
		mask := ^uint64(0)
		if size < 8 {
			mask = (uint64(1) << (8 * size)) - 1
		}
		return got == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func neg(v int64) uint64 { return uint64(-v) }

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op   isa.Opcode
		a, b uint64
		want uint64
	}{
		{isa.OpAdd, 2, 3, 5},
		{isa.OpSub, 2, 3, ^uint64(0)},
		{isa.OpMul, 7, 6, 42},
		{isa.OpDiv, neg(9), 2, neg(4)},
		{isa.OpDivU, 9, 2, 4},
		{isa.OpDiv, 5, 0, 0},
		{isa.OpMod, 9, 4, 1},
		{isa.OpAnd, 0xf0, 0xff, 0xf0},
		{isa.OpOr, 0xf0, 0x0f, 0xff},
		{isa.OpXor, 0xff, 0x0f, 0xf0},
		{isa.OpShl, 1, 4, 16},
		{isa.OpShr, 16, 4, 1},
		{isa.OpSra, neg(16), 2, neg(4)},
		{isa.OpEq, 4, 4, 1},
		{isa.OpNe, 4, 4, 0},
		{isa.OpLt, neg(1), 0, 1},
		{isa.OpLtU, neg(1), 0, 0},
		{isa.OpLe, 3, 3, 1},
		{isa.OpLeU, 4, 3, 0},
		{isa.OpMov, 99, 0, 99},
	}
	for _, c := range cases {
		in := isa.Inst{Op: c.op}
		if got := EvalALU(&in, c.a, c.b); got != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalALUImmediate(t *testing.T) {
	in := isa.Inst{Op: isa.OpAdd, HasImm: true, Imm: -5}
	if got := EvalALU(&in, 10, 999); got != 5 {
		t.Fatalf("addi got %d", got)
	}
	genc := isa.Inst{Op: isa.OpGenC, Imm: 123}
	if got := EvalALU(&genc, 0, 0); got != 123 {
		t.Fatalf("genc got %d", got)
	}
}

func TestEvalALUFloat(t *testing.T) {
	fb := math.Float64bits
	ff := math.Float64frombits
	in := isa.Inst{Op: isa.OpFAdd}
	if got := ff(EvalALU(&in, fb(1.5), fb(2.25))); got != 3.75 {
		t.Fatalf("fadd got %v", got)
	}
	in = isa.Inst{Op: isa.OpFMul}
	if got := ff(EvalALU(&in, fb(3), fb(4))); got != 12 {
		t.Fatalf("fmul got %v", got)
	}
	in = isa.Inst{Op: isa.OpFSqrt}
	if got := ff(EvalALU(&in, fb(9), 0)); got != 3 {
		t.Fatalf("fsqrt got %v", got)
	}
	in = isa.Inst{Op: isa.OpFLt}
	if got := EvalALU(&in, fb(1), fb(2)); got != 1 {
		t.Fatalf("flt got %v", got)
	}
	in = isa.Inst{Op: isa.OpIToF}
	if got := ff(EvalALU(&in, neg(7), 0)); got != -7 {
		t.Fatalf("itof got %v", got)
	}
	in = isa.Inst{Op: isa.OpFToI}
	if got := int64(EvalALU(&in, fb(-7.9), 0)); got != -7 {
		t.Fatalf("ftoi got %v", got)
	}
	if got := EvalALU(&isa.Inst{Op: isa.OpFToI}, fb(math.NaN()), 0); got != 0 {
		t.Fatalf("ftoi(NaN) got %v", got)
	}
}

// sumProgram builds: for r2 in 0..r1 { r3 += r2 }.
func sumProgram(t testing.TB) *prog.Program {
	b := prog.NewBuilder()
	bb := b.Block("loop")
	i := bb.Read(2)
	acc := bb.Read(3)
	n := bb.Read(1)
	acc2 := bb.Add(acc, i)
	i2 := bb.AddI(i, 1)
	bb.Write(3, acc2)
	bb.Write(2, i2)
	p := bb.Op(isa.OpLt, i2, n)
	bb.BranchIf(p, "loop", "done")
	d := b.Block("done")
	d.Halt()
	pr, err := b.Program("loop")
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestMachineSumLoop(t *testing.T) {
	m := NewMachine(sumProgram(t))
	m.Regs[1] = 10 // n
	st, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Halted {
		t.Fatal("did not halt")
	}
	if m.Regs[3] != 45 { // 0+1+...+9
		t.Fatalf("sum = %d, want 45", m.Regs[3])
	}
	if st.Blocks != 11 { // 10 loop iterations + done
		t.Fatalf("blocks = %d", st.Blocks)
	}
}

func TestMachineSelect(t *testing.T) {
	b := prog.NewBuilder()
	bb := b.Block("m")
	x := bb.Read(1)
	y := bb.Read(2)
	p := bb.Op(isa.OpLt, x, y)
	mx := bb.Select(p, y, x) // max
	bb.Write(3, mx)
	bb.Halt()
	pr := b.MustProgram("m")
	for _, c := range [][3]uint64{{3, 7, 7}, {9, 2, 9}, {4, 4, 4}} {
		m := NewMachine(pr)
		m.Regs[1], m.Regs[2] = c[0], c[1]
		if _, err := m.Run(10); err != nil {
			t.Fatal(err)
		}
		if m.Regs[3] != c[2] {
			t.Fatalf("max(%d,%d) = %d, want %d", c[0], c[1], m.Regs[3], c[2])
		}
	}
}

func TestMachineGuardedStore(t *testing.T) {
	b := prog.NewBuilder()
	bb := b.Block("m")
	x := bb.Read(1)
	addr := bb.Read(2)
	p := bb.OpI(isa.OpLt, x, 10)
	bb.When(p).Store(addr, x, 0, 8)
	bb.Halt()
	pr := b.MustProgram("m")

	m := NewMachine(pr)
	m.Regs[1], m.Regs[2] = 5, 0x4000
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.(*PageMem).Read64(0x4000); got != 5 {
		t.Fatalf("store taken: got %d", got)
	}

	m2 := NewMachine(pr)
	m2.Regs[1], m2.Regs[2] = 50, 0x4000
	m2.Mem.(*PageMem).Write64(0x4000, 777)
	if _, err := m2.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := m2.Mem.(*PageMem).Read64(0x4000); got != 777 {
		t.Fatalf("store nulled: got %d", got)
	}
}

func TestMachineStoreLoadForwardingWithinBlock(t *testing.T) {
	b := prog.NewBuilder()
	bb := b.Block("m")
	addr := bb.Read(1)
	v := bb.Read(2)
	bb.Store(addr, v, 0, 8)          // LSID 0
	ld := bb.Load(addr, 0, 8, false) // LSID 1: must see the store
	bb.Write(3, ld)
	bb.Halt()
	pr := b.MustProgram("m")
	m := NewMachine(pr)
	m.Regs[1], m.Regs[2] = 0x8000, 424242
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != 424242 {
		t.Fatalf("forwarded load = %d", m.Regs[3])
	}
}

func TestMachinePartialForwarding(t *testing.T) {
	// 4-byte store overlapping an 8-byte load.
	b := prog.NewBuilder()
	bb := b.Block("m")
	addr := bb.Read(1)
	v := bb.Read(2)
	bb.Store(addr, v, 4, 4)
	ld := bb.Load(addr, 0, 8, false)
	bb.Write(3, ld)
	bb.Halt()
	pr := b.MustProgram("m")
	m := NewMachine(pr)
	m.Mem.(*PageMem).Write64(0x8000, 0x1111111122222222)
	m.Regs[1], m.Regs[2] = 0x8000, 0xaaaaaaaa
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != 0xaaaaaaaa22222222 {
		t.Fatalf("partial forward = %#x", m.Regs[3])
	}
}

func TestMachineCallRet(t *testing.T) {
	b := prog.NewBuilder()
	main := b.Block("main")
	ra := main.LabelAddr("after")
	main.Write(1, ra) // link register
	x := main.Const(21)
	main.Write(2, x)
	main.Call("double")

	fn := b.Block("double")
	arg := fn.Read(2)
	fn.Write(2, fn.AddI(arg, 0))
	fn.Write(3, fn.Add(arg, arg))
	link := fn.Read(1)
	fn.Ret(link)

	after := b.Block("after")
	after.Halt()

	pr := b.MustProgram("main")
	m := NewMachine(pr)
	st, err := m.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Halted || m.Regs[3] != 42 {
		t.Fatalf("halted=%v r3=%d", st.Halted, m.Regs[3])
	}
}

func TestMachineNestedGuards(t *testing.T) {
	// r4 = (r1 < 10 && r2 < 20) ? 1 : 0 via nested When.
	b := prog.NewBuilder()
	bb := b.Block("m")
	x := bb.Read(1)
	y := bb.Read(2)
	one := bb.Const(1)
	zero := bb.Const(0)
	p1 := bb.OpI(isa.OpLt, x, 10)
	inner := bb.When(p1)
	p2 := bb.OpI(isa.OpLt, y, 20)
	both := inner.When(p2)
	g := both.GuardValue() // 0/1 of (p1 && p2)
	both.Write(4, one)
	bb.Unless(g).Write(4, zero)
	bb.Halt()
	pr := b.MustProgram("m")
	for _, c := range []struct{ x, y, want uint64 }{
		{5, 5, 1}, {5, 50, 0}, {50, 5, 0}, {50, 50, 0},
	} {
		m := NewMachine(pr)
		m.Regs[1], m.Regs[2] = c.x, c.y
		if _, err := m.Run(10); err != nil {
			t.Fatalf("x=%d y=%d: %v", c.x, c.y, err)
		}
		if m.Regs[4] != c.want {
			t.Fatalf("x=%d y=%d: r4=%d want %d", c.x, c.y, m.Regs[4], c.want)
		}
	}
}

func TestMachineErrors(t *testing.T) {
	t.Run("block limit", func(t *testing.T) {
		b := prog.NewBuilder()
		bb := b.Block("spin")
		bb.Branch("spin")
		pr := b.MustProgram("spin")
		m := NewMachine(pr)
		if _, err := m.Run(100); err == nil {
			t.Fatal("expected block-limit error")
		}
	})
}

func TestTraceGeneration(t *testing.T) {
	p := sumProgram(t)
	m := NewMachine(p)
	m.Regs[1] = 5
	m.Trace = &Trace{}
	st, err := m.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Trace.Entries
	if len(tr) == 0 {
		t.Fatal("no trace")
	}
	if uint64(len(tr)) != st.Useful {
		t.Fatalf("trace %d entries, useful %d", len(tr), st.Useful)
	}
	branches := 0
	for i, e := range tr {
		if e.Src1 >= int32(i) || e.Src2 >= int32(i) {
			t.Fatalf("entry %d has forward dep (%d,%d)", i, e.Src1, e.Src2)
		}
		if e.IsBranch {
			branches++
		}
	}
	if branches != int(st.Blocks) {
		t.Fatalf("branches=%d blocks=%d", branches, st.Blocks)
	}
	// Dep chain sanity: the accumulator adds depend on prior iterations.
	foundDep := false
	for _, e := range tr {
		if e.Op == isa.OpAdd && e.Src1 >= 0 {
			foundDep = true
		}
	}
	if !foundDep {
		t.Fatal("no cross-entry dependences recorded")
	}
}

func TestRunBlockRejectsBadBlocks(t *testing.T) {
	// A block whose single branch is predicated and squashes: no branch fires.
	b := prog.NewBuilder()
	bb := b.Block("m")
	x := bb.Read(1)
	p := bb.OpI(isa.OpLt, x, 10)
	bb.When(p).Halt() // if x >= 10 no branch fires
	pr, err := b.Program("m")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(pr)
	m.Regs[1] = 99
	if _, err := m.Run(10); err == nil {
		t.Fatal("expected no-branch error")
	}
}
