package runner

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSpecKey(t *testing.T) {
	cases := []struct {
		sp   Spec
		want string
	}{
		{Spec{Kernel: "conv", Config: "tflex", Cores: 8, Scale: 2}, "conv/tflex-8c/scale2"},
		{Spec{Kernel: "mcf", Config: "trips", Scale: 1}, "mcf/trips/scale1"},
		{Spec{Kernel: "ct", Config: "core2", Scale: 3}, "ct/core2/scale3"},
	}
	for _, c := range cases {
		if got := c.sp.Key(); got != c.want {
			t.Errorf("Key(%+v) = %q, want %q", c.sp, got, c.want)
		}
	}
}

// Results must come back in submission order for every worker count.
func TestRunMergesInSubmissionOrder(t *testing.T) {
	var specs []Spec
	for i := 0; i < 40; i++ {
		specs = append(specs, Spec{Kernel: fmt.Sprintf("k%02d", i), Config: "tflex", Cores: 1 + i%32, Scale: 1})
	}
	for _, workers := range []int{1, 2, 8} {
		e := &Engine{Workers: workers, Exec: func(Spec) error { return nil }}
		res, err := e.Run(specs)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(specs) {
			t.Fatalf("workers=%d: %d results", workers, len(res))
		}
		for i, r := range res {
			if r.Spec.Key() != specs[i].Key() {
				t.Fatalf("workers=%d: result %d is %s, want %s", workers, i, r.Spec.Key(), specs[i].Key())
			}
		}
	}
}

func TestRunDedupesByKey(t *testing.T) {
	var calls atomic.Int64
	e := &Engine{Workers: 4, Exec: func(Spec) error { calls.Add(1); return nil }}
	sp := Spec{Kernel: "conv", Config: "tflex", Cores: 8, Scale: 2}
	res, err := e.Run([]Spec{sp, sp, sp, {Kernel: "ct", Config: "tflex", Cores: 8, Scale: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results, want 2 after dedup", len(res))
	}
	if calls.Load() != 2 {
		t.Fatalf("%d exec calls, want 2", calls.Load())
	}
	if s := e.Summary(); s.Deduped != 2 || s.JobsRun != 2 {
		t.Fatalf("summary %+v", s)
	}
}

// A spec whose key completed in an earlier batch is merged, not re-run.
func TestRunMergesAcrossBatches(t *testing.T) {
	var calls atomic.Int64
	e := &Engine{Workers: 4, Exec: func(Spec) error { calls.Add(1); return nil }}
	a := Spec{Kernel: "a", Config: "tflex", Cores: 1, Scale: 1}
	b := Spec{Kernel: "b", Config: "tflex", Cores: 2, Scale: 1}
	c := Spec{Kernel: "c", Config: "trips", Scale: 1}
	if _, err := e.Run([]Spec{a, b}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run([]Spec{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d exec calls, want 3 (a and b merged from batch 1)", calls.Load())
	}
	if len(res) != 3 || res[0].Spec.Key() != a.Key() || res[2].Spec.Key() != c.Key() {
		t.Fatalf("merged results out of order: %+v", res)
	}
	if s := e.Summary(); s.JobsRun != 3 || s.Deduped != 2 {
		t.Fatalf("summary %+v, want 3 run / 2 merged", s)
	}
}

// The first error in submission order is returned, deterministically,
// and all jobs still run.
func TestRunErrorIsDeterministic(t *testing.T) {
	var ran atomic.Int64
	e := &Engine{Workers: 8, Exec: func(sp Spec) error {
		ran.Add(1)
		if sp.Kernel == "bad2" || sp.Kernel == "bad7" {
			return fmt.Errorf("boom %s", sp.Kernel)
		}
		return nil
	}}
	var specs []Spec
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("k%d", i)
		if i == 2 || i == 7 {
			name = fmt.Sprintf("bad%d", i)
		}
		specs = append(specs, Spec{Kernel: name, Config: "tflex", Cores: 1, Scale: 1})
	}
	_, err := e.Run(specs)
	if err == nil || !strings.Contains(err.Error(), "bad2") {
		t.Fatalf("err = %v, want first submission-order failure (bad2)", err)
	}
	if ran.Load() != 10 {
		t.Fatalf("%d jobs ran, want all 10 despite failures", ran.Load())
	}
}

func TestRunNilExec(t *testing.T) {
	e := &Engine{}
	if _, err := e.Run([]Spec{{Kernel: "k", Config: "tflex", Cores: 1, Scale: 1}}); err == nil {
		t.Fatal("want error for nil Exec")
	}
}

func TestProgressLines(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	e := &Engine{Workers: 2, Progress: w, Exec: func(Spec) error { return nil }}
	specs := []Spec{
		{Kernel: "a", Config: "tflex", Cores: 1, Scale: 1},
		{Kernel: "b", Config: "tflex", Cores: 2, Scale: 1},
	}
	if _, err := e.Run(specs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "a/tflex-1c/scale1") || !strings.Contains(out, "/2]") {
		t.Fatalf("progress output %q missing job keys or counters", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestStoreSingleflight(t *testing.T) {
	var st Store[int, string]
	var computes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := st.Get(7, func() (string, error) {
				computes.Add(1)
				return "seven", nil
			})
			if err != nil || v != "seven" {
				t.Errorf("Get = %q, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if computes.Load() != 1 {
		t.Fatalf("%d computations, want 1 (duplicate suppression)", computes.Load())
	}
	hits, misses := st.Stats()
	if misses != 1 || hits != 15 {
		t.Fatalf("hits=%d misses=%d, want 15/1", hits, misses)
	}
}

func TestStoreMemoizesErrors(t *testing.T) {
	var st Store[string, int]
	var computes int
	fail := func() (int, error) { computes++; return 0, fmt.Errorf("nope") }
	if _, err := st.Get("k", fail); err == nil {
		t.Fatal("want error")
	}
	if _, err := st.Get("k", fail); err == nil {
		t.Fatal("want memoized error")
	}
	if computes != 1 {
		t.Fatalf("%d computes, want 1", computes)
	}
	if _, ok := st.Lookup("k"); ok {
		t.Fatal("Lookup should not expose failed entries")
	}
}

func TestStoreEachAndLookup(t *testing.T) {
	var st Store[int, int]
	for i := 0; i < 5; i++ {
		i := i
		if _, err := st.Get(i, func() (int, error) { return i * i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	sum := 0
	st.Each(func(_, v int) { sum += v })
	if sum != 0+1+4+9+16 {
		t.Fatalf("Each sum = %d", sum)
	}
	if v, ok := st.Lookup(3); !ok || v != 9 {
		t.Fatalf("Lookup(3) = %d, %v", v, ok)
	}
	if st.Len() != 5 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestSortSpecs(t *testing.T) {
	specs := []Spec{
		{Kernel: "z", Config: "tflex", Cores: 1, Scale: 1},
		{Kernel: "a", Config: "trips", Scale: 1},
		{Kernel: "a", Config: "tflex", Cores: 2, Scale: 1},
	}
	SortSpecs(specs)
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Key() > specs[i].Key() {
			t.Fatalf("not sorted: %s > %s", specs[i-1].Key(), specs[i].Key())
		}
	}
}
