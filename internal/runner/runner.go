// Package runner is the deterministic concurrent job engine behind the
// experiment suite.  It takes declarative simulation job specs — {kernel,
// config, cores, scale} — fans them out across a bounded worker pool
// (each job constructs its own sim.Chip, so no simulator state is
// shared), and merges results deterministically by job key regardless of
// completion order.
//
// Concurrency-safety audit (why fan-out is sound): every package the
// jobs touch was audited for shared mutable state.
//
//   - sim, mem, noc, predictor: all state hangs off the *sim.Chip built
//     inside the job; there are no package-level variables.
//   - kernels: the package-level registry/order maps are mutated only by
//     init-time register() calls, which Go runs single-threaded before
//     main; afterwards they are read-only (kernels.TestRegistryConcurrentReads
//     exercises this under -race).
//   - compose, isa, asm: package-level tables (shapes, opcodeNames,
//     binOps) are initialized once and never written again.
//   - exec, conv, power, area, alloc, stats: no package-level state.
//
// Determinism: the simulator itself is deterministic (event-driven with a
// total (cycle, insertion-order) ordering), every job is a pure function
// of its spec, and Run returns results in submission order — so any
// worker count, including 1, produces identical merged results.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/clp-sim/tflex/internal/telemetry"
)

// Spec declaratively identifies one simulation job.
type Spec struct {
	Kernel string // benchmark name
	Config string // machine configuration: "tflex", "trips", "core2", "zero-handshake", "ablate:<name>", ...
	Cores  int    // composition size (TFlex configs; 0 where fixed by the config)
	Scale  int    // kernel input scale
}

// Key is the spec's unique, deterministic job identity.
func (sp Spec) Key() string {
	if sp.Cores > 0 {
		return fmt.Sprintf("%s/%s-%dc/scale%d", sp.Kernel, sp.Config, sp.Cores, sp.Scale)
	}
	return fmt.Sprintf("%s/%s/scale%d", sp.Kernel, sp.Config, sp.Scale)
}

// Result reports one completed job.
type Result struct {
	Spec Spec
	Err  error
	Wall time.Duration // wall-clock time spent executing the job
}

// Summary aggregates engine activity across Run calls.
type Summary struct {
	JobsRun  int           // jobs executed (after dedup)
	Deduped  int           // submitted specs merged with in-batch duplicates or earlier runs
	Batches  int           // Run invocations
	Wall     time.Duration // real elapsed time across batches
	CPUTime  time.Duration // sum of per-job wall times (≈ cpu-seconds at full utilization)
	Slowest  Spec          // slowest single job
	SlowWall time.Duration
}

func (s Summary) String() string {
	out := fmt.Sprintf("runner: %d jobs in %d batches, wall %.2fs, in-job %.2fs",
		s.JobsRun, s.Batches, s.Wall.Seconds(), s.CPUTime.Seconds())
	if s.Deduped > 0 {
		out += fmt.Sprintf(", %d duplicate specs merged", s.Deduped)
	}
	if s.SlowWall > 0 {
		out += fmt.Sprintf(", slowest %s (%.2fs)", s.Slowest.Key(), s.SlowWall.Seconds())
	}
	return out
}

// Engine fans job specs out over a worker pool.  The zero value is ready
// to use (GOMAXPROCS workers, no progress output, no executor — set Exec
// before Run).
type Engine struct {
	// Workers caps concurrent jobs; <= 0 means GOMAXPROCS(0).
	Workers int
	// Exec executes one spec.  It must be safe to call from concurrent
	// goroutines; in the experiment suite it builds a private chip and
	// records the result in a concurrency-safe Store.
	Exec func(Spec) error
	// Progress, if non-nil, receives one line per finished job
	// ("[done/total] key wall").  Lines are serialized but their order
	// follows completion, so route Progress to stderr (or nowhere) when
	// byte-stable output matters.
	Progress io.Writer
	// Trace, if non-nil, records one Chrome span per executed job on its
	// worker's track (pid runnerTracePID, tid = worker index).  Runner
	// spans use real microseconds since the engine's first Run, unlike
	// the simulator's cycle-denominated block spans.
	Trace *telemetry.Trace

	mu        sync.Mutex
	sum       Summary
	epoch     time.Time         // first Run's start; trace span time zero
	completed map[string]Result // merged results of every finished job, by key
}

// runnerTracePID groups runner job spans in the trace viewer, well away
// from the simulator's proc-id process groups (which start at 0).
const runnerTracePID = 1000

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the specs and merges results deterministically: the
// returned slice is ordered by submission order (duplicate keys collapse
// onto their first occurrence), independent of completion order.  Specs
// whose key already completed in an earlier Run return their merged
// result without re-executing, so experiments sharing jobs (Fig6's sweep
// feeds Fig7/8/9) pay for each simulation once.  All pending jobs run to
// completion even if some fail; the returned error is the first failure
// in submission order.
func (e *Engine) Run(specs []Spec) ([]Result, error) {
	if e.Exec == nil {
		return nil, fmt.Errorf("runner: Engine.Exec is nil")
	}
	start := time.Now()
	e.mu.Lock()
	if e.epoch.IsZero() {
		e.epoch = start
		e.Trace.NameProcess(runnerTracePID, "runner")
	}
	epoch := e.epoch
	e.mu.Unlock()

	// Dedupe by key, preserving first-occurrence order.
	seen := make(map[string]bool, len(specs))
	unique := make([]Spec, 0, len(specs))
	for _, sp := range specs {
		if k := sp.Key(); !seen[k] {
			seen[k] = true
			unique = append(unique, sp)
		}
	}
	deduped := len(specs) - len(unique)

	// Split into already-completed (merged from earlier batches) and
	// pending indices.
	results := make([]Result, len(unique))
	var pending []int
	e.mu.Lock()
	if e.completed == nil {
		e.completed = map[string]Result{}
	}
	for i, sp := range unique {
		if r, ok := e.completed[sp.Key()]; ok {
			results[i] = r
			deduped++
		} else {
			pending = append(pending, i)
		}
	}
	e.mu.Unlock()

	idxCh := make(chan int)
	var wg sync.WaitGroup
	var done int
	workers := e.workers()
	if workers > len(pending) {
		workers = len(pending)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if e.Trace != nil {
				e.Trace.NameThread(runnerTracePID, w, fmt.Sprintf("worker%d", w))
			}
			for i := range idxCh {
				sp := unique[i]
				t0 := time.Now()
				err := e.Exec(sp)
				wall := time.Since(t0)
				results[i] = Result{Spec: sp, Err: err, Wall: wall}
				e.Trace.Span(runnerTracePID, w, sp.Key(), "job",
					uint64(t0.Sub(epoch).Microseconds()),
					uint64(t0.Add(wall).Sub(epoch).Microseconds()), nil)
				e.mu.Lock()
				done++
				if e.Progress != nil {
					status := ""
					if err != nil {
						status = "  FAILED: " + err.Error()
					}
					fmt.Fprintf(e.Progress, "[%*d/%d] %-40s %8.3fs%s\n",
						width(len(pending)), done, len(pending), sp.Key(), wall.Seconds(), status)
				}
				e.mu.Unlock()
			}
		}(w)
	}
	for _, i := range pending {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	e.mu.Lock()
	e.sum.JobsRun += len(pending)
	e.sum.Deduped += deduped
	e.sum.Batches++
	e.sum.Wall += time.Since(start)
	for _, i := range pending {
		r := results[i]
		e.completed[r.Spec.Key()] = r
		e.sum.CPUTime += r.Wall
		if r.Wall > e.sum.SlowWall {
			e.sum.SlowWall = r.Wall
			e.sum.Slowest = r.Spec
		}
	}
	e.mu.Unlock()

	for _, r := range results {
		if r.Err != nil {
			return results, fmt.Errorf("%s: %w", r.Spec.Key(), r.Err)
		}
	}
	return results, nil
}

// Summary reports cumulative engine activity.
func (e *Engine) Summary() Summary {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sum
}

// SortSpecs orders specs by key — handy for callers that accumulate a
// job set from multiple tables and want a canonical submission order.
func SortSpecs(specs []Spec) {
	sort.Slice(specs, func(i, j int) bool { return specs[i].Key() < specs[j].Key() })
}

func width(n int) int {
	w := 1
	for n >= 10 {
		n /= 10
		w++
	}
	return w
}
