package runner

import "sync"

// Store is a concurrency-safe memoized result store.  Concurrent Get
// calls with the same key compute the value exactly once and share it
// (duplicate suppression); later calls are cache hits.  Errors are
// memoized too — the simulator is deterministic, so retrying an
// identical job cannot succeed.
//
// The zero value is ready to use.
type Store[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*entry[V]
	hits    uint64
	misses  uint64
}

type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Get returns the memoized value for key, computing it with compute on
// first use.  If another goroutine is already computing the same key,
// Get blocks until that computation finishes and shares its result.
func (s *Store[K, V]) Get(key K, compute func() (V, error)) (V, error) {
	s.mu.Lock()
	if s.entries == nil {
		s.entries = map[K]*entry[V]{}
	}
	if e, ok := s.entries[key]; ok {
		s.hits++
		s.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &entry[V]{done: make(chan struct{})}
	s.entries[key] = e
	s.misses++
	s.mu.Unlock()

	e.val, e.err = compute()
	close(e.done)
	return e.val, e.err
}

// Lookup returns the value for key if a completed computation exists.
func (s *Store[K, V]) Lookup(key K) (V, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return *new(V), false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return *new(V), false
		}
		return e.val, true
	default:
		return *new(V), false
	}
}

// Each visits every successfully computed entry.  Entries still being
// computed are skipped; visit order is unspecified.
func (s *Store[K, V]) Each(visit func(K, V)) {
	s.mu.Lock()
	snap := make(map[K]*entry[V], len(s.entries))
	for k, e := range s.entries {
		snap[k] = e
	}
	s.mu.Unlock()
	//lint:allow determinism Each's contract is explicitly order-free; output-path callers must collect into keyed maps and render in sorted order
	for k, e := range snap {
		select {
		case <-e.done:
			if e.err == nil {
				visit(k, e.val)
			}
		default:
		}
	}
}

// Stats reports cache hits (Get calls served from memo) and misses
// (computations started).
func (s *Store[K, V]) Stats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Len counts entries (including in-flight computations).
func (s *Store[K, V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
