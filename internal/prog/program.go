// Package prog provides the program container and a builder API for
// constructing EDGE block programs.  The builder plays the role of the
// TRIPS compiler back end: callers describe dataflow with SSA-style value
// references and the builder assigns instruction IDs, load/store IDs,
// predicate routing and explicit target fields, inserting MOV fan-out trees
// when a value has more than two consumers.
package prog

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/isa"
)

// CodeBase is the virtual address of the first block.  Blocks are laid out
// contiguously in isa.BlockBytes chunks, so the "next sequential block"
// used by call return-address prediction is Addr+isa.BlockBytes.
const CodeBase uint64 = 0x0001_0000

// Program is a laid-out collection of blocks.
type Program struct {
	Blocks []*isa.Block
	Entry  string

	byName map[string]*isa.Block
	byAddr map[uint64]*isa.Block
}

// Lookup returns the block with the given name, or nil.
func (p *Program) Lookup(name string) *isa.Block { return p.byName[name] }

// BlockAt returns the block at the given address, or nil.  Layout places
// blocks contiguously from CodeBase, so the lookup is a bounds check and
// an index — this sits on the simulator's per-fetch hot path.
func (p *Program) BlockAt(addr uint64) *isa.Block {
	if i := p.BlockIndex(addr); i >= 0 {
		return p.Blocks[i]
	}
	return p.byAddr[addr] // pre-layout or non-contiguous programs
}

// BlockIndex returns the dense index of the block at addr under the
// contiguous layout, or -1 if addr is not a laid-out block address.
func (p *Program) BlockIndex(addr uint64) int {
	if addr < CodeBase {
		return -1
	}
	off := addr - CodeBase
	if off%uint64(isa.BlockBytes) != 0 {
		return -1
	}
	i := off / uint64(isa.BlockBytes)
	if i >= uint64(len(p.Blocks)) || p.Blocks[i].Addr != addr {
		return -1
	}
	return int(i)
}

// NumBlocks returns the number of laid-out blocks.
func (p *Program) NumBlocks() int { return len(p.Blocks) }

// EntryBlock returns the entry block.
func (p *Program) EntryBlock() *isa.Block { return p.byName[p.Entry] }

// AddrOf returns the laid-out address of a labeled block.
func (p *Program) AddrOf(name string) (uint64, bool) {
	b, ok := p.byName[name]
	if !ok {
		return 0, false
	}
	return b.Addr, true
}

// layout assigns addresses, resolves branch labels and label constants, and
// validates the whole program through Validate.
func (p *Program) layout() error {
	p.byName = make(map[string]*isa.Block, len(p.Blocks))
	p.byAddr = make(map[uint64]*isa.Block, len(p.Blocks))
	for i, b := range p.Blocks {
		if _, dup := p.byName[b.Name]; dup {
			return fmt.Errorf("prog: duplicate block name %q", b.Name)
		}
		b.Addr = CodeBase + uint64(i)*uint64(isa.BlockBytes)
		p.byName[b.Name] = b
		p.byAddr[b.Addr] = b
	}
	if err := Validate(p); err != nil {
		return err
	}
	for _, b := range p.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.BranchTo == "" {
				continue
			}
			tgt := p.byName[in.BranchTo] // resolvable: Validate checked labels
			in.TargetAddr = tgt.Addr
			if in.Op == isa.OpGenC {
				// Label constant: materialize the target address.
				in.Imm = int64(tgt.Addr)
			}
		}
	}
	return nil
}

// BranchTarget resolves the architectural target address of a fired branch.
// For OpRet the target is the operand value and this returns (0, false).
func (p *Program) BranchTarget(in *isa.Inst) (uint64, bool) {
	switch in.Op {
	case isa.OpBro, isa.OpCallo:
		if in.TargetAddr != 0 {
			return in.TargetAddr, true
		}
		b := p.byName[in.BranchTo]
		if b == nil {
			return 0, false
		}
		return b.Addr, true
	}
	return 0, false
}

// Stats summarizes static program properties (used in reports and tests).
type Stats struct {
	Blocks       int
	Insts        int
	Movs         int // fan-out overhead instructions
	MemOps       int
	Branches     int
	MaxBlockSize int
	AvgBlockSize float64
}

// StaticStats computes static code statistics.
func (p *Program) StaticStats() Stats {
	var s Stats
	s.Blocks = len(p.Blocks)
	for _, b := range p.Blocks {
		n := 0
		for i := range b.Insts {
			switch b.Insts[i].Op {
			case isa.OpNop:
				continue // unused slot
			case isa.OpMov:
				s.Movs++
			case isa.OpLoad, isa.OpStore:
				s.MemOps++
			}
			if b.Insts[i].Op.IsBranch() {
				s.Branches++
			}
			n++
		}
		s.Insts += n
		if n > s.MaxBlockSize {
			s.MaxBlockSize = n
		}
	}
	if s.Blocks > 0 {
		s.AvgBlockSize = float64(s.Insts) / float64(s.Blocks)
	}
	return s
}
