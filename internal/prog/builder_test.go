package prog

import (
	"testing"

	"github.com/clp-sim/tflex/internal/isa"
)

func TestBuilderSimpleBlock(t *testing.T) {
	b := NewBuilder()
	bb := b.Block("main")
	x := bb.Read(1)
	y := bb.Read(2)
	s := bb.Add(x, y)
	bb.Write(3, s)
	bb.Halt()
	p, err := b.Program("main")
	if err != nil {
		t.Fatal(err)
	}
	blk := p.Lookup("main")
	if blk == nil {
		t.Fatal("block not found")
	}
	if len(blk.Reads) != 2 || len(blk.Writes) != 1 {
		t.Fatalf("reads=%d writes=%d", len(blk.Reads), len(blk.Writes))
	}
	if blk.Addr != CodeBase {
		t.Fatalf("entry addr %#x", blk.Addr)
	}
	if err := blk.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderSharedReadSlot(t *testing.T) {
	b := NewBuilder()
	bb := b.Block("m")
	x1 := bb.Read(5)
	x2 := bb.Read(5)
	if x1 != x2 {
		t.Fatal("repeated Read of same register should share a slot")
	}
	bb.Write(6, bb.Add(x1, x2))
	bb.Halt()
	p := b.MustProgram("m")
	if n := len(p.Lookup("m").Reads); n != 1 {
		t.Fatalf("read slots = %d, want 1", n)
	}
}

func TestBuilderFanoutTree(t *testing.T) {
	b := NewBuilder()
	bb := b.Block("m")
	x := bb.Read(1)
	// 9 consumers of x forces a mov tree.
	var sum Ref = bb.AddI(x, 0)
	for i := 0; i < 8; i++ {
		sum = bb.Add(sum, x)
	}
	bb.Write(2, sum)
	bb.Halt()
	p := b.MustProgram("m")
	blk := p.Lookup("m")
	if err := blk.Validate(); err != nil {
		t.Fatal(err)
	}
	movs := 0
	for i := range blk.Insts {
		if blk.Insts[i].Op == isa.OpMov {
			movs++
		}
	}
	if movs == 0 {
		t.Fatal("expected fan-out movs")
	}
	// Every producer within limits.
	for i := range blk.Insts {
		if len(blk.Insts[i].Targets) > isa.MaxTargets {
			t.Fatalf("inst %d has %d targets", i, len(blk.Insts[i].Targets))
		}
	}
	for _, r := range blk.Reads {
		if len(r.Targets) > isa.MaxTargets {
			t.Fatalf("read has %d targets", len(r.Targets))
		}
	}
}

func TestBuilderGuardedStoreEmitsNull(t *testing.T) {
	b := NewBuilder()
	bb := b.Block("m")
	x := bb.Read(1)
	p := bb.OpI(isa.OpLt, x, 10)
	bb.When(p).Store(x, x, 0, 8)
	bb.Halt()
	pr := b.MustProgram("m")
	blk := pr.Lookup("m")
	var haveStore, haveNull bool
	for i := range blk.Insts {
		switch blk.Insts[i].Op {
		case isa.OpStore:
			haveStore = true
			if blk.Insts[i].Pred != isa.PredOnTrue {
				t.Error("store should be predicated on true")
			}
		case isa.OpNull:
			haveNull = true
			if blk.Insts[i].Pred != isa.PredOnFalse {
				t.Error("null should be predicated on false")
			}
			if blk.Insts[i].NullLSID != 0 {
				t.Error("null should retire LSID 0")
			}
		}
	}
	if !haveStore || !haveNull {
		t.Fatalf("store=%v null=%v", haveStore, haveNull)
	}
	if blk.NumStores != 1 {
		t.Fatalf("NumStores = %d", blk.NumStores)
	}
}

func TestBuilderBranchExits(t *testing.T) {
	b := NewBuilder()
	bb := b.Block("m")
	x := bb.Read(1)
	p := bb.OpI(isa.OpLt, x, 10)
	bb.BranchIf(p, "m", "done")
	d := b.Block("done")
	d.Halt()
	pr := b.MustProgram("m")
	blk := pr.Lookup("m")
	exits := map[uint8]bool{}
	for i := range blk.Insts {
		if blk.Insts[i].Op.IsBranch() {
			exits[blk.Insts[i].Exit] = true
		}
	}
	if len(exits) != 2 {
		t.Fatalf("want 2 distinct exits, got %v", exits)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("cross block ref", func(t *testing.T) {
		b := NewBuilder()
		b1 := b.Block("a")
		x := b1.Read(1)
		b1.Halt()
		b2 := b.Block("b")
		b2.Write(2, x)
		b2.Halt()
		if _, err := b.Program("a"); err == nil {
			t.Fatal("expected cross-block error")
		}
	})
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder()
		bb := b.Block("a")
		bb.Branch("nowhere")
		if _, err := b.Program("a"); err == nil {
			t.Fatal("expected undefined-label error")
		}
	})
	t.Run("missing entry", func(t *testing.T) {
		b := NewBuilder()
		bb := b.Block("a")
		bb.Halt()
		if _, err := b.Program("zzz"); err == nil {
			t.Fatal("expected missing-entry error")
		}
	})
	t.Run("invalid register", func(t *testing.T) {
		b := NewBuilder()
		bb := b.Block("a")
		bb.Read(500)
		bb.Halt()
		if _, err := b.Program("a"); err == nil {
			t.Fatal("expected register-range error")
		}
	})
	t.Run("too many mem ops", func(t *testing.T) {
		b := NewBuilder()
		bb := b.Block("a")
		x := bb.Read(1)
		for i := 0; i < isa.MaxMemOps+1; i++ {
			bb.Load(x, int64(8*i), 8, false)
		}
		bb.Halt()
		if _, err := b.Program("a"); err == nil {
			t.Fatal("expected LSID overflow error")
		}
	})
}

func TestLabelAddrResolves(t *testing.T) {
	b := NewBuilder()
	bb := b.Block("a")
	ra := bb.LabelAddr("b")
	bb.Write(1, ra)
	bb.Branch("b")
	b2 := b.Block("b")
	b2.Halt()
	p := b.MustProgram("a")
	blkB := p.Lookup("b")
	var found bool
	for _, in := range p.Lookup("a").Insts {
		if in.Op == isa.OpGenC && in.BranchTo == "b" {
			found = true
			if uint64(in.Imm) != blkB.Addr {
				t.Fatalf("label const %#x, want %#x", in.Imm, blkB.Addr)
			}
		}
	}
	if !found {
		t.Fatal("label constant not emitted")
	}
}

func TestStaticStats(t *testing.T) {
	b := NewBuilder()
	bb := b.Block("m")
	x := bb.Read(1)
	v := bb.Load(x, 0, 8, false)
	bb.Store(x, v, 8, 8)
	bb.Halt()
	p := b.MustProgram("m")
	s := p.StaticStats()
	if s.Blocks != 1 || s.MemOps != 2 || s.Branches != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDuplicateBlockName(t *testing.T) {
	b := NewBuilder()
	bb := b.Block("m")
	bb.Halt()
	bb2 := b.Block("m") // same builder state, not a duplicate
	if bb2.s != bb.s {
		t.Fatal("Block should return the same state for the same name")
	}
}
