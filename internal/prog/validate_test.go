package prog

import (
	"strings"
	"testing"

	"github.com/clp-sim/tflex/internal/isa"
)

// haltBlock returns a minimal valid block: one unpredicated halt.
func haltBlock(name string) *isa.Block {
	return &isa.Block{
		Name:  name,
		Insts: []isa.Inst{{Op: isa.OpHalt}},
	}
}

// progOf wraps blocks into a Program without running layout, so tests
// exercise Validate directly on malformed encodings the builder would
// refuse to construct.
func progOf(blocks ...*isa.Block) *Program {
	return &Program{Blocks: blocks, Entry: blocks[0].Name}
}

func TestValidateAcceptsMinimalProgram(t *testing.T) {
	if err := Validate(progOf(haltBlock("e"))); err != nil {
		t.Fatalf("minimal program rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		prog func() *Program
		want string
	}{
		{
			name: "129th instruction",
			prog: func() *Program {
				b := haltBlock("e")
				b.Insts = make([]isa.Inst, isa.MaxBlockInsts+1)
				b.Insts[0] = isa.Inst{Op: isa.OpHalt}
				return progOf(b)
			},
			want: "129 instructions exceeds 128",
		},
		{
			name: "33rd read slot",
			prog: func() *Program {
				b := haltBlock("e")
				for i := 0; i <= isa.MaxReads; i++ {
					b.Reads = append(b.Reads, isa.ReadSlot{Reg: uint8(i)})
				}
				return progOf(b)
			},
			want: "33 reads exceeds 32",
		},
		{
			name: "33rd write slot",
			prog: func() *Program {
				b := haltBlock("e")
				for i := 0; i <= isa.MaxWrites; i++ {
					b.Writes = append(b.Writes, isa.WriteSlot{Reg: uint8(i)})
				}
				return progOf(b)
			},
			want: "33 writes exceeds 32",
		},
		{
			name: "33rd store ID",
			prog: func() *Program {
				b := haltBlock("e")
				b.Insts = append(b.Insts, isa.Inst{
					Op: isa.OpStore, LSID: int8(isa.MaxMemOps), NullLSID: -1, MemSize: 8,
				})
				return progOf(b)
			},
			want: "invalid LSID 32",
		},
		{
			name: "duplicate store ID without predication",
			prog: func() *Program {
				b := haltBlock("e")
				b.Insts = append(b.Insts,
					isa.Inst{Op: isa.OpStore, LSID: 3, NullLSID: -1, MemSize: 8},
					isa.Inst{Op: isa.OpStore, LSID: 3, NullLSID: -1, MemSize: 8},
				)
				return progOf(b)
			},
			want: "reuses LSID 3 without predication",
		},
		{
			name: "target past block end",
			prog: func() *Program {
				b := haltBlock("e")
				b.Insts = append(b.Insts, isa.Inst{
					Op: isa.OpAdd, Targets: []isa.Target{{Kind: isa.TargetLeft, Index: 9}},
				})
				return progOf(b)
			},
			want: "targets instruction 9 of 2",
		},
		{
			name: "write-slot target past the write list",
			prog: func() *Program {
				b := haltBlock("e")
				b.Insts = append(b.Insts, isa.Inst{
					Op: isa.OpAdd, Targets: []isa.Target{{Kind: isa.TargetWrite, Index: 0}},
				})
				return progOf(b)
			},
			want: "targets write slot 0 of 0",
		},
		{
			name: "dangling branch label",
			prog: func() *Program {
				b := haltBlock("e")
				b.Insts = append(b.Insts, isa.Inst{Op: isa.OpGenC, BranchTo: "nowhere"})
				return progOf(b)
			},
			want: `undefined label "nowhere"`,
		},
		{
			name: "missing entry block",
			prog: func() *Program {
				p := progOf(haltBlock("e"))
				p.Entry = "ghost"
				return p
			},
			want: `entry block "ghost" not defined`,
		},
		{
			name: "duplicate block names",
			prog: func() *Program {
				return progOf(haltBlock("e"), haltBlock("e"))
			},
			want: `duplicate block name "e"`,
		},
		{
			name: "no branch",
			prog: func() *Program {
				b := &isa.Block{Name: "e", Insts: []isa.Inst{{Op: isa.OpGenC}}}
				return progOf(b)
			},
			want: "no branch",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.prog())
			if err == nil {
				t.Fatalf("Validate accepted an invalid program (want error containing %q)", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

// TestValidateAggregates pins that Validate reports every violation of
// a candidate at once instead of stopping at the first, which is what
// makes it useful as a generator's rejection oracle.
func TestValidateAggregates(t *testing.T) {
	b := haltBlock("e")
	b.Insts = append(b.Insts,
		isa.Inst{Op: isa.OpStore, LSID: int8(isa.MaxMemOps), NullLSID: -1, MemSize: 8},
		isa.Inst{Op: isa.OpAdd, Targets: []isa.Target{{Kind: isa.TargetLeft, Index: 99}}},
	)
	p := progOf(b)
	p.Entry = "ghost"
	err := Validate(p)
	if err == nil {
		t.Fatal("Validate accepted a triply-invalid program")
	}
	for _, want := range []string{"invalid LSID 32", "targets instruction 99", `entry block "ghost"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregate error %q missing %q", err, want)
		}
	}
}

// TestBuilderCallsValidate pins that the builder's Program seal runs the
// exported validation (a builder bug that emitted an invalid encoding
// must surface at build time, not mid-simulation).
func TestBuilderCallsValidate(t *testing.T) {
	b := NewBuilder()
	bb := b.Block("e")
	bb.Branch("nowhere") // label never defined
	if _, err := b.Program("e"); err == nil || !strings.Contains(err.Error(), `undefined label "nowhere"`) {
		t.Fatalf("builder seal error = %v, want undefined-label validation error", err)
	}
}
