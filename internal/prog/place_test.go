package prog

import (
	"testing"

	"github.com/clp-sim/tflex/internal/isa"
)

// Tests for the instruction placement pass (the TRIPS scheduler role).

func placedProgram(t *testing.T) *isa.Block {
	t.Helper()
	b := NewBuilder()
	bb := b.Block("m")
	// Two independent dependence chains plus a shared input.
	x := bb.Read(1)
	c1 := bb.AddI(x, 1)
	for k := 0; k < 5; k++ {
		c1 = bb.MulI(c1, 3)
	}
	bb.Write(2, c1)
	c2 := bb.AddI(x, 2)
	for k := 0; k < 5; k++ {
		c2 = bb.AddI(c2, 7)
	}
	bb.Write(3, c2)
	bb.Halt()
	p, err := b.Program("m")
	if err != nil {
		t.Fatal(err)
	}
	return p.Lookup("m")
}

func TestPlacementIDsUniqueAndBounded(t *testing.T) {
	blk := placedProgram(t)
	if len(blk.Insts) > isa.MaxBlockInsts {
		t.Fatalf("block has %d slots", len(blk.Insts))
	}
	// Non-nop instructions occupy distinct slots by construction (the
	// slice is the placement); verify the count matches the dataflow.
	n := 0
	for i := range blk.Insts {
		if blk.Insts[i].Op != isa.OpNop {
			n++
		}
	}
	if n < 13 {
		t.Fatalf("only %d placed instructions", n)
	}
}

func TestPlacementKeepsChainsInOneClass(t *testing.T) {
	blk := placedProgram(t)
	// Walk each dependence edge: producer -> consumer should mostly stay
	// in the same congruence class mod 32 (fan-out movs may hop).
	sameClass, edges := 0, 0
	for id := range blk.Insts {
		in := &blk.Insts[id]
		if in.Op == isa.OpNop {
			continue
		}
		for _, tg := range in.Targets {
			if tg.Kind == isa.TargetWrite {
				continue
			}
			edges++
			if id%32 == int(tg.Index)%32 {
				sameClass++
			}
		}
	}
	if edges == 0 {
		t.Fatal("no edges")
	}
	if frac := float64(sameClass) / float64(edges); frac < 0.6 {
		t.Fatalf("only %.0f%% of dependence edges stay in one class", 100*frac)
	}
}

func TestPlacementAffinityStableAcrossCompositions(t *testing.T) {
	// Two instructions in the same class mod 32 are on the same core for
	// every supported composition size (all divide 32).
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		for id := 0; id < 128; id++ {
			if (id%32)%n != id%n {
				t.Fatalf("class invariant broken: id %d, n %d", id, n)
			}
		}
	}
}

func TestPlacementSpillsWhenClassFull(t *testing.T) {
	// A single chain of >4 instructions cannot fit one class (4 slots per
	// class); the placement must spill without exceeding limits.
	b := NewBuilder()
	bb := b.Block("m")
	v := bb.Read(1)
	for k := 0; k < 20; k++ {
		v = bb.AddI(v, 1)
	}
	bb.Write(2, v)
	bb.Halt()
	p, err := b.Program("m")
	if err != nil {
		t.Fatal(err)
	}
	blk := p.Lookup("m")
	if err := blk.Validate(); err != nil {
		t.Fatal(err)
	}
	// The chain still computes correctly (covered elsewhere); here check
	// occupancy per class stays within the 4-slot cap.
	var load [32]int
	for id := range blk.Insts {
		if blk.Insts[id].Op != isa.OpNop {
			load[id%32]++
			if load[id%32] > 4 {
				t.Fatalf("class %d over capacity", id%32)
			}
		}
	}
}

func TestFullBlockPlacement(t *testing.T) {
	// Fill a block close to the 128-instruction limit and confirm the
	// placement still fits and validates.
	b := NewBuilder()
	bb := b.Block("m")
	x := bb.Read(1)
	var acc Ref = bb.AddI(x, 0)
	for k := 0; k < 120; k++ {
		acc = bb.AddI(acc, int64(k))
	}
	bb.Write(2, acc)
	bb.Halt()
	p, err := b.Program("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Lookup("m").Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOverfullBlockRejected(t *testing.T) {
	b := NewBuilder()
	bb := b.Block("m")
	x := bb.Read(1)
	var acc Ref = bb.AddI(x, 0)
	for k := 0; k < 140; k++ {
		acc = bb.AddI(acc, 1)
	}
	bb.Write(2, acc)
	bb.Halt()
	if _, err := b.Program("m"); err == nil {
		t.Fatal("141-instruction block should be rejected")
	}
}
