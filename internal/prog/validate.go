package prog

import (
	"errors"
	"fmt"

	"github.com/clp-sim/tflex/internal/isa"
)

// Validate checks every architectural and structural constraint on a
// program: per-block ISA limits (instruction count, read/write/store
// caps, duplicate store IDs, target fields within the block) plus the
// program-level invariants no single block can see — a defined entry
// block, unique block names, and branch labels that resolve to blocks
// of this program.  It is the hardened front door for generated code:
// the builder calls it on every sealed program, and external producers
// (the assembler, the fuzzer's program generator, a future compiler
// back end) get precise per-block errors instead of a mid-simulation
// panic.
//
// Validate aggregates every finding via errors.Join rather than
// stopping at the first, so a generator can see all violations of one
// candidate at once.
func Validate(p *Program) error {
	var errs []error
	names := make(map[string]bool, len(p.Blocks))
	for _, b := range p.Blocks {
		if names[b.Name] {
			errs = append(errs, fmt.Errorf("prog: duplicate block name %q", b.Name))
		}
		names[b.Name] = true
	}
	if p.Entry == "" {
		errs = append(errs, fmt.Errorf("prog: no entry block"))
	} else if !names[p.Entry] {
		errs = append(errs, fmt.Errorf("prog: entry block %q not defined", p.Entry))
	}
	for _, b := range p.Blocks {
		// Dangling control flow: every direct branch label must name a
		// block of this program.
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.BranchTo == "" {
				continue
			}
			if !names[in.BranchTo] {
				errs = append(errs, fmt.Errorf("prog: block %s references undefined label %q", b.Name, in.BranchTo))
			}
		}
		// Block-local ISA constraints (caps, LSIDs, target fields).
		if err := b.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ValidateBlock checks one block's ISA constraints in isolation; it is
// Validate without the cross-block label resolution.
func ValidateBlock(b *isa.Block) error { return b.Validate() }
