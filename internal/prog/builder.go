package prog

import (
	"fmt"
	"math"

	"github.com/clp-sim/tflex/internal/isa"
)

// Builder accumulates blocks and produces a laid-out Program.
type Builder struct {
	names  []string
	blocks map[string]*blockState
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{blocks: make(map[string]*blockState)}
}

// Block starts (or retrieves) the block with the given label and returns a
// builder for it.
func (b *Builder) Block(name string) *BlockBuilder {
	s, ok := b.blocks[name]
	if !ok {
		s = &blockState{name: name, writeSlot: map[uint8]int{}, readSlot: map[uint8]int{}}
		b.blocks[name] = s
		b.names = append(b.names, name)
	}
	return &BlockBuilder{s: s}
}

// Program seals every block, lays out the program and validates it.
func (b *Builder) Program(entry string) (*Program, error) {
	p := &Program{Entry: entry}
	for _, name := range b.names {
		s := b.blocks[name]
		blk, err := s.seal()
		if err != nil {
			return nil, err
		}
		p.Blocks = append(p.Blocks, blk)
	}
	if err := p.layout(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustProgram is Program but panics on error; for tests and kernels whose
// construction is statically known to be valid.
func (b *Builder) MustProgram(entry string) *Program {
	p, err := b.Program(entry)
	if err != nil {
		panic(err)
	}
	return p
}

// Ref is an SSA-style reference to a value produced inside a block: a
// register read, an instruction result, or a select merge.
type Ref struct {
	s   *blockState
	idx int
	ok  bool
}

// Valid reports whether the Ref refers to a value.
func (r Ref) Valid() bool { return r.ok }

type nodeKind uint8

const (
	nodeInst nodeKind = iota
	nodeRead
	nodeMerge
)

// endpoint is a resolved consumer: instruction node index + operand slot,
// or a write slot.
type endpoint struct {
	kind isa.TargetKind
	node int // node index for L/R/P; write-slot index for W
}

type node struct {
	kind nodeKind

	// nodeRead
	reg uint8

	// nodeInst
	op        isa.Opcode
	imm       int64
	hasImm    bool
	a, b, p   Ref
	predKind  isa.PredKind
	lsid      int8
	nullLSID  int8
	memSize   uint8
	memSigned bool
	exit      uint8
	branchTo  string

	// nodeMerge
	mergeA, mergeB int // node indices of the two producers

	id        int // instruction ID after seal (insts only)
	consumers []endpoint
}

type blockState struct {
	name      string
	nodes     []node
	writes    []isa.WriteSlot
	writeSlot map[uint8]int
	readSlot  map[uint8]int
	nextLSID  int8
	nextExit  uint8
	err       error
}

func (s *blockState) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf("block %s: %s", s.name, fmt.Sprintf(format, args...))
	}
}

func (s *blockState) add(n node) Ref {
	s.nodes = append(s.nodes, n)
	return Ref{s: s, idx: len(s.nodes) - 1, ok: true}
}

func (s *blockState) check(r Ref, what string) bool {
	if s.err != nil {
		return false
	}
	if !r.ok {
		s.fail("%s: invalid value reference", what)
		return false
	}
	if r.s != s {
		s.fail("%s: value reference from block %s", what, r.s.name)
		return false
	}
	return true
}

// BlockBuilder emits dataflow into one block.  The zero-guard builder emits
// unpredicated instructions; When/Unless return guarded builders.
type BlockBuilder struct {
	s         *blockState
	guard     Ref
	guardKind isa.PredKind
}

// Name returns the block's label.
func (bb *BlockBuilder) Name() string { return bb.s.name }

// Err returns the first construction error, if any.
func (bb *BlockBuilder) Err() error { return bb.s.err }

func (bb *BlockBuilder) apply(n *node) {
	if bb.guardKind != isa.PredNone {
		n.p = bb.guard
		n.predKind = bb.guardKind
	}
}

// When returns a builder whose emissions are predicated on p being true
// (non-zero).  p should be a 0/1 value (e.g. from a comparison).  Guards
// nest: a When inside a When combines predicates with AND.
func (bb *BlockBuilder) When(p Ref) *BlockBuilder { return bb.guarded(p, isa.PredOnTrue) }

// Unless returns a builder predicated on p being false (zero).
func (bb *BlockBuilder) Unless(p Ref) *BlockBuilder { return bb.guarded(p, isa.PredOnFalse) }

func (bb *BlockBuilder) guarded(p Ref, kind isa.PredKind) *BlockBuilder {
	if !bb.s.check(p, "guard") {
		return &BlockBuilder{s: bb.s}
	}
	if bb.guardKind == isa.PredNone {
		return &BlockBuilder{s: bb.s, guard: p, guardKind: kind}
	}
	// Nested guard: combine with the enclosing one into a single 0/1 value.
	base := bb.s
	outer := bb.boolOfGuard()
	inner := p
	if kind == isa.PredOnFalse {
		root := &BlockBuilder{s: base}
		inner = root.OpI(isa.OpEq, p, 0)
	}
	root := &BlockBuilder{s: base}
	combined := root.Op(isa.OpAnd, outer, inner)
	return &BlockBuilder{s: base, guard: combined, guardKind: isa.PredOnTrue}
}

// GuardValue materializes the builder's current guard as an unpredicated
// 0/1 value, so callers can emit complementary writes for the "else" side
// of a (possibly nested) guarded region.  Returns an invalid Ref if the
// builder is unguarded.
func (bb *BlockBuilder) GuardValue() Ref {
	if bb.guardKind == isa.PredNone {
		bb.s.fail("GuardValue on unguarded builder")
		return Ref{}
	}
	return bb.boolOfGuard()
}

// boolOfGuard materializes the current guard as an unpredicated 0/1 value.
func (bb *BlockBuilder) boolOfGuard() Ref {
	root := &BlockBuilder{s: bb.s}
	if bb.guardKind == isa.PredOnFalse {
		return root.OpI(isa.OpEq, bb.guard, 0)
	}
	return root.OpI(isa.OpNe, bb.guard, 0)
}

// Read injects architectural register reg into the dataflow graph.
// Repeated reads of the same register share one read slot.
func (bb *BlockBuilder) Read(reg int) Ref {
	s := bb.s
	if s.err != nil {
		return Ref{}
	}
	if reg < 0 || reg >= isa.NumRegs {
		s.fail("read of invalid register %d", reg)
		return Ref{}
	}
	if idx, ok := s.readSlot[uint8(reg)]; ok {
		return Ref{s: s, idx: idx, ok: true}
	}
	r := s.add(node{kind: nodeRead, reg: uint8(reg)})
	s.readSlot[uint8(reg)] = r.idx
	return r
}

// Write routes v to architectural register reg at block commit.  Multiple
// (complementarily predicated) producers may write the same register.
func (bb *BlockBuilder) Write(reg int, v Ref) {
	s := bb.s
	if !s.check(v, "write") {
		return
	}
	if reg < 0 || reg >= isa.NumRegs {
		s.fail("write of invalid register %d", reg)
		return
	}
	slot, ok := s.writeSlot[uint8(reg)]
	if !ok {
		slot = len(s.writes)
		s.writes = append(s.writes, isa.WriteSlot{Reg: uint8(reg)})
		s.writeSlot[uint8(reg)] = slot
	}
	// Route through a mov so predication and fan-out stay uniform: a write
	// from a guarded region must be a guarded producer.
	if bb.guardKind != isa.PredNone || s.nodes[v.idx].kind == nodeMerge {
		n := node{kind: nodeInst, op: isa.OpMov, a: v, nullLSID: -1}
		bb.apply(&n)
		v = s.add(n)
	}
	s.nodes[v.idx].consumers = append(s.nodes[v.idx].consumers, endpoint{isa.TargetWrite, slot})
}

// Const produces a signed 64-bit constant.
func (bb *BlockBuilder) Const(v int64) Ref {
	if bb.s.err != nil {
		return Ref{}
	}
	n := node{kind: nodeInst, op: isa.OpGenC, imm: v, nullLSID: -1}
	bb.apply(&n)
	return bb.s.add(n)
}

// ConstU produces an unsigned 64-bit constant.
func (bb *BlockBuilder) ConstU(v uint64) Ref { return bb.Const(int64(v)) }

// ConstF produces a float64 constant (as its bit pattern).
func (bb *BlockBuilder) ConstF(v float64) Ref { return bb.Const(int64(math.Float64bits(v))) }

// LabelAddr produces the address of a labeled block as a constant; the
// value is resolved at layout time.  Used to materialize return addresses.
func (bb *BlockBuilder) LabelAddr(label string) Ref {
	if bb.s.err != nil {
		return Ref{}
	}
	n := node{kind: nodeInst, op: isa.OpGenC, branchTo: label, nullLSID: -1}
	bb.apply(&n)
	return bb.s.add(n)
}

// Op emits a two-operand instruction.
func (bb *BlockBuilder) Op(op isa.Opcode, a, b Ref) Ref {
	s := bb.s
	if op.NumOperands() != 2 || op.IsMem() {
		s.fail("Op(%s): not a two-operand ALU opcode", op)
		return Ref{}
	}
	if !s.check(a, op.String()) || !s.check(b, op.String()) {
		return Ref{}
	}
	n := node{kind: nodeInst, op: op, a: a, b: b, nullLSID: -1}
	bb.apply(&n)
	return s.add(n)
}

// OpI emits a two-operand instruction with an immediate right operand.
func (bb *BlockBuilder) OpI(op isa.Opcode, a Ref, imm int64) Ref {
	s := bb.s
	if op.NumOperands() != 2 || op.IsMem() || op.IsFP() {
		s.fail("OpI(%s): not an immediate-capable opcode", op)
		return Ref{}
	}
	if !s.check(a, op.String()) {
		return Ref{}
	}
	n := node{kind: nodeInst, op: op, a: a, imm: imm, hasImm: true, nullLSID: -1}
	bb.apply(&n)
	return s.add(n)
}

// Op1 emits a one-operand instruction (mov, fsqrt, itof, ftoi).
func (bb *BlockBuilder) Op1(op isa.Opcode, a Ref) Ref {
	s := bb.s
	if op.NumOperands() != 1 || op.IsMem() || op.IsBranch() {
		s.fail("Op1(%s): not a one-operand opcode", op)
		return Ref{}
	}
	if !s.check(a, op.String()) {
		return Ref{}
	}
	n := node{kind: nodeInst, op: op, a: a, nullLSID: -1}
	bb.apply(&n)
	return s.add(n)
}

// Convenience arithmetic wrappers.
func (bb *BlockBuilder) Add(a, b Ref) Ref        { return bb.Op(isa.OpAdd, a, b) }
func (bb *BlockBuilder) AddI(a Ref, v int64) Ref { return bb.OpI(isa.OpAdd, a, v) }
func (bb *BlockBuilder) Sub(a, b Ref) Ref        { return bb.Op(isa.OpSub, a, b) }
func (bb *BlockBuilder) Mul(a, b Ref) Ref        { return bb.Op(isa.OpMul, a, b) }
func (bb *BlockBuilder) MulI(a Ref, v int64) Ref { return bb.OpI(isa.OpMul, a, v) }
func (bb *BlockBuilder) ShlI(a Ref, v int64) Ref { return bb.OpI(isa.OpShl, a, v) }
func (bb *BlockBuilder) ShrI(a Ref, v int64) Ref { return bb.OpI(isa.OpShr, a, v) }
func (bb *BlockBuilder) AndI(a Ref, v int64) Ref { return bb.OpI(isa.OpAnd, a, v) }
func (bb *BlockBuilder) Mov(a Ref) Ref           { return bb.Op1(isa.OpMov, a) }

// Load emits a load of size bytes from addr+off.
func (bb *BlockBuilder) Load(addr Ref, off int64, size int, signed bool) Ref {
	s := bb.s
	if !s.check(addr, "load") {
		return Ref{}
	}
	lsid := s.allocLSID()
	n := node{kind: nodeInst, op: isa.OpLoad, a: addr, imm: off, hasImm: true,
		lsid: lsid, nullLSID: -1, memSize: uint8(size), memSigned: signed}
	bb.apply(&n)
	return s.add(n)
}

// Store emits a store of size bytes of val to addr+off.
func (bb *BlockBuilder) Store(addr, val Ref, off int64, size int) {
	s := bb.s
	if !s.check(addr, "store addr") || !s.check(val, "store value") {
		return
	}
	lsid := s.allocLSID()
	if bb.guardKind != isa.PredNone {
		// A guarded store must retire its LSID on the other arm too.
		n := node{kind: nodeInst, op: isa.OpStore, a: addr, b: val, imm: off, hasImm: true,
			lsid: lsid, nullLSID: -1, memSize: uint8(size)}
		bb.apply(&n)
		s.add(n)
		null := node{kind: nodeInst, op: isa.OpNull, lsid: lsid, nullLSID: lsid,
			p: bb.guard, predKind: complement(bb.guardKind)}
		s.add(null)
		return
	}
	n := node{kind: nodeInst, op: isa.OpStore, a: addr, b: val, imm: off, hasImm: true,
		lsid: lsid, nullLSID: -1, memSize: uint8(size)}
	s.add(n)
}

func complement(k isa.PredKind) isa.PredKind {
	if k == isa.PredOnTrue {
		return isa.PredOnFalse
	}
	return isa.PredOnTrue
}

func (s *blockState) allocLSID() int8 {
	id := s.nextLSID
	s.nextLSID++
	if int(s.nextLSID) > isa.MaxMemOps {
		s.fail("more than %d memory operations", isa.MaxMemOps)
	}
	return id
}

// Select returns v = p ? a : b via complementary predicated movs.
func (bb *BlockBuilder) Select(p, a, b Ref) Ref {
	s := bb.s
	if !s.check(p, "select pred") || !s.check(a, "select a") || !s.check(b, "select b") {
		return Ref{}
	}
	t := bb.When(p)
	f := bb.Unless(p)
	ra := t.Mov(a)
	rb := f.Mov(b)
	if s.err != nil {
		return Ref{}
	}
	return s.add(node{kind: nodeMerge, mergeA: ra.idx, mergeB: rb.idx, nullLSID: -1})
}

// Branch emits an unconditional branch to label.
func (bb *BlockBuilder) Branch(label string) { bb.branch(isa.OpBro, label, Ref{}) }

// Call emits a call branch to label; the predictor pushes the next
// sequential block on the RAS.  The architectural return address must be
// passed by the program (see LabelAddr).
func (bb *BlockBuilder) Call(label string) { bb.branch(isa.OpCallo, label, Ref{}) }

// Ret emits a return branch whose target address is the operand value.
func (bb *BlockBuilder) Ret(addr Ref) { bb.branch(isa.OpRet, "", addr) }

// Halt terminates the program.
func (bb *BlockBuilder) Halt() { bb.branch(isa.OpHalt, "", Ref{}) }

func (bb *BlockBuilder) branch(op isa.Opcode, label string, addr Ref) {
	s := bb.s
	if s.err != nil {
		return
	}
	if op == isa.OpRet && !s.check(addr, "ret") {
		return
	}
	exit := s.nextExit
	s.nextExit++
	if s.nextExit > isa.NumExits {
		s.fail("more than %d exits", isa.NumExits)
		return
	}
	n := node{kind: nodeInst, op: op, branchTo: label, exit: exit, nullLSID: -1}
	if op == isa.OpRet {
		n.a = addr
	}
	bb.apply(&n)
	s.add(n)
}

// BranchIf emits a conditional pair: branch to thenLabel if p, else to
// elseLabel.  Exactly one of the two branches fires.
func (bb *BlockBuilder) BranchIf(p Ref, thenLabel, elseLabel string) {
	bb.When(p).Branch(thenLabel)
	bb.Unless(p).Branch(elseLabel)
}

// placeInsts assigns instruction IDs so that dependence chains share a
// congruence class modulo 32 — the role of the TRIPS instruction
// scheduler.  Since targets are interpreted as (id mod n) for an n-core
// composition and all supported n divide 32, instructions placed in the
// same class execute on the same core under every composition: dependent
// operations bypass locally instead of hopping the mesh.  Programs are
// thus "scheduled for 32 cores" and run well on fewer, as in the paper.
func (s *blockState) placeInsts() {
	const classes = 32
	slotCap := isa.MaxBlockInsts / classes
	var load [classes]int
	classOf := make([]int, len(s.nodes))
	for i := range classOf {
		classOf[i] = -1
	}
	producerClass := func(r Ref) int {
		if !r.ok {
			return -1
		}
		idx := r.idx
		for s.nodes[idx].kind == nodeMerge {
			idx = s.nodes[idx].mergeA
		}
		switch s.nodes[idx].kind {
		case nodeInst:
			return classOf[idx]
		case nodeRead:
			return int(s.nodes[idx].reg) % classes
		}
		return -1
	}
	leastLoaded := func() int {
		c := 0
		for i := 1; i < classes; i++ {
			if load[i] < load[c] {
				c = i
			}
		}
		return c
	}
	for i := range s.nodes {
		n := &s.nodes[i]
		if n.kind != nodeInst {
			continue
		}
		want := producerClass(n.a)
		if want < 0 {
			want = producerClass(n.b)
		}
		if want < 0 {
			want = producerClass(n.p)
		}
		if want < 0 && n.op == isa.OpMov && len(n.consumers) > 0 {
			// Fan-out mov with no recorded producer ref: sit near its
			// first consumer.
			ep := n.consumers[0]
			if ep.kind == isa.TargetWrite {
				want = int(s.writes[ep.node].Reg) % classes
			} else if classOf[ep.node] >= 0 {
				want = classOf[ep.node]
			}
		}
		cls := want
		if cls < 0 || load[cls] >= slotCap {
			cls = leastLoaded()
		}
		n.id = cls + classes*load[cls]
		classOf[i] = cls
		load[cls]++
	}
}

// seal resolves merges, builds fan-out trees, assigns instruction IDs and
// emits the final isa.Block.
func (s *blockState) seal() (*isa.Block, error) {
	if s.err != nil {
		return nil, s.err
	}
	// Resolve operand references into consumer lists on producers.
	resolveInto := func(producer Ref, ep endpoint) {
		// Follow merge chains: both arms gain the endpoint.
		var walk func(idx int)
		walk = func(idx int) {
			n := &s.nodes[idx]
			if n.kind == nodeMerge {
				walk(n.mergeA)
				walk(n.mergeB)
				return
			}
			n.consumers = append(n.consumers, ep)
		}
		walk(producer.idx)
	}
	for i := range s.nodes {
		n := &s.nodes[i]
		if n.kind != nodeInst {
			continue
		}
		if n.a.ok {
			resolveInto(n.a, endpoint{isa.TargetLeft, i})
		}
		if n.b.ok {
			resolveInto(n.b, endpoint{isa.TargetRight, i})
		}
		if n.p.ok {
			resolveInto(n.p, endpoint{isa.TargetPred, i})
		}
	}
	// Fan-out: while a producer has more than MaxTargets consumers, pair
	// endpoints under fresh movs (balanced reduction).
	nInsts := 0
	for i := range s.nodes {
		if s.nodes[i].kind == nodeInst {
			nInsts++
		}
	}
	for i := 0; i < len(s.nodes); i++ {
		n := &s.nodes[i]
		if n.kind == nodeMerge {
			continue
		}
		for len(n.consumers) > isa.MaxTargets {
			var next []endpoint
			eps := n.consumers
			for len(eps) >= 2 {
				mov := node{kind: nodeInst, op: isa.OpMov, nullLSID: -1,
					consumers: []endpoint{eps[0], eps[1]}}
				nInsts++
				s.nodes = append(s.nodes, mov)
				n = &s.nodes[i] // s.nodes may have been reallocated
				next = append(next, endpoint{isa.TargetLeft, len(s.nodes) - 1})
				eps = eps[2:]
			}
			next = append(next, eps...)
			n.consumers = next
		}
	}
	if nInsts > isa.MaxBlockInsts {
		return nil, fmt.Errorf("block %s: %d instructions after fan-out exceeds %d", s.name, nInsts, isa.MaxBlockInsts)
	}
	s.placeInsts()
	// The fan-out movs introduced above use node indices in their
	// endpoints, but endpoints created from operand refs also use node
	// indices, so translation to instruction IDs is uniform.
	nodeToID := make([]int, len(s.nodes))
	for i := range s.nodes {
		nodeToID[i] = s.nodes[i].id
	}
	targetsOf := func(n *node) ([]isa.Target, error) {
		var ts []isa.Target
		for _, ep := range n.consumers {
			switch ep.kind {
			case isa.TargetWrite:
				ts = append(ts, isa.Target{Kind: isa.TargetWrite, Index: uint8(ep.node)})
			default:
				dst := nodeToID[ep.node]
				// The mov endpoints reference mov nodes by index whose
				// endpoint kind is TargetLeft; instruction endpoints carry
				// their own kind.
				ts = append(ts, isa.Target{Kind: ep.kind, Index: uint8(dst)})
			}
		}
		if len(ts) > isa.MaxTargets {
			return nil, fmt.Errorf("block %s: internal: %d targets after fan-out", s.name, len(ts))
		}
		return ts, nil
	}

	blk := &isa.Block{Name: s.name, Writes: s.writes}
	maxID := 0
	for i := range s.nodes {
		if s.nodes[i].kind == nodeInst && s.nodes[i].id > maxID {
			maxID = s.nodes[i].id
		}
	}
	// Slots the placement left unused stay as nops (TRIPS blocks are
	// fixed-format 128-slot chunks; unused slots are never dispatched).
	blk.Insts = make([]isa.Inst, maxID+1)
	storeIDs := map[int8]bool{}
	for i := range s.nodes {
		n := &s.nodes[i]
		switch n.kind {
		case nodeRead:
			ts, err := targetsOf(n)
			if err != nil {
				return nil, err
			}
			blk.Reads = append(blk.Reads, isa.ReadSlot{Reg: n.reg, Targets: ts})
		case nodeInst:
			ts, err := targetsOf(n)
			if err != nil {
				return nil, err
			}
			in := isa.Inst{
				Op: n.op, Pred: n.predKind, Imm: n.imm, HasImm: n.hasImm,
				Targets: ts, LSID: n.lsid, NullLSID: n.nullLSID,
				MemSize: n.memSize, MemSigned: n.memSigned,
				Exit: n.exit, BranchTo: n.branchTo,
			}
			if n.op == isa.OpStore || (n.op == isa.OpNull && n.nullLSID >= 0) {
				storeIDs[n.lsid] = true
			}
			blk.Insts[n.id] = in
		}
	}
	blk.NumStores = len(storeIDs)
	if len(blk.Reads) > isa.MaxReads {
		return nil, fmt.Errorf("block %s: %d reads exceeds %d", s.name, len(blk.Reads), isa.MaxReads)
	}
	return blk, nil
}
