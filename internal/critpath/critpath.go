// Package critpath is the cycle-accurate critical-path attribution
// engine: for every committed block it walks the dynamic dataflow graph
// recorded during execution — the edge that last armed each instruction,
// plus the per-stage timestamps stamped by the simulator — and charges
// every cycle of the block's latency (retire time minus fetch start) to
// exactly one of eight categories.
//
// The central invariant is *exact reconciliation*:
//
//	sum over categories of Breakdown[c] == RetiredAt - FetchStart
//
// and it holds structurally, not statistically: Attribute fills the
// block's latency interval with a monotonically receding cursor, every
// charge is clamped to the still-uncovered part of the interval, and any
// residue left when the recorded chain runs out (a broken edge, an
// unwalkable record) is charged to FetchDispatch.  Garbage or missing
// records can therefore skew *which* category a cycle lands in, never
// the total.
//
// Recording follows the telemetry disabled-cost contract (DESIGN.md):
// when attribution is off the per-block record pointer is nil and every
// simulator-side stamp compiles to a nil check.  Recording is purely
// passive — it never changes scheduling decisions — so architectural
// results are byte-identical with attribution on or off.
package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Category is one destination for attributed cycles.
type Category uint8

const (
	// FetchDispatch: block fetch pipeline (prediction, I-cache hit
	// pipeline, instruction broadcast, per-core dispatch) plus any
	// residue the dataflow walk could not attribute.
	FetchDispatch Category = iota
	// NoCHop: unloaded operand-network traversal — the Manhattan hop
	// distance each critical operand actually had to cross.
	NoCHop
	// NoCContention: operand-network queueing — actual traversal time
	// minus the unloaded hop latency.
	NoCContention
	// ALUOccupancy: issue-slot wait after wakeup plus execution latency
	// of critical instructions.
	ALUOccupancy
	// LSQWait: memory-bank queueing, NACK replay and deferred-load
	// retry time between bank arrival and cache service.
	LSQWait
	// CacheMiss: I-cache stall on fetch plus D-side L1/L2/DRAM access
	// and fill time of critical loads.
	CacheMiss
	// RegRW: register-file read wait, from read dispatch until the
	// value (possibly forwarded by an older block) left the bank.
	RegRW
	// Commit: completion-signal collection at the owner, commit-token
	// wait and the distributed commit protocol itself.
	Commit

	// NumCategories is the number of attribution categories.
	NumCategories = 8
)

var categoryNames = [NumCategories]string{
	"fetch_dispatch",
	"noc_hop",
	"noc_contention",
	"alu_occupancy",
	"lsq_wait",
	"cache_miss",
	"reg_rw",
	"commit",
}

// String returns the category's metric-name form ("noc_contention"),
// used both as the telemetry histogram suffix and the JSON key.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("category%d", uint8(c))
}

// Short returns a compact table-column label.
func (c Category) Short() string {
	short := [NumCategories]string{
		"fetch", "noc-hop", "noc-cont", "alu", "lsq", "cache", "reg", "commit",
	}
	if int(c) < len(short) {
		return short[c]
	}
	return c.String()
}

// Breakdown is one block's (or an aggregate's) attributed cycles by
// category.
type Breakdown [NumCategories]uint64

// Total sums all categories; for a single committed block it equals the
// block latency exactly.
func (b Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

// Add accumulates another breakdown in place.
func (b *Breakdown) Add(o Breakdown) {
	for i, v := range o {
		b[i] += v
	}
}

// SrcKind identifies what produced a recorded value.
type SrcKind uint8

const (
	// SrcNone marks an unrecorded or untraceable producer.
	SrcNone SrcKind = iota
	// SrcInst marks a producing instruction (Src is its block index).
	SrcInst
	// SrcRegRead marks a register read (Src is the read index).
	SrcRegRead
)

// Edge is one operand delivery: who sent it, when it left, the unloaded
// hop latency of the route, and when it arrived.
type Edge struct {
	Kind     SrcKind
	Valid    bool
	Src      int32
	SendAt   uint64
	HopIdeal uint64
	ArriveAt uint64
}

// Inst is the per-instruction timestamp record.  Edge fields hold the
// operand deliveries; the memory fields are stamped only for loads and
// stores (IsMem).  Gen tags the incarnation that stamped the record
// (see Block.Gen): entries are recycled lazily via InstAt instead of a
// bulk clear on every fetch, and the walker treats a stale Gen as
// unrecorded.  The field sits in the struct's alignment padding, so the
// tag is free.
type Inst struct {
	Left, Right, Pred Edge

	AvailAt uint64 // dispatched into the window
	ReadyAt uint64 // all operands armed
	IssueAt uint64 // won an issue slot
	Issued  bool

	IsMem bool
	Gen   uint32

	AgenDone   uint64 // address generation complete
	BankIdeal  uint64 // unloaded core->bank hop latency
	BankArrive uint64 // first arrival at the data bank
	SvcAt      uint64 // cache port service start (post NACK/defer replay)
	AccessDone uint64 // L1 access (or forward) complete
	DataAt     uint64 // load data available (after any miss fill)
}

// Read is the per-register-read record.
type Read struct {
	DispatchAt uint64 // read request reached its bank
}

// WriteOut is the per-register-write record: the producer edge (local
// delivery), the operand-network trip to the register bank, and whether
// the write was nullified.  Gen tags the stamping incarnation exactly
// as in Inst; recycle through WriteAt.
type WriteOut struct {
	Edge      Edge
	Null      bool
	Gen       uint32
	SendAt    uint64 // producer completion (also Edge.SendAt when Valid)
	BankAt    uint64 // value arrived at the register bank
	BankIdeal uint64 // unloaded producer->bank hop latency
}

// SlotOut is a store/null-slot (or branch) completion record.
type SlotOut struct {
	Kind       SrcKind
	Src        int32
	ResolvedAt uint64
	Valid      bool
}

// OutKind identifies which output completed last (armed block
// completion) — the root of the backward walk.
type OutKind uint8

const (
	// OutNone means no output was recorded as last.
	OutNone OutKind = iota
	// OutWrite roots the walk at register write LastIdx.
	OutWrite
	// OutStore roots the walk at store/null slot LastIdx.
	OutStore
	// OutBranch roots the walk at the block's branch.
	OutBranch
)

// Block is the complete per-block attribution record.  Instances are
// pooled alongside the simulator's IFBs and recycled via ResetBlock.
//
// The two large record arrays (Insts, Writes) are generation-tagged
// rather than bulk-cleared on every fetch: ResetBlock bumps Gen, and a
// record entry is valid for the current incarnation only when its own
// Gen matches.  Stamp sites recycle entries lazily through InstAt and
// WriteAt (zeroing on first touch), so the per-fetch reset cost no
// longer scales with block size — the dominant overhead of attribution
// before this scheme.  The walker ignores stale-Gen entries, so an
// entry never touched in this incarnation behaves exactly as if it had
// been zeroed.  Reads and Slots are small and stamped through scattered
// conditional sites, so they keep the eager clear.
type Block struct {
	FetchStart  uint64
	ConstLat    uint64
	ICacheStall uint64
	BcastLat    uint64
	DispatchLat uint64
	CompleteAt  uint64
	CommitStart uint64
	RetiredAt   uint64

	Gen uint32 // current incarnation tag (never 0 after ResetBlock)

	Insts  []Inst
	Reads  []Read
	Writes []WriteOut
	Slots  []SlotOut
	Branch SlotOut

	LastOut OutKind
	LastIdx int32

	Result Breakdown // filled by Attribute at commit
}

// blockPool recycles whole attribution records across simulations.
// Experiment suites create thousands of short-lived chips, and without
// cross-chip reuse the record arrays dominate the attribution pass's
// allocation volume — and therefore its GC frequency, which is most of
// attribution's measured overhead once per-fetch clearing is lazy.  A
// Block carries its generation counter with it, so a recycled record's
// stale entries stay invisible to the tag check no matter which chip
// it lands on.
var blockPool = sync.Pool{New: func() any { return new(Block) }}

// GetBlock returns a pooled attribution record.  Recycle it with
// ResetBlock before stamping.
func GetBlock() *Block { return blockPool.Get().(*Block) }

// PutBlock returns a record to the cross-simulation pool.
func PutBlock(b *Block) {
	if b != nil {
		blockPool.Put(b)
	}
}

// InstAt returns the i'th instruction record, zeroing it first if it
// still carries a previous incarnation's stamps.
func (b *Block) InstAt(i int) *Inst {
	in := &b.Insts[i]
	if in.Gen != b.Gen {
		*in = Inst{Gen: b.Gen}
	}
	return in
}

// WriteAt returns the i'th register-write record, zeroing it first if
// it still carries a previous incarnation's stamps.
func (b *Block) WriteAt(i int) *WriteOut {
	w := &b.Writes[i]
	if w.Gen != b.Gen {
		*w = WriteOut{Gen: b.Gen}
	}
	return w
}

// resetSlice returns s resized to n with every element zeroed, reusing
// capacity when possible.
func resetSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resizeLazy returns s resized to n without clearing: stale elements
// are detected by their generation tag and recycled at first touch.  A
// fresh allocation is zero anyway (Gen 0 never matches a live Block).
func resizeLazy[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ResetBlock recycles blk (allocating on first use) for a new block
// incarnation with the given record dimensions.  Scalars, Reads and
// Slots come back zeroed; Insts and Writes are invalidated by the
// generation bump and recycled lazily via InstAt/WriteAt.
func ResetBlock(blk *Block, nInsts, nWrites, nReads, nSlots int) *Block {
	if blk == nil {
		blk = &Block{}
	}
	blk.Gen++
	if blk.Gen == 0 { // wrapped: tags from 2^32 incarnations ago could collide
		blk.Gen = 1
		clear(blk.Insts[:cap(blk.Insts)])
		clear(blk.Writes[:cap(blk.Writes)])
	}
	blk.FetchStart = 0
	blk.ConstLat = 0
	blk.ICacheStall = 0
	blk.BcastLat = 0
	blk.DispatchLat = 0
	blk.CompleteAt = 0
	blk.CommitStart = 0
	blk.RetiredAt = 0
	blk.Insts = resizeLazy(blk.Insts, nInsts)
	blk.Reads = resetSlice(blk.Reads, nReads)
	blk.Writes = resizeLazy(blk.Writes, nWrites)
	blk.Slots = resetSlice(blk.Slots, nSlots)
	blk.Branch = SlotOut{}
	blk.LastOut = OutNone
	blk.LastIdx = 0
	blk.Result = Breakdown{}
	return blk
}

// Attribute walks b's recorded dataflow graph backward from the output
// that completed last and returns the per-category breakdown.  The
// result always sums to exactly RetiredAt-FetchStart (zero when the
// record is inverted), independent of record quality: every charge is
// clamped to the still-uncovered interval and unexplained residue goes
// to FetchDispatch.
func Attribute(b *Block) Breakdown {
	var bd Breakdown
	if b.RetiredAt <= b.FetchStart {
		return bd
	}
	ceil := b.RetiredAt

	// Fetch pipeline components, front to back, clamped to the block
	// interval (a flush can retire a block before dispatch finished).
	cursor := b.FetchStart
	take := func(n uint64, c Category) {
		if cursor >= ceil {
			return
		}
		if n > ceil-cursor {
			n = ceil - cursor
		}
		bd[c] += n
		cursor += n
	}
	take(b.ConstLat, FetchDispatch)
	take(b.ICacheStall, CacheMiss)
	take(b.BcastLat, FetchDispatch)
	take(b.DispatchLat, FetchDispatch)
	floor := cursor

	// Commit interval: completion of the last output until dealloc.
	ce := b.CompleteAt
	if ce < floor {
		ce = floor
	}
	if ce > ceil {
		ce = ceil
	}
	bd[Commit] += ceil - ce

	// Backward walk over [floor, ce].  cur recedes monotonically;
	// charge covers [from, cur] with one category and is self-clamping,
	// so stale or zero timestamps can only misplace cycles between
	// categories, never double-count them.
	cur := ce
	charge := func(from uint64, c Category) {
		if from < floor {
			from = floor
		}
		if from < cur {
			bd[c] += cur - from
			cur = from
		}
	}

	// follow charges an operand edge's hop (ideal + contention) and
	// returns the producing instruction to continue at, or -1 when the
	// chain roots at a register read or runs out.
	follow := func(e *Edge) int32 {
		if !e.Valid {
			return -1
		}
		charge(e.SendAt+e.HopIdeal, NoCContention)
		charge(e.SendAt, NoCHop)
		switch e.Kind {
		case SrcInst:
			return e.Src
		case SrcRegRead:
			if int(e.Src) < len(b.Reads) {
				if rd := &b.Reads[e.Src]; rd.DispatchAt > 0 {
					charge(rd.DispatchAt, RegRW)
				}
			}
		}
		return -1
	}

	idx := int32(-1)
	switch b.LastOut {
	case OutWrite:
		if int(b.LastIdx) < len(b.Writes) && b.Writes[b.LastIdx].Gen == b.Gen {
			w := &b.Writes[b.LastIdx]
			if w.Null {
				if w.SendAt > 0 {
					charge(w.SendAt, Commit)
				}
			} else {
				// ce -> BankAt is the completion signal to the owner;
				// BankAt back to the producer is the operand-network
				// trip to the register bank.
				if w.BankAt > 0 {
					charge(w.BankAt, Commit)
				}
				if w.Edge.Valid && w.SendAt > 0 {
					charge(w.SendAt+w.BankIdeal, NoCContention)
					charge(w.SendAt, NoCHop)
				}
				idx = follow(&w.Edge)
			}
		}
	case OutStore:
		if int(b.LastIdx) < len(b.Slots) {
			s := &b.Slots[b.LastIdx]
			if s.Valid && s.ResolvedAt > 0 {
				charge(s.ResolvedAt, Commit)
			}
			if s.Kind == SrcInst {
				idx = s.Src
			}
		}
	case OutBranch:
		if br := &b.Branch; br.Valid {
			if br.ResolvedAt > 0 {
				charge(br.ResolvedAt, Commit)
			}
			if br.Kind == SrcInst {
				idx = br.Src
			}
		}
	}

	// Chain walk: each iteration consumes one instruction's stages and
	// steps to the producer of its last-arming operand.  The step
	// budget bounds the walk even on a (impossible by construction, but
	// cheap to guard) cyclic record.
	for steps := 4*len(b.Insts) + 8; steps > 0 && idx >= 0 && cur > floor; steps-- {
		if int(idx) >= len(b.Insts) {
			break
		}
		in := &b.Insts[idx]
		if in.Gen != b.Gen || !in.Issued {
			break // unrecorded (or stale-incarnation) producer
		}
		if in.IsMem {
			// Memory pipeline, back to front.  Loads enter with cur at
			// DataAt; stores enter at their slot resolution (SvcAt+1).
			if in.DataAt > 0 {
				charge(in.AccessDone, CacheMiss)
			}
			if in.SvcAt > 0 {
				charge(in.SvcAt, LSQWait)
			}
			if in.BankArrive > 0 {
				charge(in.BankArrive, LSQWait)
			}
			if in.AgenDone > 0 {
				charge(in.AgenDone+in.BankIdeal, NoCContention)
				charge(in.AgenDone, NoCHop)
			}
		}
		// Issue wait plus execution latency.
		charge(in.ReadyAt, ALUOccupancy)

		// Step to the producer of the operand that armed this
		// instruction last; dispatch availability wins ties (the
		// instruction was waiting on dispatch, not on an operand).
		var arm *Edge
		armAt := in.AvailAt
		if in.Left.Valid && in.Left.ArriveAt > armAt {
			arm, armAt = &in.Left, in.Left.ArriveAt
		}
		if in.Right.Valid && in.Right.ArriveAt > armAt {
			arm, armAt = &in.Right, in.Right.ArriveAt
		}
		if in.Pred.Valid && in.Pred.ArriveAt > armAt {
			arm, armAt = &in.Pred, in.Pred.ArriveAt
		}
		if arm == nil {
			break // dispatch-bound root
		}
		idx = follow(arm)
	}

	// Residue: recorded chain exhausted above the dispatch floor —
	// charge the remainder to the fetch/dispatch bucket.
	if cur > floor {
		bd[FetchDispatch] += cur - floor
	}
	return bd
}

// Summary aggregates breakdowns over many committed blocks.
type Summary struct {
	Blocks uint64    `json:"blocks"`
	Cycles uint64    `json:"cycles"`
	Cats   Breakdown `json:"-"`
}

// Add accumulates one committed block's breakdown.
func (s *Summary) Add(bd Breakdown) {
	s.Blocks++
	s.Cycles += bd.Total()
	s.Cats.Add(bd)
}

// Merge accumulates another summary.
func (s *Summary) Merge(o Summary) {
	s.Blocks += o.Blocks
	s.Cycles += o.Cycles
	s.Cats.Add(o.Cats)
}

// PerBlock returns the average attributed cycles per block for one
// category (0 with no blocks).
func (s Summary) PerBlock(c Category) float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.Cats[c]) / float64(s.Blocks)
}

// jsonSummary is the exported form: deterministic because category maps
// marshal in sorted key order.
type jsonSummary struct {
	Blocks     uint64             `json:"blocks"`
	Cycles     uint64             `json:"cycles"`
	Categories map[string]uint64  `json:"categories"`
	PerBlock   map[string]float64 `json:"per_block"`
}

// MarshalJSON exports the summary with per-category totals and
// per-block averages keyed by metric name.
func (s Summary) MarshalJSON() ([]byte, error) {
	js := jsonSummary{
		Blocks:     s.Blocks,
		Cycles:     s.Cycles,
		Categories: make(map[string]uint64, NumCategories),
		PerBlock:   make(map[string]float64, NumCategories),
	}
	for c := Category(0); c < NumCategories; c++ {
		js.Categories[c.String()] = s.Cats[c]
		js.PerBlock[c.String()] = s.PerBlock(c)
	}
	return json.Marshal(js)
}

// WriteJSON dumps the summary as one indented JSON document.
func (s Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// String renders a human-readable per-category table.
func (s Summary) String() string {
	var sb strings.Builder
	if s.Blocks == 0 {
		return "critpath: no committed blocks"
	}
	fmt.Fprintf(&sb, "%d blocks, %.1f cycles/block\n",
		s.Blocks, float64(s.Cycles)/float64(s.Blocks))
	for c := Category(0); c < NumCategories; c++ {
		pct := 0.0
		if s.Cycles > 0 {
			pct = 100 * float64(s.Cats[c]) / float64(s.Cycles)
		}
		fmt.Fprintf(&sb, "  %-14s %9.2f cycles/block  %5.1f%%\n",
			c.String(), s.PerBlock(c), pct)
	}
	return sb.String()
}

// Rolling is a mutex-protected summary safe for concurrent Add (from
// simulation goroutines) and Snapshot (from observability scrapes).
type Rolling struct {
	mu  sync.Mutex
	sum Summary
}

// Add accumulates one block's breakdown.
func (r *Rolling) Add(bd Breakdown) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sum.Add(bd)
	r.mu.Unlock()
}

// Snapshot returns a copy of the current aggregate.
func (r *Rolling) Snapshot() Summary {
	if r == nil {
		return Summary{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sum
}

// WriteJSON dumps the current aggregate.
func (r *Rolling) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	return s.WriteJSON(w)
}
