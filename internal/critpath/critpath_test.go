package critpath

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestAttributeALUChainReconciles hand-builds a three-stage chain
// (register read -> alu -> alu -> register write) and checks both the
// reconciliation invariant and the exact per-category placement.
func TestAttributeALUChainReconciles(t *testing.T) {
	b := ResetBlock(nil, 2, 1, 1, 0)
	b.FetchStart = 100
	b.ConstLat = 4
	b.ICacheStall = 2
	b.BcastLat = 3
	b.DispatchLat = 1 // floor = 110
	b.CompleteAt = 180
	b.RetiredAt = 200

	b.Reads[0] = Read{DispatchAt: 110}
	b.Insts[0] = Inst{
		Left:    Edge{Kind: SrcRegRead, Valid: true, Src: 0, SendAt: 115, HopIdeal: 2, ArriveAt: 118},
		AvailAt: 111, ReadyAt: 118, IssueAt: 120, Issued: true, Gen: b.Gen,
	}
	b.Insts[1] = Inst{
		Right:   Edge{Kind: SrcInst, Valid: true, Src: 0, SendAt: 121, HopIdeal: 1, ArriveAt: 123},
		AvailAt: 111, ReadyAt: 123, IssueAt: 125, Issued: true, Gen: b.Gen,
	}
	b.Writes[0] = WriteOut{
		Edge:   Edge{Kind: SrcInst, Valid: true, Src: 1, SendAt: 128, HopIdeal: 0, ArriveAt: 128},
		SendAt: 128, BankAt: 133, BankIdeal: 2, Gen: b.Gen,
	}
	b.LastOut, b.LastIdx = OutWrite, 0

	bd := Attribute(b)
	want := Breakdown{}
	want[FetchDispatch] = 8
	want[CacheMiss] = 2
	want[NoCHop] = 5
	want[NoCContention] = 5
	want[ALUOccupancy] = 8
	want[RegRW] = 5
	want[Commit] = 67
	if bd != want {
		t.Fatalf("breakdown = %v, want %v", bd, want)
	}
	if bd.Total() != b.RetiredAt-b.FetchStart {
		t.Fatalf("total = %d, want block latency %d", bd.Total(), b.RetiredAt-b.FetchStart)
	}
}

// TestAttributeLoadChain checks the memory-pipeline decomposition of a
// critical load (agen, bank hop, LSQ wait, access, miss fill).
func TestAttributeLoadChain(t *testing.T) {
	b := ResetBlock(nil, 2, 1, 0, 0)
	b.FetchStart = 0
	b.ConstLat = 4 // floor = 4
	b.CompleteAt = 30
	b.RetiredAt = 40

	b.Insts[0] = Inst{
		AvailAt: 5, ReadyAt: 5, IssueAt: 6, Issued: true, Gen: b.Gen,
		IsMem: true, AgenDone: 7, BankIdeal: 2, BankArrive: 10,
		SvcAt: 14, AccessDone: 16, DataAt: 22,
	}
	b.Insts[1] = Inst{
		Left:    Edge{Kind: SrcInst, Valid: true, Src: 0, SendAt: 22, HopIdeal: 1, ArriveAt: 23},
		AvailAt: 5, ReadyAt: 23, IssueAt: 23, Issued: true, Gen: b.Gen,
	}
	b.Writes[0] = WriteOut{
		Edge:   Edge{Kind: SrcInst, Valid: true, Src: 1, SendAt: 24, ArriveAt: 24},
		SendAt: 24, BankAt: 25, BankIdeal: 1, Gen: b.Gen,
	}
	b.LastOut, b.LastIdx = OutWrite, 0

	bd := Attribute(b)
	want := Breakdown{}
	want[FetchDispatch] = 5 // 4 const + 1 dispatch-root residue
	want[NoCHop] = 4
	want[NoCContention] = 1
	want[ALUOccupancy] = 3
	want[LSQWait] = 6
	want[CacheMiss] = 6
	want[Commit] = 15
	if bd != want {
		t.Fatalf("breakdown = %v, want %v", bd, want)
	}
	if bd.Total() != 40 {
		t.Fatalf("total = %d, want 40", bd.Total())
	}
}

// TestAttributeStoreRoot checks a block whose last output is a store
// slot: no DataAt/AccessDone stamps, LSQ wait from bank arrival to
// service.
func TestAttributeStoreRoot(t *testing.T) {
	b := ResetBlock(nil, 1, 0, 0, 1)
	b.FetchStart = 10
	b.ConstLat = 4 // floor = 14
	b.CompleteAt = 25
	b.RetiredAt = 30

	b.Insts[0] = Inst{
		AvailAt: 15, ReadyAt: 15, IssueAt: 17, Issued: true, Gen: b.Gen,
		IsMem: true, AgenDone: 18, BankArrive: 18, SvcAt: 20,
	}
	b.Slots[0] = SlotOut{Kind: SrcInst, Src: 0, ResolvedAt: 21, Valid: true}
	b.LastOut, b.LastIdx = OutStore, 0

	bd := Attribute(b)
	want := Breakdown{}
	want[FetchDispatch] = 5
	want[LSQWait] = 3
	want[ALUOccupancy] = 3
	want[Commit] = 9
	if bd != want {
		t.Fatalf("breakdown = %v, want %v", bd, want)
	}
	if bd.Total() != 20 {
		t.Fatalf("total = %d, want 20", bd.Total())
	}
}

// TestAttributeBranchRoot roots the walk at the block's branch.
func TestAttributeBranchRoot(t *testing.T) {
	b := ResetBlock(nil, 1, 0, 0, 0)
	b.FetchStart = 0
	b.ConstLat = 4
	b.CompleteAt = 12
	b.RetiredAt = 20
	b.Insts[0] = Inst{AvailAt: 5, ReadyAt: 5, IssueAt: 6, Issued: true, Gen: b.Gen}
	b.Branch = SlotOut{Kind: SrcInst, Src: 0, ResolvedAt: 7, Valid: true}
	b.LastOut = OutBranch

	bd := Attribute(b)
	if bd.Total() != 20 {
		t.Fatalf("total = %d, want 20", bd.Total())
	}
	if bd[Commit] != 13 { // 20-12 protocol + 12-7 signal
		t.Fatalf("commit = %d, want 13", bd[Commit])
	}
	if bd[ALUOccupancy] != 2 { // [5, 7]
		t.Fatalf("alu = %d, want 2", bd[ALUOccupancy])
	}
}

// TestAttributeDegenerate: inverted or truncated records never break
// the invariant.
func TestAttributeDegenerate(t *testing.T) {
	// Retired before (or at) fetch: nothing to attribute.
	b := ResetBlock(nil, 0, 0, 0, 0)
	b.FetchStart, b.RetiredAt = 50, 50
	if got := Attribute(b).Total(); got != 0 {
		t.Fatalf("inverted record total = %d, want 0", got)
	}

	// Fetch components exceed the block interval (early flush): the
	// take() clamp must stop at the ceiling.
	b = ResetBlock(b, 0, 0, 0, 0)
	b.FetchStart, b.RetiredAt = 0, 5
	b.ConstLat, b.ICacheStall = 4, 10
	bd := Attribute(b)
	if bd.Total() != 5 {
		t.Fatalf("clamped total = %d, want 5", bd.Total())
	}
	if bd[FetchDispatch] != 4 || bd[CacheMiss] != 1 {
		t.Fatalf("clamped breakdown = %v", bd)
	}

	// No recorded outputs at all: everything above the fetch floor is
	// residue plus commit.
	b = ResetBlock(b, 0, 0, 0, 0)
	b.FetchStart, b.ConstLat, b.CompleteAt, b.RetiredAt = 0, 4, 30, 40
	bd = Attribute(b)
	if bd.Total() != 40 {
		t.Fatalf("no-output total = %d, want 40", bd.Total())
	}
	if bd[Commit] != 10 || bd[FetchDispatch] != 30 {
		t.Fatalf("no-output breakdown = %v", bd)
	}
}

// TestAttributeFuzzReconciles throws deterministic garbage records at
// the walker: the invariant must hold structurally no matter what is in
// the record.
func TestAttributeFuzzReconciles(t *testing.T) {
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	var b *Block
	for iter := 0; iter < 5000; iter++ {
		nInsts := int(next() % 6)
		b = ResetBlock(b, nInsts, int(next()%3), int(next()%3), int(next()%3))
		b.FetchStart = next() % 1000
		b.RetiredAt = next() % 2000
		b.ConstLat = next() % 20
		b.ICacheStall = next() % 50
		b.BcastLat = next() % 10
		b.DispatchLat = next() % 10
		b.CompleteAt = next() % 2000
		b.LastOut = OutKind(next() % 4)
		b.LastIdx = int32(next() % 4)
		b.Branch = SlotOut{Kind: SrcKind(next() % 3), Src: int32(next() % 8), ResolvedAt: next() % 2000, Valid: next()%2 == 0}
		for i := range b.Insts {
			mk := func() Edge {
				return Edge{
					Kind: SrcKind(next() % 3), Valid: next()%2 == 0,
					Src: int32(next() % 8), SendAt: next() % 2000,
					HopIdeal: next() % 8, ArriveAt: next() % 2000,
				}
			}
			b.Insts[i] = Inst{
				Left: mk(), Right: mk(), Pred: mk(),
				AvailAt: next() % 2000, ReadyAt: next() % 2000,
				IssueAt: next() % 2000, Issued: next()%4 != 0,
				Gen:   b.Gen - uint32(next()%2),
				IsMem: next()%2 == 0, AgenDone: next() % 2000,
				BankIdeal: next() % 8, BankArrive: next() % 2000,
				SvcAt: next() % 2000, AccessDone: next() % 2000, DataAt: next() % 2000,
			}
		}
		for i := range b.Reads {
			b.Reads[i] = Read{DispatchAt: next() % 2000}
		}
		for i := range b.Writes {
			b.Writes[i] = WriteOut{
				Edge: Edge{Kind: SrcKind(next() % 3), Valid: next()%2 == 0, Src: int32(next() % 8), SendAt: next() % 2000, ArriveAt: next() % 2000},
				Null: next()%4 == 0, Gen: b.Gen - uint32(next()%2),
				SendAt: next() % 2000, BankAt: next() % 2000, BankIdeal: next() % 8,
			}
		}
		for i := range b.Slots {
			b.Slots[i] = SlotOut{Kind: SrcKind(next() % 3), Src: int32(next() % 8), ResolvedAt: next() % 2000, Valid: next()%2 == 0}
		}

		want := uint64(0)
		if b.RetiredAt > b.FetchStart {
			want = b.RetiredAt - b.FetchStart
		}
		if got := Attribute(b).Total(); got != want {
			t.Fatalf("iter %d: total = %d, want %d (record %+v)", iter, got, want, b)
		}
	}
}

// TestResetBlockRecycles checks the pooled-record recycle contract:
// scalars, Reads and Slots come back zeroed eagerly; Insts and Writes
// are invalidated by the generation bump and InstAt/WriteAt hand back
// clean records on first touch.
func TestResetBlockRecycles(t *testing.T) {
	b := ResetBlock(nil, 4, 2, 2, 2)
	gen1 := b.Gen
	if gen1 == 0 {
		t.Fatalf("fresh block has zero generation")
	}
	b.InstAt(3).DataAt = 99
	b.WriteAt(1).BankAt = 99
	b.Slots[1].ResolvedAt = 99
	b.Reads[1].DispatchAt = 99
	b.Branch.Valid = true
	b.LastOut = OutStore
	b.Result[Commit] = 7
	b.RetiredAt = 123

	b2 := ResetBlock(b, 2, 1, 1, 1)
	if b2 != b {
		t.Fatalf("reset reallocated despite sufficient capacity")
	}
	if b2.Gen == gen1 {
		t.Fatalf("reset did not advance the generation")
	}
	if len(b2.Insts) != 2 || len(b2.Writes) != 1 || len(b2.Reads) != 1 || len(b2.Slots) != 1 {
		t.Fatalf("reset sizes = %d/%d/%d/%d", len(b2.Insts), len(b2.Writes), len(b2.Reads), len(b2.Slots))
	}
	if b2.Slots[0] != (SlotOut{}) || b2.Reads[0] != (Read{}) {
		t.Fatalf("reset left stale eager-cleared state")
	}
	if b2.Branch.Valid || b2.LastOut != OutNone || b2.Result != (Breakdown{}) || b2.RetiredAt != 0 {
		t.Fatalf("reset left stale scalar state")
	}
	// Shrink below a dirtied index, then grow back over it within
	// capacity: the stale entry must come back clean through the lazy
	// accessors.
	b3 := ResetBlock(b2, 4, 2, 2, 2)
	if got := *b3.InstAt(3); got != (Inst{Gen: b3.Gen}) {
		t.Fatalf("InstAt returned stale record %+v", got)
	}
	if got := *b3.WriteAt(1); got != (WriteOut{Gen: b3.Gen}) {
		t.Fatalf("WriteAt returned stale record %+v", got)
	}
	// Growing past capacity reallocates zeroed storage.
	b4 := ResetBlock(b3, 8, 4, 4, 4)
	if len(b4.Insts) != 8 || *b4.InstAt(7) != (Inst{Gen: b4.Gen}) {
		t.Fatalf("reset failed to grow")
	}
}

// TestSummaryAndRolling covers aggregation, JSON and concurrent use of
// the rolling aggregate (exercised under -race in CI).
func TestSummaryAndRolling(t *testing.T) {
	var bd Breakdown
	bd[FetchDispatch] = 3
	bd[Commit] = 7

	var s Summary
	s.Add(bd)
	s.Add(bd)
	if s.Blocks != 2 || s.Cycles != 20 || s.Cats[Commit] != 14 {
		t.Fatalf("summary = %+v", s)
	}
	var m Summary
	m.Merge(s)
	m.Merge(s)
	if m.Blocks != 4 || m.Cycles != 40 {
		t.Fatalf("merged = %+v", m)
	}
	if got := s.PerBlock(Commit); got != 7 {
		t.Fatalf("per-block commit = %v, want 7", got)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var js struct {
		Blocks     uint64             `json:"blocks"`
		Categories map[string]uint64  `json:"categories"`
		PerBlock   map[string]float64 `json:"per_block"`
	}
	if err := json.Unmarshal(buf.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	if js.Blocks != 2 || js.Categories["commit"] != 14 || js.PerBlock["fetch_dispatch"] != 3 {
		t.Fatalf("json = %+v", js)
	}
	if !strings.Contains(s.String(), "cycles/block") {
		t.Fatalf("String() = %q", s.String())
	}

	var r Rolling
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(bd)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if snap := r.Snapshot(); snap.Blocks != 400 || snap.Cycles != 4000 {
		t.Fatalf("rolling = %+v", snap)
	}
	var nilR *Rolling
	nilR.Add(bd) // nil-safe
	if nilR.Snapshot().Blocks != 0 {
		t.Fatal("nil rolling snapshot")
	}
}

// TestCategoryNames pins the metric-name mapping used by the telemetry
// registry and the JSON exports.
func TestCategoryNames(t *testing.T) {
	want := []string{"fetch_dispatch", "noc_hop", "noc_contention",
		"alu_occupancy", "lsq_wait", "cache_miss", "reg_rw", "commit"}
	for c := Category(0); c < NumCategories; c++ {
		if c.String() != want[c] {
			t.Fatalf("category %d = %q, want %q", c, c.String(), want[c])
		}
		if c.Short() == "" {
			t.Fatalf("category %d has empty short label", c)
		}
	}
}
