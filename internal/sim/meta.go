package sim

import (
	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/predictor"
)

// The decoded-block cache.  A block fetched N times used to be re-decoded
// N times: operand counts re-derived, fan-out targets re-walked, slices
// reallocated.  blockMeta captures everything about a block that is
// static for one composed processor — operand-needs templates, per-
// instruction core placement, write-slot and LSID lookup tables — so a
// fetch is a couple of memcopies from the template into a pooled IFB.
//
// Invariant: blockMeta is immutable after build.  Everything mutable
// per dynamic block instance lives in the IFB and is re-initialized by
// resetIFB from the template on every fetch (see DESIGN.md, "Pooling
// invariants").

type blockMeta struct {
	blk    *isa.Block
	blkIdx int // dense program index (violation-memo addressing)
	owner  int // participating-core index owning this block

	// Templates copied into the IFB on fetch: per-instruction operand
	// needs and producer counts, and per-write-slot producer counts.
	instInit []instTS
	wrInit   []wslot

	outputs int // writes + store mask + branch
	maxLSID int8

	instCore []uint8 // participating-core index per instruction ID
	nonNop   []int32 // dispatched (non-nop) instruction IDs, ascending

	// regSlot maps an architectural register to the block's write-slot
	// index for it, or -1 — the forwarding lookup on every register read.
	regSlot [isa.NumRegs]int8

	// lsidHasSlot bit l is set when the block has a store slot for LSID l;
	// lsidCover lists the instructions (stores and nullifies) that can
	// retire each slot; lsidCore is the core of the first memory
	// instruction carrying each LSID (owner when none).
	lsidHasSlot uint32
	lsidCover   [isa.MaxMemOps][]int32
	lsidCore    [isa.MaxMemOps]uint8
}

// buildBlockMeta decodes one block for an n-core composition.
//
//lint:hot cold block decode runs once per static block, memoized by blockMeta
func (p *Proc) buildBlockMeta(blk *isa.Block, blkIdx int) *blockMeta {
	m := &blockMeta{
		blk:      blk,
		blkIdx:   blkIdx,
		owner:    p.ownerIdx(blk.Addr),
		instInit: make([]instTS, len(blk.Insts)),
		wrInit:   make([]wslot, len(blk.Writes)),
		outputs:  len(blk.Writes) + blk.NumStores + 1, // + branch
		instCore: make([]uint8, len(blk.Insts)),
	}
	bump := func(t isa.Target) {
		switch t.Kind {
		case isa.TargetWrite:
			m.wrInit[t.Index].rem++
		case isa.TargetLeft:
			m.instInit[t.Index].left.rem++
		case isa.TargetRight:
			m.instInit[t.Index].right.rem++
		case isa.TargetPred:
			m.instInit[t.Index].pred.rem++
		}
	}
	for _, rd := range blk.Reads {
		for _, t := range rd.Targets {
			bump(t)
		}
	}
	for i := range blk.Insts {
		for _, t := range blk.Insts[i].Targets {
			bump(t)
		}
	}
	for i := range m.lsidCore {
		m.lsidCore[i] = uint8(m.owner)
	}
	lsidSeen := uint32(0)
	for i := range blk.Insts {
		in := &blk.Insts[i]
		st := &m.instInit[i]
		n := in.Op.NumOperands()
		st.left.need = n >= 1
		st.right.need = n >= 2 && !(in.HasImm && !in.Op.IsMem())
		st.pred.need = in.Pred != isa.PredNone
		m.instCore[i] = uint8(compose.InstCore(i, p.n))
		if in.Op != isa.OpNop {
			m.nonNop = append(m.nonNop, int32(i))
		}
		if in.Op.IsMem() {
			if in.LSID+1 > m.maxLSID {
				m.maxLSID = in.LSID + 1
			}
			if lsidSeen&(1<<uint(in.LSID)) == 0 {
				lsidSeen |= 1 << uint(in.LSID)
				m.lsidCore[in.LSID] = m.instCore[i]
			}
		}
		if in.Op == isa.OpStore {
			m.lsidHasSlot |= 1 << uint(in.LSID)
			m.lsidCover[in.LSID] = append(m.lsidCover[in.LSID], int32(i))
		}
		if in.Op == isa.OpNull && in.NullLSID >= 0 {
			m.lsidHasSlot |= 1 << uint(in.NullLSID)
			m.lsidCover[in.NullLSID] = append(m.lsidCover[in.NullLSID], int32(i))
		}
	}
	for r := range m.regSlot {
		m.regSlot[r] = -1
	}
	for i := len(blk.Writes) - 1; i >= 0; i-- {
		// First match wins, matching the original linear scan.
		m.regSlot[blk.Writes[i].Reg] = int8(i)
	}
	return m
}

// blockMeta returns the decoded metadata for a block, decoding it on
// first fetch.  The reference path rebuilds it every fetch so the cache
// itself is exercised differentially.
func (p *Proc) blockMeta(blk *isa.Block) *blockMeta {
	idx := p.prog.BlockIndex(blk.Addr)
	if p.chip.Opts.Reference || idx < 0 {
		return p.buildBlockMeta(blk, idx)
	}
	if p.meta == nil {
		p.meta = make([]*blockMeta, p.prog.NumBlocks())
	}
	if m := p.meta[idx]; m != nil {
		return m
	}
	m := p.buildBlockMeta(blk, idx)
	p.meta[idx] = m
	return m
}

// acquireIFB returns a recycled in-flight block, or a fresh one when the
// pool is empty (or on the reference path, which never pools).
func (p *Proc) acquireIFB() *IFB {
	if n := len(p.ifbFree); n > 0 && !p.chip.Opts.Reference {
		b := p.ifbFree[n-1]
		p.ifbFree[n-1] = nil
		p.ifbFree = p.ifbFree[:n-1]
		return b
	}
	//lint:allow hotalloc audited: pool growth on a free-list miss; steady state recycles through ifbFree
	return &IFB{}
}

// releaseIFB retires a committed or flushed block.  Bumping the
// generation invalidates every event, deferred load and read waiter still
// pointing at it — the guard that makes pooling safe.  The reference path
// bumps the generation too (identical event-drop behavior) but never
// reuses the storage.
func (p *Proc) releaseIFB(b *IFB) {
	b.gen++
	b.meta = nil
	b.blk = nil
	if p.chip.Opts.Reference {
		return
	}
	p.ifbFree = append(p.ifbFree, b)
}

// resetIFB initializes a (fresh or recycled) IFB from the decoded
// template.  Every field an execution can mutate is re-established here;
// slice capacity is the only state that survives recycling.
func resetIFB(b *IFB, p *Proc, m *blockMeta, seq uint64, hist predictor.History) {
	b.p = p
	b.meta = m
	b.blk = m.blk
	b.seq = seq
	b.owner = m.owner
	b.fetchHist = hist
	b.specNext = false
	b.pred = predictor.Prediction{}

	if cap(b.insts) < len(m.instInit) {
		b.insts = make([]instTS, len(m.instInit))
	} else {
		b.insts = b.insts[:len(m.instInit)]
	}
	copy(b.insts, m.instInit)
	if cap(b.wr) < len(m.wrInit) {
		b.wr = make([]wslot, len(m.wrInit))
	} else {
		b.wr = b.wr[:len(m.wrInit)]
	}
	copy(b.wr, m.wrInit) // template waiters are nil

	b.stores = b.stores[:0]
	b.storeDone = [isa.MaxMemOps]bool{}
	b.maxLSID = m.maxLSID
	b.loads = 0
	b.fired = 0
	b.useful = 0
	b.outputsPending = m.outputs
	b.completeAt = 0
	b.branchDone = false
	b.actual = branchOutZero
	b.dead = false
	b.phase = phaseExecuting
	b.deallocDone = false
	b.deallocAt = 0
	b.frIssued = false

	b.tFetchStart = 0
	b.constLat = 0
	b.handOffLat = 0
	b.bcastLat = 0
	b.dispatchLat = 0
	b.icacheStall = 0
	b.commitStart = 0

	if p.chip.critEnabled {
		p.resetCP(b, m)
	} else {
		b.cp = nil
	}
}
