// Package sim implements the cycle-level TFlex CLP simulator: composed
// logical processors built from dual-issue cores, with fully distributed
// fetch, next-block prediction, execution, memory disambiguation and
// commit protocols (paper §4), over the mesh networks, caches, LSQ banks,
// S-NUCA L2 and DRAM substrates.
//
// The simulator is event-driven and deterministic: every message, issue
// slot and bank port is booked on a reservation timeline, and all events
// execute in (cycle, insertion-order) order.  Architectural values are
// computed during simulation with the same ALU evaluation as the
// functional executor, so a simulated run finishes with bit-identical
// registers and memory to exec.Machine — the end-to-end correctness
// property the test suite enforces across every composition.
package sim

import (
	"github.com/clp-sim/tflex/internal/compose"
)

// Options configure a chip.
type Options struct {
	Params compose.CoreParams

	// WindowPerCore overrides Params.WindowEntries (the number of
	// instruction-window slots per core).  Blocks in flight per logical
	// processor = WindowPerCore * nCores / 128.
	WindowPerCore int

	// ZeroHandshake makes every distributed control handshake (fetch
	// hand-off and distribution, completion and commit messages)
	// instantaneous — the paper's §6.4 overhead ablation.  The operand
	// network is unaffected.
	ZeroHandshake bool

	// CentralPredictor forces all block ownership (prediction, tags,
	// completion bookkeeping) onto participating core 0, modeling the
	// TRIPS centralized next-block predictor.
	CentralPredictor bool

	// DBanks/RegBanks optionally restrict which participating-core
	// indices carry D-cache/LSQ banks and register-file banks (TRIPS has
	// 4 of each at fixed tiles; TFlex uses all cores).  Empty = all.
	DBanks   []int
	RegBanks []int

	// NACKRetryCycles is the backoff before a NACKed LSQ insert retries.
	NACKRetryCycles uint64

	// Reference disables the engine's hot-path optimizations — the
	// container/heap event queue replaces the calendar queue, in-flight
	// blocks are never pooled, and block metadata is re-decoded on every
	// fetch.  Simulated results are identical either way; the differential
	// tests run both and compare.
	Reference bool
}

// DefaultOptions returns the TFlex configuration of Table 1.
func DefaultOptions() Options {
	return Options{
		Params:          compose.DefaultCoreParams(),
		NACKRetryCycles: 8,
	}
}

func (o *Options) windowPerCore() int {
	if o.WindowPerCore > 0 {
		return o.WindowPerCore
	}
	return o.Params.WindowEntries
}

// Latency of one opcode class.
func (o *Options) opLatency(fp, mul, div bool) uint64 {
	p := &o.Params
	switch {
	case div && fp:
		return uint64(p.FDivLat)
	case div:
		return uint64(p.DivLat)
	case mul:
		return uint64(p.MulLat)
	case fp:
		return uint64(p.FPLat)
	default:
		return uint64(p.IntLat)
	}
}
