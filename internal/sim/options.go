// Package sim implements the cycle-level TFlex CLP simulator: composed
// logical processors built from dual-issue cores, with fully distributed
// fetch, next-block prediction, execution, memory disambiguation and
// commit protocols (paper §4), over the mesh networks, caches, LSQ banks,
// S-NUCA L2 and DRAM substrates.
//
// The simulator is event-driven and deterministic: every message, issue
// slot and bank port is booked on a reservation timeline, and all events
// execute in (cycle, insertion-order) order.  Architectural values are
// computed during simulation with the same ALU evaluation as the
// functional executor, so a simulated run finishes with bit-identical
// registers and memory to exec.Machine — the end-to-end correctness
// property the test suite enforces across every composition.
package sim

import (
	"github.com/clp-sim/tflex/internal/compose"
)

// Options configure a chip.
type Options struct {
	Params compose.CoreParams

	// WindowPerCore overrides Params.WindowEntries (the number of
	// instruction-window slots per core).  Blocks in flight per logical
	// processor = WindowPerCore * nCores / 128.
	WindowPerCore int

	// ZeroHandshake makes every distributed control handshake (fetch
	// hand-off and distribution, completion and commit messages)
	// instantaneous — the paper's §6.4 overhead ablation.  The operand
	// network is unaffected.
	ZeroHandshake bool

	// CentralPredictor forces all block ownership (prediction, tags,
	// completion bookkeeping) onto participating core 0, modeling the
	// TRIPS centralized next-block predictor.
	CentralPredictor bool

	// DBanks/RegBanks optionally restrict which participating-core
	// indices carry D-cache/LSQ banks and register-file banks (TRIPS has
	// 4 of each at fixed tiles; TFlex uses all cores).  Empty = all.
	DBanks   []int
	RegBanks []int

	// NACKRetryCycles is the backoff before a NACKed LSQ insert retries.
	NACKRetryCycles uint64

	// ParallelDomains caps how many event domains may execute
	// concurrently on worker goroutines (see domain.go).  Values <= 1
	// keep every domain on the caller's goroutine; results are
	// bit-identical for any value and any GOMAXPROCS, so the knob trades
	// wall-clock speed only.  It has no effect under Reference or when
	// the chip forms a single domain.
	ParallelDomains int

	// DomainWindow is the lockstep window width W in cycles for
	// multi-domain runs: domains advance independently inside [kW,
	// (k+1)W) and synchronize at every boundary, where deferred
	// cross-domain coherence traffic (L2 eviction invalidations) is
	// applied and newly composed processors begin fetching.  W is a
	// model parameter — it must be identical across ParallelDomains
	// settings for runs to compare — and defaults to 16 cycles,
	// approximating the banked-L2 round trip an invalidate needs to
	// reach a remote core (L2 hit latency spans 5..27 cycles).
	// Values < 1 mean the default.
	DomainWindow uint64

	// StallEvents is the stall-watchdog budget: the maximum number of
	// events one domain may execute without its lockstep window (or, in
	// single-domain runs, the current cycle) advancing before the run
	// fails with a diagnostic instead of hanging.  The watchdog counts
	// events, not wall time, so it is deterministic like everything
	// else in the engine.  Values < 1 mean the default (1<<20 events —
	// orders of magnitude above what any legal window can execute).
	StallEvents uint64

	// Reference disables the engine's hot-path optimizations — the
	// container/heap event queue replaces the calendar queue, in-flight
	// blocks are never pooled, and block metadata is re-decoded on every
	// fetch.  Simulated results are identical either way; the differential
	// tests run both and compare.
	Reference bool
}

// DefaultOptions returns the TFlex configuration of Table 1.
func DefaultOptions() Options {
	return Options{
		Params:          compose.DefaultCoreParams(),
		NACKRetryCycles: 8,
	}
}

// defaultDomainWindow is the default lockstep window width (cycles).
const defaultDomainWindow = 16

// defaultStallEvents is the default stall-watchdog budget (events per
// window without progress).
const defaultStallEvents = 1 << 20

func (o *Options) stallEvents() uint64 {
	if o.StallEvents >= 1 {
		return o.StallEvents
	}
	return defaultStallEvents
}

func (o *Options) domainWindow() uint64 {
	if o.DomainWindow >= 1 {
		return o.DomainWindow
	}
	return defaultDomainWindow
}

func (o *Options) windowPerCore() int {
	if o.WindowPerCore > 0 {
		return o.WindowPerCore
	}
	return o.Params.WindowEntries
}

// Latency of one opcode class.
func (o *Options) opLatency(fp, mul, div bool) uint64 {
	p := &o.Params
	switch {
	case div && fp:
		return uint64(p.FDivLat)
	case div:
		return uint64(p.DivLat)
	case mul:
		return uint64(p.MulLat)
	case fp:
		return uint64(p.FPLat)
	default:
		return uint64(p.IntLat)
	}
}
