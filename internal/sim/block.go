package sim

import (
	"github.com/clp-sim/tflex/internal/critpath"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/flight"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/mem"
	"github.com/clp-sim/tflex/internal/predictor"
)

type phase int

const (
	phaseExecuting phase = iota
	phaseComplete
	phaseCommitting
)

type instStatus uint8

const (
	stWaiting instStatus = iota
	stIssued
	stSquashed
	stDead
)

type tslot struct {
	need bool
	got  bool
	val  uint64
	at   uint64
	rem  int
}

type instTS struct {
	status  instStatus
	left    tslot
	right   tslot
	pred    tslot
	predOK  bool
	avail   bool
	availAt uint64
}

type readWaiter struct {
	b       *IFB
	gen     uint32 // b's generation when the wait was filed
	readIdx int
	t       uint64
}

// live reports whether the waiter's block is still the one that filed it.
func (w *readWaiter) live() bool { return w.b.gen == w.gen && !w.b.dead }

type wslot struct {
	rem      int
	resolved bool
	has      bool
	val      uint64
	bankAt   uint64
	waiters  []readWaiter
}

type firedStore struct {
	key  mem.MemKey
	addr uint64
	size uint8
	val  uint64
}

var branchOutZero exec.BranchOut

// IFB is one in-flight block on a logical processor.  IFBs are pooled:
// a retired block's storage is recycled for a later fetch, with gen
// incremented so stale events referencing the old incarnation are inert
// (see resetIFB for the full reset contract).
type IFB struct {
	p     *Proc
	meta  *blockMeta
	blk   *isa.Block
	seq   uint64
	gen   uint32 // incremented on release to the pool
	owner int    // participating-core index

	specNext  bool
	pred      predictor.Prediction
	fetchHist predictor.History

	insts []instTS
	wr    []wslot

	stores         []firedStore
	storeDone      [isa.MaxMemOps]bool // store LSIDs resolved (stored or nulled)
	maxLSID        int8
	loads          int
	fired          int
	useful         int
	outputsPending int
	completeAt     uint64
	branchDone     bool
	actual         exec.BranchOut
	dead           bool
	phase          phase
	deallocDone    bool
	deallocAt      uint64
	frIssued       bool // first-issue flight record written (one per block)

	// Fetch timing records (Figure 9a).  tFetchStart is the cycle the
	// fetch pipeline began (prediction + hand-off receipt); the phase
	// boundaries exported in BlockEvent derive from it and the component
	// latencies below.
	tFetchStart uint64
	constLat    uint64
	handOffLat  uint64
	bcastLat    uint64
	dispatchLat uint64
	icacheStall uint64

	// commitStart is the cycle the four-phase commit protocol launched
	// (Figure 9b), recorded for BlockEvent/commit-latency telemetry.
	commitStart uint64

	// cp is the critical-path attribution record, pooled with the IFB.
	// nil unless Chip.EnableCritPath was called — every stamp below is
	// gated on a nil check, mirroring the telemetry disabled-cost
	// contract.  Recording is passive: it never feeds back into
	// scheduling, so architectural results are identical either way.
	cp *critpath.Block
}

// writeSlotOf returns the write-slot index for reg, if the block writes it.
func (b *IFB) writeSlotOf(reg uint8) (int, bool) {
	if s := b.meta.regSlot[reg]; s >= 0 {
		return int(s), true
	}
	return -1, false
}

// instCoreIdx returns the participating-core index executing instruction id.
func (b *IFB) instCoreIdx(id int) int { return int(b.meta.instCore[id]) }

// deliver processes one operand/write arrival (or dead token) at cycle t.
func (p *Proc) deliver(b *IFB, target isa.Target, val uint64, dead bool, fromIdx int, t uint64) {
	if b.dead {
		return
	}
	if target.Kind == isa.TargetWrite {
		p.deliverWrite(b, int(target.Index), val, dead, fromIdx, t)
		return
	}
	idx := int(target.Index)
	st := &b.insts[idx]
	var slot *tslot
	switch target.Kind {
	case isa.TargetLeft:
		slot = &st.left
	case isa.TargetRight:
		slot = &st.right
	case isa.TargetPred:
		slot = &st.pred
	}
	slot.rem--
	if dead {
		if slot.rem == 0 && !slot.got && st.status == stWaiting {
			p.kill(b, idx, stDead, t)
		}
		return
	}
	if st.status != stWaiting {
		return // late arrival at squashed/dead instruction
	}
	if slot.got {
		p.fail("proc %d block %s inst %d: two values at one operand", p.id, b.blk.Name, idx)
		return
	}
	slot.got, slot.val, slot.at = true, val, t
	if target.Kind == isa.TargetPred {
		if !exec.PredMatches(b.blk.Insts[idx].Pred, val) {
			p.kill(b, idx, stSquashed, t)
			return
		}
		st.predOK = true
	}
	p.maybeIssue(b, idx)
}

// deliverWrite resolves a register write slot with a value or dead token.
func (p *Proc) deliverWrite(b *IFB, wi int, val uint64, dead bool, fromIdx int, t uint64) {
	w := &b.wr[wi]
	w.rem--
	reg := b.blk.Writes[wi].Reg
	if !dead {
		if w.has {
			p.fail("proc %d block %s: two values at write slot %d", p.id, b.blk.Name, wi)
			return
		}
		bank := p.regBankIdx(reg)
		w.has = true
		w.val = val
		w.bankAt = p.opnSend(fromIdx, bank, t)
		w.resolved = true
		p.serveWriteWaiters(b, wi, w.bankAt)
		arr := p.ctlSend(bank, b.owner, w.bankAt)
		if b.cp != nil {
			cw := b.cp.WriteAt(wi)
			cw.SendAt = t
			cw.BankAt = w.bankAt
			cw.BankIdeal = p.opnIdeal(fromIdx, bank)
		}
		p.outputDone(b, arr, critpath.OutWrite, int32(wi))
		return
	}
	if w.rem == 0 && !w.has && !w.resolved {
		// Null write: all producers squashed/dead; the register keeps its
		// old value.
		w.resolved = true
		p.serveWriteWaiters(b, wi, t)
		bank := p.regBankIdx(reg)
		arr := p.ctlSend(bank, b.owner, t)
		if b.cp != nil {
			cw := b.cp.WriteAt(wi)
			cw.Null = true
			cw.SendAt = t
		}
		p.outputDone(b, arr, critpath.OutWrite, int32(wi))
	}
}

func (p *Proc) serveWriteWaiters(b *IFB, wi int, t uint64) {
	w := &b.wr[wi]
	waiters := w.waiters
	w.waiters = nil
	for i := range waiters {
		wt := &waiters[i]
		if !wt.live() {
			continue
		}
		at := wt.t
		if t > at {
			at = t
		}
		p.resolveRead(wt.b, wt.readIdx, at)
	}
}

// kill squashes or deadens an instruction and propagates dead tokens.
func (p *Proc) kill(b *IFB, idx int, status instStatus, t uint64) {
	st := &b.insts[idx]
	if st.status != stWaiting {
		return
	}
	st.status = status
	in := &b.blk.Insts[idx]
	if in.Op == isa.OpStore {
		p.resolveStoreSlot(b, in.LSID, t, true)
	}
	if in.Op == isa.OpNull && in.NullLSID >= 0 {
		p.resolveStoreSlot(b, in.NullLSID, t, true)
	}
	for _, tg := range in.Targets {
		p.deliver(b, tg, 0, true, b.instCoreIdx(idx), t)
	}
}

// resolveStoreSlot marks a store LSID retired (stored, nulled, or dead).
// deadArm distinguishes the squashed arm of a predicated store pair, which
// only retires the slot when its partner is also unable to fire — the live
// arm's firing resolves the slot normally first.
func (p *Proc) resolveStoreSlot(b *IFB, lsid int8, t uint64, deadArm bool) {
	if b.storeDone[lsid] {
		return
	}
	if deadArm {
		// Retire only if no live instruction can still resolve this slot.
		for _, i := range b.meta.lsidCover[lsid] {
			if s := b.insts[i].status; s == stWaiting || s == stIssued {
				return
			}
		}
	}
	b.storeDone[lsid] = true
	arr := p.ctlSend(int(b.meta.lsidCore[lsid]), b.owner, t)
	if b.cp != nil {
		s := &b.cp.Slots[lsid]
		s.ResolvedAt = t
		s.Valid = true
		if deadArm {
			s.Kind, s.Src = critpath.SrcNone, 0
		}
	}
	p.outputDone(b, arr, critpath.OutStore, int32(lsid))
	p.retryDeferredLoads()
}

// maybeIssue checks readiness and books an issue slot.
func (p *Proc) maybeIssue(b *IFB, idx int) {
	st := &b.insts[idx]
	if st.status != stWaiting || !st.avail {
		return
	}
	if st.left.need && !st.left.got {
		return
	}
	if st.right.need && !st.right.got {
		return
	}
	if st.pred.need && !st.predOK {
		return
	}
	in := &b.blk.Insts[idx]
	readyAt := st.availAt
	if st.left.need && st.left.at > readyAt {
		readyAt = st.left.at
	}
	if st.right.need && st.right.at > readyAt {
		readyAt = st.right.at
	}
	if st.pred.need && st.pred.at > readyAt {
		readyAt = st.pred.at
	}
	st.status = stIssued
	coreIdx := b.instCoreIdx(idx)
	issueAt := p.chip.issueAt(p.phys(coreIdx)).reserve(readyAt, in.Op.IsFP())
	if p.fr != nil && !b.frIssued {
		b.frIssued = true
		p.fr.Add(flight.KIssue, issueAt, int16(p.id), int16(p.phys(coreIdx)), b.seq, 0)
	}
	if b.cp != nil {
		ci := b.cp.InstAt(idx)
		ci.AvailAt, ci.ReadyAt, ci.IssueAt, ci.Issued = st.availAt, readyAt, issueAt, true
	}
	p.executeInst(b, idx, issueAt)
}

// executeInst computes an issued instruction's result and schedules its
// effects.
func (p *Proc) executeInst(b *IFB, idx int, issueAt uint64) {
	in := &b.blk.Insts[idx]
	st := &b.insts[idx]
	coreIdx := b.instCoreIdx(idx)
	b.fired++
	p.Stats.InstsFired++
	p.Stats.IssuedByCore[coreIdx]++
	if in.Op.IsFP() {
		p.Stats.FPFired++
	}

	switch {
	case in.Op == isa.OpLoad:
		addr := st.left.val + uint64(in.Imm)
		if addr%uint64(in.MemSize) != 0 {
			p.fail("proc %d block %s inst %d: misaligned %d-byte load at %#x",
				p.id, b.blk.Name, idx, in.MemSize, addr)
			return
		}
		b.useful++
		agenDone := issueAt + 1
		bank := p.dataBankIdx(addr)
		arr := p.opnSend(coreIdx, bank, agenDone)
		if b.cp != nil {
			ci := b.cp.InstAt(idx)
			ci.IsMem = true
			ci.AgenDone = agenDone
			ci.BankIdeal = p.opnIdeal(coreIdx, bank)
			ci.BankArrive = arr
		}
		p.scheduleEv(arr, event{kind: evLoadBank, b: b, gen: b.gen, idx: int32(idx), addr: addr})

	case in.Op == isa.OpStore:
		addr := st.left.val + uint64(in.Imm)
		if addr%uint64(in.MemSize) != 0 {
			p.fail("proc %d block %s inst %d: misaligned %d-byte store at %#x",
				p.id, b.blk.Name, idx, in.MemSize, addr)
			return
		}
		b.useful++
		val := st.right.val
		agenDone := issueAt + 1
		bank := p.dataBankIdx(addr)
		arr := p.opnSend(coreIdx, bank, agenDone)
		if b.cp != nil {
			ci := b.cp.InstAt(idx)
			ci.IsMem = true
			ci.AgenDone = agenDone
			ci.BankIdeal = p.opnIdeal(coreIdx, bank)
			ci.BankArrive = arr
		}
		p.scheduleEv(arr, event{kind: evStoreBank, b: b, gen: b.gen, idx: int32(idx), addr: addr, val: val})

	case in.Op == isa.OpNull:
		done := issueAt + 1
		if in.NullLSID >= 0 {
			// Pre-record the slot's producer: the evNullSlot event only
			// carries the LSID.  First recorder wins (a firing store's
			// unconditional record in storeAtBank takes precedence).
			if b.cp != nil {
				if s := &b.cp.Slots[in.NullLSID]; s.Kind == critpath.SrcNone {
					s.Kind, s.Src = critpath.SrcInst, int32(idx)
				}
			}
			p.scheduleEv(done, event{kind: evNullSlot, b: b, gen: b.gen, idx: int32(in.NullLSID)})
		}
		for _, tg := range in.Targets {
			p.scheduleDeadToken(b, tg, coreIdx, done)
		}

	case in.Op.IsBranch():
		b.useful++
		done := issueAt + uint64(p.chip.Opts.Params.IntLat)
		var target uint64
		switch in.Op {
		case isa.OpBro, isa.OpCallo:
			tgt, ok := p.prog.BranchTarget(in)
			if !ok {
				p.fail("proc %d: unresolved branch target %q", p.id, in.BranchTo)
				return
			}
			target = tgt
		case isa.OpRet:
			target = st.left.val
		}
		arr := p.ctlSend(coreIdx, b.owner, done)
		if b.cp != nil && !b.cp.Branch.Valid {
			// First executed branch wins: branchResolved also takes the
			// first arrival and ignores a later predicated twin.
			b.cp.Branch = critpath.SlotOut{Kind: critpath.SrcInst, Src: int32(idx), ResolvedAt: done, Valid: true}
		}
		p.scheduleEv(arr, event{kind: evBranch, b: b, gen: b.gen, idx: int32(in.Op), from: in.Exit, val: target})

	default:
		val := exec.EvalALU(in, st.left.val, st.right.val)
		lat := p.chip.Opts.opLatency(in.Op.IsFP(),
			in.Op == isa.OpMul, in.Op == isa.OpDiv || in.Op == isa.OpDivU ||
				in.Op == isa.OpMod || in.Op == isa.OpFDiv || in.Op == isa.OpFSqrt)
		done := issueAt + lat
		if in.Op != isa.OpMov {
			b.useful++
		}
		for _, tg := range in.Targets {
			p.scheduleDelivery(b, tg, val, coreIdx, done, critpath.SrcInst, int32(idx))
		}
	}
}

// scheduleDelivery routes one produced value to its target and, with
// attribution on, records the delivery edge: who sent it, when, the
// unloaded hop latency and the actual arrival.  Each operand/write slot
// receives exactly one value (two is a simulator failure), so the edge
// is recorded without overwrite hazards.
func (p *Proc) scheduleDelivery(b *IFB, tg isa.Target, val uint64, fromIdx int, t uint64, srcKind critpath.SrcKind, srcIdx int32) {
	toIdx := fromIdx
	if tg.Kind != isa.TargetWrite {
		toIdx = b.instCoreIdx(int(tg.Index))
	}
	arr := t
	if toIdx != fromIdx {
		arr = p.opnSend(fromIdx, toIdx, t)
	}
	if b.cp != nil {
		e := critpath.Edge{
			Kind: srcKind, Valid: true, Src: srcIdx,
			SendAt: t, HopIdeal: p.opnIdeal(fromIdx, toIdx), ArriveAt: arr,
		}
		switch tg.Kind {
		case isa.TargetWrite:
			b.cp.WriteAt(int(tg.Index)).Edge = e
		case isa.TargetLeft:
			b.cp.InstAt(int(tg.Index)).Left = e
		case isa.TargetRight:
			b.cp.InstAt(int(tg.Index)).Right = e
		case isa.TargetPred:
			b.cp.InstAt(int(tg.Index)).Pred = e
		}
	}
	p.scheduleEv(arr, event{kind: evDeliver, b: b, gen: b.gen, tgt: tg, val: val, from: uint8(fromIdx)})
}

func (p *Proc) scheduleDeadToken(b *IFB, tg isa.Target, fromIdx int, t uint64) {
	p.scheduleEv(t, event{kind: evDeadToken, b: b, gen: b.gen, tgt: tg, from: uint8(fromIdx)})
}

// resolveRead finds the architectural or forwarded value of a register
// read: the youngest older in-flight block writing the register, else the
// committed register file (paper: register files are address-interleaved
// banks of the composed register file).
func (p *Proc) resolveRead(b *IFB, ri int, t uint64) {
	if b.dead {
		return
	}
	if b.cp != nil && b.cp.Reads[ri].DispatchAt == 0 {
		// First resolution attempt: the read request reached its bank.
		// Forwarding waits re-resolve later; the walker charges
		// [DispatchAt, value departure] to the register-read category.
		b.cp.Reads[ri].DispatchAt = t
	}
	reg := b.blk.Reads[ri].Reg
	pos := p.indexOf(b)
	for j := pos - 1; j >= 0; j-- {
		a := p.window[j]
		slot, ok := a.writeSlotOf(reg)
		if !ok {
			continue
		}
		w := &a.wr[slot]
		if !w.resolved {
			//lint:allow hotalloc audited: the waiter list is drained wholesale and nil-reset at wake (serveWriteWaiters); reusing the backing array would alias an in-flight drain, so the regrowth is the safe choice
			w.waiters = append(w.waiters, readWaiter{b: b, gen: b.gen, readIdx: ri, t: t})
			return
		}
		if w.has {
			at := t
			if w.bankAt > at {
				at = w.bankAt
			}
			p.deliverRead(b, ri, w.val, at)
			return
		}
		// Null write: keep walking older blocks.
	}
	p.deliverRead(b, ri, p.Regs[reg], t)
}

func (p *Proc) deliverRead(b *IFB, ri int, val uint64, t uint64) {
	rd := &b.blk.Reads[ri]
	bank := p.regBankIdx(rd.Reg)
	p.Stats.RegReads++
	for _, tg := range rd.Targets {
		p.scheduleDelivery(b, tg, val, bank, t, critpath.SrcRegRead, int32(ri))
	}
}
