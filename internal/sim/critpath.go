package sim

// Critical-path attribution integration (see internal/critpath and
// DESIGN.md, "Critical-path attribution").  The simulator's role is
// purely to *record*: each IFB carries a pooled critpath.Block that the
// fetch, execute, memory and commit paths stamp with timestamps and
// last-arrival edges as they already compute them.  At finalizeCommit
// the walker attributes the block's latency and the result folds into
// per-proc summaries, telemetry histograms and (optionally) a
// concurrency-safe rolling aggregate for the observability server.
//
// The disabled-cost contract matches telemetry: with attribution off,
// b.cp is nil and every stamp site compiles to a nil check.  Recording
// never feeds back into scheduling, so architectural results are
// byte-identical with attribution on or off (pinned by the root
// differential test).

import (
	"fmt"
	"math/bits"

	"github.com/clp-sim/tflex/internal/critpath"
	"github.com/clp-sim/tflex/internal/telemetry"
)

// EnableCritPath arms per-block critical-path attribution.  Call before
// Run; blocks fetched while disabled carry no record.  Idempotent.
func (c *Chip) EnableCritPath() {
	if c.critEnabled {
		return
	}
	c.critEnabled = true
	if c.tel != nil {
		for _, p := range c.Procs {
			p.registerCritHists(c.tel)
		}
	}
}

// SetCritPathSink arms attribution and mirrors every committed block's
// breakdown into r, a mutex-protected rolling aggregate that other
// goroutines (the observability server) may snapshot mid-run.
func (c *Chip) SetCritPathSink(r *critpath.Rolling) {
	c.EnableCritPath()
	c.critSink = r
}

// CritPath returns the chip-wide attribution aggregate, merging the
// per-processor summaries in processor order.
func (c *Chip) CritPath() critpath.Summary {
	var sum critpath.Summary
	for _, p := range c.Procs {
		sum.Merge(p.crit)
	}
	return sum
}

// CritPath returns this processor's attribution aggregate.
func (p *Proc) CritPath() critpath.Summary { return p.crit }

// registerCritHists exposes one per-category latency histogram under
// proc<id>.critpath.<category>.
func (p *Proc) registerCritHists(r *telemetry.Registry) {
	prefix := fmt.Sprintf("proc%d.critpath.", p.id)
	for cat := critpath.Category(0); cat < critpath.NumCategories; cat++ {
		p.hCrit[cat] = r.Histogram(prefix + cat.String())
	}
}

// resetCP recycles b's attribution record for a new incarnation, sized
// to the decoded block (not the ISA maxima, keeping the per-fetch
// zeroing cost proportional to the block).  Slots spans both store and
// null LSIDs: lsidHasSlot covers every slot the block must resolve.
func (p *Proc) resetCP(b *IFB, m *blockMeta) {
	if b.cp == nil {
		b.cp = critpath.GetBlock()
	}
	b.cp = critpath.ResetBlock(b.cp,
		len(m.instInit), len(m.wrInit), len(m.blk.Reads), bits.Len32(m.lsidHasSlot))
}

// releaseCritRecords hands every IFB's attribution record back to the
// cross-simulation pool.  Called when a run completes: the chip and its
// IFBs are about to become garbage, and the record arrays are the
// expensive part.
func (c *Chip) releaseCritRecords() {
	for _, p := range c.Procs {
		for _, b := range p.ifbFree {
			if b.cp != nil {
				critpath.PutBlock(b.cp)
				b.cp = nil
			}
		}
		for _, b := range p.window {
			if b != nil && b.cp != nil {
				critpath.PutBlock(b.cp)
				b.cp = nil
			}
		}
	}
}

// opnIdeal is the unloaded operand-network latency between two
// participating cores — the NoC-hop baseline the attribution walker
// subtracts from actual traversal time to isolate contention.
func (p *Proc) opnIdeal(fromIdx, toIdx int) uint64 {
	if fromIdx == toIdx {
		return 0
	}
	return p.chip.Opn.Latency(p.phys(fromIdx), p.phys(toIdx))
}

// finalizeCritPath stamps the block-level timing fields, runs the
// attribution walk and folds the result into the processor aggregate,
// the telemetry histograms and the chip's rolling sink.
func (p *Proc) finalizeCritPath(b *IFB, retiredAt uint64) {
	cp := b.cp
	cp.FetchStart = b.tFetchStart
	cp.ConstLat = b.constLat
	cp.ICacheStall = b.icacheStall
	cp.BcastLat = b.bcastLat
	cp.DispatchLat = b.dispatchLat
	cp.CompleteAt = b.completeAt
	cp.CommitStart = b.commitStart
	cp.RetiredAt = retiredAt
	cp.Result = critpath.Attribute(cp)
	p.crit.Add(cp.Result)
	for cat := critpath.Category(0); cat < critpath.NumCategories; cat++ {
		p.hCrit[cat].Observe(cp.Result[cat])
	}
	if sink := p.chip.critSink; sink != nil {
		sink.Add(cp.Result)
	}
}
