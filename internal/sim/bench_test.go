package sim

import (
	"testing"

	"github.com/clp-sim/tflex/internal/compose"
)

// Microbenchmarks of the two engine hot paths this package optimizes: the
// event queue and the block fetch→execute→commit pipeline.  Each has a
// *Reference companion running the container/heap queue and the
// non-pooled block lifecycle (Options.Reference), so
//
//	go test -bench 'EventQueue|BlockPipeline' -benchtime 100x ./internal/sim
//
// prints the optimized and unoptimized costs side by side, with
// allocations per operation.

// benchEventQueue drives a queue through a steady-state churn resembling
// the simulator's: a resident population of in-flight events, each pop
// scheduling a successor a short latency ahead, with an occasional
// far-future event that exercises the calendar queue's overflow heap
// (offsets beyond the 1024-cycle window).
func benchEventQueue(b *testing.B, push func(event), popMin func() event) {
	offsets := [...]uint64{1, 1, 2, 3, 5, 8, 17, 150, 1500}
	var seq uint64
	for i := 0; i < 64; i++ {
		seq++
		push(event{at: uint64(i % 8), seq: seq})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := popMin()
		seq++
		push(event{at: e.at + offsets[i%len(offsets)], seq: seq})
	}
}

func BenchmarkEventQueueCalendar(b *testing.B) {
	q := &calQueue{}
	benchEventQueue(b, q.push, q.popMin)
}

func BenchmarkEventQueueReference(b *testing.B) {
	q := &eventQueue{}
	benchEventQueue(b, q.push, q.popMin)
}

// benchBlockPipeline runs a register-pressure-free sum loop end to end on
// a fresh 4-core composition per iteration: every block goes through
// fetch, dispatch, operand delivery, issue, branch resolution and the
// distributed commit protocol.  blocks/op makes allocs-per-block a direct
// read-off against the reported allocs/op.
func benchBlockPipeline(b *testing.B, reference, critpath bool) {
	p := sumProgram(b)
	opts := DefaultOptions()
	opts.Reference = reference
	var blocks uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip := New(opts)
		if critpath {
			chip.EnableCritPath()
		}
		proc, err := chip.AddProc(compose.MustRect(0, 0, 4), p)
		if err != nil {
			b.Fatal(err)
		}
		proc.Regs[1] = 500
		if err := chip.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
		blocks += proc.Stats.BlocksCommitted
	}
	b.ReportMetric(float64(blocks)/float64(b.N), "blocks/op")
}

func BenchmarkBlockPipeline(b *testing.B)          { benchBlockPipeline(b, false, false) }
func BenchmarkBlockPipelineReference(b *testing.B) { benchBlockPipeline(b, true, false) }

// BenchmarkBlockPipelineCritPath prices per-block critical-path
// attribution against BenchmarkBlockPipeline: the delta is the full
// recording + walk cost, which ci.sh budgets at 1.10x end to end.
func BenchmarkBlockPipelineCritPath(b *testing.B) { benchBlockPipeline(b, false, true) }
