package sim

import (
	"github.com/clp-sim/tflex/internal/critpath"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/mem"
)

// The memory path (paper §4.5): an executed load/store routes its address
// (and data) to the owning L1 D-cache/LSQ bank.  Loads execute
// speculatively: a later-arriving older store that overlaps triggers a
// dependence-violation flush from the offending load's block.  Loads that
// have violated once are memoized and thereafter wait for all older stores
// to resolve (a coarse dependence predictor), which guarantees forward
// progress.  Bank-full conditions NACK the request, which retries after a
// backoff (the Sethumadhavan LSQ-overflow mechanism).

func (p *Proc) memKey(b *IFB, idx int) mem.MemKey {
	return mem.MemKey{BlockSeq: b.seq, LSID: b.blk.Insts[idx].LSID}
}

// The violation memo is a dense bitset over (block index, instruction ID)
// pairs — a static program property, so its footprint is bounded by the
// program size and lookups are two shifts and a mask.  Blocks without a
// dense index (never produced by the program layout) fall back to a map.

func (p *Proc) violGet(b *IFB, idx int) bool {
	bi := b.meta.blkIdx
	if bi < 0 {
		return p.violMap[b.blk.Addr<<8|uint64(idx)]
	}
	bit := uint(bi)*isa.MaxBlockInsts + uint(idx)
	w := bit / 64
	if w >= uint(len(p.violBits)) {
		return false
	}
	return p.violBits[w]&(1<<(bit%64)) != 0
}

//lint:hot cold dependence-violation bookkeeping, off the common path
func (p *Proc) violSet(b *IFB, idx int) {
	bi := b.meta.blkIdx
	if bi < 0 {
		if p.violMap == nil {
			p.violMap = map[uint64]bool{}
		}
		key := b.blk.Addr<<8 | uint64(idx)
		if !p.violMap[key] {
			p.violMap[key] = true
			p.violCount++
		}
		return
	}
	bit := uint(bi)*isa.MaxBlockInsts + uint(idx)
	w := bit / 64
	if w >= uint(len(p.violBits)) {
		grown := make([]uint64, (uint(p.prog.NumBlocks())*isa.MaxBlockInsts+63)/64)
		copy(grown, p.violBits)
		p.violBits = grown
	}
	if p.violBits[w]&(1<<(bit%64)) == 0 {
		p.violBits[w] |= 1 << (bit % 64)
		p.violCount++
	}
}

// loadAtBank services a load whose address has arrived at its bank.
func (p *Proc) loadAtBank(b *IFB, idx int, addr uint64, t uint64) {
	if b.dead {
		return
	}
	in := &b.blk.Insts[idx]
	key := p.memKey(b, idx)

	// Memoized violators wait for older stores (dependence prediction).
	if p.violGet(b, idx) && !p.olderStoresResolved(b, in.LSID) {
		p.deferred = append(p.deferred, deferredLoad{b: b, gen: b.gen, idx: idx, addr: addr, t: t})
		return
	}

	bank := p.lsqBankOf(addr)
	ok, _ := bank.Insert(mem.LSQEntry{Key: key, Addr: addr, Size: in.MemSize})
	if !ok {
		p.Stats.LSQNACKs++
		p.relieveLSQPressure(b, t)
		retry := t + p.chip.Opts.NACKRetryCycles
		p.scheduleEv(retry, event{kind: evLoadBank, b: b, gen: b.gen, idx: int32(idx), addr: addr})
		return
	}

	bankIdx := p.dataBankIdx(addr)
	physCore := p.phys(bankIdx)
	svc := p.chip.l1dPort[physCore].reserve(t, 1)

	// accessDone is when the L1 access pipeline (or LSQ forward) itself
	// finished; dataAt additionally waits for any in-flight miss fill.
	// The attribution walker charges [SvcAt, AccessDone] to the cache
	// category's pipeline portion and [AccessDone, DataAt] to miss fill.
	var dataAt, accessDone uint64
	if bank.ForwardFrom(key, addr, in.MemSize) {
		dataAt = svc + 1 // store-to-load forwarding out of the LSQ
		accessDone = dataAt
	} else {
		pa := p.physAddr(addr)
		cache := p.chip.l1dAt(physCore)
		if line, hit := cache.Access(pa, svc); hit {
			dataAt = svc + uint64(p.chip.Opts.Params.L1DHitCycles)
			accessDone = dataAt
			if line.FillAt > dataAt {
				dataAt = line.FillAt
			}
		} else {
			accessDone = svc + uint64(p.chip.Opts.Params.L1DHitCycles)
			p.enterShared()
			fill := p.chip.L2.Read(physCore, pa, accessDone)
			victim, evicted := cache.Fill(pa, fill)
			if evicted {
				p.writeBackVictim(physCore, victim)
			}
			p.exitShared()
			dataAt = fill
		}
	}
	if b.cp != nil {
		ci := b.cp.InstAt(idx)
		ci.SvcAt = svc
		ci.AccessDone = accessDone
		ci.DataAt = dataAt
	}

	// The architectural value: committed memory overlaid with all older
	// in-flight stores fired so far.  Any older store that fires later
	// and overlaps will flush this block, so the value is consistent.
	val := p.loadValue(b, key, addr, int(in.MemSize), in.MemSigned)
	b.loads++
	for _, tg := range in.Targets {
		p.scheduleDelivery(b, tg, val, bankIdx, dataAt, critpath.SrcInst, int32(idx))
	}
}

// storeAtBank services a store whose address and data have arrived.
func (p *Proc) storeAtBank(b *IFB, idx int, addr uint64, val uint64, t uint64) {
	if b.dead {
		return
	}
	in := &b.blk.Insts[idx]
	key := p.memKey(b, idx)
	bank := p.lsqBankOf(addr)
	ok, violations := bank.Insert(mem.LSQEntry{Key: key, Store: true, Addr: addr, Size: in.MemSize})
	if !ok {
		p.Stats.LSQNACKs++
		p.relieveLSQPressure(b, t)
		retry := t + p.chip.Opts.NACKRetryCycles
		p.scheduleEv(retry, event{kind: evStoreBank, b: b, gen: b.gen, idx: int32(idx), addr: addr, val: val})
		return
	}

	if len(violations) > 0 {
		// Flush from the oldest violating load's block and refetch it.
		minSeq := violations[0].BlockSeq
		for _, v := range violations {
			if v.BlockSeq < minSeq {
				minSeq = v.BlockSeq
			}
			// Memoize the violating loads so replays wait.
			if vb := p.blockBySeq(v.BlockSeq); vb != nil {
				for i := range vb.blk.Insts {
					mi := &vb.blk.Insts[i]
					if mi.Op == isa.OpLoad && mi.LSID == v.LSID {
						p.violSet(vb, i)
					}
				}
			}
		}
		p.Stats.ViolationFlushes++
		victim := p.blockBySeq(minSeq)
		if victim != nil {
			restart := victim.blk.Addr
			hist := victim.fetchHist
			p.flushFrom(minSeq, restart, hist, t)
			// The store's own block may have been flushed (same-block
			// violation); if so its entry was removed with the flush.
			if b.dead {
				return
			}
			if minSeq <= b.seq {
				return
			}
		}
	}

	bankIdx := p.dataBankIdx(addr)
	physCore := p.phys(bankIdx)
	svc := p.chip.l1dPort[physCore].reserve(t, 1)

	b.stores = append(b.stores, firedStore{key: key, addr: addr, size: in.MemSize, val: val})
	if b.cp != nil {
		// The firing store is the slot's producer, overriding any null
		// twin's pre-record.
		s := &b.cp.Slots[in.LSID]
		s.Kind, s.Src = critpath.SrcInst, int32(idx)
		b.cp.InstAt(idx).SvcAt = svc
	}
	p.resolveStoreSlot(b, in.LSID, svc+1, false)
	p.retryDeferredLoads()
}

// relieveLSQPressure guarantees forward progress under LSQ overflow: when
// a NACKed operation belongs to the oldest in-flight block, the younger
// blocks (whose entries are filling the bank but which cannot commit
// before the oldest) are flushed and refetched — the overflow-handling
// flush of the NACK mechanism (Sethumadhavan et al.).
func (p *Proc) relieveLSQPressure(b *IFB, t uint64) {
	if len(p.window) < 2 || p.window[0] != b {
		return
	}
	w1 := p.window[1]
	if w1.phase == phaseCommitting {
		return
	}
	p.Stats.LSQOverflowFlushes++
	p.flushFrom(w1.seq, w1.blk.Addr, w1.fetchHist, t)
}

// blockBySeq finds an in-flight block by sequence number.
func (p *Proc) blockBySeq(seq uint64) *IFB {
	for _, b := range p.window {
		if b.seq == seq {
			return b
		}
	}
	return nil
}

// loadValue computes the architectural value of a load: committed memory
// overlaid with every older fired store (older blocks' stores plus
// same-block stores with lower LSIDs), applied in program order.
func (p *Proc) loadValue(b *IFB, key mem.MemKey, addr uint64, size int, signed bool) uint64 {
	var buf [8]byte // size <= 8
	base := p.Mem.Load(addr, size, false)
	for i := 0; i < size; i++ {
		buf[i] = byte(base >> (8 * i))
	}
	// Window blocks are ordered oldest-first, and within a block stores
	// are overlaid in LSID order.
	for _, w := range p.window {
		if w.seq > key.BlockSeq {
			break
		}
		for lsid := int8(0); lsid < w.maxLSID; lsid++ {
			for si := range w.stores {
				s := &w.stores[si]
				if s.key.LSID != lsid {
					continue
				}
				if !s.key.Less(key) {
					continue
				}
				for bb := 0; bb < int(s.size); bb++ {
					off := int64(s.addr) + int64(bb) - int64(addr)
					if off >= 0 && off < int64(size) {
						buf[off] = byte(s.val >> (8 * bb))
					}
				}
			}
		}
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	if signed {
		shift := 64 - 8*size
		v = uint64(int64(v<<uint(shift)) >> uint(shift))
	}
	return v
}

// olderStoresResolved reports whether every store slot older than (b,
// lsid) in program order has been resolved.
func (p *Proc) olderStoresResolved(b *IFB, lsid int8) bool {
	for _, w := range p.window {
		if w.seq > b.seq {
			break
		}
		limit := w.maxLSID
		if w.seq == b.seq {
			limit = lsid
		}
		hasSlot := w.meta.lsidHasSlot
		for id := int8(0); id < limit; id++ {
			if hasSlot&(1<<uint(id)) != 0 && !w.storeDone[id] {
				return false
			}
		}
	}
	return true
}

// retryDeferredLoads re-attempts memoized loads whose ordering constraints
// may have cleared.
func (p *Proc) retryDeferredLoads() {
	if len(p.deferred) == 0 {
		return
	}
	pending := p.deferred
	p.deferred = p.deferredSpare[:0]
	for _, d := range pending {
		if d.b.gen != d.gen || d.b.dead {
			continue
		}
		in := &d.b.blk.Insts[d.idx]
		if p.olderStoresResolved(d.b, in.LSID) {
			p.scheduleEv(p.nowCycle(), event{kind: evLoadBank, b: d.b, gen: d.gen, idx: int32(d.idx), addr: d.addr})
		} else {
			p.deferred = append(p.deferred, d)
		}
	}
	p.deferredSpare = pending[:0]
}
