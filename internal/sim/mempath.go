package sim

import (
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/mem"
)

// The memory path (paper §4.5): an executed load/store routes its address
// (and data) to the owning L1 D-cache/LSQ bank.  Loads execute
// speculatively: a later-arriving older store that overlaps triggers a
// dependence-violation flush from the offending load's block.  Loads that
// have violated once are memoized and thereafter wait for all older stores
// to resolve (a coarse dependence predictor), which guarantees forward
// progress.  Bank-full conditions NACK the request, which retries after a
// backoff (the Sethumadhavan LSQ-overflow mechanism).

func (p *Proc) memKey(b *IFB, idx int) mem.MemKey {
	return mem.MemKey{BlockSeq: b.seq, LSID: b.blk.Insts[idx].LSID}
}

func (p *Proc) violMemoKey(b *IFB, idx int) uint64 {
	return b.blk.Addr<<8 | uint64(idx)
}

// loadAtBank services a load whose address has arrived at its bank.
func (p *Proc) loadAtBank(b *IFB, idx int, addr uint64, t uint64) {
	if b.dead {
		return
	}
	in := &b.blk.Insts[idx]
	key := p.memKey(b, idx)

	// Memoized violators wait for older stores (dependence prediction).
	if p.violMemo[p.violMemoKey(b, idx)] && !p.olderStoresResolved(b, in.LSID) {
		p.deferred = append(p.deferred, deferredLoad{b: b, idx: idx, addr: addr, t: t})
		return
	}

	bank := p.lsqBankOf(addr)
	ok, _ := bank.Insert(mem.LSQEntry{Key: key, Addr: addr, Size: in.MemSize})
	if !ok {
		p.Stats.LSQNACKs++
		p.relieveLSQPressure(b, t)
		retry := t + p.chip.Opts.NACKRetryCycles
		p.chip.schedule(retry, func() { p.loadAtBank(b, idx, addr, p.chip.Now()) })
		return
	}

	bankIdx := p.dataBankIdx(addr)
	physCore := p.phys(bankIdx)
	svc := p.chip.l1dPort[physCore].reserve(t, 1)

	var dataAt uint64
	if bank.ForwardFrom(key, addr, in.MemSize) {
		dataAt = svc + 1 // store-to-load forwarding out of the LSQ
	} else {
		pa := p.physAddr(addr)
		cache := p.chip.l1d[physCore]
		if line, hit := cache.Access(pa, svc); hit {
			dataAt = svc + uint64(p.chip.Opts.Params.L1DHitCycles)
			if line.FillAt > dataAt {
				dataAt = line.FillAt
			}
		} else {
			fill := p.chip.L2.Read(physCore, pa, svc+uint64(p.chip.Opts.Params.L1DHitCycles))
			victim, evicted := cache.Fill(pa, fill)
			if evicted {
				p.writeBackVictim(physCore, victim)
			}
			dataAt = fill
		}
	}

	// The architectural value: committed memory overlaid with all older
	// in-flight stores fired so far.  Any older store that fires later
	// and overlaps will flush this block, so the value is consistent.
	val := p.loadValue(b, key, addr, int(in.MemSize), in.MemSigned)
	b.loads++
	for _, tg := range in.Targets {
		p.scheduleDelivery(b, tg, val, bankIdx, dataAt)
	}
}

// storeAtBank services a store whose address and data have arrived.
func (p *Proc) storeAtBank(b *IFB, idx int, addr uint64, val uint64, t uint64) {
	if b.dead {
		return
	}
	in := &b.blk.Insts[idx]
	key := p.memKey(b, idx)
	bank := p.lsqBankOf(addr)
	ok, violations := bank.Insert(mem.LSQEntry{Key: key, Store: true, Addr: addr, Size: in.MemSize})
	if !ok {
		p.Stats.LSQNACKs++
		p.relieveLSQPressure(b, t)
		retry := t + p.chip.Opts.NACKRetryCycles
		p.chip.schedule(retry, func() { p.storeAtBank(b, idx, addr, val, p.chip.Now()) })
		return
	}

	if len(violations) > 0 {
		// Flush from the oldest violating load's block and refetch it.
		minSeq := violations[0].BlockSeq
		for _, v := range violations {
			if v.BlockSeq < minSeq {
				minSeq = v.BlockSeq
			}
			// Memoize the violating loads so replays wait.
			if vb := p.blockBySeq(v.BlockSeq); vb != nil {
				for i := range vb.blk.Insts {
					mi := &vb.blk.Insts[i]
					if mi.Op == isa.OpLoad && mi.LSID == v.LSID {
						p.violMemo[p.violMemoKey(vb, i)] = true
					}
				}
			}
		}
		p.Stats.ViolationFlushes++
		victim := p.blockBySeq(minSeq)
		if victim != nil {
			restart := victim.blk.Addr
			hist := victim.fetchHist
			p.flushFrom(minSeq, restart, hist, t)
			// The store's own block may have been flushed (same-block
			// violation); if so its entry was removed with the flush.
			if b.dead {
				return
			}
			if minSeq <= b.seq {
				return
			}
		}
	}

	bankIdx := p.dataBankIdx(addr)
	physCore := p.phys(bankIdx)
	svc := p.chip.l1dPort[physCore].reserve(t, 1)

	b.stores = append(b.stores, firedStore{key: key, addr: addr, size: in.MemSize, val: val})
	p.resolveStoreSlot(b, in.LSID, svc+1, false)
	p.retryDeferredLoads()
}

// relieveLSQPressure guarantees forward progress under LSQ overflow: when
// a NACKed operation belongs to the oldest in-flight block, the younger
// blocks (whose entries are filling the bank but which cannot commit
// before the oldest) are flushed and refetched — the overflow-handling
// flush of the NACK mechanism (Sethumadhavan et al.).
func (p *Proc) relieveLSQPressure(b *IFB, t uint64) {
	if len(p.window) < 2 || p.window[0] != b {
		return
	}
	w1 := p.window[1]
	if w1.phase == phaseCommitting {
		return
	}
	p.Stats.LSQOverflowFlushes++
	p.flushFrom(w1.seq, w1.blk.Addr, w1.fetchHist, t)
}

// blockBySeq finds an in-flight block by sequence number.
func (p *Proc) blockBySeq(seq uint64) *IFB {
	for _, b := range p.window {
		if b.seq == seq {
			return b
		}
	}
	return nil
}

// loadValue computes the architectural value of a load: committed memory
// overlaid with every older fired store (older blocks' stores plus
// same-block stores with lower LSIDs), applied in program order.
func (p *Proc) loadValue(b *IFB, key mem.MemKey, addr uint64, size int, signed bool) uint64 {
	buf := make([]byte, size)
	base := p.Mem.Load(addr, size, false)
	for i := 0; i < size; i++ {
		buf[i] = byte(base >> (8 * i))
	}
	apply := func(s *firedStore) {
		for bb := 0; bb < int(s.size); bb++ {
			off := int64(s.addr) + int64(bb) - int64(addr)
			if off >= 0 && off < int64(size) {
				buf[off] = byte(s.val >> (8 * bb))
			}
		}
	}
	// Window blocks are ordered oldest-first, and within a block stores
	// are overlaid in LSID order.
	for _, w := range p.window {
		if w.seq > key.BlockSeq {
			break
		}
		for lsid := int8(0); lsid < w.maxLSID; lsid++ {
			for si := range w.stores {
				s := &w.stores[si]
				if s.key.LSID != lsid {
					continue
				}
				if s.key.Less(key) {
					apply(s)
				}
			}
		}
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	if signed {
		shift := 64 - 8*size
		v = uint64(int64(v<<uint(shift)) >> uint(shift))
	}
	return v
}

// olderStoresResolved reports whether every store slot older than (b,
// lsid) in program order has been resolved.
func (p *Proc) olderStoresResolved(b *IFB, lsid int8) bool {
	for _, w := range p.window {
		if w.seq > b.seq {
			break
		}
		limit := w.maxLSID
		if w.seq == b.seq {
			limit = lsid
		}
		for id := int8(0); id < limit; id++ {
			if p.blockHasStoreSlot(w, id) && !w.storeDone[id] {
				return false
			}
		}
	}
	return true
}

func (p *Proc) blockHasStoreSlot(b *IFB, lsid int8) bool {
	for i := range b.blk.Insts {
		in := &b.blk.Insts[i]
		if (in.Op == isa.OpStore && in.LSID == lsid) || (in.Op == isa.OpNull && in.NullLSID == lsid) {
			return true
		}
	}
	return false
}

// retryDeferredLoads re-attempts memoized loads whose ordering constraints
// may have cleared.
func (p *Proc) retryDeferredLoads() {
	if len(p.deferred) == 0 {
		return
	}
	pending := p.deferred
	p.deferred = nil
	for _, d := range pending {
		if d.b.dead {
			continue
		}
		in := &d.b.blk.Insts[d.idx]
		if p.olderStoresResolved(d.b, in.LSID) {
			b, idx, addr := d.b, d.idx, d.addr
			p.chip.schedule(p.chip.Now(), func() { p.loadAtBank(b, idx, addr, p.chip.Now()) })
		} else {
			p.deferred = append(p.deferred, d)
		}
	}
}
