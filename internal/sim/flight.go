package sim

import (
	"io"

	"github.com/clp-sim/tflex/internal/flight"
)

// Flight recorder wiring (see internal/flight): the chip owns a
// Recorder whose rings are handed to domains at creation.  Everything
// here follows the telemetry disabled-cost contract — the recorder
// pointer is nil until EnableFlight, every hot-path write is a
// nil-receiver-safe flight.Ring.Add, and all cross-domain reads
// (dumps, stats) happen only at quiescent points.

// EnableFlight arms the flight recorder with per-domain rings holding
// events records each (<= 0 selects flight.DefaultEvents).  Idempotent;
// call before Run.  Existing domains (and any formed later) get rings;
// the reference engine has no domains and records nothing.
func (c *Chip) EnableFlight(events int) {
	if c.flightRec != nil {
		return
	}
	c.flightRec = flight.NewRecorder(events)
	for _, d := range c.domains {
		d.flight = c.flightRec.NewRing(d.id)
		for _, p := range d.procs {
			p.fr = d.flight
		}
	}
}

// FlightEnabled reports whether EnableFlight armed the recorder.
func (c *Chip) FlightEnabled() bool { return c.flightRec != nil }

// SetFlightSink directs post-mortem text dumps at w: Chip.Run writes
// every ring there when the run panics (before re-panicking) or fails.
func (c *Chip) SetFlightSink(w io.Writer) { c.flightSink = w }

// FlightDump snapshots every ring, including rings of domains merged
// away.  Returns nil when the recorder is disabled.  Call only from a
// quiescent point: after Run returns, or inside a sampler notify hook
// (multi-domain sampling is boundary-granular, hence quiescent).
func (c *Chip) FlightDump() *flight.Dump {
	if c.flightRec == nil {
		return nil
	}
	return c.flightRec.Dump()
}

// DomainStats snapshots every live domain's scheduler observability
// counters (always on — available with or without the flight
// recorder), in domain-ID order.  Same quiescence contract as
// FlightDump.
func (c *Chip) DomainStats() []flight.DomainStats {
	out := make([]flight.DomainStats, 0, len(c.domains))
	for _, d := range c.domains {
		out = append(out, d.stats())
	}
	return out
}

// flightPostMortem writes a text dump of every ring to the flight
// sink, prefixed with why the run ended.  Best-effort: write errors
// are ignored, the dump is an aid on an already-failing path.
func (c *Chip) flightPostMortem(why string) {
	if c.flightRec == nil || c.flightSink == nil {
		return
	}
	io.WriteString(c.flightSink, "flight recorder post-mortem ("+why+"):\n")
	dump := c.flightRec.Dump()
	dump.WriteText(c.flightSink)
}
