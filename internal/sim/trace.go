package sim

// Block-lifecycle tracing: an optional per-processor hook that observes
// every block's journey through the distributed pipeline — the tool used
// to debug the protocols and to visualize occupancy.

// BlockEvent records the lifetime of one dynamic block.
type BlockEvent struct {
	Seq       uint64
	Name      string
	Addr      uint64
	Owner     int // participating-core index
	FetchedAt uint64
	// CompleteAt is when the owner detected completion (0 if flushed
	// before completing).
	CompleteAt uint64
	// RetiredAt is the deallocation time for committed blocks, or the
	// flush time for squashed ones.
	RetiredAt uint64
	Flushed   bool
	// Useful counts committed useful instructions (0 for flushed blocks).
	Useful int
}

// TraceBlocks installs a block-retirement observer.  The hook runs inside
// the simulation loop; it must not call back into the simulator.
func (p *Proc) TraceBlocks(fn func(BlockEvent)) { p.blockTrace = fn }

func (p *Proc) emitBlockEvent(b *IFB, retiredAt uint64, flushed bool) {
	if p.blockTrace == nil {
		return
	}
	ev := BlockEvent{
		Seq:       b.seq,
		Name:      b.blk.Name,
		Addr:      b.blk.Addr,
		Owner:     b.owner,
		FetchedAt: b.tHandOff,
		RetiredAt: retiredAt,
		Flushed:   flushed,
	}
	if b.phase != phaseExecuting || b.outputsPending == 0 {
		ev.CompleteAt = b.completeAt
	}
	if !flushed {
		ev.Useful = b.useful
	}
	p.blockTrace(ev)
}
