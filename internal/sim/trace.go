package sim

import (
	"github.com/clp-sim/tflex/internal/critpath"
	"github.com/clp-sim/tflex/internal/telemetry"
)

// Block-lifecycle tracing: an optional per-processor hook that observes
// every block's journey through the distributed pipeline — the tool used
// to debug the protocols and to visualize occupancy.

// BlockEvent records the lifetime of one dynamic block.  It carries
// every phase boundary, so exporters (the Chrome trace writer below,
// the tflexsim timeline CSV) need no access to simulator internals.
type BlockEvent struct {
	Seq   uint64
	Name  string
	Addr  uint64
	Owner int // participating-core index
	// OwnerCore is the physical core ID of the owner — the track a
	// per-core visualization files this block under.
	OwnerCore int
	// FetchStart is the cycle the fetch pipeline began working on the
	// block at its owner (prediction + hand-off receipt).
	FetchStart uint64
	// DispatchDone is when the last instruction was dispatched into the
	// window: FetchStart plus the prediction/I-tag constant, I-cache
	// stall, fetch-command broadcast and per-core dispatch latencies.
	DispatchDone uint64
	// CompleteAt is when the owner detected completion (0 if flushed
	// before completing).
	CompleteAt uint64
	// CommitStart is when the four-phase commit protocol launched
	// (0 if the block never began committing).
	CommitStart uint64
	// RetiredAt is the deallocation time for committed blocks, or the
	// flush time for squashed ones.
	RetiredAt uint64
	Flushed   bool
	// Useful counts committed useful instructions (0 for flushed blocks).
	Useful int
	// CritPath is the block's critical-path attribution breakdown — nil
	// unless Chip.EnableCritPath was armed and the block committed.  By
	// the reconciliation invariant its categories sum to exactly
	// RetiredAt-FetchStart.
	CritPath *critpath.Breakdown
}

// TraceBlocks installs a block-retirement observer.  The hook runs inside
// the simulation loop; it must not call back into the simulator.
func (p *Proc) TraceBlocks(fn func(BlockEvent)) { p.blockTrace = fn }

// TraceStores installs a store-commit observer invoked for every
// architecturally committed store in commit order (block retirement
// order, LSID order within a block).  Same contract as TraceBlocks: the
// hook runs inside the simulation loop and must not call back in.
func (p *Proc) TraceStores(fn func(addr uint64, size uint8, val uint64)) { p.storeTrace = fn }

func (p *Proc) emitBlockEvent(b *IFB, retiredAt uint64, flushed bool) {
	if p.blockTrace == nil && p.chip.trace == nil {
		return
	}
	ev := BlockEvent{
		Seq:          b.seq,
		Name:         b.blk.Name,
		Addr:         b.blk.Addr,
		Owner:        b.owner,
		OwnerCore:    p.phys(b.owner),
		FetchStart:   b.tFetchStart,
		DispatchDone: b.tFetchStart + b.constLat + b.icacheStall + b.bcastLat + b.dispatchLat,
		CommitStart:  b.commitStart,
		RetiredAt:    retiredAt,
		Flushed:      flushed,
	}
	if b.phase != phaseExecuting || b.outputsPending == 0 {
		ev.CompleteAt = b.completeAt
	}
	if !flushed {
		ev.Useful = b.useful
		if b.cp != nil {
			bd := b.cp.Result // copy: the pooled record outlives the event
			ev.CritPath = &bd
		}
	}
	if p.blockTrace != nil {
		p.blockTrace(ev)
	}
	ev.AppendSpans(p.chip.trace, p.id)
}

// AppendSpans converts the block's lifetime into Chrome trace spans on
// track (pid, OwnerCore): fetch (FetchStart→DispatchDone), execute
// (→CompleteAt) and commit (CommitStart→RetiredAt), with one simulated
// cycle rendered as one microsecond.  Flushed blocks end in a "flushed"
// span instead of a commit.  Built purely from the event's public
// fields; safe on a nil trace.
//
//lint:hot cold trace emission, opt-in tracing accepts the overhead
func (ev *BlockEvent) AppendSpans(t *telemetry.Trace, pid int) {
	if t == nil {
		return
	}
	args := map[string]any{"seq": ev.Seq, "addr": ev.Addr, "useful": ev.Useful}
	t.Span(pid, ev.OwnerCore, ev.Name, "fetch", ev.FetchStart, ev.DispatchDone, args)
	execEnd := ev.CompleteAt
	if execEnd == 0 { // flushed mid-execution
		execEnd = ev.RetiredAt
	}
	execStart := ev.DispatchDone
	if execEnd < execStart { // outputs can finish before the last dispatch
		execStart = execEnd
	}
	t.Span(pid, ev.OwnerCore, ev.Name, "execute", execStart, execEnd, nil)
	if ev.Flushed {
		t.Span(pid, ev.OwnerCore, ev.Name, "flushed", execEnd, ev.RetiredAt, nil)
	} else {
		t.Span(pid, ev.OwnerCore, ev.Name, "commit", ev.CommitStart, ev.RetiredAt, nil)
	}
}
