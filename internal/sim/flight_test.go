package sim

import (
	"bytes"
	"strings"
	"testing"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/flight"
)

// armBomb installs a test-only stall: from the first retired block on,
// an evFunc reschedules itself at the current cycle forever, so
// simulated time stops advancing while events keep executing.  The
// watchdog must catch this as a stall, not a hang.
func armBomb(proc *Proc) {
	armed := false
	var bomb func()
	bomb = func() { proc.scheduleEv(0, event{kind: evFunc, fn: bomb}) }
	proc.TraceBlocks(func(BlockEvent) {
		if !armed {
			armed = true
			bomb()
		}
	})
}

// TestStallWatchdogSingleDomain pins the watchdog contract on the
// serial engine: an injected non-advancing event storm fails the run
// with a stall diagnostic (instead of hanging), leaves a KStall record
// in the rings, and the failed run dumps a post-mortem to the flight
// sink.
func TestStallWatchdogSingleDomain(t *testing.T) {
	opts := DefaultOptions()
	opts.StallEvents = 5000
	chip := New(opts)
	chip.EnableFlight(256)
	var sink bytes.Buffer
	chip.SetFlightSink(&sink)
	proc, err := chip.AddProc(compose.MustRect(0, 0, 2), sumProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 50
	armBomb(proc)
	err = chip.Run(1_000_000)
	if err == nil {
		t.Fatal("run with injected stall succeeded; watchdog never fired")
	}
	if !strings.Contains(err.Error(), "stall watchdog") {
		t.Fatalf("run failed with %v, want a stall watchdog diagnostic", err)
	}
	dump := chip.FlightDump()
	if dump == nil || len(dump.Records(flight.KStall)) == 0 {
		t.Fatal("no KStall record in the flight rings after a watchdog trip")
	}
	if !strings.Contains(sink.String(), "flight recorder post-mortem") {
		t.Error("failed run did not dump a post-mortem to the flight sink")
	}
	if !strings.Contains(sink.String(), "stall") {
		t.Error("post-mortem text does not mention the stall")
	}
}

// TestStallWatchdogParallelDomains pins the same contract where it
// matters most: one stalled domain among several under the parallel
// scheduler must fail the whole run promptly — the stalled worker
// breaks out of its window, the barrier completes, and Run returns the
// diagnostic instead of deadlocking.
func TestStallWatchdogParallelDomains(t *testing.T) {
	opts := DefaultOptions()
	opts.StallEvents = 5000
	opts.ParallelDomains = 2
	chip := New(opts)
	chip.EnableFlight(256)
	p := sumProgram(t)
	var procs [2]*Proc
	for i, rect := range [][3]int{{0, 0, 2}, {2, 0, 2}} {
		pr, err := chip.AddProc(compose.MustRect(rect[0], rect[1], rect[2]), p)
		if err != nil {
			t.Fatal(err)
		}
		pr.Regs[1] = 50
		procs[i] = pr
	}
	armBomb(procs[0])
	err := chip.Run(1_000_000)
	if err == nil {
		t.Fatal("parallel run with injected stall succeeded; watchdog never fired")
	}
	if !strings.Contains(err.Error(), "stall watchdog") {
		t.Fatalf("parallel run failed with %v, want a stall watchdog diagnostic", err)
	}
	if dump := chip.FlightDump(); dump == nil || len(dump.Records(flight.KStall)) == 0 {
		t.Fatal("no KStall record in the flight rings after a parallel watchdog trip")
	}
}

// TestFlightPanicPostMortem pins the Run recover path: a panic inside
// the event loop dumps the rings to the sink before re-panicking.
func TestFlightPanicPostMortem(t *testing.T) {
	chip := New(DefaultOptions())
	chip.EnableFlight(128)
	var sink bytes.Buffer
	chip.SetFlightSink(&sink)
	proc, err := chip.AddProc(compose.MustRect(0, 0, 2), sumProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 50
	fired := false
	proc.TraceBlocks(func(BlockEvent) {
		if !fired {
			fired = true
			panic("injected panic")
		}
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("injected panic did not propagate through Chip.Run")
		}
		if !strings.Contains(sink.String(), "flight recorder post-mortem (panic: injected panic)") {
			t.Errorf("panic did not dump a post-mortem; sink: %q", sink.String())
		}
	}()
	chip.Run(1_000_000) //nolint:errcheck // panics before returning
}

// TestDomainStatsAndBarrierAccounting runs a two-domain chip through
// the merged scheduler and checks the always-on per-domain counters:
// windows were crossed, events counted, barrier slack accumulated, and
// the stats survive with the flight recorder disabled.
func TestDomainStatsAndBarrierAccounting(t *testing.T) {
	opts := DefaultOptions()
	chip := New(opts) // no EnableFlight: counters must still work
	p := sumProgram(t)
	for _, rect := range [][3]int{{0, 0, 2}, {2, 0, 2}} {
		pr, err := chip.AddProc(compose.MustRect(rect[0], rect[1], rect[2]), p)
		if err != nil {
			t.Fatal(err)
		}
		pr.Regs[1] = 50
	}
	if err := chip.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if chip.FlightDump() != nil {
		t.Fatal("FlightDump must be nil while the recorder is disabled")
	}
	ds := chip.DomainStats()
	if len(ds) != 2 {
		t.Fatalf("DomainStats reported %d domains, want 2", len(ds))
	}
	for _, d := range ds {
		if d.Windows == 0 {
			t.Errorf("domain %d crossed no windows under the merged scheduler", d.Dom)
		}
		if d.Events == 0 {
			t.Errorf("domain %d counted no events", d.Dom)
		}
		if d.RingRecords != 0 {
			t.Errorf("domain %d reports %d ring records with the recorder disabled", d.Dom, d.RingRecords)
		}
	}
	// The two domains run the same program but finish at different
	// cycles relative to the shared window boundaries, so at least one
	// must have seen barrier slack.
	if ds[0].BarrierWait == 0 && ds[1].BarrierWait == 0 {
		t.Error("no barrier slack recorded across either domain")
	}
}
