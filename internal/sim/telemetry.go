package sim

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/telemetry"
)

// Telemetry integration.  The registry, Chrome trace and sampler are all
// opt-in; a chip that never calls into this file carries three nil
// pointers and a +inf sample cycle, and the simulation hot paths pay
// only the nil checks audited in DESIGN.md ("Telemetry").
//
// Naming scheme:
//
//	proc<id>.*                    per logical processor (blocks, insts,
//	                              fetch/commit phase sums, pred.*, l1i.*)
//	proc<id>.core<phys>.issued    per-core issue counts
//	core<phys>.l1d.* core<phys>.lsq.*   per physical core
//	noc.opnd.* noc.ctl.*          meshes, incl. .link.<a>.<b>.flits
//	l2.* dram.*                   shared memory system
//
// Counters are views over the fields the components already increment;
// only histograms, gauges, the sampler and the Chrome trace do work at
// collection time.

// Telemetry returns the chip's metric registry, building it on first use
// by registering every existing component.  Components created later
// (lazy L1s, processors added by a run-time scheduler) register
// themselves on creation.
func (c *Chip) Telemetry() *telemetry.Registry {
	if c.tel != nil {
		return c.tel
	}
	c.tel = telemetry.NewRegistry()
	c.Opn.Register(c.tel, "noc.opnd")
	c.Ctl.Register(c.tel, "noc.ctl")
	c.L2.Register(c.tel, "l2")
	c.DRAM.Register(c.tel, "dram")
	for core, cache := range c.l1d {
		if cache != nil {
			cache.Register(c.tel, fmt.Sprintf("core%d.l1d", core))
		}
	}
	for _, p := range c.Procs {
		p.register(c.tel)
	}
	for _, d := range c.domains {
		d.register(c.tel)
	}
	return c.tel
}

// SetChromeTrace installs a Chrome trace collector: every retired block
// contributes fetch/execute/commit spans on its owner core's track (one
// simulated cycle = 1µs of trace time).  Pass nil to stop tracing.
func (c *Chip) SetChromeTrace(t *telemetry.Trace) {
	c.trace = t
	for _, p := range c.Procs {
		c.nameProcTracks(p)
	}
}

// SampleEvery arms the cycle sampler: one row every interval cycles,
// tracking window and LSQ occupancy and committed instructions for every
// processor.  Returns the sampler for rendering after the run.
func (c *Chip) SampleEvery(interval uint64) *telemetry.Sampler {
	c.sampler = telemetry.NewSampler(interval)
	c.sampleAt = c.now + c.sampler.Interval()
	for _, p := range c.Procs {
		c.trackProc(p)
	}
	return c.sampler
}

// takeSamples records rows for every due sample point.  Run calls it at
// most once per popped event, so sample cycles land on exact interval
// multiples even when event time jumps over several of them.
func (c *Chip) takeSamples() {
	iv := c.sampler.Interval()
	for c.sampleAt <= c.now {
		c.sampler.Sample(c.sampleAt)
		c.sampleAt += iv
	}
}

// attachProcTelemetry hooks a newly added processor into whichever
// telemetry facilities are already active.
func (c *Chip) attachProcTelemetry(p *Proc) {
	if c.tel != nil {
		p.register(c.tel)
	}
	if c.trace != nil {
		c.nameProcTracks(p)
	}
	if c.sampler != nil {
		c.trackProc(p)
	}
}

func (c *Chip) nameProcTracks(p *Proc) {
	c.trace.NameProcess(p.id, fmt.Sprintf("proc%d", p.id))
	for _, core := range p.cores {
		c.trace.NameThread(p.id, core, fmt.Sprintf("core%d", core))
	}
}

func (c *Chip) trackProc(p *Proc) {
	prefix := fmt.Sprintf("proc%d", p.id)
	c.sampler.Track(prefix+".window.occupancy", func() float64 { return float64(len(p.window)) })
	c.sampler.Track(prefix+".insts.committed", func() float64 { return float64(p.Stats.InstsCommitted) })
	c.sampler.Track(prefix+".lsq.occupancy", func() float64 {
		occ := 0
		for _, bank := range p.lsq {
			occ += bank.Occupancy()
		}
		return float64(occ)
	})
}

// register exposes the processor and its private components.  A
// recomposed processor (AddProcShared) reuses its predecessor's ID, so
// re-registration replaces the old views — the registry always reflects
// the live composition.
func (p *Proc) register(r *telemetry.Registry) {
	prefix := fmt.Sprintf("proc%d", p.id)
	p.Stats.register(r, prefix)
	p.Pred.Register(r, prefix+".pred")
	p.l1i.Register(r, prefix+".l1i")
	for i := range p.lsq {
		p.lsq[i].Register(r, fmt.Sprintf("core%d.lsq", p.phys(p.dbanks[i])))
	}
	for i := range p.Stats.IssuedByCore {
		r.CounterView(fmt.Sprintf("%s.core%d.issued", prefix, p.phys(i)), &p.Stats.IssuedByCore[i])
	}
	r.Gauge(prefix+".window.occupancy", func() float64 { return float64(len(p.window)) })
	p.hFetchLat = r.Histogram(prefix + ".fetch.latency")
	p.hCommitLat = r.Histogram(prefix + ".commit.latency")
	if p.chip.critEnabled {
		p.registerCritHists(r)
	}
}

// register exposes every Stats counter under prefix — the registry view
// the flat struct has become; the fields stay the storage the hot paths
// increment.
func (s *Stats) register(r *telemetry.Registry, prefix string) {
	for _, m := range []struct {
		name string
		f    *uint64
	}{
		{"cycles", &s.Cycles},
		{"blocks.fetched", &s.BlocksFetched},
		{"blocks.committed", &s.BlocksCommitted},
		{"blocks.flushed", &s.BlocksFlushed},
		{"insts.committed", &s.InstsCommitted},
		{"insts.fired", &s.InstsFired},
		{"insts.fp_fired", &s.FPFired},
		{"mem.loads", &s.Loads},
		{"mem.stores", &s.Stores},
		{"flush.branch", &s.BranchFlushes},
		{"flush.violation", &s.ViolationFlushes},
		{"flush.lsq_overflow", &s.LSQOverflowFlushes},
		{"lsq.nacks", &s.LSQNACKs},
		{"fetch.icache_misses", &s.ICacheMisses},
		{"reg.reads", &s.RegReads},
		{"reg.writes", &s.RegWrites},
		{"fetch.blocks", &s.FetchBlocks},
		{"fetch.const_sum", &s.FetchConstSum},
		{"fetch.handoff_sum", &s.FetchHandOffSum},
		{"fetch.bcast_sum", &s.FetchBcastSum},
		{"fetch.dispatch_sum", &s.FetchDispatchSum},
		{"fetch.istall_sum", &s.FetchIStallSum},
		{"commit.blocks", &s.CommitBlocks},
		{"commit.arch_sum", &s.CommitArchSum},
		{"commit.handshake_sum", &s.CommitHandshakeSum},
	} {
		r.CounterView(prefix+"."+m.name, m.f)
	}
}
