package sim

import (
	"fmt"
	"testing"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// Random-program cross-validation: generate structured random EDGE
// programs (arithmetic DAGs, predication, selects, guarded stores, loads,
// data-dependent branches, loops) and check that the timing simulator
// finishes with bit-identical architectural state to the functional
// executor on several compositions.  This is the strongest correctness
// property the simulator has: speculation, flushes, forwarding and
// violation recovery must all be architecturally invisible.

type pgen struct{ s uint64 }

func (g *pgen) next() uint64 {
	g.s = g.s*6364136223846793005 + 1442695040888963407
	return g.s >> 17
}
func (g *pgen) intn(n int) int { return int(g.next() % uint64(n)) }

// genProgram builds a random program: a chain of loop blocks, each with a
// random dataflow body over registers r10..r19 and a data array.
func genProgram(seed uint64) (*prog.Program, error) {
	g := &pgen{s: seed}
	b := prog.NewBuilder()
	nBlocks := 2 + g.intn(3)
	const base = 0x60_0000

	for bi := 0; bi < nBlocks; bi++ {
		name := fmt.Sprintf("blk%d", bi)
		bb := b.Block(name)
		// Value pool seeded from register reads.
		var pool []prog.Ref
		for r := 0; r < 4+g.intn(4); r++ {
			pool = append(pool, bb.Read(10+g.intn(10)))
		}
		memBase := bb.Read(1)
		nOps := 6 + g.intn(18)
		stores := 0
		for k := 0; k < nOps; k++ {
			pick := func() prog.Ref { return pool[g.intn(len(pool))] }
			switch g.intn(10) {
			case 0, 1, 2: // integer binop
				ops := []isa.Opcode{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor}
				pool = append(pool, bb.Op(ops[g.intn(len(ops))], pick(), pick()))
			case 3: // immediate op
				pool = append(pool, bb.OpI(isa.OpAdd, pick(), int64(g.intn(100))-50))
			case 4: // shift (bounded)
				pool = append(pool, bb.OpI(isa.OpShr, pick(), int64(g.intn(8))))
			case 5: // compare + select
				p := bb.Op(isa.OpLtU, pick(), pick())
				pool = append(pool, bb.Select(p, pick(), pick()))
			case 6: // load from a bounded, aligned slot
				addr := bb.Add(memBase, bb.ShlI(bb.AndI(pick(), 31), 3))
				pool = append(pool, bb.Load(addr, 0, 8, false))
			case 7: // unconditional store to a bounded, aligned slot
				if stores < 8 {
					addr := bb.Add(memBase, bb.ShlI(bb.AndI(pick(), 31), 3))
					bb.Store(addr, pick(), 0, 8)
					stores++
				}
			case 8: // guarded store (predicated + null pair)
				if stores < 8 {
					p := bb.OpI(isa.OpLtU, bb.AndI(pick(), 7), 4)
					addr := bb.Add(memBase, bb.ShlI(bb.AndI(pick(), 31), 3))
					bb.When(p).Store(addr, pick(), 0, 8)
					stores++
				}
			case 9: // guarded register write (complementary arms)
				p := bb.OpI(isa.OpLtU, bb.AndI(pick(), 7), 4)
				reg := 10 + g.intn(10)
				bb.Write(reg, bb.Select(p, pick(), pick()))
			}
		}
		// A couple of unconditional register writes.
		for w := 0; w < 2; w++ {
			bb.Write(10+g.intn(10), pool[g.intn(len(pool))])
		}
		// Loop control: iterate via r2, branch on a data-dependent bit to
		// one of two successors (both eventually reach the next block).
		iv := bb.AddI(bb.Read(2), 1)
		bb.Write(2, iv)
		limit := int64(6 + g.intn(10))
		nextName := fmt.Sprintf("blk%d", (bi+1)%nBlocks)
		if bi == nBlocks-1 {
			nextName = "fin"
		}
		done := bb.Op(isa.OpLe, bb.Const(limit), iv)
		taken := bb.Op(isa.OpAnd, bb.OpI(isa.OpNe, bb.AndI(pool[g.intn(len(pool))], 1), 0), bb.OpI(isa.OpEq, done, 0))
		// taken -> self loop; else if done -> next; else -> next as well
		// (random control, always terminating because r2 monotonically
		// increases and the limit check dominates).
		sel := bb.Select(taken, bb.Const(1), bb.Const(0))
		bb.BranchIf(sel, name, nextName)
	}
	b.Block("fin").Halt()
	return b.Program("blk0")
}

func TestFuzzSimMatchesFunctional(t *testing.T) {
	comps := []compose.Processor{
		compose.MustRect(0, 0, 1),
		compose.MustRect(0, 0, 4),
		compose.MustRect(0, 0, 32),
		{Cores: []int{5, 9, 30}},       // arbitrary 3-core composition
		{Cores: []int{2, 3, 6, 7, 10}}, // arbitrary 5-core composition
	}
	for seed := uint64(1); seed <= 25; seed++ {
		p, err := genProgram(seed)
		if err != nil {
			// Some random programs exceed block limits; skip those seeds.
			continue
		}
		init := func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			g := &pgen{s: seed * 77}
			regs[1] = 0x60_0000
			for r := 10; r < 20; r++ {
				regs[r] = g.next()
			}
			for i := uint64(0); i < 32; i++ {
				m.Write64(0x60_0000+8*i, g.next())
			}
		}
		ref := exec.NewMachine(p)
		init(&ref.Regs, ref.Mem.(*exec.PageMem))
		if _, err := ref.Run(100_000); err != nil {
			// Random program hit an architectural limit (e.g. block count);
			// such seeds are uninteresting.
			continue
		}

		for ci, comp := range comps {
			chip := New(DefaultOptions())
			proc, err := chip.AddProc(comp, p)
			if err != nil {
				t.Fatalf("seed %d comp %d: %v", seed, ci, err)
			}
			init(&proc.Regs, proc.Mem)
			if err := chip.Run(50_000_000); err != nil {
				t.Fatalf("seed %d comp %d (n=%d): %v", seed, ci, comp.N(), err)
			}
			for r := 0; r < 32; r++ {
				if proc.Regs[r] != ref.Regs[r] {
					t.Fatalf("seed %d comp %d (n=%d): r%d = %#x, want %#x",
						seed, ci, comp.N(), r, proc.Regs[r], ref.Regs[r])
				}
			}
			for i := uint64(0); i < 32; i++ {
				addr := uint64(0x60_0000) + 8*i
				if g, w := proc.Mem.Read64(addr), ref.Mem.(*exec.PageMem).Read64(addr); g != w {
					t.Fatalf("seed %d comp %d (n=%d): mem[%d] = %#x, want %#x",
						seed, ci, comp.N(), i, g, w)
				}
			}
		}
	}
}

func TestFuzzTRIPSConfigMatchesFunctional(t *testing.T) {
	// The TRIPS-style configuration (central predictor, restricted banks,
	// 8 blocks in flight) must also be architecturally invisible.
	opts := DefaultOptions()
	opts.WindowPerCore = 64
	opts.CentralPredictor = true
	opts.DBanks = []int{0, 4, 8, 12}
	opts.RegBanks = []int{0, 1, 2, 3}
	opts.Params.IssueTotal = 1
	opts.Params.OperandBW = 1

	for seed := uint64(30); seed <= 42; seed++ {
		p, err := genProgram(seed)
		if err != nil {
			continue
		}
		init := func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			g := &pgen{s: seed * 77}
			regs[1] = 0x60_0000
			for r := 10; r < 20; r++ {
				regs[r] = g.next()
			}
			for i := uint64(0); i < 32; i++ {
				m.Write64(0x60_0000+8*i, g.next())
			}
		}
		ref := exec.NewMachine(p)
		init(&ref.Regs, ref.Mem.(*exec.PageMem))
		if _, err := ref.Run(100_000); err != nil {
			continue
		}
		chip := New(opts)
		proc, err := chip.AddProc(compose.MustRect(0, 0, 16), p)
		if err != nil {
			t.Fatal(err)
		}
		init(&proc.Regs, proc.Mem)
		if err := chip.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for r := 0; r < 32; r++ {
			if proc.Regs[r] != ref.Regs[r] {
				t.Fatalf("seed %d: r%d = %#x, want %#x", seed, r, proc.Regs[r], ref.Regs[r])
			}
		}
	}
}
