package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/telemetry"
)

// Satellite: Stats derived-metric edge cases.  A zero-cycle Stats (the
// processor never halted) and a zero-block Stats must report inert
// values rather than dividing by zero.
func TestStatsZeroCycleAndZeroBlockEdgeCases(t *testing.T) {
	var s Stats
	s.IssuedByCore = []uint64{5, 7}
	if got := s.Utilization(); got != nil {
		t.Fatalf("Utilization with 0 cycles = %v, want nil", got)
	}
	if got := s.IPC(); got != 0 {
		t.Fatalf("IPC with 0 cycles = %v, want 0", got)
	}
	c, h, b, d, i := s.FetchLatency()
	if c != 0 || h != 0 || b != 0 || d != 0 || i != 0 {
		t.Fatalf("FetchLatency with 0 blocks = %v %v %v %v %v, want zeros", c, h, b, d, i)
	}
	arch, hs := s.CommitLatency()
	if arch != 0 || hs != 0 {
		t.Fatalf("CommitLatency with 0 blocks = %v %v, want zeros", arch, hs)
	}

	// Sums without blocks (pathological) still must not divide by zero;
	// with blocks, the averages are the exact float64 quotients.
	s = Stats{FetchBlocks: 4, FetchConstSum: 10, FetchHandOffSum: 2,
		FetchBcastSum: 6, FetchDispatchSum: 8, FetchIStallSum: 0,
		CommitBlocks: 2, CommitArchSum: 5, CommitHandshakeSum: 9}
	c, h, b, d, i = s.FetchLatency()
	if c != 2.5 || h != 0.5 || b != 1.5 || d != 2 || i != 0 {
		t.Fatalf("FetchLatency = %v %v %v %v %v", c, h, b, d, i)
	}
	arch, hs = s.CommitLatency()
	if arch != 2.5 || hs != 4.5 {
		t.Fatalf("CommitLatency = %v %v", arch, hs)
	}
	s.Cycles = 10
	s.IssuedByCore = []uint64{20, 5}
	u := s.Utilization()
	if len(u) != 2 || u[0] != 2 || u[1] != 0.5 {
		t.Fatalf("Utilization = %v", u)
	}
}

// End-to-end: run a kernel with the full telemetry stack armed and check
// that the registry views match the flat stats, the histograms saw every
// committed block, the sampler rowed the run, and the Chrome trace holds
// per-core spans.
func TestChipTelemetryEndToEnd(t *testing.T) {
	p := sumProgram(t)
	chip := New(DefaultOptions())
	reg := chip.Telemetry() // armed before AddProc: components self-register
	trace := &telemetry.Trace{}
	chip.SetChromeTrace(trace)
	samp := chip.SampleEvery(16)
	proc, err := chip.AddProc(compose.MustRect(0, 0, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 30
	if err := chip.Run(1_000_000); err != nil {
		t.Fatal(err)
	}

	// Counter views read the live component fields.
	checks := map[string]uint64{
		"proc0.blocks.committed": proc.Stats.BlocksCommitted,
		"proc0.blocks.fetched":   proc.Stats.BlocksFetched,
		"proc0.insts.committed":  proc.Stats.InstsCommitted,
		"proc0.fetch.const_sum":  proc.Stats.FetchConstSum,
		"proc0.commit.arch_sum":  proc.Stats.CommitArchSum,
		"proc0.cycles":           proc.Stats.Cycles,
		"proc0.pred.predictions": proc.Pred.Stats.Predictions,
		"proc0.pred.hits":        proc.Pred.Stats.Hits,
		"noc.ctl.messages":       chip.Ctl.Stats().Messages,
		"l2.accesses":            chip.L2.Stats.Accesses,
	}
	for name, want := range checks {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.SumCounters("", ".l1d.accesses"); got != chip.L1DStats().Accesses {
		t.Errorf("sum l1d.accesses = %d, want %d", got, chip.L1DStats().Accesses)
	}
	// Per-link flits sum to the mesh hop count.
	if got := reg.SumCounters("noc.ctl.link.", ".flits"); got != chip.Ctl.Stats().Hops {
		t.Errorf("sum ctl link flits = %d, want %d hops", got, chip.Ctl.Stats().Hops)
	}

	// Histograms observed one sample per committed block.
	fh := reg.HistogramOf("proc0.fetch.latency")
	ch := reg.HistogramOf("proc0.commit.latency")
	if fh.Count() != proc.Stats.FetchBlocks || ch.Count() != proc.Stats.BlocksCommitted {
		t.Errorf("histogram counts = %d/%d, want %d/%d",
			fh.Count(), ch.Count(), proc.Stats.FetchBlocks, proc.Stats.BlocksCommitted)
	}
	if fh.Sum() != proc.Stats.FetchConstSum+proc.Stats.FetchHandOffSum+
		proc.Stats.FetchBcastSum+proc.Stats.FetchDispatchSum+proc.Stats.FetchIStallSum {
		t.Errorf("fetch histogram sum = %d does not match the Stats sums", fh.Sum())
	}

	// The sampler rowed the run at its interval.
	wantRows := int(proc.Stats.Cycles / 16)
	if samp.Len() < wantRows-1 || samp.Len() > wantRows+1 {
		t.Errorf("sampler rows = %d over %d cycles at interval 16", samp.Len(), proc.Stats.Cycles)
	}
	series := samp.Series()
	if len(series) != 3 || series[0].Name != "proc0.window.occupancy" {
		t.Fatalf("series = %+v", series)
	}

	// Chrome trace: valid JSON, a track per participating core, three
	// spans per committed block.
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace JSON invalid: %v", err)
	}
	spans := map[string]int{}
	tracks := map[int]bool{}
	threadNames := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans[ev.Cat]++
			tracks[ev.TID] = true
			if ev.PID != 0 {
				t.Fatalf("span pid = %d, want proc id 0", ev.PID)
			}
		case "M":
			if ev.Name == "thread_name" {
				threadNames[fmt.Sprint(ev.Args["name"])] = true
			}
		}
	}
	retired := int(proc.Stats.BlocksCommitted + proc.Stats.BlocksFlushed)
	if spans["fetch"] != retired || spans["execute"] != retired {
		t.Errorf("fetch/execute spans = %d/%d, want %d each", spans["fetch"], spans["execute"], retired)
	}
	if spans["commit"] != int(proc.Stats.BlocksCommitted) {
		t.Errorf("commit spans = %d, want %d", spans["commit"], proc.Stats.BlocksCommitted)
	}
	for _, core := range proc.Cores() {
		if !threadNames[fmt.Sprintf("core%d", core)] {
			t.Errorf("missing thread_name for core%d", core)
		}
	}
	if len(tracks) == 0 {
		t.Error("no span tracks recorded")
	}
	for tid := range tracks {
		found := false
		for _, core := range proc.Cores() {
			if tid == core {
				found = true
			}
		}
		if !found {
			t.Errorf("span on track %d, not a participating core", tid)
		}
	}

	// Registry export is valid JSON with the hierarchical names.
	buf.Reset()
	if err := reg.WriteJSON(&buf); err != nil || !json.Valid(buf.Bytes()) {
		t.Fatalf("registry JSON invalid (err=%v)", err)
	}
}

// Telemetry armed only after the run (the experiments path): snapshot
// still reads every counter, and the disabled-during-run instrumentation
// stayed inert.
func TestTelemetryAttachAfterRun(t *testing.T) {
	p := sumProgram(t)
	chip := New(DefaultOptions())
	proc, err := chip.AddProc(compose.MustRect(0, 0, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 30
	if err := chip.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	snap := chip.Telemetry().Snapshot()
	if got := snap.Get("proc0.blocks.committed"); got != float64(proc.Stats.BlocksCommitted) {
		t.Fatalf("post-run snapshot blocks.committed = %v, want %d", got, proc.Stats.BlocksCommitted)
	}
	if got := snap.Get("proc0.fetch.latency.count"); got != 0 {
		t.Fatalf("histogram observed %v blocks while disabled, want 0", got)
	}
}
