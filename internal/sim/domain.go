package sim

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/flight"
	"github.com/clp-sim/tflex/internal/noc"
	"github.com/clp-sim/tflex/internal/telemetry"
)

// Event domains: the partitioned cycle engine.
//
// The optimized engine splits the chip's work into *domains*, each
// owning a bucketed calendar queue, a private (cycle, insertion-seq)
// sequence space, per-domain NoC ports and a deferred-coherence inbox.
// A domain is the unit of concurrency: all state a domain's events touch
// — its processors' windows, LSQ banks, L1s, issue rings and the mesh
// links inside its routing closure — is reachable from no other domain,
// so domains advance independently inside lockstep windows of W cycles
// ([kW, (k+1)W), W = Options.DomainWindow) and synchronize at every
// boundary.  The only state domains share is the L2/DRAM side; every
// access to it is serialized in the global merged event order (at,
// domainID, seq) — inline when domains run on one goroutine, through
// the window arbiter (parallel.go) when they run on many — so results
// are bit-identical for every ParallelDomains setting and GOMAXPROCS.
//
// Domain formation.  Processors are grouped by the closure of two
// relations: sharing an architectural memory (AddProcShared — directory
// traffic on shared lines must stay inside one domain) and overlapping
// routing bounding boxes (XY routes never leave the bounding box of
// their endpoints, so disjoint boxes touch disjoint mesh links).  The
// grouping runs only at quiescent points — Run entry and window
// boundaries — and processors composed mid-run begin fetching at the
// boundary that places them, modeling a (≤ W cycle) recomposition
// latency.  Domains whose boxes an arriving processor bridges are
// merged at the same quiescent point.
//
// Cross-domain coherence.  Address-space tagging (physAddr) makes every
// same-line directory operation intra-domain; the single cross-domain
// channel is the L2 eviction path invalidating a victim's L1 line in
// another domain.  Those invalidations are deferred into the target
// domain's inbox and applied at the next window boundary — an
// invalidate message spending up to W cycles crossing the chip.  The
// deferral is identical in every mode, so it never breaks mode parity.

// domain is one event partition.
type domain struct {
	id   int
	chip *Chip

	cal calQueue //lint:owner domain
	seq uint64   //lint:owner domain
	now uint64   //lint:owner domain

	procs []*Proc
	mems  []*exec.PageMem // identity set for memory-sharing grouping

	// Routing-closure bounding box, inclusive; x0 == -1 when empty.
	x0, y0, x1, y1 int

	// Per-domain mesh ports.  They point at the mesh's own statistics
	// when domains share one goroutine and at the shadow structs below
	// during parallel runs (drained at each boundary).
	opn, ctl           *noc.Port
	opnStats, ctlStats noc.Stats //lint:owner domain

	// inbox holds deferred cross-domain L1 invalidations in global
	// defer-sequence order (appends happen in arbiter order).
	inbox []inval //lint:owner domain

	err   error
	errAt uint64

	// Parallel-run bookkeeping (owned by parRun under its monitor).
	gen     uint64
	granted bool
	retired bool
	spawned bool

	// flight is the domain's flight-recorder ring; nil unless
	// Chip.EnableFlight armed the recorder, so the disabled cost is the
	// nil check inside flight.Ring.Add.  Single-writer: the goroutine
	// advancing the domain, or the boundary/leader goroutine while
	// every worker is quiescent.
	flight *flight.Ring //lint:owner domain

	// Scheduler observability counters, always on in the style of
	// Stats (plain increments, no pointers).  All are derived from the
	// merged event order — never wall time — so they are deterministic
	// at any ParallelDomains/GOMAXPROCS; sharedGrants/sharedWait stay
	// zero outside the parallel scheduler, where no arbiter runs.
	// mergeDomains folds the absorbed domain's counters into the
	// survivor.
	windows      uint64 // lockstep windows completed (boundary-counted)
	events       uint64 // events executed
	winEvents    uint64 // events executed in the current window
	barrierWait  uint64 // cumulative end-of-window slack cycles (≤ W each)
	sharedGrants uint64 // shared L2/DRAM sections granted by the arbiter
	sharedWait   uint64 // grants to other domains observed while parked
	invalsSeen   uint64 // deferred cross-domain invals delivered

	hBarrier *telemetry.Histogram // domain<d>.barrier.wait_cycles; nil-safe
}

// inval is one deferred L1 invalidation.
type inval struct {
	seq  uint64 // global defer sequence, for deterministic merges
	core int
	addr uint64
}

// scheduleEv enqueues a typed event in this domain, stamping time
// (clamped to the domain's now) and the domain-local insertion sequence.
func (d *domain) scheduleEv(at uint64, e event) {
	if at < d.now {
		at = d.now
	}
	d.seq++
	e.at = at
	e.seq = d.seq
	d.cal.push(e)
}

// fail records the domain's first model fault; the engine stops at the
// next synchronization point and reports the globally first fault.
//
//lint:hot cold fault path, runs at most once per simulation
func (d *domain) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("sim: "+format, args...)
		d.errAt = d.now
	}
}

// runWindow executes this domain's events with at < limit, in (at, seq)
// order.  It is the per-worker body of a parallel window and never
// touches another domain's state; shared-resource accesses inside
// dispatched events park on the window arbiter.
//
//lint:owner worker
func (d *domain) runWindow(limit uint64) { //lint:hot root
	c := d.chip
	stall := c.Opts.stallEvents()
	d.flight.Add(flight.KWindowOpen, d.now, -1, -1, limit, 0)
	var n uint64
	for d.err == nil {
		at, ok := d.cal.nextAt()
		if !ok || at >= limit {
			break
		}
		e := d.cal.popMin()
		d.now = e.at
		n++
		if n >= stall {
			d.stall(n, limit)
			break
		}
		c.dispatch(&e, e.at)
	}
	d.winEvents = n
	d.events += n
	d.flight.Add(flight.KWindowClose, d.now, -1, -1, limit, n)
}

// stall fails the run with the watchdog diagnostic: the domain executed
// count events without its window (or cycle) advancing.  The engine
// stops at the next synchronization point instead of hanging; the
// flight rings (when armed) keep the event history leading up to the
// stall, and Chip.Run writes a post-mortem text dump to the flight
// sink on the way out.
func (d *domain) stall(count, limit uint64) {
	d.flight.Add(flight.KStall, d.now, -1, -1, limit, count)
	d.fail("stall watchdog: domain %d executed %d events without advancing past cycle %d (limit %d events; flight rings dumped)",
		d.id, count, d.now, d.chip.Opts.stallEvents())
}

// emptyBox is the bounding-box sentinel for a domain with no cores.
func (d *domain) boxEmpty() bool { return d.x0 < 0 }

func (d *domain) growBox(x0, y0, x1, y1 int) {
	if d.boxEmpty() {
		d.x0, d.y0, d.x1, d.y1 = x0, y0, x1, y1
		return
	}
	if x0 < d.x0 {
		d.x0 = x0
	}
	if y0 < d.y0 {
		d.y0 = y0
	}
	if x1 > d.x1 {
		d.x1 = x1
	}
	if y1 > d.y1 {
		d.y1 = y1
	}
}

func (d *domain) overlapsBox(x0, y0, x1, y1 int) bool {
	if d.boxEmpty() {
		return false
	}
	return x0 <= d.x1 && d.x0 <= x1 && y0 <= d.y1 && d.y0 <= y1
}

func (d *domain) ownsMem(m *exec.PageMem) bool {
	for _, mm := range d.mems {
		if mm == m {
			return true
		}
	}
	return false
}

// applyInbox applies deferred cross-domain invalidations.  Runs only at
// window boundaries with every domain quiescent.  The dirty bit and
// distance feedback are discarded exactly as the immediate eviction
// path discards them (mem/l2.go fill), so deferral shifts only the
// victim's hit/miss timing by at most W cycles.
func (d *domain) applyInbox() {
	c := d.chip
	for i := range d.inbox {
		msg := &d.inbox[i]
		d.invalsSeen++
		d.flight.Add(flight.KInval, d.now, -1, int16(msg.core), msg.addr, msg.seq)
		if cache := c.l1d[msg.core]; cache != nil {
			if found, _ := cache.Invalidate(msg.addr); found {
				c.L2.Stats.Invals++
			}
		}
	}
	d.inbox = d.inbox[:0]
}

// stats snapshots the domain's scheduler observability counters.  Call
// from a quiescent point (boundary, post-run) like every other
// cross-domain read.
func (d *domain) stats() flight.DomainStats {
	cores := 0
	for _, p := range d.procs {
		cores += len(p.cores)
	}
	return flight.DomainStats{
		Dom:          d.id,
		Procs:        len(d.procs),
		Cores:        cores,
		Now:          d.now,
		Windows:      d.windows,
		Events:       d.events,
		BarrierWait:  d.barrierWait,
		SharedGrants: d.sharedGrants,
		SharedWait:   d.sharedWait,
		Invals:       d.invalsSeen,
		InboxDepth:   len(d.inbox),
		RingRecords:  d.flight.Written(),
	}
}

// register installs the domain's telemetry views: window occupancy,
// barrier-wait histogram, shared-section arbiter counters and inbox
// depth.  A domain merged away keeps its entries with the counters
// folded into (and future activity accounted to) the surviving domain.
func (d *domain) register(r *telemetry.Registry) {
	prefix := fmt.Sprintf("domain%d", d.id)
	r.CounterView(prefix+".window.count", &d.windows)
	r.CounterView(prefix+".window.events", &d.events)
	r.CounterView(prefix+".barrier.wait_total", &d.barrierWait)
	r.CounterView(prefix+".shared.grants", &d.sharedGrants)
	r.CounterView(prefix+".shared.wait", &d.sharedWait)
	r.CounterView(prefix+".inval.delivered", &d.invalsSeen)
	r.Gauge(prefix+".inbox.depth", func() float64 { return float64(len(d.inbox)) })
	r.Gauge(prefix+".window.occupancy", func() float64 {
		if d.windows == 0 {
			return 0
		}
		return float64(d.events) / float64(d.windows)
	})
	d.hBarrier = r.Histogram(prefix + ".barrier.wait_cycles")
}

// bboxOfCores returns the inclusive mesh bounding box of a core set.
func (c *Chip) bboxOfCores(cores []int) (x0, y0, x1, y1 int) {
	x0, y0 = c.Opn.XY(cores[0])
	x1, y1 = x0, y0
	for _, core := range cores[1:] {
		x, y := c.Opn.XY(core)
		if x < x0 {
			x0 = x
		}
		if y < y0 {
			y0 = y
		}
		if x > x1 {
			x1 = x
		}
		if y > y1 {
			y1 = y
		}
	}
	return
}

// newDomain appends a fresh, empty domain, arming its flight ring and
// telemetry views when the chip has them.
func (c *Chip) newDomain() *domain {
	d := &domain{id: c.nextDomainID, chip: c, x0: -1}
	c.nextDomainID++
	d.opn = c.Opn.NewPort(nil)
	d.ctl = c.Ctl.NewPort(nil)
	if c.flightRec != nil {
		d.flight = c.flightRec.NewRing(d.id)
	}
	if c.tel != nil {
		d.register(c.tel)
	}
	c.domains = append(c.domains, d)
	return d
}

// placePending assigns every processor composed since the last quiescent
// point to a domain (forming, joining or merging domains as its
// footprint requires) and schedules its first fetch no earlier than
// startAt.  Must run at a quiescent point.
func (c *Chip) placePending(startAt uint64) {
	for len(c.pendingProcs) > 0 {
		p := c.pendingProcs[0]
		c.pendingProcs = c.pendingProcs[1:]
		c.placeProc(p, startAt)
	}
}

//lint:hot cold composition event, not per-cycle work
func (c *Chip) placeProc(p *Proc, startAt uint64) {
	x0, y0, x1, y1 := c.bboxOfCores(p.cores)
	var matches []*domain
	for _, d := range c.domains {
		if d.overlapsBox(x0, y0, x1, y1) || d.ownsMem(p.Mem) {
			matches = append(matches, d)
		}
	}
	var into *domain
	if len(matches) == 0 {
		into = c.newDomain()
	} else {
		into = matches[0]
		for _, d := range matches[1:] {
			c.mergeDomains(into, d)
		}
	}
	into.adopt(p, x0, y0, x1, y1, startAt)
}

// adopt attaches a processor to the domain and seeds its fetch engine.
//
//lint:hot cold composition event, not per-cycle work
func (d *domain) adopt(p *Proc, x0, y0, x1, y1 int, startAt uint64) {
	p.dom = d
	p.fr = d.flight
	d.flight.Add(flight.KCompose, startAt, int16(p.id), int16(p.cores[0]), uint64(p.id), uint64(len(p.cores)))
	d.procs = append(d.procs, p)
	if !d.ownsMem(p.Mem) {
		d.mems = append(d.mems, p.Mem)
	}
	d.growBox(x0, y0, x1, y1)
	for _, core := range p.cores {
		d.chip.coreDom[core] = d
	}
	if p.fetch.readyAt < startAt {
		p.fetch.readyAt = startAt
	}
	p.maybeFetch()
}

// mergeDomains folds b into a (a.id < b.id, both quiescent): b's queued
// events re-file into a's sequence space in (at, seq) order, clamped to
// the merged now — the deterministic definition of a bridge merge, the
// same in every mode.
//
//lint:hot cold composition event, not per-cycle work
func (c *Chip) mergeDomains(a, b *domain) {
	if b.now > a.now {
		a.now = b.now
	}
	for !b.cal.empty() {
		e := b.cal.popMin()
		a.scheduleEv(e.at, e)
	}
	a.flight.Add(flight.KCompose, a.now, -1, -1, uint64(a.id), uint64(b.id))
	for _, p := range b.procs {
		p.dom = a
		p.fr = a.flight
		a.procs = append(a.procs, p)
	}
	// Fold the absorbed domain's scheduler counters into the survivor so
	// chip-wide totals are conserved across merges.
	a.events += b.events
	a.windows += b.windows
	a.barrierWait += b.barrierWait
	a.sharedGrants += b.sharedGrants
	a.sharedWait += b.sharedWait
	a.invalsSeen += b.invalsSeen
	b.events, b.windows, b.barrierWait = 0, 0, 0
	b.sharedGrants, b.sharedWait, b.invalsSeen = 0, 0, 0
	for _, m := range b.mems {
		if !a.ownsMem(m) {
			a.mems = append(a.mems, m)
		}
	}
	if !b.boxEmpty() {
		a.growBox(b.x0, b.y0, b.x1, b.y1)
	}
	// Merge the inboxes by global defer sequence (each is ascending).
	if len(b.inbox) > 0 {
		merged := make([]inval, 0, len(a.inbox)+len(b.inbox))
		i, j := 0, 0
		for i < len(a.inbox) && j < len(b.inbox) {
			if a.inbox[i].seq < b.inbox[j].seq {
				merged = append(merged, a.inbox[i])
				i++
			} else {
				merged = append(merged, b.inbox[j])
				j++
			}
		}
		merged = append(merged, a.inbox[i:]...)
		merged = append(merged, b.inbox[j:]...)
		a.inbox = merged
	}
	if b.err != nil && a.err == nil {
		a.err, a.errAt = b.err, b.errAt
	}
	// Shadow statistics drain straight to the meshes (sums commute).
	c.Opn.FoldStats(&b.opnStats)
	c.Ctl.FoldStats(&b.ctlStats)
	for i := range c.coreDom {
		if c.coreDom[i] == b {
			c.coreDom[i] = a
		}
	}
	b.retired = true
	for i, d := range c.domains {
		if d == b {
			c.domains = append(c.domains[:i], c.domains[i+1:]...)
			break
		}
	}
}

// minNextAt returns the earliest pending event cycle across domains.
func (c *Chip) minNextAt() (uint64, bool) {
	var m uint64
	ok := false
	for _, d := range c.domains {
		if at, k := d.cal.nextAt(); k && (!ok || at < m) {
			m, ok = at, true
		}
	}
	return m, ok
}

// collectErrors promotes the globally first domain fault (min errAt,
// domain order breaking ties) to the chip.
func (c *Chip) collectErrors() {
	if c.err != nil {
		return
	}
	var best *domain
	for _, d := range c.domains {
		if d.err != nil && (best == nil || d.errAt < best.errAt) {
			best = d
		}
	}
	if best != nil {
		c.err = best.err
	}
}

// syncNow advances the chip clock to the furthest domain.
func (c *Chip) syncNow() {
	for _, d := range c.domains {
		if d.now > c.now {
			c.now = d.now
		}
	}
}

// drainShadows folds every domain's shadow NoC statistics into the
// meshes, in domain order.  A no-op for direct-bound ports (the shadow
// structs stay zero).
func (c *Chip) drainShadows() {
	for _, d := range c.domains {
		c.Opn.FoldStats(&d.opnStats)
		c.Ctl.FoldStats(&d.ctlStats)
	}
}

// windowBoundary runs the between-window work with every domain
// quiescent: deferred invalidations apply in domain order, shadow NoC
// statistics drain, and processors composed during the window are
// placed and begin fetching at the boundary cycle.  Identical in merged
// and parallel modes — mode parity depends on it.
func (c *Chip) windowBoundary(boundaryCycle uint64) {
	w := c.Opts.domainWindow()
	for _, d := range c.domains {
		// Barrier accounting: the end-of-window slack (cycles between the
		// domain's last executed event and the boundary, clamped to the
		// window width) — the simulated-time analogue of barrier wait,
		// identical in merged and parallel modes.
		d.windows++
		slack := uint64(0)
		if d.now < boundaryCycle {
			slack = boundaryCycle - d.now
			if slack > w {
				slack = w
			}
		}
		d.barrierWait += slack
		d.hBarrier.Observe(slack)
		d.flight.Add(flight.KBarrierRelease, boundaryCycle, -1, -1, boundaryCycle, slack)
		d.applyInbox()
	}
	c.drainShadows()
	if len(c.pendingProcs) > 0 {
		c.placePending(boundaryCycle)
	}
}

// windowLimitFor returns the exclusive event-time limit of the window
// containing cycle m: the next multiple of W above m, capped so no
// event beyond maxCycles ever executes (keeping the exceeded-cycles
// state identical across modes).
func (c *Chip) windowLimitFor(m, maxCycles uint64) uint64 {
	w := c.Opts.domainWindow()
	limit := (m/w + 1) * w
	if maxCycles != ^uint64(0) && limit > maxCycles+1 {
		limit = maxCycles + 1
	}
	return limit
}

//lint:hot cold run-termination error construction
func (c *Chip) exceededErr(maxCycles uint64) error {
	return fmt.Errorf("sim: exceeded %d cycles (running: %s)", maxCycles, c.runningProcs())
}

// takeBoundarySamples records sampler rows due at or before the next
// event cycle m.  Multi-domain sampling is boundary-granular: a row at
// cycle s reflects every event before the boundary that emitted it.
func (c *Chip) takeBoundarySamples(m uint64) {
	if c.sampler == nil {
		return
	}
	iv := c.sampler.Interval()
	for c.sampleAt <= m {
		c.sampler.Sample(c.sampleAt)
		c.sampleAt += iv
	}
}

// runSingle is the single-domain fast path: the exact serial event loop
// (per-event sampling and cycle-limit checks), byte-identical to the
// pre-partitioning engine and to Options.Reference.  Returns when the
// queue drains, a fault lands, or a composition event requires
// re-forming domains.
//
//lint:hot root
func (c *Chip) runSingle(d *domain, maxCycles uint64) {
	c.curDom = d
	stall := c.Opts.stallEvents()
	watchAt, watchN := ^uint64(0), uint64(0)
	for c.err == nil && d.err == nil {
		if d.cal.empty() {
			break
		}
		e := d.cal.popMin()
		if e.at > maxCycles {
			c.err = c.exceededErr(maxCycles)
			break
		}
		c.now = e.at
		d.now = e.at
		d.events++
		// Stall watchdog, cycle-granular here (no windows): too many
		// events without the clock advancing fails the run.
		if e.at != watchAt {
			watchAt, watchN = e.at, 0
		}
		watchN++
		if watchN >= stall {
			d.stall(watchN, e.at)
			break
		}
		if c.now >= c.sampleAt {
			c.takeSamples()
		}
		c.dispatch(&e, e.at)
		if len(c.pendingProcs) > 0 {
			break
		}
	}
	if c.err == nil && d.err != nil {
		c.err = d.err
	}
	c.curDom = nil
}

// runMerged advances every domain on the caller's goroutine in merged
// (at, domainID, seq) order, window by window.  This is ParallelDomains
// <= 1: the same partitioned engine minus the worker pool, and the
// ordering contract the parallel arbiter reproduces.
//
//lint:hot root
func (c *Chip) runMerged(maxCycles uint64) {
	for {
		c.collectErrors()
		if c.err != nil {
			return
		}
		m, ok := c.minNextAt()
		if !ok {
			c.syncNow()
			c.takeBoundarySamples(c.now)
			return
		}
		c.takeBoundarySamples(m)
		if m > maxCycles {
			c.syncNow()
			c.err = c.exceededErr(maxCycles)
			return
		}
		limit := c.windowLimitFor(m, maxCycles)
		stall := c.Opts.stallEvents()
		for _, d := range c.domains {
			d.winEvents = 0
			d.flight.Add(flight.KWindowOpen, d.now, -1, -1, limit, 0)
		}
		for c.err == nil {
			var best *domain
			var bat uint64
			for _, d := range c.domains {
				if d.err != nil {
					best = nil
					break
				}
				if at, ok := d.cal.nextAt(); ok && at < limit && (best == nil || at < bat) {
					best, bat = d, at
				}
			}
			if best == nil {
				break
			}
			e := best.cal.popMin()
			best.now = e.at
			c.now = e.at
			best.winEvents++
			if best.winEvents >= stall {
				best.stall(best.winEvents, limit)
				break
			}
			c.curDom = best
			c.dispatch(&e, e.at)
		}
		c.curDom = nil
		for _, d := range c.domains {
			d.events += d.winEvents
			d.flight.Add(flight.KWindowClose, d.now, -1, -1, limit, d.winEvents)
		}
		c.collectErrors()
		if c.err != nil {
			return
		}
		c.windowBoundary(limit)
	}
}

// runOptimized is the domain-engine driver: it forms domains from the
// composed processors, picks the execution mode (single-domain fast
// path, merged serial windows, or the parallel worker pool) and runs to
// completion, re-evaluating the mode whenever the composition changes.
func (c *Chip) runOptimized(maxCycles uint64) error {
	c.placePending(c.now)
	for c.err == nil {
		if len(c.pendingProcs) > 0 {
			c.placePending(c.now)
			continue
		}
		if len(c.domains) == 1 {
			c.runSingle(c.domains[0], maxCycles)
			if c.err == nil && len(c.pendingProcs) > 0 {
				continue
			}
			break
		}
		if c.Opts.ParallelDomains > 1 && len(c.domains) > 1 {
			c.runParallel(maxCycles)
		} else {
			c.runMerged(maxCycles)
		}
		break
	}
	c.syncNow()
	if c.err != nil {
		return c.err
	}
	for _, p := range c.Procs {
		if !p.halted {
			return fmt.Errorf("sim: deadlock: processor %d stalled at cycle %d (%s)", p.id, c.now, p.describeStall())
		}
	}
	if c.critEnabled {
		c.releaseCritRecords()
	}
	return nil
}
