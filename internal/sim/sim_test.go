package sim

import (
	"testing"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// run executes a program on an n-core TFlex composition and returns the
// finished processor.
func run(t *testing.T, p *prog.Program, n int, setup func(*Proc)) *Proc {
	t.Helper()
	chip := New(DefaultOptions())
	proc, err := chip.AddProc(compose.MustRect(0, 0, n), p)
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(proc)
	}
	if err := chip.Run(50_000_000); err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	return proc
}

// expect runs the functional machine with the same setup for comparison.
func expect(t *testing.T, p *prog.Program, setup func(regs *[isa.NumRegs]uint64, m *exec.PageMem)) *exec.Machine {
	t.Helper()
	m := exec.NewMachine(p)
	if setup != nil {
		setup(&m.Regs, m.Mem.(*exec.PageMem))
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func sumProgram(t testing.TB) *prog.Program {
	b := prog.NewBuilder()
	bb := b.Block("loop")
	i := bb.Read(2)
	acc := bb.Read(3)
	n := bb.Read(1)
	bb.Write(3, bb.Add(acc, i))
	i2 := bb.AddI(i, 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.Op(isa.OpLt, i2, n), "loop", "done")
	b.Block("done").Halt()
	pr, err := b.Program("loop")
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestSimSumLoopAllCompositions(t *testing.T) {
	p := sumProgram(t)
	want := expect(t, p, func(r *[isa.NumRegs]uint64, _ *exec.PageMem) { r[1] = 50 })
	for _, n := range compose.Sizes() {
		proc := run(t, p, n, func(pr *Proc) { pr.Regs[1] = 50 })
		if proc.Regs[3] != want.Regs[3] {
			t.Fatalf("n=%d: r3=%d want %d", n, proc.Regs[3], want.Regs[3])
		}
		if proc.Stats.BlocksCommitted != 51 {
			t.Fatalf("n=%d: blocks=%d", n, proc.Stats.BlocksCommitted)
		}
		if proc.Stats.Cycles == 0 {
			t.Fatalf("n=%d: no cycles recorded", n)
		}
	}
}

// memProgram stores i*i into arr[i] then sums it back.
func memProgram(t testing.TB) *prog.Program {
	b := prog.NewBuilder()
	fill := b.Block("fill")
	i := fill.Read(2)
	base := fill.Read(1)
	n := fill.Read(4)
	addr := fill.Add(base, fill.ShlI(i, 3))
	fill.Store(addr, fill.Mul(i, i), 0, 8)
	i2 := fill.AddI(i, 1)
	fill.Write(2, i2)
	fill.BranchIf(fill.Op(isa.OpLt, i2, n), "fill", "sumInit")

	si := b.Block("sumInit")
	si.Write(2, si.Const(0))
	si.Write(3, si.Const(0))
	si.Branch("sum")

	sum := b.Block("sum")
	j := sum.Read(2)
	acc := sum.Read(3)
	sbase := sum.Read(1)
	sn := sum.Read(4)
	saddr := sum.Add(sbase, sum.ShlI(j, 3))
	v := sum.Load(saddr, 0, 8, false)
	sum.Write(3, sum.Add(acc, v))
	j2 := sum.AddI(j, 1)
	sum.Write(2, j2)
	sum.BranchIf(sum.Op(isa.OpLt, j2, sn), "sum", "done")
	b.Block("done").Halt()

	pr, err := b.Program("fill")
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestSimMemoryProgramAllCompositions(t *testing.T) {
	p := memProgram(t)
	setupRegs := func(r *[isa.NumRegs]uint64, _ *exec.PageMem) {
		r[1] = 0x100000
		r[4] = 40
	}
	want := expect(t, p, setupRegs)
	for _, n := range compose.Sizes() {
		proc := run(t, p, n, func(pr *Proc) {
			pr.Regs[1] = 0x100000
			pr.Regs[4] = 40
		})
		if proc.Regs[3] != want.Regs[3] {
			t.Fatalf("n=%d: sum=%d want %d", n, proc.Regs[3], want.Regs[3])
		}
		// Memory must be bit-identical.
		for i := uint64(0); i < 40; i++ {
			w := want.Mem.(*exec.PageMem).Read64(0x100000 + 8*i)
			g := proc.Mem.Read64(0x100000 + 8*i)
			if w != g {
				t.Fatalf("n=%d: mem[%d]=%d want %d", n, i, g, w)
			}
		}
		if proc.Stats.Loads == 0 || proc.Stats.Stores == 0 {
			t.Fatalf("n=%d: loads/stores not counted", n)
		}
	}
}

// branchyProgram has a data-dependent branch pattern (hard to predict).
func branchyProgram(t testing.TB) *prog.Program {
	b := prog.NewBuilder()
	bb := b.Block("loop")
	x := bb.Read(1)
	i := bb.Read(2)
	acc := bb.Read(3)
	n := bb.Read(4)
	// x = x*1103515245 + 12345 (LCG); branch on bit 8.
	x2 := bb.AddI(bb.MulI(x, 1103515245), 12345)
	bb.Write(1, x2)
	bit := bb.AndI(bb.ShrI(x2, 8), 1)
	i2 := bb.AddI(bb.Mov(i), 1)
	bb.Write(2, i2)
	done := bb.Op(isa.OpLe, bb.Read(4), i2)
	_ = n
	bb.Write(5, done)
	bb.BranchIf(bit, "odd", "even")

	odd := b.Block("odd")
	odd.Write(3, odd.AddI(odd.Read(3), 3))
	odd.BranchIf(odd.Read(5), "done", "loop")

	even := b.Block("even")
	even.Write(3, even.AddI(even.Read(3), 7))
	even.BranchIf(even.Read(5), "done", "loop")

	b.Block("done").Halt()
	_ = acc
	pr, err := b.Program("loop")
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestSimBranchyProgramMatchesFunctional(t *testing.T) {
	p := branchyProgram(t)
	setup := func(r *[isa.NumRegs]uint64, _ *exec.PageMem) {
		r[1] = 12345
		r[4] = 200
	}
	want := expect(t, p, setup)
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		proc := run(t, p, n, func(pr *Proc) {
			pr.Regs[1] = 12345
			pr.Regs[4] = 200
		})
		if proc.Regs[3] != want.Regs[3] {
			t.Fatalf("n=%d: acc=%d want %d", n, proc.Regs[3], want.Regs[3])
		}
		if n > 1 && proc.Stats.BranchFlushes == 0 {
			t.Errorf("n=%d: expected some branch mispredictions on an LCG pattern", n)
		}
	}
}

func callProgram(t testing.TB) *prog.Program {
	b := prog.NewBuilder()
	loop := b.Block("loop")
	i := loop.Read(2)
	loop.Write(10, loop.Mov(i)) // arg
	loop.Write(1, loop.LabelAddr("ret1"))
	loop.Call("square")

	fn := b.Block("square")
	a := fn.Read(10)
	fn.Write(11, fn.Mul(a, a))
	fn.Ret(fn.Read(1))

	ret1 := b.Block("ret1")
	acc := ret1.Read(3)
	ret1.Write(3, ret1.Add(acc, ret1.Read(11)))
	i2 := ret1.AddI(ret1.Read(2), 1)
	ret1.Write(2, i2)
	ret1.BranchIf(ret1.Op(isa.OpLt, i2, ret1.Read(4)), "loop", "done")
	b.Block("done").Halt()
	pr, err := b.Program("loop")
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestSimCallReturnAllCompositions(t *testing.T) {
	p := callProgram(t)
	setup := func(r *[isa.NumRegs]uint64, _ *exec.PageMem) { r[4] = 30 }
	want := expect(t, p, setup)
	for _, n := range []int{1, 2, 8, 32} {
		proc := run(t, p, n, func(pr *Proc) { pr.Regs[4] = 30 })
		if proc.Regs[3] != want.Regs[3] {
			t.Fatalf("n=%d: acc=%d want %d", n, proc.Regs[3], want.Regs[3])
		}
		if n > 1 && proc.Pred.Stats.RASPops == 0 {
			t.Errorf("n=%d: RAS never used for returns", n)
		}
	}
}

// violationProgram: block A stores to an address, block B (next) loads it
// through a long dependence chain on the store data so that the load can
// issue before the store, exercising violation detection.
func violationProgram(t testing.TB) *prog.Program {
	b := prog.NewBuilder()
	wr := b.Block("writer")
	base := wr.Read(1)
	v := wr.Read(2)
	// Slow down the store's value with a dependence chain.
	slow := v
	for k := 0; k < 12; k++ {
		slow = wr.MulI(slow, 3)
	}
	wr.Store(base, slow, 0, 8)
	wr.Branch("reader")

	rd := b.Block("reader")
	rbase := rd.Read(1)
	got := rd.Load(rbase, 0, 8, false)
	rd.Write(3, got)
	rd.Halt()

	pr, err := b.Program("writer")
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestSimDependenceViolationRecovers(t *testing.T) {
	p := violationProgram(t)
	setup := func(r *[isa.NumRegs]uint64, _ *exec.PageMem) {
		r[1] = 0x200000
		r[2] = 5
	}
	want := expect(t, p, setup)
	for _, n := range []int{2, 8, 32} {
		proc := run(t, p, n, func(pr *Proc) {
			pr.Regs[1] = 0x200000
			pr.Regs[2] = 5
		})
		if proc.Regs[3] != want.Regs[3] {
			t.Fatalf("n=%d: got %d want %d (load did not see older store)",
				n, proc.Regs[3], want.Regs[3])
		}
	}
}

func TestSimPredicatedStoreAllCompositions(t *testing.T) {
	b := prog.NewBuilder()
	bb := b.Block("m")
	i := bb.Read(2)
	base := bb.Read(1)
	// Store only even i.
	even := bb.OpI(isa.OpEq, bb.AndI(i, 1), 0)
	addr := bb.Add(base, bb.ShlI(i, 3))
	bb.When(even).Store(addr, i, 0, 8)
	i2 := bb.AddI(i, 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.OpI(isa.OpLt, i2, 20), "m", "done")
	b.Block("done").Halt()
	p, err := b.Program("m")
	if err != nil {
		t.Fatal(err)
	}
	setup := func(r *[isa.NumRegs]uint64, m *exec.PageMem) {
		r[1] = 0x300000
		for k := uint64(0); k < 20; k++ {
			m.Write64(0x300000+8*k, 999)
		}
	}
	want := expect(t, p, setup)
	for _, n := range []int{1, 4, 16} {
		proc := run(t, p, n, func(pr *Proc) {
			pr.Regs[1] = 0x300000
			for k := uint64(0); k < 20; k++ {
				pr.Mem.Write64(0x300000+8*k, 999)
			}
		})
		for k := uint64(0); k < 20; k++ {
			w := want.Mem.(*exec.PageMem).Read64(0x300000 + 8*k)
			g := proc.Mem.Read64(0x300000 + 8*k)
			if w != g {
				t.Fatalf("n=%d: mem[%d]=%d want %d", n, k, g, w)
			}
		}
	}
}

func TestSimMoreCoresFasterOnParallelCode(t *testing.T) {
	// A wide-ILP kernel: many independent multiply chains per block.
	b := prog.NewBuilder()
	bb := b.Block("loop")
	var acc prog.Ref
	for lane := 0; lane < 12; lane++ {
		x := bb.Read(10 + lane)
		y := bb.MulI(bb.AddI(bb.MulI(x, 7), 3), 5)
		bb.Write(10+lane, y)
		if lane == 0 {
			acc = y
		} else {
			acc = bb.Add(acc, y)
		}
	}
	bb.Write(3, acc)
	i2 := bb.AddI(bb.Read(2), 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.OpI(isa.OpLt, i2, 300), "loop", "done")
	b.Block("done").Halt()
	p, err := b.Program("loop")
	if err != nil {
		t.Fatal(err)
	}
	c1 := run(t, p, 1, nil).Stats.Cycles
	c8 := run(t, p, 8, nil).Stats.Cycles
	if c8 >= c1 {
		t.Fatalf("8 cores (%d cycles) not faster than 1 core (%d cycles)", c8, c1)
	}
}

func TestSimZeroHandshakeNotSlower(t *testing.T) {
	p := sumProgram(t)
	runOpt := func(zero bool) uint64 {
		opts := DefaultOptions()
		opts.ZeroHandshake = zero
		chip := New(opts)
		proc, err := chip.AddProc(compose.MustRect(0, 0, 16), p)
		if err != nil {
			t.Fatal(err)
		}
		proc.Regs[1] = 100
		if err := chip.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return proc.Stats.Cycles
	}
	normal := runOpt(false)
	zero := runOpt(true)
	if zero > normal {
		t.Fatalf("zero-handshake (%d) slower than normal (%d)", zero, normal)
	}
	if zero == normal {
		t.Log("handshake-free run identical; acceptable but unexpected")
	}
}

func TestSimFetchCommitLatencyStats(t *testing.T) {
	p := sumProgram(t)
	proc := run(t, p, 16, func(pr *Proc) { pr.Regs[1] = 100 })
	constant, _, bcast, dispatch, _ := proc.Stats.FetchLatency()
	if constant != 7 {
		t.Fatalf("constant fetch latency %v, want 7 (predict 3 + tag 1 + init 3)", constant)
	}
	if bcast <= 0 {
		t.Fatalf("16-core fetch distribution should cost cycles, got %v", bcast)
	}
	if dispatch < 0 {
		t.Fatalf("dispatch latency %v", dispatch)
	}
	arch, handshake := proc.Stats.CommitLatency()
	if handshake <= 0 {
		t.Fatalf("16-core commit handshake should cost cycles, got %v", handshake)
	}
	if arch < 0 {
		t.Fatal("negative arch update latency")
	}

	// Single core: no prediction, so the constant part is 4.
	proc1 := run(t, p, 1, func(pr *Proc) { pr.Regs[1] = 100 })
	c1, h1, b1, d1, _ := proc1.Stats.FetchLatency()
	if c1 != 4 {
		t.Fatalf("1-core constant fetch latency %v, want 4", c1)
	}
	if h1 != 0 || b1 != 0 {
		t.Fatalf("1-core hand-off/broadcast should be free: %v %v", h1, b1)
	}
	if d1 <= dispatch {
		t.Fatalf("1-core dispatch (%v) should exceed 16-core dispatch (%v)", d1, dispatch)
	}
}

func TestSimDualIssueLimitsThroughput(t *testing.T) {
	// 1 core, a block of ~31 independent adds: at 2-wide issue the block
	// needs at least ~16 cycles of issue time.
	b := prog.NewBuilder()
	bb := b.Block("m")
	x := bb.Read(1)
	for k := 0; k < 30; k++ {
		bb.Write(10+k, bb.AddI(x, int64(k)))
	}
	bb.Halt()
	p, err := b.Program("m")
	if err != nil {
		t.Fatal(err)
	}
	proc := run(t, p, 1, nil)
	if proc.Stats.Cycles < 15 {
		t.Fatalf("%d cycles too fast for 30 insts at dual issue", proc.Stats.Cycles)
	}
}

func TestSimMultiProgrammedProcs(t *testing.T) {
	p := sumProgram(t)
	chip := New(DefaultOptions())
	procs := make([]*Proc, 4)
	parts, err := compose.Partition(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range procs {
		procs[i], err = chip.AddProc(parts[i], p)
		if err != nil {
			t.Fatal(err)
		}
		procs[i].Regs[1] = uint64(20 * (i + 1))
	}
	if err := chip.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	for i, pr := range procs {
		n := uint64(20 * (i + 1))
		want := n * (n - 1) / 2
		if pr.Regs[3] != want {
			t.Fatalf("proc %d: sum=%d want %d", i, pr.Regs[3], want)
		}
	}
}

func TestSimRejectsOverlappingProcs(t *testing.T) {
	chip := New(DefaultOptions())
	p := sumProgram(t)
	if _, err := chip.AddProc(compose.MustRect(0, 0, 8), p); err != nil {
		t.Fatal(err)
	}
	if _, err := chip.AddProc(compose.MustRect(0, 0, 8), p); err == nil {
		t.Fatal("overlapping core sets should be rejected")
	}
}

func TestSimICacheMissesOnLargePrograms(t *testing.T) {
	// A program with more blocks than a 1-core I-cache holds (8 blocks).
	b := prog.NewBuilder()
	const nBlocks = 24
	for i := 0; i < nBlocks; i++ {
		bb := b.Block(blockName(i))
		x := bb.Read(1)
		bb.Write(1, bb.AddI(x, int64(i)))
		if i == nBlocks-1 {
			cnt := bb.AddI(bb.Read(2), 1)
			bb.Write(2, cnt)
			bb.BranchIf(bb.OpI(isa.OpLt, cnt, 4), blockName(0), "fin")
		} else {
			bb.Branch(blockName(i + 1))
		}
	}
	b.Block("fin").Halt()
	p, err := b.Program(blockName(0))
	if err != nil {
		t.Fatal(err)
	}
	proc := run(t, p, 1, nil)
	if proc.Stats.ICacheMisses == 0 {
		t.Fatal("expected I-cache misses with 24 blocks in an 8-block cache")
	}
	// A 32-core composition holds 256 blocks: only cold misses.
	proc32 := run(t, p, 32, nil)
	if proc32.Stats.ICacheMisses > nBlocks+1 { // +1: the fin block
		t.Fatalf("32-core composition should only miss cold: %d misses", proc32.Stats.ICacheMisses)
	}
}

func blockName(i int) string { return "b" + string(rune('A'+i/10)) + string(rune('0'+i%10)) }

func TestSimRecompositionFindsOldL1Lines(t *testing.T) {
	// Run a store-heavy program on cores {0,1}, then resume (recompose) on
	// cores {2,3}: the directory must forward/invalidate the dirty lines
	// without an explicit L1 flush.
	p := memProgram(t)
	chip := New(DefaultOptions())
	pr1, err := chip.AddProc(compose.Processor{Cores: []int{0, 1}}, p)
	if err != nil {
		t.Fatal(err)
	}
	pr1.Regs[1] = 0x100000
	pr1.Regs[4] = 64
	if err := chip.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	forwardsBefore := chip.L2.Stats.Forwards + chip.L2.Stats.Invals

	pr2, err := chip.AddProcShared(compose.Processor{Cores: []int{2, 3}}, p, pr1)
	if err != nil {
		t.Fatal(err)
	}
	pr2.Regs[2] = 0
	pr2.Regs[3] = 0
	if err := chip.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if pr2.Regs[3] != pr1.Regs[3] {
		t.Fatalf("recomposed run sum %d != original %d", pr2.Regs[3], pr1.Regs[3])
	}
	if chip.L2.Stats.Forwards+chip.L2.Stats.Invals <= forwardsBefore {
		t.Fatal("recomposition should trigger directory forwards/invalidations")
	}
}
