package sim

// Stats accumulates per-processor simulation statistics.
type Stats struct {
	Cycles uint64 // cycle at which the processor halted

	BlocksFetched   uint64
	BlocksCommitted uint64
	BlocksFlushed   uint64

	InstsCommitted uint64 // useful instructions in committed blocks
	InstsFired     uint64 // all fired instructions (incl. movs/nulls, wrong path)
	FPFired        uint64 // floating-point instructions fired

	Loads  uint64
	Stores uint64

	BranchFlushes      uint64 // flushes from next-block mispredictions
	ViolationFlushes   uint64 // flushes from memory dependence violations
	LSQNACKs           uint64
	LSQOverflowFlushes uint64 // younger-block flushes to unblock the oldest
	ICacheMisses       uint64

	RegReads  uint64
	RegWrites uint64

	// IssuedByCore counts instructions issued per participating core —
	// the utilization profile of the composition.
	IssuedByCore []uint64

	// Distributed-fetch latency components (sums over committed blocks,
	// Figure 9a).
	FetchBlocks      uint64
	FetchConstSum    uint64 // prediction + I-tag + fetch initiation
	FetchHandOffSum  uint64 // control hand-off between owner cores
	FetchBcastSum    uint64 // fetch-command distribution
	FetchDispatchSum uint64 // I-cache read into the window
	FetchIStallSum   uint64 // I-cache miss stalls

	// Distributed-commit latency components (Figure 9b).
	CommitBlocks       uint64
	CommitArchSum      uint64 // architectural state update
	CommitHandshakeSum uint64 // completion/commit/ack/dealloc messaging
}

// Utilization returns each participating core's issued-instructions per
// cycle — how evenly the composition's issue capacity is used.
func (s *Stats) Utilization() []float64 {
	if s.Cycles == 0 {
		return nil
	}
	out := make([]float64, len(s.IssuedByCore))
	for i, n := range s.IssuedByCore {
		out[i] = float64(n) / float64(s.Cycles)
	}
	return out
}

// IPC returns committed useful instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.InstsCommitted) / float64(s.Cycles)
}

// FetchLatency reports the average per-block fetch-pipeline components.
func (s *Stats) FetchLatency() (constant, handOff, bcast, dispatch, istall float64) {
	if s.FetchBlocks == 0 {
		return
	}
	n := float64(s.FetchBlocks)
	return float64(s.FetchConstSum) / n, float64(s.FetchHandOffSum) / n,
		float64(s.FetchBcastSum) / n, float64(s.FetchDispatchSum) / n,
		float64(s.FetchIStallSum) / n
}

// CommitLatency reports the average per-block commit components.
func (s *Stats) CommitLatency() (arch, handshake float64) {
	if s.CommitBlocks == 0 {
		return
	}
	n := float64(s.CommitBlocks)
	return float64(s.CommitArchSum) / n, float64(s.CommitHandshakeSum) / n
}
