package sim

import (
	"testing"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// fibProgram builds a genuinely recursive fib(n) with a software stack in
// memory: each activation pushes its link register and argument, calls
// itself twice, and returns through OpRet — deep, data-dependent call
// chains that stress the distributed return-address stack (deeper than
// the 16-entry-per-core RAS, forcing underflows and repairs).
//
// Registers: r1 = stack pointer, r2 = argument n, r3 = return value,
// r4 = link register.
func fibProgram(t testing.TB) *prog.Program {
	b := prog.NewBuilder()

	// fib entry: if n < 2 return n.
	fib := b.Block("fib")
	n := fib.Read(2)
	base := fib.OpI(isa.OpLt, n, 2)
	fib.When(base).Write(3, fib.Mov(n))
	g := fib.When(base).GuardValue()
	fib.BranchIf(g, "fib_ret_base", "fib_push")

	retBase := b.Block("fib_ret_base")
	retBase.Ret(retBase.Read(4))

	// Push frame {link, n}, call fib(n-1).
	push := b.Block("fib_push")
	sp := push.Read(1)
	push.Store(sp, push.Read(4), 0, 8)
	push.Store(sp, push.Read(2), 8, 8)
	push.Write(1, push.AddI(sp, 16))
	push.Write(2, push.AddI(push.Read(2), -1))
	push.Write(4, push.LabelAddr("fib_mid"))
	push.Call("fib")

	// After fib(n-1): stash result, call fib(n-2).
	mid := b.Block("fib_mid")
	spm := mid.Read(1)
	nOrig := mid.Load(spm, -8, 8, false)
	mid.Store(spm, mid.Read(3), -8, 8) // overwrite saved n with fib(n-1)
	mid.Write(2, mid.AddI(nOrig, -2))
	mid.Write(4, mid.LabelAddr("fib_join"))
	mid.Call("fib")

	// Join: pop frame, return fib(n-1) + fib(n-2).
	join := b.Block("fib_join")
	spj := join.Read(1)
	f1 := join.Load(spj, -8, 8, false)
	link := join.Load(spj, -16, 8, false)
	join.Write(3, join.Add(f1, join.Read(3)))
	join.Write(1, join.AddI(spj, -16))
	join.Ret(link)

	main := b.Block("main")
	main.Write(4, main.LabelAddr("fin"))
	main.Branch("fib")
	b.Block("fin").Halt()

	p, err := b.Program("main")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRecursiveFibAllCompositions(t *testing.T) {
	p := fibProgram(t)
	const arg = 13 // 753 activations, depth 13
	ref := exec.NewMachine(p)
	ref.Regs[1] = 0x800000
	ref.Regs[2] = arg
	st, err := ref.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Regs[3] != 233 { // fib(13)
		t.Fatalf("functional fib(13) = %d", ref.Regs[3])
	}
	t.Logf("functional: %d blocks", st.Blocks)

	for _, nCores := range []int{1, 2, 8, 32} {
		chip := New(DefaultOptions())
		proc, err := chip.AddProc(compose.MustRect(0, 0, nCores), p)
		if err != nil {
			t.Fatal(err)
		}
		proc.Regs[1] = 0x800000
		proc.Regs[2] = arg
		if err := chip.Run(100_000_000); err != nil {
			t.Fatalf("n=%d: %v", nCores, err)
		}
		if proc.Regs[3] != ref.Regs[3] {
			t.Fatalf("n=%d: fib = %d, want %d", nCores, proc.Regs[3], ref.Regs[3])
		}
		if nCores > 1 && proc.Pred.Stats.RASPops == 0 {
			t.Errorf("n=%d: recursion without RAS activity", nCores)
		}
	}
}

func TestRecursionDeeperThanRAS(t *testing.T) {
	// A single-core composition has only a 16-entry logical RAS; fib(16)
	// recurses to depth 16 with 3193 activations, overflowing and
	// underflowing the stack repeatedly.  The RAS is only a predictor:
	// the architectural link values must keep the run correct.
	p := fibProgram(t)
	chip := New(DefaultOptions())
	proc, err := chip.AddProc(compose.MustRect(0, 0, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 0x800000
	proc.Regs[2] = 16
	if err := chip.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if proc.Regs[3] != 987 { // fib(16)
		t.Fatalf("fib(16) = %d", proc.Regs[3])
	}
}
