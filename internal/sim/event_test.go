package sim

import "testing"

// drainCal pops every event and returns the (at, seq) sequence.
func drainCal(t *testing.T, q *calQueue) [][2]uint64 {
	t.Helper()
	var got [][2]uint64
	for !q.empty() {
		e := q.popMin()
		got = append(got, [2]uint64{e.at, e.seq})
	}
	return got
}

func expectOrder(t *testing.T, got, want [][2]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d: got %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d = (at %d, seq %d), want (at %d, seq %d)",
				i, got[i][0], got[i][1], want[i][0], want[i][1])
		}
	}
}

// TestCalQueueBucketWraparound schedules at now + calBuckets ± 1, the
// exact boundary where an event either shares the calendar window with
// the cursor (and its bucket index wraps below the cursor's) or must
// wait in the overflow heap.  An off-by-one in either direction would
// file two cycles into one bucket and interleave their events.
func TestCalQueueBucketWraparound(t *testing.T) {
	var q calQueue
	// Move the cursor off zero so in-window indices actually wrap.
	q.push(event{at: 5, seq: 1})
	if e := q.popMin(); e.at != 5 || e.seq != 1 {
		t.Fatalf("warm-up pop = (at %d, seq %d), want (5, 1)", e.at, e.seq)
	}
	now := uint64(5) // q.base after the pop

	atIn := now + calBuckets - 1 // last in-window cycle; index wraps to 4
	atEdge := now + calBuckets   // first cycle that must overflow
	atPast := now + calBuckets + 1
	q.push(event{at: atEdge, seq: 2})
	q.push(event{at: atPast, seq: 3})
	q.push(event{at: atIn, seq: 4})
	if len(q.overflow) != 2 {
		t.Fatalf("overflow holds %d events, want 2 (at now+calBuckets and beyond)", len(q.overflow))
	}
	if q.nbucket != 1 {
		t.Fatalf("buckets hold %d events, want 1 (at now+calBuckets-1)", q.nbucket)
	}
	// nextAt jumps the idle gap without disturbing order.
	if at, ok := q.nextAt(); !ok || at != atIn {
		t.Fatalf("nextAt = (%d, %t), want (%d, true)", at, ok, atIn)
	}
	expectOrder(t, drainCal(t, &q), [][2]uint64{{atIn, 4}, {atEdge, 2}, {atPast, 3}})
}

// TestCalQueueOverflowMigrationKeepsSeqOrder pins the ordering argument
// in popMin's doc comment: overflow events for a cycle T migrate into
// T's bucket before any event that could push more work for T executes,
// so a bucket's append order is seq order even when its events arrive
// via both paths.
func TestCalQueueOverflowMigrationKeepsSeqOrder(t *testing.T) {
	var q calQueue
	far := uint64(calBuckets + 500) // out of window from base 0
	q.push(event{at: far, seq: 1})  // overflow
	q.push(event{at: 500, seq: 2})  // bucket
	if e := q.popMin(); e.at != 500 || e.seq != 2 {
		t.Fatalf("first pop = (at %d, seq %d), want (500, 2)", e.at, e.seq)
	}
	// The cursor passed far-calBuckets during that pop, so seq 1 has
	// already migrated; a fresh push for the same cycle must land after
	// it despite going straight to the bucket.
	q.push(event{at: far, seq: 3})
	expectOrder(t, drainCal(t, &q), [][2]uint64{{far, 1}, {far, 3}})
}

// TestCalQueueRewindAfterIdleJump covers the one legal way a push can
// land behind the cursor: nextAt jumped an idle gap to a far-future
// cycle, then a window boundary composed a processor that schedules
// earlier.  The push must rewind the cursor and re-file resident events
// so no two cycles share a bucket.
func TestCalQueueRewindAfterIdleJump(t *testing.T) {
	var q calQueue
	far := uint64(3 * calBuckets)
	q.push(event{at: far, seq: 1})
	if at, ok := q.nextAt(); !ok || at != far {
		t.Fatalf("nextAt = (%d, %t), want (%d, true)", at, ok, far)
	}
	if q.base != far {
		t.Fatalf("cursor at %d after idle-gap peek, want %d", q.base, far)
	}
	q.push(event{at: 100, seq: 2}) // behind the cursor: rewinds
	if q.base > 100 {
		t.Fatalf("cursor at %d after rewind, want <= 100", q.base)
	}
	expectOrder(t, drainCal(t, &q), [][2]uint64{{100, 2}, {far, 1}})
}
