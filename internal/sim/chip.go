package sim

import (
	"container/heap"
	"fmt"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/mem"
	"github.com/clp-sim/tflex/internal/noc"
	"github.com/clp-sim/tflex/internal/prog"
)

// Chip is the simulated 32-core CLP with its networks, private L1 D-caches
// and the shared L2/DRAM hierarchy.  One or more logical processors
// (composed from disjoint core sets) run concurrently on it.
type Chip struct {
	Opts Options

	Opn  *noc.Mesh // operand network
	Ctl  *noc.Mesh // control network (fetch/commit protocols)
	L2   *mem.L2
	DRAM *mem.DRAM

	l1d     [compose.NumCores]*mem.Cache
	l1dPort [compose.NumCores]port
	issue   [compose.NumCores]*issueRing

	Procs []*Proc

	events   eventQueue
	eventSeq uint64
	now      uint64
	err      error

	onHalt func(*Proc)
}

// OnProcHalt installs a hook invoked (inside the event loop) whenever a
// processor halts.  The hook may add new processors to the chip — the
// mechanism run-time schedulers use to launch queued jobs on freed cores.
func (c *Chip) OnProcHalt(fn func(*Proc)) { c.onHalt = fn }

// New builds a chip with the given options.
func New(opts Options) *Chip {
	p := opts.Params
	c := &Chip{Opts: opts}
	c.Opn = noc.NewMesh(compose.ArrayW, compose.ArrayH, p.OperandBW)
	c.Ctl = noc.NewMesh(compose.ArrayW, compose.ArrayH, p.ControlBW)
	c.DRAM = mem.NewDRAM(uint64(p.DRAMCycles), 2, 4)
	c.L2 = mem.NewL2(p.L2Bytes, p.L2Assoc, p.LineBytes, 32, uint64(p.L2HitMin), uint64(p.L2HitMax), c.DRAM)
	c.L2.SetDirectory(c)
	for i := range c.l1d {
		c.l1d[i] = mem.NewCache(p.L1DBytes, p.L1DAssoc, p.LineBytes)
		c.issue[i] = newIssueRing(p.IssueTotal, p.IssueFP)
	}
	heap.Init(&c.events)
	return c
}

// Now returns the current simulation cycle.
func (c *Chip) Now() uint64 { return c.now }

func (c *Chip) schedule(at uint64, fn func()) {
	if at < c.now {
		at = c.now
	}
	c.eventSeq++
	c.events.push(event{at: at, seq: c.eventSeq, fn: fn})
}

func (c *Chip) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("sim: "+format, args...)
	}
}

// InvalidateL1 implements mem.L1Directory.
func (c *Chip) InvalidateL1(core int, addr uint64) (found, dirty bool) {
	return c.l1d[core].Invalidate(addr)
}

// DowngradeL1 implements mem.L1Directory.
func (c *Chip) DowngradeL1(core int, addr uint64) bool {
	if l := c.l1d[core].Probe(addr); l != nil && l.Valid {
		l.Dirty = false
		return true
	}
	return false
}

// L1DStats sums the D-cache statistics across all cores.
func (c *Chip) L1DStats() mem.CacheStats {
	var s mem.CacheStats
	for i := range c.l1d {
		cs := c.l1d[i].Stats
		s.Accesses += cs.Accesses
		s.Misses += cs.Misses
		s.Evictions += cs.Evictions
		s.DirtyEvicts += cs.DirtyEvicts
		s.Invalidates += cs.Invalidates
	}
	return s
}

// AddProc composes a logical processor from the given cores and loads a
// program onto it with a fresh architectural memory.
func (c *Chip) AddProc(cores compose.Processor, program *prog.Program) (*Proc, error) {
	if err := cores.Validate(); err != nil {
		return nil, err
	}
	for _, p := range c.Procs {
		for _, pc := range p.cores {
			for _, nc := range cores.Cores {
				if pc == nc && !p.halted {
					return nil, fmt.Errorf("sim: core %d already in use", pc)
				}
			}
		}
	}
	pr := newProc(c, len(c.Procs), cores.Cores, program, exec.NewPageMem())
	c.Procs = append(c.Procs, pr)
	pr.start()
	return pr, nil
}

// AddProcShared composes a logical processor that shares the architectural
// memory (and physical address space) of a finished processor — the
// recomposition scenario: the same thread resumed on a different core set,
// finding its working set in the old cores' L1s via the directory.
func (c *Chip) AddProcShared(cores compose.Processor, program *prog.Program, from *Proc) (*Proc, error) {
	if err := cores.Validate(); err != nil {
		return nil, err
	}
	pr := newProc(c, from.id, cores.Cores, program, from.Mem)
	pr.Regs = from.Regs
	c.Procs = append(c.Procs, pr)
	pr.start()
	return pr, nil
}

// Run executes events until every processor halts, the cycle limit is
// exceeded, or the model faults.
func (c *Chip) Run(maxCycles uint64) error {
	for !c.events.empty() {
		if c.err != nil {
			return c.err
		}
		e := c.events.popMin()
		if e.at > maxCycles {
			return fmt.Errorf("sim: exceeded %d cycles (running: %s)", maxCycles, c.runningProcs())
		}
		c.now = e.at
		e.fn()
	}
	if c.err != nil {
		return c.err
	}
	for _, p := range c.Procs {
		if !p.halted {
			return fmt.Errorf("sim: deadlock: processor %d stalled at cycle %d (%s)", p.id, c.now, p.describeStall())
		}
	}
	return nil
}

func (c *Chip) runningProcs() string {
	s := ""
	for _, p := range c.Procs {
		if !p.halted {
			if s != "" {
				s += ","
			}
			s += fmt.Sprintf("proc%d", p.id)
		}
	}
	if s == "" {
		s = "none"
	}
	return s
}
