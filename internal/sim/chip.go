package sim

import (
	"container/heap"
	"fmt"
	"io"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/critpath"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/flight"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/mem"
	"github.com/clp-sim/tflex/internal/noc"
	"github.com/clp-sim/tflex/internal/prog"
	"github.com/clp-sim/tflex/internal/telemetry"
)

// Chip is the simulated 32-core CLP with its networks, private L1 D-caches
// and the shared L2/DRAM hierarchy.  One or more logical processors
// (composed from disjoint core sets) run concurrently on it.
type Chip struct {
	Opts Options

	Opn  *noc.Mesh // operand network
	Ctl  *noc.Mesh // control network (fetch/commit protocols)
	L2   *mem.L2   //lint:owner shared
	DRAM *mem.DRAM //lint:owner shared

	l1d     [compose.NumCores]*mem.Cache
	l1dPort [compose.NumCores]port
	issue   [compose.NumCores]*issueRing

	Procs []*Proc

	// The optimized engine's event domains (domain.go): each owns a
	// calendar queue and sequence space.  The reference engine keeps the
	// original single container/heap queue with a global sequence.
	domains      []*domain
	nextDomainID int
	coreDom      [compose.NumCores]*domain // owning domain per physical core
	pendingProcs []*Proc                   //lint:owner shared (composed, awaiting quiescent placement)
	curDom       *domain                   //lint:owner domain-link (domain whose event is executing)
	par          *parRun                   // non-nil while the worker pool runs
	deferSeq     uint64                    //lint:owner shared (global deferred-invalidation sequence)

	ref      eventQueue // reference queue (Options.Reference)
	eventSeq uint64
	now      uint64
	err      error

	onHalt func(*Proc) //lint:owner shared

	// Telemetry (see telemetry.go): all nil/disarmed by default.  The
	// event loop pays one uint64 compare per event against sampleAt
	// (+inf when no sampler is armed); everything else is reached only
	// through nil-safe calls.
	tel      *telemetry.Registry
	trace    *telemetry.Trace
	sampler  *telemetry.Sampler
	sampleAt uint64

	// Critical-path attribution (see critpath.go): off by default.
	// critEnabled arms per-block recording (IFBs get a pooled record on
	// reset); critSink optionally mirrors each committed breakdown into
	// a concurrency-safe rolling aggregate for live observability.
	critEnabled bool
	critSink    *critpath.Rolling

	// Flight recorder (see flight.go): nil/unset until EnableFlight.
	// Domains carry the ring pointers; disabled cost is nil checks only.
	flightRec  *flight.Recorder
	flightSink io.Writer
}

// OnProcHalt installs a hook invoked (inside the event loop) whenever a
// processor halts.  The hook may add new processors to the chip — the
// mechanism run-time schedulers use to launch queued jobs on freed cores.
func (c *Chip) OnProcHalt(fn func(*Proc)) { c.onHalt = fn }

// New builds a chip with the given options.
func New(opts Options) *Chip {
	p := opts.Params
	c := &Chip{Opts: opts, sampleAt: ^uint64(0)}
	c.Opn = noc.NewMesh(compose.ArrayW, compose.ArrayH, p.OperandBW)
	c.Ctl = noc.NewMesh(compose.ArrayW, compose.ArrayH, p.ControlBW)
	c.DRAM = mem.NewDRAM(uint64(p.DRAMCycles), 2, 4)
	c.L2 = mem.NewL2(p.L2Bytes, p.L2Assoc, p.LineBytes, 32, uint64(p.L2HitMin), uint64(p.L2HitMax), c.DRAM)
	c.L2.SetDirectory(c)
	// L1 D-caches and issue rings are created on first use: a job
	// composing k of the 32 cores pays setup for k, not 32.
	if opts.Reference {
		heap.Init(&c.ref)
	}
	return c
}

// Now returns the current simulation cycle.
func (c *Chip) Now() uint64 { return c.now }

// schedule enqueues an arbitrary callback (the cold control paths).
func (c *Chip) schedule(at uint64, fn func()) {
	c.scheduleEv(at, event{kind: evFunc, fn: fn})
}

// scheduleEv enqueues a typed event, stamping time (clamped to now) and
// the deterministic insertion sequence.  Optimized-mode events are filed
// in the executing domain; Proc.scheduleEv routes there directly.
func (c *Chip) scheduleEv(at uint64, e event) {
	if c.curDom != nil {
		c.curDom.scheduleEv(at, e)
		return
	}
	if at < c.now {
		at = c.now
	}
	c.eventSeq++
	e.at = at
	e.seq = c.eventSeq
	c.ref.push(e)
}

//lint:hot cold fault path, runs at most once per simulation
func (c *Chip) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("sim: "+format, args...)
	}
}

// l1dAt returns core's private D-cache, creating it on first use.
//
//lint:hot cold lazy one-time construction of a core's L1 and telemetry names
func (c *Chip) l1dAt(core int) *mem.Cache {
	cache := c.l1d[core]
	if cache == nil {
		p := c.Opts.Params
		cache = mem.NewCache(p.L1DBytes, p.L1DAssoc, p.LineBytes)
		c.l1d[core] = cache
		if c.tel != nil {
			cache.Register(c.tel, fmt.Sprintf("core%d.l1d", core))
		}
	}
	return cache
}

// issueAt returns core's issue ring, creating it on first use.
//
//lint:hot cold lazy one-time construction of a core's issue ring
func (c *Chip) issueAt(core int) *issueRing {
	r := c.issue[core]
	if r == nil {
		r = newIssueRing(c.Opts.Params.IssueTotal, c.Opts.Params.IssueFP)
		c.issue[core] = r
	}
	return r
}

// InvalidateL1 implements mem.L1Directory.  An invalidation crossing
// domain boundaries (only the L2 eviction path does: address-space
// tagging keeps all same-line traffic intra-domain) is deferred into the
// target domain's inbox and applied at the next window boundary — in
// every optimized mode, so ParallelDomains never changes results.  The
// found/dirty feedback is reported as a miss, exactly what the eviction
// path does with it (mem/l2.go fill discards both).
func (c *Chip) InvalidateL1(core int, addr uint64) (found, dirty bool) {
	if tgt := c.coreDom[core]; tgt != nil && tgt != c.curDom {
		c.deferSeq++
		tgt.inbox = append(tgt.inbox, inval{seq: c.deferSeq, core: core, addr: addr})
		return false, false
	}
	if c.l1d[core] == nil {
		return false, false
	}
	return c.l1d[core].Invalidate(addr)
}

// DowngradeL1 implements mem.L1Directory.
func (c *Chip) DowngradeL1(core int, addr uint64) bool {
	if c.l1d[core] == nil {
		return false
	}
	if l := c.l1d[core].Probe(addr); l != nil && l.Valid {
		l.Dirty = false
		return true
	}
	return false
}

// L1DStats sums the D-cache statistics across all cores.
func (c *Chip) L1DStats() mem.CacheStats {
	var s mem.CacheStats
	for i := range c.l1d {
		if c.l1d[i] == nil {
			continue
		}
		cs := c.l1d[i].Stats
		s.Accesses += cs.Accesses
		s.Misses += cs.Misses
		s.Evictions += cs.Evictions
		s.DirtyEvicts += cs.DirtyEvicts
		s.Invalidates += cs.Invalidates
	}
	return s
}

// AddProc composes a logical processor from the given cores and loads a
// program onto it with a fresh architectural memory.
func (c *Chip) AddProc(cores compose.Processor, program *prog.Program) (*Proc, error) {
	if err := cores.Validate(); err != nil {
		return nil, err
	}
	for _, p := range c.Procs {
		for _, pc := range p.cores {
			for _, nc := range cores.Cores {
				if pc == nc && !p.halted {
					return nil, fmt.Errorf("sim: core %d already in use", pc)
				}
			}
		}
	}
	pr := newProc(c, len(c.Procs), cores.Cores, program, exec.NewPageMem())
	c.Procs = append(c.Procs, pr)
	c.attachProcTelemetry(pr)
	c.launch(pr)
	return pr, nil
}

// launch readies a composed processor.  Under Reference it starts
// fetching immediately in the global queue; the optimized engine defers
// it to the next quiescent point (Run entry, or the next window boundary
// when composed mid-run by an OnProcHalt scheduler), where domains are
// re-formed around its footprint.
func (c *Chip) launch(pr *Proc) {
	pr.prepareStart()
	if c.Opts.Reference {
		pr.maybeFetch()
		return
	}
	c.pendingProcs = append(c.pendingProcs, pr)
}

// AddProcShared composes a logical processor that shares the architectural
// memory (and physical address space) of a finished processor — the
// recomposition scenario: the same thread resumed on a different core set,
// finding its working set in the old cores' L1s via the directory.
func (c *Chip) AddProcShared(cores compose.Processor, program *prog.Program, from *Proc) (*Proc, error) {
	if err := cores.Validate(); err != nil {
		return nil, err
	}
	pr := newProc(c, from.id, cores.Cores, program, from.Mem)
	pr.Regs = from.Regs
	c.Procs = append(c.Procs, pr)
	c.attachProcTelemetry(pr)
	c.launch(pr)
	return pr, nil
}

// Run executes events until every processor halts, the cycle limit is
// exceeded, or the model faults.  The optimized engine runs the
// partitioned domain loop (domain.go); Options.Reference runs the
// original single-queue loop in run.  With the flight recorder armed
// (EnableFlight) and a sink set (SetFlightSink), a panicking or
// failing run writes a post-mortem text dump of every ring on the way
// out — the panic is re-raised unchanged.  The recover wrapper covers
// the engine goroutine; a panic on a parallel worker goroutine is
// fatal before any recover can run, Go offers no cross-goroutine
// recovery.
func (c *Chip) Run(maxCycles uint64) error {
	if c.flightRec == nil {
		return c.run(maxCycles)
	}
	defer func() {
		if r := recover(); r != nil {
			c.flightPostMortem(fmt.Sprintf("panic: %v", r))
			panic(r)
		}
	}()
	err := c.run(maxCycles)
	if err != nil {
		c.flightPostMortem(err.Error())
	}
	return err
}

func (c *Chip) run(maxCycles uint64) error {
	if !c.Opts.Reference {
		return c.runOptimized(maxCycles)
	}
	for {
		if c.err != nil {
			return c.err
		}
		if c.ref.empty() {
			break
		}
		e := c.ref.popMin()
		if e.at > maxCycles {
			return c.exceededErr(maxCycles)
		}
		c.now = e.at
		if c.now >= c.sampleAt {
			c.takeSamples()
		}
		c.dispatch(&e, c.now)
	}
	if c.err != nil {
		return c.err
	}
	for _, p := range c.Procs {
		if !p.halted {
			return fmt.Errorf("sim: deadlock: processor %d stalled at cycle %d (%s)", p.id, c.now, p.describeStall())
		}
	}
	if c.critEnabled {
		c.releaseCritRecords()
	}
	return nil
}

// dispatch executes one event at cycle now (the event's own time —
// passed explicitly because during parallel windows the chip-wide clock
// is stale and each domain carries its own).  Events carrying a block
// reference are dropped when the block's generation moved on — the block
// committed or was flushed (and possibly recycled) after the event was
// scheduled.
//
//lint:hot root
func (c *Chip) dispatch(e *event, now uint64) {
	if e.b != nil && e.b.gen != e.gen {
		return
	}
	switch e.kind {
	case evFunc:
		e.fn()
	case evDispatch:
		b := e.b
		if b.dead {
			return
		}
		b.insts[e.idx].avail = true
		b.p.maybeIssue(b, int(e.idx))
	case evRegRead:
		b := e.b
		if b.dead {
			return
		}
		b.p.resolveRead(b, int(e.idx), now)
	case evDeliver:
		e.b.p.deliver(e.b, e.tgt, e.val, false, int(e.from), now)
	case evDeadToken:
		e.b.p.deliver(e.b, e.tgt, 0, true, int(e.from), now)
	case evLoadBank:
		e.b.p.loadAtBank(e.b, int(e.idx), e.addr, now)
	case evStoreBank:
		e.b.p.storeAtBank(e.b, int(e.idx), e.addr, e.val, now)
	case evNullSlot:
		b := e.b
		if b.dead {
			return
		}
		b.p.resolveStoreSlot(b, int8(e.idx), now, false)
	case evBranch:
		out := exec.BranchOut{Op: isa.Opcode(e.idx), Exit: e.from, Target: e.val}
		e.b.p.branchResolved(e.b, out, now)
	case evDealloc:
		b := e.b
		b.deallocDone = true
		b.deallocAt = e.val
		b.p.drainCommitted()
	case evFetch:
		p := e.proc
		if e.val != p.fetch.epoch || p.halted {
			return
		}
		p.fetch.scheduled = false
		if !p.fetch.valid || len(p.window) >= p.maxBlocks {
			return
		}
		p.fetchBlock()
	}
}

//lint:hot cold error-message helper on the fault path
func (c *Chip) runningProcs() string {
	s := ""
	for _, p := range c.Procs {
		if !p.halted {
			if s != "" {
				s += ","
			}
			s += fmt.Sprintf("proc%d", p.id)
		}
	}
	if s == "" {
		s = "none"
	}
	return s
}
