package sim

import (
	"sync"

	"github.com/clp-sim/tflex/internal/flight"
)

// The parallel window engine: one persistent worker goroutine per
// domain, a monitor (mutex + condvar) coordinating lockstep windows,
// and a quiescence arbiter serializing shared-resource access.
//
// Equivalence to runMerged (the ordering contract):
//
//   - Window schedule: the leader (last worker to quiesce) runs the
//     identical boundary/limit computation as runMerged, so both modes
//     see the same window sequence, the same boundary work and the same
//     deferred-invalidation delivery cycles.
//   - Shared-state order: all shared L2/DRAM-side accesses park on the
//     arbiter, which grants strictly in (event cycle, domain ID) order
//     and only when every domain is quiescent (parked or finished with
//     the window).  A domain's park keys never decrease within a
//     window, so once a grant key is minimal it stays minimal — grants
//     replay exactly the order the merged loop executes those events
//     in.  Everything not behind the arbiter touches only domain-local
//     state, where relative order across domains is unobservable.
//   - Failure order: each domain stops at its first fault; the boundary
//     promotes the globally first fault (min event cycle, domain order)
//     — the same fault the merged loop stops at, because the merged
//     loop would reach that event before any later-keyed one.
//
// Wall-clock caveat only: with GOMAXPROCS=1 or ParallelDomains=1 the
// pool degenerates to serial execution with barrier overhead; results
// are bit-identical regardless.

// parRun is the monitor for one parallel Run.
type parRun struct {
	c  *Chip
	mu sync.Mutex
	// cond signals every state change: window opens, grants, slot
	// frees, finish.  Broadcast keeps the protocol simple; the waiter
	// counts are tiny (one per domain).
	cond *sync.Cond
	wg   sync.WaitGroup

	maxCycles uint64

	n       int    // live workers (== len(c.domains))
	running int    // workers executing window events right now
	arrived int    // workers done with the current window
	slots   int    // ParallelDomains cap on concurrent execution
	gen     uint64 // window generation; d.gen != gen means "not run yet"
	limit   uint64 // exclusive event-time limit of the current window

	parked    []*domain // quiescent shared-access requests, min-heap by key
	servicing *domain   // domain currently granted shared access
	finished  bool
}

// runParallel drives the worker pool to completion.  The caller's
// goroutine only assembles the pool and waits; all window scheduling is
// done by whichever worker quiesces last.
func (c *Chip) runParallel(maxCycles uint64) {
	pr := &parRun{c: c, maxCycles: maxCycles, slots: c.Opts.ParallelDomains}
	pr.cond = sync.NewCond(&pr.mu)
	c.par = pr
	pr.mu.Lock()
	for _, d := range c.domains {
		pr.bindWorker(d)
	}
	pr.openWindow()
	for !pr.finished {
		pr.cond.Wait()
	}
	pr.mu.Unlock()
	pr.wg.Wait()
	c.par = nil
	// Rebind ports to the meshes' own statistics and drain whatever the
	// error path left in the shadows (a no-op after a clean finish).
	c.drainShadows()
	for _, d := range c.domains {
		d.opn = c.Opn.NewPort(nil)
		d.ctl = c.Ctl.NewPort(nil)
	}
}

// bindWorker points a domain's ports at its shadow statistics and
// starts its worker.  Monitor held.
//
//lint:hot cold worker spawn at window-regroup time, not per-cycle work
func (pr *parRun) bindWorker(d *domain) {
	c := pr.c
	d.opn = c.Opn.NewPort(&d.opnStats)
	d.ctl = c.Ctl.NewPort(&d.ctlStats)
	d.gen = pr.gen
	d.spawned = true
	pr.n++
	pr.wg.Add(1)
	go pr.worker(d)
}

// worker runs one domain: execute each window when a slot frees, then
// quiesce and let tryAdvance decide what happens next.
func (pr *parRun) worker(d *domain) {
	defer pr.wg.Done()
	pr.mu.Lock()
	for {
		if pr.finished || d.retired {
			pr.mu.Unlock()
			return
		}
		if d.gen != pr.gen && pr.running < pr.slots {
			d.gen = pr.gen
			limit := pr.limit
			pr.running++
			pr.mu.Unlock()
			d.runWindow(limit)
			d.flight.Add(flight.KBarrierArrive, d.now, -1, -1, limit, 0)
			pr.mu.Lock()
			pr.running--
			pr.arrived++
			pr.cond.Broadcast() // a slot freed
			pr.tryAdvance()
			continue
		}
		pr.cond.Wait()
	}
}

// enter parks the calling domain until the arbiter grants it exclusive
// shared-resource access.  Called (through Proc.enterShared) from deep
// inside event dispatch, so the park key (d.now, d.id) is the executing
// event's key.  The handoff below IS the serialization mechanism the
// ownership rules assume, so domainguard does not descend into it.
//
//lint:owner quiescent
func (pr *parRun) enter(d *domain) {
	pr.mu.Lock()
	pr.running--
	d.granted = false
	pr.pushParked(d)
	pr.cond.Broadcast() // a slot freed
	pr.tryAdvance()
	for !d.granted {
		pr.cond.Wait()
	}
	pr.mu.Unlock()
	// The worker owns d again: count the grant and record it.  The grant
	// sequence replays the merged order, so the counter is deterministic.
	d.sharedGrants++
	d.flight.Add(flight.KSharedEnter, d.now, -1, -1, d.sharedGrants, 0)
}

// exit releases the arbiter after a shared section; the domain resumes
// its window.
//
//lint:owner quiescent
func (pr *parRun) exit(d *domain) {
	d.flight.Add(flight.KSharedExit, d.now, -1, -1, d.sharedGrants, 0)
	pr.mu.Lock()
	pr.servicing = nil
	pr.c.curDom = nil
	pr.running++
	pr.mu.Unlock()
}

// tryAdvance fires when a worker quiesces: once every live worker is
// parked or arrived it either grants the minimum-key parked request or,
// with nothing parked, runs the window boundary and opens the next
// window.  Monitor held.
func (pr *parRun) tryAdvance() {
	if pr.servicing != nil || pr.running > 0 {
		return
	}
	if pr.arrived+len(pr.parked) < pr.n {
		return // someone still owes this window work
	}
	if len(pr.parked) > 0 {
		d := pr.popParked()
		// Every other parked domain observes this grant while waiting —
		// the shared-section contention signal.  Deterministic: grants
		// happen only at full quiescence, where the parked set is a
		// function of the merged event order.  Writing under the monitor
		// is safe; the owners are blocked in enter's cond.Wait.
		for _, o := range pr.parked {
			o.sharedWait++
		}
		pr.servicing = d
		pr.c.curDom = d
		if d.now > pr.c.now {
			pr.c.now = d.now
		}
		d.granted = true
		pr.cond.Broadcast()
		return
	}
	pr.openWindow()
}

// openWindow runs the boundary and opens the next window, or finishes
// the run.  Monitor held, every worker quiescent — the same code path
// runMerged runs between windows.
func (pr *parRun) openWindow() {
	c := pr.c
	c.syncNow()
	c.collectErrors()
	if c.err != nil {
		pr.finish()
		return
	}
	if pr.gen > 0 { // a window just completed
		c.windowBoundary(pr.limit)
		for _, d := range c.domains {
			if !d.spawned {
				pr.bindWorker(d)
			}
		}
		pr.n = len(c.domains) // merged-away domains retire
	}
	m, ok := c.minNextAt()
	if !ok {
		c.takeBoundarySamples(c.now)
		pr.finish()
		return
	}
	c.takeBoundarySamples(m)
	if m > pr.maxCycles {
		c.err = c.exceededErr(pr.maxCycles)
		pr.finish()
		return
	}
	pr.limit = c.windowLimitFor(m, pr.maxCycles)
	pr.gen++
	pr.arrived = 0
	pr.cond.Broadcast()
}

func (pr *parRun) finish() {
	pr.finished = true
	pr.cond.Broadcast()
}

// pushParked files a quiescent request on the (now, id) min-heap.
func (pr *parRun) pushParked(d *domain) {
	pr.parked = append(pr.parked, d)
	h := pr.parked
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !parkedLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (pr *parRun) popParked() *domain {
	h := pr.parked
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	pr.parked = h[:n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && parkedLess(h[l], h[s]) {
			s = l
		}
		if r < n && parkedLess(h[r], h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return top
}

func parkedLess(a, b *domain) bool {
	if a.now != b.now {
		return a.now < b.now
	}
	return a.id < b.id
}
