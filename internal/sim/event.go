package sim

import (
	"container/heap"

	"github.com/clp-sim/tflex/internal/isa"
)

// The event layer.  Every simulator action is an event executed in
// (cycle, insertion-order) order.  The hot paths use *typed* events — a
// small tagged union dispatched by the chip — so scheduling one costs no
// closure or interface boxing; arbitrary callbacks remain available via
// evFunc for the cold control paths.
//
// Two interchangeable queues implement the same ordering contract:
//
//   - calQueue (default): a bucketed calendar queue.  Events within the
//     lookahead window land in a per-cycle bucket (append = FIFO = seq
//     order); far-future events wait in a small overflow heap and migrate
//     into buckets before their cycle is processed.  Push and pop are
//     allocation-free in steady state.
//   - eventQueue (Options.Reference): the original container/heap binary
//     heap, kept as the differential-testing slow path.  It boxes every
//     event through `any`, which is exactly the overhead the calendar
//     queue removes.
//
// Both orders are (at, seq), so the two queues produce byte-identical
// simulations.

// evKind tags the typed event union.
type evKind uint8

const (
	evFunc      evKind = iota // fn()
	evDispatch                // b, idx: instruction slot arrives in the window
	evRegRead                 // b, idx: read slot dispatched at its register bank
	evDeliver                 // b, tgt, val, from: operand/write arrival
	evDeadToken               // b, tgt, from: dead-token arrival
	evLoadBank                // b, idx, addr: load address at its D-bank
	evStoreBank               // b, idx, addr, val: store address+data at its D-bank
	evNullSlot                // b, idx (LSID): store slot nulled
	evBranch                  // b, idx (opcode), from (exit), val (target): branch out
	evDealloc                 // b, val (dealloc cycle): commit deallocation done
	evFetch                   // proc, val (epoch): fetch-engine callback
)

// event is one scheduled simulator action.
type event struct {
	at  uint64
	seq uint64 // insertion order: deterministic tie-break

	fn   func() // evFunc only
	b    *IFB
	proc *Proc
	val  uint64
	addr uint64
	gen  uint32 // IFB generation at schedule time; stale events are dropped
	idx  int32
	tgt  isa.Target
	from uint8
	kind evKind
}

// eventQueue is the reference binary-heap queue (container/heap).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)  { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)    { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any      { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q *eventQueue) empty() bool   { return len(*q) == 0 }
func (q *eventQueue) push(e event)  { heap.Push(q, e) }
func (q *eventQueue) popMin() event { return heap.Pop(q).(event) }

// Calendar-queue geometry: one bucket per cycle over a lookahead window.
// The window comfortably covers every modeled latency (NoC reservations,
// DRAM at 150 cycles, commit drains); rarer far-future events overflow to
// a heap and migrate in before their cycle is reached.
const (
	calBuckets = 1 << 10
	calMask    = calBuckets - 1

	// First touch of a bucket allocates this capacity up front: one
	// allocation per bucket per chip instead of a growth chain.
	calBucketCap = 8
)

// calQueue is the default bucketed calendar queue.
type calQueue struct {
	base     uint64 // cycle the cursor bucket corresponds to
	nbucket  int    // events resident in buckets
	buckets  [calBuckets][]event
	heads    [calBuckets]int32
	overflow minEvHeap // events at or beyond base+calBuckets
}

func (q *calQueue) empty() bool { return q.nbucket == 0 && len(q.overflow) == 0 }

// push files an event.  Schedule times are clamped to the domain's now,
// which the cursor normally never passes; the one exception is a cursor
// that jumped ahead over an idle gap (nextAt) before new work arrived
// from a window boundary, which rewinds first.
func (q *calQueue) push(e event) {
	if e.at < q.base {
		q.rewind(e.at)
	}
	if e.at < q.base+calBuckets {
		i := e.at & calMask
		bkt := q.buckets[i]
		if cap(bkt) == 0 {
			bkt = make([]event, 0, calBucketCap)
		}
		q.buckets[i] = append(bkt, e)
		q.nbucket++
	} else {
		q.overflow.push(e)
	}
}

// popMin removes and returns the earliest event in (at, seq) order.
//
// Ordering argument: a bucket only ever holds events for one cycle at a
// time (the window is exactly calBuckets wide), and all pushes for a given
// cycle T arrive in seq order — overflow events for T are migrated, in seq
// order, at the top of the pop that first makes T reachable, which is
// before any event executes and directly pushes more work for T.
func (q *calQueue) popMin() event {
	for {
		// Pull due overflow events into the calendar window.
		for len(q.overflow) > 0 && q.overflow[0].at < q.base+calBuckets {
			e := q.overflow.pop()
			i := e.at & calMask
			bkt := q.buckets[i]
			if cap(bkt) == 0 {
				bkt = make([]event, 0, calBucketCap)
			}
			q.buckets[i] = append(bkt, e)
			q.nbucket++
		}
		i := q.base & calMask
		if int(q.heads[i]) < len(q.buckets[i]) {
			e := q.buckets[i][q.heads[i]]
			q.heads[i]++
			q.nbucket--
			if int(q.heads[i]) == len(q.buckets[i]) {
				q.buckets[i] = q.buckets[i][:0]
				q.heads[i] = 0
			}
			return e
		}
		q.buckets[i] = q.buckets[i][:0]
		q.heads[i] = 0
		if q.nbucket == 0 && len(q.overflow) > 0 {
			q.base = q.overflow[0].at // jump over the idle gap
		} else {
			q.base++
		}
	}
}

// nextAt returns the cycle of the earliest pending event without
// removing it; ok is false when the queue is empty.  The scan advances
// the cursor over empty ground (pure bookkeeping — ordering is
// unaffected), so a subsequent popMin finds the event immediately and
// repeated peeks never rescan the same gap.
func (q *calQueue) nextAt() (at uint64, ok bool) {
	if q.nbucket == 0 && len(q.overflow) == 0 {
		return 0, false
	}
	for {
		// Pull due overflow events into the calendar window.
		for len(q.overflow) > 0 && q.overflow[0].at < q.base+calBuckets {
			e := q.overflow.pop()
			i := e.at & calMask
			bkt := q.buckets[i]
			if cap(bkt) == 0 {
				bkt = make([]event, 0, calBucketCap)
			}
			q.buckets[i] = append(bkt, e)
			q.nbucket++
		}
		i := q.base & calMask
		if int(q.heads[i]) < len(q.buckets[i]) {
			// A bucket holds events for exactly one cycle (the window is
			// calBuckets wide), so every resident event sits at q.base.
			return q.base, true
		}
		q.buckets[i] = q.buckets[i][:0]
		q.heads[i] = 0
		if q.nbucket == 0 && len(q.overflow) > 0 {
			q.base = q.overflow[0].at // jump over the idle gap
		} else {
			q.base++
		}
	}
}

// rewind moves the cursor back to cycle `to` after an idle-gap jump
// outpaced a new arrival (a processor composed at a window boundary
// scheduling into a domain whose cursor already jumped ahead).  Resident
// events whose cycles no longer fit the rewound window are re-filed, so
// no two cycles ever share a bucket.  Rare and cold: it can only happen
// once per composition event.
//
//lint:hot cold at most once per composition event
func (q *calQueue) rewind(to uint64) {
	var resident []event
	for i := range q.buckets {
		for j := int(q.heads[i]); j < len(q.buckets[i]); j++ {
			resident = append(resident, q.buckets[i][j])
		}
		q.buckets[i] = q.buckets[i][:0]
		q.heads[i] = 0
	}
	q.nbucket = 0
	q.base = to
	for _, e := range resident {
		q.push(e) // e.at >= the old base > to, so no recursive rewind
	}
}

// minEvHeap is a hand-rolled (at, seq) min-heap for overflow events — no
// interface boxing, unlike container/heap.
type minEvHeap []event

func (h minEvHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *minEvHeap) push(e event) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *minEvHeap) pop() event {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = event{} // drop pointers for GC
	*h = a[:n]
	a = a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a.less(l, smallest) {
			smallest = l
		}
		if r < n && a.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	return top
}

// issueRing books per-core issue slots: at most capTotal instructions per
// cycle, of which at most capFP may be floating point.  Slots are stamped
// with the cycle they describe, so advancing the window never clears.
type issueRing struct {
	base     uint64
	total    []uint8
	fp       []uint8
	stamp    []uint64 // cycle+1 each slot currently describes
	capTotal uint8
	capFP    uint8
}

const issueHorizon = 4096

func newIssueRing(capTotal, capFP int) *issueRing {
	return &issueRing{
		total:    make([]uint8, issueHorizon),
		fp:       make([]uint8, issueHorizon),
		stamp:    make([]uint64, issueHorizon),
		capTotal: uint8(capTotal),
		capFP:    uint8(capFP),
	}
}

// reserve books the earliest issue slot at or after t.
func (r *issueRing) reserve(t uint64, isFP bool) uint64 {
	if t < r.base {
		t = r.base
	}
	for {
		if t >= r.base+issueHorizon {
			r.base = t
		}
		i := t % issueHorizon
		if r.stamp[i] != t+1 {
			r.stamp[i] = t + 1
			r.total[i] = 0
			r.fp[i] = 0
		}
		if r.total[i] < r.capTotal && (!isFP || r.fp[i] < r.capFP) {
			r.total[i]++
			if isFP {
				r.fp[i]++
			}
			return t
		}
		t++
	}
}

// port books a resource accepting one request per interval cycles.
type port struct{ nextFree uint64 }

func (p *port) reserve(t uint64, interval uint64) uint64 {
	if t < p.nextFree {
		t = p.nextFree
	}
	p.nextFree = t + interval
	return t
}
