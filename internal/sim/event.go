package sim

import "container/heap"

// event is one scheduled simulator action.
type event struct {
	at  uint64
	seq uint64 // insertion order: deterministic tie-break
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)  { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)    { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any      { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q *eventQueue) peek() *event  { return &(*q)[0] }
func (q *eventQueue) empty() bool   { return len(*q) == 0 }
func (q *eventQueue) push(e event)  { heap.Push(q, e) }
func (q *eventQueue) popMin() event { return heap.Pop(q).(event) }

// issueRing books per-core issue slots: at most capTotal instructions per
// cycle, of which at most capFP may be floating point.
type issueRing struct {
	base     uint64
	total    []uint8
	fp       []uint8
	capTotal uint8
	capFP    uint8
}

const issueHorizon = 4096

func newIssueRing(capTotal, capFP int) *issueRing {
	return &issueRing{
		total:    make([]uint8, issueHorizon),
		fp:       make([]uint8, issueHorizon),
		capTotal: uint8(capTotal),
		capFP:    uint8(capFP),
	}
}

// reserve books the earliest issue slot at or after t.
func (r *issueRing) reserve(t uint64, isFP bool) uint64 {
	if t < r.base {
		t = r.base
	}
	for {
		if t >= r.base+issueHorizon {
			for i := range r.total {
				r.total[i] = 0
				r.fp[i] = 0
			}
			r.base = t
		}
		i := (t - r.base) % issueHorizon
		if r.total[i] < r.capTotal && (!isFP || r.fp[i] < r.capFP) {
			r.total[i]++
			if isFP {
				r.fp[i]++
			}
			return t
		}
		t++
	}
}

// port books a resource accepting one request per interval cycles.
type port struct{ nextFree uint64 }

func (p *port) reserve(t uint64, interval uint64) uint64 {
	if t < p.nextFree {
		t = p.nextFree
	}
	p.nextFree = t + interval
	return t
}
