package sim

import (
	"testing"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

func TestBlockTraceObservesLifecycle(t *testing.T) {
	p := sumProgram(t)
	chip := New(DefaultOptions())
	proc, err := chip.AddProc(compose.MustRect(0, 0, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 30
	var events []BlockEvent
	proc.TraceBlocks(func(ev BlockEvent) { events = append(events, ev) })
	if err := chip.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	committed, flushed := 0, 0
	var lastSeq uint64
	for _, ev := range events {
		if ev.Flushed {
			flushed++
		} else {
			committed++
			if ev.RetiredAt < ev.FetchStart {
				t.Fatalf("block %d retired before fetch", ev.Seq)
			}
			if ev.DispatchDone < ev.FetchStart || ev.CommitStart < ev.CompleteAt ||
				ev.RetiredAt < ev.CommitStart {
				t.Fatalf("block %d phases out of order: fetch %d dispatch %d complete %d commit %d retire %d",
					ev.Seq, ev.FetchStart, ev.DispatchDone, ev.CompleteAt, ev.CommitStart, ev.RetiredAt)
			}
			if ev.Seq < lastSeq {
				t.Fatal("commits out of order in trace")
			}
			lastSeq = ev.Seq
		}
	}
	if uint64(committed) != proc.Stats.BlocksCommitted {
		t.Fatalf("trace saw %d commits, stats say %d", committed, proc.Stats.BlocksCommitted)
	}
	if uint64(flushed) != proc.Stats.BlocksFlushed {
		t.Fatalf("trace saw %d flushes, stats say %d", flushed, proc.Stats.BlocksFlushed)
	}
}

// lsqThrasher builds a program whose in-flight blocks aim many memory
// operations at one cache line, overflowing a 44-entry LSQ bank.
func lsqThrasher(t testing.TB) *prog.Program {
	b := prog.NewBuilder()
	bb := b.Block("loop")
	base := bb.Read(1)
	// 24 loads + 4 stores, all within one 64-byte line -> one bank.
	var acc prog.Ref
	for k := int64(0); k < 24; k++ {
		v := bb.Load(base, (k%8)*8, 8, false)
		if k == 0 {
			acc = v
		} else {
			acc = bb.Add(acc, v)
		}
	}
	for k := int64(0); k < 4; k++ {
		bb.Store(base, acc, k*8, 8)
	}
	bb.Write(3, acc)
	i2 := bb.AddI(bb.Read(2), 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.OpI(isa.OpLt, i2, 60), "loop", "done")
	b.Block("done").Halt()
	return b.MustProgram("loop")
}

func TestLSQOverflowNACKsAndRecovers(t *testing.T) {
	p := lsqThrasher(t)
	chip := New(DefaultOptions())
	proc, err := chip.AddProc(compose.MustRect(0, 0, 16), p)
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 0x700000
	if err := chip.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	// With 16 blocks in flight x 28 same-line ops, the single bank (44
	// entries) must have NACKed, and the run must still complete.
	if proc.Stats.LSQNACKs == 0 {
		t.Fatal("expected LSQ NACKs under same-bank pressure")
	}
	if proc.Stats.BlocksCommitted != 61 {
		t.Fatalf("blocks committed = %d", proc.Stats.BlocksCommitted)
	}
}

func TestWorstCaseLSQAvoidsNACKs(t *testing.T) {
	p := lsqThrasher(t)
	opts := DefaultOptions()
	opts.Params.LSQEntries = 2048
	chip := New(opts)
	proc, err := chip.AddProc(compose.MustRect(0, 0, 16), p)
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 0x700000
	if err := chip.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if proc.Stats.LSQNACKs != 0 {
		t.Fatalf("worst-case-sized LSQ should never NACK, got %d", proc.Stats.LSQNACKs)
	}
}

func TestArbitraryCompositionSizes(t *testing.T) {
	// Compositions that are not powers of two still run correctly (the
	// paper: "any point in between").
	p := sumProgram(t)
	for _, cores := range [][]int{{0, 1, 2}, {4, 5, 6, 7, 8}, {0, 3, 12, 15, 16, 19, 28}} {
		chip := New(DefaultOptions())
		proc, err := chip.AddProc(compose.Processor{Cores: cores}, p)
		if err != nil {
			t.Fatal(err)
		}
		proc.Regs[1] = 40
		if err := chip.Run(10_000_000); err != nil {
			t.Fatalf("n=%d: %v", len(cores), err)
		}
		if proc.Regs[3] != 40*39/2 {
			t.Fatalf("n=%d: sum=%d", len(cores), proc.Regs[3])
		}
	}
}

func TestViolationMemoDefersReplays(t *testing.T) {
	// The violation program triggers one flush; the memoized load then
	// waits, so a second violation on the same (block, load) is rare.
	p := violationProgram(t)
	chip := New(DefaultOptions())
	proc, err := chip.AddProc(compose.MustRect(0, 0, 8), p)
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 0x200000
	proc.Regs[2] = 9
	if err := chip.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if proc.Stats.ViolationFlushes > 2 {
		t.Fatalf("violation replays not damped: %d flushes", proc.Stats.ViolationFlushes)
	}
	if proc.violCount == 0 && proc.Stats.ViolationFlushes > 0 {
		t.Fatal("violating load was not memoized")
	}
}

func TestStatsIPC(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Fatal("zero-cycle IPC should be 0")
	}
	s.Cycles = 100
	s.InstsCommitted = 250
	if s.IPC() != 2.5 {
		t.Fatalf("IPC = %v", s.IPC())
	}
}

func TestDeadlockDetectionReportsBadBranch(t *testing.T) {
	// A program whose only branch returns to a non-block address must be
	// reported as a stall, not loop forever.
	b := prog.NewBuilder()
	bb := b.Block("m")
	bogus := bb.Const(0x99999999)
	bb.Ret(bogus)
	p, err := b.Program("m")
	if err != nil {
		t.Fatal(err)
	}
	chip := New(DefaultOptions())
	if _, err := chip.AddProc(compose.MustRect(0, 0, 2), p); err != nil {
		t.Fatal(err)
	}
	err = chip.Run(1_000_000)
	if err == nil {
		t.Fatal("expected a deadlock error")
	}
}

func TestUtilizationProfile(t *testing.T) {
	p := sumProgram(t)
	chip := New(DefaultOptions())
	proc, err := chip.AddProc(compose.MustRect(0, 0, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 50
	if err := chip.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	util := proc.Stats.Utilization()
	if len(util) != 4 {
		t.Fatalf("utilization for %d cores", len(util))
	}
	var total uint64
	for _, n := range proc.Stats.IssuedByCore {
		total += n
	}
	if total != proc.Stats.InstsFired {
		t.Fatalf("per-core issue counts (%d) != fired (%d)", total, proc.Stats.InstsFired)
	}
	for c, u := range util {
		if u < 0 || u > 2.0 {
			t.Fatalf("core %d utilization %.2f outside dual-issue bound", c, u)
		}
	}
}
