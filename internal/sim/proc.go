package sim

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/critpath"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/flight"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/mem"
	"github.com/clp-sim/tflex/internal/predictor"
	"github.com/clp-sim/tflex/internal/prog"
	"github.com/clp-sim/tflex/internal/telemetry"
)

// Proc is one composed logical processor executing one thread.
type Proc struct {
	chip *Chip
	dom  *domain //lint:owner domain-link (owning event domain; nil under Options.Reference)
	// fr is the owning domain's flight-recorder ring; nil unless
	// Chip.EnableFlight armed the recorder (and always nil under
	// Reference, which has no domains).  Add is nil-receiver safe, so
	// every record site costs a nil check when disabled.
	fr   *flight.Ring
	id   int
	asid uint64

	cores  []int // physical core IDs, participating order
	n      int
	prog   *prog.Program
	Mem    *exec.PageMem // committed architectural memory
	Regs   [isa.NumRegs]uint64
	Pred   *predictor.Composed
	lsq    []*mem.LSQBank // one per D-bank
	dbanks []int          // participating-core indices carrying D/LSQ banks
	rbanks []int          // participating-core indices carrying register banks
	l1i    *mem.Cache     // composed logical I-cache (block granularity)

	maxBlocks int
	window    []*IFB // oldest first
	nextSeq   uint64

	fetch struct {
		addr      uint64
		hist      predictor.History
		readyAt   uint64
		valid     bool
		scheduled bool
		epoch     uint64
	}

	// Commit pipelining: blocks commit in order, but a block's commit may
	// launch one cycle after its predecessor's (plus the owner-to-owner
	// "oldest" token hop); drains contend on per-bank commit ports.
	lastCommitStart uint64
	lastCommitOwner int
	anyCommitted    bool
	commitPortD     []port // per D-bank store-drain port
	commitPortR     []port // per register-bank write port
	halted          bool

	// Violation memo: load instructions that have violated, as a dense
	// bitset indexed blockIndex*MaxBlockInsts+instID (violMap backs the
	// rare non-laid-out block).
	violBits  []uint64
	violMap   map[uint64]bool
	violCount int

	deferred      []deferredLoad
	deferredSpare []deferredLoad // swap buffer for retryDeferredLoads

	meta    []*blockMeta // decoded-block cache, indexed by block index
	ifbFree []*IFB       // recycled in-flight blocks

	// Per-fetch/per-commit scratch, sized n at construction.  Each buffer
	// has a single producer whose use completes before the next producer
	// runs (multicast results are consumed synchronously).
	mcArr       []uint64
	wbScratch   []uint64
	slotScratch []int

	blockTrace func(BlockEvent)
	storeTrace func(addr uint64, size uint8, val uint64)

	// Latency histograms, non-nil only once the chip's telemetry registry
	// is built; Observe is nil-safe, so the disabled path costs one nil
	// check per committed block.
	hFetchLat  *telemetry.Histogram
	hCommitLat *telemetry.Histogram

	// Critical-path attribution aggregate and per-category histograms
	// (nil histograms unless both attribution and telemetry are armed).
	crit  critpath.Summary
	hCrit [critpath.NumCategories]*telemetry.Histogram

	Stats Stats
}

type deferredLoad struct {
	b    *IFB
	gen  uint32
	idx  int
	addr uint64
	t    uint64
}

func newProc(c *Chip, id int, cores []int, program *prog.Program, m *exec.PageMem) *Proc {
	p := &Proc{
		chip: c, id: id, asid: uint64(id + 1),
		cores: cores, n: len(cores), prog: program, Mem: m,
	}
	params := c.Opts.Params
	predBanks := p.n
	if c.Opts.CentralPredictor {
		predBanks = 1
	}
	p.Pred = predictor.NewComposed(params, predBanks)

	p.dbanks = c.Opts.DBanks
	if len(p.dbanks) == 0 {
		p.dbanks = idxRange(p.n)
	}
	p.rbanks = c.Opts.RegBanks
	if len(p.rbanks) == 0 {
		p.rbanks = idxRange(p.n)
	}
	for range p.dbanks {
		p.lsq = append(p.lsq, mem.NewLSQBank(params.LSQEntries))
	}
	p.commitPortD = make([]port, len(p.dbanks))
	p.commitPortR = make([]port, len(p.rbanks))
	// The logical I-cache: each participating core caches 1/n of each
	// block, so the composed capacity in blocks is n * L1IBytes / 1KB.
	p.l1i = mem.NewCache(p.n*params.L1IBytes, 4, isa.BlockBytes)

	p.maxBlocks = c.Opts.windowPerCore() * p.n / isa.MaxBlockInsts
	if p.maxBlocks < 1 {
		p.maxBlocks = 1
	}
	p.Stats.IssuedByCore = make([]uint64, p.n)

	p.mcArr = make([]uint64, p.n)
	p.wbScratch = make([]uint64, p.n)
	p.slotScratch = make([]int, p.n)
	return p
}

func idxRange(n int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = i
	}
	return v
}

// ID returns the processor's logical ID (its telemetry "proc<id>" prefix).
func (p *Proc) ID() int { return p.id }

// Cores returns the physical core IDs composing the processor.
func (p *Proc) Cores() []int { return append([]int(nil), p.cores...) }

// Halted reports whether the processor has committed its halt block.
func (p *Proc) Halted() bool { return p.halted }

// speculates reports whether the processor runs ahead with next-block
// prediction (single-block windows fetch non-speculatively; paper §6.4).
func (p *Proc) speculates() bool { return p.maxBlocks > 1 }

func (p *Proc) phys(idx int) int { return p.cores[idx] }

// physAddr maps a virtual address into the processor's physical space.
func (p *Proc) physAddr(vaddr uint64) uint64 { return p.asid<<40 | vaddr }

func (p *Proc) ownerIdx(blockAddr uint64) int {
	if p.chip.Opts.CentralPredictor {
		return 0
	}
	return compose.OwnerOf(blockAddr, p.n)
}

func (p *Proc) dataBankIdx(addr uint64) int {
	return p.dbanks[compose.DataBank(addr, p.chip.Opts.Params.LineBytes, len(p.dbanks))]
}

func (p *Proc) lsqBankOf(addr uint64) *mem.LSQBank {
	return p.lsq[compose.DataBank(addr, p.chip.Opts.Params.LineBytes, len(p.lsq))]
}

func (p *Proc) regBankIdx(reg uint8) int {
	return p.rbanks[int(reg)%len(p.rbanks)]
}

// The domain-routing layer: every simulator action a processor takes —
// reading the clock, scheduling events, reporting faults, sending
// messages — goes through its owning event domain, so that domains can
// advance concurrently without sharing queues, clocks or statistics.
// Under Options.Reference dom is nil and everything falls through to the
// chip's original single-queue engine.

// nowCycle returns the processor's current simulation cycle.
func (p *Proc) nowCycle() uint64 {
	if p.dom != nil {
		return p.dom.now
	}
	return p.chip.now
}

// scheduleEv enqueues a typed event in the processor's domain.
func (p *Proc) scheduleEv(at uint64, e event) {
	if p.dom != nil {
		p.dom.scheduleEv(at, e)
		return
	}
	p.chip.scheduleEv(at, e)
}

// fail records a model fault against the processor's domain.
//
//lint:hot cold fault path, runs at most once per simulation
func (p *Proc) fail(format string, args ...any) {
	if p.dom != nil {
		p.dom.fail(format, args...)
		return
	}
	p.chip.fail(format, args...)
}

// enterShared/exitShared bracket every access to chip-shared state (the
// L2/DRAM side, and chip composition from OnProcHalt hooks).  During a
// parallel run they park on the window arbiter, which grants domains in
// merged (cycle, domain) order at full quiescence; in every serial mode
// execution is already in that order and they cost two nil checks.
func (p *Proc) enterShared() {
	if pr := p.chip.par; pr != nil {
		pr.enter(p.dom)
	}
}

func (p *Proc) exitShared() {
	if pr := p.chip.par; pr != nil {
		pr.exit(p.dom)
	}
}

// ctlSend routes a control message, honoring the ZeroHandshake ablation.
func (p *Proc) ctlSend(fromIdx, toIdx int, t uint64) uint64 {
	if p.chip.Opts.ZeroHandshake {
		return t
	}
	if p.dom != nil {
		return p.dom.ctl.Send(p.phys(fromIdx), p.phys(toIdx), t)
	}
	return p.chip.Ctl.Send(p.phys(fromIdx), p.phys(toIdx), t)
}

// opnSend routes an operand on the operand network.
func (p *Proc) opnSend(fromIdx, toIdx int, t uint64) uint64 {
	if p.dom != nil {
		return p.dom.opn.Send(p.phys(fromIdx), p.phys(toIdx), t)
	}
	return p.chip.Opn.Send(p.phys(fromIdx), p.phys(toIdx), t)
}

// ctlMulticastInto distributes a control message from fromIdx to every
// participating core as a tree multicast (the TRIPS global networks),
// filling dst with per-core arrival cycles in participating order.
func (p *Proc) ctlMulticastInto(fromIdx int, t uint64, dst []uint64) {
	if p.chip.Opts.ZeroHandshake {
		for i := range dst {
			dst[i] = t
		}
		return
	}
	if p.dom != nil {
		p.dom.ctl.MulticastInto(p.phys(fromIdx), p.cores, t, dst)
		return
	}
	p.chip.Ctl.MulticastInto(p.phys(fromIdx), p.cores, t, dst)
}

// prepareStart validates the program and primes the fetch engine.  The
// first fetch is scheduled by Chip.launch (Reference) or by domain
// placement at the next quiescent point (optimized).
func (p *Proc) prepareStart() {
	entry := p.prog.EntryBlock()
	if entry == nil {
		p.fail("proc %d: no entry block", p.id)
		return
	}
	p.fetch.addr = entry.Addr
	p.fetch.hist = 0
	p.fetch.readyAt = p.chip.Now()
	p.fetch.valid = true
}

// maybeFetch schedules the next block fetch if one is known and a window
// slot could become available.
func (p *Proc) maybeFetch() {
	if p.halted || !p.fetch.valid || p.fetch.scheduled {
		return
	}
	if len(p.window) >= p.maxBlocks {
		return // re-invoked on dealloc
	}
	p.fetch.scheduled = true
	p.scheduleEv(p.fetch.readyAt, event{kind: evFetch, proc: p, val: p.fetch.epoch})
}

// fetchBlock runs the distributed fetch pipeline for the block at
// p.fetch.addr: prediction, hand-off, I-cache tag check, fetch-command
// distribution and per-core dispatch (paper §4.2, Figure 9a).
func (p *Proc) fetchBlock() {
	t0 := p.nowCycle()
	addr := p.fetch.addr
	hist := p.fetch.hist
	blk := p.prog.BlockAt(addr)
	if blk == nil {
		// Wrong-path fetch to a non-code address (e.g. a cold BTB's
		// next-sequential fallback past the program end).  Stall the
		// fetch engine; the mispredicted older block will flush and
		// redirect when its branch resolves.  If the address is the
		// architecturally correct target, the deadlock detector reports
		// it with this address.
		p.fetch.valid = false
		return
	}
	params := &p.chip.Opts.Params
	m := p.blockMeta(blk)
	owner := m.owner

	b := p.acquireIFB()
	resetIFB(b, p, m, p.nextSeq, hist)
	p.nextSeq++
	p.window = append(p.window, b)
	p.Stats.BlocksFetched++

	constLat := uint64(params.L1IHitCycles) + 3 // I-tag + fetch initiation
	if p.speculates() {
		constLat += uint64(params.PredictorLat)
		pred, histAfter := p.Pred.Predict(addr, hist)
		b.pred = pred
		b.specNext = true
		predDone := t0 + uint64(params.PredictorLat)
		// Calls and returns touch the distributed RAS: charge the round
		// trip from the owner to the core holding the stack top.
		if pred.Type == isa.BranchCall || pred.Type == isa.BranchReturn {
			if d := p.chip.Ctl.Dist(p.phys(owner), p.phys(pred.RASTopCore%p.n)); !p.chip.Opts.ZeroHandshake && d > 0 {
				predDone += 2 * uint64(d)
			}
		}
		if pred.Next != 0 {
			nextOwner := p.ownerIdx(pred.Next)
			handArrive := p.ctlSend(owner, nextOwner, predDone)
			p.fetch.addr = pred.Next
			p.fetch.hist = histAfter
			p.fetch.readyAt = handArrive
			p.fetch.valid = true
			b.handOffLat = handArrive - predDone
		} else {
			p.fetch.valid = false // predicted program end
		}
	} else {
		// Non-speculative: the next address comes from branch resolution.
		p.fetch.valid = false
	}
	b.tFetchStart = t0
	p.fr.Add(flight.KFetch, t0, int16(p.id), int16(p.phys(owner)), addr, b.seq)

	// I-cache tag check at the owner; misses fill from the L2.
	cmdStart := t0 + constLat
	if _, hit := p.l1i.Access(p.physAddr(addr), cmdStart); !hit {
		p.Stats.ICacheMisses++
		p.enterShared()
		fill := p.chip.L2.Read(p.phys(owner), p.physAddr(addr), cmdStart)
		p.exitShared()
		p.l1i.Fill(p.physAddr(addr), fill)
		b.icacheStall = fill - cmdStart
		cmdStart = fill
	} else if l := p.l1i.Probe(p.physAddr(addr)); l != nil && l.FillAt > cmdStart {
		b.icacheStall = l.FillAt - cmdStart
		cmdStart = l.FillAt
	}
	b.constLat = constLat

	// Fetch-command distribution to every participating core.
	arr := p.mcArr
	p.ctlMulticastInto(owner, cmdStart, arr)
	bcastLast := cmdStart
	for _, a := range arr {
		if a > bcastLast {
			bcastLast = a
		}
	}
	b.bcastLat = bcastLast - cmdStart

	// Per-core dispatch: each core reads its slots from its I-bank at
	// DispatchBW instructions per cycle.  Nop slots are never dispatched;
	// the decoded metadata lists the live ones.
	dispatchLast := bcastLast
	slotCount := p.slotScratch
	for i := range slotCount {
		slotCount[i] = 0
	}
	for _, id32 := range m.nonNop {
		id := int(id32)
		c := int(m.instCore[id])
		av := arr[c] + 1 + uint64(slotCount[c]/params.DispatchBW)
		slotCount[c]++
		b.insts[id].availAt = av
		if av > dispatchLast {
			dispatchLast = av
		}
		p.scheduleEv(av, event{kind: evDispatch, b: b, gen: b.gen, idx: id32})
	}
	b.dispatchLat = dispatchLast - bcastLast
	p.fr.Add(flight.KDispatch, dispatchLast, int16(p.id), int16(p.phys(owner)), b.seq, b.dispatchLat)

	// Register reads are dispatched to their register-bank cores.
	for ri := range blk.Reads {
		bank := p.regBankIdx(blk.Reads[ri].Reg)
		p.scheduleEv(arr[bank]+1, event{kind: evRegRead, b: b, gen: b.gen, idx: int32(ri)})
	}

	// Blocks with no register writes/stores can complete with just the
	// branch; outputsPending was set from the decoded metadata.
	p.maybeFetch()
}

// indexOf locates a block in the window (-1 if flushed/committed).
func (p *Proc) indexOf(b *IFB) int {
	for i, w := range p.window {
		if w == b {
			return i
		}
	}
	return -1
}

// flushFrom removes every block with seq >= seq (youngest first, repairing
// predictor state), and restarts fetch at restartAddr with history hist.
func (p *Proc) flushFrom(seq uint64, restartAddr uint64, hist predictor.History, t uint64) {
	for i := len(p.window) - 1; i >= 0; i-- {
		b := p.window[i]
		if b.seq < seq {
			break
		}
		if b.specNext {
			p.Pred.Repair(&b.pred)
		}
		b.dead = true
		p.Stats.BlocksFlushed++
		p.fr.Add(flight.KFlush, t, int16(p.id), -1, b.seq, restartAddr)
		p.emitBlockEvent(b, t, true)
		p.window = p.window[:i]
		p.releaseIFB(b)
	}
	for _, bank := range p.lsq {
		bank.RemoveFrom(seq)
	}
	// Drop deferred loads belonging to flushed blocks.
	kept := p.deferred[:0]
	for _, d := range p.deferred {
		if d.b.gen == d.gen && !d.b.dead {
			kept = append(kept, d)
		}
	}
	p.deferred = kept
	p.fetch.epoch++
	p.fetch.scheduled = false
	if restartAddr == 0 {
		p.fetch.valid = false
		return
	}
	p.fetch.addr = restartAddr
	p.fetch.hist = hist
	p.fetch.readyAt = t + 1 // redirect penalty
	p.fetch.valid = true
	p.maybeFetch()
	p.retryDeferredLoads()
}

// branchResolved handles the arrival of a block's branch outcome at its
// owner core: misprediction detection, fetch redirection, and completion
// bookkeeping.
func (p *Proc) branchResolved(b *IFB, out exec.BranchOut, t uint64) {
	if b.dead || b.branchDone {
		return
	}
	b.branchDone = true
	b.actual = out

	if b.specNext {
		if p.Pred.Mispredicted(&b.pred, out.Target) {
			p.Stats.BranchFlushes++
			// Flush younger blocks, repair, redirect.
			p.flushFrom(b.seq+1, 0, 0, t)
			fixed := p.Pred.RepairAfterMiss(&b.pred, out.Exit, out.Op.Type())
			if out.Target != 0 {
				newOwner := p.ownerIdx(out.Target)
				ready := p.ctlSend(b.owner, newOwner, t+1)
				p.fetch.addr = out.Target
				p.fetch.hist = fixed
				p.fetch.readyAt = ready
				p.fetch.valid = true
				p.maybeFetch()
			} else {
				p.fetch.valid = false
			}
		}
	} else {
		// Non-speculative fetch: the next block address is now known.
		if out.Target != 0 {
			newOwner := p.ownerIdx(out.Target)
			ready := p.ctlSend(b.owner, newOwner, t+1)
			p.fetch.addr = out.Target
			p.fetch.hist = 0
			p.fetch.readyAt = ready
			p.fetch.valid = true
			p.maybeFetch()
		}
	}
	p.outputDone(b, t, critpath.OutBranch, 0)
}

// outputDone records one block output (register write, store slot, or
// branch) arriving at the owner at cycle t.  kind/idx identify the
// output for attribution: whichever output completes last becomes the
// root of the critical-path walk (ties go to the latest arrival in
// event order, matching the completion the block actually waited on).
func (p *Proc) outputDone(b *IFB, t uint64, kind critpath.OutKind, idx int32) {
	if b.dead {
		return
	}
	if t > b.completeAt {
		b.completeAt = t
	}
	if b.cp != nil && t == b.completeAt {
		b.cp.LastOut, b.cp.LastIdx = kind, idx
	}
	b.outputsPending--
	if b.outputsPending < 0 {
		p.fail("proc %d block %s seq %d: too many outputs", p.id, b.blk.Name, b.seq)
		return
	}
	if b.outputsPending == 0 {
		b.phase = phaseComplete
		p.tryCommit()
	}
}

// tryCommit launches the four-phase distributed commit protocol (paper
// §4.6) for every complete block at the head of the window.  Commits are
// pipelined: block i+1's commit command may launch one cycle after block
// i's (plus the owner-to-owner "oldest" token hop); architectural drains
// contend on per-bank commit ports; deallocations complete in order.
func (p *Proc) tryCommit() {
	for !p.halted {
		var b *IFB
		for _, w := range p.window {
			if w.phase == phaseCommitting {
				continue
			}
			b = w
			break
		}
		if b == nil || b.phase != phaseComplete {
			return
		}
		p.startCommit(b)
	}
}

func (p *Proc) startCommit(b *IFB) {
	b.phase = phaseCommitting
	start := b.completeAt
	if now := p.nowCycle(); now > start {
		start = now
	}
	if p.anyCommitted {
		// The "oldest" token passes from the previous committing block's
		// owner one cycle after its commit launched.
		token := p.ctlSend(p.lastCommitOwner, b.owner, p.lastCommitStart+1)
		if token > start {
			start = token
		}
	}
	p.lastCommitStart = start
	p.lastCommitOwner = b.owner
	p.anyCommitted = true
	b.commitStart = start

	// Phase 2: commit command to all participating cores (tree multicast).
	cmdArr := p.mcArr
	p.ctlMulticastInto(b.owner, start, cmdArr)

	// Phase 3: architectural state update: stores drain at the D-banks
	// and register writes retire at the register banks, one per cycle per
	// bank, contending with other committing blocks.
	wbDone := p.wbScratch
	copy(wbDone, cmdArr)
	lineBytes := p.chip.Opts.Params.LineBytes
	for _, s := range b.stores {
		pos := compose.DataBank(s.addr, lineBytes, len(p.dbanks))
		c := p.dbanks[pos]
		done := p.commitPortD[pos].reserve(cmdArr[c], 1) + 1
		if done > wbDone[c] {
			wbDone[c] = done
		}
	}
	for wi := range b.wr {
		if !b.wr[wi].has {
			continue
		}
		pos := int(b.blk.Writes[wi].Reg) % len(p.rbanks)
		c := p.rbanks[pos]
		done := p.commitPortR[pos].reserve(cmdArr[c], 1) + 1
		if done > wbDone[c] {
			wbDone[c] = done
		}
	}
	var drainMax uint64
	for c := 0; c < p.n; c++ {
		if d := wbDone[c] - cmdArr[c]; d > drainMax {
			drainMax = d
		}
	}

	// Apply architectural state now: values are final.
	p.applyArchState(b)

	// Phase 3b/4: ACK gather and deallocation broadcast.  ACKs combine in
	// the network (a GSN-style status aggregation tree), so the gather
	// costs the slowest core's completion plus its hop distance rather
	// than 31 serialized messages.
	ackDone := start
	for c := 0; c < p.n; c++ {
		a := wbDone[c]
		if !p.chip.Opts.ZeroHandshake {
			a += p.chip.Ctl.Latency(p.phys(c), p.phys(b.owner))
		}
		if a > ackDone {
			ackDone = a
		}
	}
	// cmdArr is fully consumed above; reuse the multicast scratch.
	p.ctlMulticastInto(b.owner, ackDone, p.mcArr)
	deallocAt := ackDone
	for _, a := range p.mcArr {
		if a > deallocAt {
			deallocAt = a
		}
	}

	p.Stats.CommitBlocks++
	p.Stats.CommitArchSum += drainMax
	p.Stats.CommitHandshakeSum += (deallocAt - start) - drainMax

	p.scheduleEv(deallocAt, event{kind: evDealloc, b: b, gen: b.gen, val: deallocAt})
}

// applyArchState commits a block's register writes and stores.
func (p *Proc) applyArchState(b *IFB) {
	for wi := range b.wr {
		if b.wr[wi].has {
			p.Regs[b.blk.Writes[wi].Reg] = b.wr[wi].val
			p.Stats.RegWrites++
		}
	}
	// Stores in LSID order.
	for id := int8(0); id < 32; id++ {
		for _, s := range b.stores {
			if s.key.LSID != id {
				continue
			}
			p.Mem.Store(s.addr, int(s.size), s.val)
			if p.storeTrace != nil {
				p.storeTrace(s.addr, s.size, s.val)
			}
			p.commitStoreToCache(s.addr)
		}
	}
}

// commitStoreToCache updates the D-cache and coherence state for one
// committed store (write-allocate, write-back, directory upgrade).
func (p *Proc) commitStoreToCache(addr uint64) {
	bank := p.dataBankIdx(addr)
	physCore := p.phys(bank)
	cache := p.chip.l1dAt(physCore)
	pa := p.physAddr(addr)
	now := p.nowCycle()
	if line, hit := cache.Access(pa, now); hit {
		if !line.Dirty {
			p.enterShared()
			p.chip.L2.Upgrade(physCore, pa, now)
			p.exitShared()
			line.Dirty = true
		}
		return
	}
	p.enterShared()
	fill := p.chip.L2.Upgrade(physCore, pa, now)
	victim, evicted := cache.Fill(pa, fill)
	if evicted {
		p.writeBackVictim(physCore, victim)
	}
	p.exitShared()
	if l := cache.Probe(pa); l != nil {
		l.Dirty = true
	}
}

func (p *Proc) writeBackVictim(physCore int, victim mem.Line) {
	addr := victim.LineAddr * uint64(p.chip.Opts.Params.LineBytes)
	if victim.Dirty {
		p.chip.L2.WritebackL1(physCore, addr)
	} else {
		p.chip.L2.DropSharer(physCore, addr)
	}
}

// drainCommitted retires deallocated blocks from the head of the window
// in order.
func (p *Proc) drainCommitted() {
	for len(p.window) > 0 && p.window[0].deallocDone && !p.halted {
		b := p.window[0]
		n := copy(p.window, p.window[1:])
		p.window[n] = nil
		p.window = p.window[:n]
		p.finalizeCommit(b, b.deallocAt)
	}
	if !p.halted {
		p.tryCommit()
		p.maybeFetch()
	}
}

// finalizeCommit retires one block at its deallocation time.
func (p *Proc) finalizeCommit(b *IFB, t uint64) {
	for _, bank := range p.lsq {
		bank.RemoveBlock(b.seq)
	}
	p.Stats.BlocksCommitted++
	p.Stats.InstsCommitted += uint64(b.useful)
	p.fr.Add(flight.KCommit, t, int16(p.id), int16(p.phys(b.owner)), b.seq, t-b.tFetchStart)
	if b.cp != nil {
		p.finalizeCritPath(b, t)
	}
	p.emitBlockEvent(b, t, false)
	p.Stats.Loads += uint64(b.loads)
	p.Stats.Stores += uint64(len(b.stores))

	p.Stats.FetchBlocks++
	p.Stats.FetchConstSum += b.constLat
	p.Stats.FetchHandOffSum += b.handOffLat
	p.Stats.FetchBcastSum += b.bcastLat
	p.Stats.FetchDispatchSum += b.dispatchLat
	p.Stats.FetchIStallSum += b.icacheStall
	p.hFetchLat.Observe(b.constLat + b.handOffLat + b.bcastLat + b.dispatchLat + b.icacheStall)
	p.hCommitLat.Observe(t - b.commitStart)

	if b.specNext {
		p.Pred.Train(&b.pred, b.actual.Exit, b.actual.Op.Type(), b.actual.Target)
	}

	// Serve any read waiters that were still attached (defensively:
	// normally writes resolve before completion).
	for wi := range b.wr {
		for i := range b.wr[wi].waiters {
			if w := &b.wr[wi].waiters[i]; w.live() {
				p.resolveRead(w.b, w.readIdx, t)
			}
		}
		b.wr[wi].waiters = nil
	}
	p.retryDeferredLoads()

	if b.actual.Op == isa.OpHalt {
		p.halted = true
		p.Stats.Cycles = t
		//lint:allow domainguard audited: the hook pointer is installed before Run and immutable while workers execute; the probe is a read of frozen state and the call below is bracketed
		if p.chip.onHalt != nil {
			// The hook composes processors onto the chip — shared state.
			p.enterShared()
			p.chip.onHalt(p)
			p.exitShared()
		}
	}
	p.releaseIFB(b)
}

// describeStall reports what a deadlocked processor was waiting for.
func (p *Proc) describeStall() string {
	if len(p.window) == 0 {
		return fmt.Sprintf("empty window, fetch valid=%v addr=%#x", p.fetch.valid, p.fetch.addr)
	}
	b := p.window[0]
	return fmt.Sprintf("oldest block %s seq %d phase %d outputsPending %d branchDone %v",
		b.blk.Name, b.seq, b.phase, b.outputsPending, b.branchDone)
}
