// Package sched implements the run-time core-allocation layer the paper's
// conclusion sketches (§8): low-level software that decides how many cores
// each thread gets, launching queued jobs onto freed cores and choosing
// compositions from per-application speedup profiles.
//
// The scheduler drives a real simulated chip: jobs co-run, contending for
// the shared L2, DRAM and mesh links.  When a job halts, its cores return
// to the free pool and the scheduler immediately places waiting jobs —
// the online counterpart of the paper's offline Figure 10 methodology.
package sched

import (
	"fmt"
	"sort"

	"github.com/clp-sim/tflex/internal/alloc"
	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
	"github.com/clp-sim/tflex/internal/sim"
)

// Job is one unit of work for the scheduler.
type Job struct {
	Name string
	Prog *prog.Program
	Init func(regs *[isa.NumRegs]uint64, m *exec.PageMem)
	// Curve is the job's cores->speedup profile (from profiling runs);
	// nil means "unknown", which the scheduler treats as flat.
	Curve alloc.Curve
	// MaxCores caps the composition the scheduler may grant.
	MaxCores int

	// Results, filled when the job completes.
	Done      bool
	Cores     int
	StartedAt uint64
	HaltedAt  uint64
	Stats     sim.Stats
}

// Policy chooses a composition size for the next job given the free-core
// count and the job's profile.
type Policy func(job *Job, freeCores int) int

// GreedyBest grants each job its best profiled composition that fits,
// shrinking to the largest fitting measured size otherwise.
func GreedyBest(job *Job, freeCores int) int {
	limit := freeCores
	if job.MaxCores > 0 && job.MaxCores < limit {
		limit = job.MaxCores
	}
	if job.Curve == nil {
		if limit >= 2 {
			return 2
		}
		return limit
	}
	best, bestSp := 0, 0.0
	for _, k := range job.Curve.Sizes() {
		if k > limit {
			continue
		}
		// Prefer the smallest size within 5% of the best speedup: frees
		// cores for other jobs at negligible cost.
		sp := job.Curve.At(k)
		if sp > bestSp*1.05 {
			best, bestSp = k, sp
		}
	}
	return best
}

// EqualShare ignores profiles and grants min(freeCores, MaxCores, 4).
func EqualShare(job *Job, freeCores int) int {
	k := 4
	if job.MaxCores > 0 && job.MaxCores < k {
		k = job.MaxCores
	}
	if freeCores < k {
		k = freeCores
	}
	return k
}

// Result summarizes a completed schedule.
type Result struct {
	Makespan   uint64  // cycle the last job halted
	WeightedSp float64 // sum over jobs of speedup vs 1-core profile
	Jobs       []*Job
}

// Scheduler places jobs onto a chip.
type Scheduler struct {
	chip   *sim.Chip
	policy Policy

	free    map[int]bool // physical core id -> free
	pending []*Job
	running map[*sim.Proc]*Job
	all     []*Job
}

// New builds a scheduler over a fresh chip.
func New(opts sim.Options, policy Policy) *Scheduler {
	s := &Scheduler{
		chip:    sim.New(opts),
		policy:  policy,
		free:    map[int]bool{},
		running: map[*sim.Proc]*Job{},
	}
	for c := 0; c < compose.NumCores; c++ {
		s.free[c] = true
	}
	s.chip.OnProcHalt(func(p *sim.Proc) { s.onHalt(p) })
	return s
}

// Chip exposes the underlying chip (for stats inspection).
func (s *Scheduler) Chip() *sim.Chip { return s.chip }

// Submit queues a job.
func (s *Scheduler) Submit(j *Job) {
	s.pending = append(s.pending, j)
	s.all = append(s.all, j)
}

// Run places as many jobs as fit, then drives the chip until every
// submitted job has completed.
func (s *Scheduler) Run(maxCycles uint64) (*Result, error) {
	s.placeJobs()
	if len(s.running) == 0 && len(s.pending) > 0 {
		return nil, fmt.Errorf("sched: no job could be placed")
	}
	if err := s.chip.Run(maxCycles); err != nil {
		return nil, err
	}
	if len(s.pending) > 0 {
		return nil, fmt.Errorf("sched: %d jobs never ran", len(s.pending))
	}
	res := &Result{Jobs: s.all}
	for _, j := range s.all {
		if j.HaltedAt > res.Makespan {
			res.Makespan = j.HaltedAt
		}
		if j.Curve != nil && j.Curve.At(j.Cores) > 0 {
			res.WeightedSp += j.Curve.At(j.Cores)
		}
	}
	return res, nil
}

func (s *Scheduler) freeCount() int {
	n := 0
	for _, ok := range s.free {
		if ok {
			n++
		}
	}
	return n
}

// takeCores removes k free cores (lowest IDs first) from the pool.
func (s *Scheduler) takeCores(k int) []int {
	var ids []int
	for c := 0; c < compose.NumCores && len(ids) < k; c++ {
		if s.free[c] {
			ids = append(ids, c)
			s.free[c] = false
		}
	}
	return ids
}

func (s *Scheduler) placeJobs() {
	// Largest-demand first reduces fragmentation.
	sort.SliceStable(s.pending, func(i, j int) bool {
		return s.policy(s.pending[i], compose.NumCores) > s.policy(s.pending[j], compose.NumCores)
	})
	var waiting []*Job
	for _, j := range s.pending {
		k := s.policy(j, s.freeCount())
		if k < 1 {
			waiting = append(waiting, j)
			continue
		}
		cores := s.takeCores(k)
		proc, err := s.chip.AddProc(compose.Processor{Cores: cores}, j.Prog)
		if err != nil {
			// Return the cores and retry later.
			for _, c := range cores {
				s.free[c] = true
			}
			waiting = append(waiting, j)
			continue
		}
		if j.Init != nil {
			j.Init(&proc.Regs, proc.Mem)
		}
		j.Cores = k
		j.StartedAt = s.chip.Now()
		s.running[proc] = j
	}
	s.pending = waiting
}

func (s *Scheduler) onHalt(p *sim.Proc) {
	j, ok := s.running[p]
	if !ok {
		return
	}
	delete(s.running, p)
	j.Done = true
	j.HaltedAt = p.Stats.Cycles
	j.Stats = p.Stats
	for _, c := range p.Cores() {
		s.free[c] = true
	}
	s.placeJobs()
}
