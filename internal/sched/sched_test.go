package sched

import (
	"testing"

	"github.com/clp-sim/tflex/internal/alloc"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/kernels"
	"github.com/clp-sim/tflex/internal/prog"
	"github.com/clp-sim/tflex/internal/sim"
)

func sumJob(t testing.TB, name string, n int64) *Job {
	t.Helper()
	b := prog.NewBuilder()
	bb := b.Block("loop")
	i := bb.Read(2)
	bb.Write(3, bb.Add(bb.Read(3), i))
	i2 := bb.AddI(i, 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.OpI(isa.OpLt, i2, n), "loop", "done")
	b.Block("done").Halt()
	return &Job{
		Name:  name,
		Prog:  b.MustProgram("loop"),
		Curve: alloc.Curve{1: 1, 2: 1.2, 4: 1.3, 8: 1.3, 16: 1.25, 32: 1.2},
	}
}

func TestSchedulerRunsAllJobs(t *testing.T) {
	s := New(sim.DefaultOptions(), GreedyBest)
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j := sumJob(t, "sum", int64(50+10*i))
		jobs = append(jobs, j)
		s.Submit(j)
	}
	res, err := s.Run(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !j.Done {
			t.Fatalf("job %s never finished", j.Name)
		}
		if j.Cores < 1 {
			t.Fatalf("job got %d cores", j.Cores)
		}
		if j.Stats.BlocksCommitted == 0 {
			t.Fatal("no work recorded")
		}
	}
	if res.Makespan == 0 {
		t.Fatal("no makespan")
	}
}

func TestSchedulerQueuesWhenFull(t *testing.T) {
	// 12 jobs wanting 4 cores each exceed 32 cores: some must wait for
	// earlier jobs to halt, exercising the on-halt replacement path.
	s := New(sim.DefaultOptions(), EqualShare)
	var jobs []*Job
	for i := 0; i < 12; i++ {
		j := sumJob(t, "q", 80)
		j.MaxCores = 4
		jobs = append(jobs, j)
		s.Submit(j)
	}
	res, err := s.Run(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// At least some jobs must have started strictly after cycle 0 (they
	// waited in the queue).
	delayed := 0
	for _, j := range jobs {
		if !j.Done {
			t.Fatal("job unfinished")
		}
		if j.StartedAt > 0 {
			delayed++
		}
	}
	if delayed == 0 {
		t.Fatal("expected queued jobs to start later")
	}
	_ = res
}

func TestSchedulerRealKernels(t *testing.T) {
	s := New(sim.DefaultOptions(), GreedyBest)
	names := []string{"conv", "dither", "bezier", "tblook"}
	type pair struct {
		job  *Job
		inst *kernels.Instance
	}
	var pairs []pair
	for _, name := range names {
		k, ok := kernels.ByName(name)
		if !ok {
			t.Fatal(name)
		}
		inst, err := k.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		j := &Job{
			Name: name,
			Prog: inst.Prog,
			Init: inst.Init,
			Curve: alloc.Curve{
				1: 1, 2: 1.5, 4: 2.2, 8: 2.8, 16: 3.0, 32: 2.8,
			},
			MaxCores: 8,
		}
		pairs = append(pairs, pair{j, inst})
		s.Submit(j)
	}
	if _, err := s.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if !p.job.Done || p.job.Stats.InstsCommitted == 0 {
			t.Fatalf("job %s incomplete", p.job.Name)
		}
	}
}

func TestPolicies(t *testing.T) {
	j := sumJob(t, "p", 10)
	if k := GreedyBest(j, 32); k < 2 || k > 8 {
		t.Fatalf("greedy picked %d for a flat-ish curve", k)
	}
	if k := GreedyBest(j, 1); k != 1 {
		t.Fatalf("greedy with 1 free core picked %d", k)
	}
	j2 := &Job{} // no profile
	if k := GreedyBest(j2, 32); k != 2 {
		t.Fatalf("unknown profile should get 2 cores, got %d", k)
	}
	if k := EqualShare(&Job{}, 32); k != 4 {
		t.Fatalf("equal share picked %d", k)
	}
	if k := EqualShare(&Job{MaxCores: 2}, 32); k != 2 {
		t.Fatalf("capped equal share picked %d", k)
	}
}

func TestSchedulerIsolation(t *testing.T) {
	// Two sum jobs with different bounds must not corrupt each other.
	s := New(sim.DefaultOptions(), EqualShare)
	a := sumJob(t, "a", 100)
	b := sumJob(t, "b", 50)
	s.Submit(a)
	s.Submit(b)
	if _, err := s.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	// Find each proc's final r3 via the chip.
	sums := map[uint64]bool{}
	for _, pr := range s.Chip().Procs {
		sums[pr.Regs[3]] = true
	}
	if !sums[100*99/2] || !sums[50*49/2] {
		t.Fatalf("expected both job results, got %v", sums)
	}
}
