package conv

import (
	"testing"

	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

func traceOf(t testing.TB, p *prog.Program, setup func(m *exec.Machine)) []exec.TraceEntry {
	t.Helper()
	m := exec.NewMachine(p)
	m.Trace = &exec.Trace{}
	if setup != nil {
		setup(m)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return m.Trace.Entries
}

func loopProgram(t testing.TB, iters int64) *prog.Program {
	b := prog.NewBuilder()
	bb := b.Block("loop")
	i := bb.Read(2)
	acc := bb.Read(3)
	bb.Write(3, bb.Add(acc, i))
	i2 := bb.AddI(i, 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.OpI(isa.OpLt, i2, iters), "loop", "done")
	b.Block("done").Halt()
	return b.MustProgram("loop")
}

func TestConvRunsTrace(t *testing.T) {
	tr := traceOf(t, loopProgram(t, 500), nil)
	res := Run(tr, DefaultConfig())
	if res.Cycles == 0 || res.Insts == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.IPC <= 0 || res.IPC > 4 {
		t.Fatalf("IPC %v out of range for a 4-wide machine", res.IPC)
	}
}

func TestConvEmptyTrace(t *testing.T) {
	res := Run(nil, DefaultConfig())
	if res.Cycles != 0 || res.Insts != 0 {
		t.Fatalf("expected zero result, got %+v", res)
	}
}

func TestConvPredictableLoopFewMispredicts(t *testing.T) {
	tr := traceOf(t, loopProgram(t, 1000), nil)
	res := Run(tr, DefaultConfig())
	// The backward branch is taken 999 times and not-taken once; a gshare
	// should learn it almost perfectly.
	if res.BranchMispredicts > 20 {
		t.Fatalf("mispredicts = %d on a monotone loop", res.BranchMispredicts)
	}
}

func TestConvWiderMachineFaster(t *testing.T) {
	// A kernel with ILP: a wider machine should finish sooner.
	b := prog.NewBuilder()
	bb := b.Block("loop")
	for lane := 0; lane < 8; lane++ {
		x := bb.Read(10 + lane)
		bb.Write(10+lane, bb.MulI(bb.AddI(x, 3), 5))
	}
	i2 := bb.AddI(bb.Read(2), 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.OpI(isa.OpLt, i2, 400), "loop", "done")
	b.Block("done").Halt()
	tr := traceOf(t, b.MustProgram("loop"), nil)

	narrow := DefaultConfig()
	narrow.FetchWidth, narrow.IssueWidth, narrow.CommitWidth = 1, 1, 1
	wide := DefaultConfig()
	rNarrow := Run(tr, narrow)
	rWide := Run(tr, wide)
	if rWide.Cycles >= rNarrow.Cycles {
		t.Fatalf("wide (%d) not faster than narrow (%d)", rWide.Cycles, rNarrow.Cycles)
	}
}

func TestConvMemoryLatencyMatters(t *testing.T) {
	// Pointer-chase: each load depends on the previous one; a working set
	// larger than L1 makes the chase memory-bound.
	b := prog.NewBuilder()
	init := b.Block("init")
	init.Write(5, init.Read(1)) // cursor = base
	init.Branch("chase")
	bb := b.Block("chase")
	cur := bb.Read(5)
	next := bb.Load(cur, 0, 8, false)
	bb.Write(5, next)
	i2 := bb.AddI(bb.Read(2), 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.OpI(isa.OpLt, i2, 3000), "chase", "done")
	b.Block("done").Halt()
	p := b.MustProgram("init")

	tr := traceOf(t, p, func(m *exec.Machine) {
		m.Regs[1] = 0x400000
		// A ring with a large stride so every access misses L1.
		const nodes = 4096
		pm := m.Mem.(*exec.PageMem)
		for i := uint64(0); i < nodes; i++ {
			next := 0x400000 + ((i*17)%nodes)*4096
			pm.Write64(0x400000+((i*17+17-1*0)%nodes)*4096, next)
		}
		// Simpler deterministic ring: node i -> node (i+1)%nodes, stride 4KB.
		for i := uint64(0); i < nodes; i++ {
			pm.Write64(0x400000+i*4096, 0x400000+((i+1)%nodes)*4096)
		}
	})
	res := Run(tr, DefaultConfig())
	if res.L1DMisses < 1000 {
		t.Fatalf("expected heavy L1 misses, got %d", res.L1DMisses)
	}
	// Cycles per load should be near memory latency.
	cpl := float64(res.Cycles) / 3000
	if cpl < 20 {
		t.Fatalf("pointer chase too fast: %.1f cycles per load", cpl)
	}
}

func TestConvStoreForwarding(t *testing.T) {
	// Store then immediately load the same address in a loop: forwarding
	// keeps this fast despite the dependence.
	b := prog.NewBuilder()
	bb := b.Block("loop")
	base := bb.Read(1)
	v := bb.Read(3)
	bb.Store(base, v, 0, 8)
	v2 := bb.Load(base, 0, 8, false)
	bb.Write(3, bb.AddI(v2, 1))
	i2 := bb.AddI(bb.Read(2), 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.OpI(isa.OpLt, i2, 300), "loop", "done")
	b.Block("done").Halt()
	tr := traceOf(t, b.MustProgram("loop"), func(m *exec.Machine) { m.Regs[1] = 0x500000 })
	res := Run(tr, DefaultConfig())
	cpi := float64(res.Cycles) / float64(res.Insts)
	if cpi > 6 {
		t.Fatalf("store-forwarded loop too slow: CPI %.2f", cpi)
	}
}
