// Package conv implements a conventional out-of-order superscalar timing
// model (a Core2-class machine) driven by the linearized instruction
// traces produced by the functional executor.  The paper's Figure 5
// validates the TRIPS baseline against an Intel Core2 Duo in cycle counts;
// this model plays the Core2's role: 4-wide fetch/issue/commit, a
// ~96-entry reorder buffer, a gshare direction predictor with a BTB, a
// conventional cache hierarchy, and store-to-load forwarding.
package conv

import (
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/mem"
)

// Config parameterizes the conventional core.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROB         int
	PipelineLat uint64 // fetch-to-ready depth
	MispredPen  uint64

	GshareBits int
	BTBEntries int

	L1DBytes  int
	L1DAssoc  int
	L1DLat    uint64
	L1IBytes  int
	L1IAssoc  int
	L2Lat     uint64
	L2Bytes   int
	L2Assoc   int
	DRAMLat   uint64
	LineBytes int

	IntLat, MulLat, DivLat, FPLat, FDivLat uint64
}

// DefaultConfig returns the Core2-class configuration.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		IssueWidth:  4,
		CommitWidth: 4,
		ROB:         96,
		PipelineLat: 5,
		MispredPen:  12,

		GshareBits: 13,
		BTBEntries: 4096,

		L1DBytes:  32 << 10,
		L1DAssoc:  8,
		L1DLat:    3,
		L1IBytes:  32 << 10,
		L1IAssoc:  8,
		L2Lat:     14,
		L2Bytes:   4 << 20,
		L2Assoc:   8,
		DRAMLat:   150,
		LineBytes: 64,

		IntLat: 1, MulLat: 3, DivLat: 22, FPLat: 4, FDivLat: 16,
	}
}

// Result summarizes a conventional-core run.
type Result struct {
	Cycles            uint64
	Insts             uint64
	BranchMispredicts uint64
	L1DMisses         uint64
	L2Misses          uint64
	IPC               float64
}

type ring struct {
	base uint64
	used []uint8
	cap  uint8
}

func newRing(width int) *ring { return &ring{used: make([]uint8, 4096), cap: uint8(width)} }

func (r *ring) reserve(t uint64) uint64 {
	if t < r.base {
		t = r.base
	}
	for {
		if t >= r.base+uint64(len(r.used)) {
			for i := range r.used {
				r.used[i] = 0
			}
			r.base = t
		}
		i := (t - r.base) % uint64(len(r.used))
		if r.used[i] < r.cap {
			r.used[i]++
			return t
		}
		t++
	}
}

type recentStore struct {
	addr uint64
	size uint8
	done uint64
}

// Run simulates the trace on the conventional core.
func Run(entries []exec.TraceEntry, cfg Config) Result {
	var res Result
	n := len(entries)
	if n == 0 {
		return res
	}
	res.Insts = uint64(n)

	done := make([]uint64, n)
	commit := make([]uint64, n)

	l1d := mem.NewCache(cfg.L1DBytes, cfg.L1DAssoc, cfg.LineBytes)
	l1i := mem.NewCache(cfg.L1IBytes, cfg.L1IAssoc, cfg.LineBytes)
	l2 := mem.NewCache(cfg.L2Bytes, cfg.L2Assoc, cfg.LineBytes)

	gshare := make([]uint8, 1<<cfg.GshareBits)
	for i := range gshare {
		gshare[i] = 1 // weakly not-taken
	}
	btb := make([]uint64, cfg.BTBEntries)
	var ghist uint64

	issue := newRing(cfg.IssueWidth)
	loadPort := newRing(1)
	storePort := newRing(1)
	commitRing := newRing(cfg.CommitWidth)

	stores := make([]recentStore, 0, 64)
	addStore := func(s recentStore) {
		if len(stores) == 64 {
			copy(stores, stores[1:])
			stores = stores[:63]
		}
		stores = append(stores, s)
	}

	memAccess := func(addr uint64, at uint64, isStore bool) uint64 {
		if _, hit := l1d.Access(addr, at); hit {
			return at + cfg.L1DLat
		}
		res.L1DMisses++
		var fill uint64
		if _, hit := l2.Access(addr, at); hit {
			fill = at + cfg.L1DLat + cfg.L2Lat
		} else {
			res.L2Misses++
			fill = at + cfg.L1DLat + cfg.L2Lat + cfg.DRAMLat
			l2.Fill(addr, fill)
		}
		l1d.Fill(addr, fill)
		_ = isStore
		return fill
	}

	opLat := func(e *exec.TraceEntry) uint64 {
		switch e.Op {
		case isa.OpMul:
			return cfg.MulLat
		case isa.OpDiv, isa.OpDivU, isa.OpMod:
			return cfg.DivLat
		case isa.OpFDiv, isa.OpFSqrt:
			return cfg.FDivLat
		}
		if e.Op.IsFP() {
			return cfg.FPLat
		}
		return cfg.IntLat
	}

	var fetchAt uint64
	fetchSlots := 0
	var lastCommit uint64

	for i := range entries {
		e := &entries[i]

		// Fetch: FetchWidth per cycle; a taken branch ends the group.
		if fetchSlots >= cfg.FetchWidth {
			fetchAt++
			fetchSlots = 0
		}
		// I-cache.
		if _, hit := l1i.Access(e.PC, fetchAt); !hit {
			var fill uint64
			if _, h2 := l2.Access(e.PC, fetchAt); h2 {
				fill = fetchAt + cfg.L2Lat
			} else {
				fill = fetchAt + cfg.L2Lat + cfg.DRAMLat
				l2.Fill(e.PC, fill)
			}
			l1i.Fill(e.PC, fill)
			fetchAt = fill
			fetchSlots = 0
		}
		// ROB occupancy: entry i needs entry i-ROB committed.
		if i >= cfg.ROB && commit[i-cfg.ROB] > fetchAt {
			fetchAt = commit[i-cfg.ROB]
			fetchSlots = 0
		}
		myFetch := fetchAt
		fetchSlots++

		ready := myFetch + cfg.PipelineLat
		if e.Src1 >= 0 && done[e.Src1] > ready {
			ready = done[e.Src1]
		}
		if e.Src2 >= 0 && done[e.Src2] > ready {
			ready = done[e.Src2]
		}

		switch {
		case e.IsLoad:
			// Store-to-load dependence: wait for the youngest older
			// overlapping store.
			forward := false
			for j := len(stores) - 1; j >= 0; j-- {
				s := &stores[j]
				if s.addr < e.Addr+uint64(e.Size) && e.Addr < s.addr+uint64(s.size) {
					if s.done > ready {
						ready = s.done
					}
					forward = true
					break
				}
			}
			at := loadPort.reserve(issue.reserve(ready))
			if forward {
				done[i] = at + 1
			} else {
				done[i] = memAccess(e.Addr, at, false)
			}
		case e.IsStore:
			at := storePort.reserve(issue.reserve(ready))
			done[i] = at + 1
			memAccess(e.Addr, at, true) // warms the cache; store buffer hides latency
			addStore(recentStore{addr: e.Addr, size: e.Size, done: done[i]})
		case e.IsBranch:
			at := issue.reserve(ready)
			done[i] = at + cfg.IntLat
			// Prediction.
			idx := (e.PC ^ ghist) & uint64(len(gshare)-1)
			predTaken := gshare[idx] >= 2
			correct := predTaken == e.Taken
			if e.Taken {
				bi := (e.PC >> 2) % uint64(len(btb))
				if btb[bi] != e.Target {
					correct = false
				}
				btb[bi] = e.Target
			}
			if e.Taken && gshare[idx] < 3 {
				gshare[idx]++
			}
			if !e.Taken && gshare[idx] > 0 {
				gshare[idx]--
			}
			ghist = ghist<<1 | b2u(e.Taken)
			if !correct {
				res.BranchMispredicts++
				redirect := done[i] + cfg.MispredPen
				if redirect > fetchAt {
					fetchAt = redirect
					fetchSlots = 0
				}
			} else if e.Taken {
				// Taken branches end the fetch group.
				fetchAt++
				fetchSlots = 0
			}
		default:
			at := issue.reserve(ready)
			done[i] = at + opLat(e)
		}

		// In-order commit.
		c := done[i]
		if lastCommit > c {
			c = lastCommit
		}
		c = commitRing.reserve(c)
		commit[i] = c
		lastCommit = c
	}
	res.Cycles = lastCommit + 1
	if res.Cycles > 0 {
		res.IPC = float64(res.Insts) / float64(res.Cycles)
	}
	return res
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
