// Package flight implements the simulator's flight recorder: one
// fixed-size ring buffer of compact binary event records per event
// domain, written lock-free by the goroutine that owns the domain and
// drained post-mortem into text, JSON or Chrome-trace form.
//
// The recorder follows the instrumentation discipline of
// internal/telemetry: the simulator holds *Ring pointers that are nil
// unless Chip.EnableFlight armed the recorder, every hot-path write
// goes through the nil-receiver-safe Add, and a disabled recorder
// therefore costs exactly one nil check per record site (enforced by
// the telemetry-cost lint analyzer, which treats this package as an
// instrumentation package).
//
// Concurrency contract: a ring has a single writer — the goroutine
// currently advancing its domain (the domain's worker during a
// parallel window, or the engine goroutine in the serial schedulers
// and at window boundaries, where the monitor's quiescence guarantees
// exclusive access).  Dumps are taken only at quiescent points
// (window boundaries, post-run, post-panic on the engine goroutine),
// so no atomics are needed on the write path.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind enumerates the record types a ring can hold.
type Kind uint8

const (
	// Per-block pipeline milestones, recorded by the owning processor.
	KFetch    Kind = iota // A=block address, B=block sequence number
	KDispatch             // A=block sequence number, B=dispatch latency
	KIssue                // first instruction issue of a block; A=seq
	KCommit               // A=block sequence number, B=fetch-to-commit latency
	KFlush                // A=block sequence number, B=restart address

	// Scheduler milestones, recorded by the domain/engine.
	KWindowOpen     // A=window limit cycle
	KWindowClose    // A=window limit cycle, B=events executed in window
	KBarrierArrive  // A=window limit cycle
	KBarrierRelease // A=boundary cycle, B=end-of-window slack cycles
	KSharedEnter    // shared L2/DRAM section granted; A=grant ordinal
	KSharedExit     // shared section released; A=grant ordinal
	KInval          // deferred cross-domain inval delivered; A=address, B=defer sequence
	KCompose        // processor adopted (A=proc id, B=cores) or domains merged (A=survivor, B=absorbed)
	KStall          // watchdog fired; A=window limit cycle, B=events executed

	numKinds
)

var kindNames = [numKinds]string{
	"fetch", "dispatch", "issue", "commit", "flush",
	"window.open", "window.close", "barrier.arrive", "barrier.release",
	"shared.enter", "shared.exit", "inval", "compose", "stall",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Rec is one 32-byte flight record.  Cycle is the simulated cycle the
// record was written at; the meaning of A and B depends on Kind (see
// the Kind constants).  Proc and Core are -1 when the record is not
// attributable to a processor or core.
type Rec struct {
	Cycle uint64 `json:"cycle"`
	A     uint64 `json:"a"`
	B     uint64 `json:"b"`
	Kind  Kind   `json:"kind"`
	Dom   uint16 `json:"dom"`
	Proc  int16  `json:"proc"`
	Core  int16  `json:"core"`
}

// DefaultEvents is the per-ring record capacity used when the caller
// does not pick one (tflexsim -flight-events, tflex.RunConfig).
const DefaultEvents = 4096

// Ring is a fixed-capacity single-writer record ring.  Once full it
// overwrites the oldest records, so a dump always holds the most
// recent window of activity.
type Ring struct {
	dom  int
	mask uint64
	n    uint64 // records ever written; n & mask is the next slot
	rec  []Rec
}

// newRing returns a ring for domain dom holding size records (rounded
// up to a power of two, minimum 64).
func newRing(dom, size int) *Ring {
	n := 64
	for n < size {
		n <<= 1
	}
	return &Ring{dom: dom, mask: uint64(n - 1), rec: make([]Rec, n)}
}

// Add appends one record.  Nil-receiver safe: on a disabled recorder
// the ring pointer is nil and the call is a single branch.
func (r *Ring) Add(k Kind, cycle uint64, proc, core int16, a, b uint64) {
	if r == nil {
		return
	}
	rc := &r.rec[r.n&r.mask]
	r.n++
	rc.Cycle, rc.A, rc.B = cycle, a, b
	rc.Kind, rc.Dom, rc.Proc, rc.Core = k, uint16(r.dom), proc, core
}

// Len reports how many records the ring currently holds.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if r.n < uint64(len(r.rec)) {
		return int(r.n)
	}
	return len(r.rec)
}

// Written reports how many records were ever written (>= Len when the
// ring has wrapped).
func (r *Ring) Written() uint64 {
	if r == nil {
		return 0
	}
	return r.n
}

// snapshot copies the ring's live records in write order.
func (r *Ring) snapshot() RingDump {
	d := RingDump{Dom: r.dom, Written: r.n}
	n := uint64(len(r.rec))
	start := uint64(0)
	if r.n > n {
		start = r.n - n
	}
	d.Recs = make([]Rec, 0, r.n-start)
	for i := start; i < r.n; i++ {
		d.Recs = append(d.Recs, r.rec[i&r.mask])
	}
	return d
}

// Recorder owns one ring per event domain.  Rings are created at
// domain creation (a quiescent composition point); the mutex guards
// only the ring list, never the per-ring write path.
type Recorder struct {
	mu    sync.Mutex
	size  int
	rings []*Ring
}

// NewRecorder returns a recorder whose rings hold size records each
// (<= 0 selects DefaultEvents).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultEvents
	}
	return &Recorder{size: size}
}

// NewRing allocates and registers the ring for domain dom.
func (c *Recorder) NewRing(dom int) *Ring {
	r := newRing(dom, c.size)
	c.mu.Lock()
	c.rings = append(c.rings, r)
	c.mu.Unlock()
	return r
}

// Events reports the per-ring record capacity.
func (c *Recorder) Events() int { return c.size }

// Dump snapshots every ring (including rings of domains that have
// since been merged away).  Call only from a quiescent point.
func (c *Recorder) Dump() *Dump {
	c.mu.Lock()
	rings := append([]*Ring(nil), c.rings...)
	c.mu.Unlock()
	d := &Dump{Events: c.size}
	for _, r := range rings {
		d.Rings = append(d.Rings, r.snapshot())
	}
	sort.Slice(d.Rings, func(i, j int) bool { return d.Rings[i].Dom < d.Rings[j].Dom })
	return d
}

// RingDump is the drained form of one ring.
type RingDump struct {
	Dom     int    `json:"dom"`
	Written uint64 `json:"written"` // > len(Recs) means the ring wrapped
	Recs    []Rec  `json:"records"`
}

// Dump is a point-in-time snapshot of every ring, serializable to
// JSON (WriteJSON/ParseDump), human-readable text (WriteText) and the
// Chrome trace-event format (WriteChrome).
type Dump struct {
	Events int        `json:"events"`
	Rings  []RingDump `json:"rings"`
}

// WriteJSON serializes the dump as indented JSON, the on-disk form
// written by tflexsim -flight and parsed back by ParseDump.
func (d *Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ParseDump reads a dump previously written by WriteJSON and
// validates its record kinds.
func ParseDump(r io.Reader) (*Dump, error) {
	var d Dump
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("flight dump: %w", err)
	}
	for _, ring := range d.Rings {
		if uint64(len(ring.Recs)) > ring.Written {
			return nil, fmt.Errorf("flight dump: ring %d holds %d records but claims only %d written",
				ring.Dom, len(ring.Recs), ring.Written)
		}
		for _, rc := range ring.Recs {
			if rc.Kind >= numKinds {
				return nil, fmt.Errorf("flight dump: ring %d has unknown record kind %d", ring.Dom, rc.Kind)
			}
		}
	}
	return &d, nil
}

// WriteText renders the dump as one line per record.
func (d *Dump) WriteText(w io.Writer) error {
	for _, ring := range d.Rings {
		if _, err := fmt.Fprintf(w, "ring dom=%d records=%d written=%d\n",
			ring.Dom, len(ring.Recs), ring.Written); err != nil {
			return err
		}
		for _, rc := range ring.Recs {
			if _, err := fmt.Fprintf(w, "  @%-10d %-15s dom=%d proc=%d core=%d a=%#x b=%d\n",
				rc.Cycle, rc.Kind, rc.Dom, rc.Proc, rc.Core, rc.A, rc.B); err != nil {
				return err
			}
		}
	}
	return nil
}

// chromeEvent mirrors the Chrome trace-event JSON shape.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    uint64            `json:"ts"`
	Dur   uint64            `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]uint64 `json:"args,omitempty"`
}

// WriteChrome renders the dump in the Chrome trace-event format (load
// in chrome://tracing or ui.perfetto.dev): one process track per
// domain, window open/close pairs as duration spans, every other
// record as a thread-scoped instant event on the core's track.
func (d *Dump) WriteChrome(w io.Writer) error {
	var evs []chromeEvent
	for _, ring := range d.Rings {
		var open *Rec
		for i := range ring.Recs {
			rc := &ring.Recs[i]
			switch rc.Kind {
			case KWindowOpen:
				open = rc
			case KWindowClose:
				if open != nil {
					evs = append(evs, chromeEvent{
						Name: "window", Phase: "X", TS: open.Cycle,
						Dur: rc.Cycle - open.Cycle + 1, PID: ring.Dom, TID: -1,
						Args: map[string]uint64{"limit": rc.A, "events": rc.B},
					})
					open = nil
				}
			default:
				evs = append(evs, chromeEvent{
					Name: rc.Kind.String(), Phase: "i", TS: rc.Cycle,
					PID: ring.Dom, TID: int(rc.Core), Scope: "t",
					Args: map[string]uint64{"a": rc.A, "b": rc.B},
				})
			}
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		return evs[i].PID < evs[j].PID
	})
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{evs})
}

// Records returns every record of the given kinds (all kinds when
// none are named) across all rings, in per-ring write order.
func (d *Dump) Records(kinds ...Kind) []Rec {
	want := func(Kind) bool { return true }
	if len(kinds) > 0 {
		set := map[Kind]bool{}
		for _, k := range kinds {
			set[k] = true
		}
		want = func(k Kind) bool { return set[k] }
	}
	var out []Rec
	for _, ring := range d.Rings {
		for _, rc := range ring.Recs {
			if want(rc.Kind) {
				out = append(out, rc)
			}
		}
	}
	return out
}

// DomainStats is the live per-domain scheduler snapshot served by the
// obs server's /domains endpoint and aggregated by tflexexp's
// parallel-efficiency summary.  All counters are derived from the
// merged event order, so they are deterministic at any
// ParallelDomains/GOMAXPROCS setting; SharedGrants/SharedWait stay
// zero outside the parallel scheduler, where no arbiter runs.
type DomainStats struct {
	Dom     int    `json:"dom"`
	Procs   int    `json:"procs"`
	Cores   int    `json:"cores"`
	Now     uint64 `json:"now"`
	Windows uint64 `json:"windows"`
	Events  uint64 `json:"events"`
	// BarrierWait accumulates each window's end-of-window slack: how
	// many cycles of the window the domain spent idle after its last
	// event, clamped to the window width.
	BarrierWait  uint64 `json:"barrier_wait_cycles"`
	SharedGrants uint64 `json:"shared_grants"`
	SharedWait   uint64 `json:"shared_wait"`
	Invals       uint64 `json:"invals_delivered"`
	InboxDepth   int    `json:"inbox_depth"`
	RingRecords  uint64 `json:"ring_records"`
}
