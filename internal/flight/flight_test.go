package flight

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"unsafe"
)

func TestRecIs32Bytes(t *testing.T) {
	if s := unsafe.Sizeof(Rec{}); s != 32 {
		t.Fatalf("Rec is %d bytes, want 32", s)
	}
}

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Add(KFetch, 1, 0, 0, 2, 3) // must not panic
	if r.Len() != 0 || r.Written() != 0 {
		t.Fatalf("nil ring reports Len=%d Written=%d", r.Len(), r.Written())
	}
}

func TestRingWrap(t *testing.T) {
	rec := NewRecorder(64)
	r := rec.NewRing(3)
	for i := 0; i < 100; i++ {
		r.Add(KCommit, uint64(i), 1, 2, uint64(i), 0)
	}
	if r.Len() != 64 || r.Written() != 100 {
		t.Fatalf("Len=%d Written=%d, want 64/100", r.Len(), r.Written())
	}
	d := rec.Dump()
	if len(d.Rings) != 1 {
		t.Fatalf("dump has %d rings, want 1", len(d.Rings))
	}
	recs := d.Rings[0].Recs
	if len(recs) != 64 {
		t.Fatalf("dump holds %d records, want 64", len(recs))
	}
	// Oldest surviving record is write #36, newest #99, in order.
	for i, rc := range recs {
		if want := uint64(36 + i); rc.Cycle != want {
			t.Fatalf("record %d has cycle %d, want %d", i, rc.Cycle, want)
		}
		if rc.Dom != 3 || rc.Proc != 1 || rc.Core != 2 {
			t.Fatalf("record %d misattributed: %+v", i, rc)
		}
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	rec := NewRecorder(0)
	r0 := rec.NewRing(0)
	r1 := rec.NewRing(1)
	r0.Add(KWindowOpen, 0, -1, -1, 16, 0)
	r0.Add(KFetch, 3, 0, 2, 0x80, 7)
	r0.Add(KWindowClose, 15, -1, -1, 16, 2)
	r1.Add(KSharedEnter, 9, -1, -1, 1, 0)
	d := rec.Dump()

	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ParseDump(&buf)
	if err != nil {
		t.Fatalf("ParseDump: %v", err)
	}
	a, _ := json.Marshal(d)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("round trip mismatch:\n%s\n%s", a, b)
	}
}

func TestParseDumpRejectsBadKind(t *testing.T) {
	src := `{"events":64,"rings":[{"dom":0,"written":1,"records":[{"cycle":1,"kind":200}]}]}`
	if _, err := ParseDump(strings.NewReader(src)); err == nil {
		t.Fatal("ParseDump accepted an unknown record kind")
	}
}

func TestWriteTextAndChrome(t *testing.T) {
	rec := NewRecorder(0)
	r := rec.NewRing(2)
	r.Add(KWindowOpen, 0, -1, -1, 16, 0)
	r.Add(KCommit, 5, 0, 1, 42, 9)
	r.Add(KWindowClose, 12, -1, -1, 16, 1)
	d := rec.Dump()

	var text bytes.Buffer
	if err := d.WriteText(&text); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, want := range []string{"ring dom=2", "commit", "window.open"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text dump lacks %q:\n%s", want, text.String())
		}
	}

	var chrome bytes.Buffer
	if err := d.WriteChrome(&chrome); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &trace); err != nil {
		t.Fatalf("chrome dump is not JSON: %v", err)
	}
	// The open/close pair folds into one X span plus the commit instant.
	if len(trace.TraceEvents) != 2 {
		t.Fatalf("chrome dump has %d events, want 2: %s", len(trace.TraceEvents), chrome.String())
	}
}

func TestRecordsFilter(t *testing.T) {
	rec := NewRecorder(0)
	r := rec.NewRing(0)
	r.Add(KFetch, 1, 0, 0, 0, 0)
	r.Add(KStall, 2, -1, -1, 16, 99)
	d := rec.Dump()
	if got := d.Records(KStall); len(got) != 1 || got[0].B != 99 {
		t.Fatalf("Records(KStall) = %+v", got)
	}
	if got := d.Records(); len(got) != 2 {
		t.Fatalf("Records() = %d records, want 2", len(got))
	}
}
