// Package alloc implements the core-allocation policies of paper §7: the
// optimal dynamic-programming assignment of cores to applications that
// maximizes weighted speedup on a TFlex CLP, the fixed-granularity CMP-k
// policies, and the hypothetical symmetric "variable best" CMP.
//
// Following the paper's methodology, each application's performance is an
// offline cores→speedup function measured by the Figure 6 experiment
// (speedup relative to one core), and weighted speedup is the sum of
// per-application speedups at their assigned core counts.
package alloc

import "sort"

// Curve maps a composition size to the application's speedup over one core.
type Curve map[int]float64

// At returns the speedup at exactly k cores (0 if unmeasured).
func (c Curve) At(k int) float64 { return c[k] }

// Sizes returns the measured composition sizes in ascending order.
func (c Curve) Sizes() []int {
	var s []int
	for k := range c {
		s = append(s, k)
	}
	sort.Ints(s)
	return s
}

// Best returns the composition size with the highest speedup.
func (c Curve) Best() (k int, sp float64) {
	for _, size := range c.Sizes() {
		if c[size] > sp {
			k, sp = size, c[size]
		}
	}
	return
}

// BestWS computes the optimal asymmetric assignment: core counts per
// application (each a measured size, minimum one core) summing to at most
// totalCores, maximizing the weighted speedup.  This is the paper's
// dynamic-programming algorithm.
func BestWS(curves []Curve, totalCores int) (assign []int, ws float64) {
	n := len(curves)
	if n == 0 {
		return nil, 0
	}
	const neg = -1e18
	// f[i][c]: best WS for applications i.. with c cores available.
	f := make([][]float64, n+1)
	choice := make([][]int, n+1)
	for i := range f {
		f[i] = make([]float64, totalCores+1)
		choice[i] = make([]int, totalCores+1)
	}
	for i := n - 1; i >= 0; i-- {
		sizes := curves[i].Sizes()
		for c := 0; c <= totalCores; c++ {
			f[i][c] = neg
			for _, s := range sizes {
				if s > c {
					break
				}
				v := curves[i].At(s) + f[i+1][c-s]
				if v > f[i][c] {
					f[i][c] = v
					choice[i][c] = s
				}
			}
		}
	}
	if f[0][totalCores] <= neg/2 {
		return nil, 0 // infeasible: more applications than cores
	}
	assign = make([]int, n)
	c := totalCores
	for i := 0; i < n; i++ {
		assign[i] = choice[i][c]
		c -= assign[i]
	}
	return assign, f[0][totalCores]
}

// FixedWS computes weighted speedup on a fixed CMP of processors with k
// cores each.  Per the paper's methodology, when the workload exceeds the
// processor count the weighted speedup stays constant at capacity (the
// surplus applications contribute nothing extra).
func FixedWS(curves []Curve, k, totalCores int) float64 {
	procs := totalCores / k
	ws := 0.0
	for i, c := range curves {
		if i >= procs {
			break
		}
		ws += c.At(k)
	}
	return ws
}

// VariableBestWS computes the best symmetric dynamic CMP (paper's "VB
// CMP"): all processors share one granularity, chosen per workload.
func VariableBestWS(curves []Curve, totalCores int, sizes []int) (bestK int, ws float64) {
	for _, k := range sizes {
		v := FixedWS(curves, k, totalCores)
		if v > ws {
			ws = v
			bestK = k
		}
	}
	return
}

// Histogram counts how many applications received each composition size.
func Histogram(assign []int) map[int]int {
	h := map[int]int{}
	for _, s := range assign {
		h[s]++
	}
	return h
}
