package alloc

import (
	"math"
	"testing"
	"testing/quick"
)

func linearCurve(slope float64) Curve {
	c := Curve{}
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		c[k] = 1 + slope*math.Log2(float64(k))
	}
	return c
}

func flatCurve() Curve {
	c := Curve{}
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		c[k] = 1.0
	}
	return c
}

func TestBestWSPrefersScalableApps(t *testing.T) {
	// One highly scalable app and three flat ones on 32 cores: the
	// scalable app should receive the most cores.
	curves := []Curve{linearCurve(1.0), flatCurve(), flatCurve(), flatCurve()}
	assign, ws := BestWS(curves, 32)
	if assign == nil {
		t.Fatal("infeasible?")
	}
	if assign[0] <= assign[1] {
		t.Fatalf("scalable app got %d cores, flat got %d", assign[0], assign[1])
	}
	total := 0
	for _, a := range assign {
		total += a
	}
	if total > 32 {
		t.Fatalf("allocated %d cores", total)
	}
	// WS must be at least the all-1-core baseline.
	if ws < 4 {
		t.Fatalf("ws = %v", ws)
	}
}

func TestBestWSOptimalVsBruteForce(t *testing.T) {
	curves := []Curve{linearCurve(0.8), linearCurve(0.3), linearCurve(0.5)}
	assign, ws := BestWS(curves, 16)
	// Brute force over all measured size triples.
	sizes := []int{1, 2, 4, 8, 16, 32}
	best := 0.0
	for _, a := range sizes {
		for _, b := range sizes {
			for _, c := range sizes {
				if a+b+c > 16 {
					continue
				}
				v := curves[0].At(a) + curves[1].At(b) + curves[2].At(c)
				if v > best {
					best = v
				}
			}
		}
	}
	if math.Abs(ws-best) > 1e-9 {
		t.Fatalf("DP ws %v != brute force %v (assign %v)", ws, best, assign)
	}
}

func TestBestWSInfeasible(t *testing.T) {
	curves := make([]Curve, 40) // 40 apps, 32 cores
	for i := range curves {
		curves[i] = flatCurve()
	}
	if assign, _ := BestWS(curves, 32); assign != nil {
		t.Fatal("40 apps on 32 cores should be infeasible")
	}
}

func TestBestWSNeverWorseThanSymmetric(t *testing.T) {
	f := func(s1, s2, s3, s4 uint8) bool {
		curves := []Curve{
			linearCurve(float64(s1%40) / 20),
			linearCurve(float64(s2%40) / 20),
			linearCurve(float64(s3%40) / 20),
			linearCurve(float64(s4%40) / 20),
		}
		_, ws := BestWS(curves, 32)
		_, vb := VariableBestWS(curves, 32, []int{1, 2, 4, 8, 16, 32})
		return ws >= vb-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedWSCapacityRule(t *testing.T) {
	curves := []Curve{flatCurve(), flatCurve(), flatCurve(), flatCurve()}
	// CMP-16 on 32 cores: 2 processors; 4 apps => WS stays at 2 apps.
	if ws := FixedWS(curves, 16, 32); ws != 2 {
		t.Fatalf("CMP-16 ws = %v, want 2", ws)
	}
	if ws := FixedWS(curves, 8, 32); ws != 4 {
		t.Fatalf("CMP-8 ws = %v, want 4", ws)
	}
}

func TestVariableBestPicksGoodGranularity(t *testing.T) {
	// Two very scalable apps: VB should pick 16 cores each.
	curves := []Curve{linearCurve(1.5), linearCurve(1.5)}
	k, _ := VariableBestWS(curves, 32, []int{1, 2, 4, 8, 16, 32})
	if k != 16 {
		t.Fatalf("VB granularity = %d, want 16", k)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{4, 4, 8, 2})
	if h[4] != 2 || h[8] != 1 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestCurveBest(t *testing.T) {
	c := Curve{1: 1, 2: 1.5, 4: 2.5, 8: 2.0}
	k, sp := c.Best()
	if k != 4 || sp != 2.5 {
		t.Fatalf("best = (%d, %v)", k, sp)
	}
}
