package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/clp-sim/tflex/internal/critpath"
	"github.com/clp-sim/tflex/internal/telemetry"
)

func TestMetricsEndpointServesPublishedSnapshot(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Before any publish: an empty JSON object, not an error.
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 || strings.TrimSpace(string(body)) != "{}" {
		t.Fatalf("empty metrics = %d %q", res.StatusCode, body)
	}

	s.PublishMetrics(telemetry.Snapshot{"proc0.cycles": 42, "bad.mean": nan()})
	res, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]float64
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if snap["proc0.cycles"] != 42 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap["bad.mean"] != 0 {
		t.Fatalf("non-finite value must be zeroed, got %v", snap["bad.mean"])
	}
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}

func TestCritPathEndpoint(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var bd critpath.Breakdown
	bd[critpath.Commit] = 10
	bd[critpath.NoCHop] = 5
	s.Rolling().Add(bd)

	res, err := http.Get(ts.URL + "/critpath")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var doc struct {
		Blocks     uint64            `json:"blocks"`
		Cycles     uint64            `json:"cycles"`
		Categories map[string]uint64 `json:"categories"`
	}
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Blocks != 1 || doc.Cycles != 15 || doc.Categories["commit"] != 10 {
		t.Fatalf("critpath doc = %+v", doc)
	}
}

func TestEventsStreamDeliversSamples(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	// The subscriber registers before the handler writes the header, so
	// poll-publish until the first line lands.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
				s.PublishSample(4096, []string{"proc0.window.occupancy"}, []float64{3})
				time.Sleep(time.Millisecond)
			}
		}
	}()
	r := bufio.NewReader(res.Body)
	line, err := r.ReadString('\n')
	done <- struct{}{}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "data: ") {
		t.Fatalf("SSE line = %q", line)
	}
	var ev struct {
		Cycle  uint64             `json:"cycle"`
		Series map[string]float64 `json:"series"`
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Cycle != 4096 || ev.Series["proc0.window.occupancy"] != 3 {
		t.Fatalf("event = %+v", ev)
	}
}

func TestPprofMounted(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("pprof cmdline = %d", res.StatusCode)
	}
}

func TestStartCloseAndIndex(t *testing.T) {
	s := New()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", s.Addr(), addr)
	}
	res, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), "/critpath") {
		t.Fatalf("index = %q", body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestConcurrentPublishAndScrape is the package-level race gate:
// publishers (simulating chip event loops) and scrapers (HTTP clients)
// hammer the server concurrently.  Run under -race in CI.
func TestConcurrentPublishAndScrape(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var pubs, scrapers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		pubs.Add(1)
		go func(g int) {
			defer pubs.Done()
			var bd critpath.Breakdown
			bd[critpath.ALUOccupancy] = uint64(g + 1)
			for i := 0; i < 200; i++ {
				s.PublishMetrics(telemetry.Snapshot{"x": float64(i)})
				s.PublishSample(uint64(i), []string{"x"}, []float64{float64(i)})
				s.Rolling().Add(bd)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/critpath"} {
					res, err := http.Get(ts.URL + path)
					if err != nil {
						return
					}
					io.Copy(io.Discard, res.Body) //nolint:errcheck
					res.Body.Close()
				}
			}
		}()
	}
	pubs.Wait()
	close(stop)
	scrapers.Wait()
	if snap := s.Rolling().Snapshot(); snap.Blocks != 400 {
		t.Fatalf("rolling blocks = %d, want 400", snap.Blocks)
	}
}
