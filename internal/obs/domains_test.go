package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/flight"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
	"github.com/clp-sim/tflex/internal/sim"
)

func loopProgram(t *testing.T) *prog.Program {
	b := prog.NewBuilder()
	bb := b.Block("loop")
	i := bb.Read(2)
	acc := bb.Read(3)
	n := bb.Read(1)
	bb.Write(3, bb.Add(acc, i))
	i2 := bb.AddI(i, 1)
	bb.Write(2, i2)
	bb.BranchIf(bb.Op(isa.OpLt, i2, n), "loop", "done")
	b.Block("done").Halt()
	p, err := b.Program("loop")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDomainsAndFlightUnderParallelRun is the end-to-end race gate for
// the scheduler-observability endpoints: a live ParallelDomains=4 chip
// publishes from its sampler notify hook (the quiescent point) while
// HTTP scrapers hammer /domains and /flight.  Run under -race in CI.
// Beyond freedom from races it checks the acceptance contract: /domains
// reports barrier-wait and shared-section stats for all four domains,
// and /flight eventually serves a parseable dump on demand.
func TestDomainsAndFlightUnderParallelRun(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Before any publish: an empty array, not an error.
	res, err := http.Get(ts.URL + "/domains")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 || strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("empty /domains = %d %q", res.StatusCode, body)
	}

	opts := sim.DefaultOptions()
	opts.ParallelDomains = 4
	chip := sim.New(opts)
	chip.EnableFlight(1024)
	p := loopProgram(t)
	for _, at := range [][2]int{{0, 0}, {2, 0}, {0, 1}, {2, 1}} {
		pr, err := chip.AddProc(compose.MustRect(at[0], at[1], 2), p)
		if err != nil {
			t.Fatal(err)
		}
		pr.Regs[1] = 20_000
	}
	// Publish from the sampler notify hook: it fires at window
	// boundaries under the parallel engine, where every domain is
	// quiescent, so DomainStats/FlightDump reads are safe.
	chip.SampleEvery(256).SetNotify(func(uint64, []string, []float64) {
		s.PublishDomains(chip.DomainStats())
		if s.FlightWanted() {
			s.PublishFlight(chip.FlightDump())
		}
	})

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	var flightMu sync.Mutex
	var liveFlight *flight.Dump // first parseable /flight body seen mid-run
	for g := 0; g < 3; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := http.Get(ts.URL + "/domains")
				if err != nil {
					return
				}
				var ds []flight.DomainStats
				derr := json.NewDecoder(res.Body).Decode(&ds)
				res.Body.Close()
				if derr != nil {
					t.Errorf("/domains mid-run: %v", derr)
					return
				}
				// Snapshot consistency: all four domains or none yet,
				// never a torn prefix.
				if len(ds) != 0 && len(ds) != 4 {
					t.Errorf("/domains served %d domains, want 0 or 4", len(ds))
					return
				}

				res, err = http.Get(ts.URL + "/flight")
				if err != nil {
					return
				}
				fb, _ := io.ReadAll(res.Body)
				res.Body.Close()
				if bytes.Contains(fb, []byte("pending")) {
					continue // request registered; dump lands at the next boundary
				}
				d, perr := flight.ParseDump(bytes.NewReader(fb))
				if perr != nil {
					t.Errorf("/flight mid-run unparseable: %v", perr)
					return
				}
				flightMu.Lock()
				if liveFlight == nil {
					liveFlight = d
				}
				flightMu.Unlock()
			}
		}()
	}

	if err := chip.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	close(stop)
	scrapers.Wait()

	// Final publish from the quiescent post-run point, as tflex.Run does.
	s.PublishDomains(chip.DomainStats())
	if s.FlightWanted() {
		s.PublishFlight(chip.FlightDump())
	}

	res, err = http.Get(ts.URL + "/domains")
	if err != nil {
		t.Fatal(err)
	}
	var ds []flight.DomainStats
	if err := json.NewDecoder(res.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(ds) != 4 {
		t.Fatalf("final /domains served %d domains, want 4", len(ds))
	}
	var windows, grants, barrier uint64
	for _, d := range ds {
		windows += d.Windows
		grants += d.SharedGrants
		barrier += d.BarrierWait
	}
	if windows == 0 {
		t.Error("no lockstep windows reported across four parallel domains")
	}
	if grants == 0 {
		t.Error("no shared-section grants reported (cold-miss L2 fills should force some)")
	}
	if barrier == 0 {
		t.Error("no barrier wait cycles reported across four parallel domains")
	}

	flightMu.Lock()
	got := liveFlight
	flightMu.Unlock()
	if got == nil {
		// The run may have outpaced the two-scrape handshake; the
		// post-run publish must still satisfy a fresh request pair.
		http.Get(ts.URL + "/flight") //nolint:errcheck // arms the want flag
		s.PublishFlight(chip.FlightDump())
		res, err := http.Get(ts.URL + "/flight")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		got, err = flight.ParseDump(res.Body)
		if err != nil {
			t.Fatalf("post-run /flight unparseable: %v", err)
		}
	}
	if len(got.Rings) == 0 {
		t.Fatal("flight dump served over /flight has no rings")
	}
	if len(got.Records(flight.KBarrierRelease)) == 0 {
		t.Error("flight dump has no barrier-release records from the parallel run")
	}
}
