// Package obs is the live observability server: a stdlib-only net/http
// endpoint that exposes a running simulation's telemetry and
// critical-path attribution while multi-minute sweeps are in flight.
//
// Endpoints:
//
//	/metrics      latest telemetry registry snapshot (JSON)
//	/critpath     rolling critical-path attribution aggregate (JSON)
//	/events       SSE stream of cycle-sampler rows
//	/domains      latest per-domain scheduler statistics (JSON)
//	/flight       on-demand flight-recorder ring dump (JSON)
//	/debug/pprof  the standard Go profiling endpoints
//
// Sharing model: the simulator's counter views are plain fields written
// by the chip's event-loop goroutine, so scraping them directly from an
// HTTP handler would race.  Instead the sim side *publishes*: the cycle
// sampler's notify hook (and a final publish after the run) calls
// PublishMetrics/PublishSample from the goroutine that owns the
// counters, and handlers serve only the last published copy.  The
// /critpath aggregate is a critpath.Rolling, which carries its own
// mutex and is safe to feed from many concurrent simulations (the
// experiment runner's worker pool).
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"github.com/clp-sim/tflex/internal/critpath"
	"github.com/clp-sim/tflex/internal/flight"
	"github.com/clp-sim/tflex/internal/telemetry"
)

// Server accumulates published observability state and serves it over
// HTTP.  The zero value is usable; New is provided for symmetry.
type Server struct {
	mu      sync.Mutex
	snap    telemetry.Snapshot
	subs    map[int]chan []byte
	nextSub int
	ln      net.Listener
	srv     *http.Server

	domains    []flight.DomainStats
	flightDump *flight.Dump
	flightWant atomic.Bool

	roll critpath.Rolling
}

// New returns an idle server; call Start (or mount Handler yourself).
func New() *Server { return &Server{} }

// Rolling returns the critical-path aggregate handlers read — hand it
// to Chip.SetCritPathSink (or tflex.RunConfig.Observe does so for you).
func (s *Server) Rolling() *critpath.Rolling { return &s.roll }

// PublishMetrics stores the snapshot served by /metrics.  Call it from
// the goroutine that owns the registry's counter views (the sampler
// notify hook, or after the run): the snapshot is taken there, so
// handlers never touch live counters.  Non-finite values are zeroed —
// the snapshot is owned by the caller until published, shared read-only
// after.
func (s *Server) PublishMetrics(snap telemetry.Snapshot) {
	for k, v := range snap {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			snap[k] = 0
		}
	}
	s.mu.Lock()
	s.snap = snap
	s.mu.Unlock()
}

// PublishSample fans one sampler row out to /events subscribers as a
// JSON object.  Slow subscribers drop rows rather than stall the
// publisher (the simulation must never block on an HTTP client).
func (s *Server) PublishSample(cycle uint64, names []string, row []float64) {
	series := make(map[string]float64, len(names))
	for i, n := range names {
		if i < len(row) {
			series[n] = row[i]
		}
	}
	payload, err := json.Marshal(struct {
		Cycle  uint64             `json:"cycle"`
		Series map[string]float64 `json:"series"`
	}{cycle, series})
	if err != nil {
		return
	}
	s.mu.Lock()
	//lint:allow determinism subscribers are independent SSE streams; each sees its own rows in order and no simulation state depends on delivery order across subscribers
	for _, ch := range s.subs {
		select {
		case ch <- payload:
		default:
		}
	}
	s.mu.Unlock()
}

// PublishDomains stores the per-domain scheduler statistics served by
// /domains.  Like PublishMetrics, call it only from the goroutine that
// owns the domains (the sampler notify hook fires at a quiescent point,
// or after the run) — the slice is owned by the caller until published,
// shared read-only after.
func (s *Server) PublishDomains(ds []flight.DomainStats) {
	s.mu.Lock()
	s.domains = ds
	s.mu.Unlock()
}

// FlightWanted reports whether an HTTP client has requested a flight
// dump since the last PublishFlight.  The sim side polls it from its
// notify hook and, when set, captures a dump at that quiescent point —
// the handler never touches live rings.
func (s *Server) FlightWanted() bool { return s.flightWant.Load() }

// PublishFlight stores the ring dump served by /flight and clears the
// pending request flag.  Call from the goroutine that owns the rings,
// at a quiescent point.
func (s *Server) PublishFlight(d *flight.Dump) {
	s.mu.Lock()
	s.flightDump = d
	s.mu.Unlock()
	s.flightWant.Store(false)
}

func (s *Server) subscribe() (int, chan []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subs == nil {
		s.subs = map[int]chan []byte{}
	}
	id := s.nextSub
	s.nextSub++
	ch := make(chan []byte, 64)
	s.subs[id] = ch
	return id, ch
}

func (s *Server) unsubscribe(id int) {
	s.mu.Lock()
	delete(s.subs, id)
	s.mu.Unlock()
}

// Handler returns the server's route table, for mounting in tests or a
// caller-owned http.Server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/critpath", s.handleCritPath)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/domains", s.handleDomains)
	mux.HandleFunc("/flight", s.handleFlight)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "tflex observability server\n\n"+
		"  /metrics       latest telemetry snapshot (JSON)\n"+
		"  /critpath      rolling critical-path attribution (JSON)\n"+
		"  /events        SSE stream of sampler rows\n"+
		"  /domains       per-domain scheduler statistics (JSON)\n"+
		"  /flight        flight-recorder ring dump (JSON)\n"+
		"  /debug/pprof/  Go profiling endpoints\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snap := s.snap
	s.mu.Unlock()
	if snap == nil {
		snap = telemetry.Snapshot{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //nolint:errcheck // client went away
}

func (s *Server) handleDomains(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ds := s.domains
	s.mu.Unlock()
	if ds == nil {
		ds = []flight.DomainStats{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ds) //nolint:errcheck // client went away
}

// handleFlight serves the last published ring dump and flags a fresh
// capture for the sim side's next quiescent point.  The first request
// of a run typically sees {"pending":true}; scrape twice (or poll) to
// get a dump taken after the flag was raised.
func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	s.flightWant.Store(true)
	s.mu.Lock()
	d := s.flightDump
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if d == nil {
		fmt.Fprint(w, "{\"pending\":true}\n")
		return
	}
	d.WriteJSON(w) //nolint:errcheck // client went away
}

func (s *Server) handleCritPath(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.roll.WriteJSON(w) //nolint:errcheck // client went away
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	id, ch := s.subscribe()
	defer s.unsubscribe(id)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case payload := <-ch:
			fmt.Fprintf(w, "data: %s\n\n", payload)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// Start listens on addr (":0" picks a free port) and serves in a
// background goroutine.  Returns the bound address for logging/curling.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln = ln
	s.srv = srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the listener and all in-flight requests down.  Safe to
// call without Start.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
