package power

import "testing"

func sampleCounters(cores, fpus int) Counters {
	return Counters{
		Cycles: 1_000_000, Cores: cores, FPUs: fpus,
		BlockFetches: 10_000, Predictions: 10_000,
		IntOps: 500_000, FPOps: 50_000,
		RegReads: 100_000, RegWrites: 80_000,
		L1DAccesses: 120_000, LSQOps: 120_000,
		RouterFlits: 400_000, L2Accesses: 5_000, DRAMAccesses: 300,
	}
}

func TestBreakdownPositiveAndLeakage(t *testing.T) {
	m := Default()
	b := m.Breakdown(sampleCounters(8, 8))
	if b.Total() <= 0 {
		t.Fatal("zero power")
	}
	frac := b.Leakage / b.Total()
	if frac < 0.08 || frac > 0.10 {
		t.Fatalf("leakage fraction %.3f outside 8-10%%", frac)
	}
	for _, v := range []float64{b.Fetch, b.Execution, b.L1D, b.Routers, b.L2, b.DRAMIO, b.Clock} {
		if v < 0 {
			t.Fatal("negative category")
		}
	}
}

func TestIdleFPUsCostClockPower(t *testing.T) {
	// Same activity, twice the FPUs (the TRIPS asymmetry): total power
	// must increase even though FP op counts are identical.
	m := Default()
	few := m.Breakdown(sampleCounters(8, 8))
	many := m.Breakdown(sampleCounters(8, 16))
	if many.Total() <= few.Total() {
		t.Fatalf("16 FPUs (%.2fW) should burn more than 8 (%.2fW)", many.Total(), few.Total())
	}
	if many.Clock <= few.Clock {
		t.Fatal("extra FPUs should show up in the clock tree")
	}
}

func TestMoreActivityMorePower(t *testing.T) {
	m := Default()
	base := sampleCounters(8, 8)
	busy := base
	busy.IntOps *= 4
	busy.L1DAccesses *= 4
	if m.Breakdown(busy).Total() <= m.Breakdown(base).Total() {
		t.Fatal("more activity must burn more power")
	}
}

func TestZeroCycles(t *testing.T) {
	m := Default()
	if m.Breakdown(Counters{}).Total() != 0 {
		t.Fatal("zero window should give zero power")
	}
}

func TestPerfSqPerWatt(t *testing.T) {
	if PerfSqPerWatt(0, 1) != 0 || PerfSqPerWatt(1, 0) != 0 {
		t.Fatal("degenerate inputs")
	}
	// Halving cycles at equal power quadruples perf²/W.
	a := PerfSqPerWatt(1000, 10)
	b := PerfSqPerWatt(500, 10)
	if b/a < 3.99 || b/a > 4.01 {
		t.Fatalf("ratio = %v, want 4", b/a)
	}
}
