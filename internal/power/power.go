// Package power implements the Wattch-style power model of paper §6.3:
// per-access energies for the major structures (derived, in the original,
// from the TRIPS design database and prototype measurements), a clock-tree
// term scaled by structure counts, and an area-based leakage term of
// ~8-10% of total power.  Results are reported in the same categories as
// the paper's Table 2: fetch, execution, L1 D-cache, routers, L2 cache,
// DRAM/IO, clock tree and leakage.
//
// As with the area model, the absolute calibration is a reconstruction;
// the paper's power results (Figure 8) are perf²/W ratios between
// configurations of the same model, which the reconstruction preserves —
// including the key asymmetry that TRIPS carries twice the (mostly idle)
// floating-point units of an equal-width TFlex composition.
package power

// Energy holds per-event energies in nanojoules (130nm, 1.5V).
type Energy struct {
	ICacheAccess float64 // per block fetch per core bank
	Predict      float64 // per next-block prediction
	RegRead      float64
	RegWrite     float64
	WindowOp     float64 // wakeup+select per fired instruction
	IntOp        float64
	FPOp         float64
	L1DAccess    float64
	LSQSearch    float64
	RouterFlit   float64 // per hop
	L2Access     float64
	DRAMAccess   float64
}

// Model is the chip power model.
type Model struct {
	E Energy
	// Clock-tree power scales with the structures clocked.
	CoreClockW float64 // per participating core
	FPUClockW  float64 // per FPU present (idle FPUs still burn clock)
	// LeakFrac is leakage as a fraction of total power (8-10% at 130nm).
	LeakFrac float64
	// FreqGHz converts cycles to seconds.
	FreqGHz float64
	// DRAMIOW is the constant DRAM/IO interface power.
	DRAMIOW float64
}

// Default returns the reconstructed 130nm model.
func Default() Model {
	return Model{
		E: Energy{
			ICacheAccess: 0.30,
			Predict:      0.15,
			RegRead:      0.08,
			RegWrite:     0.10,
			WindowOp:     0.20,
			IntOp:        0.12,
			FPOp:         0.60,
			L1DAccess:    0.40,
			LSQSearch:    0.25,
			RouterFlit:   0.05,
			L2Access:     1.20,
			DRAMAccess:   8.00,
		},
		CoreClockW: 0.32,
		FPUClockW:  0.22,
		LeakFrac:   0.09,
		FreqGHz:    0.366, // TRIPS prototype clock
		DRAMIOW:    0.80,
	}
}

// Counters are the activity counts feeding the model.
type Counters struct {
	Cycles uint64
	Cores  int // participating cores
	FPUs   int // FPUs present (TRIPS: one per tile; TFlex: one per core)

	BlockFetches uint64 // block fetch commands (per-core I-bank reads)
	Predictions  uint64
	IntOps       uint64
	FPOps        uint64
	RegReads     uint64
	RegWrites    uint64
	L1DAccesses  uint64
	LSQOps       uint64
	RouterFlits  uint64
	L2Accesses   uint64
	DRAMAccesses uint64
}

// Breakdown is the Table 2 category report, in watts.
type Breakdown struct {
	Fetch     float64
	Execution float64
	L1D       float64
	Routers   float64
	L2        float64
	DRAMIO    float64
	Clock     float64
	Leakage   float64
}

// Total sums all categories.
func (b Breakdown) Total() float64 {
	return b.Fetch + b.Execution + b.L1D + b.Routers + b.L2 + b.DRAMIO + b.Clock + b.Leakage
}

// Breakdown evaluates the model over an activity window.
func (m Model) Breakdown(c Counters) Breakdown {
	if c.Cycles == 0 {
		return Breakdown{}
	}
	seconds := float64(c.Cycles) / (m.FreqGHz * 1e9)
	nj := func(events uint64, e float64) float64 {
		return float64(events) * e * 1e-9 / seconds
	}
	var b Breakdown
	// Fetch: per-block I-cache reads in every participating core bank,
	// plus prediction.
	b.Fetch = nj(c.BlockFetches*uint64(max(1, c.Cores)), m.E.ICacheAccess) +
		nj(c.Predictions, m.E.Predict)
	b.Execution = nj(c.IntOps, m.E.IntOp) + nj(c.FPOps, m.E.FPOp) +
		nj(c.IntOps+c.FPOps, m.E.WindowOp) +
		nj(c.RegReads, m.E.RegRead) + nj(c.RegWrites, m.E.RegWrite)
	b.L1D = nj(c.L1DAccesses, m.E.L1DAccess) + nj(c.LSQOps, m.E.LSQSearch)
	b.Routers = nj(c.RouterFlits, m.E.RouterFlit)
	b.L2 = nj(c.L2Accesses, m.E.L2Access)
	b.DRAMIO = nj(c.DRAMAccesses, m.E.DRAMAccess) + m.DRAMIOW
	b.Clock = m.CoreClockW*float64(c.Cores) + m.FPUClockW*float64(c.FPUs)
	dyn := b.Fetch + b.Execution + b.L1D + b.Routers + b.L2 + b.DRAMIO + b.Clock
	// leakage = LeakFrac * total  =>  total = dyn / (1 - LeakFrac).
	b.Leakage = dyn * m.LeakFrac / (1 - m.LeakFrac)
	return b
}

// PerfSqPerWatt computes the paper's Figure 8 metric: perf²/W with
// performance measured as 1/cycles.
func PerfSqPerWatt(cycles uint64, watts float64) float64 {
	if cycles == 0 || watts <= 0 {
		return 0
	}
	p := 1.0 / float64(cycles)
	return p * p / watts
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
