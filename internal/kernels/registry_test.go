package kernels

import (
	"sync"
	"testing"

	"github.com/clp-sim/tflex/internal/prog"
)

// Registering a kernel whose name is already taken must panic — a silent
// overwrite would drop one benchmark from the suite and skew every
// regenerated figure.
func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate register(conv) did not panic")
		}
		// Registration order must be untouched by the failed attempt.
		if n := len(order); n != len(registry) {
			t.Fatalf("order has %d entries, registry %d after failed register", n, len(registry))
		}
	}()
	register(Kernel{Name: "conv", Suite: "hand", Build: nil})
}

// Every registered kernel — the Table 1 suite and the extras — must
// build a program that passes the exported ISA validator.  The builder
// validates at seal time, but this pins the stronger claim: nothing in
// the registry depends on a rule Validate does not enforce, so the
// fuzz harness and the kernels hold programs to the same contract.
func TestAllKernelsPassValidate(t *testing.T) {
	for _, k := range append(All(), Extras()...) {
		inst, err := k.Build(1)
		if err != nil {
			t.Errorf("%s: Build(1): %v", k.Name, err)
			continue
		}
		if err := prog.Validate(inst.Prog); err != nil {
			t.Errorf("%s: Validate: %v", k.Name, err)
		}
	}
}

// The registry/order maps are mutated only by init-time register()
// calls; afterwards they are read-only and safe for the concurrent
// experiment runner.  This test exercises every read path from many
// goroutines so `go test -race` verifies that claim.
func TestRegistryConcurrentReads(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if len(All()) != 26 {
					t.Error("All() lost kernels")
					return
				}
				if _, ok := ByName("conv"); !ok {
					t.Error("ByName(conv) failed")
					return
				}
				_ = Names()
				_ = Extras()
				_ = HandOptimized()
			}
		}()
	}
	wg.Wait()
}
