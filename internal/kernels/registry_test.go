package kernels

import (
	"sync"
	"testing"
)

// Registering a kernel whose name is already taken must panic — a silent
// overwrite would drop one benchmark from the suite and skew every
// regenerated figure.
func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate register(conv) did not panic")
		}
		// Registration order must be untouched by the failed attempt.
		if n := len(order); n != len(registry) {
			t.Fatalf("order has %d entries, registry %d after failed register", n, len(registry))
		}
	}()
	register(Kernel{Name: "conv", Suite: "hand", Build: nil})
}

// The registry/order maps are mutated only by init-time register()
// calls; afterwards they are read-only and safe for the concurrent
// experiment runner.  This test exercises every read path from many
// goroutines so `go test -race` verifies that claim.
func TestRegistryConcurrentReads(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if len(All()) != 26 {
					t.Error("All() lost kernels")
					return
				}
				if _, ok := ByName("conv"); !ok {
					t.Error("ByName(conv) failed")
					return
				}
				_ = Names()
				_ = Extras()
				_ = HandOptimized()
			}
		}()
	}
	wg.Wait()
}
