package kernels

import (
	"fmt"
	"math"

	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// Six SPEC-CPU-floating-point-style kernels, built compiler-style (one
// loop iteration per block, no hand unrolling): ammp, applu, art, equake,
// mesa, swim.

func init() {
	register(Kernel{Name: "ammp", Suite: "specfp", HighILP: true, Build: buildAmmp})
	register(Kernel{Name: "applu", Suite: "specfp", HighILP: true, Build: buildApplu})
	register(Kernel{Name: "art", Suite: "specfp", HighILP: true, Build: buildArt})
	register(Kernel{Name: "equake", Suite: "specfp", HighILP: false, Build: buildEquake})
	register(Kernel{Name: "mesa", Suite: "specfp", HighILP: true, Build: buildMesa})
	register(Kernel{Name: "swim", Suite: "specfp", HighILP: true, Build: buildSwim})
}

// ammp: molecular-dynamics pair forces: distances, squared norm, a divide
// per pair.
func buildAmmp(scale int) (*Instance, error) {
	pairs := 64 * scale
	const atoms = 128
	const posBase = 0x20_0000 // x,y,z per atom, 24 bytes

	const lcgMul = 6364136223846793005
	const lcgAdd = 1442695040888963407

	b := prog.NewBuilder()
	bb := b.Block("am_loop")
	seed := bb.Read(5)
	pb := bb.Read(1)
	s1 := bb.AddI(bb.MulI(seed, lcgMul), lcgAdd)
	ai := bb.AndI(bb.ShrI(s1, 17), atoms-1)
	s2 := bb.AddI(bb.MulI(s1, lcgMul), lcgAdd)
	bi := bb.AndI(bb.ShrI(s2, 17), atoms-1)
	bb.Write(5, s2)
	aAddr := bb.Add(pb, bb.Mul(ai, bb.Const(24)))
	bAddr := bb.Add(pb, bb.Mul(bi, bb.Const(24)))
	dx := bb.Op(isa.OpFSub, bb.Load(aAddr, 0, 8, false), bb.Load(bAddr, 0, 8, false))
	dy := bb.Op(isa.OpFSub, bb.Load(aAddr, 8, 8, false), bb.Load(bAddr, 8, 8, false))
	dz := bb.Op(isa.OpFSub, bb.Load(aAddr, 16, 8, false), bb.Load(bAddr, 16, 8, false))
	r2 := bb.Op(isa.OpFAdd,
		bb.Op(isa.OpFAdd, bb.Op(isa.OpFMul, dx, dx), bb.Op(isa.OpFMul, dy, dy)),
		bb.Op(isa.OpFMul, dz, dz))
	f := bb.Op(isa.OpFDiv, bb.ConstF(1), bb.Op(isa.OpFAdd, r2, bb.ConstF(0.1)))
	acc := bb.Read(7)
	bb.Write(7, bb.Op(isa.OpFAdd, acc, f))
	loopCtlI(bb, 2, 1, int64(pairs), "am_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("am_loop")
	if err != nil {
		return nil, err
	}

	pos := make([][3]float64, atoms)
	r := lcg(7777)
	for i := range pos {
		for d := 0; d < 3; d++ {
			pos[i][d] = float64(int64(r.intn(200)) - 100)
		}
	}
	var accRef float64
	s := uint64(13)
	for it := 0; it < pairs; it++ {
		s = s*lcgMul + lcgAdd
		ai := (s >> 17) & (atoms - 1)
		s = s*lcgMul + lcgAdd
		bi := (s >> 17) & (atoms - 1)
		dx := pos[ai][0] - pos[bi][0]
		dy := pos[ai][1] - pos[bi][1]
		dz := pos[ai][2] - pos[bi][2]
		r2 := (dx*dx + dy*dy) + dz*dz
		accRef += 1 / (r2 + 0.1)
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = posBase
			regs[5] = 13
			regs[7] = math.Float64bits(0)
			for i := range pos {
				for d := 0; d < 3; d++ {
					m.WriteF64(posBase+uint64(i)*24+uint64(d)*8, pos[i][d])
				}
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			if err := checkReg(regs, 7, math.Float64bits(accRef)); err != nil {
				return fmt.Errorf("ammp: %w", err)
			}
			return nil
		},
	}, nil
}

// applu: a 5-point Jacobi relaxation over a 2D grid, one point per block.
func buildApplu(scale int) (*Instance, error) {
	const dim = 16 // interior points per side; grid is (dim+2)^2
	points := dim * dim * scale
	const inBase = 0x20_0000
	const outBase = 0x24_0000
	const gw = dim + 2 // grid width

	b := prog.NewBuilder()
	bb := b.Block("ap_loop")
	idx := bb.Read(2)
	inb := bb.Read(1)
	outb := bb.Read(3)
	w := bb.Read(10) // 0.2
	row := bb.AndI(bb.ShrI(idx, 4), dim-1)
	col := bb.AndI(idx, dim-1)
	off := bb.ShlI(bb.Add(bb.MulI(bb.AddI(row, 1), gw), bb.AddI(col, 1)), 3)
	cAddr := bb.Add(inb, off)
	cv := bb.Load(cAddr, 0, 8, false)
	nv := bb.Load(cAddr, -8*gw, 8, false)
	sv := bb.Load(cAddr, 8*gw, 8, false)
	wv := bb.Load(cAddr, -8, 8, false)
	ev := bb.Load(cAddr, 8, 8, false)
	sum := bb.Op(isa.OpFAdd, bb.Op(isa.OpFAdd, nv, sv), bb.Op(isa.OpFAdd, wv, ev))
	four := bb.ConstF(4)
	delta := bb.Op(isa.OpFSub, sum, bb.Op(isa.OpFMul, four, cv))
	res := bb.Op(isa.OpFAdd, cv, bb.Op(isa.OpFMul, w, delta))
	bb.Store(bb.Add(outb, off), res, 0, 8)
	loopCtlI(bb, 2, 1, int64(points), "ap_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("ap_loop")
	if err != nil {
		return nil, err
	}

	grid := make([]float64, gw*gw)
	r := lcg(414)
	for i := range grid {
		grid[i] = float64(int64(r.intn(1000)) - 500)
	}
	want := make([]float64, gw*gw)
	for row := 0; row < dim; row++ {
		for col := 0; col < dim; col++ {
			i := (row+1)*gw + col + 1
			sum := (grid[i-gw] + grid[i+gw]) + (grid[i-1] + grid[i+1])
			want[i] = grid[i] + 0.2*(sum-4*grid[i])
		}
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = inBase
			regs[3] = outBase
			regs[10] = math.Float64bits(0.2)
			for i, v := range grid {
				m.WriteF64(inBase+uint64(i)*8, v)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			for row := 0; row < dim; row++ {
				for col := 0; col < dim; col++ {
					i := (row+1)*gw + col + 1
					if err := checkMem64(m, outBase+uint64(i)*8, i, math.Float64bits(want[i])); err != nil {
						return fmt.Errorf("applu: %w", err)
					}
				}
			}
			return nil
		},
	}, nil
}

// art: neural-network F1 layer: out[j] += w[i][j] * in[i], 4 MACs per
// block.
func buildArt(scale int) (*Instance, error) {
	const outs = 16
	ins := 32 * scale
	const wBase = 0x20_0000 // w[i*outs + j]
	const inBase = 0x30_0000
	const outBase = 0x31_0000

	b := prog.NewBuilder()
	// Outer over j (r5), inner over i in chunks of 4 (r2).
	inner := b.Block("ar_inner")
	i := inner.Read(2)
	j := inner.Read(5)
	wb := inner.Read(1)
	inb := inner.Read(3)
	acc := inner.Read(7)
	sum := acc
	for d := int64(0); d < 4; d++ {
		wAddr := inner.Add(wb, inner.ShlI(inner.Add(inner.MulI(inner.AddI(i, d), outs), j), 3))
		iv := inner.Load(inner.Add(inb, inner.ShlI(i, 3)), d*8, 8, false)
		wv := inner.Load(wAddr, 0, 8, false)
		sum = inner.Op(isa.OpFAdd, sum, inner.Op(isa.OpFMul, wv, iv))
	}
	inner.Write(7, sum)
	loopCtlI(inner, 2, 4, int64(ins), "ar_inner", "ar_store")

	st := b.Block("ar_store")
	j2 := st.Read(5)
	ob := st.Read(4)
	st.Store(st.Add(ob, st.ShlI(j2, 3)), st.Read(7), 0, 8)
	st.Write(7, st.ConstF(0))
	st.Write(2, st.Const(0))
	j3 := st.AddI(j2, 1)
	st.Write(5, j3)
	st.BranchIf(st.OpI(isa.OpLt, j3, outs), "ar_inner", exitLabel)
	haltBlock(b)
	p, err := b.Program("ar_inner")
	if err != nil {
		return nil, err
	}

	ws := make([]float64, ins*outs)
	xs := make([]float64, ins)
	r := lcg(271)
	for i := range ws {
		ws[i] = float64(int64(r.intn(64)) - 32)
	}
	for i := range xs {
		xs[i] = float64(int64(r.intn(64)) - 32)
	}
	var want [outs]float64
	for j := 0; j < outs; j++ {
		acc := 0.0
		for i := 0; i < ins; i++ {
			acc += ws[i*outs+j] * xs[i]
		}
		want[j] = acc
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = wBase
			regs[3] = inBase
			regs[4] = outBase
			regs[7] = math.Float64bits(0)
			for i, v := range ws {
				m.WriteF64(wBase+uint64(i)*8, v)
			}
			for i, v := range xs {
				m.WriteF64(inBase+uint64(i)*8, v)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			for j, w := range want {
				if err := checkMem64(m, outBase+uint64(j)*8, j, math.Float64bits(w)); err != nil {
					return fmt.Errorf("art: %w", err)
				}
			}
			return nil
		},
	}, nil
}

// equake: sparse matrix-vector product with indirect loads, one row per
// block (4 nonzeros).
func buildEquake(scale int) (*Instance, error) {
	rows := 64 * scale
	const nnzPerRow = 4
	const colBase = 0x20_0000
	const valBase = 0x24_0000
	const xBase = 0x28_0000
	const yBase = 0x2c_0000
	xLen := rows

	b := prog.NewBuilder()
	bb := b.Block("eq_loop")
	i := bb.Read(2)
	cb := bb.Read(1)
	vb := bb.Read(3)
	xb := bb.Read(4)
	yb := bb.Read(6)
	rowOff := bb.ShlI(i, 5) // 4 entries * 8 bytes
	cAddr := bb.Add(cb, rowOff)
	vAddr := bb.Add(vb, rowOff)
	var sum prog.Ref
	for k := int64(0); k < nnzPerRow; k++ {
		col := bb.Load(cAddr, k*8, 8, false)
		val := bb.Load(vAddr, k*8, 8, false)
		xv := bb.Load(bb.Add(xb, bb.ShlI(col, 3)), 0, 8, false)
		m := bb.Op(isa.OpFMul, val, xv)
		if k == 0 {
			sum = m
		} else {
			sum = bb.Op(isa.OpFAdd, sum, m)
		}
	}
	bb.Store(bb.Add(yb, bb.ShlI(i, 3)), sum, 0, 8)
	loopCtlI(bb, 2, 1, int64(rows), "eq_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("eq_loop")
	if err != nil {
		return nil, err
	}

	cols := make([]uint64, rows*nnzPerRow)
	vals := make([]float64, rows*nnzPerRow)
	xs := make([]float64, xLen)
	r := lcg(1906)
	for i := range cols {
		cols[i] = r.intn(uint64(xLen))
		vals[i] = float64(int64(r.intn(100)) - 50)
	}
	for i := range xs {
		xs[i] = float64(int64(r.intn(100)) - 50)
	}
	want := make([]float64, rows)
	for i := 0; i < rows; i++ {
		sum := vals[i*4] * xs[cols[i*4]]
		for k := 1; k < nnzPerRow; k++ {
			sum += vals[i*4+k] * xs[cols[i*4+k]]
		}
		want[i] = sum
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = colBase
			regs[3] = valBase
			regs[4] = xBase
			regs[6] = yBase
			for i := range cols {
				m.Write64(colBase+uint64(i)*8, cols[i])
				m.WriteF64(valBase+uint64(i)*8, vals[i])
			}
			for i, v := range xs {
				m.WriteF64(xBase+uint64(i)*8, v)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			for i, w := range want {
				if err := checkMem64(m, yBase+uint64(i)*8, i, math.Float64bits(w)); err != nil {
					return fmt.Errorf("equake: %w", err)
				}
			}
			return nil
		},
	}, nil
}

// mesa: 4x4 matrix x vec4 vertex transform, split over two blocks per
// vertex (two output components each), matrix in registers.
func buildMesa(scale int) (*Instance, error) {
	verts := 32 * scale
	const inBase = 0x20_0000
	const outBase = 0x24_0000

	b := prog.NewBuilder()
	emitHalf := func(name string, baseRow int, next string, closeLoop bool) {
		bb := b.Block(name)
		i := bb.Read(2)
		inb := bb.Read(1)
		ob := bb.Read(3)
		vAddr := bb.Add(inb, bb.ShlI(i, 5))
		oAddr := bb.Add(ob, bb.ShlI(i, 5))
		var vv [4]prog.Ref
		for k := int64(0); k < 4; k++ {
			vv[k] = bb.Load(vAddr, k*8, 8, false)
		}
		for r := 0; r < 2; r++ {
			row := baseRow + r
			acc := bb.Op(isa.OpFMul, bb.Read(10+row*4), vv[0])
			for k := 1; k < 4; k++ {
				acc = bb.Op(isa.OpFAdd, acc, bb.Op(isa.OpFMul, bb.Read(10+row*4+k), vv[k]))
			}
			bb.Store(oAddr, acc, int64(row)*8, 8)
		}
		if closeLoop {
			loopCtlI(bb, 2, 1, int64(verts), next, exitLabel)
		} else {
			bb.Branch(next)
		}
	}
	emitHalf("me_half0", 0, "me_half1", false)
	emitHalf("me_half1", 2, "me_half0", true)
	haltBlock(b)
	p, err := b.Program("me_half0")
	if err != nil {
		return nil, err
	}

	var mat [16]float64
	r := lcg(3141)
	for i := range mat {
		mat[i] = float64(int64(r.intn(16)) - 8)
	}
	vertsIn := make([][4]float64, verts)
	for i := range vertsIn {
		for k := 0; k < 4; k++ {
			vertsIn[i][k] = float64(int64(r.intn(256)) - 128)
		}
	}
	want := make([][4]float64, verts)
	for i := range vertsIn {
		for row := 0; row < 4; row++ {
			acc := mat[row*4] * vertsIn[i][0]
			for k := 1; k < 4; k++ {
				acc += mat[row*4+k] * vertsIn[i][k]
			}
			want[i][row] = acc
		}
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = inBase
			regs[3] = outBase
			for i, v := range mat {
				regs[10+i] = math.Float64bits(v)
			}
			for i := range vertsIn {
				for k := 0; k < 4; k++ {
					m.WriteF64(inBase+uint64(i)*32+uint64(k)*8, vertsIn[i][k])
				}
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			for i := range want {
				for k := 0; k < 4; k++ {
					addr := outBase + uint64(i)*32 + uint64(k)*8
					if err := checkMem64(m, addr, i, math.Float64bits(want[i][k])); err != nil {
						return fmt.Errorf("mesa: %w", err)
					}
				}
			}
			return nil
		},
	}, nil
}

// swim: a 1D shallow-water step: velocity and height updates from
// neighboring cells.
func buildSwim(scale int) (*Instance, error) {
	n := 64 * scale
	const uBase = 0x20_0000
	const hBase = 0x24_0000
	const u2Base = 0x28_0000
	const h2Base = 0x2c_0000

	b := prog.NewBuilder()
	bb := b.Block("sw_loop")
	i := bb.Read(2)
	ub := bb.Read(1)
	hb := bb.Read(3)
	u2b := bb.Read(4)
	h2b := bb.Read(6)
	c := bb.Read(10)
	d := bb.Read(11)
	off := bb.ShlI(bb.AddI(i, 1), 3)
	uAddr := bb.Add(ub, off)
	hAddr := bb.Add(hb, off)
	uv := bb.Load(uAddr, 0, 8, false)
	hv := bb.Load(hAddr, 0, 8, false)
	hE := bb.Load(hAddr, 8, 8, false)
	hW := bb.Load(hAddr, -8, 8, false)
	uE := bb.Load(uAddr, 8, 8, false)
	uW := bb.Load(uAddr, -8, 8, false)
	du := bb.Op(isa.OpFMul, c, bb.Op(isa.OpFSub, hE, hW))
	dh := bb.Op(isa.OpFMul, d, bb.Op(isa.OpFSub, uE, uW))
	bb.Store(bb.Add(u2b, off), bb.Op(isa.OpFAdd, uv, du), 0, 8)
	bb.Store(bb.Add(h2b, off), bb.Op(isa.OpFAdd, hv, dh), 0, 8)
	loopCtlI(bb, 2, 1, int64(n), "sw_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("sw_loop")
	if err != nil {
		return nil, err
	}

	const cVal, dVal = -0.05, -0.02
	us := make([]float64, n+2)
	hs := make([]float64, n+2)
	r := lcg(2024)
	for i := range us {
		us[i] = float64(int64(r.intn(100)) - 50)
		hs[i] = float64(int64(r.intn(100)) + 100)
	}
	wantU := make([]float64, n)
	wantH := make([]float64, n)
	for i := 0; i < n; i++ {
		wantU[i] = us[i+1] + cVal*(hs[i+2]-hs[i])
		wantH[i] = hs[i+1] + dVal*(us[i+2]-us[i])
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = uBase
			regs[3] = hBase
			regs[4] = u2Base
			regs[6] = h2Base
			regs[10] = math.Float64bits(cVal)
			regs[11] = math.Float64bits(dVal)
			for i := range us {
				m.WriteF64(uBase+uint64(i)*8, us[i])
				m.WriteF64(hBase+uint64(i)*8, hs[i])
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			for i := 0; i < n; i++ {
				if err := checkMem64(m, u2Base+uint64(i+1)*8, i, math.Float64bits(wantU[i])); err != nil {
					return fmt.Errorf("swim u: %w", err)
				}
				if err := checkMem64(m, h2Base+uint64(i+1)*8, i, math.Float64bits(wantH[i])); err != nil {
					return fmt.Errorf("swim h: %w", err)
				}
			}
			return nil
		},
	}, nil
}
