package kernels

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// Eight SPEC-CPU-integer-style kernels.  These are built "compiler style":
// small basic-block-shaped blocks, frequent data-dependent branches,
// pointer chasing and hash probing — the low-ILP half of the paper's
// suite, where block overheads and mispredictions dominate.

func init() {
	register(Kernel{Name: "bzip2", Suite: "specint", HighILP: false, Build: buildBzip2})
	register(Kernel{Name: "crafty", Suite: "specint", HighILP: false, Build: buildCrafty})
	register(Kernel{Name: "gcc", Suite: "specint", HighILP: false, Build: buildGcc})
	register(Kernel{Name: "gzip", Suite: "specint", HighILP: false, Build: buildGzip})
	register(Kernel{Name: "mcf", Suite: "specint", HighILP: false, Build: buildMcf})
	register(Kernel{Name: "parser", Suite: "specint", HighILP: false, Build: buildParser})
	register(Kernel{Name: "twolf", Suite: "specint", HighILP: false, Build: buildTwolf})
	register(Kernel{Name: "vortex", Suite: "specint", HighILP: false, Build: buildVortex})
}

// bzip2: the move-to-front transform — a data-dependent scan loop followed
// by a data-dependent shift loop per symbol.
func buildBzip2(scale int) (*Instance, error) {
	n := 24 * scale
	const listSize = 16
	const inBase = 0x20_0000
	const listBase = 0x21_0000

	b := prog.NewBuilder()
	outer := b.Block("bz_outer")
	i := outer.Read(2)
	inb := outer.Read(1)
	sym := outer.Load(outer.Add(inb, outer.ShlI(i, 3)), 0, 8, false)
	outer.Write(6, sym)
	outer.Write(5, outer.Const(0))
	outer.Branch("bz_scan")

	scan := b.Block("bz_scan")
	j := scan.Read(5)
	lb := scan.Read(3)
	v := scan.Load(scan.Add(lb, scan.ShlI(j, 3)), 0, 8, false)
	scan.Write(5, scan.AddI(j, 1))
	scan.BranchIf(scan.Op(isa.OpEq, v, scan.Read(6)), "bz_hit", "bz_scan")

	hit := b.Block("bz_hit")
	pos := hit.AddI(hit.Read(5), -1)
	hit.Write(7, hit.Add(hit.Read(7), pos)) // MTF output accumulator
	hit.Write(5, pos)                       // shift cursor
	hit.BranchIf(hit.Op(isa.OpLt, hit.Const(0), pos), "bz_shift", "bz_store0")

	shift := b.Block("bz_shift")
	ts := shift.Read(5)
	lbs := shift.Read(3)
	prev := shift.Load(shift.Add(lbs, shift.ShlI(ts, 3)), -8, 8, false)
	shift.Store(shift.Add(lbs, shift.ShlI(ts, 3)), prev, 0, 8)
	ts2 := shift.AddI(ts, -1)
	shift.Write(5, ts2)
	shift.BranchIf(shift.OpI(isa.OpLt, ts2, 1), "bz_store0", "bz_shift")

	store0 := b.Block("bz_store0")
	store0.Store(store0.Read(3), store0.Read(6), 0, 8)
	loopCtlI(store0, 2, 1, int64(n), "bz_outer", exitLabel)
	haltBlock(b)
	p, err := b.Program("bz_outer")
	if err != nil {
		return nil, err
	}

	in := make([]uint64, n)
	r := lcg(4)
	for i := range in {
		in[i] = r.intn(listSize)
	}
	list := make([]uint64, listSize)
	for i := range list {
		list[i] = uint64(i)
	}
	listRef := append([]uint64(nil), list...)
	var mtfAcc uint64
	for _, sym := range in {
		j := 0
		for listRef[j] != sym {
			j++
		}
		mtfAcc += uint64(j)
		copy(listRef[1:j+1], listRef[:j])
		listRef[0] = sym
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = inBase
			regs[3] = listBase
			for i, v := range in {
				m.Write64(inBase+uint64(i)*8, v)
			}
			for i, v := range list {
				m.Write64(listBase+uint64(i)*8, v)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			if err := checkReg(regs, 7, mtfAcc); err != nil {
				return fmt.Errorf("bzip2 mtf: %w", err)
			}
			for i, w := range listRef {
				if err := checkMem64(m, listBase+uint64(i)*8, i, w); err != nil {
					return fmt.Errorf("bzip2 list: %w", err)
				}
			}
			return nil
		},
	}, nil
}

// crafty: bitboard population counts via the Kernighan loop — a
// data-dependent branch per cleared bit.
func buildCrafty(scale int) (*Instance, error) {
	n := 48 * scale
	const boardBase = 0x20_0000

	b := prog.NewBuilder()
	outer := b.Block("cr_outer")
	i := outer.Read(2)
	bbase := outer.Read(1)
	board := outer.Load(outer.Add(bbase, outer.ShlI(i, 3)), 0, 8, false)
	outer.Write(5, board)
	outer.BranchIf(outer.OpI(isa.OpNe, board, 0), "cr_inner", "cr_next")

	inner := b.Block("cr_inner")
	x := inner.Read(5)
	x2 := inner.Op(isa.OpAnd, x, inner.AddI(x, -1))
	inner.Write(5, x2)
	inner.Write(7, inner.AddI(inner.Read(7), 1))
	inner.BranchIf(inner.OpI(isa.OpNe, x2, 0), "cr_inner", "cr_next")

	next := b.Block("cr_next")
	loopCtlI(next, 2, 1, int64(n), "cr_outer", exitLabel)
	haltBlock(b)
	p, err := b.Program("cr_outer")
	if err != nil {
		return nil, err
	}

	boards := make([]uint64, n)
	r := lcg(64)
	for i := range boards {
		boards[i] = r.next() & r.next() // sparse-ish boards
	}
	var popAcc uint64
	for _, bd := range boards {
		for x := bd; x != 0; x &= x - 1 {
			popAcc++
		}
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = boardBase
			for i, v := range boards {
				m.Write64(boardBase+uint64(i)*8, v)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			if err := checkReg(regs, 7, popAcc); err != nil {
				return fmt.Errorf("crafty: %w", err)
			}
			return nil
		},
	}, nil
}

// gcc: a control-flow-graph walk with a three-way kind dispatch per node
// and kind-dependent successor selection.
func buildGcc(scale int) (*Instance, error) {
	steps := 96 * scale
	const nodes = 64
	const nodeBase = 0x20_0000 // node: kind, val, next0, next1 (32 bytes)

	b := prog.NewBuilder()
	node := b.Block("gc_node")
	cur := node.Read(5)
	nb := node.Read(1)
	addr := node.Add(nb, node.ShlI(cur, 5))
	kind := node.Load(addr, 0, 8, false)
	node.Write(6, node.Load(addr, 8, 8, false))  // val
	node.Write(8, node.Load(addr, 16, 8, false)) // next0
	node.Write(9, node.Load(addr, 24, 8, false)) // next1
	node.BranchIf(node.OpI(isa.OpEq, kind, 0), "gc_k0", "gc_k12")

	k12 := b.Block("gc_k12")
	nb12 := k12.Read(1)
	kind2 := k12.Load(k12.Add(nb12, k12.ShlI(k12.Read(5), 5)), 0, 8, false)
	k12.BranchIf(k12.OpI(isa.OpEq, kind2, 1), "gc_k1", "gc_k2")

	k0 := b.Block("gc_k0")
	k0.Write(7, k0.Op(isa.OpXor, k0.Read(7), k0.Read(6)))
	k0.Write(5, k0.Read(8))
	loopCtlI(k0, 2, 1, int64(steps), "gc_node", exitLabel)

	k1 := b.Block("gc_k1")
	k1.Write(7, k1.Add(k1.Read(7), k1.MulI(k1.Read(6), 3)))
	k1.Write(5, k1.Read(9))
	loopCtlI(k1, 2, 1, int64(steps), "gc_node", exitLabel)

	k2 := b.Block("gc_k2")
	k2.Write(7, k2.Sub(k2.Read(7), k2.Read(6)))
	k2.Write(5, k2.Read(8))
	loopCtlI(k2, 2, 1, int64(steps), "gc_node", exitLabel)
	haltBlock(b)
	p, err := b.Program("gc_node")
	if err != nil {
		return nil, err
	}

	type nodeT struct{ kind, val, n0, n1 uint64 }
	g := make([]nodeT, nodes)
	r := lcg(1618)
	for i := range g {
		g[i] = nodeT{kind: r.intn(3), val: r.intn(1000), n0: r.intn(nodes), n1: r.intn(nodes)}
	}
	var acc uint64
	curRef := uint64(0)
	for s := 0; s < steps; s++ {
		nd := g[curRef]
		switch nd.kind {
		case 0:
			acc ^= nd.val
			curRef = nd.n0
		case 1:
			acc += nd.val * 3
			curRef = nd.n1
		default:
			acc -= nd.val
			curRef = nd.n0
		}
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = nodeBase
			for i, nd := range g {
				base := uint64(nodeBase) + uint64(i)*32
				m.Write64(base, nd.kind)
				m.Write64(base+8, nd.val)
				m.Write64(base+16, nd.n0)
				m.Write64(base+24, nd.n1)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			if err := checkReg(regs, 7, acc); err != nil {
				return fmt.Errorf("gcc: %w", err)
			}
			return nil
		},
	}, nil
}

// gzip: LZ77-style hash-chain matching — hash three bytes, probe the head
// table, compare candidate bytes with an early-exit loop.
func buildGzip(scale int) (*Instance, error) {
	n := 48 * scale
	dataLen := n
	const dataBase = 0x20_0000
	const headBase = 0x21_0000 // 64 buckets

	b := prog.NewBuilder()
	outer := b.Block("gz_outer")
	i := outer.Read(2)
	db := outer.Read(1)
	hb := outer.Read(3)
	c0 := outer.Load(outer.Add(db, i), 0, 1, false)
	c1 := outer.Load(outer.Add(db, i), 1, 1, false)
	c2 := outer.Load(outer.Add(db, i), 2, 1, false)
	h := outer.AndI(outer.Add(outer.MulI(outer.Add(outer.MulI(c0, 33), c1), 33), c2), 63)
	hAddr := outer.Add(hb, outer.ShlI(h, 3))
	cand := outer.Load(hAddr, 0, 8, false)
	outer.Store(hAddr, i, 0, 8)
	outer.Write(6, cand)
	outer.Write(5, outer.Const(0)) // match length
	outer.Branch("gz_cmp")

	cmp := b.Block("gz_cmp")
	t := cmp.Read(5)
	dbc := cmp.Read(1)
	a := cmp.Load(cmp.Add(cmp.Add(dbc, cmp.Read(2)), t), 0, 1, false)
	c := cmp.Load(cmp.Add(cmp.Add(dbc, cmp.Read(6)), t), 0, 1, false)
	eq := cmp.Op(isa.OpEq, a, c)
	t2 := cmp.AddI(t, 1)
	cmp.Write(5, cmp.Select(eq, t2, t))
	more := cmp.Op(isa.OpAnd, eq, cmp.OpI(isa.OpLt, t2, 4))
	cmp.BranchIf(more, "gz_cmp", "gz_done")

	done := b.Block("gz_done")
	done.Write(7, done.Add(done.Read(7), done.Read(5)))
	loopCtlI(done, 2, 1, int64(n), "gz_outer", exitLabel)
	haltBlock(b)
	p, err := b.Program("gz_outer")
	if err != nil {
		return nil, err
	}

	data := make([]byte, dataLen+8)
	r := lcg(929)
	for i := range data {
		data[i] = byte(r.intn(4)) // small alphabet: matches happen
	}
	head := make([]uint64, 64)
	var acc uint64
	for i := 0; i < n; i++ {
		h := ((uint64(data[i])*33+uint64(data[i+1]))*33 + uint64(data[i+2])) & 63
		cand := head[h]
		head[h] = uint64(i)
		mlen := uint64(0)
		for t := uint64(0); t < 4; t++ {
			if data[uint64(i)+t] != data[cand+t] {
				break
			}
			mlen = t + 1
		}
		acc += mlen
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = dataBase
			regs[3] = headBase
			m.WriteBytes(dataBase, data)
			for i := range head {
				m.Write64(headBase+uint64(i)*8, 0)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			if err := checkReg(regs, 7, acc); err != nil {
				return fmt.Errorf("gzip: %w", err)
			}
			return nil
		},
	}, nil
}

// mcf: the memory-bound pointer chase — a ring of nodes with a large
// stride so every access leaves the L1.
func buildMcf(scale int) (*Instance, error) {
	steps := 384 * scale
	const nodes = 2048
	const stride = 2048
	const ringBase = 0x40_0000

	b := prog.NewBuilder()
	bb := b.Block("mc_loop")
	cur := bb.Read(5)
	next := bb.Load(cur, 0, 8, false)
	cost := bb.Load(cur, 8, 8, false)
	bb.Write(5, next)
	bb.Write(7, bb.Add(bb.Read(7), cost))
	loopCtlI(bb, 2, 1, int64(steps), "mc_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("mc_loop")
	if err != nil {
		return nil, err
	}

	perm := make([]uint64, nodes)
	for i := range perm {
		perm[i] = uint64((i*1237 + 1) % nodes) // fixed-point-free-ish ring
	}
	costs := make([]uint64, nodes)
	r := lcg(3133)
	for i := range costs {
		costs[i] = r.intn(97)
	}
	var acc uint64
	curRef := uint64(0)
	for s := 0; s < steps; s++ {
		acc += costs[curRef]
		curRef = perm[curRef]
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[5] = ringBase
			for i := 0; i < nodes; i++ {
				addr := uint64(ringBase) + uint64(i)*stride
				m.Write64(addr, uint64(ringBase)+perm[i]*stride)
				m.Write64(addr+8, costs[i])
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			if err := checkReg(regs, 7, acc); err != nil {
				return fmt.Errorf("mcf: %w", err)
			}
			return nil
		},
	}, nil
}

// parser: a byte-stream tokenizer with a two-state machine and per-class
// branches.
func buildParser(scale int) (*Instance, error) {
	n := 128 * scale
	const textBase = 0x20_0000

	b := prog.NewBuilder()
	bb := b.Block("pa_loop")
	i := bb.Read(2)
	tb := bb.Read(1)
	c := bb.Load(bb.Add(tb, i), 0, 1, false)
	ge := bb.Op(isa.OpLeU, bb.Const('a'), c)
	le := bb.Op(isa.OpLeU, c, bb.Const('z'))
	isAlpha := bb.Op(isa.OpAnd, ge, le)
	bb.Write(6, isAlpha)
	bb.BranchIf(isAlpha, "pa_alpha", "pa_other")

	alpha := b.Block("pa_alpha")
	inTok := alpha.Read(5)
	started := alpha.OpI(isa.OpEq, inTok, 0)
	alpha.Write(7, alpha.Add(alpha.Read(7), started)) // token count
	alpha.Write(5, alpha.Const(1))
	loopCtlI(alpha, 2, 1, int64(n), "pa_loop", exitLabel)

	other := b.Block("pa_other")
	other.Write(5, other.Const(0))
	other.Write(8, other.AddI(other.Read(8), 1)) // separator count
	loopCtlI(other, 2, 1, int64(n), "pa_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("pa_loop")
	if err != nil {
		return nil, err
	}

	text := make([]byte, n)
	r := lcg(2718)
	for i := range text {
		if r.intn(4) == 0 {
			text[i] = ' '
		} else {
			text[i] = byte('a' + r.intn(26))
		}
	}
	var tokens, seps uint64
	inTokRef := false
	for _, c := range text {
		if c >= 'a' && c <= 'z' {
			if !inTokRef {
				tokens++
			}
			inTokRef = true
		} else {
			inTokRef = false
			seps++
		}
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = textBase
			m.WriteBytes(textBase, text)
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			if err := checkReg(regs, 7, tokens); err != nil {
				return fmt.Errorf("parser tokens: %w", err)
			}
			if err := checkReg(regs, 8, seps); err != nil {
				return fmt.Errorf("parser seps: %w", err)
			}
			return nil
		},
	}, nil
}

// twolf: placement cost evaluation — random cell pairs, Manhattan
// distances via selects, best-cost tracking.
func buildTwolf(scale int) (*Instance, error) {
	iters := 64 * scale
	const cells = 128
	const xyBase = 0x20_0000 // x[i], y[i] interleaved (16 bytes per cell)

	const lcgMul = 6364136223846793005
	const lcgAdd = 1442695040888963407

	b := prog.NewBuilder()
	bb := b.Block("tw_loop")
	seed := bb.Read(5)
	xyb := bb.Read(1)
	s1 := bb.AddI(bb.MulI(seed, lcgMul), lcgAdd)
	aIdx := bb.AndI(bb.ShrI(s1, 17), cells-1)
	s2 := bb.AddI(bb.MulI(s1, lcgMul), lcgAdd)
	bIdx := bb.AndI(bb.ShrI(s2, 17), cells-1)
	bb.Write(5, s2)
	aAddr := bb.Add(xyb, bb.ShlI(aIdx, 4))
	bAddr := bb.Add(xyb, bb.ShlI(bIdx, 4))
	xa := bb.Load(aAddr, 0, 8, false)
	ya := bb.Load(aAddr, 8, 8, false)
	xb := bb.Load(bAddr, 0, 8, false)
	yb := bb.Load(bAddr, 8, 8, false)
	dx1 := bb.Sub(xa, xb)
	dx2 := bb.Sub(xb, xa)
	dxPos := bb.Op(isa.OpLt, dx1, bb.Const(0))
	dx := bb.Select(dxPos, dx2, dx1)
	dy1 := bb.Sub(ya, yb)
	dy2 := bb.Sub(yb, ya)
	dyPos := bb.Op(isa.OpLt, dy1, bb.Const(0))
	dy := bb.Select(dyPos, dy2, dy1)
	cost := bb.Add(dx, dy)
	bb.Write(7, bb.Add(bb.Read(7), cost))
	best := bb.Read(8)
	better := bb.Op(isa.OpLtU, cost, best)
	bb.Write(8, bb.Select(better, cost, best))
	loopCtlI(bb, 2, 1, int64(iters), "tw_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("tw_loop")
	if err != nil {
		return nil, err
	}

	xs := make([]uint64, cells)
	ys := make([]uint64, cells)
	r := lcg(1112)
	for i := range xs {
		xs[i] = r.intn(1024)
		ys[i] = r.intn(1024)
	}
	var acc uint64
	bestRef := ^uint64(0)
	s := uint64(7)
	for it := 0; it < iters; it++ {
		s = s*lcgMul + lcgAdd
		a := (s >> 17) & (cells - 1)
		s = s*lcgMul + lcgAdd
		bI := (s >> 17) & (cells - 1)
		dx := int64(xs[a]) - int64(xs[bI])
		if dx < 0 {
			dx = -dx
		}
		dy := int64(ys[a]) - int64(ys[bI])
		if dy < 0 {
			dy = -dy
		}
		cost := uint64(dx + dy)
		acc += cost
		if cost < bestRef {
			bestRef = cost
		}
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = xyBase
			regs[5] = 7
			regs[8] = ^uint64(0)
			for i := 0; i < cells; i++ {
				m.Write64(xyBase+uint64(i)*16, xs[i])
				m.Write64(xyBase+uint64(i)*16+8, ys[i])
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			if err := checkReg(regs, 7, acc); err != nil {
				return fmt.Errorf("twolf acc: %w", err)
			}
			if err := checkReg(regs, 8, bestRef); err != nil {
				return fmt.Errorf("twolf best: %w", err)
			}
			return nil
		},
	}, nil
}

// vortex: hash-table lookups with linear probing — data-dependent probe
// chains over a memory-resident table.
func buildVortex(scale int) (*Instance, error) {
	queries := 64 * scale
	const buckets = 256
	const tabBase = 0x20_0000 // bucket: key, val (16 bytes)

	const lcgMul = 6364136223846793005
	const lcgAdd = 1442695040888963407
	var hashMul uint64 = 0x9E3779B97F4A7C15

	b := prog.NewBuilder()
	outer := b.Block("vx_outer")
	seed := outer.Read(5)
	s1 := outer.AddI(outer.MulI(seed, lcgMul), lcgAdd)
	outer.Write(5, s1)
	key := outer.OpI(isa.OpOr, outer.AndI(outer.ShrI(s1, 17), 1023), 1)
	outer.Write(6, key)
	h := outer.AndI(outer.ShrI(outer.MulI(key, int64(hashMul)), 56), buckets-1)
	outer.Write(9, h)
	outer.Branch("vx_probe")

	probe := b.Block("vx_probe")
	tb := probe.Read(1)
	hc := probe.Read(9)
	bAddr := probe.Add(tb, probe.ShlI(hc, 4))
	k := probe.Load(bAddr, 0, 8, false)
	probe.Write(10, probe.Load(bAddr, 8, 8, false))
	hit := probe.Op(isa.OpEq, k, probe.Read(6))
	empty := probe.OpI(isa.OpEq, k, 0)
	probe.Write(9, probe.AndI(probe.AddI(hc, 1), buckets-1))
	stop := probe.Op(isa.OpOr, hit, empty)
	probe.Write(11, hit)
	probe.BranchIf(stop, "vx_done", "vx_probe")

	done := b.Block("vx_done")
	wasHit := done.Read(11)
	val := done.Read(10)
	zero := done.Const(0)
	done.Write(7, done.Add(done.Read(7), done.Select(wasHit, val, zero)))
	done.Write(8, done.Add(done.Read(8), wasHit))
	loopCtlI(done, 2, 1, int64(queries), "vx_outer", exitLabel)
	haltBlock(b)
	p, err := b.Program("vx_outer")
	if err != nil {
		return nil, err
	}

	// Populate half the table with keys from the same key space.
	type bucket struct{ key, val uint64 }
	tab := make([]bucket, buckets)
	ins := lcg(5150)
	inserted := 0
	for inserted < buckets/2 {
		s := ins.next()
		key := (s & 1023) | 1
		h := key * hashMul >> 56 & (buckets - 1)
		for tab[h].key != 0 {
			if tab[h].key == key {
				break
			}
			h = (h + 1) & (buckets - 1)
		}
		if tab[h].key == 0 {
			tab[h] = bucket{key: key, val: ins.intn(1000)}
			inserted++
		}
	}
	// Reference queries.
	var valAcc, hitCount uint64
	s := uint64(31)
	for q := 0; q < queries; q++ {
		s = s*lcgMul + lcgAdd
		key := ((s >> 17) & 1023) | 1
		h := key * hashMul >> 56 & (buckets - 1)
		for {
			k := tab[h].key
			if k == key {
				valAcc += tab[h].val
				hitCount++
				break
			}
			if k == 0 {
				break
			}
			h = (h + 1) & (buckets - 1)
		}
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = tabBase
			regs[5] = 31
			for i, bk := range tab {
				m.Write64(tabBase+uint64(i)*16, bk.key)
				m.Write64(tabBase+uint64(i)*16+8, bk.val)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			if err := checkReg(regs, 7, valAcc); err != nil {
				return fmt.Errorf("vortex vals: %w", err)
			}
			if err := checkReg(regs, 8, hitCount); err != nil {
				return fmt.Errorf("vortex hits: %w", err)
			}
			return nil
		},
	}, nil
}
