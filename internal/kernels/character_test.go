package kernels

import (
	"testing"

	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
)

// Characterization tests: the suite must have the structural properties
// the paper's evaluation depends on — hand-optimized code in large
// hyperblocks, SPEC-style code in small branchy blocks, and a low/high
// ILP split that actually shows up in the dynamic instruction mix.

func TestHandOptimizedBlocksAreLarger(t *testing.T) {
	avgBlock := func(suite string) float64 {
		var sum, n float64
		for _, k := range All() {
			if k.Suite != suite {
				continue
			}
			inst, err := k.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			st := inst.Prog.StaticStats()
			sum += st.AvgBlockSize
			n++
		}
		return sum / n
	}
	hand := avgBlock("hand")
	specint := avgBlock("specint")
	if hand <= 1.5*specint {
		t.Fatalf("hand-optimized blocks (%.1f insts) should dwarf SPEC-INT blocks (%.1f)", hand, specint)
	}
}

func TestSuiteBranchRates(t *testing.T) {
	// SPEC-INT-style kernels must execute far more branches per
	// instruction than the hand-optimized kernels.
	dynBranchRate := func(name string) float64 {
		k, _ := ByName(name)
		inst, err := k.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		m := exec.NewMachine(inst.Prog)
		inst.Init(&m.Regs, m.Mem.(*exec.PageMem))
		st, err := m.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return float64(st.Blocks) / float64(st.Useful)
	}
	if conv, bzip2 := dynBranchRate("conv"), dynBranchRate("bzip2"); bzip2 < 2*conv {
		t.Fatalf("bzip2 branch rate %.3f should far exceed conv %.3f", bzip2, conv)
	}
}

func TestMemoryBoundKernelMissesCaches(t *testing.T) {
	// mcf's ring stride is built to escape an 8KB L1: footprint must
	// exceed any single L1 by a wide margin.
	k, _ := ByName("mcf")
	inst, err := k.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	m := exec.NewMachine(inst.Prog)
	inst.Init(&m.Regs, m.Mem.(*exec.PageMem))
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	// 2048 nodes x 2KB stride = 4MB footprint.
	if footprint := 2048 * 2048; footprint < 64*(8<<10) {
		t.Fatalf("mcf footprint %d too small", footprint)
	}
}

func TestAllKernelsWithinISALimits(t *testing.T) {
	for _, k := range All() {
		inst, err := k.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for _, blk := range inst.Prog.Blocks {
			if err := blk.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", k.Name, blk.Name, err)
			}
			if len(blk.Insts) > isa.MaxBlockInsts {
				t.Fatalf("%s/%s: %d slots", k.Name, blk.Name, len(blk.Insts))
			}
		}
	}
}

func TestFPKernelsUseFPUnits(t *testing.T) {
	for _, name := range []string{"ammp", "applu", "art", "equake", "mesa", "swim", "ct", "basefp", "bezier"} {
		k, ok := ByName(name)
		if !ok {
			t.Fatal(name)
		}
		inst, err := k.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		fp := 0
		for _, blk := range inst.Prog.Blocks {
			for i := range blk.Insts {
				if blk.Insts[i].Op.IsFP() {
					fp++
				}
			}
		}
		if fp == 0 {
			t.Errorf("%s: no FP instructions", name)
		}
		_ = k
	}
}

func TestIntKernelsAvoidFPUnits(t *testing.T) {
	for _, name := range []string{"conv", "bzip2", "mcf", "gzip", "parser", "vortex", "8b10b"} {
		k, _ := ByName(name)
		inst, err := k.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, blk := range inst.Prog.Blocks {
			for i := range blk.Insts {
				if blk.Insts[i].Op.IsFP() {
					t.Fatalf("%s: unexpected FP op in %s", name, blk.Name)
				}
			}
		}
	}
}

func TestKernelDeterminism(t *testing.T) {
	// Building and running a kernel twice must give identical dynamics.
	k, _ := ByName("genalg")
	run := func() (uint64, [4]uint64) {
		inst, err := k.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		m := exec.NewMachine(inst.Prog)
		inst.Init(&m.Regs, m.Mem.(*exec.PageMem))
		st, err := m.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st.Fired, [4]uint64{m.Regs[1], m.Regs[2], m.Regs[5], m.Regs[6]}
	}
	f1, r1 := run()
	f2, r2 := run()
	if f1 != f2 || r1 != r2 {
		t.Fatalf("non-deterministic kernel: %d/%v vs %d/%v", f1, r1, f2, r2)
	}
}
