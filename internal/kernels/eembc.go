package kernels

import (
	"fmt"
	"math"

	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// The seven EEMBC-style embedded kernels of Table 1: a2time, autcor,
// basefp, bezier, dither, rspeed, tblook.

func init() {
	register(Kernel{Name: "a2time", Suite: "eembc", HighILP: false, Build: buildA2time})
	register(Kernel{Name: "autcor", Suite: "eembc", HighILP: true, Build: buildAutcor})
	register(Kernel{Name: "basefp", Suite: "eembc", HighILP: true, Build: buildBasefp})
	register(Kernel{Name: "bezier", Suite: "eembc", HighILP: true, Build: buildBezier})
	register(Kernel{Name: "dither", Suite: "eembc", HighILP: false, Build: buildDither})
	register(Kernel{Name: "rspeed", Suite: "eembc", HighILP: false, Build: buildRspeed})
	register(Kernel{Name: "tblook", Suite: "eembc", HighILP: false, Build: buildTblook})
}

// a2time: angle-to-time pulse conversion with divides, window checks and
// predicated accumulation.
func buildA2time(scale int) (*Instance, error) {
	n := 64 * scale
	const angBase = 0x20_0000
	const rpmBase = 0x21_0000

	b := prog.NewBuilder()
	bb := b.Block("a2_loop")
	i := bb.Read(2)
	ab := bb.Read(1)
	rb := bb.Read(3)
	angle := bb.Load(bb.Add(ab, bb.ShlI(i, 3)), 0, 8, false)
	rpm := bb.Load(bb.Add(rb, bb.ShlI(bb.AndI(i, 7), 3)), 0, 8, false)
	tv := bb.Op(isa.OpDivU, bb.MulI(angle, 3600), rpm)
	inLo := bb.Op(isa.OpLeU, bb.Const(100), tv)
	inHi := bb.OpI(isa.OpLtU, tv, 5000)
	inWin := bb.Op(isa.OpAnd, inLo, inHi)
	zero := bb.Const(0)
	add := bb.Select(inWin, tv, zero)
	bb.Write(7, bb.Add(bb.Read(7), add))
	bb.Write(8, bb.Add(bb.Read(8), inWin))
	loopCtlI(bb, 2, 1, int64(n), "a2_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("a2_loop")
	if err != nil {
		return nil, err
	}

	ang := make([]uint64, n)
	rpmTab := [8]uint64{600, 900, 1200, 1800, 2400, 3000, 3600, 4500}
	r := lcg(31337)
	for i := range ang {
		ang[i] = r.intn(720)
	}
	var acc, count uint64
	for i := 0; i < n; i++ {
		tv := ang[i] * 3600 / rpmTab[i&7]
		if tv >= 100 && tv < 5000 {
			acc += tv
			count++
		}
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = angBase
			regs[3] = rpmBase
			for i, v := range ang {
				m.Write64(angBase+uint64(i)*8, v)
			}
			for i, v := range rpmTab {
				m.Write64(rpmBase+uint64(i)*8, v)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			if err := checkReg(regs, 7, acc); err != nil {
				return fmt.Errorf("a2time acc: %w", err)
			}
			if err := checkReg(regs, 8, count); err != nil {
				return fmt.Errorf("a2time count: %w", err)
			}
			return nil
		},
	}, nil
}

// autcor: fixed-point autocorrelation r[k] = sum x[i]*x[i+k], unrolled 8
// MACs per block.
func buildAutcor(scale int) (*Instance, error) {
	chunks := 8 * scale // 8 samples per chunk
	n := chunks * 8
	const xBase = 0x20_0000
	const rBase = 0x2a_0000

	b := prog.NewBuilder()
	inner := b.Block("ac_inner")
	c := inner.Read(2)
	k := inner.Read(5)
	acc := inner.Read(6)
	xb := inner.Read(1)
	a1 := inner.Add(xb, inner.ShlI(c, 6))
	a2 := inner.Add(a1, inner.ShlI(k, 3))
	sum := acc
	for j := int64(0); j < 8; j++ {
		v1 := inner.Load(a1, j*8, 8, false)
		v2 := inner.Load(a2, j*8, 8, false)
		sum = inner.Add(sum, inner.Mul(v1, v2))
	}
	inner.Write(6, sum)
	loopCtlI(inner, 2, 1, int64(chunks), "ac_inner", "ac_store")

	st := b.Block("ac_store")
	k2 := st.Read(5)
	rb := st.Read(3)
	st.Store(st.Add(rb, st.ShlI(k2, 3)), st.Read(6), 0, 8)
	st.Write(6, st.Const(0))
	st.Write(2, st.Const(0))
	k3 := st.AddI(k2, 1)
	st.Write(5, k3)
	st.BranchIf(st.OpI(isa.OpLt, k3, 8), "ac_inner", exitLabel)
	haltBlock(b)
	p, err := b.Program("ac_inner")
	if err != nil {
		return nil, err
	}

	xs := make([]uint64, n+8)
	r := lcg(99)
	for i := range xs {
		xs[i] = r.intn(1 << 12)
	}
	var want [8]uint64
	for k := 0; k < 8; k++ {
		var acc uint64
		for c := 0; c < chunks; c++ {
			for j := 0; j < 8; j++ {
				acc += xs[c*8+j] * xs[c*8+j+k]
			}
		}
		want[k] = acc
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = xBase
			regs[3] = rBase
			for i, v := range xs {
				m.Write64(xBase+uint64(i)*8, v)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			for k, w := range want {
				if err := checkMem64(m, rBase+uint64(k)*8, k, w); err != nil {
					return fmt.Errorf("autcor: %w", err)
				}
			}
			return nil
		},
	}, nil
}

// basefp: floating-point arithmetic mix, unrolled 4 per block.
func buildBasefp(scale int) (*Instance, error) {
	n := 128 * scale
	const aBase = 0x20_0000
	const bBase = 0x22_0000
	const yBase = 0x24_0000

	b := prog.NewBuilder()
	bb := b.Block("bf_loop")
	i := bb.Read(2)
	ab := bb.Read(1)
	bbase := bb.Read(3)
	yb := bb.Read(4)
	s := bb.Read(10)
	tt := bb.Read(11)
	u := bb.Read(12)
	aAddr := bb.Add(ab, bb.ShlI(i, 3))
	bAddr := bb.Add(bbase, bb.ShlI(i, 3))
	yAddr := bb.Add(yb, bb.ShlI(i, 3))
	for j := int64(0); j < 4; j++ {
		av := bb.Load(aAddr, j*8, 8, false)
		bv := bb.Load(bAddr, j*8, 8, false)
		num := bb.Op(isa.OpFAdd, bb.Op(isa.OpFMul, av, s), tt)
		den := bb.Op(isa.OpFAdd, bv, u)
		bb.Store(yAddr, bb.Op(isa.OpFDiv, num, den), j*8, 8)
	}
	loopCtlI(bb, 2, 4, int64(n), "bf_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("bf_loop")
	if err != nil {
		return nil, err
	}

	const sVal, tVal, uVal = 1.5, 0.25, 2.0
	as := make([]float64, n)
	bs := make([]float64, n)
	r := lcg(55)
	for i := range as {
		as[i] = float64(int64(r.intn(1000)) - 500)
		bs[i] = float64(r.intn(900)) + 1
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = (as[i]*sVal + tVal) / (bs[i] + uVal)
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = aBase
			regs[3] = bBase
			regs[4] = yBase
			regs[10] = math.Float64bits(sVal)
			regs[11] = math.Float64bits(tVal)
			regs[12] = math.Float64bits(uVal)
			for i := range as {
				m.WriteF64(aBase+uint64(i)*8, as[i])
				m.WriteF64(bBase+uint64(i)*8, bs[i])
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			for i, w := range want {
				if err := checkMem64(m, yBase+uint64(i)*8, i, math.Float64bits(w)); err != nil {
					return fmt.Errorf("basefp: %w", err)
				}
			}
			return nil
		},
	}, nil
}

// bezier: cubic Bezier curve evaluation, one point per hyperblock.
func buildBezier(scale int) (*Instance, error) {
	n := 32 * scale
	const outBase = 0x26_0000

	b := prog.NewBuilder()
	bb := b.Block("bz_loop")
	i := bb.Read(2)
	ob := bb.Read(1)
	dt := bb.Read(9)
	t := bb.Op(isa.OpFMul, bb.Op1(isa.OpIToF, i), dt)
	one := bb.ConstF(1)
	mt := bb.Op(isa.OpFSub, one, t)
	mt2 := bb.Op(isa.OpFMul, mt, mt)
	mt3 := bb.Op(isa.OpFMul, mt2, mt)
	t2 := bb.Op(isa.OpFMul, t, t)
	t3 := bb.Op(isa.OpFMul, t2, t)
	three := bb.ConstF(3)
	b1 := bb.Op(isa.OpFMul, bb.Op(isa.OpFMul, three, mt2), t)
	b2 := bb.Op(isa.OpFMul, bb.Op(isa.OpFMul, three, mt), t2)
	outAddr := bb.Add(ob, bb.ShlI(i, 4))
	for dim := 0; dim < 2; dim++ {
		p0 := bb.Read(10 + dim*4)
		p1 := bb.Read(11 + dim*4)
		p2 := bb.Read(12 + dim*4)
		p3 := bb.Read(13 + dim*4)
		v := bb.Op(isa.OpFAdd,
			bb.Op(isa.OpFAdd, bb.Op(isa.OpFMul, mt3, p0), bb.Op(isa.OpFMul, b1, p1)),
			bb.Op(isa.OpFAdd, bb.Op(isa.OpFMul, b2, p2), bb.Op(isa.OpFMul, t3, p3)))
		bb.Store(outAddr, v, int64(dim)*8, 8)
	}
	loopCtlI(bb, 2, 1, int64(n), "bz_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("bz_loop")
	if err != nil {
		return nil, err
	}

	ctrl := [2][4]float64{{0, 1.5, 3.5, 5}, {0, 4, -2, 1}}
	dtVal := 1.0 / float64(n)
	want := make([][2]float64, n)
	for i := 0; i < n; i++ {
		t := float64(int64(i)) * dtVal
		mt := 1 - t
		mt2 := mt * mt
		mt3 := mt2 * mt
		t2 := t * t
		t3 := t2 * t
		b1 := (3 * mt2) * t
		b2 := (3 * mt) * t2
		for dim := 0; dim < 2; dim++ {
			c := ctrl[dim]
			want[i][dim] = (mt3*c[0] + b1*c[1]) + (b2*c[2] + t3*c[3])
		}
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = outBase
			regs[9] = math.Float64bits(dtVal)
			for dim := 0; dim < 2; dim++ {
				for j := 0; j < 4; j++ {
					regs[10+dim*4+j] = math.Float64bits(ctrl[dim][j])
				}
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			for i := 0; i < n; i++ {
				for dim := 0; dim < 2; dim++ {
					addr := outBase + uint64(i)*16 + uint64(dim)*8
					if err := checkMem64(m, addr, i, math.Float64bits(want[i][dim])); err != nil {
						return fmt.Errorf("bezier: %w", err)
					}
				}
			}
			return nil
		},
	}, nil
}

// dither: serial error-diffusion thresholding, 4 pixels per block with a
// loop-carried error term and predicated outputs.
func buildDither(scale int) (*Instance, error) {
	n := 128 * scale
	const imgBase = 0x20_0000
	const outBase = 0x23_0000

	b := prog.NewBuilder()
	bb := b.Block("dt_loop")
	i := bb.Read(2)
	ib := bb.Read(1)
	ob := bb.Read(3)
	err0 := bb.Read(7)
	iAddr := bb.Add(ib, i)
	oAddr := bb.Add(ob, i)
	errv := err0
	for j := int64(0); j < 4; j++ {
		px := bb.Load(iAddr, j, 1, false)
		v := bb.Add(px, errv)
		hi := bb.Op(isa.OpLe, bb.Const(128), v)
		out := bb.Select(hi, bb.Const(255), bb.Const(0))
		bb.Store(oAddr, out, j, 1)
		errv = bb.Sub(v, out)
	}
	bb.Write(7, errv)
	loopCtlI(bb, 2, 4, int64(n), "dt_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("dt_loop")
	if err != nil {
		return nil, err
	}

	img := make([]byte, n)
	r := lcg(2020)
	for i := range img {
		img[i] = byte(r.intn(256))
	}
	want := make([]byte, n)
	var e int64
	for i := 0; i < n; i++ {
		v := int64(img[i]) + e
		var out int64
		if v >= 128 {
			out = 255
		}
		want[i] = byte(out)
		e = v - out
	}
	finalErr := uint64(e)

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = imgBase
			regs[3] = outBase
			m.WriteBytes(imgBase, img)
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			got := m.ReadBytes(outBase, n)
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("dither: pixel %d = %d, want %d", i, got[i], want[i])
				}
			}
			if err := checkReg(regs, 7, finalErr); err != nil {
				return fmt.Errorf("dither err: %w", err)
			}
			return nil
		},
	}, nil
}

// rspeed: road-speed computation with divides, clamping selects and
// accumulation.
func buildRspeed(scale int) (*Instance, error) {
	n := 64 * scale
	const tsBase = 0x20_0000

	b := prog.NewBuilder()
	bb := b.Block("rs_loop")
	i := bb.Read(2)
	tb := bb.Read(1)
	dist := bb.Read(10)
	addr := bb.Add(tb, bb.ShlI(i, 3))
	t0 := bb.Load(addr, 0, 8, false)
	t1 := bb.Load(addr, 8, 8, false)
	dt := bb.Sub(t1, t0)
	zero := bb.OpI(isa.OpEq, dt, 0)
	dtSafe := bb.Select(zero, bb.Const(1), dt)
	speed := bb.Op(isa.OpDivU, bb.MulI(dist, 3600), dtSafe)
	over := bb.Op(isa.OpLtU, bb.Const(200), speed)
	clamped := bb.Select(over, bb.Const(200), speed)
	bb.Write(7, bb.Add(bb.Read(7), clamped))
	fast := bb.Op(isa.OpLtU, bb.Const(120), clamped)
	bb.Write(8, bb.Add(bb.Read(8), fast))
	loopCtlI(bb, 2, 1, int64(n), "rs_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("rs_loop")
	if err != nil {
		return nil, err
	}

	ts := make([]uint64, n+1)
	r := lcg(606)
	cur := uint64(1000)
	for i := range ts {
		ts[i] = cur
		cur += 30 + r.intn(300)
	}
	const distVal = 5
	var acc, fastCount uint64
	for i := 0; i < n; i++ {
		dt := ts[i+1] - ts[i]
		if dt == 0 {
			dt = 1
		}
		speed := distVal * 3600 / dt
		if speed > 200 {
			speed = 200
		}
		acc += speed
		if speed > 120 {
			fastCount++
		}
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = tsBase
			regs[10] = distVal
			for i, v := range ts {
				m.Write64(tsBase+uint64(i)*8, v)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			if err := checkReg(regs, 7, acc); err != nil {
				return fmt.Errorf("rspeed acc: %w", err)
			}
			if err := checkReg(regs, 8, fastCount); err != nil {
				return fmt.Errorf("rspeed count: %w", err)
			}
			return nil
		},
	}, nil
}

// tblook: table lookup with linear interpolation and index clamping;
// dependent loads.
func buildTblook(scale int) (*Instance, error) {
	n := 64 * scale
	const inBase = 0x20_0000
	const tabBase = 0x21_0000

	b := prog.NewBuilder()
	bb := b.Block("tb_loop")
	i := bb.Read(2)
	inb := bb.Read(1)
	tabb := bb.Read(3)
	x := bb.Load(bb.Add(inb, bb.ShlI(i, 3)), 0, 8, false)
	idx := bb.ShrI(x, 8)
	hi := bb.Op(isa.OpLtU, bb.Const(14), idx)
	idxC := bb.Select(hi, bb.Const(14), idx)
	tAddr := bb.Add(tabb, bb.ShlI(idxC, 3))
	base := bb.Load(tAddr, 0, 8, false)
	next := bb.Load(tAddr, 8, 8, false)
	frac := bb.AndI(x, 255)
	delta := bb.Sub(next, base)
	y := bb.Add(base, bb.ShrI(bb.Mul(delta, frac), 8))
	bb.Write(7, bb.Add(bb.Read(7), y))
	loopCtlI(bb, 2, 1, int64(n), "tb_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("tb_loop")
	if err != nil {
		return nil, err
	}

	tab := make([]uint64, 16)
	for i := range tab {
		tab[i] = uint64(i*i*100 + 7)
	}
	in := make([]uint64, n)
	r := lcg(888)
	for i := range in {
		in[i] = r.intn(16 * 256 * 2) // half the inputs clamp
	}
	var acc uint64
	for i := 0; i < n; i++ {
		x := in[i]
		idx := x >> 8
		if idx > 14 {
			idx = 14
		}
		base, next := tab[idx], tab[idx+1]
		frac := x & 255
		acc += base + ((next-base)*frac)>>8
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = inBase
			regs[3] = tabBase
			for i, v := range in {
				m.Write64(inBase+uint64(i)*8, v)
			}
			for i, v := range tab {
				m.Write64(tabBase+uint64(i)*8, v)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			if err := checkReg(regs, 7, acc); err != nil {
				return fmt.Errorf("tblook: %w", err)
			}
			return nil
		},
	}, nil
}
