package kernels

import (
	"fmt"

	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// The two Versabench-style kernels of Table 1: 802.11b spreading and
// 8b/10b line coding.

func init() {
	register(Kernel{Name: "802.11b", Suite: "versa", HighILP: true, Build: build80211b})
	register(Kernel{Name: "8b10b", Suite: "versa", HighILP: false, Build: build8b10b})
}

// 802.11b: Barker-sequence spreading with a scrambler: each input byte is
// spread bit-by-bit against an 11-chip code (folded to 8 here), XORed with
// a scrambler byte, and stored.  All eight chip lanes compute in parallel
// — a wide, bit-twiddling hyperblock.
func build80211b(scale int) (*Instance, error) {
	n := 64 * scale
	const inBase = 0x20_0000
	const outBase = 0x22_0000
	const barker = 0b10110111

	b := prog.NewBuilder()
	bb := b.Block("wl_loop")
	i := bb.Read(2)
	inb := bb.Read(1)
	outb := bb.Read(3)
	scr := bb.Read(5)
	sym := bb.Load(bb.Add(inb, i), 0, 1, false)
	var chips prog.Ref
	for k := int64(0); k < 8; k++ {
		bit := bb.AndI(bb.ShrI(sym, k), 1)
		spread := bb.OpI(isa.OpXor, bit, (barker>>uint(k))&1)
		lane := bb.ShlI(spread, k)
		if k == 0 {
			chips = lane
		} else {
			chips = bb.Op(isa.OpOr, chips, lane)
		}
	}
	out := bb.Op(isa.OpXor, chips, bb.AndI(scr, 0xff))
	bb.Store(bb.Add(outb, i), out, 0, 1)
	scr2 := bb.AddI(bb.MulI(scr, 5), 1)
	bb.Write(5, scr2)
	loopCtlI(bb, 2, 1, int64(n), "wl_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("wl_loop")
	if err != nil {
		return nil, err
	}

	in := make([]byte, n)
	r := lcg(808)
	for i := range in {
		in[i] = byte(r.intn(256))
	}
	want := make([]byte, n)
	scrRef := uint64(0x1234)
	for i := 0; i < n; i++ {
		var chips uint64
		for k := 0; k < 8; k++ {
			bit := uint64(in[i]>>uint(k)) & 1
			chips |= (bit ^ uint64((barker>>uint(k))&1)) << uint(k)
		}
		want[i] = byte(chips ^ (scrRef & 0xff))
		scrRef = scrRef*5 + 1
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = inBase
			regs[3] = outBase
			regs[5] = 0x1234
			m.WriteBytes(inBase, in)
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			got := m.ReadBytes(outBase, n)
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("802.11b: byte %d = %#x, want %#x", i, got[i], want[i])
				}
			}
			return nil
		},
	}, nil
}

// 8b10b: table-driven line coding with a running-disparity feedback loop:
// two code tables (positive/negative disparity) for the 5b/6b and 3b/4b
// halves, selected by the current disparity, which flips when the chosen
// code is unbalanced.
func build8b10b(scale int) (*Instance, error) {
	n := 64 * scale
	const inBase = 0x20_0000
	const outBase = 0x22_0000
	const t5pBase = 0x24_0000 // positive-disparity 5b/6b codes
	const t5nBase = 0x24_4000
	const t3pBase = 0x24_8000
	const t3nBase = 0x24_c000

	// Synthetic code tables: entry = code | flag<<15, flag = "unbalanced"
	// (flips the running disparity).
	gen := lcg(1010)
	t5p := make([]uint64, 32)
	t5n := make([]uint64, 32)
	for v := range t5p {
		code := gen.intn(64)
		flag := code & 1
		t5p[v] = code | flag<<15
		t5n[v] = (code ^ 0x3f) | flag<<15
	}
	t3p := make([]uint64, 8)
	t3n := make([]uint64, 8)
	for v := range t3p {
		code := gen.intn(16)
		flag := (code >> 1) & 1
		t3p[v] = code | flag<<15
		t3n[v] = (code ^ 0xf) | flag<<15
	}

	b := prog.NewBuilder()
	bb := b.Block("enc_loop")
	i := bb.Read(2)
	inb := bb.Read(1)
	outb := bb.Read(3)
	rd := bb.Read(5) // running disparity: 0 or 1
	sym := bb.Load(bb.Add(inb, i), 0, 1, false)
	lo := bb.AndI(sym, 31)
	hi := bb.ShrI(sym, 5)
	t5pb := bb.Read(10)
	t5nb := bb.Read(11)
	t3pb := bb.Read(12)
	t3nb := bb.Read(13)
	rdSet := bb.OpI(isa.OpNe, rd, 0)
	loOff := bb.ShlI(lo, 3)
	c5base := bb.Select(rdSet, bb.Add(t5nb, loOff), bb.Add(t5pb, loOff))
	e5 := bb.Load(c5base, 0, 8, false)
	rd2 := bb.Op(isa.OpXor, rd, bb.AndI(bb.ShrI(e5, 15), 1))
	rd2Set := bb.OpI(isa.OpNe, rd2, 0)
	hiOff := bb.ShlI(hi, 3)
	c3base := bb.Select(rd2Set, bb.Add(t3nb, hiOff), bb.Add(t3pb, hiOff))
	e3 := bb.Load(c3base, 0, 8, false)
	rd3 := bb.Op(isa.OpXor, rd2, bb.AndI(bb.ShrI(e3, 15), 1))
	bb.Write(5, rd3)
	code := bb.Op(isa.OpOr, bb.ShlI(bb.AndI(e5, 0x3f), 4), bb.AndI(e3, 0xf))
	bb.Store(bb.Add(outb, bb.ShlI(i, 1)), code, 0, 2)
	loopCtlI(bb, 2, 1, int64(n), "enc_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("enc_loop")
	if err != nil {
		return nil, err
	}

	in := make([]byte, n)
	r := lcg(2021)
	for i := range in {
		in[i] = byte(r.intn(256))
	}
	want := make([]uint16, n)
	rdRef := uint64(0)
	for i := 0; i < n; i++ {
		lo := uint64(in[i]) & 31
		hi := uint64(in[i]) >> 5
		var e5 uint64
		if rdRef != 0 {
			e5 = t5n[lo]
		} else {
			e5 = t5p[lo]
		}
		rdRef ^= (e5 >> 15) & 1
		var e3 uint64
		if rdRef != 0 {
			e3 = t3n[hi]
		} else {
			e3 = t3p[hi]
		}
		rdRef ^= (e3 >> 15) & 1
		want[i] = uint16((e5&0x3f)<<4 | e3&0xf)
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = inBase
			regs[3] = outBase
			regs[5] = 0
			regs[10] = t5pBase
			regs[11] = t5nBase
			regs[12] = t3pBase
			regs[13] = t3nBase
			m.WriteBytes(inBase, in)
			for v := 0; v < 32; v++ {
				m.Write64(t5pBase+uint64(v)*8, t5p[v])
				m.Write64(t5nBase+uint64(v)*8, t5n[v])
			}
			for v := 0; v < 8; v++ {
				m.Write64(t3pBase+uint64(v)*8, t3p[v])
				m.Write64(t3nBase+uint64(v)*8, t3n[v])
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			for i, w := range want {
				got := uint16(m.Load(outBase+uint64(i)*2, 2, false))
				if got != w {
					return fmt.Errorf("8b10b: code %d = %#x, want %#x", i, got, w)
				}
			}
			return nil
		},
	}, nil
}
