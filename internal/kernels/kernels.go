// Package kernels provides the 26-benchmark workload suite mirroring the
// paper's Table 1 mix: 3 hand-optimized kernels (conv, ct, genalg), 7
// EEMBC-style embedded kernels, 2 Versabench-style kernels (802.11b,
// 8b10b), and 14 SPEC-CPU-style kernels (8 integer, 6 floating point).
//
// Each kernel is an EDGE program built with the prog builder, a
// deterministic input generator, and a pure-Go reference implementation
// used to validate functional and timing-simulator runs bit-for-bit.
// Hand-optimized kernels use large, unrolled, predicated hyperblocks (the
// TRIPS hand-optimization style); SPEC-style kernels use small basic-block
// shaped blocks with frequent branches, mimicking the output quality of
// the academic compiler — the property driving the paper's Figure 5
// split (TRIPS wins hand-optimized code, loses compiled SPEC INT).
package kernels

import (
	"fmt"
	"sort"

	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// Instance is one runnable kernel: program, input setup and output check.
type Instance struct {
	Prog *prog.Program
	// Init seeds architectural registers and memory.
	Init func(regs *[isa.NumRegs]uint64, m *exec.PageMem)
	// Check validates the final architectural state against the Go
	// reference implementation.
	Check func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error
}

// Kernel is one benchmark in the suite.
type Kernel struct {
	Name    string
	Suite   string // "hand", "eembc", "versa", "specint", "specfp", "ll"
	HighILP bool
	// Extra marks kernels outside the paper's 26-benchmark Table 1 mix
	// (e.g. the Livermore loops); they are excluded from All() so the
	// regenerated figures keep the paper's population.
	Extra bool
	Build func(scale int) (*Instance, error)
}

var registry = map[string]Kernel{}
var order []string

func register(k Kernel) {
	if _, dup := registry[k.Name]; dup {
		panic("kernels: duplicate " + k.Name)
	}
	registry[k.Name] = k
	order = append(order, k.Name)
}

// All returns the paper's 26-kernel suite, hand-optimized suites first,
// then SPEC-style, in stable registration order.
func All() []Kernel {
	names := append([]string(nil), order...)
	rank := map[string]int{"hand": 0, "eembc": 1, "versa": 2, "specint": 3, "specfp": 4, "ll": 5}
	sort.SliceStable(names, func(i, j int) bool {
		return rank[registry[names[i]].Suite] < rank[registry[names[j]].Suite]
	})
	ks := make([]Kernel, 0, len(names))
	for _, n := range names {
		if registry[n].Extra {
			continue
		}
		ks = append(ks, registry[n])
	}
	return ks
}

// Extras returns the kernels beyond the paper's Table 1 population (the
// Livermore loops).
func Extras() []Kernel {
	var ks []Kernel
	for _, n := range order {
		if registry[n].Extra {
			ks = append(ks, registry[n])
		}
	}
	return ks
}

// ByName looks a kernel up.
func ByName(name string) (Kernel, bool) {
	k, ok := registry[name]
	return k, ok
}

// Names lists all kernel names in suite order.
func Names() []string {
	var ns []string
	for _, k := range All() {
		ns = append(ns, k.Name)
	}
	return ns
}

// HandOptimized returns the 12 hand-optimized benchmarks (hand + EEMBC +
// Versabench) used for the paper's multiprogrammed workloads (§7).
func HandOptimized() []Kernel {
	var ks []Kernel
	for _, k := range All() {
		if k.Suite == "hand" || k.Suite == "eembc" || k.Suite == "versa" {
			ks = append(ks, k)
		}
	}
	return ks
}

// lcg is the deterministic input generator shared by kernels and
// references.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = (*r)*6364136223846793005 + 1442695040888963407
	return uint64(*r) >> 17
}

func (r *lcg) intn(n uint64) uint64 { return r.next() % n }

// Common check helpers.

func checkReg(regs *[isa.NumRegs]uint64, reg int, want uint64) error {
	if regs[reg] != want {
		return fmt.Errorf("r%d = %d (%#x), want %d (%#x)", reg, regs[reg], regs[reg], want, want)
	}
	return nil
}

func checkMem64(m *exec.PageMem, addr uint64, i int, want uint64) error {
	if got := m.Read64(addr); got != want {
		return fmt.Errorf("word %d @%#x = %d (%#x), want %d (%#x)", i, addr, got, got, want, want)
	}
	return nil
}

// loopCtlI emits the canonical induction update and back edge:
// iv += step; if iv < limit goto loop else goto done.
func loopCtlI(bb *prog.BlockBuilder, ivReg int, step int64, limit int64, loop, done string) {
	iv := bb.AddI(bb.Read(ivReg), step)
	bb.Write(ivReg, iv)
	bb.BranchIf(bb.OpI(isa.OpLt, iv, limit), loop, done)
}

// haltBlock appends the terminal block.
func haltBlock(b *prog.Builder) { b.Block("halt_exit").Halt() }

const exitLabel = "halt_exit"
