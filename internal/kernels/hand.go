package kernels

import (
	"fmt"
	"math"

	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// The three hand-optimized kernels of Table 1: conv, ct, genalg.  They use
// the TRIPS hand-optimization style: large unrolled hyperblocks,
// register-resident constants, and predication instead of short branches.

func init() {
	register(Kernel{Name: "conv", Suite: "hand", HighILP: true, Build: buildConv})
	register(Kernel{Name: "ct", Suite: "hand", HighILP: true, Build: buildCT})
	register(Kernel{Name: "genalg", Suite: "hand", HighILP: false, Build: buildGenalg})
}

// conv: 8-tap integer FIR filter, 2 outputs per hyperblock, taps held in
// registers.
func buildConv(scale int) (*Instance, error) {
	const taps = 8
	n := 66 * scale // divisible by the 3-output unroll
	const xBase = 0x20_0000
	const yBase = 0x28_0000

	b := prog.NewBuilder()
	bb := b.Block("conv_loop")
	i := bb.Read(2)
	xb := bb.Read(1)
	yb := bb.Read(3)
	xAddr := bb.Add(xb, bb.ShlI(i, 3))
	yAddr := bb.Add(yb, bb.ShlI(i, 3))
	// Three outputs per hyperblock: 24 loads + 3 stores fill most of the
	// block's memory slots, approximating the near-128-instruction
	// hyperblocks of the TRIPS hand optimizations.
	for u := int64(0); u < 3; u++ {
		var acc prog.Ref
		for k := int64(0); k < taps; k++ {
			x := bb.Load(xAddr, (u+k)*8, 8, false)
			m := bb.Mul(x, bb.Read(10+int(k)))
			if k == 0 {
				acc = m
			} else {
				acc = bb.Add(acc, m)
			}
		}
		bb.Store(yAddr, acc, u*8, 8)
	}
	loopCtlI(bb, 2, 3, int64(n), "conv_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("conv_loop")
	if err != nil {
		return nil, err
	}

	var h [taps]uint64
	x := make([]uint64, n+taps)
	r := lcg(12345)
	for k := range h {
		h[k] = r.intn(64)
	}
	for idx := range x {
		x[idx] = r.intn(1 << 16)
	}
	want := make([]uint64, n)
	for o := 0; o < n; o++ {
		var acc uint64
		for k := 0; k < taps; k++ {
			acc += x[o+k] * h[k]
		}
		want[o] = acc
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = xBase
			regs[3] = yBase
			for k := 0; k < taps; k++ {
				regs[10+k] = h[k]
			}
			for idx, v := range x {
				m.Write64(xBase+uint64(idx)*8, v)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			for o := 0; o < n; o++ {
				if err := checkMem64(m, yBase+uint64(o)*8, o, want[o]); err != nil {
					return fmt.Errorf("conv: %w", err)
				}
			}
			return nil
		},
	}, nil
}

// ct: 8-point cosine transform (DCT-II) applied to rows, floating point,
// 2 outputs per hyperblock with a memory-resident coefficient table.
func buildCT(scale int) (*Instance, error) {
	rows := 8 * scale
	const xBase = 0x20_0000
	const yBase = 0x28_0000
	const cBase = 0x30_0000 // cosTab[u][k] row-major

	b := prog.NewBuilder()
	bb := b.Block("ct_loop")
	// r2 counts output pairs: row = r2/4, u = (r2%4)*2.
	pair := bb.Read(2)
	xb := bb.Read(1)
	yb := bb.Read(3)
	cb := bb.Read(4)
	row := bb.ShrI(pair, 2)
	u0 := bb.ShlI(bb.AndI(pair, 3), 1)
	xAddr := bb.Add(xb, bb.ShlI(row, 6)) // row*8 elements*8 bytes
	yAddr := bb.Add(bb.Add(yb, bb.ShlI(row, 6)), bb.ShlI(u0, 3))
	cAddr := bb.Add(cb, bb.ShlI(u0, 6)) // u0 row of the table
	var xv [8]prog.Ref
	for k := int64(0); k < 8; k++ {
		xv[k] = bb.Load(xAddr, k*8, 8, false)
	}
	for du := int64(0); du < 2; du++ {
		var acc prog.Ref
		for k := int64(0); k < 8; k++ {
			cv := bb.Load(cAddr, du*64+k*8, 8, false)
			m := bb.Op(isa.OpFMul, xv[k], cv)
			if k == 0 {
				acc = m
			} else {
				acc = bb.Op(isa.OpFAdd, acc, m)
			}
		}
		bb.Store(yAddr, acc, du*8, 8)
	}
	loopCtlI(bb, 2, 1, int64(rows*4), "ct_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("ct_loop")
	if err != nil {
		return nil, err
	}

	ctab := make([]float64, 64)
	for u := 0; u < 8; u++ {
		for k := 0; k < 8; k++ {
			ctab[u*8+k] = math.Cos(math.Pi * float64(u) * (2*float64(k) + 1) / 16)
		}
	}
	xs := make([]float64, rows*8)
	r := lcg(777)
	for i := range xs {
		xs[i] = float64(int64(r.intn(512)) - 256)
	}
	want := make([]float64, rows*8)
	for row := 0; row < rows; row++ {
		for u := 0; u < 8; u++ {
			acc := xs[row*8] * ctab[u*8]
			for k := 1; k < 8; k++ {
				acc += xs[row*8+k] * ctab[u*8+k]
			}
			want[row*8+u] = acc
		}
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = xBase
			regs[3] = yBase
			regs[4] = cBase
			for i, v := range xs {
				m.WriteF64(xBase+uint64(i)*8, v)
			}
			for i, v := range ctab {
				m.WriteF64(cBase+uint64(i)*8, v)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			for i, w := range want {
				if err := checkMem64(m, yBase+uint64(i)*8, i, math.Float64bits(w)); err != nil {
					return fmt.Errorf("ct: %w", err)
				}
			}
			return nil
		},
	}, nil
}

// genalg: a tournament-selection genetic-algorithm step: pick two genomes
// with an LCG, keep the one closer to the target, overwrite the other
// with a mutated copy.  Data-dependent selects and stores in one
// hyperblock.
func buildGenalg(scale int) (*Instance, error) {
	const popSize = 64
	iters := 48 * scale
	const popBase = 0x20_0000

	const lcgMul = 6364136223846793005
	const lcgAdd = 1442695040888963407

	b := prog.NewBuilder()
	bb := b.Block("ga_loop")
	seed := bb.Read(5)
	pb := bb.Read(1)
	target := bb.Read(6)
	s1 := bb.AddI(bb.MulI(seed, lcgMul), lcgAdd)
	i1 := bb.AndI(bb.ShrI(s1, 17), popSize-1)
	s2 := bb.AddI(bb.MulI(s1, lcgMul), lcgAdd)
	i2 := bb.AndI(bb.ShrI(s2, 17), popSize-1)
	s3 := bb.AddI(bb.MulI(s2, lcgMul), lcgAdd)
	bb.Write(5, s3)
	a1 := bb.Add(pb, bb.ShlI(i1, 3))
	a2 := bb.Add(pb, bb.ShlI(i2, 3))
	g1 := bb.Load(a1, 0, 8, false)
	g2 := bb.Load(a2, 0, 8, false)
	f1 := bb.Op(isa.OpXor, g1, target)
	f2 := bb.Op(isa.OpXor, g2, target)
	firstWins := bb.Op(isa.OpLtU, f1, f2)
	winner := bb.Select(firstWins, g1, g2)
	loserAddr := bb.Select(firstWins, a2, a1)
	bit := bb.AndI(bb.ShrI(s3, 17), 63)
	one := bb.Const(1)
	mut := bb.Op(isa.OpXor, winner, bb.Op(isa.OpShl, one, bit))
	bb.Store(loserAddr, mut, 0, 8)
	loopCtlI(bb, 2, 1, int64(iters), "ga_loop", exitLabel)
	haltBlock(b)
	p, err := b.Program("ga_loop")
	if err != nil {
		return nil, err
	}

	const targetVal = 0x5a5a_a5a5_5a5a_a5a5
	pop := make([]uint64, popSize)
	r := lcg(4242)
	for i := range pop {
		pop[i] = r.next()
	}
	// Reference.
	want := append([]uint64(nil), pop...)
	seed0 := uint64(99)
	s := seed0
	for it := 0; it < iters; it++ {
		s = s*lcgMul + lcgAdd
		i1 := (s >> 17) & (popSize - 1)
		s = s*lcgMul + lcgAdd
		i2 := (s >> 17) & (popSize - 1)
		s = s*lcgMul + lcgAdd
		g1, g2 := want[i1], want[i2]
		f1, f2 := g1^targetVal, g2^targetVal
		winner, loser := g2, i1
		if f1 < f2 {
			winner, loser = g1, i2
		}
		bit := (s >> 17) & 63
		want[loser] = winner ^ (1 << bit)
	}

	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			regs[1] = popBase
			regs[5] = seed0
			regs[6] = targetVal
			for i, v := range pop {
				m.Write64(popBase+uint64(i)*8, v)
			}
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			for i, w := range want {
				if err := checkMem64(m, popBase+uint64(i)*8, i, w); err != nil {
					return fmt.Errorf("genalg: %w", err)
				}
			}
			return nil
		},
	}, nil
}
