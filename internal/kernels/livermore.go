package kernels

import (
	"fmt"
	"math"

	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// Livermore-loop kernels (the "LL kernels" the paper's Figure 5 groups
// with the hand-optimized codes).  These are registered as extras: they
// don't change the Table 1 population of 26, but run through the same
// validation and are available to tflexsim and the scheduler.

func init() {
	register(Kernel{Name: "ll1_hydro", Suite: "ll", HighILP: true, Extra: true, Build: buildLL1})
	register(Kernel{Name: "ll3_inner", Suite: "ll", HighILP: true, Extra: true, Build: buildLL3})
	register(Kernel{Name: "ll5_tridiag", Suite: "ll", HighILP: false, Extra: true, Build: buildLL5})
	register(Kernel{Name: "ll7_eos", Suite: "ll", HighILP: true, Extra: true, Build: buildLL7})
	register(Kernel{Name: "ll11_presum", Suite: "ll", HighILP: false, Extra: true, Build: buildLL11})
	register(Kernel{Name: "ll12_diff", Suite: "ll", HighILP: true, Extra: true, Build: buildLL12})
}

const (
	llX = 0x20_0000
	llY = 0x24_0000
	llZ = 0x28_0000
	llU = 0x2c_0000
)

// llArrays generates the deterministic input arrays.
func llArrays(n int, seed uint64) (x, y, z, u []float64) {
	r := lcg(seed)
	mk := func() []float64 {
		v := make([]float64, n+16)
		for i := range v {
			v[i] = float64(int64(r.intn(200))-100) / 8
		}
		return v
	}
	return mk(), mk(), mk(), mk()
}

func llInit(x, y, z, u []float64) func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
	return func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
		regs[1], regs[3], regs[4], regs[6] = llX, llY, llZ, llU
		for i := range x {
			m.WriteF64(llX+uint64(i)*8, x[i])
			m.WriteF64(llY+uint64(i)*8, y[i])
			m.WriteF64(llZ+uint64(i)*8, z[i])
			m.WriteF64(llU+uint64(i)*8, u[i])
		}
	}
}

func llCheckX(name string, want []float64) func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
	return func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
		for i, w := range want {
			if err := checkMem64(m, llX+uint64(i)*8, i, math.Float64bits(w)); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
}

// LL1 — hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]),
// unrolled 2 per block.
func buildLL1(scale int) (*Instance, error) {
	n := 64 * scale
	const q, rc, tc = 0.5, 1.25, 0.75

	b := prog.NewBuilder()
	bb := b.Block("ll1")
	k := bb.Read(2)
	xb := bb.Read(1)
	yb := bb.Read(3)
	zb := bb.Read(4)
	qv := bb.Read(10)
	rv := bb.Read(11)
	tv := bb.Read(12)
	off := bb.ShlI(k, 3)
	xA := bb.Add(xb, off)
	yA := bb.Add(yb, off)
	zA := bb.Add(zb, off)
	for d := int64(0); d < 2; d++ {
		yk := bb.Load(yA, d*8, 8, false)
		z10 := bb.Load(zA, (10+d)*8, 8, false)
		z11 := bb.Load(zA, (11+d)*8, 8, false)
		inner := bb.Op(isa.OpFAdd, bb.Op(isa.OpFMul, rv, z10), bb.Op(isa.OpFMul, tv, z11))
		bb.Store(xA, bb.Op(isa.OpFAdd, qv, bb.Op(isa.OpFMul, yk, inner)), d*8, 8)
	}
	loopCtlI(bb, 2, 2, int64(n), "ll1", exitLabel)
	haltBlock(b)
	p, err := b.Program("ll1")
	if err != nil {
		return nil, err
	}

	x, y, z, _ := llArrays(n, 101)
	want := make([]float64, n)
	for k := 0; k < n; k++ {
		want[k] = q + y[k]*(rc*z[k+10]+tc*z[k+11])
	}
	base := llInit(x, y, z, nil2(n))
	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			base(regs, m)
			regs[10] = math.Float64bits(q)
			regs[11] = math.Float64bits(rc)
			regs[12] = math.Float64bits(tc)
		},
		Check: llCheckX("ll1", want),
	}, nil
}

func nil2(n int) []float64 { return make([]float64, n+16) }

// LL3 — inner product: q += z[k]*x[k], 4 MACs per block.
func buildLL3(scale int) (*Instance, error) {
	n := 128 * scale

	b := prog.NewBuilder()
	bb := b.Block("ll3")
	k := bb.Read(2)
	xb := bb.Read(1)
	zb := bb.Read(4)
	acc := bb.Read(10)
	off := bb.ShlI(k, 3)
	xA := bb.Add(xb, off)
	zA := bb.Add(zb, off)
	sum := acc
	for d := int64(0); d < 4; d++ {
		xv := bb.Load(xA, d*8, 8, false)
		zv := bb.Load(zA, d*8, 8, false)
		sum = bb.Op(isa.OpFAdd, sum, bb.Op(isa.OpFMul, zv, xv))
	}
	bb.Write(10, sum)
	loopCtlI(bb, 2, 4, int64(n), "ll3", exitLabel)
	haltBlock(b)
	p, err := b.Program("ll3")
	if err != nil {
		return nil, err
	}

	x, y, z, u := llArrays(n, 103)
	want := 0.0
	for k := 0; k < n; k++ {
		want += z[k] * x[k]
	}
	base := llInit(x, y, z, u)
	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			base(regs, m)
			regs[10] = math.Float64bits(0)
		},
		Check: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) error {
			return checkReg(regs, 10, math.Float64bits(want))
		},
	}, nil
}

// LL5 — tridiagonal elimination, a serial recurrence:
// x[i] = z[i] * (y[i] - x[i-1]).
func buildLL5(scale int) (*Instance, error) {
	n := 96 * scale

	b := prog.NewBuilder()
	bb := b.Block("ll5")
	i := bb.Read(2)
	xb := bb.Read(1)
	yb := bb.Read(3)
	zb := bb.Read(4)
	prev := bb.Read(10) // x[i-1] carried in a register
	off := bb.ShlI(i, 3)
	yv := bb.Load(bb.Add(yb, off), 0, 8, false)
	zv := bb.Load(bb.Add(zb, off), 0, 8, false)
	xv := bb.Op(isa.OpFMul, zv, bb.Op(isa.OpFSub, yv, prev))
	bb.Store(bb.Add(xb, off), xv, 0, 8)
	bb.Write(10, xv)
	loopCtlI(bb, 2, 1, int64(n), "ll5", exitLabel)
	haltBlock(b)
	p, err := b.Program("ll5")
	if err != nil {
		return nil, err
	}

	x, y, z, u := llArrays(n, 105)
	want := make([]float64, n)
	prevRef := 0.0
	for i := 0; i < n; i++ {
		prevRef = z[i] * (y[i] - prevRef)
		want[i] = prevRef
	}
	base := llInit(x, y, z, u)
	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			base(regs, m)
			regs[10] = math.Float64bits(0)
		},
		Check: llCheckX("ll5", want),
	}, nil
}

// LL7 — equation of state fragment: a deep arithmetic expression over
// shifted windows of u[], one result per block.
func buildLL7(scale int) (*Instance, error) {
	n := 64 * scale
	const q, rc, tc = 0.25, 1.5, 0.5

	b := prog.NewBuilder()
	bb := b.Block("ll7")
	k := bb.Read(2)
	xb := bb.Read(1)
	yb := bb.Read(3)
	zb := bb.Read(4)
	ub := bb.Read(6)
	qv := bb.Read(10)
	rv := bb.Read(11)
	tv := bb.Read(12)
	off := bb.ShlI(k, 3)
	uA := bb.Add(ub, off)
	ld := func(d int64, base prog.Ref) prog.Ref { return bb.Load(base, d*8, 8, false) }
	u0 := ld(0, uA)
	u1 := ld(1, uA)
	u2 := ld(2, uA)
	u3 := ld(3, uA)
	u4 := ld(4, uA)
	u5 := ld(5, uA)
	u6 := ld(6, uA)
	zk := ld(0, bb.Add(zb, off))
	yk := ld(0, bb.Add(yb, off))
	fma := func(a, b2, c prog.Ref) prog.Ref { return bb.Op(isa.OpFAdd, a, bb.Op(isa.OpFMul, b2, c)) }
	t1 := fma(zk, rv, yk)        // z + r*y
	inner1 := fma(u2, rv, u1)    // u2 + r*u1
	term2 := fma(u3, rv, inner1) // u3 + r*(u2 + r*u1)
	inner2 := fma(u5, qv, u4)    // u5 + q*u4
	term3 := fma(u6, qv, inner2) // u6 + q*(u5 + q*u4)
	res := fma(fma(u0, rv, t1), tv, fma(term2, tv, term3))
	bb.Store(bb.Add(xb, off), res, 0, 8)
	loopCtlI(bb, 2, 1, int64(n), "ll7", exitLabel)
	haltBlock(b)
	p, err := b.Program("ll7")
	if err != nil {
		return nil, err
	}

	x, y, z, u := llArrays(n, 107)
	want := make([]float64, n)
	for k := 0; k < n; k++ {
		t1 := z[k] + rc*y[k]
		term2 := u[k+3] + rc*(u[k+2]+rc*u[k+1])
		term3 := u[k+6] + q*(u[k+5]+q*u[k+4])
		want[k] = (u[k] + rc*t1) + tc*(term2+tc*term3)
	}
	base := llInit(x, y, z, u)
	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			base(regs, m)
			regs[10] = math.Float64bits(q)
			regs[11] = math.Float64bits(rc)
			regs[12] = math.Float64bits(tc)
		},
		Check: llCheckX("ll7", want),
	}, nil
}

// LL11 — first sum, the serial prefix: x[k] = x[k-1] + y[k].
func buildLL11(scale int) (*Instance, error) {
	n := 128 * scale

	b := prog.NewBuilder()
	bb := b.Block("ll11")
	k := bb.Read(2)
	xb := bb.Read(1)
	yb := bb.Read(3)
	prev := bb.Read(10)
	off := bb.ShlI(k, 3)
	yv := bb.Load(bb.Add(yb, off), 0, 8, false)
	xv := bb.Op(isa.OpFAdd, prev, yv)
	bb.Store(bb.Add(xb, off), xv, 0, 8)
	bb.Write(10, xv)
	loopCtlI(bb, 2, 1, int64(n), "ll11", exitLabel)
	haltBlock(b)
	p, err := b.Program("ll11")
	if err != nil {
		return nil, err
	}

	x, y, z, u := llArrays(n, 111)
	want := make([]float64, n)
	prevRef := 0.0
	for k := 0; k < n; k++ {
		prevRef += y[k]
		want[k] = prevRef
	}
	base := llInit(x, y, z, u)
	return &Instance{
		Prog: p,
		Init: func(regs *[isa.NumRegs]uint64, m *exec.PageMem) {
			base(regs, m)
			regs[10] = math.Float64bits(0)
		},
		Check: llCheckX("ll11", want),
	}, nil
}

// LL12 — first difference, fully parallel: x[k] = y[k+1] - y[k],
// unrolled 4 per block.
func buildLL12(scale int) (*Instance, error) {
	n := 128 * scale

	b := prog.NewBuilder()
	bb := b.Block("ll12")
	k := bb.Read(2)
	xb := bb.Read(1)
	yb := bb.Read(3)
	off := bb.ShlI(k, 3)
	xA := bb.Add(xb, off)
	yA := bb.Add(yb, off)
	for d := int64(0); d < 4; d++ {
		y0 := bb.Load(yA, d*8, 8, false)
		y1 := bb.Load(yA, (d+1)*8, 8, false)
		bb.Store(xA, bb.Op(isa.OpFSub, y1, y0), d*8, 8)
	}
	loopCtlI(bb, 2, 4, int64(n), "ll12", exitLabel)
	haltBlock(b)
	p, err := b.Program("ll12")
	if err != nil {
		return nil, err
	}

	x, y, z, u := llArrays(n, 112)
	want := make([]float64, n)
	for k := 0; k < n; k++ {
		want[k] = y[k+1] - y[k]
	}
	base := llInit(x, y, z, u)
	return &Instance{
		Prog:  p,
		Init:  base,
		Check: llCheckX("ll12", want),
	}, nil
}
