package kernels

import (
	"testing"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/sim"
)

// TestKernelsFunctional runs every kernel on the architectural machine
// and validates the outputs against the Go reference.
func TestKernelsFunctional(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			inst, err := k.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			m := exec.NewMachine(inst.Prog)
			inst.Init(&m.Regs, m.Mem.(*exec.PageMem))
			st, err := m.Run(20_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Halted {
				t.Fatal("did not halt")
			}
			if err := inst.Check(&m.Regs, m.Mem.(*exec.PageMem)); err != nil {
				t.Fatal(err)
			}
			if st.Blocks < 20 {
				t.Errorf("only %d dynamic blocks; kernel too small to measure", st.Blocks)
			}
		})
	}
}

// TestKernelsOnSimulator runs every kernel through the timing simulator on
// two compositions and revalidates outputs — the end-to-end equivalence
// property.
func TestKernelsOnSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("timing runs are slow")
	}
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			for _, n := range []int{2, 8} {
				inst, err := k.Build(1)
				if err != nil {
					t.Fatal(err)
				}
				chip := sim.New(sim.DefaultOptions())
				proc, err := chip.AddProc(compose.MustRect(0, 0, n), inst.Prog)
				if err != nil {
					t.Fatal(err)
				}
				inst.Init(&proc.Regs, proc.Mem)
				if err := chip.Run(200_000_000); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if err := inst.Check(&proc.Regs, proc.Mem); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
			}
		})
	}
}

func TestSuiteComposition(t *testing.T) {
	counts := map[string]int{}
	for _, k := range All() {
		counts[k.Suite]++
	}
	want := map[string]int{"hand": 3, "eembc": 7, "versa": 2, "specint": 8, "specfp": 6}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("suite %s has %d kernels, want %d", suite, counts[suite], n)
		}
	}
	if len(All()) != 26 {
		t.Errorf("total kernels = %d, want 26", len(All()))
	}
	if len(HandOptimized()) != 12 {
		t.Errorf("hand-optimized set = %d, want 12", len(HandOptimized()))
	}
}

func TestKernelsScale(t *testing.T) {
	// Larger scale must run more blocks.
	k, ok := ByName("conv")
	if !ok {
		t.Fatal("conv missing")
	}
	blocks := func(scale int) uint64 {
		inst, err := k.Build(scale)
		if err != nil {
			t.Fatal(err)
		}
		m := exec.NewMachine(inst.Prog)
		inst.Init(&m.Regs, m.Mem.(*exec.PageMem))
		st, err := m.Run(20_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st.Blocks
	}
	if b2 := blocks(2); b2 <= blocks(1) {
		t.Fatalf("scale 2 ran %d blocks, not more than scale 1", b2)
	}
}

func TestByNameMissing(t *testing.T) {
	if _, ok := ByName("nope"); ok {
		t.Fatal("unexpected kernel")
	}
}

// TestLivermoreExtras validates the LL kernels functionally and on the
// simulator, and checks they stay out of the paper population.
func TestLivermoreExtras(t *testing.T) {
	extras := Extras()
	if len(extras) != 6 {
		t.Fatalf("%d extra kernels, want 6 Livermore loops", len(extras))
	}
	for _, k := range extras {
		if k.Suite != "ll" || !k.Extra {
			t.Fatalf("%s misregistered", k.Name)
		}
		inst, err := k.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		m := exec.NewMachine(inst.Prog)
		inst.Init(&m.Regs, m.Mem.(*exec.PageMem))
		if _, err := m.Run(10_000_000); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if err := inst.Check(&m.Regs, m.Mem.(*exec.PageMem)); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		// And on an 8-core composition.
		inst2, err := k.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		chip := sim.New(sim.DefaultOptions())
		proc, err := chip.AddProc(compose.MustRect(0, 0, 8), inst2.Prog)
		if err != nil {
			t.Fatal(err)
		}
		inst2.Init(&proc.Regs, proc.Mem)
		if err := chip.Run(200_000_000); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if err := inst2.Check(&proc.Regs, proc.Mem); err != nil {
			t.Fatalf("%s on sim: %v", k.Name, err)
		}
	}
	// Extras never appear in the paper population.
	for _, k := range All() {
		if k.Extra {
			t.Fatalf("%s leaked into All()", k.Name)
		}
	}
}

// TestSerialVsParallelLLScaling: the serial prefix (LL11) must not scale
// with composition while the parallel difference (LL12) must.
func TestSerialVsParallelLLScaling(t *testing.T) {
	speedup := func(name string) float64 {
		var base uint64
		var last uint64
		for _, n := range []int{1, 16} {
			k, _ := ByName(name)
			inst, err := k.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			chip := sim.New(sim.DefaultOptions())
			proc, err := chip.AddProc(compose.MustRect(0, 0, n), inst.Prog)
			if err != nil {
				t.Fatal(err)
			}
			inst.Init(&proc.Regs, proc.Mem)
			if err := chip.Run(200_000_000); err != nil {
				t.Fatal(err)
			}
			if n == 1 {
				base = proc.Stats.Cycles
			} else {
				last = proc.Stats.Cycles
			}
		}
		return float64(base) / float64(last)
	}
	serial := speedup("ll11_presum")
	parallel := speedup("ll12_diff")
	if parallel <= serial {
		t.Fatalf("parallel LL12 (%.2fx) should outscale serial LL11 (%.2fx)", parallel, serial)
	}
}
