// Package arch defines the unified architectural-state contract shared
// by every executor in the simulator: the functional interpreter
// (internal/exec), the optimized and reference timing engines
// (internal/sim), and the conventional-superscalar model's linearized
// trace (internal/conv).  The paper's correctness story rests on every
// composition executing identical EDGE semantics; this package is where
// "identical" is defined.
//
// State captures exactly the observables that must agree across
// executors — final registers, a digest of the memory image, the
// retired-block count, and a digest of the committed store stream —
// and Executor is the single entry point the differential fuzzer
// drives.  Anything not in State (cycle counts, cache misses, block
// pipeline timings) is a performance property and is allowed to differ.
package arch

import (
	"fmt"
	"strings"

	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// Input is the initial architectural state and run bounds for one
// execution.  The zero value is a valid empty input with default bounds.
type Input struct {
	// Regs seeds the architectural register file.
	Regs [isa.NumRegs]uint64
	// Mem, if non-empty, is copied into memory at MemBase before the run.
	MemBase uint64
	Mem     []byte
	// MaxBlocks bounds functional/trace execution (0: DefaultMaxBlocks).
	MaxBlocks uint64
	// MaxCycles bounds timing simulation (0: DefaultMaxCycles).
	MaxCycles uint64
}

// Default run bounds.  Generated fuzz programs are small and terminate
// within thousands of blocks; these defaults exist so a generator bug
// (or an executor bug that livelocks) fails fast instead of hanging.
const (
	DefaultMaxBlocks uint64 = 1 << 20
	DefaultMaxCycles uint64 = 1 << 26
)

func (in *Input) maxBlocks() uint64 {
	if in.MaxBlocks > 0 {
		return in.MaxBlocks
	}
	return DefaultMaxBlocks
}

func (in *Input) maxCycles() uint64 {
	if in.MaxCycles > 0 {
		return in.MaxCycles
	}
	return DefaultMaxCycles
}

// State is the architectural result of one execution: the complete set
// of observables that every executor must agree on, bit for bit.
type State struct {
	// Regs is the final architectural register file.
	Regs [isa.NumRegs]uint64
	// MemDigest hashes the final memory image (exec.PageMem.Digest):
	// page numbers in ascending order plus contents, zero pages skipped.
	MemDigest uint64
	// Blocks is the number of architecturally retired blocks, including
	// the halting block.
	Blocks uint64
	// Stores is the number of architecturally committed stores.
	Stores uint64
	// StoreDigest hashes the committed store stream in commit order
	// (block retirement order, LSID order within a block): each store's
	// (addr, size, val) tuple.  Two executors can reach the same final
	// memory image through different store sequences; this digest
	// catches that class of divergence.
	StoreDigest uint64
}

// Executor runs an EDGE program to completion and reports final
// architectural state.  Implementations must be deterministic: the same
// (program, input) pair always yields the same State.
type Executor interface {
	// Name identifies the executor in divergence reports ("functional",
	// "sim-opt-4", "conv-trace", ...).
	Name() string
	// Run executes the program from the given initial state.  A non-nil
	// error means the program failed to complete (deadlock, block-count
	// or cycle bound exceeded, invalid branch target) — the differential
	// harness treats error/no-error disagreement as a divergence too.
	Run(p *prog.Program, in Input) (State, error)
}

// Equal reports whether two states agree on every observable.
func (s State) Equal(o State) bool { return s == o }

// Diff renders a human-readable summary of how two states differ, or ""
// when they are equal.  Register differences list the first few
// mismatching registers; digest differences are reported as opaque
// hashes (replay the seed with tflexsim -fuzz-seed for the full dump).
func (s State) Diff(o State) string {
	if s == o {
		return ""
	}
	var b strings.Builder
	if s.Blocks != o.Blocks {
		fmt.Fprintf(&b, "blocks %d vs %d; ", s.Blocks, o.Blocks)
	}
	if s.Stores != o.Stores {
		fmt.Fprintf(&b, "stores %d vs %d; ", s.Stores, o.Stores)
	}
	if s.StoreDigest != o.StoreDigest {
		fmt.Fprintf(&b, "store digest %#x vs %#x; ", s.StoreDigest, o.StoreDigest)
	}
	if s.MemDigest != o.MemDigest {
		fmt.Fprintf(&b, "mem digest %#x vs %#x; ", s.MemDigest, o.MemDigest)
	}
	shown := 0
	for r := 0; r < isa.NumRegs; r++ {
		if s.Regs[r] == o.Regs[r] {
			continue
		}
		if shown == 4 {
			b.WriteString("more registers differ; ")
			break
		}
		fmt.Fprintf(&b, "r%d %#x vs %#x; ", r, s.Regs[r], o.Regs[r])
		shown++
	}
	return strings.TrimSuffix(b.String(), "; ")
}

// FNV-1a, the same hash family PageMem.Digest uses, so the two digests
// in a State share one well-understood construction.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// StoreHasher folds a commit-ordered store stream into (count, digest).
// Executor adapters feed it from their store-observation hooks.
type StoreHasher struct {
	n uint64
	h uint64
}

// NewStoreHasher returns a hasher over the empty stream.
func NewStoreHasher() *StoreHasher { return &StoreHasher{h: fnvOffset64} }

// Observe folds one committed store into the digest.  The signature
// matches exec.Machine.OnStore and sim.Proc.TraceStores.
func (sh *StoreHasher) Observe(addr uint64, size uint8, val uint64) {
	sh.n++
	h := sh.h
	for i := 0; i < 8; i++ {
		h = (h ^ (addr & 0xff)) * fnvPrime64
		addr >>= 8
	}
	h = (h ^ uint64(size)) * fnvPrime64
	for i := 0; i < 8; i++ {
		h = (h ^ (val & 0xff)) * fnvPrime64
		val >>= 8
	}
	sh.h = h
}

// Count reports how many stores were observed.
func (sh *StoreHasher) Count() uint64 { return sh.n }

// Digest reports the stream digest (the FNV offset basis when empty).
func (sh *StoreHasher) Digest() uint64 { return sh.h }
