package arch

import (
	"encoding/binary"
	"strings"
	"testing"

	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// testProgram builds a small program exercising every observable:
// cross-block control flow (a counted loop), predicated stores, loads
// feeding arithmetic, and register writes.  It sums mem[0..n) into r3
// and writes running partial sums back to a second array.
func testProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder()
	loop := b.Block("loop")
	i := loop.Read(2)
	base := loop.Read(4)
	out := loop.Read(5)
	addr := loop.Add(base, loop.ShlI(i, 3))
	v := loop.Load(addr, 0, 8, false)
	sum := loop.Add(loop.Read(3), v)
	loop.Write(3, sum)
	oaddr := loop.Add(out, loop.ShlI(i, 3))
	odd := loop.AndI(i, 1)
	loop.When(odd).Store(oaddr, sum, 0, 8)
	loop.Unless(odd).Store(oaddr, v, 0, 8)
	i2 := loop.AddI(i, 1)
	loop.Write(2, i2)
	loop.BranchIf(loop.OpI(isa.OpLt, i2, 8), "loop", "done")
	b.Block("done").Halt()
	p, err := b.Program("loop")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func testInput() Input {
	var in Input
	in.Regs[4] = 0x2000
	in.Regs[5] = 0x3000
	in.MemBase = 0x2000
	in.Mem = make([]byte, 64)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(in.Mem[i*8:], uint64(i*3+1))
	}
	return in
}

// TestExecutorsAgree is the contract in miniature: all four executor
// families produce identical State for the same program and input.
func TestExecutorsAgree(t *testing.T) {
	p := testProgram(t)
	in := testInput()
	execs := []Executor{
		Functional{},
		ConvTrace{},
		Sim{Cores: 1},
		Sim{Cores: 2},
		Sim{Cores: 2, Reference: true},
		Sim{Cores: 4, Reference: true},
	}
	ref, err := execs[0].Run(p, in)
	if err != nil {
		t.Fatalf("%s: %v", execs[0].Name(), err)
	}
	if ref.Blocks != 9 {
		t.Errorf("functional retired %d blocks, want 9 (8 loop trips + halt)", ref.Blocks)
	}
	if ref.Stores != 8 {
		t.Errorf("functional committed %d stores, want 8", ref.Stores)
	}
	if ref.Regs[3] != 1+4+7+10+13+16+19+22 {
		t.Errorf("functional r3 = %d, want 92", ref.Regs[3])
	}
	for _, ex := range execs[1:] {
		st, err := ex.Run(p, in)
		if err != nil {
			t.Errorf("%s: %v", ex.Name(), err)
			continue
		}
		if d := st.Diff(ref); d != "" {
			t.Errorf("%s diverges from functional: %s", ex.Name(), d)
		}
	}
}

// TestInputIsolation pins that Run does not mutate the caller's Input
// (the harness reuses one Input across executors).
func TestInputIsolation(t *testing.T) {
	p := testProgram(t)
	in := testInput()
	want := testInput()
	if _, err := (Functional{}).Run(p, in); err != nil {
		t.Fatal(err)
	}
	if in.Regs != want.Regs || string(in.Mem) != string(want.Mem) {
		t.Error("Functional.Run mutated the caller's Input")
	}
}

func TestStoreHasherOrderSensitive(t *testing.T) {
	a, b := NewStoreHasher(), NewStoreHasher()
	a.Observe(0x10, 8, 1)
	a.Observe(0x18, 8, 2)
	b.Observe(0x18, 8, 2)
	b.Observe(0x10, 8, 1)
	if a.Digest() == b.Digest() {
		t.Error("store digest is order-insensitive; reordered streams must differ")
	}
	if a.Count() != 2 || b.Count() != 2 {
		t.Errorf("counts = %d, %d, want 2, 2", a.Count(), b.Count())
	}
}

func TestStateDiff(t *testing.T) {
	var a, b State
	if d := a.Diff(b); d != "" {
		t.Errorf("equal states diff = %q, want empty", d)
	}
	b.Blocks = 7
	b.Regs[5] = 42
	d := a.Diff(b)
	for _, want := range []string{"blocks 0 vs 7", "r5 0x0 vs 0x2a"} {
		if !strings.Contains(d, want) {
			t.Errorf("Diff = %q, missing %q", d, want)
		}
	}
}

// TestMemDigestIgnoresZeroPages pins the digest property the contract
// depends on: touching memory with zeros must not change the digest,
// since executors differ in which pages they materialize.
func TestMemDigestIgnoresZeroPages(t *testing.T) {
	st1, err := (Functional{}).Run(testProgram(t), testInput())
	if err != nil {
		t.Fatal(err)
	}
	in := testInput()
	in.Mem = append(in.Mem, make([]byte, 8192)...) // extra zero pages
	st2, err := (Functional{}).Run(testProgram(t), in)
	if err != nil {
		t.Fatal(err)
	}
	if st1.MemDigest != st2.MemDigest {
		t.Error("writing zero bytes to fresh pages changed the memory digest")
	}
}
