package arch

import (
	"fmt"
	"sort"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/conv"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/prog"
	"github.com/clp-sim/tflex/internal/sim"
)

// Functional executes programs on the architectural dataflow
// interpreter (internal/exec) — the ground-truth semantics every other
// executor is judged against.
type Functional struct{}

// Name implements Executor.
func (Functional) Name() string { return "functional" }

// Run implements Executor.
func (Functional) Run(p *prog.Program, in Input) (State, error) {
	m := exec.NewMachine(p)
	m.Regs = in.Regs
	pm := m.Mem.(*exec.PageMem)
	if len(in.Mem) > 0 {
		pm.WriteBytes(in.MemBase, in.Mem)
	}
	sh := NewStoreHasher()
	m.OnStore = sh.Observe
	st, err := m.Run(in.maxBlocks())
	if err != nil {
		return State{}, err
	}
	return State{
		Regs:        m.Regs,
		MemDigest:   pm.Digest(),
		Blocks:      st.Blocks,
		Stores:      sh.Count(),
		StoreDigest: sh.Digest(),
	}, nil
}

// Sim executes programs on the timing simulator: a freshly built chip
// with one processor composed of Cores cores, in either the optimized
// or the bit-identical reference engine.
type Sim struct {
	Cores     int
	Reference bool
}

// Name implements Executor.
func (s Sim) Name() string {
	eng := "opt"
	if s.Reference {
		eng = "ref"
	}
	return fmt.Sprintf("sim-%s-%d", eng, s.Cores)
}

// Composition reports the core count the executor simulates on.  The
// fuzz harness uses it (via an anonymous interface, so wrappers that
// embed Sim stay detectable) to replay divergences with the flight
// recorder armed on the same composition.
func (s Sim) Composition() int { return s.Cores }

// Run implements Executor.
func (s Sim) Run(p *prog.Program, in Input) (State, error) {
	cores, err := compose.Rect(0, 0, s.Cores)
	if err != nil {
		return State{}, err
	}
	opts := sim.DefaultOptions()
	opts.Reference = s.Reference
	chip := sim.New(opts)
	proc, err := chip.AddProc(cores, p)
	if err != nil {
		return State{}, err
	}
	proc.Regs = in.Regs
	if len(in.Mem) > 0 {
		proc.Mem.WriteBytes(in.MemBase, in.Mem)
	}
	sh := NewStoreHasher()
	proc.TraceStores(sh.Observe)
	if err := chip.Run(in.maxCycles()); err != nil {
		return State{}, err
	}
	return State{
		Regs:        proc.Regs,
		MemDigest:   proc.Mem.Digest(),
		Blocks:      proc.Stats.BlocksCommitted,
		Stores:      sh.Count(),
		StoreDigest: sh.Digest(),
	}, nil
}

// ConvTrace executes programs through the linearized-trace pipeline the
// conventional-superscalar model consumes: the functional machine
// produces the trace, the architectural store stream is reconstructed
// from trace entries alone (per-block boundaries, LSID order within a
// block) and replayed onto a fresh memory, and the conv timing model is
// run over the trace as a consistency check.  A bug in trace
// linearization — wrong store values, missing entries, broken block
// boundaries — shows up here as a state divergence even though the
// underlying interpreter is shared with Functional.
type ConvTrace struct{}

// Name implements Executor.
func (ConvTrace) Name() string { return "conv-trace" }

// Run implements Executor.
func (ConvTrace) Run(p *prog.Program, in Input) (State, error) {
	m := exec.NewMachine(p)
	m.Regs = in.Regs
	if len(in.Mem) > 0 {
		m.Mem.(*exec.PageMem).WriteBytes(in.MemBase, in.Mem)
	}
	tr := &exec.Trace{}
	m.Trace = tr
	st, err := m.Run(in.maxBlocks())
	if err != nil {
		return State{}, err
	}
	if tr.Truncated {
		return State{}, fmt.Errorf("conv-trace: trace truncated at %d entries", len(tr.Entries))
	}
	if uint64(len(tr.Blocks)) != st.Blocks {
		return State{}, fmt.Errorf("conv-trace: %d trace blocks for %d retired blocks", len(tr.Blocks), st.Blocks)
	}
	// Replay the store stream from the trace alone.  Entries within a
	// dynamic block are in instruction-ID order; architectural commit
	// order is LSID order, so sort each block's stores by LSID.
	mem := exec.NewPageMem()
	if len(in.Mem) > 0 {
		mem.WriteBytes(in.MemBase, in.Mem)
	}
	sh := NewStoreHasher()
	for bi, start := range tr.Blocks {
		end := len(tr.Entries)
		if bi+1 < len(tr.Blocks) {
			end = tr.Blocks[bi+1]
		}
		var stores []exec.TraceEntry
		for _, e := range tr.Entries[start:end] {
			if e.IsStore {
				stores = append(stores, e)
			}
		}
		sort.Slice(stores, func(i, j int) bool { return stores[i].LSID < stores[j].LSID })
		for _, e := range stores {
			mem.Store(e.Addr, int(e.Size), e.Val)
			sh.Observe(e.Addr, e.Size, e.Val)
		}
	}
	// Timing-model consistency: conv must consume exactly the trace.
	if res := conv.Run(tr.Entries, conv.DefaultConfig()); res.Insts != uint64(len(tr.Entries)) {
		return State{}, fmt.Errorf("conv-trace: model retired %d of %d entries", res.Insts, len(tr.Entries))
	}
	return State{
		Regs:        m.Regs,
		MemDigest:   mem.Digest(),
		Blocks:      uint64(len(tr.Blocks)),
		Stores:      sh.Count(),
		StoreDigest: sh.Digest(),
	}, nil
}
