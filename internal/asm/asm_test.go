package asm

import (
	"strings"
	"testing"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/sim"
)

const sumSrc = `
; sum the integers below r1 into r3
block loop:
    %i    = read r2
    %n    = read r1
    %acc  = read r3
    %acc2 = add %acc, %i
    write r3, %acc2
    %i2   = add %i, #1
    write r2, %i2
    %p    = lt %i2, %n
    branch loop if %p else done
block done:
    halt
`

func TestAssembleAndRun(t *testing.T) {
	p, err := Assemble(sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := exec.NewMachine(p)
	m.Regs[1] = 10
	st, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Halted || m.Regs[3] != 45 {
		t.Fatalf("halted=%v r3=%d", st.Halted, m.Regs[3])
	}
}

func TestAssembledProgramOnSimulator(t *testing.T) {
	p, err := Assemble(sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	chip := sim.New(sim.DefaultOptions())
	proc, err := chip.AddProc(compose.MustRect(0, 0, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	proc.Regs[1] = 10
	if err := chip.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if proc.Regs[3] != 45 {
		t.Fatalf("r3 = %d", proc.Regs[3])
	}
}

func TestAssembleMemoryAndGuards(t *testing.T) {
	src := `
block m:
    %base = read r1
    %x    = read r2
    %p    = ltu %x, #10
    store.8 %base, %x if %p
    %zero = const 0
    %v    = select %p, %x, %zero
    write r3, %v
    %big  = const 0xff
    write r4, %big unless %p
    write r4, %x if %p
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(x uint64) *exec.Machine {
		m := exec.NewMachine(p)
		m.Regs[1] = 0x5000
		m.Regs[2] = x
		if _, err := m.Run(10); err != nil {
			t.Fatal(err)
		}
		return m
	}
	lo := run(5)
	if lo.Regs[3] != 5 || lo.Regs[4] != 5 || lo.Mem.(*exec.PageMem).Read64(0x5000) != 5 {
		t.Fatalf("taken path: r3=%d r4=%d mem=%d", lo.Regs[3], lo.Regs[4], lo.Mem.(*exec.PageMem).Read64(0x5000))
	}
	hi := run(50)
	if hi.Regs[3] != 0 || hi.Regs[4] != 0xff || hi.Mem.(*exec.PageMem).Read64(0x5000) != 0 {
		t.Fatalf("nulled path: r3=%d r4=%d mem=%d", hi.Regs[3], hi.Regs[4], hi.Mem.(*exec.PageMem).Read64(0x5000))
	}
}

func TestAssembleCallRet(t *testing.T) {
	src := `
block main:
    %ra = label after
    write r1, %ra
    %a  = const 6
    write r2, %a
    call triple
block triple:
    %x  = read r2
    %x3 = mul %x, #3
    write r3, %x3
    %lnk = read r1
    ret %lnk
block after:
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := exec.NewMachine(p)
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != 18 {
		t.Fatalf("r3 = %d", m.Regs[3])
	}
}

func TestAssembleFloat(t *testing.T) {
	src := `
block m:
    %a = constf 1.5
    %b = constf 2.25
    %s = fadd %a, %b
    write r10, %s
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := exec.NewMachine(p)
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.(*exec.PageMem); got == nil {
		t.Fatal("no mem")
	}
	if f := m.Regs[10]; f != 0x400e000000000000 { // 3.75
		t.Fatalf("r10 = %#x", f)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"statement outside block": "%v = const 1",
		"missing colon":           "block m\n halt",
		"unknown op":              "block m:\n %v = frob %v\n halt",
		"undefined value":         "block m:\n write r1, %nope\n halt",
		"redefined value":         "block m:\n %v = const 1\n %v = const 2\n halt",
		"bad register":            "block m:\n %v = read r999\n halt",
		"bad size":                "block m:\n %a = const 1\n %v = load.3 %a\n halt",
		"bad imm":                 "block m:\n %a = const 1\n %v = add %a, #zz\n halt",
		"cond without else":       "block m:\n %a = const 1\n branch x if %a\nblock x:\n halt",
		"fp immediate":            "block m:\n %a = constf 1.0\n %v = fadd %a, #2\n halt",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Errors carry line numbers.
	_, err := Assemble("block m:\n    halt\nbogus statement here\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("want line-numbered error, got %v", err)
	}
}

func TestDisassemble(t *testing.T) {
	p, err := Assemble(sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p)
	for _, want := range []string{"block loop", "block done", "add", "bro", "halt", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	// Nop slots are not listed.
	if strings.Contains(out, "nop") {
		t.Error("disassembly should skip empty slots")
	}
}

func TestAssembleCommentsAndBlankLines(t *testing.T) {
	src := "\n; leading comment\n\nblock m: ; trailing comment\n   halt ; done\n\n"
	if _, err := Assemble(src); err != nil {
		t.Fatal(err)
	}
}
