// Package asm implements a textual assembly language for EDGE block
// programs, in the spirit of the TRIPS intermediate language: the
// programmer writes named dataflow values, register reads/writes,
// predication guards and block-terminating branches; the assembler lowers
// them through the program builder, which assigns instruction IDs,
// target fields, LSIDs and fan-out trees.
//
// Example:
//
//	; sum the integers below r1 into r3
//	block loop:
//	    %i   = read r2
//	    %n   = read r1
//	    %acc = read r3
//	    %acc2 = add %acc, %i
//	    write r3, %acc2
//	    %i2  = add %i, #1
//	    write r2, %i2
//	    %p   = lt %i2, %n
//	    branch loop if %p else done
//	block done:
//	    halt
//
// Statements:
//
//	%v = read rN                     register read
//	%v = const N | 0xN               integer constant
//	%v = constf F                    float constant
//	%v = label NAME                  block address constant
//	%v = OP a, b                     two-operand ALU op (b may be #imm)
//	%v = mov|itof|ftoi|fsqrt a       one-operand ops
//	%v = select %p, a, b             predicated select
//	%v = load.SZ a [, #off] [, signed]
//	store.SZ a, v [, #off]           (guardable)
//	write rN, v                      (guardable)
//	branch NAME                      unconditional
//	branch NAME if %p else NAME2     conditional pair
//	call NAME / ret v / halt
//
// `write` and `store` accept a trailing guard: `if %p` or `unless %p`.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

var binOps = map[string]isa.Opcode{
	"add": isa.OpAdd, "sub": isa.OpSub, "mul": isa.OpMul,
	"div": isa.OpDiv, "divu": isa.OpDivU, "mod": isa.OpMod,
	"and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor,
	"shl": isa.OpShl, "shr": isa.OpShr, "sra": isa.OpSra,
	"eq": isa.OpEq, "ne": isa.OpNe, "lt": isa.OpLt, "le": isa.OpLe,
	"ltu": isa.OpLtU, "leu": isa.OpLeU,
	"fadd": isa.OpFAdd, "fsub": isa.OpFSub, "fmul": isa.OpFMul,
	"fdiv": isa.OpFDiv, "feq": isa.OpFEq, "flt": isa.OpFLt, "fle": isa.OpFLe,
}

var unOps = map[string]isa.Opcode{
	"mov": isa.OpMov, "itof": isa.OpIToF, "ftoi": isa.OpFToI, "fsqrt": isa.OpFSqrt,
}

// Error is an assembly error with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type assembler struct {
	b     *prog.Builder
	bb    *prog.BlockBuilder
	vals  map[string]prog.Ref
	entry string
}

// Assemble parses and lowers a program; the entry block is the first one.
func Assemble(src string) (*prog.Program, error) {
	a := &assembler{b: prog.NewBuilder()}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := a.stmt(line); err != nil {
			return nil, &Error{Line: ln + 1, Msg: err.Error()}
		}
	}
	if a.entry == "" {
		return nil, &Error{Line: 0, Msg: "no blocks defined"}
	}
	p, err := a.b.Program(a.entry)
	if err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return p, nil
}

func (a *assembler) stmt(line string) error {
	// Block header.
	if rest, ok := strings.CutPrefix(line, "block "); ok {
		name, ok := strings.CutSuffix(strings.TrimSpace(rest), ":")
		if !ok {
			return fmt.Errorf("block header must end with ':'")
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return fmt.Errorf("empty block name")
		}
		a.bb = a.b.Block(name)
		a.vals = map[string]prog.Ref{}
		if a.entry == "" {
			a.entry = name
		}
		return nil
	}
	if a.bb == nil {
		return fmt.Errorf("statement outside a block")
	}
	// Value definition.
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, "=")
		if eq < 0 {
			return fmt.Errorf("expected '=' in value definition")
		}
		name := strings.TrimSpace(line[:eq])
		if !validValName(name) {
			return fmt.Errorf("invalid value name %q", name)
		}
		if _, dup := a.vals[name]; dup {
			return fmt.Errorf("value %s redefined", name)
		}
		ref, err := a.expr(strings.TrimSpace(line[eq+1:]))
		if err != nil {
			return err
		}
		a.vals[name] = ref
		return nil
	}
	return a.action(line)
}

func validValName(s string) bool {
	if len(s) < 2 || s[0] != '%' {
		return false
	}
	for _, c := range s[1:] {
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

// expr lowers the right-hand side of a value definition.
func (a *assembler) expr(rhs string) (prog.Ref, error) {
	op, rest, _ := strings.Cut(rhs, " ")
	rest = strings.TrimSpace(rest)
	args := splitArgs(rest)

	switch op {
	case "read":
		if len(args) != 1 {
			return prog.Ref{}, fmt.Errorf("read takes one register")
		}
		r, err := parseReg(args[0])
		if err != nil {
			return prog.Ref{}, err
		}
		return a.bb.Read(r), nil
	case "const":
		if len(args) != 1 {
			return prog.Ref{}, fmt.Errorf("const takes one integer")
		}
		v, err := parseInt(args[0])
		if err != nil {
			return prog.Ref{}, err
		}
		return a.bb.Const(v), nil
	case "constf":
		if len(args) != 1 {
			return prog.Ref{}, fmt.Errorf("constf takes one float")
		}
		f, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return prog.Ref{}, fmt.Errorf("bad float %q", args[0])
		}
		return a.bb.ConstF(f), nil
	case "label":
		if len(args) != 1 {
			return prog.Ref{}, fmt.Errorf("label takes one block name")
		}
		return a.bb.LabelAddr(args[0]), nil
	case "select":
		if len(args) != 3 {
			return prog.Ref{}, fmt.Errorf("select takes predicate, a, b")
		}
		p, err := a.val(args[0])
		if err != nil {
			return prog.Ref{}, err
		}
		x, err := a.val(args[1])
		if err != nil {
			return prog.Ref{}, err
		}
		y, err := a.val(args[2])
		if err != nil {
			return prog.Ref{}, err
		}
		return a.bb.Select(p, x, y), nil
	}

	if strings.HasPrefix(op, "load.") {
		size, err := parseSize(op[5:])
		if err != nil {
			return prog.Ref{}, err
		}
		if len(args) < 1 {
			return prog.Ref{}, fmt.Errorf("load needs an address")
		}
		addr, err := a.val(args[0])
		if err != nil {
			return prog.Ref{}, err
		}
		off := int64(0)
		signed := false
		for _, extra := range args[1:] {
			if extra == "signed" {
				signed = true
				continue
			}
			off, err = parseImm(extra)
			if err != nil {
				return prog.Ref{}, err
			}
		}
		return a.bb.Load(addr, off, size, signed), nil
	}

	if o, ok := unOps[op]; ok {
		if len(args) != 1 {
			return prog.Ref{}, fmt.Errorf("%s takes one operand", op)
		}
		v, err := a.val(args[0])
		if err != nil {
			return prog.Ref{}, err
		}
		return a.bb.Op1(o, v), nil
	}
	if o, ok := binOps[op]; ok {
		if len(args) != 2 {
			return prog.Ref{}, fmt.Errorf("%s takes two operands", op)
		}
		x, err := a.val(args[0])
		if err != nil {
			return prog.Ref{}, err
		}
		if strings.HasPrefix(args[1], "#") {
			imm, err := parseImm(args[1])
			if err != nil {
				return prog.Ref{}, err
			}
			if o.IsFP() {
				return prog.Ref{}, fmt.Errorf("%s cannot take an immediate", op)
			}
			return a.bb.OpI(o, x, imm), nil
		}
		y, err := a.val(args[1])
		if err != nil {
			return prog.Ref{}, err
		}
		return a.bb.Op(o, x, y), nil
	}
	return prog.Ref{}, fmt.Errorf("unknown operation %q", op)
}

// action lowers a non-value statement.
func (a *assembler) action(line string) error {
	op, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)

	// Peel a trailing guard from write/store.
	guard := func(s string) (body string, bb *prog.BlockBuilder, err error) {
		bb = a.bb
		if i := strings.Index(s, " if %"); i >= 0 {
			p, err := a.val(strings.TrimSpace(s[i+4:]))
			if err != nil {
				return "", nil, err
			}
			return strings.TrimSpace(s[:i]), a.bb.When(p), nil
		}
		if i := strings.Index(s, " unless %"); i >= 0 {
			p, err := a.val(strings.TrimSpace(s[i+8:]))
			if err != nil {
				return "", nil, err
			}
			return strings.TrimSpace(s[:i]), a.bb.Unless(p), nil
		}
		return s, bb, nil
	}

	switch {
	case op == "write":
		body, bb, err := guard(rest)
		if err != nil {
			return err
		}
		args := splitArgs(body)
		if len(args) != 2 {
			return fmt.Errorf("write takes register, value")
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		v, err := a.val(args[1])
		if err != nil {
			return err
		}
		bb.Write(r, v)
		return nil

	case strings.HasPrefix(op, "store."):
		size, err := parseSize(op[6:])
		if err != nil {
			return err
		}
		body, bb, err := guard(rest)
		if err != nil {
			return err
		}
		args := splitArgs(body)
		if len(args) < 2 {
			return fmt.Errorf("store takes address, value")
		}
		addr, err := a.val(args[0])
		if err != nil {
			return err
		}
		v, err := a.val(args[1])
		if err != nil {
			return err
		}
		off := int64(0)
		if len(args) == 3 {
			off, err = parseImm(args[2])
			if err != nil {
				return err
			}
		}
		bb.Store(addr, v, off, size)
		return nil

	case op == "branch":
		// branch NAME [if %p else NAME2]
		if i := strings.Index(rest, " if "); i >= 0 {
			then := strings.TrimSpace(rest[:i])
			tail := strings.TrimSpace(rest[i+4:])
			pName, elseName, ok := strings.Cut(tail, " else ")
			if !ok {
				return fmt.Errorf("conditional branch needs 'else'")
			}
			p, err := a.val(strings.TrimSpace(pName))
			if err != nil {
				return err
			}
			a.bb.BranchIf(p, then, strings.TrimSpace(elseName))
			return nil
		}
		if rest == "" {
			return fmt.Errorf("branch needs a target")
		}
		a.bb.Branch(rest)
		return nil

	case op == "call":
		if rest == "" {
			return fmt.Errorf("call needs a target")
		}
		a.bb.Call(rest)
		return nil

	case op == "ret":
		v, err := a.val(rest)
		if err != nil {
			return err
		}
		a.bb.Ret(v)
		return nil

	case op == "halt":
		a.bb.Halt()
		return nil
	}
	return fmt.Errorf("unknown statement %q", op)
}

func (a *assembler) val(tok string) (prog.Ref, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "%") {
		return prog.Ref{}, fmt.Errorf("expected a %%value, got %q", tok)
	}
	r, ok := a.vals[tok]
	if !ok {
		return prog.Ref{}, fmt.Errorf("undefined value %s", tok)
	}
	return r, nil
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(tok string) (int, error) {
	if !strings.HasPrefix(tok, "r") {
		return 0, fmt.Errorf("expected register rN, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("invalid register %q", tok)
	}
	return n, nil
}

func parseInt(tok string) (int64, error) {
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		// Allow full-range unsigned hex.
		if u, uerr := strconv.ParseUint(tok, 0, 64); uerr == nil {
			return int64(u), nil
		}
		return 0, fmt.Errorf("bad integer %q", tok)
	}
	return v, nil
}

func parseImm(tok string) (int64, error) {
	if !strings.HasPrefix(tok, "#") {
		return 0, fmt.Errorf("expected #imm, got %q", tok)
	}
	return parseInt(tok[1:])
}

func parseSize(tok string) (int, error) {
	switch tok {
	case "1", "2", "4", "8":
		n, _ := strconv.Atoi(tok)
		return n, nil
	}
	return 0, fmt.Errorf("bad access size %q (want 1, 2, 4 or 8)", tok)
}

// Disassemble renders a laid-out program as an ISA-level listing: the
// final instruction placement, target fields, LSIDs and predicates.
func Disassemble(p *prog.Program) string {
	var sb strings.Builder
	for _, blk := range p.Blocks {
		fmt.Fprintf(&sb, "block %s @ %#x  ; reads=%d writes=%d stores=%d\n",
			blk.Name, blk.Addr, len(blk.Reads), len(blk.Writes), blk.NumStores)
		for i, rd := range blk.Reads {
			fmt.Fprintf(&sb, "  read[%d]  r%-3d %s\n", i, rd.Reg, targets(rd.Targets))
		}
		for i, wr := range blk.Writes {
			fmt.Fprintf(&sb, "  write[%d] r%d\n", i, wr.Reg)
		}
		for i := range blk.Insts {
			in := &blk.Insts[i]
			if in.Op == isa.OpNop {
				continue
			}
			fmt.Fprintf(&sb, "  [%3d] %-6s", i, in.Op.String()+in.Pred.String())
			if in.Op.IsMem() {
				fmt.Fprintf(&sb, " lsid=%d size=%d off=%d", in.LSID, in.MemSize, in.Imm)
			} else if in.Op == isa.OpGenC {
				if in.BranchTo != "" {
					fmt.Fprintf(&sb, " @%s", in.BranchTo)
				} else if f := math.Float64frombits(uint64(in.Imm)); in.Imm != 0 && isLikelyFloat(f) {
					fmt.Fprintf(&sb, " #%v", f)
				} else {
					fmt.Fprintf(&sb, " #%d", in.Imm)
				}
			} else if in.HasImm {
				fmt.Fprintf(&sb, " #%d", in.Imm)
			}
			if in.Op.IsBranch() {
				fmt.Fprintf(&sb, " exit=%d", in.Exit)
				if in.BranchTo != "" {
					fmt.Fprintf(&sb, " -> %s", in.BranchTo)
				}
			}
			if in.Op == isa.OpNull && in.NullLSID >= 0 {
				fmt.Fprintf(&sb, " lsid=%d", in.NullLSID)
			}
			if ts := targets(in.Targets); ts != "" {
				sb.WriteString(" " + ts)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func targets(ts []isa.Target) string {
	var parts []string
	for _, t := range ts {
		parts = append(parts, "->"+t.String())
	}
	return strings.Join(parts, " ")
}

func isLikelyFloat(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0) && math.Abs(f) > 1e-12 && math.Abs(f) < 1e12 &&
		f != math.Trunc(f)
}
