// Package stats provides the aggregate metrics and table formatting used
// by the experiment harness: geometric means (the paper's averages over
// benchmark speedups), arithmetic means, and fixed-width text tables that
// print the rows/series of each paper table and figure.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of positive values (0 if any value
// is non-positive or the slice is empty).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Table accumulates rows and renders a fixed-width text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(cols ...string) *Table { return &Table{header: cols} }

// Row appends a row; values are formatted with %v, floats with 3 decimals.
func (t *Table) Row(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}
