package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,8) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	if g := Geomean([]float64{1, -1}); g != 0 {
		t.Fatalf("geomean with negative = %v", g)
	}
}

func TestGeomeanBetweenMinMax(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := Geomean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMax(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("mean(nil) = %v", m)
	}
	if m := Max([]float64{3, 9, 1}); m != 9 {
		t.Fatalf("max = %v", m)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("bench", "cycles", "speedup")
	tb.Row("conv", 1234, 3.14159)
	tb.Row("mcf", 99999, 1.0)
	s := tb.String()
	for _, want := range []string{"bench", "conv", "3.142", "99999", "-----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
}
