// Package area reconstructs the paper's Table 2 area model.  The original
// numbers come from the post-synthesis netlist of the 130nm TRIPS ASIC;
// here the per-component areas are reconstructed to preserve the paper's
// headline constraint — an eight-core TFlex processor occupies the same
// area (and issue width) as one TRIPS processor — so every area-derived
// result (Figure 7) is a ratio that survives the substitution.
package area

// Component is one microarchitectural area entry (130nm, mm²).
type Component struct {
	Name string
	MM2  float64
}

// TFlexCore lists the area of one TFlex core's components.
func TFlexCore() []Component {
	return []Component{
		{"8KB I-cache", 1.00},
		{"next-block predictor", 1.05},
		{"128-entry register file", 0.80},
		{"128-entry issue window", 2.20},
		{"integer ALUs (2)", 0.80},
		{"FPU", 1.90},
		{"8KB D-cache", 1.40},
		{"44-entry LSQ bank", 1.00},
		{"operand/control routers", 0.80},
		{"block control & commit", 0.60},
	}
}

// TRIPSProcessor lists the area of one TRIPS processor's tiles.
func TRIPSProcessor() []Component {
	return []Component{
		{"5 I-tiles (I-cache)", 6.00},
		{"G-tile (predictor, block control)", 3.00},
		{"4 R-tiles (register files)", 4.00},
		{"16 E-tiles (window + INT + FPU)", 54.40},
		{"4 D-tiles (D-cache + LSQ)", 12.00},
		{"operand network routers/wires", 9.00},
	}
}

func sum(cs []Component) float64 {
	t := 0.0
	for _, c := range cs {
		t += c.MM2
	}
	return t
}

// TFlexCoreArea returns one core's area in mm².
func TFlexCoreArea() float64 { return sum(TFlexCore()) }

// TFlexArea returns the area of an n-core composition.
func TFlexArea(n int) float64 { return float64(n) * TFlexCoreArea() }

// TRIPSArea returns the TRIPS processor area.
func TRIPSArea() float64 { return sum(TRIPSProcessor()) }

// PerfPerArea computes the paper's Figure 7 metric: 1/(cycles x mm²).
func PerfPerArea(cycles uint64, mm2 float64) float64 {
	if cycles == 0 || mm2 <= 0 {
		return 0
	}
	return 1.0 / (float64(cycles) * mm2)
}

// L2AreaPerMB approximates the L2 array area (mm²/MB at 130nm), used for
// whole-die accounting in reports.
const L2AreaPerMB = 20.0
