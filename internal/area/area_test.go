package area

import (
	"math"
	"testing"
)

func TestEightTFlexCoresMatchTRIPS(t *testing.T) {
	// The paper's anchor: an eight-core TFlex processor has the same area
	// as one TRIPS processor.  Our reconstruction holds it within 10%.
	tflex8 := TFlexArea(8)
	trips := TRIPSArea()
	ratio := tflex8 / trips
	if math.Abs(ratio-1) > 0.10 {
		t.Fatalf("8x TFlex = %.1f mm², TRIPS = %.1f mm² (ratio %.3f)", tflex8, trips, ratio)
	}
}

func TestAreasPositiveAndLinear(t *testing.T) {
	if TFlexCoreArea() <= 0 || TRIPSArea() <= 0 {
		t.Fatal("non-positive areas")
	}
	if TFlexArea(16) != 2*TFlexArea(8) {
		t.Fatal("composition area should scale linearly")
	}
}

func TestPerfPerArea(t *testing.T) {
	if PerfPerArea(0, 10) != 0 || PerfPerArea(10, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
	a := PerfPerArea(1000, TFlexArea(1))
	b := PerfPerArea(1000, TFlexArea(2))
	if a <= b {
		t.Fatal("same cycles on more area must lower perf/area")
	}
}

func TestComponentListsNamed(t *testing.T) {
	for _, c := range append(TFlexCore(), TRIPSProcessor()...) {
		if c.Name == "" || c.MM2 <= 0 {
			t.Fatalf("bad component %+v", c)
		}
	}
}
