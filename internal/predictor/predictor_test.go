package predictor

import (
	"testing"

	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/isa"
)

func newPred(n int) *Composed {
	return NewComposed(compose.DefaultCoreParams(), n)
}

const blockA = uint64(0x10000)
const blockB = blockA + uint64(isa.BlockBytes)
const blockC = blockB + uint64(isa.BlockBytes)

func TestLearnsRepeatingExit(t *testing.T) {
	p := newPred(4)
	var hist History
	// Block A always takes exit 2 to block C.
	for i := 0; i < 50; i++ {
		pred, h2 := p.Predict(blockA, hist)
		ok, fixed := p.Resolve(&pred, 2, isa.BranchRegular, blockC)
		hist = h2
		if !ok {
			hist = fixed
		}
	}
	pred, _ := p.Predict(blockA, hist)
	if pred.Exit != 2 {
		t.Fatalf("exit = %d, want 2", pred.Exit)
	}
	if pred.Next != blockC {
		t.Fatalf("target = %#x, want %#x", pred.Next, blockC)
	}
}

func TestLearnsAlternatingPattern(t *testing.T) {
	// Alternating exits 0,1,0,1... is learnable from local history.
	p := newPred(2)
	var hist History
	miss := 0
	for i := 0; i < 400; i++ {
		exit := uint8(i % 2)
		target := blockB
		if exit == 1 {
			target = blockC
		}
		pred, h2 := p.Predict(blockA, hist)
		if i > 100 && pred.Exit != exit {
			miss++
		}
		ok, fixed := p.Resolve(&pred, exit, isa.BranchRegular, target)
		hist = h2
		if !ok {
			hist = fixed
		}
	}
	if miss > 15 {
		t.Fatalf("alternating pattern misses = %d/300", miss)
	}
}

func TestCapacityScalesWithComposition(t *testing.T) {
	// With many distinct blocks, a larger composition has more aggregate
	// local-history and target state and should mispredict less.
	run := func(n int) uint64 {
		p := newPred(n)
		var hist History
		nBlocks := 512
		for pass := 0; pass < 6; pass++ {
			for b := 0; b < nBlocks; b++ {
				addr := blockA + uint64(b)*uint64(isa.BlockBytes)
				// Deterministic but block-dependent behaviour.
				exit := uint8(b % 3)
				target := blockA + uint64((b*7+1)%nBlocks)*uint64(isa.BlockBytes)
				pred, h2 := p.Predict(addr, hist)
				ok, fixed := p.Resolve(&pred, exit, isa.BranchRegular, target)
				hist = h2
				if !ok {
					hist = fixed
				}
			}
		}
		return p.Stats.Mispredicts
	}
	small := run(1)
	large := run(16)
	if large >= small {
		t.Fatalf("16-core predictor (%d misses) not better than 1-core (%d)", large, small)
	}
}

func TestRASPushPop(t *testing.T) {
	p := newPred(2)
	var hist History
	// Teach the predictor that A is a call to B and B is a return.
	for i := 0; i < 20; i++ {
		predA, h2 := p.Predict(blockA, hist)
		okA, fixedA := p.Resolve(&predA, 0, isa.BranchCall, blockB)
		hist = h2
		if !okA {
			p.CorrectRAS(blockA, isa.BranchCall)
			hist = fixedA
		}
		predB, h3 := p.Predict(blockB, hist)
		okB, fixedB := p.Resolve(&predB, 0, isa.BranchReturn, blockA+uint64(isa.BlockBytes))
		hist = h3
		if !okB {
			hist = fixedB
		}
	}
	predA, h := p.Predict(blockA, hist)
	if predA.Type != isa.BranchCall || predA.Next != blockB {
		t.Fatalf("call prediction: type=%v next=%#x", predA.Type, predA.Next)
	}
	predB, _ := p.Predict(blockB, h)
	if predB.Type != isa.BranchReturn {
		t.Fatalf("return type = %v", predB.Type)
	}
	if !predB.UsedRAS {
		t.Fatal("return should use RAS")
	}
	// The RAS must produce the return address pushed by the call:
	// the block after A.
	if predB.Next != blockA+uint64(isa.BlockBytes) {
		t.Fatalf("return target = %#x, want %#x", predB.Next, blockA+uint64(isa.BlockBytes))
	}
}

func TestRASDepthScalesWithCores(t *testing.T) {
	params := compose.DefaultCoreParams()
	p1 := NewComposed(params, 1)
	p4 := NewComposed(params, 4)
	if len(p4.ras) != 4*len(p1.ras) {
		t.Fatalf("RAS sizes %d vs %d", len(p4.ras), len(p1.ras))
	}
	if len(p1.ras) != params.RASEntries {
		t.Fatalf("single-core RAS = %d", len(p1.ras))
	}
}

func TestRASTopCoreMoves(t *testing.T) {
	p := newPred(2) // 32-entry logical RAS: entries 0-15 on core 0, 16-31 on core 1
	var hist History
	if p.TopCore() != 0 {
		t.Fatalf("empty stack top core = %d", p.TopCore())
	}
	// Push 20 calls: top must move to core 1.
	for i := 0; i < 20; i++ {
		addr := blockA + uint64(i)*uint64(isa.BlockBytes)
		// Force call predictions by training first.
		for j := 0; j < 3; j++ {
			pred, h2 := p.Predict(addr, hist)
			ok, fixed := p.Resolve(&pred, 0, isa.BranchCall, blockB)
			hist = h2
			if !ok {
				p.Repair(&pred)
				p.CorrectRAS(addr, isa.BranchCall)
				hist = fixed
			}
		}
	}
	if p.TopCore() != 1 {
		t.Fatalf("deep stack top core = %d, want 1", p.TopCore())
	}
}

func TestRepairRestoresState(t *testing.T) {
	p := newPred(2)
	var hist History
	// Train a call so the RAS moves.
	for i := 0; i < 10; i++ {
		pred, h2 := p.Predict(blockA, hist)
		ok, fixed := p.Resolve(&pred, 0, isa.BranchCall, blockB)
		hist = h2
		if !ok {
			p.Repair(&pred)
			p.CorrectRAS(blockA, isa.BranchCall)
			hist = fixed
		}
	}
	topBefore := p.rasTop
	cp := p.cores[p.OwnerOf(blockA)]
	localBefore := append([]uint16(nil), cp.localL1...)

	pred, _ := p.Predict(blockA, hist)
	if p.rasTop == topBefore {
		t.Fatal("prediction should have pushed the RAS")
	}
	p.Repair(&pred)
	if p.rasTop != topBefore {
		t.Fatalf("RAS top not repaired: %d vs %d", p.rasTop, topBefore)
	}
	for i := range localBefore {
		if cp.localL1[i] != localBefore[i] {
			t.Fatalf("local history %d not repaired", i)
		}
	}
}

func TestRASUnderflowFallsBack(t *testing.T) {
	p := newPred(1)
	var hist History
	// Train a return with an empty RAS.
	for i := 0; i < 10; i++ {
		pred, h2 := p.Predict(blockA, hist)
		ok, fixed := p.Resolve(&pred, 0, isa.BranchReturn, blockB)
		hist = h2
		if !ok {
			p.Repair(&pred)
			p.CorrectRAS(blockA, isa.BranchReturn)
			hist = fixed
		}
	}
	pred, _ := p.Predict(blockA, hist)
	if pred.Type == isa.BranchReturn && pred.Next == 0 {
		t.Fatal("underflow should fall back to a non-zero address")
	}
	if p.Stats.RASUnderflows == 0 {
		t.Fatal("underflows should be counted")
	}
}

func TestStatsCountMisses(t *testing.T) {
	p := newPred(1)
	var hist History
	pred, _ := p.Predict(blockA, hist)
	p.Resolve(&pred, 5, isa.BranchRegular, blockC) // cold: wrong
	_ = hist
	if p.Stats.Predictions != 1 {
		t.Fatalf("predictions = %d", p.Stats.Predictions)
	}
	if p.Stats.Mispredicts == 0 {
		t.Fatal("cold prediction should mispredict")
	}
}

func TestOwnerDistribution(t *testing.T) {
	p := newPred(8)
	counts := make([]int, 8)
	for i := 0; i < 800; i++ {
		counts[p.OwnerOf(blockA+uint64(i)*uint64(isa.BlockBytes))]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("owner %d has %d sequential blocks", c, n)
		}
	}
}

// Satellite: accuracy counters pinned on a known branch pattern.  Block A
// repeats exits 1,1,1,0 (a loop taken three times, then the exit) with a
// fixed exit→target mapping; the tournament + local history learn the
// period-4 pattern, so after warmup every trained prediction is a hit.
func TestAccuracyCountersOnKnownPattern(t *testing.T) {
	p := newPred(2)
	var hist History
	run := func(rounds int) {
		for i := 0; i < rounds; i++ {
			exit := uint8(1)
			target := blockA // loop back
			if i%4 == 3 {
				exit = 0
				target = blockB // loop exit
			}
			pred, h2 := p.Predict(blockA, hist)
			ok, fixed := p.Resolve(&pred, exit, isa.BranchRegular, target)
			hist = h2
			if !ok {
				hist = fixed
			}
		}
	}
	const warmup, steady = 400, 100
	run(warmup)
	warmHits, warmMiss := p.Stats.Hits, p.Stats.Mispredicts
	if warmMiss == 0 {
		t.Fatal("cold predictor cannot be perfect: expected warmup mispredicts")
	}
	if warmHits+warmMiss != warmup || p.Stats.Predictions != warmup {
		t.Fatalf("hits+mispredicts = %d+%d, predictions = %d; all must equal %d trained blocks",
			warmHits, warmMiss, p.Stats.Predictions, warmup)
	}
	run(steady)
	if miss := p.Stats.Mispredicts - warmMiss; miss != 0 {
		t.Fatalf("%d mispredicts on the learned pattern, want 0", miss)
	}
	if hits := p.Stats.Hits - warmHits; hits != steady {
		t.Fatalf("steady-state hits = %d, want %d", hits, steady)
	}
	want := float64(p.Stats.Hits) / float64(p.Stats.Hits+p.Stats.Mispredicts)
	if got := p.Stats.Accuracy(); got != want {
		t.Fatalf("Accuracy() = %v, want %v", got, want)
	}
	if got := (&Stats{}).Accuracy(); got != 0 {
		t.Fatalf("zero-stats accuracy = %v, want 0", got)
	}
}
