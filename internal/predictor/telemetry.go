package predictor

import "github.com/clp-sim/tflex/internal/telemetry"

// Register exposes the composed predictor's counters under prefix
// (e.g. "proc0.pred") as views over its own stats fields, plus a derived
// accuracy gauge.
func (c *Composed) Register(r *telemetry.Registry, prefix string) {
	r.CounterView(prefix+".predictions", &c.Stats.Predictions)
	r.CounterView(prefix+".hits", &c.Stats.Hits)
	r.CounterView(prefix+".exit_miss", &c.Stats.ExitMiss)
	r.CounterView(prefix+".target_miss", &c.Stats.TargetMiss)
	r.CounterView(prefix+".mispredicts", &c.Stats.Mispredicts)
	r.CounterView(prefix+".flushes", &c.Stats.Flushes)
	r.CounterView(prefix+".ras.pushes", &c.Stats.RASPushes)
	r.CounterView(prefix+".ras.pops", &c.Stats.RASPops)
	r.CounterView(prefix+".ras.underflows", &c.Stats.RASUnderflows)
	r.Gauge(prefix+".accuracy", func() float64 { return c.Stats.Accuracy() })
}
