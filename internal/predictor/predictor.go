// Package predictor implements the TFlex composable next-block predictor
// (paper §4.3, Figure 3).  Each core has a fully functional block
// predictor; a composed processor treats the per-core predictors as one
// logical predictor.  Predictions happen at the owner core of each block
// (hash of the block address), so predictor capacity grows with the
// composition.
//
// The predictor has two halves:
//
//   - the exit predictor — an Alpha 21264-style tournament of two-level
//     local and global predictors with a choice table, over 3-bit exit
//     histories rather than taken/not-taken bits;
//   - the target predictor — a Btype table classifying the predicted exit
//     branch (sequential / regular / call / return), backed by a BTB for
//     branch targets, a CTB for call targets, a next-block adder, and a
//     return-address stack (RAS) that is sequentially partitioned across
//     the participating cores into one logical stack.
//
// Local histories, Btype, BTB and CTB are trivially composable: a block's
// state lives only at its owner core.  The global history is a value
// forwarded from owner to owner with each prediction hand-off, so it is
// exact without extra latency.  The RAS is repaired on misprediction from
// per-prediction backup records.
package predictor

import (
	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/isa"
)

// History is the global exit history carried with fetch hand-off
// messages: three bits per predicted block exit.
type History uint32

// push shifts an exit into the history.
func (h History) push(exit uint8) History { return h<<3 | History(exit&7) }

// entry is one exit-table entry: a predicted exit with 2-bit hysteresis.
type entry struct {
	exit uint8
	conf uint8
}

func (e *entry) train(actual uint8) {
	if e.exit == actual {
		if e.conf < 3 {
			e.conf++
		}
		return
	}
	if e.conf > 0 {
		e.conf--
	} else {
		e.exit = actual
	}
}

// corePred is the per-core predictor state (Figure 3).
type corePred struct {
	localL1 []uint16 // per-block local exit histories
	localL2 []entry
	global  []entry
	choice  []uint8 // 2-bit: >=2 prefer global
	btype   []uint8 // 2-bit branch type
	btb     []uint64
	ctb     []uint64
}

func newCorePred(p compose.CoreParams) *corePred {
	return &corePred{
		localL1: make([]uint16, p.LocalL1Entries),
		localL2: make([]entry, p.LocalL2Entries),
		global:  make([]entry, p.GlobalEntries),
		choice:  make([]uint8, p.ChoiceEntries),
		btype:   make([]uint8, p.BtypeEntries),
		btb:     make([]uint64, p.BTBEntries),
		ctb:     make([]uint64, p.CTBEntries),
	}
}

// Stats counts predictor events.  Hits and Mispredicts count trained
// (committed) outcomes only, so Hits+Mispredicts is the number of blocks
// the accuracy is measured over; Predictions also includes wrong-path
// predictions that were flushed before training.
type Stats struct {
	Predictions   uint64
	Hits          uint64 // trained predictions whose next-block address was right
	ExitMiss      uint64
	TargetMiss    uint64
	Mispredicts   uint64 // wrong next-block address for any reason
	Flushes       uint64 // pipeline flushes triggered at branch resolve
	RASPushes     uint64
	RASPops       uint64
	RASUnderflows uint64
}

// Accuracy returns the fraction of trained predictions that named the
// right next block, or 0 before any block has committed.
func (s *Stats) Accuracy() float64 {
	trained := s.Hits + s.Mispredicts
	if trained == 0 {
		return 0
	}
	return float64(s.Hits) / float64(trained)
}

// Prediction is the output of one next-block prediction, along with the
// state needed to repair speculative updates if it is flushed.
type Prediction struct {
	Next    uint64 // predicted next-block address
	Exit    uint8
	Type    isa.BranchType
	UsedRAS bool
	// RASTopCore is the participating-core index holding the RAS top at
	// the time of the prediction (for hop charging by the simulator).
	RASTopCore int

	// Repair state (restored in reverse prediction order on a flush).
	hist      History
	localIdx  int
	localOld  uint16
	rasTopOld int
	rasValOld uint64
	rasMoved  bool
	owner     int
	blockAddr uint64
}

// Composed is the logical predictor of one composed processor.
type Composed struct {
	params compose.CoreParams
	cores  []*corePred

	// Distributed RAS: entry i lives on participating core i/RASEntries.
	ras    []uint64
	rasTop int // index of next free slot (0 = empty)

	Stats Stats
}

// NewComposed builds the logical predictor over n participating cores.
func NewComposed(params compose.CoreParams, n int) *Composed {
	c := &Composed{params: params, ras: make([]uint64, params.RASEntries*n)}
	for i := 0; i < n; i++ {
		c.cores = append(c.cores, newCorePred(params))
	}
	return c
}

// N returns the number of composed predictor banks.
func (c *Composed) N() int { return len(c.cores) }

func blockHash(addr uint64) uint64 {
	b := addr / uint64(isa.BlockBytes)
	return b ^ b>>9
}

// OwnerOf returns the participating-core index owning blockAddr.
func (c *Composed) OwnerOf(blockAddr uint64) int {
	return compose.OwnerOf(blockAddr, len(c.cores))
}

// TopCore returns the participating-core index currently holding the RAS
// top-of-stack.
func (c *Composed) TopCore() int {
	idx := c.rasTop
	if idx > 0 {
		idx--
	}
	core := idx / c.params.RASEntries
	if core >= len(c.cores) {
		core = len(c.cores) - 1
	}
	return core
}

// Predict issues the next-block prediction for blockAddr under global
// history hist, applying speculative history and RAS updates.  It returns
// the prediction (with repair state) and the successor history to forward
// to the next owner.
func (c *Composed) Predict(blockAddr uint64, hist History) (Prediction, History) {
	c.Stats.Predictions++
	owner := c.OwnerOf(blockAddr)
	cp := c.cores[owner]
	h := blockHash(blockAddr)

	li := int(h % uint64(len(cp.localL1)))
	lh := cp.localL1[li]
	localE := cp.localL2[int(lh)%len(cp.localL2)].exit
	gi := int((uint64(hist) ^ h) % uint64(len(cp.global)))
	globalE := cp.global[gi].exit
	exit := localE
	if cp.choice[int(uint64(hist))%len(cp.choice)] >= 2 {
		exit = globalE
	}

	bi := int((h ^ uint64(exit)<<5) % uint64(len(cp.btype)))
	btype := isa.BranchType(cp.btype[bi])
	if btype == isa.BranchNone {
		btype = isa.BranchRegular
	}

	p := Prediction{
		Exit: exit, Type: btype,
		hist: hist, localIdx: li, localOld: lh,
		rasTopOld: c.rasTop, owner: owner, blockAddr: blockAddr,
		RASTopCore: c.TopCore(),
	}

	switch btype {
	case isa.BranchCall:
		p.Next = cp.ctb[int((h^uint64(exit))%uint64(len(cp.ctb)))]
		// Push the return address: the block after the call block.
		if c.rasTop < len(c.ras) {
			p.rasValOld = c.ras[c.rasTop]
			c.ras[c.rasTop] = blockAddr + uint64(isa.BlockBytes)
			c.rasTop++
			p.rasMoved = true
			c.Stats.RASPushes++
		}
	case isa.BranchReturn:
		p.UsedRAS = true
		if c.rasTop > 0 {
			c.rasTop--
			p.Next = c.ras[c.rasTop]
			p.rasMoved = true
			c.Stats.RASPops++
		} else {
			c.Stats.RASUnderflows++
			p.Next = blockAddr + uint64(isa.BlockBytes)
		}
	case isa.BranchHalt:
		p.Next = 0
	default:
		p.Next = cp.btb[int((h^uint64(exit)<<2)%uint64(len(cp.btb)))]
		if p.Next == 0 {
			p.Next = blockAddr + uint64(isa.BlockBytes)
		}
	}

	// Speculative local and global history updates.
	cp.localL1[li] = lh<<3 | uint16(exit&7)
	return p, hist.push(exit)
}

// Repair undoes the speculative updates of a flushed prediction.  Flushed
// predictions must be repaired youngest-first.
func (c *Composed) Repair(p *Prediction) {
	cp := c.cores[p.owner]
	cp.localL1[p.localIdx] = p.localOld
	if p.rasMoved {
		if p.Type == isa.BranchCall {
			c.ras[p.rasTopOld] = p.rasValOld
		}
		c.rasTop = p.rasTopOld
	}
}

// Resolve trains the predictor with the actual outcome of a block and
// reports whether the prediction was correct.  On a misprediction the
// speculative local history is repaired with the actual exit (younger
// flushed predictions must already have been Repair()ed), and the returned
// history is the corrected global history with which fetch must restart.
//
// Resolve combines Train and RepairAfterMiss for callers that resolve
// blocks in order; the pipeline simulator instead calls RepairAfterMiss at
// branch-resolve time (flush) and Train at commit time (so wrong-path
// blocks never train the tables).
func (c *Composed) Resolve(p *Prediction, actualExit uint8, actualType isa.BranchType, actualTarget uint64) (correct bool, fixed History) {
	correct = p.Next == actualTarget
	c.Train(p, actualExit, actualType, actualTarget)
	fixed = p.hist.push(actualExit)
	if !correct {
		cp := c.cores[p.owner]
		if p.Exit != actualExit {
			cp.localL1[p.localIdx] = p.localOld<<3 | uint16(actualExit&7)
		}
	}
	return correct, fixed
}

// Mispredicted reports whether the prediction named the wrong next block.
func (c *Composed) Mispredicted(p *Prediction, actualTarget uint64) bool {
	return p.Next != actualTarget
}

// RepairAfterMiss repairs the speculative state of a mispredicted block
// after all younger predictions have been Repair()ed: the local history is
// rebuilt with the actual exit, the RAS is corrected with the actual
// branch type, and the corrected global history is returned for the fetch
// restart.
func (c *Composed) RepairAfterMiss(p *Prediction, actualExit uint8, actualType isa.BranchType) History {
	c.Stats.Flushes++
	cp := c.cores[p.owner]
	cp.localL1[p.localIdx] = p.localOld<<3 | uint16(actualExit&7)
	c.CorrectRAS(p.blockAddr, actualType)
	return p.hist.push(actualExit)
}

// Train updates the exit, type and target tables with a block's actual
// outcome.  Call at commit so wrong-path blocks never train.
func (c *Composed) Train(p *Prediction, actualExit uint8, actualType isa.BranchType, actualTarget uint64) {
	cp := c.cores[p.owner]
	h := blockHash(p.blockAddr)

	// Train exit tables with the history values used at prediction time.
	lIdx := int(p.localOld) % len(cp.localL2)
	gIdx := int((uint64(p.hist) ^ h) % uint64(len(cp.global)))
	localRight := cp.localL2[lIdx].exit == actualExit
	globalRight := cp.global[gIdx].exit == actualExit
	cp.localL2[lIdx].train(actualExit)
	cp.global[gIdx].train(actualExit)
	ci := int(uint64(p.hist)) % len(cp.choice)
	if globalRight && !localRight && cp.choice[ci] < 3 {
		cp.choice[ci]++
	}
	if localRight && !globalRight && cp.choice[ci] > 0 {
		cp.choice[ci]--
	}

	// Train the type and target tables under the actual exit.
	bi := int((h ^ uint64(actualExit)<<5) % uint64(len(cp.btype)))
	cp.btype[bi] = uint8(actualType)
	switch actualType {
	case isa.BranchCall:
		cp.ctb[int((h^uint64(actualExit))%uint64(len(cp.ctb)))] = actualTarget
	case isa.BranchRegular:
		cp.btb[int((h^uint64(actualExit)<<2)%uint64(len(cp.btb)))] = actualTarget
	}

	if p.Exit != actualExit {
		c.Stats.ExitMiss++
	} else if p.Next != actualTarget {
		c.Stats.TargetMiss++
	}
	if p.Next != actualTarget {
		c.Stats.Mispredicts++
	} else {
		c.Stats.Hits++
	}
}

// CorrectRAS rewrites the RAS state after a misprediction involving calls
// or returns: the mispredicting owner sends the corrected top-of-stack to
// the core that will hold the new top (paper §4.3).  In the model the
// repair itself is done by Repair; CorrectRAS applies the actual outcome.
func (c *Composed) CorrectRAS(blockAddr uint64, actualType isa.BranchType) {
	switch actualType {
	case isa.BranchCall:
		if c.rasTop < len(c.ras) {
			c.ras[c.rasTop] = blockAddr + uint64(isa.BlockBytes)
			c.rasTop++
		}
	case isa.BranchReturn:
		if c.rasTop > 0 {
			c.rasTop--
		}
	}
}
