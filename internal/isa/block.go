package isa

import (
	"errors"
	"fmt"
)

// BlockBytes is the instruction-cache footprint of one block.  Blocks are
// fixed-size chunks (as in TRIPS, where the compiler pads blocks to the
// 128-instruction format): a header plus 128 instruction slots.
const BlockBytes = 1 << 10

// ReadSlot injects an architectural register value into the block's
// dataflow graph.  Reads are part of the block header and are dispatched to
// the register bank holding Reg.
type ReadSlot struct {
	Reg     uint8
	Targets []Target
}

// WriteSlot names an architectural register written by the block.  The
// value arrives from an instruction (or read) targeting the slot; a null
// arrival leaves the register unchanged.
type WriteSlot struct {
	Reg uint8
}

// Block is one EDGE code block: the atomic unit of fetch, execution and
// commit.  Addr is assigned when the program is laid out.
type Block struct {
	Name string
	Addr uint64

	Reads  []ReadSlot
	Writes []WriteSlot
	Insts  []Inst

	// NumStores is the cardinality of the store mask: how many store LSIDs
	// must complete (store or be nulled) before the block can commit.
	NumStores int
}

// HasExit reports whether the block contains a branch with the given exit.
func (b *Block) HasExit(exit uint8) bool {
	for i := range b.Insts {
		in := &b.Insts[i]
		if in.Op.IsBranch() && in.Exit == exit {
			return true
		}
	}
	return false
}

// Validate checks every architectural constraint on the block encoding.
func (b *Block) Validate() error {
	if len(b.Insts) == 0 {
		return fmt.Errorf("block %s: empty", b.Name)
	}
	if len(b.Insts) > MaxBlockInsts {
		return fmt.Errorf("block %s: %d instructions exceeds %d", b.Name, len(b.Insts), MaxBlockInsts)
	}
	if len(b.Reads) > MaxReads {
		return fmt.Errorf("block %s: %d reads exceeds %d", b.Name, len(b.Reads), MaxReads)
	}
	if len(b.Writes) > MaxWrites {
		return fmt.Errorf("block %s: %d writes exceeds %d", b.Name, len(b.Writes), MaxWrites)
	}
	var errs []error
	checkTargets := func(who string, targets []Target) {
		if len(targets) > MaxTargets {
			errs = append(errs, fmt.Errorf("block %s: %s has %d targets (max %d)", b.Name, who, len(targets), MaxTargets))
		}
		for _, t := range targets {
			switch t.Kind {
			case TargetWrite:
				if int(t.Index) >= len(b.Writes) {
					errs = append(errs, fmt.Errorf("block %s: %s targets write slot %d of %d", b.Name, who, t.Index, len(b.Writes)))
				}
			default:
				if int(t.Index) >= len(b.Insts) {
					errs = append(errs, fmt.Errorf("block %s: %s targets instruction %d of %d", b.Name, who, t.Index, len(b.Insts)))
					continue
				}
				dst := &b.Insts[t.Index]
				if t.Kind == TargetPred && dst.Pred == PredNone {
					errs = append(errs, fmt.Errorf("block %s: %s targets predicate of unpredicated inst %d", b.Name, who, t.Index))
				}
				if t.Kind == TargetRight && dst.Op.NumOperands() < 2 {
					errs = append(errs, fmt.Errorf("block %s: %s targets right operand of 1-operand inst %d", b.Name, who, t.Index))
				}
			}
		}
	}
	for i, r := range b.Reads {
		if int(r.Reg) >= NumRegs {
			errs = append(errs, fmt.Errorf("block %s: read %d of invalid register %d", b.Name, i, r.Reg))
		}
		checkTargets(fmt.Sprintf("read %d", i), r.Targets)
	}
	for i, w := range b.Writes {
		if int(w.Reg) >= NumRegs {
			errs = append(errs, fmt.Errorf("block %s: write %d of invalid register %d", b.Name, i, w.Reg))
		}
	}
	memIDs := map[int8]bool{}
	stores := 0
	branches := 0
	for i := range b.Insts {
		in := &b.Insts[i]
		who := fmt.Sprintf("inst %d (%s)", i, in.Op)
		checkTargets(who, in.Targets)
		if in.Op.IsMem() {
			if in.LSID < 0 || int(in.LSID) >= MaxMemOps {
				errs = append(errs, fmt.Errorf("block %s: %s has invalid LSID %d", b.Name, who, in.LSID))
			} else if memIDs[in.LSID] && in.Op == OpStore {
				// Duplicate store LSIDs are allowed only across predicate
				// arms; the builder guarantees complementary predication,
				// so here we only require that duplicates be predicated.
				if in.Pred == PredNone {
					errs = append(errs, fmt.Errorf("block %s: %s reuses LSID %d without predication", b.Name, who, in.LSID))
				}
			}
			memIDs[in.LSID] = true
			switch in.MemSize {
			case 1, 2, 4, 8:
			default:
				errs = append(errs, fmt.Errorf("block %s: %s has invalid size %d", b.Name, who, in.MemSize))
			}
			if in.Op == OpStore && in.Pred == PredNone {
				stores++
			}
		}
		if in.Op == OpNull && in.NullLSID >= 0 {
			if in.Pred == PredNone {
				errs = append(errs, fmt.Errorf("block %s: %s nullifies store %d unconditionally", b.Name, who, in.NullLSID))
			}
		}
		if in.Op.IsBranch() {
			branches++
			if in.Exit >= NumExits {
				errs = append(errs, fmt.Errorf("block %s: %s exit %d out of range", b.Name, who, in.Exit))
			}
			if (in.Op == OpBro || in.Op == OpCallo) && in.BranchTo == "" {
				errs = append(errs, fmt.Errorf("block %s: %s missing target label", b.Name, who))
			}
		}
	}
	if branches == 0 {
		errs = append(errs, fmt.Errorf("block %s: no branch", b.Name))
	}
	if b.NumStores > MaxMemOps {
		errs = append(errs, fmt.Errorf("block %s: store mask %d exceeds %d", b.Name, b.NumStores, MaxMemOps))
	}
	_ = stores
	return errors.Join(errs...)
}

// String renders the block for debugging.
func (b *Block) String() string {
	s := fmt.Sprintf("block %s @%#x (reads=%d writes=%d stores=%d insts=%d)\n",
		b.Name, b.Addr, len(b.Reads), len(b.Writes), b.NumStores, len(b.Insts))
	for i, r := range b.Reads {
		s += fmt.Sprintf("  read[%d] r%d", i, r.Reg)
		for _, t := range r.Targets {
			s += " ->" + t.String()
		}
		s += "\n"
	}
	for i, w := range b.Writes {
		s += fmt.Sprintf("  write[%d] r%d\n", i, w.Reg)
	}
	for i := range b.Insts {
		s += fmt.Sprintf("  [%3d] %s\n", i, b.Insts[i].String())
	}
	return s
}
