package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTargetEncodeRoundTrip(t *testing.T) {
	for _, k := range []TargetKind{TargetLeft, TargetRight, TargetPred, TargetWrite} {
		for idx := 0; idx < 128; idx++ {
			tg := Target{Kind: k, Index: uint8(idx)}
			got := DecodeTarget(tg.Encode())
			if got != tg {
				t.Fatalf("round trip %v -> %v", tg, got)
			}
		}
	}
}

func TestTargetEncodeIs9Bits(t *testing.T) {
	f := func(kind uint8, idx uint8) bool {
		tg := Target{Kind: TargetKind(kind % 4), Index: idx % 128}
		return tg.Encode() < 1<<9 && DecodeTarget(tg.Encode()) == tg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpcodeMetadata(t *testing.T) {
	cases := []struct {
		op     Opcode
		nOps   int
		fp     bool
		mem    bool
		branch bool
	}{
		{OpAdd, 2, false, false, false},
		{OpGenC, 0, false, false, false},
		{OpMov, 1, false, false, false},
		{OpFAdd, 2, true, false, false},
		{OpFSqrt, 1, true, false, false},
		{OpLoad, 1, false, true, false},
		{OpStore, 2, false, true, false},
		{OpBro, 0, false, false, true},
		{OpRet, 1, false, false, true},
		{OpHalt, 0, false, false, true},
		{OpNull, 0, false, false, false},
	}
	for _, c := range cases {
		if got := c.op.NumOperands(); got != c.nOps {
			t.Errorf("%s: NumOperands = %d, want %d", c.op, got, c.nOps)
		}
		if got := c.op.IsFP(); got != c.fp {
			t.Errorf("%s: IsFP = %v, want %v", c.op, got, c.fp)
		}
		if got := c.op.IsMem(); got != c.mem {
			t.Errorf("%s: IsMem = %v, want %v", c.op, got, c.mem)
		}
		if got := c.op.IsBranch(); got != c.branch {
			t.Errorf("%s: IsBranch = %v, want %v", c.op, got, c.branch)
		}
	}
}

func TestOpcodeStringsUnique(t *testing.T) {
	seen := map[string]Opcode{}
	for op := OpNop; op < Opcode(NumOpcodes); op++ {
		s := op.String()
		if strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("opcodes %d and %d share name %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestBranchTypes(t *testing.T) {
	if OpBro.Type() != BranchRegular || OpCallo.Type() != BranchCall ||
		OpRet.Type() != BranchReturn || OpHalt.Type() != BranchHalt {
		t.Fatal("branch type classification wrong")
	}
	if OpAdd.Type() != BranchNone {
		t.Fatal("add should not classify as branch")
	}
}

func TestInstTotalOperands(t *testing.T) {
	add := Inst{Op: OpAdd}
	if add.TotalOperands() != 2 {
		t.Errorf("add: %d", add.TotalOperands())
	}
	addi := Inst{Op: OpAdd, HasImm: true, Imm: 4}
	if addi.TotalOperands() != 1 {
		t.Errorf("addi: %d", addi.TotalOperands())
	}
	addp := Inst{Op: OpAdd, Pred: PredOnTrue}
	if addp.TotalOperands() != 3 {
		t.Errorf("predicated add: %d", addp.TotalOperands())
	}
	ld := Inst{Op: OpLoad, HasImm: true, Imm: 8, MemSize: 8}
	if ld.TotalOperands() != 1 {
		t.Errorf("load with offset: %d", ld.TotalOperands())
	}
	st := Inst{Op: OpStore, HasImm: true, MemSize: 8}
	if st.TotalOperands() != 2 {
		t.Errorf("store with offset: %d", st.TotalOperands())
	}
	genc := Inst{Op: OpGenC, Imm: 42}
	if genc.TotalOperands() != 0 {
		t.Errorf("genc: %d", genc.TotalOperands())
	}
}

func validBlock() *Block {
	return &Block{
		Name: "b0",
		Reads: []ReadSlot{
			{Reg: 1, Targets: []Target{{TargetLeft, 0}}},
			{Reg: 2, Targets: []Target{{TargetRight, 0}}},
		},
		Writes: []WriteSlot{{Reg: 3}},
		Insts: []Inst{
			{Op: OpAdd, Targets: []Target{{TargetWrite, 0}, {TargetLeft, 1}}},
			{Op: OpStore, HasImm: true, Imm: 16, MemSize: 8, LSID: 0, NullLSID: -1,
				Targets: nil}, // store needs addr+value; value comes from inst 0, addr from read below
			{Op: OpBro, BranchTo: "b0", Exit: 0},
		},
		NumStores: 1,
	}
}

func TestBlockValidate(t *testing.T) {
	b := validBlock()
	// Give the store an address operand.
	b.Reads = append(b.Reads, ReadSlot{Reg: 4, Targets: []Target{{TargetLeft, 1}}})
	// inst 0's second target feeds the store's right (value) operand.
	b.Insts[0].Targets[1] = Target{TargetRight, 1}
	if err := b.Validate(); err != nil {
		t.Fatalf("valid block rejected: %v", err)
	}
}

func TestBlockValidateRejects(t *testing.T) {
	cases := map[string]func(*Block){
		"no branch":       func(b *Block) { b.Insts = b.Insts[:2] },
		"bad write slot":  func(b *Block) { b.Insts[0].Targets[0] = Target{TargetWrite, 5} },
		"bad inst target": func(b *Block) { b.Insts[0].Targets[0] = Target{TargetLeft, 100} },
		"pred target of unpredicated": func(b *Block) {
			b.Insts[0].Targets[0] = Target{TargetPred, 2}
		},
		"bad mem size":     func(b *Block) { b.Insts[1].MemSize = 3 },
		"bad exit":         func(b *Block) { b.Insts[2].Exit = 9 },
		"missing label":    func(b *Block) { b.Insts[2].BranchTo = "" },
		"too many targets": func(b *Block) { b.Insts[0].Targets = make([]Target, 3) },
		"bad read reg":     func(b *Block) { b.Reads[0].Reg = 200 },
	}
	for name, mutate := range cases {
		b := validBlock()
		b.Reads = append(b.Reads, ReadSlot{Reg: 4, Targets: []Target{{TargetLeft, 1}}})
		b.Insts[0].Targets[1] = Target{TargetRight, 1}
		mutate(b)
		if err := b.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := validBlock()
	b.Reads = append(b.Reads, ReadSlot{Reg: 4, Targets: []Target{{TargetLeft, 1}}})
	b.Insts[0].Targets[1] = Target{TargetRight, 1}
	b.Insts = append(b.Insts,
		Inst{Op: OpGenC, Imm: -77, Targets: []Target{{TargetLeft, 4}}},
		Inst{Op: OpMov, Pred: PredOnFalse, Targets: []Target{{TargetWrite, 0}}},
		Inst{Op: OpNull, NullLSID: 0, LSID: 0, Pred: PredOnTrue},
	)
	data := EncodeBlock(b)
	got, err := DecodeBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != b.Name || got.NumStores != b.NumStores {
		t.Fatalf("header mismatch: %+v vs %+v", got, b)
	}
	if len(got.Reads) != len(b.Reads) || len(got.Writes) != len(b.Writes) || len(got.Insts) != len(b.Insts) {
		t.Fatalf("shape mismatch")
	}
	for i := range b.Insts {
		want, have := b.Insts[i], got.Insts[i]
		if want.String() != have.String() {
			t.Errorf("inst %d: %q vs %q", i, want.String(), have.String())
		}
		if want.Imm != have.Imm || want.HasImm != have.HasImm {
			t.Errorf("inst %d imm mismatch", i)
		}
	}
	for i := range b.Reads {
		if got.Reads[i].Reg != b.Reads[i].Reg || len(got.Reads[i].Targets) != len(b.Reads[i].Targets) {
			t.Errorf("read %d mismatch", i)
		}
	}
}

func TestDecodeBlockRejectsGarbage(t *testing.T) {
	if _, err := DecodeBlock([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error on short input")
	}
	if _, err := DecodeBlock(make([]byte, 64)); err == nil {
		t.Fatal("expected error on zero magic")
	}
}

func TestBlockStringRenders(t *testing.T) {
	b := validBlock()
	s := b.String()
	for _, want := range []string{"block b0", "read[0] r1", "write[0] r3", "bro"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}
