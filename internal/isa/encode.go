package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Binary block format.  Each block encodes to a self-describing byte
// stream: a fixed header, the read/write slots, then one 16-byte word per
// instruction.  The format exists so the instruction caches hold real bytes
// and so programs can be serialized; it round-trips exactly.
//
// Instruction word layout (little endian):
//
//	byte 0      opcode
//	byte 1      pred(2) | hasImm(1) | memSigned(1) | exit(3) | ntargets-hi(1)
//	byte 2      lsid (int8)
//	byte 3      nullLSID (int8)
//	byte 4      memSize
//	byte 5      ntargets-lo
//	bytes 6-7   target[0] (9-bit encoding)
//	bytes 8-9   target[1]
//	bytes 10-11 branch label index (or 0xffff)
//	bytes 12-15 reserved
//	+ int64 immediate if hasImm or OpGenC
//
// Branch labels are carried in a string table at the end of the block.

const blockMagic = uint32(0xed6eb10c)

// EncodeBlock serializes a block (addresses are not included; layout
// assigns them).
func EncodeBlock(b *Block) []byte {
	var buf bytes.Buffer
	le := binary.LittleEndian
	var labels []string
	labelIdx := map[string]uint16{}
	labelOf := func(s string) uint16 {
		if s == "" {
			return 0xffff
		}
		if i, ok := labelIdx[s]; ok {
			return i
		}
		i := uint16(len(labels))
		labels = append(labels, s)
		labelIdx[s] = i
		return i
	}

	writeU32 := func(v uint32) { _ = binary.Write(&buf, le, v) }
	writeU16 := func(v uint16) { _ = binary.Write(&buf, le, v) }

	writeU32(blockMagic)
	name := []byte(b.Name)
	writeU16(uint16(len(name)))
	buf.Write(name)
	buf.WriteByte(uint8(len(b.Reads)))
	buf.WriteByte(uint8(len(b.Writes)))
	buf.WriteByte(uint8(b.NumStores))
	buf.WriteByte(uint8(len(b.Insts)))

	for _, r := range b.Reads {
		buf.WriteByte(r.Reg)
		buf.WriteByte(uint8(len(r.Targets)))
		for _, t := range r.Targets {
			writeU16(t.Encode())
		}
	}
	for _, w := range b.Writes {
		buf.WriteByte(w.Reg)
	}
	for i := range b.Insts {
		in := &b.Insts[i]
		var w [16]byte
		w[0] = uint8(in.Op)
		flags := uint8(in.Pred) & 0x3
		if in.HasImm {
			flags |= 1 << 2
		}
		if in.MemSigned {
			flags |= 1 << 3
		}
		flags |= (in.Exit & 0x7) << 4
		w[1] = flags
		w[2] = uint8(in.LSID)
		w[3] = uint8(in.NullLSID)
		w[4] = in.MemSize
		w[5] = uint8(len(in.Targets))
		for j, t := range in.Targets {
			le.PutUint16(w[6+2*j:], t.Encode())
		}
		le.PutUint16(w[10:], labelOf(in.BranchTo))
		buf.Write(w[:])
		if in.HasImm || in.Op == OpGenC {
			_ = binary.Write(&buf, le, in.Imm)
		}
	}
	writeU16(uint16(len(labels)))
	for _, l := range labels {
		writeU16(uint16(len(l)))
		buf.WriteString(l)
	}
	return buf.Bytes()
}

// DecodeBlock parses a block serialized by EncodeBlock.
func DecodeBlock(data []byte) (*Block, error) {
	le := binary.LittleEndian
	r := bytes.NewReader(data)
	var magic uint32
	if err := binary.Read(r, le, &magic); err != nil || magic != blockMagic {
		return nil, fmt.Errorf("isa: bad block magic")
	}
	readU16 := func() (uint16, error) {
		var v uint16
		err := binary.Read(r, le, &v)
		return v, err
	}
	nameLen, err := readU16()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := r.Read(name); err != nil {
		return nil, err
	}
	var counts [4]byte
	if _, err := r.Read(counts[:]); err != nil {
		return nil, err
	}
	b := &Block{Name: string(name), NumStores: int(counts[2])}
	b.Reads = make([]ReadSlot, counts[0])
	b.Writes = make([]WriteSlot, counts[1])
	b.Insts = make([]Inst, counts[3])

	for i := range b.Reads {
		reg, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		nt, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		b.Reads[i].Reg = reg
		for j := 0; j < int(nt); j++ {
			bits, err := readU16()
			if err != nil {
				return nil, err
			}
			b.Reads[i].Targets = append(b.Reads[i].Targets, DecodeTarget(bits))
		}
	}
	for i := range b.Writes {
		reg, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		b.Writes[i].Reg = reg
	}
	type labelFix struct {
		inst int
		idx  uint16
	}
	var fixes []labelFix
	for i := range b.Insts {
		var w [16]byte
		if _, err := r.Read(w[:]); err != nil {
			return nil, err
		}
		in := &b.Insts[i]
		in.Op = Opcode(w[0])
		in.Pred = PredKind(w[1] & 0x3)
		in.HasImm = w[1]&(1<<2) != 0
		in.MemSigned = w[1]&(1<<3) != 0
		in.Exit = (w[1] >> 4) & 0x7
		in.LSID = int8(w[2])
		in.NullLSID = int8(w[3])
		in.MemSize = w[4]
		nt := int(w[5])
		for j := 0; j < nt; j++ {
			in.Targets = append(in.Targets, DecodeTarget(le.Uint16(w[6+2*j:])))
		}
		if idx := le.Uint16(w[10:]); idx != 0xffff {
			fixes = append(fixes, labelFix{i, idx})
		}
		if in.HasImm || in.Op == OpGenC {
			if err := binary.Read(r, le, &in.Imm); err != nil {
				return nil, err
			}
		}
	}
	nLabels, err := readU16()
	if err != nil {
		return nil, err
	}
	labels := make([]string, nLabels)
	for i := range labels {
		n, err := readU16()
		if err != nil {
			return nil, err
		}
		s := make([]byte, n)
		if _, err := r.Read(s); err != nil {
			return nil, err
		}
		labels[i] = string(s)
	}
	for _, f := range fixes {
		if int(f.idx) >= len(labels) {
			return nil, fmt.Errorf("isa: label index %d out of range", f.idx)
		}
		b.Insts[f.inst].BranchTo = labels[f.idx]
	}
	return b, nil
}
