package isa

import "fmt"

// Architectural limits, matching the TRIPS ISA.
const (
	MaxBlockInsts = 128 // instructions per block
	MaxReads      = 32  // register read slots per block
	MaxWrites     = 32  // register write slots per block
	MaxMemOps     = 32  // load/store IDs per block
	NumRegs       = 128 // architectural registers
	MaxTargets    = 2   // explicit targets per instruction (fan-out uses movs)
	NumExits      = 8   // 3 exit bits per branch
)

// TargetKind selects which input of the consumer a target field names.
type TargetKind uint8

const (
	TargetLeft  TargetKind = iota // left operand of an instruction
	TargetRight                   // right operand of an instruction
	TargetPred                    // predicate operand of an instruction
	TargetWrite                   // a register write slot of the block
)

func (k TargetKind) String() string {
	switch k {
	case TargetLeft:
		return "L"
	case TargetRight:
		return "R"
	case TargetPred:
		return "P"
	case TargetWrite:
		return "W"
	}
	return "?"
}

// Target is a decoded 9-bit target field: two bits of kind and seven bits of
// destination index.  For TargetLeft/Right/Pred the index is an instruction
// ID within the block (0..127); for TargetWrite it is a write-slot index.
type Target struct {
	Kind  TargetKind
	Index uint8
}

// Encode packs the target into the 9-bit wire format used by the ISA.
func (t Target) Encode() uint16 {
	return uint16(t.Kind)<<7 | uint16(t.Index&0x7f)
}

// DecodeTarget unpacks a 9-bit target field.
func DecodeTarget(bits uint16) Target {
	return Target{Kind: TargetKind((bits >> 7) & 0x3), Index: uint8(bits & 0x7f)}
}

func (t Target) String() string { return fmt.Sprintf("%s[%d]", t.Kind, t.Index) }

// PredKind states how an instruction is predicated.
type PredKind uint8

const (
	PredNone    PredKind = iota // not predicated
	PredOnTrue                  // fires only if the predicate operand is non-zero
	PredOnFalse                 // fires only if the predicate operand is zero
)

func (p PredKind) String() string {
	switch p {
	case PredOnTrue:
		return "_t"
	case PredOnFalse:
		return "_f"
	}
	return ""
}

// Inst is one EDGE instruction.  The zero value is a nop.
type Inst struct {
	Op   Opcode
	Pred PredKind

	// Imm is the immediate: the constant for OpGenC, the right operand for
	// two-operand integer ops with HasImm set, or the address offset for
	// loads and stores.
	Imm    int64
	HasImm bool

	// Targets lists the consumers of this instruction's result.
	Targets []Target

	// LSID orders memory operations within the block (0..31).  Set for
	// OpLoad, OpStore, and store-nullifying OpNull (NullLSID >= 0).
	LSID int8
	// NullLSID distinguishes an OpNull that retires a store slot (>= 0,
	// the LSID retired) from one that nullifies register writes (-1).
	NullLSID int8

	// MemSize is the access width in bytes (1, 2, 4 or 8) and MemSigned
	// selects sign extension for sub-word loads.
	MemSize   uint8
	MemSigned bool

	// Exit is the 3-bit exit number carried by branches.
	Exit uint8
	// BranchTo names the target block of OpBro/OpCallo; resolved to an
	// address when the program is laid out.
	BranchTo string
	// TargetAddr is the laid-out address of BranchTo, filled by program
	// layout so branch execution never repeats the name lookup (0 until
	// layout runs; block addresses are never 0).
	TargetAddr uint64
}

// NeedsPredOperand reports whether the instruction waits for a predicate.
func (in *Inst) NeedsPredOperand() bool { return in.Pred != PredNone }

// TotalOperands is the number of dataflow arrivals required to fire.
func (in *Inst) TotalOperands() int {
	n := in.Op.NumOperands()
	if in.HasImm && !in.Op.IsMem() && in.Op != OpGenC && n > 0 {
		n-- // immediate replaces the right operand
	}
	if in.NeedsPredOperand() {
		n++
	}
	return n
}

// String renders the instruction in a readable assembly-like form.
func (in *Inst) String() string {
	s := in.Op.String() + in.Pred.String()
	if in.Op.IsMem() {
		s += fmt.Sprintf(" lsid=%d size=%d off=%d", in.LSID, in.MemSize, in.Imm)
	} else if in.HasImm {
		s += fmt.Sprintf(" #%d", in.Imm)
	}
	if in.Op.IsBranch() {
		s += fmt.Sprintf(" exit=%d", in.Exit)
		if in.BranchTo != "" {
			s += " " + in.BranchTo
		}
	}
	for _, t := range in.Targets {
		s += " ->" + t.String()
	}
	return s
}
