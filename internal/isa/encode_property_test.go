package isa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomBlock builds a structurally arbitrary (not necessarily valid)
// block for encode/decode round-trip checks: the wire format must
// preserve every field bit-for-bit regardless of semantic validity.
func randomBlock(r *rand.Rand) *Block {
	b := &Block{
		Name:      randName(r),
		NumStores: r.Intn(MaxMemOps + 1),
	}
	nInsts := 1 + r.Intn(40)
	for i := 0; i < r.Intn(8); i++ {
		rd := ReadSlot{Reg: uint8(r.Intn(NumRegs))}
		for t := 0; t < r.Intn(3); t++ {
			rd.Targets = append(rd.Targets, randTarget(r, nInsts))
		}
		b.Reads = append(b.Reads, rd)
	}
	for i := 0; i < r.Intn(8); i++ {
		b.Writes = append(b.Writes, WriteSlot{Reg: uint8(r.Intn(NumRegs))})
	}
	for i := 0; i < nInsts; i++ {
		in := Inst{
			Op:       Opcode(r.Intn(NumOpcodes)),
			Pred:     PredKind(r.Intn(3)),
			LSID:     int8(r.Intn(MaxMemOps)),
			NullLSID: int8(r.Intn(MaxMemOps)) - 1,
			MemSize:  uint8(1 << r.Intn(4)),
			Exit:     uint8(r.Intn(NumExits)),
		}
		if r.Intn(2) == 0 {
			in.HasImm = true
			in.Imm = int64(r.Uint64())
		}
		if r.Intn(2) == 0 {
			in.MemSigned = true
		}
		if r.Intn(3) == 0 {
			in.BranchTo = randName(r)
		}
		for t := 0; t < r.Intn(MaxTargets+1); t++ {
			in.Targets = append(in.Targets, randTarget(r, nInsts))
		}
		b.Insts = append(b.Insts, in)
	}
	return b
}

func randName(r *rand.Rand) string {
	letters := "abcdefgh_XYZ0123"
	n := 1 + r.Intn(12)
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[r.Intn(len(letters))]
	}
	return string(out)
}

func randTarget(r *rand.Rand, nInsts int) Target {
	return Target{Kind: TargetKind(r.Intn(4)), Index: uint8(r.Intn(128))}
}

func blocksEqual(a, b *Block) bool {
	if a.Name != b.Name || a.NumStores != b.NumStores {
		return false
	}
	if len(a.Reads) != len(b.Reads) || len(a.Writes) != len(b.Writes) || len(a.Insts) != len(b.Insts) {
		return false
	}
	for i := range a.Reads {
		if a.Reads[i].Reg != b.Reads[i].Reg || !targetsEqual(a.Reads[i].Targets, b.Reads[i].Targets) {
			return false
		}
	}
	for i := range a.Writes {
		if a.Writes[i] != b.Writes[i] {
			return false
		}
	}
	for i := range a.Insts {
		x, y := a.Insts[i], b.Insts[i]
		tx, ty := x.Targets, y.Targets
		x.Targets, y.Targets = nil, nil
		if !reflect.DeepEqual(x, y) || !targetsEqual(tx, ty) {
			return false
		}
	}
	return true
}

func targetsEqual(a, b []Target) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEncodeDecodePropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := randomBlock(r)
		got, err := DecodeBlock(EncodeBlock(b))
		if err != nil {
			t.Logf("seed %d: decode error %v", seed, err)
			return false
		}
		if !blocksEqual(b, got) {
			t.Logf("seed %d: mismatch", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeSizeReasonable(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		b := randomBlock(r)
		enc := EncodeBlock(b)
		// 16 bytes/inst + 8/immediate + header/labels: generous bound.
		if len(enc) > 32*len(b.Insts)+64*len(b.Reads)+1024 {
			t.Fatalf("encoding unexpectedly large: %d bytes for %d insts", len(enc), len(b.Insts))
		}
	}
}
