// Package isa defines the EDGE (Explicit Data Graph Execution) instruction
// set used by the TFlex composable-lightweight-processor simulator.
//
// Programs are sequences of blocks with atomic execution semantics, modeled
// on the TRIPS ISA: a block holds up to 128 instructions, up to 32 register
// reads, up to 32 register writes and up to 32 memory operations.  Each
// instruction explicitly encodes the consumers of its result as target
// fields, so no operand broadcast is required; a point-to-point network can
// interpret target identifiers as coordinates of instruction placement.
package isa

import "fmt"

// Opcode identifies an EDGE operation.
type Opcode uint8

// Integer, floating-point, memory and control opcodes.  Floating-point
// values travel through the dataflow graph as IEEE-754 bit patterns in
// uint64 operands.
const (
	OpNop Opcode = iota

	// Integer arithmetic and logic.
	OpAdd
	OpSub
	OpMul
	OpDiv  // signed
	OpDivU // unsigned
	OpMod  // signed remainder
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical right shift
	OpSra // arithmetic right shift

	// Comparisons produce 1 or 0 and typically feed predicate slots.
	OpEq
	OpNe
	OpLt  // signed
	OpLe  // signed
	OpLtU // unsigned
	OpLeU // unsigned

	// Data movement.
	OpMov  // single-operand forward; used for fan-out trees
	OpGenC // generate constant: produces the immediate

	// Floating point (operands are float64 bit patterns).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFSqrt
	OpFEq
	OpFLt
	OpFLe
	OpIToF // signed int64 -> float64
	OpFToI // float64 -> int64 (truncating)

	// Memory.  Loads take an address operand plus an immediate offset;
	// stores take address and value operands plus an immediate offset.
	// Every memory instruction carries an LSID giving its program order
	// within the block.
	OpLoad
	OpStore
	// OpNull signals a nullified output: a predicated-off store slot
	// (by LSID) or register write completes without architectural effect.
	OpNull

	// Control.  Exactly one branch fires per block.  Each branch carries a
	// 3-bit exit number used to form predictor histories.
	OpBro   // branch to a labeled block
	OpCallo // call a labeled block (predictor pushes return on RAS)
	OpRet   // return: target address comes from the operand
	OpHalt  // terminate the program

	numOpcodes
)

// NumOpcodes reports how many opcodes are defined (for table sizing).
const NumOpcodes = int(numOpcodes)

var opcodeNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpDivU: "divu", OpMod: "mod", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpSra: "sra",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpLtU: "ltu", OpLeU: "leu",
	OpMov: "mov", OpGenC: "genc",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFSqrt: "fsqrt", OpFEq: "feq", OpFLt: "flt", OpFLe: "fle",
	OpIToF: "itof", OpFToI: "ftoi",
	OpLoad: "ld", OpStore: "st", OpNull: "null",
	OpBro: "bro", OpCallo: "callo", OpRet: "ret", OpHalt: "halt",
}

func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumOperands reports how many dataflow operands the opcode consumes,
// not counting an optional predicate operand.
func (o Opcode) NumOperands() int {
	switch o {
	case OpNop, OpGenC, OpNull, OpBro, OpCallo, OpHalt:
		return 0
	case OpMov, OpFSqrt, OpIToF, OpFToI, OpLoad, OpRet:
		return 1
	default:
		return 2
	}
}

// IsFP reports whether the opcode executes on the floating-point unit.
func (o Opcode) IsFP() bool {
	switch o {
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFSqrt, OpFEq, OpFLt, OpFLe, OpIToF, OpFToI:
		return true
	}
	return false
}

// IsMem reports whether the opcode accesses memory (has an LSID).
func (o Opcode) IsMem() bool { return o == OpLoad || o == OpStore }

// IsBranch reports whether the opcode ends a block by choosing the next one.
func (o Opcode) IsBranch() bool {
	switch o {
	case OpBro, OpCallo, OpRet, OpHalt:
		return true
	}
	return false
}

// BranchType classifies branches for the Btype/target predictors.
type BranchType uint8

const (
	BranchNone BranchType = iota
	BranchRegular
	BranchCall
	BranchReturn
	BranchHalt
)

func (b BranchType) String() string {
	switch b {
	case BranchRegular:
		return "branch"
	case BranchCall:
		return "call"
	case BranchReturn:
		return "return"
	case BranchHalt:
		return "halt"
	}
	return "none"
}

// Type reports the branch class of the opcode (BranchNone for non-branches).
func (o Opcode) Type() BranchType {
	switch o {
	case OpBro:
		return BranchRegular
	case OpCallo:
		return BranchCall
	case OpRet:
		return BranchReturn
	case OpHalt:
		return BranchHalt
	}
	return BranchNone
}
