package fuzz

import (
	"strings"
	"testing"

	"github.com/clp-sim/tflex/internal/arch"
	"github.com/clp-sim/tflex/internal/edgegen"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// CorpusSize is the fixed-seed corpus the tier-1 gate runs: every seed
// in [0, CorpusSize) must agree across all executors on 1/2/4-core
// compositions.
const CorpusSize = 200

// TestFuzzCorpus is the bounded differential gate: 200 fixed seeds,
// eight executors each (functional, conv-trace, sim-opt and sim-ref on
// 1/2/4 cores), zero divergences.
func TestFuzzCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus pass is the long differential gate")
	}
	h := New()
	for seed := int64(0); seed < CorpusSize; seed++ {
		d, err := h.CheckSeed(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d != nil {
			d = h.Shrink(d)
			path, derr := DumpTFA(d)
			if derr != nil {
				path = "(dump failed: " + derr.Error() + ")"
			}
			t.Fatalf("%s\nshrunk reproducer: %s", d.Report(), path)
		}
	}
}

// FuzzDifferential is the native open-ended entry point:
//
//	go test -fuzz=FuzzDifferential ./internal/fuzz
//
// The fuzzing engine mutates the seed; every derived program must
// agree across executors.  Plain `go test` runs just the f.Add corpus.
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	h := New()
	f.Fuzz(func(t *testing.T, seed int64) {
		d, err := h.CheckSeed(seed)
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			d = h.Shrink(d)
			path, derr := DumpTFA(d)
			if derr != nil {
				path = "(dump failed: " + derr.Error() + ")"
			}
			t.Fatalf("%s\nshrunk reproducer: %s", d.Report(), path)
		}
	})
}

// buggyMul wraps an executor with a deliberate semantic bug: any
// program containing a mul mis-sets a register.  The divergence must
// be caught and shrunk to a minimal mul-bearing reproducer.
type buggyMul struct{ inner arch.Executor }

func (b buggyMul) Name() string { return "buggy-" + b.inner.Name() }

func (b buggyMul) Run(p *prog.Program, in arch.Input) (arch.State, error) {
	st, err := b.inner.Run(p, in)
	if err != nil {
		return st, err
	}
	if hasMul(p) {
		st.Regs[7] ^= 1 // the injected bug
	}
	return st, nil
}

func hasMul(p *prog.Program) bool {
	for _, blk := range p.Blocks {
		for i := range blk.Insts {
			if blk.Insts[i].Op == isa.OpMul {
				return true
			}
		}
	}
	return false
}

func hasMulSpec(s *edgegen.Spec) bool {
	for _, blk := range s.Blocks {
		for _, op := range blk.Ops {
			if (op.Kind == edgegen.KALU || op.Kind == edgegen.KALUImm) && op.Op == isa.OpMul {
				return true
			}
		}
	}
	return false
}

// TestInjectedBugCaughtAndShrunk is the acceptance check on the whole
// harness: a seeded semantic bug is detected as a divergence and shrunk
// to a minimal reproducer that still carries the trigger.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	// Deterministically find a seed whose program multiplies.
	seed := int64(-1)
	for c := int64(0); c < 100; c++ {
		if hasMulSpec(edgegen.GenSpec(c)) {
			seed = c
			break
		}
	}
	if seed < 0 {
		t.Fatal("no mul-bearing program in the first 100 seeds; generator weights broken")
	}
	h := &Harness{Execs: []arch.Executor{arch.Functional{}, buggyMul{arch.Functional{}}}}
	spec := edgegen.GenSpec(seed)
	d, err := h.Check(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("injected bug not detected")
	}
	if !strings.Contains(d.Exec, "buggy") {
		t.Fatalf("divergence attributed to %s, want the buggy executor", d.Exec)
	}

	shrunk := h.Shrink(d)
	if shrunk.Spec.Size() >= spec.Size() {
		t.Errorf("shrinking made no progress: %d -> %d", spec.Size(), shrunk.Spec.Size())
	}
	// Minimal mul reproducer: one block holding a constant and a mul
	// (plus the implicit halt).  Allow a little slack, but a double-
	// digit result means a shrinking pass regressed.
	if shrunk.Spec.Size() > 4 {
		t.Errorf("shrunk reproducer has size %d, want <= 4:\n%s", shrunk.Spec.Size(), shrunk.Spec.Asm())
	}
	if len(shrunk.Spec.Blocks) != 1 {
		t.Errorf("shrunk reproducer has %d blocks, want 1", len(shrunk.Spec.Blocks))
	}
	if !hasMulSpec(shrunk.Spec) {
		t.Error("shrunk reproducer lost the mul that triggers the bug")
	}
	// The shrunk spec must still be a complete, checkable program.
	if dv, err := h.Check(shrunk.Spec); err != nil || dv == nil {
		t.Errorf("shrunk reproducer no longer diverges (err=%v)", err)
	}
}

// TestTFARoundTrip pins that a dumped reproducer replays to the same
// architectural state as the in-memory spec it was dumped from, over
// enough seeds to cover at least one store-bearing program.
func TestTFARoundTrip(t *testing.T) {
	sawStores := false
	for seed := int64(0); seed < 20; seed++ {
		spec := edgegen.GenSpec(seed)
		d := &Divergence{Spec: spec, Exec: "sim-opt-2", Diff: "r3 0x1 vs 0x2"}
		var b strings.Builder
		if err := WriteTFA(&b, d); err != nil {
			t.Fatal(err)
		}
		text := b.String()

		p1, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		st1, err := (arch.Functional{}).Run(p1, spec.Input())
		if err != nil {
			t.Fatal(err)
		}

		p2, in2, err := ParseTFA(text)
		if err != nil {
			t.Fatalf("seed %d: ParseTFA: %v\ntfa:\n%s", seed, err, text)
		}
		st2, err := (arch.Functional{}).Run(p2, in2)
		if err != nil {
			t.Fatal(err)
		}
		if diff := st2.Diff(st1); diff != "" {
			t.Fatalf("seed %d: replayed .tfa diverges from its source spec: %s", seed, diff)
		}
		if st1.Stores > 0 {
			sawStores = true
		}
	}
	if !sawStores {
		t.Error("no seed in [0,20) produced stores; round-trip never exercised input.mem")
	}
}
