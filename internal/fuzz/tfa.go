package fuzz

import (
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/clp-sim/tflex/internal/arch"
	"github.com/clp-sim/tflex/internal/asm"
	"github.com/clp-sim/tflex/internal/edgegen"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/prog"
)

// A .tfa file is a self-contained divergence reproducer: the program in
// the textual assembly grammar, plus the initial architectural state as
// structured comments the assembler ignores:
//
//	; seed 42
//	; diverging sim-opt-2: r3 0x1 vs 0x2
//	; input.reg r1 0xdeadbeef
//	; input.mem 0x400000 00ff12...
//	block b0:
//	    ...
//
// ParseTFA reads back exactly what WriteTFA wrote, so a reproducer
// replays anywhere without the generator or its seed.

// WriteTFA renders the divergence as a .tfa reproducer.
func WriteTFA(w io.Writer, d *Divergence) error {
	s := d.Spec
	if _, err := fmt.Fprintf(w, "; .tfa differential-fuzz reproducer\n; seed %d\n", s.Seed); err != nil {
		return err
	}
	if d.Err != nil {
		fmt.Fprintf(w, "; diverging %s: error: %v\n", d.Exec, d.Err)
	} else {
		fmt.Fprintf(w, "; diverging %s: %s\n", d.Exec, d.Diff)
	}
	in := s.Input()
	for r := 0; r < isa.NumRegs; r++ {
		if in.Regs[r] != 0 {
			fmt.Fprintf(w, "; input.reg r%d 0x%x\n", r, in.Regs[r])
		}
	}
	for off := 0; off < len(in.Mem); off += 32 {
		end := min(off+32, len(in.Mem))
		chunk := in.Mem[off:end]
		if allZero(chunk) {
			continue
		}
		fmt.Fprintf(w, "; input.mem 0x%x %s\n", in.MemBase+uint64(off), hex.EncodeToString(chunk))
	}
	_, err := io.WriteString(w, s.Asm())
	return err
}

// DumpTFA writes the reproducer to a temp file and returns its path.
// When the diverging executor is a timing simulation (Cores > 0), the
// divergence is replayed with the flight recorder armed and the ring
// dump lands alongside as <path>.flight.json — the last scheduler and
// pipeline events per domain leading up to the disagreement.
func DumpTFA(d *Divergence) (string, error) {
	f, err := os.CreateTemp("", fmt.Sprintf("tflex-fuzz-seed%d-*.tfa", d.Spec.Seed))
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := WriteTFA(f, d); err != nil {
		return "", err
	}
	if d.Cores > 0 {
		if err := writeFlightSidecar(f.Name(), d); err != nil {
			return f.Name(), err
		}
	}
	return f.Name(), nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// ParseTFA reads a .tfa reproducer back into a runnable (program,
// input) pair.
func ParseTFA(src string) (*prog.Program, arch.Input, error) {
	in := arch.Input{MaxBlocks: edgegen.RunMaxBlocks, MaxCycles: edgegen.RunMaxCycles}
	memBase, memTop := uint64(0), uint64(0)
	type chunk struct {
		addr uint64
		data []byte
	}
	var chunks []chunk
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		bad := func(err error) (*prog.Program, arch.Input, error) {
			return nil, arch.Input{}, fmt.Errorf("tfa: line %d: %w", ln+1, err)
		}
		switch {
		case strings.HasPrefix(line, "; input.reg "):
			f := strings.Fields(line)
			if len(f) != 4 || !strings.HasPrefix(f[2], "r") {
				return bad(fmt.Errorf("malformed input.reg"))
			}
			r, err := strconv.Atoi(f[2][1:])
			if err != nil || r < 0 || r >= isa.NumRegs {
				return bad(fmt.Errorf("bad register %q", f[2]))
			}
			v, err := strconv.ParseUint(f[3], 0, 64)
			if err != nil {
				return bad(fmt.Errorf("bad value %q", f[3]))
			}
			in.Regs[r] = v
		case strings.HasPrefix(line, "; input.mem "):
			f := strings.Fields(line)
			if len(f) != 4 {
				return bad(fmt.Errorf("malformed input.mem"))
			}
			addr, err := strconv.ParseUint(f[2], 0, 64)
			if err != nil {
				return bad(fmt.Errorf("bad address %q", f[2]))
			}
			data, err := hex.DecodeString(f[3])
			if err != nil {
				return bad(fmt.Errorf("bad hex: %v", err))
			}
			if len(chunks) == 0 || addr < memBase {
				memBase = addr
			}
			if top := addr + uint64(len(data)); len(chunks) == 0 || top > memTop {
				memTop = top
			}
			chunks = append(chunks, chunk{addr, data})
		}
	}
	if len(chunks) > 0 {
		in.MemBase = memBase
		in.Mem = make([]byte, memTop-memBase)
		for _, c := range chunks {
			copy(in.Mem[c.addr-memBase:], c.data)
		}
	}
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, arch.Input{}, err
	}
	return p, in, nil
}
