package fuzz

import (
	"github.com/clp-sim/tflex/internal/edgegen"
)

// Shrink minimizes a failing Spec: it greedily applies reduction
// passes — truncating the block list, simplifying terminators,
// reducing loop trip counts, neutralizing ops to constants, zeroing
// the initial image — keeping a candidate only if it still diverges,
// and repeats until no pass makes progress.  Every candidate is a
// structurally valid Spec (ops are replaced in place, never removed,
// so slot references stay intact), which means the minimal reproducer
// is always expressible as a .tfa program.
//
// The returned Divergence's Spec is minimal under these passes; it may
// name a different diverging executor than the input (any divergence
// counts, as is standard in fuzz shrinking).
func (h *Harness) Shrink(d *Divergence) *Divergence {
	best := d
	// still returns the divergence a candidate retains, or nil.  Build
	// failures reject the candidate (structurally invalid mutations
	// cannot happen via these passes, but arbitrary Specs are cheap to
	// re-validate end to end).
	still := func(c *edgegen.Spec) *Divergence {
		dv, err := h.Check(c)
		if err != nil {
			return nil
		}
		return dv
	}
	// Every candidate is a strict reduction (fewer blocks, a simpler
	// terminator, one fewer live op, fewer trips, or less initial
	// state), so the greedy loop terminates: each accepted step shrinks
	// a well-founded measure.
	for improved := true; improved; {
		improved = false
		for _, cand := range candidates(best.Spec) {
			if dv := still(cand); dv != nil {
				best = dv
				improved = true
				break
			}
		}
	}
	return best
}

// weight counts nonzero bytes of initial state, so zeroing passes
// register as progress.
func weight(s *edgegen.Spec) int {
	n := 0
	for _, v := range s.InitRegs {
		if v != 0 {
			n++
		}
	}
	for _, b := range s.Mem {
		if b != 0 {
			n++
		}
	}
	return n
}

// candidates enumerates one-step reductions of the Spec, most
// aggressive first so the greedy loop takes big bites early.
func candidates(s *edgegen.Spec) []*edgegen.Spec {
	var out []*edgegen.Spec

	// Truncate the block list: keep blocks[0:n), retargeting any branch
	// that escapes the kept range to a halt.
	for n := 1; n < len(s.Blocks); n++ {
		c := s.Clone()
		c.Blocks = c.Blocks[:n]
		for bi := range c.Blocks {
			t := &c.Blocks[bi].Term
			esc := func(to int) bool { return to >= n }
			switch t.Kind {
			case edgegen.TBranch:
				if esc(t.To1) {
					*t = edgegen.TermSpec{Kind: edgegen.THalt}
				}
			case edgegen.TBranchIf:
				if esc(t.To1) || esc(t.To2) {
					*t = edgegen.TermSpec{Kind: edgegen.THalt}
				}
			case edgegen.TLoop:
				if esc(t.To1) {
					*t = edgegen.TermSpec{Kind: edgegen.THalt}
				}
			}
		}
		out = append(out, c)
	}

	// Simplify terminators: conditional -> unconditional -> halt.
	for bi := range s.Blocks {
		switch t := s.Blocks[bi].Term; t.Kind {
		case edgegen.TBranchIf:
			c := s.Clone()
			c.Blocks[bi].Term = edgegen.TermSpec{Kind: edgegen.TBranch, To1: t.To1}
			out = append(out, c)
			c2 := s.Clone()
			c2.Blocks[bi].Term = edgegen.TermSpec{Kind: edgegen.TBranch, To1: t.To2}
			out = append(out, c2)
		case edgegen.TLoop:
			c := s.Clone()
			c.Blocks[bi].Term = edgegen.TermSpec{Kind: edgegen.TBranch, To1: t.To1}
			out = append(out, c)
			if t.Trips > 1 {
				c2 := s.Clone()
				c2.Blocks[bi].Term.Trips = 1
				out = append(out, c2)
			}
		case edgegen.TBranch:
			c := s.Clone()
			c.Blocks[bi].Term = edgegen.TermSpec{Kind: edgegen.THalt}
			out = append(out, c)
		}
	}

	// Drop unreferenced ops outright, remapping the slot indices that
	// follow.  This is what turns "13 ops, 12 of them neutralized" into
	// a genuinely minimal reproducer.
	for bi := range s.Blocks {
		for oi := range s.Blocks[bi].Ops {
			if referenced(&s.Blocks[bi], oi) {
				continue
			}
			c := s.Clone()
			blk := &c.Blocks[bi]
			blk.Ops = append(blk.Ops[:oi], blk.Ops[oi+1:]...)
			shift := func(slot *int) {
				if *slot > oi {
					*slot--
				}
			}
			for i := range blk.Ops {
				shift(&blk.Ops[i].A)
				shift(&blk.Ops[i].B)
				shift(&blk.Ops[i].C)
				shift(&blk.Ops[i].Guard)
			}
			if blk.Term.Kind == edgegen.TBranchIf {
				shift(&blk.Term.P)
			}
			out = append(out, c)
		}
	}

	// Neutralize ops in place: any op becomes const 0, preserving every
	// slot index.  Skip ops that already are that constant.
	for bi := range s.Blocks {
		for oi := range s.Blocks[bi].Ops {
			op := s.Blocks[bi].Ops[oi]
			if op.Kind == edgegen.KConst && op.Imm == 0 {
				continue
			}
			c := s.Clone()
			c.Blocks[bi].Ops[oi] = edgegen.OpSpec{Kind: edgegen.KConst, A: -1, B: -1, C: -1, Guard: -1}
			out = append(out, c)
		}
	}

	// Zero the initial state wholesale, then register by register.
	if weight(s) > 0 {
		c := s.Clone()
		c.InitRegs = [edgegen.NumGenRegs]uint64{}
		for i := range c.Mem {
			c.Mem[i] = 0
		}
		out = append(out, c)
	}
	for i, v := range s.InitRegs {
		if v != 0 {
			c := s.Clone()
			c.InitRegs[i] = 0
			out = append(out, c)
		}
	}
	return out
}

// referenced reports whether any later op or the terminator consumes
// the value slot.
func referenced(blk *edgegen.BlockSpec, slot int) bool {
	for _, op := range blk.Ops {
		if op.A == slot || op.B == slot || op.C == slot || op.Guard == slot {
			return true
		}
	}
	return blk.Term.Kind == edgegen.TBranchIf && blk.Term.P == slot
}
