// Package fuzz is the differential fuzzing harness: seeded random EDGE
// programs (internal/edgegen) run through every executor behind the
// arch.Executor contract — the functional interpreter, the linearized
// conventional trace, and the timing simulator in both engines across
// multiple core compositions — and any disagreement in final
// architectural state is a failure.  A failing Spec is shrunk to a
// minimal reproducer and dumped as a .tfa assembly file that carries
// its own input, so a divergence found anywhere replays everywhere.
package fuzz

import (
	"fmt"
	"strings"

	"github.com/clp-sim/tflex/internal/arch"
	"github.com/clp-sim/tflex/internal/edgegen"
)

// DefaultCores are the compositions every generated program is checked
// on, per the acceptance bar: 1-, 2- and 4-core processors.
var DefaultCores = []int{1, 2, 4}

// Harness drives one program through a fixed executor set.
// Execs[0] is the ground truth the others are compared against.
type Harness struct {
	Execs []arch.Executor
}

// New returns the standard harness: functional ground truth, the
// conventional-trace pipeline, and optimized + reference timing
// simulations on each given composition (DefaultCores when empty).
func New(cores ...int) *Harness {
	if len(cores) == 0 {
		cores = DefaultCores
	}
	h := &Harness{Execs: []arch.Executor{arch.Functional{}, arch.ConvTrace{}}}
	for _, c := range cores {
		h.Execs = append(h.Execs, arch.Sim{Cores: c}, arch.Sim{Cores: c, Reference: true})
	}
	return h
}

// Divergence reports one cross-executor disagreement: which executor
// broke from the ground truth, and how.
type Divergence struct {
	Spec *edgegen.Spec
	// Exec is the name of the diverging executor.
	Exec string
	// Ref is the ground-truth state; Got the diverging executor's (zero
	// if it errored instead).
	Ref, Got arch.State
	// Err is the diverging executor's error when it failed to complete
	// while the ground truth succeeded.
	Err error
	// Diff summarizes the state mismatch ("" when Err is the story).
	Diff string
	// Cores is the diverging executor's composition when it is a timing
	// simulation (0 otherwise).  DumpTFA uses it to replay the
	// divergence with the flight recorder armed and attach the ring
	// dump alongside the reproducer.
	Cores int
}

// Report renders the divergence with enough context to reproduce it:
// seed, executor, state diff and the full program text.
func (d *Divergence) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "differential divergence (seed %d): executor %s", d.Spec.Seed, d.Exec)
	if d.Err != nil {
		fmt.Fprintf(&b, " failed: %v\n", d.Err)
	} else {
		fmt.Fprintf(&b, " disagrees with ground truth: %s\n", d.Diff)
	}
	fmt.Fprintf(&b, "replay: tflexsim -fuzz-seed %d\nprogram:\n%s", d.Spec.Seed, d.Spec.Asm())
	return b.String()
}

// Check runs the Spec through every executor and returns the first
// divergence from the ground truth, or nil when all agree.  A non-nil
// error means the Spec itself could not be built or the ground truth
// failed — a generator or harness defect, not a simulator divergence.
func (h *Harness) Check(s *edgegen.Spec) (*Divergence, error) {
	p, err := s.Build()
	if err != nil {
		return nil, fmt.Errorf("fuzz: seed %d: generated program does not build: %w", s.Seed, err)
	}
	in := s.Input()
	ref, err := h.Execs[0].Run(p, in)
	if err != nil {
		return nil, fmt.Errorf("fuzz: seed %d: ground truth %s failed: %w", s.Seed, h.Execs[0].Name(), err)
	}
	for _, ex := range h.Execs[1:] {
		st, err := ex.Run(p, in)
		if err != nil {
			return &Divergence{Spec: s, Exec: ex.Name(), Ref: ref, Err: err, Cores: simCores(ex)}, nil
		}
		if d := st.Diff(ref); d != "" {
			return &Divergence{Spec: s, Exec: ex.Name(), Ref: ref, Got: st, Diff: d, Cores: simCores(ex)}, nil
		}
	}
	return nil, nil
}

// simCores reports the composition of a timing-simulator executor, or 0
// for non-sim executors.  Matched structurally so test wrappers that
// embed arch.Sim keep their composition visible.
func simCores(ex arch.Executor) int {
	if s, ok := ex.(interface{ Composition() int }); ok {
		return s.Composition()
	}
	return 0
}

// CheckSeed generates and checks one seed.
func (h *Harness) CheckSeed(seed int64) (*Divergence, error) {
	return h.Check(edgegen.GenSpec(seed))
}
